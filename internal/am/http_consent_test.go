package am

import (
	"net/http"
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
)

// TestHTTPConsentEndpoints drives the consent extension purely over HTTP:
// token request → 202 pending → owner lists and resolves the ticket →
// requester collects the token via /token/status.
func TestHTTPConsentEndpoints(t *testing.T) {
	f := newHTTPFixture(t)
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, _ := f.am.ExchangeCode(code, "webpics")
	if _, err := f.am.RegisterRealm(pr.PairingID, core.ProtectRequest{Realm: "private"}); err != nil {
		t.Fatal(err)
	}
	p, _ := f.am.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
		}},
	})
	if err := f.am.LinkGeneral("bob", "private", p.ID); err != nil {
		t.Fatal(err)
	}

	// Requester asks for a token: 202 with a consent ticket.
	resp := f.do(t, "", http.MethodPost, "/token", core.TokenRequest{
		Requester: "editor", Subject: "evelyn", Host: "webpics",
		Realm: "private", Resource: "diary", Action: core.ActionRead,
	})
	if resp.StatusCode != 202 {
		t.Fatalf("token status = %d", resp.StatusCode)
	}
	tr := decodeBody[core.TokenResponse](t, resp)
	if tr.PendingConsent == "" {
		t.Fatalf("resp = %+v", tr)
	}

	// Owner lists pending consents over HTTP.
	resp = f.do(t, "bob", http.MethodGet, "/consents", nil)
	pending := decodeBody[[]core.ConsentStatus](t, resp)
	if len(pending) != 1 || pending[0].Ticket != tr.PendingConsent {
		t.Fatalf("pending = %+v", pending)
	}
	// Mallory cannot resolve it.
	resp = f.do(t, "mallory", http.MethodPost, "/consents/"+tr.PendingConsent, map[string]bool{"approve": true})
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Fatal("mallory resolved bob's consent")
	}
	// Bob approves over HTTP.
	resp = f.do(t, "bob", http.MethodPost, "/consents/"+tr.PendingConsent, map[string]bool{"approve": true})
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("resolve status = %d", resp.StatusCode)
	}
	// Requester collects the token.
	resp = f.do(t, "", http.MethodGet, "/token/status?ticket="+tr.PendingConsent, nil)
	st := decodeBody[core.ConsentStatus](t, resp)
	if !st.Resolved || !st.Approved || st.Token == "" {
		t.Fatalf("status = %+v", st)
	}
	// Bad body on resolve → 400.
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+"/consents/x", nil)
	req.Header.Set("X-Umac-User", "bob")
	r2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != 400 {
		t.Fatalf("empty resolve body = %d", r2.StatusCode)
	}
}

// TestHTTPCustodianListAndAccessors covers the remaining read paths.
func TestHTTPCustodianListAndAccessors(t *testing.T) {
	f := newHTTPFixture(t)
	f.do(t, "bob", http.MethodPost, "/custodians", map[string]string{"custodian": "carol"}).Body.Close()
	resp := f.do(t, "bob", http.MethodGet, "/custodians", nil)
	if got := decodeBody[[]core.UserID](t, resp); len(got) != 1 || got[0] != "carol" {
		t.Fatalf("custodians = %v", got)
	}
	if f.am.Name() != "am" {
		t.Fatalf("Name() = %q", f.am.Name())
	}
	if f.am.BaseURL() == "" {
		t.Fatal("BaseURL empty")
	}
	if f.am.Store() == nil {
		t.Fatal("Store nil")
	}
}
