package core

import (
	"fmt"
	"sync"
	"time"
)

// TraceEvent records one protocol interaction. Integration tests assert
// sequences of trace events against the message flows in Figs. 1-6, and the
// experiment harness uses them to count round-trips per flow.
type TraceEvent struct {
	Seq   int       `json:"seq"`
	Time  time.Time `json:"time"`
	Phase Phase     `json:"phase"`
	// From and To name the interacting parties ("user", "host:webpics",
	// "am", "requester:gallery").
	From string `json:"from"`
	To   string `json:"to"`
	// Op is the short operation name ("redirect", "token-request",
	// "decision-query", "enforce-cached", ...).
	Op string `json:"op"`
	// Detail is free-form context (resource, decision, realm).
	Detail string `json:"detail,omitempty"`
}

// String renders the event in a compact arrow form used by the examples.
func (e TraceEvent) String() string {
	s := fmt.Sprintf("[%d] %-32s %s -> %s: %s", e.Seq, e.Phase, e.From, e.To, e.Op)
	if e.Detail != "" {
		s += " (" + e.Detail + ")"
	}
	return s
}

// Tracer collects TraceEvents from concurrently executing protocol parties.
// The zero value is ready to use. A nil *Tracer discards all events, so
// components can accept an optional tracer without nil checks at call sites.
type Tracer struct {
	mu     sync.Mutex
	seq    int
	events []TraceEvent
}

// Record appends an event, assigning it the next sequence number.
func (t *Tracer) Record(phase Phase, from, to, op, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	t.events = append(t.events, TraceEvent{
		Seq:    t.seq,
		Time:   time.Now(),
		Phase:  phase,
		From:   from,
		To:     to,
		Op:     op,
		Detail: detail,
	})
}

// Events returns a copy of the recorded events in order.
func (t *Tracer) Events() []TraceEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// Reset discards all recorded events.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq = 0
	t.events = nil
}

// Ops returns just the operation names, in order — the form most tests
// assert against.
func (t *Tracer) Ops() []string {
	events := t.Events()
	ops := make([]string, len(events))
	for i, e := range events {
		ops[i] = e.Op
	}
	return ops
}

// CountOp returns how many recorded events carry the given op.
func (t *Tracer) CountOp(op string) int {
	n := 0
	for _, e := range t.Events() {
		if e.Op == op {
			n++
		}
	}
	return n
}
