package policy

import (
	"sort"
	"sync"

	"umac/internal/core"
)

// Directory is an in-memory GroupResolver: each owner curates named groups
// of user identities ("friends", "family"). The paper's scenario motivates
// this directly — Bob wants to define a group once instead of re-listing
// Alice and Chris at every Host (shortcoming S1).
//
// The zero value is ready to use.
type Directory struct {
	mu     sync.RWMutex
	owners map[core.UserID]map[string]map[core.UserID]bool
}

var _ GroupResolver = (*Directory)(nil)

// Add puts user into the owner's named group, creating the group as needed.
func (d *Directory) Add(owner core.UserID, group string, user core.UserID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.owners == nil {
		d.owners = make(map[core.UserID]map[string]map[core.UserID]bool)
	}
	groups, ok := d.owners[owner]
	if !ok {
		groups = make(map[string]map[core.UserID]bool)
		d.owners[owner] = groups
	}
	members, ok := groups[group]
	if !ok {
		members = make(map[core.UserID]bool)
		groups[group] = members
	}
	members[user] = true
}

// Remove deletes user from the owner's named group. Removing a user who is
// not a member is a no-op.
func (d *Directory) Remove(owner core.UserID, group string, user core.UserID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	members := d.owners[owner][group]
	delete(members, user)
	if len(members) == 0 {
		delete(d.owners[owner], group)
	}
}

// SetMembers replaces the owner's named group with exactly the given
// members, removing the group when members is empty. This is the
// replication/migration install path: the authoritative member list
// arrives whole, not as a delta.
func (d *Directory) SetMembers(owner core.UserID, group string, members []core.UserID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(members) == 0 {
		delete(d.owners[owner], group)
		return
	}
	if d.owners == nil {
		d.owners = make(map[core.UserID]map[string]map[core.UserID]bool)
	}
	groups, ok := d.owners[owner]
	if !ok {
		groups = make(map[string]map[core.UserID]bool)
		d.owners[owner] = groups
	}
	set := make(map[core.UserID]bool, len(members))
	for _, u := range members {
		set[u] = true
	}
	groups[group] = set
}

// Reset empties the directory (a follower re-bootstrapping from a
// snapshot rebuilds it from scratch).
func (d *Directory) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.owners = nil
}

// Member implements GroupResolver.
func (d *Directory) Member(owner core.UserID, group string, user core.UserID) bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.owners[owner][group][user]
}

// Members returns the sorted member list of the owner's group.
func (d *Directory) Members(owner core.UserID, group string) []core.UserID {
	d.mu.RLock()
	defer d.mu.RUnlock()
	members := d.owners[owner][group]
	out := make([]core.UserID, 0, len(members))
	for u := range members {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Groups returns the sorted group names defined by owner.
func (d *Directory) Groups(owner core.UserID) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	groups := d.owners[owner]
	out := make([]string, 0, len(groups))
	for g := range groups {
		out = append(out, g)
	}
	sort.Strings(out)
	return out
}
