package policylang

import (
	"math/rand"
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
)

// genPolicy builds a random, valid policy from the generator's entropy.
func genPolicy(r *rand.Rand, idx int) policy.Policy {
	kinds := []policy.Kind{policy.KindGeneral, policy.KindSpecific}
	effects := []policy.Effect{policy.EffectPermit, policy.EffectDeny}
	actions := []core.Action{core.ActionRead, core.ActionWrite, core.ActionDelete, core.ActionList, core.ActionShare}
	subjects := []policy.Subject{
		{Type: policy.SubjectEveryone},
		{Type: policy.SubjectOwner},
		{Type: policy.SubjectUser, Name: "alice"},
		{Type: policy.SubjectUser, Name: "chris"},
		{Type: policy.SubjectGroup, Name: "friends"},
		{Type: policy.SubjectGroup, Name: "family"},
		{Type: policy.SubjectRequester, Name: "gallery"},
	}
	names := []string{"travel", "work", "shop", "private", "band-photos"}

	p := policy.Policy{
		ID:    core.PolicyID(genName(r, idx)),
		Owner: "bob",
		Name:  names[r.Intn(len(names))],
		Kind:  kinds[r.Intn(len(kinds))],
	}
	if r.Intn(3) == 0 {
		p.CacheTTLSeconds = r.Intn(600) + 1
	}
	switch r.Intn(4) {
	case 0:
		p.Combining = policy.CombinePermitOverrides
	case 1:
		p.Combining = policy.CombineFirstApplicable
	}
	nRules := r.Intn(4) + 1
	for i := 0; i < nRules; i++ {
		rule := policy.Rule{Effect: effects[r.Intn(len(effects))]}
		nSubj := r.Intn(3) + 1
		seen := map[string]bool{}
		for j := 0; j < nSubj; j++ {
			s := subjects[r.Intn(len(subjects))]
			if !seen[s.String()] {
				seen[s.String()] = true
				rule.Subjects = append(rule.Subjects, s)
			}
		}
		nAct := r.Intn(3)
		seenA := map[core.Action]bool{}
		for j := 0; j < nAct; j++ {
			a := actions[r.Intn(len(actions))]
			if !seenA[a] {
				seenA[a] = true
				rule.Actions = append(rule.Actions, a)
			}
		}
		switch r.Intn(4) {
		case 0:
			rule.Conditions = append(rule.Conditions, policy.Condition{Type: policy.CondRequireConsent})
		case 1:
			rule.Conditions = append(rule.Conditions, policy.Condition{
				Type: policy.CondRequireClaim, Claim: "payment",
			})
		case 2:
			rule.Conditions = append(rule.Conditions, policy.Condition{
				Type: policy.CondRequireClaim, Claim: "tier", Value: "gold",
			})
		}
		p.Rules = append(p.Rules, rule)
	}
	return p
}

func genName(r *rand.Rand, idx int) string {
	letters := "abcdefghij"
	b := make([]byte, 6)
	for i := range b {
		b[i] = letters[r.Intn(len(letters))]
	}
	return "pol-" + string(b) + "-" + string(rune('a'+idx%26))
}

// TestFormatParseSemanticIdentityProperty: for randomly generated policies,
// Format then Parse yields policies that decide identically on a matrix of
// probe requests. This is the round-trip guarantee the DSL needs to be a
// safe export format.
func TestFormatParseSemanticIdentityProperty(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	var dir policy.Directory
	dir.Add("bob", "friends", "alice")
	dir.Add("bob", "family", "dana")
	engine := policy.NewEngine(&dir)

	probes := []policy.Request{}
	for _, subject := range []core.UserID{"bob", "alice", "chris", "dana", ""} {
		for _, action := range []core.Action{core.ActionRead, core.ActionWrite, core.ActionShare} {
			for _, claims := range []map[string]string{nil, {"payment": "x"}, {"tier": "gold"}} {
				for _, consent := range []bool{false, true} {
					probes = append(probes, policy.Request{
						Subject: subject, Requester: "gallery", Action: action,
						Owner: "bob", Realm: "travel", Claims: claims, ConsentGranted: consent,
					})
				}
			}
		}
	}

	for trial := 0; trial < 200; trial++ {
		orig := genPolicy(r, trial)
		if err := orig.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid policy: %v", trial, err)
		}
		text := Format([]policy.Policy{orig})
		parsed, err := Parse("bob", text)
		if err != nil {
			t.Fatalf("trial %d: reparse failed: %v\n%s", trial, err, text)
		}
		if len(parsed) != 1 {
			t.Fatalf("trial %d: parsed %d policies", trial, len(parsed))
		}
		got := parsed[0]
		if got.Kind != orig.Kind || got.CacheTTLSeconds != orig.CacheTTLSeconds {
			t.Fatalf("trial %d: metadata mismatch:\norig %+v\ngot  %+v", trial, orig, got)
		}
		for _, probe := range probes {
			a := engine.Evaluate(probe, &orig, nil)
			b := engine.Evaluate(probe, &got, nil)
			if a.Decision != b.Decision || a.RequireConsent != b.RequireConsent ||
				len(a.RequiredTerms) != len(b.RequiredTerms) {
				t.Fatalf("trial %d: divergence for %+v:\norig → %+v\ngot  → %+v\nDSL:\n%s",
					trial, probe, a, b, text)
			}
		}
	}
}
