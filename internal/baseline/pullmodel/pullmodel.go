// Package pullmodel is the Host-side client for the paper's earlier
// (SSP'09 poster) protocol design: "our previous proposal ... was based on
// the access control pull model that did not require an authorization token
// and was transparent for the Requester" (Section V.B.3).
//
// Every access triggers a synchronous Host→AM decision query carrying the
// identities the Host observed; there is no token and nothing to cache
// against. The benchmark harness (experiment E9) uses this to show why the
// published protocol added the token: pull cost grows linearly with
// accesses while the push-token model amortises.
package pullmodel

import (
	"fmt"
	"net/http"

	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/pep"
)

// Enforcer is a pull-model PEP. It reuses a pep pairing (the Fig. 3 trust
// relationship is identical); only the per-access flow differs.
type Enforcer struct {
	host   core.HostID
	client *http.Client
	tracer *core.Tracer
}

// New constructs a pull-model enforcer for the given host identity.
func New(host core.HostID, client *http.Client, tracer *core.Tracer) *Enforcer {
	if client == nil {
		client = http.DefaultClient
	}
	return &Enforcer{host: host, client: client, tracer: tracer}
}

// Check queries the AM for every access — the defining property (and cost)
// of the pull model.
func (e *Enforcer) Check(p pep.Pairing, subject core.UserID, requester core.RequesterID,
	realm core.RealmID, res core.ResourceID, action core.Action) (bool, error) {
	req := core.PullDecisionQuery{
		Query: core.DecisionQuery{
			PairingID: p.PairingID,
			Host:      e.host,
			Realm:     realm,
			Resource:  res,
			Action:    action,
		},
		Subject:   subject,
		Requester: requester,
	}
	e.tracer.Record(core.PhaseObtainingDecision, "host:"+string(e.host), "am",
		"pull-decision-query", string(res))
	am := amclient.New(amclient.Config{
		BaseURL:    p.AMURL,
		HTTPClient: e.client,
		PairingID:  p.PairingID,
		Secret:     p.Secret,
	})
	dec, err := am.PullDecide(req)
	if err != nil {
		return false, fmt.Errorf("pullmodel: query: %w", err)
	}
	return dec.Permit(), nil
}
