// Package sim wires complete UMAC deployments in-process: an Authorization
// Manager behind an httptest server, any number of protected Hosts, user
// agents that drive the browser redirect legs, and workload generators for
// the benchmark harness.
//
// The paper's prototype ran on Google App Engine with real browsers; this
// package is the laptop-scale substitute that exercises the identical HTTP
// flows (see DESIGN.md §4).
package sim

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/identity"
	"umac/internal/pep"
	"umac/internal/webutil"
)

// World is a running in-process deployment.
type World struct {
	AM       *am.AM
	AMServer *httptest.Server
	Outbox   *am.Outbox
	Tracer   *core.Tracer

	amRequests atomic.Int64

	mu    sync.Mutex
	hosts map[core.HostID]*SimpleHost
}

// NewWorld starts an AM with an outbox notifier and shared tracer.
func NewWorld() *World { return NewWorldConfig(am.Config{}) }

// NewWorldConfig starts a world with a customized AM configuration
// (e.g. a short token TTL for expiry tests). Name, Notifier, Tracer and
// Auth receive the standard defaults when unset.
func NewWorldConfig(cfg am.Config) *World {
	tracer := cfg.Tracer
	if tracer == nil {
		tracer = &core.Tracer{}
		cfg.Tracer = tracer
	}
	outbox, _ := cfg.Notifier.(*am.Outbox)
	if cfg.Notifier == nil {
		outbox = &am.Outbox{}
		cfg.Notifier = outbox
	}
	if cfg.Name == "" {
		cfg.Name = "am"
	}
	if cfg.Auth == nil {
		cfg.Auth = identity.HeaderAuth{}
	}
	a := am.New(cfg)
	w := &World{
		AM:     a,
		Outbox: outbox,
		Tracer: tracer,
		hosts:  make(map[core.HostID]*SimpleHost),
	}
	// Count every HTTP request reaching the AM: the round-trip metric of
	// experiments E9/E10.
	inner := a.Handler()
	w.AMServer = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		w.amRequests.Add(1)
		inner.ServeHTTP(rw, r)
	}))
	a.SetBaseURL(w.AMServer.URL)
	return w
}

// Client returns a typed v1 API client acting as user — the programmatic
// equivalent of that user's browser session against the world's AM.
func (w *World) Client(user core.UserID) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: w.AMServer.URL, User: user})
}

// AMRequests returns the number of HTTP requests the AM has served.
func (w *World) AMRequests() int64 { return w.amRequests.Load() }

// ResetAMRequests zeroes the AM request counter.
func (w *World) ResetAMRequests() { w.amRequests.Store(0) }

// Close shuts down every server in the world.
func (w *World) Close() {
	w.mu.Lock()
	hosts := make([]*SimpleHost, 0, len(w.hosts))
	for _, h := range w.hosts {
		hosts = append(hosts, h)
	}
	w.mu.Unlock()
	for _, h := range hosts {
		h.Server.Close()
	}
	w.AMServer.Close()
	w.AM.Close()
}

// Host returns a previously added host by ID.
func (w *World) Host(id core.HostID) *SimpleHost {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.hosts[id]
}

// SimpleHost is a minimal protected Host application: an in-memory resource
// tree with GET/PUT access guarded by a pep.Enforcer. The prototype apps in
// internal/apps are full applications; SimpleHost is the protocol-focused
// fixture for tests and benchmarks.
type SimpleHost struct {
	ID       core.HostID
	Enforcer *pep.Enforcer
	Server   *httptest.Server

	mu        sync.RWMutex
	resources map[core.ResourceID]*simResource
}

type simResource struct {
	owner   core.UserID
	realm   core.RealmID
	content []byte
}

// AddHost creates and starts a SimpleHost registered in the world.
func (w *World) AddHost(id core.HostID) *SimpleHost {
	h := &SimpleHost{
		ID:        id,
		resources: make(map[core.ResourceID]*simResource),
	}
	h.Enforcer = pep.New(pep.Config{Host: id, Name: string(id), Tracer: w.Tracer})
	mux := http.NewServeMux()
	mux.HandleFunc("/umac/pair/callback", h.Enforcer.HandlePairCallback)
	mux.HandleFunc("POST /umac/invalidate", h.Enforcer.HandleInvalidate)
	mux.HandleFunc("GET /res/{id...}", h.handleGet)
	mux.HandleFunc("PUT /res/{id...}", h.handlePut)
	h.Server = httptest.NewServer(mux)
	h.Enforcer.SetBaseURL(h.Server.URL)
	w.mu.Lock()
	w.hosts[id] = h
	w.mu.Unlock()
	return h
}

// AddResource stores a resource owned by owner in the given realm.
func (h *SimpleHost) AddResource(owner core.UserID, realm core.RealmID, id core.ResourceID, content []byte) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.resources[id] = &simResource{owner: owner, realm: realm, content: append([]byte(nil), content...)}
}

// ResourceURL returns the resource's URL on this host.
func (h *SimpleHost) ResourceURL(id core.ResourceID) string {
	return h.Server.URL + "/res/" + string(id)
}

func (h *SimpleHost) lookup(id core.ResourceID) (*simResource, bool) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	r, ok := h.resources[id]
	return r, ok
}

func (h *SimpleHost) handleGet(w http.ResponseWriter, r *http.Request) {
	id := core.ResourceID(r.PathValue("id"))
	res, ok := h.lookup(id)
	if !ok {
		webutil.WriteErrorf(w, http.StatusNotFound, "no such resource %s", id)
		return
	}
	if !h.Enforcer.Require(w, r, res.owner, res.realm, id, core.ActionRead) {
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(res.content)
}

func (h *SimpleHost) handlePut(w http.ResponseWriter, r *http.Request) {
	id := core.ResourceID(r.PathValue("id"))
	res, ok := h.lookup(id)
	if !ok {
		webutil.WriteErrorf(w, http.StatusNotFound, "no such resource %s", id)
		return
	}
	if !h.Enforcer.Require(w, r, res.owner, res.realm, id, core.ActionWrite) {
		return
	}
	body := make([]byte, 0, 1024)
	buf := make([]byte, 1024)
	for {
		n, err := r.Body.Read(buf)
		body = append(body, buf[:n]...)
		if err != nil {
			break
		}
	}
	h.mu.Lock()
	h.resources[id].content = body
	h.mu.Unlock()
	webutil.WriteJSON(w, http.StatusOK, map[string]int{"stored": len(body)})
}

// UserAgent simulates a user's browser: it authenticates to the AM via the
// identity header and follows redirects, driving the Fig. 3 and Fig. 4
// browser legs.
type UserAgent struct {
	User   core.UserID
	Client *http.Client
}

// NewUserAgent returns a browser for the given user.
func NewUserAgent(user core.UserID) *UserAgent {
	return &UserAgent{
		User: user,
		Client: &http.Client{
			Transport: &headerInjector{user: string(user), base: http.DefaultTransport},
		},
	}
}

// headerInjector adds the simulated-authentication header to every request
// (the user is "logged in everywhere").
type headerInjector struct {
	user string
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (h *headerInjector) RoundTrip(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	clone.Header.Set(identity.DefaultUserHeader, h.user)
	return h.base.RoundTrip(clone)
}

// Visit GETs a URL (following redirects) and requires a 2xx outcome.
func (ua *UserAgent) Visit(rawURL string) error {
	resp, err := ua.Client.Get(rawURL)
	if err != nil {
		return fmt.Errorf("sim: visit %s: %w", rawURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return fmt.Errorf("sim: visit %s: status %d", rawURL, resp.StatusCode)
	}
	return nil
}

// PairHost drives the complete Fig. 3 flow: the user configures their AM at
// the Host, the browser is bounced Host→AM→Host, and the Host exchanges the
// one-time code for the channel secret.
func (ua *UserAgent) PairHost(h *SimpleHost, amURL string) error {
	confirmURL := h.Enforcer.BeginPairing(amURL, ua.User)
	if err := ua.Visit(confirmURL); err != nil {
		return fmt.Errorf("sim: pairing: %w", err)
	}
	if !h.Enforcer.Delegated(ua.User) {
		return fmt.Errorf("sim: pairing did not complete for %s at %s", ua.User, h.ID)
	}
	return nil
}

// PairEnforcer drives Fig. 3 for any pep.Enforcer-based application (the
// prototype apps use this).
func (ua *UserAgent) PairEnforcer(e *pep.Enforcer, amURL string) error {
	confirmURL := e.BeginPairing(amURL, ua.User)
	if err := ua.Visit(confirmURL); err != nil {
		return fmt.Errorf("sim: pairing: %w", err)
	}
	if !e.Delegated(ua.User) {
		return fmt.Errorf("sim: pairing did not complete for %s", ua.User)
	}
	return nil
}

// AMURL trims a trailing slash for URL joining.
func AMURL(base string) string { return strings.TrimSuffix(base, "/") }
