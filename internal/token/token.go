// Package token implements the Authorization Manager's token service.
//
// The paper requires that an authorization token "refers to a particular
// resource or a group of resources (realm) and a particular Requester. It is
// issued by an Authorization Manager ... is bound to the access request and
// cannot be used to access other resources protected by this particular AM"
// (Section V.B.3). The paper planned to adopt OAuth-WRAP-style bearer
// tokens; this implementation uses self-contained HMAC-SHA256 tokens, which
// preserve exactly those binding semantics with stdlib crypto.
//
// A token is base64url(JSON claims) + "." + base64url(HMAC-SHA256(claims)).
// Only the issuing AM can mint or verify tokens (it holds the master key);
// Hosts do not verify tokens locally — they send them back to the AM inside
// decision queries (Fig. 6) — but the AM also exposes Validate for its own
// token-endpoint and decision-endpoint checks.
package token

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"umac/internal/core"
)

// Claims is the payload bound into an authorization token.
type Claims struct {
	// ID is a unique token identifier (useful for revocation and auditing).
	ID string `json:"id"`
	// Requester the token was issued to; tokens are non-transferable.
	Requester core.RequesterID `json:"requester"`
	// Subject is the human identity the Requester acts for (may be empty).
	Subject core.UserID `json:"subject,omitempty"`
	// Host and Realm scope the token: it opens exactly one realm at one
	// Host.
	Host  core.HostID  `json:"host"`
	Realm core.RealmID `json:"realm"`
	// IssuedAt and ExpiresAt bound the token's lifetime.
	IssuedAt  time.Time `json:"iat"`
	ExpiresAt time.Time `json:"exp"`
}

// Service mints and validates tokens with a single master key. Construct
// with NewService.
type Service struct {
	key []byte
	ttl time.Duration
	now func() time.Time
}

// DefaultTTL is the token lifetime used when NewService receives ttl <= 0.
// "Depending on the validity of the token, a Requester may need to obtain it
// only once and can use it for multiple subsequent access requests"
// (Section V.A.4) — so tokens are deliberately long-lived relative to a
// browsing session.
const DefaultTTL = 30 * time.Minute

// NewService returns a token service using the given master key. An empty
// key is replaced by a fresh random one (suitable for single-process AMs;
// pass an explicit key to survive restarts).
func NewService(key []byte, ttl time.Duration) *Service {
	if len(key) == 0 {
		key = []byte(core.NewSecret(32))
	} else {
		// Copy at the boundary: the caller may reuse its slice.
		key = append([]byte(nil), key...)
	}
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	return &Service{key: key, ttl: ttl, now: time.Now}
}

// SetClock overrides the service's time source; tests use it to exercise
// expiry without sleeping.
func (s *Service) SetClock(now func() time.Time) { s.now = now }

// TTL returns the configured token lifetime.
func (s *Service) TTL() time.Duration { return s.ttl }

// Mint issues a token for the given binding. ID, IssuedAt and ExpiresAt are
// filled in by the service.
func (s *Service) Mint(requester core.RequesterID, subject core.UserID, host core.HostID, realm core.RealmID) (string, Claims, error) {
	if requester == "" || host == "" || realm == "" {
		return "", Claims{}, fmt.Errorf("token: requester, host and realm are required")
	}
	now := s.now()
	c := Claims{
		ID:        core.NewID("tok"),
		Requester: requester,
		Subject:   subject,
		Host:      host,
		Realm:     realm,
		IssuedAt:  now,
		ExpiresAt: now.Add(s.ttl),
	}
	payload, err := json.Marshal(c)
	if err != nil {
		return "", Claims{}, fmt.Errorf("token: encode claims: %w", err)
	}
	sig := s.sign(payload)
	tok := base64.RawURLEncoding.EncodeToString(payload) + "." +
		base64.RawURLEncoding.EncodeToString(sig)
	return tok, c, nil
}

// Validate checks the token's signature and expiry and returns its claims.
func (s *Service) Validate(tok string) (Claims, error) {
	payload, err := s.verify(tok)
	if err != nil {
		return Claims{}, err
	}
	var c Claims
	if err := json.Unmarshal(payload, &c); err != nil {
		return Claims{}, fmt.Errorf("%w: bad claims: %v", core.ErrTokenInvalid, err)
	}
	if s.now().After(c.ExpiresAt) {
		return Claims{}, fmt.Errorf("%w: expired at %s", core.ErrTokenInvalid, c.ExpiresAt.Format(time.RFC3339))
	}
	return c, nil
}

// CheckScope verifies that validated claims authorize the given use: the
// token must have been minted for this requester, host and realm. It
// returns core.ErrTokenScope otherwise. An empty requester skips the
// requester check (Hosts forward tokens without knowing the requester's
// self-declared identity; the AM re-checks).
func CheckScope(c Claims, requester core.RequesterID, host core.HostID, realm core.RealmID) error {
	if requester != "" && c.Requester != requester {
		return fmt.Errorf("%w: token for requester %q used by %q", core.ErrTokenScope, c.Requester, requester)
	}
	if c.Host != host {
		return fmt.Errorf("%w: token for host %q used at %q", core.ErrTokenScope, c.Host, host)
	}
	if c.Realm != realm {
		return fmt.Errorf("%w: token for realm %q used for %q", core.ErrTokenScope, c.Realm, realm)
	}
	return nil
}

func (s *Service) sign(payload []byte) []byte {
	mac := hmac.New(sha256.New, s.key)
	mac.Write(payload)
	return mac.Sum(nil)
}

// verify checks structure and signature, returning the payload bytes.
func (s *Service) verify(tok string) ([]byte, error) {
	dot := strings.IndexByte(tok, '.')
	if dot < 0 || strings.IndexByte(tok[dot+1:], '.') >= 0 {
		return nil, fmt.Errorf("%w: malformed", core.ErrTokenInvalid)
	}
	payload, err := base64.RawURLEncoding.DecodeString(tok[:dot])
	if err != nil {
		return nil, fmt.Errorf("%w: bad payload encoding", core.ErrTokenInvalid)
	}
	sig, err := base64.RawURLEncoding.DecodeString(tok[dot+1:])
	if err != nil {
		return nil, fmt.Errorf("%w: bad signature encoding", core.ErrTokenInvalid)
	}
	if !hmac.Equal(sig, s.sign(payload)) {
		return nil, fmt.Errorf("%w: signature mismatch", core.ErrTokenInvalid)
	}
	return payload, nil
}
