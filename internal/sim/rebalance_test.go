package sim

import (
	"context"
	"testing"
	"time"
)

// TestRebalanceWorkload proves the coordinator's operator-facing surface:
// grow the ring over HTTP, abort mid-plan leaving whole owners, replan
// exactly the remainder, converge with zero acknowledged loss.
func TestRebalanceWorkload(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	rep, err := RunRebalanceWorkload(ctx, 24)
	if err != nil {
		t.Fatalf("rebalance workload: %v (report %+v)", err, rep)
	}
	if rep.MovesPlanned == 0 || rep.MovesAtAbort == 0 {
		t.Fatalf("degenerate run: %+v", rep)
	}
	if rep.MovesAtAbort+rep.MovesAfterReplan != rep.MovesPlanned {
		t.Fatalf("replan arithmetic broken: %+v", rep)
	}
	t.Logf("seeded %d owners; plan %d moves, aborted after %d, replanned %d, converged at ring v%d",
		rep.OwnersSeeded, rep.MovesPlanned, rep.MovesAtAbort, rep.MovesAfterReplan, rep.FinalRingVersion)
}
