package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// snapshot is the on-disk representation: a flat, key-sorted entity list so
// snapshots diff cleanly under version control.
type snapshot struct {
	FormatVersion int      `json:"format_version"`
	Entities      []Entity `json:"entities"`
}

const snapshotFormatVersion = 1

// Snapshot writes the full store contents to path atomically (write to a
// temp file in the same directory, then rename).
func (s *Store) Snapshot(path string) error {
	s.mu.RLock()
	snap := snapshot{FormatVersion: snapshotFormatVersion}
	for _, m := range s.kinds {
		for _, e := range m {
			snap.Entities = append(snap.Entities, e)
		}
	}
	s.mu.RUnlock()
	sort.Slice(snap.Entities, func(i, j int) bool {
		a, b := snap.Entities[i], snap.Entities[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Key < b.Key
	})

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("store: snapshot encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	return nil
}

// Load replaces the store contents with the snapshot at path.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: load decode: %w", err)
	}
	if snap.FormatVersion != snapshotFormatVersion {
		return fmt.Errorf("store: load: unsupported format version %d", snap.FormatVersion)
	}
	kinds := make(map[string]map[string]Entity)
	for _, e := range snap.Entities {
		if e.Kind == "" || e.Key == "" {
			return fmt.Errorf("store: load: entity with empty kind or key")
		}
		m, ok := kinds[e.Kind]
		if !ok {
			m = make(map[string]Entity)
			kinds[e.Kind] = m
		}
		m[e.Key] = e
	}
	s.mu.Lock()
	s.kinds = kinds
	s.mu.Unlock()
	return nil
}
