package am

import (
	"fmt"
	"time"

	"umac/internal/audit"
	"umac/internal/core"
)

// This file implements the two protocol variants the paper positions itself
// against (Section VIII), so the benchmark harness can compare them on the
// same AM, the same policies and the same workload:
//
//   - the pull model — the authors' earlier SSP'09 proposal "based on the
//     access control pull model that did not require an authorization token
//     and was transparent for the Requester": the Host queries the AM on
//     every access, with no token and no cacheable grant;
//
//   - the UMA authorization-state model — "in UMA a Requester does not
//     obtain a token from AM but rather establishes an authorization state
//     for a particular realm at a particular Host. This state is then
//     checked by a Host when it queries AM for an access control decision."

// PullDecide answers a tokenless Host decision query: the Host itself
// asserts the subject and requester identities it observed. Pull-model
// decisions are never cacheable — that is the structural weakness the
// push-token model fixes.
func (a *AM) PullDecide(pairingID string, q core.DecisionQuery, subject core.UserID, requester core.RequesterID) (core.DecisionResponse, error) {
	pairing, err := a.GetPairing(pairingID)
	if err != nil {
		return core.DecisionResponse{}, err
	}
	if pairing.Host != q.Host {
		return core.DecisionResponse{}, fmt.Errorf("am: pairing %s belongs to host %q, query claims %q",
			pairingID, pairing.Host, q.Host)
	}
	realm, err := a.LookupRealm(q.Host, q.Realm)
	if err != nil {
		return core.DecisionResponse{}, err
	}
	if err := a.checkShard(realm.Owner); err != nil {
		return core.DecisionResponse{}, err
	}
	req := core.TokenRequest{
		Requester: requester,
		Subject:   subject,
		Host:      q.Host,
		Realm:     q.Realm,
		Resource:  q.Resource,
		Action:    q.Action,
	}
	res := a.evaluate(req, realm, false)
	decision := core.DecisionDeny
	if res.Decision == core.DecisionPermit {
		decision = core.DecisionPermit
	}
	a.auditDecision(realm, q, requester, decision, res.Reason+" (pull)")
	a.trace(core.PhaseObtainingDecision, "am:"+a.name, "host:"+string(q.Host),
		"pull-decision", decision.String())
	return core.DecisionResponse{
		Decision:        decision.String(),
		CacheTTLSeconds: 0, // pull model: transparent, stateless, uncacheable
		Reason:          res.Reason,
	}, nil
}

// authState is an established UMA-style authorization state.
type authState struct {
	Handle    string           `json:"handle"`
	Requester core.RequesterID `json:"requester"`
	Subject   core.UserID      `json:"subject,omitempty"`
	Host      core.HostID      `json:"host"`
	Realm     core.RealmID     `json:"realm"`
	CreatedAt time.Time        `json:"created_at"`
}

const kindAuthState = "auth-state"

// EstablishState records an authorization state for (requester, host,
// realm) after a policy pre-check, returning the opaque state handle the
// Requester presents to the Host.
func (a *AM) EstablishState(req core.TokenRequest) (string, error) {
	realm, err := a.LookupRealm(req.Host, req.Realm)
	if err != nil {
		return "", err
	}
	release, err := a.gateOwner(realm.Owner)
	if err != nil {
		return "", err
	}
	defer release()
	res := a.evaluate(req, realm, false)
	if res.Decision != core.DecisionPermit {
		a.audit.Append(audit.Event{
			Type: audit.EventTokenRefused, Owner: realm.Owner, Host: req.Host,
			Realm: req.Realm, Requester: req.Requester, Subject: req.Subject,
			Action: req.Action, Detail: res.Reason + " (state)",
		})
		return "", fmt.Errorf("%w: %s", core.ErrAccessDenied, res.Reason)
	}
	st := authState{
		Handle:    core.NewID("state"),
		Requester: req.Requester,
		Subject:   req.Subject,
		Host:      req.Host,
		Realm:     req.Realm,
		CreatedAt: time.Now(),
	}
	if _, err := a.store.Put(kindAuthState, st.Handle, st); err != nil {
		return "", fmt.Errorf("am: persist state: %w", err)
	}
	a.trace(core.PhaseObtainingToken, "am:"+a.name, "requester:"+string(req.Requester),
		"state-established", st.Handle)
	return st.Handle, nil
}

// StateDecide answers a Host decision query in the UMA-state model: the
// Host presents the Requester's state handle; the AM checks the state
// binding and re-evaluates the policies.
func (a *AM) StateDecide(pairingID string, q core.DecisionQuery, handle string) (core.DecisionResponse, error) {
	pairing, err := a.GetPairing(pairingID)
	if err != nil {
		return core.DecisionResponse{}, err
	}
	if pairing.Host != q.Host {
		return core.DecisionResponse{}, fmt.Errorf("am: pairing %s belongs to host %q, query claims %q",
			pairingID, pairing.Host, q.Host)
	}
	realm, err := a.LookupRealm(q.Host, q.Realm)
	if err != nil {
		return core.DecisionResponse{}, err
	}
	if err := a.checkShard(realm.Owner); err != nil {
		return core.DecisionResponse{}, err
	}
	deny := func(reason string) core.DecisionResponse {
		a.auditDecision(realm, q, "", core.DecisionDeny, reason)
		return core.DecisionResponse{Decision: core.DecisionDeny.String(), Reason: reason}
	}
	var st authState
	if _, err := a.store.Get(kindAuthState, handle, &st); err != nil {
		return deny("unknown authorization state"), nil
	}
	if st.Host != q.Host || st.Realm != q.Realm {
		return deny("authorization state out of scope"), nil
	}
	req := core.TokenRequest{
		Requester: st.Requester,
		Subject:   st.Subject,
		Host:      q.Host,
		Realm:     q.Realm,
		Resource:  q.Resource,
		Action:    q.Action,
	}
	res := a.evaluate(req, realm, false)
	decision := core.DecisionDeny
	if res.Decision == core.DecisionPermit {
		decision = core.DecisionPermit
	}
	a.auditDecision(realm, q, st.Requester, decision, res.Reason+" (state)")
	return core.DecisionResponse{
		Decision:        decision.String(),
		CacheTTLSeconds: a.cacheTTLSeconds(res),
		Reason:          res.Reason,
	}, nil
}
