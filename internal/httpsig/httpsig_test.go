package httpsig

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

const (
	testPairing = "pair-1"
	testSecret  = "sekrit-0123456789"
)

func signedRequest(t *testing.T, method, path, body string) *http.Request {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, "http://am.example"+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if err := Sign(req, testPairing, testSecret); err != nil {
		t.Fatal(err)
	}
	return req
}

func testVerifier() *Verifier {
	return NewVerifier(SecretSourceFunc(func(id string) (string, bool) {
		if id == testPairing {
			return testSecret, true
		}
		return "", false
	}))
}

func TestSignVerifyRoundTrip(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodPost, "/api/decision", `{"realm":"travel"}`)
	got, err := v.Verify(req)
	if err != nil {
		t.Fatal(err)
	}
	if got != testPairing {
		t.Fatalf("pairing = %q", got)
	}
	// Body must be restored for the handler.
	b, _ := io.ReadAll(req.Body)
	if string(b) != `{"realm":"travel"}` {
		t.Fatalf("body consumed: %q", b)
	}
}

func TestVerifyEmptyBody(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodGet, "/api/policies", "")
	if _, err := v.Verify(req); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsUnsigned(t *testing.T) {
	v := testVerifier()
	req, _ := http.NewRequest(http.MethodGet, "http://am.example/api/x", nil)
	if _, err := v.Verify(req); !errors.Is(err, ErrUnsigned) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsUnknownPairing(t *testing.T) {
	v := testVerifier()
	req, _ := http.NewRequest(http.MethodGet, "http://am.example/api/x", nil)
	if err := Sign(req, "pair-unknown", testSecret); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(req); !errors.Is(err, ErrUnknownPairing) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsWrongSecret(t *testing.T) {
	v := testVerifier()
	req, _ := http.NewRequest(http.MethodGet, "http://am.example/api/x", nil)
	if err := Sign(req, testPairing, "wrong-secret"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyRejectsBodyTampering(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodPost, "/api/decision", `{"decision":"deny"}`)
	req.Body = io.NopCloser(strings.NewReader(`{"decision":"permit"}`))
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered body accepted: %v", err)
	}
}

func TestVerifyRejectsPathTampering(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodPost, "/api/decision", "x")
	req.URL.Path = "/api/pairings"
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered path accepted: %v", err)
	}
}

func TestVerifyRejectsMethodTampering(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodGet, "/api/policies", "")
	req.Method = http.MethodDelete
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered method accepted: %v", err)
	}
}

func TestVerifyRejectsReplay(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodPost, "/api/decision", "x")
	if _, err := v.Verify(req); err != nil {
		t.Fatal(err)
	}
	// Replaying the identical signed request (fresh body reader) fails.
	req.Body = io.NopCloser(strings.NewReader("x"))
	if _, err := v.Verify(req); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay accepted: %v", err)
	}
}

func TestVerifyRejectsSkew(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodPost, "/api/decision", "x")
	v.SetClock(func() time.Time { return time.Now().Add(MaxSkew + time.Minute) })
	if _, err := v.Verify(req); !errors.Is(err, ErrSkew) {
		t.Fatalf("stale timestamp accepted: %v", err)
	}
	v.SetClock(func() time.Time { return time.Now().Add(-(MaxSkew + time.Minute)) })
	if _, err := v.Verify(req); !errors.Is(err, ErrSkew) {
		t.Fatalf("future timestamp accepted: %v", err)
	}
}

func TestVerifyRejectsBadTimestampHeader(t *testing.T) {
	v := testVerifier()
	req := signedRequest(t, http.MethodPost, "/api/decision", "x")
	req.Header.Set(HeaderTimestamp, "not-a-number")
	if _, err := v.Verify(req); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("err = %v", err)
	}
}

func TestNonceSweep(t *testing.T) {
	v := testVerifier()
	base := time.Now()
	if err := v.rememberNonce("p/n1", base); err != nil {
		t.Fatal(err)
	}
	// Duplicate inside the horizon is a replay.
	if err := v.rememberNonce("p/n1", base.Add(time.Second)); !errors.Is(err, ErrReplay) {
		t.Fatalf("err = %v", err)
	}
	// A nonce arriving after the horizon sweeps expired entries and the
	// old nonce becomes acceptable again (its signature timestamp would be
	// rejected by the skew check anyway).
	if err := v.rememberNonce("p/n2", base.Add(MaxSkew+time.Second)); err != nil {
		t.Fatal(err)
	}
	v.mu.Lock()
	n := len(v.nonces)
	v.mu.Unlock()
	if n != 1 {
		t.Fatalf("old nonce not swept: %d entries", n)
	}
}

func TestIsSignedAndStrip(t *testing.T) {
	req := signedRequest(t, http.MethodGet, "/api/x", "")
	if !IsSigned(req) {
		t.Fatal("IsSigned = false for signed request")
	}
	StripSignature(req)
	if IsSigned(req) {
		t.Fatal("IsSigned = true after strip")
	}
	plain, _ := http.NewRequest(http.MethodGet, "http://x/", nil)
	if IsSigned(plain) {
		t.Fatal("IsSigned = true for plain request")
	}
}

func TestSignedPath(t *testing.T) {
	if !SignedPath("/api/decision", "/api/") {
		t.Fatal("api path not matched")
	}
	if SignedPath("/login", "/api/") {
		t.Fatal("login matched")
	}
}

func TestSignPreservesBodyForTransport(t *testing.T) {
	req, _ := http.NewRequest(http.MethodPost, "http://x/api", bytes.NewReader([]byte("payload")))
	if err := Sign(req, testPairing, testSecret); err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(req.Body)
	if string(b) != "payload" {
		t.Fatalf("body = %q", b)
	}
}

func TestDistinctNoncesPerSign(t *testing.T) {
	r1 := signedRequest(t, http.MethodGet, "/api/x", "")
	r2 := signedRequest(t, http.MethodGet, "/api/x", "")
	if r1.Header.Get(HeaderNonce) == r2.Header.Get(HeaderNonce) {
		t.Fatal("nonces repeat")
	}
}
