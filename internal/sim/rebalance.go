package sim

import (
	"context"
	"fmt"
	"net/http/httptest"
	"time"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/policy"
)

// This file is the bulk-rebalance workload: a two-shard cluster grows a
// third shard through the coordinator's HTTP surface (POST /v1/rebalance
// on an ordinary node — the same path umacctl and operators use), is
// aborted mid-plan, and is then re-posted to completion. The assertions
// are the coordinator's abort and replan promises: a clean stop leaves
// every owner wholly on exactly one shard with nothing acknowledged
// lost, and re-posting the same target plans exactly the remainder.

// RebalanceReport summarizes one RunRebalanceWorkload execution.
type RebalanceReport struct {
	// OwnersSeeded counts owners created across the two original shards;
	// each carries one acknowledged policy.
	OwnersSeeded int
	// MovesPlanned is the first plan's size (owners remapped to the new
	// shard); MovesAtAbort how many it completed before the abort landed.
	MovesPlanned int
	MovesAtAbort int
	// MovesAfterReplan is the second plan's size. The replan promise is
	// MovesAtAbort + MovesAfterReplan == MovesPlanned.
	MovesAfterReplan int
	// SplitOwners lists owners effectively owned by zero or by multiple
	// shards after the abort (must be empty — abort leaves whole owners).
	SplitOwners []core.UserID
	// LostPolicies lists acknowledged policy IDs unreadable through the
	// shard-routed client after the final convergence (must be empty).
	LostPolicies []core.PolicyID
	// FinalRingVersion is the ring version in force everywhere at the end.
	FinalRingVersion int64
}

// RunRebalanceWorkload drives the grow-abort-replan scenario. owners is
// the number of owners seeded before the ring grows. ctx bounds every
// phase.
func RunRebalanceWorkload(ctx context.Context, owners int) (RebalanceReport, error) {
	var rep RebalanceReport

	// --- Topology: shard-a and shard-b in the ring, shard-c waiting ---
	srvs := make(map[string]*httptest.Server, 3)
	for _, name := range []string{"shard-a", "shard-b", "shard-c"} {
		srv := httptest.NewUnstartedServer(nil)
		srv.Start()
		srvs[name] = srv
		defer srv.Close()
	}
	shards := []core.ShardInfo{
		{Name: "shard-a", Primary: srvs["shard-a"].URL, Endpoints: []string{srvs["shard-a"].URL}},
		{Name: "shard-b", Primary: srvs["shard-b"].URL, Endpoints: []string{srvs["shard-b"].URL}},
	}
	ring, err := cluster.New(shards, 0)
	if err != nil {
		return rep, err
	}
	for _, name := range []string{"shard-a", "shard-b", "shard-c"} {
		a := am.New(am.Config{
			Name: "am-" + name, TokenKey: clusterTokenKey, BaseURL: srvs[name].URL,
			Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: clusterSecret},
			Cluster:     am.ClusterConfig{Shard: name, Ring: ring},
		})
		defer a.Close()
		srvs[name].Config.Handler = a.Handler()
	}
	admin := func(name string) *amclient.Client {
		return amclient.New(amclient.Config{BaseURL: srvs[name].URL, ReplSecret: clusterSecret})
	}

	// --- Seed: one acknowledged policy per owner, shard-routed ---
	ackedBy := make(map[core.UserID]core.PolicyID, owners)
	for i := 0; i < owners; i++ {
		if err := checkPhase(ctx, "seed"); err != nil {
			return rep, err
		}
		owner := core.UserID(fmt.Sprintf("user-%d", i))
		mgr, err := amclient.NewCluster(amclient.Config{BaseURL: srvs["shard-a"].URL, User: owner})
		if err != nil {
			return rep, err
		}
		p, err := mgr.CreatePolicy(policy.Policy{
			Owner: owner, Kind: policy.KindGeneral,
			Rules: []policy.Rule{{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
				Actions:  []core.Action{core.ActionRead},
			}},
		})
		if err != nil {
			return rep, fmt.Errorf("sim: seed %s: %w", owner, err)
		}
		ackedBy[owner] = p.ID
		rep.OwnersSeeded++
	}

	// --- Grow: target ring = current + shard-c, built from the node's own
	// view exactly as the CLI does ---
	coord := admin("shard-a")
	info, err := coord.ClusterInfo()
	if err != nil {
		return rep, err
	}
	target := core.RingState{
		Version: info.RingVersion + 1, Vnodes: info.Vnodes,
		Shards: append(append([]core.ShardInfo(nil), info.Shards...), core.ShardInfo{
			Name: "shard-c", Primary: srvs["shard-c"].URL, Endpoints: []string{srvs["shard-c"].URL},
		}),
	}
	// Rate-limit so the abort provably lands mid-plan.
	if _, err := coord.RebalanceStart(core.RebalanceRequest{Target: target, MovesPerSec: 20}); err != nil {
		return rep, fmt.Errorf("sim: rebalance start: %w", err)
	}

	// --- Abort once at least one move has landed ---
	for {
		if err := checkPhase(ctx, "await-first-moves"); err != nil {
			return rep, err
		}
		st, err := coord.RebalanceStatus()
		if err != nil {
			return rep, err
		}
		rep.MovesPlanned = st.Total
		if st.State != core.RebalanceRunning || st.Done >= 1 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := coord.RebalanceAbort(); err != nil {
		return rep, fmt.Errorf("sim: abort: %w", err)
	}
	var st core.RebalanceStatus
	for {
		if err := checkPhase(ctx, "await-abort"); err != nil {
			return rep, err
		}
		if st, err = coord.RebalanceStatus(); err != nil {
			return rep, err
		}
		if st.State != core.RebalanceRunning {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != core.RebalanceAborted || st.Done >= st.Total {
		return rep, fmt.Errorf("sim: abort landed as %q after %d/%d moves — not mid-plan", st.State, st.Done, st.Total)
	}
	rep.MovesAtAbort = st.Done

	// --- Abort contract: every owner wholly on exactly one shard ---
	placed := make(map[core.UserID]int)
	for _, name := range []string{"shard-a", "shard-b", "shard-c"} {
		stats, err := admin(name).OwnerStats()
		if err != nil {
			return rep, fmt.Errorf("sim: owner stats of %s: %w", name, err)
		}
		for _, o := range stats.Owners {
			placed[o.Owner]++
		}
	}
	for owner := range ackedBy {
		if placed[owner] != 1 {
			rep.SplitOwners = append(rep.SplitOwners, owner)
		}
	}
	if len(rep.SplitOwners) > 0 {
		return rep, fmt.Errorf("sim: %d owners split or orphaned after abort: %v", len(rep.SplitOwners), rep.SplitOwners)
	}

	// --- Replan: re-posting the same target covers exactly the remainder ---
	st, err = coord.RebalanceStart(core.RebalanceRequest{Target: target})
	if err != nil {
		return rep, fmt.Errorf("sim: replan: %w", err)
	}
	rep.MovesAfterReplan = st.Total
	if rep.MovesAtAbort+rep.MovesAfterReplan != rep.MovesPlanned {
		return rep, fmt.Errorf("sim: replan covers %d moves after %d done, first plan had %d",
			rep.MovesAfterReplan, rep.MovesAtAbort, rep.MovesPlanned)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if err := checkPhase(ctx, "await-convergence"); err != nil {
			return rep, err
		}
		if st, err = coord.RebalanceStatus(); err != nil {
			return rep, err
		}
		if st.State == core.RebalanceDone {
			break
		}
		if st.State != core.RebalanceRunning || time.Now().After(deadline) {
			return rep, fmt.Errorf("sim: convergence stalled in %q (%d/%d): %s", st.State, st.Done, st.Total, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// --- Zero loss: every acknowledged policy readable via routed reads ---
	for owner, id := range ackedBy {
		reader, err := amclient.NewCluster(amclient.Config{BaseURL: srvs["shard-a"].URL, User: owner})
		if err != nil {
			return rep, err
		}
		if _, err := reader.GetPolicy(owner, id); err != nil {
			rep.LostPolicies = append(rep.LostPolicies, id)
		}
	}
	if len(rep.LostPolicies) > 0 {
		return rep, fmt.Errorf("sim: %d acknowledged policies lost across abort+replan", len(rep.LostPolicies))
	}
	for _, name := range []string{"shard-a", "shard-b", "shard-c"} {
		inf, err := admin(name).ClusterInfo()
		if err != nil {
			return rep, err
		}
		if inf.RingVersion != target.Version {
			return rep, fmt.Errorf("sim: %s at ring v%d after convergence, want v%d", name, inf.RingVersion, target.Version)
		}
		if len(inf.Overrides) != 0 {
			return rep, fmt.Errorf("sim: %s still holds overrides after convergence: %v", name, inf.Overrides)
		}
	}
	rep.FinalRingVersion = target.Version
	return rep, nil
}
