package amclient

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"umac/internal/core"
)

// This file implements EventStream, the reconnecting consumer of the AM's
// /v1/events SSE family: it dials the stream with the client's configured
// credentials, parses frames into core.Event values, tracks the cursor,
// and on any connection loss reconnects with Last-Event-ID and jittered
// exponential backoff. Gaps (slow consumer, rolled replay window) arrive
// in-band as core.EventResync events — the caller decides what re-sync
// means for it. After MaxAttempts consecutive failed connections Next
// returns ErrStreamFailed, the signal to fall back to polling.

// ErrStreamFailed reports that the event stream could not be (re-)
// established after StreamConfig.MaxAttempts consecutive attempts. The
// caller should fall back to its polling path; the stream may be retried
// later by calling Next again (the attempt counter restarts).
var ErrStreamFailed = errors.New("amclient: event stream failed")

// Stream tuning defaults.
const (
	// DefaultStreamMaxAttempts is how many consecutive connection failures
	// Next tolerates before returning ErrStreamFailed.
	DefaultStreamMaxAttempts = 5
	// DefaultStreamBackoff is the initial reconnect backoff.
	DefaultStreamBackoff = 100 * time.Millisecond
	// DefaultStreamMaxBackoff caps the reconnect backoff.
	DefaultStreamMaxBackoff = 5 * time.Second
	// DefaultStreamStallTimeout is how long a connection may stay silent
	// (no events, no heartbeats) before it is presumed dead and redialed.
	// It must comfortably exceed the server's heartbeat interval.
	DefaultStreamStallTimeout = 60 * time.Second
)

// StreamConfig configures an EventStream subscription.
type StreamConfig struct {
	// Path is the events route to subscribe to, relative to /v1
	// ("/events", "/events/consent", "/events/invalidation"). Empty means
	// "/events".
	Path string
	// Query carries subscription parameters (ticket, types, owner).
	Query url.Values
	// After is the initial resume cursor: the stream reconnects with
	// Last-Event-ID = cursor, starting at After. 0 or negative means
	// live-only (no initial replay).
	After int64
	// MaxAttempts bounds consecutive failed connections before Next
	// returns ErrStreamFailed; 0 means DefaultStreamMaxAttempts.
	MaxAttempts int
	// Backoff is the initial reconnect delay (doubled per failure, ±50%
	// jitter); 0 means DefaultStreamBackoff.
	Backoff time.Duration
	// MaxBackoff caps the reconnect delay; 0 means DefaultStreamMaxBackoff.
	MaxBackoff time.Duration
	// StallTimeout kills a connection that delivers nothing (not even
	// heartbeats) for this long; 0 means DefaultStreamStallTimeout.
	StallTimeout time.Duration
}

// EventStream is a reconnecting subscription to one /v1/events route.
// Obtain with Client.Stream; call Next in a loop and Close when done. Not
// safe for concurrent Next calls (one consumer per stream).
type EventStream struct {
	c   *Client
	cfg StreamConfig

	mu   sync.Mutex
	resp *http.Response // live connection, nil between dials
	br   *bufio.Reader

	cursor   int64 // last seen event seq (resume cursor)
	attempts int   // consecutive failed connection attempts
	closed   bool
}

// Stream opens a lazy subscription to one of the /v1/events routes: no
// connection is made until the first Next call, and every connection
// carries the client's configured authentication (session header, repl
// bearer, pairing signature) exactly like any other API call.
func (c *Client) Stream(cfg StreamConfig) *EventStream {
	if cfg.Path == "" {
		cfg.Path = "/events"
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultStreamMaxAttempts
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = DefaultStreamBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultStreamMaxBackoff
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = DefaultStreamStallTimeout
	}
	s := &EventStream{c: c, cfg: cfg, cursor: -1}
	if cfg.After > 0 {
		s.cursor = cfg.After
	}
	return s
}

// Cursor returns the sequence number of the last event Next delivered
// (the Last-Event-ID a reconnect will present), or the configured After
// before any delivery, or -1 for a fresh live-only stream.
func (s *EventStream) Cursor() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cursor
}

// Close tears the stream down: any in-flight Next unblocks with an error
// and future Next calls return ErrStreamFailed.
func (s *EventStream) Close() error {
	s.mu.Lock()
	s.closed = true
	resp := s.resp
	s.resp, s.br = nil, nil
	s.mu.Unlock()
	if resp != nil {
		resp.Body.Close()
	}
	return nil
}

// abort severs the live connection (watchdogs and context cancellation
// use it to unblock a parked read).
func (s *EventStream) abort() {
	s.mu.Lock()
	resp := s.resp
	s.mu.Unlock()
	if resp != nil {
		resp.Body.Close()
	}
}

// Next returns the next event, transparently (re)connecting as needed.
// A returned core.EventResync means events were lost before the next
// frame: the caller must run its re-sync path (drop caches, re-poll)
// before trusting subsequent events. When the stream cannot be
// established after MaxAttempts consecutive tries — or the server rejects
// the subscription outright (4xx) — Next returns an error wrapping
// ErrStreamFailed and the underlying cause; the caller falls back to
// polling. ctx bounds this call AND the connection: cancellation severs
// the stream (the next call redials with the cursor).
func (s *EventStream) Next(ctx context.Context) (core.Event, error) {
	// Unblock a parked body read when ctx ends.
	stop := context.AfterFunc(ctx, s.abort)
	defer stop()
	for {
		if err := ctx.Err(); err != nil {
			return core.Event{}, err
		}
		s.mu.Lock()
		closed, connected := s.closed, s.resp != nil
		s.mu.Unlock()
		if closed {
			return core.Event{}, fmt.Errorf("%w: stream closed", ErrStreamFailed)
		}
		if !connected {
			if err := s.connect(ctx); err != nil {
				return core.Event{}, err
			}
			continue
		}
		e, err := s.readEvent()
		if err != nil {
			// Connection lost mid-stream: drop it and redial with the
			// cursor. The error itself is not surfaced — resumption is the
			// whole point — unless the context ended (caller cancellation).
			s.disconnect()
			if ctx.Err() != nil {
				return core.Event{}, ctx.Err()
			}
			continue
		}
		s.mu.Lock()
		if e.Type == core.EventResync {
			// A resync frame's seq IS the next valid resume cursor — adopt
			// it even when it moves backward (the server restarted and its
			// sequence space reset; keeping the old, larger cursor would
			// re-trigger a resync on every reconnect forever).
			s.cursor = e.Seq
		} else if e.Seq > s.cursor {
			s.cursor = e.Seq
		}
		s.mu.Unlock()
		return e, nil
	}
}

// connect dials one attempt, rotating endpoints and sleeping the jittered
// backoff between failures. Returns nil when a connection is live (the
// attempt counter resets only after a frame is actually read, so a server
// that accepts and instantly drops still trips ErrStreamFailed).
func (s *EventStream) connect(ctx context.Context) error {
	s.mu.Lock()
	attempts := s.attempts
	cursor := s.cursor
	s.mu.Unlock()
	if attempts >= s.cfg.MaxAttempts {
		// Reset so a later Next may try the stream again (transient
		// outages should not disable streaming forever).
		s.mu.Lock()
		s.attempts = 0
		s.mu.Unlock()
		return fmt.Errorf("%w: %d consecutive connection attempts failed", ErrStreamFailed, attempts)
	}
	if attempts > 0 {
		if err := sleepCtx(ctx, jitteredBackoff(s.cfg.Backoff, s.cfg.MaxBackoff, attempts)); err != nil {
			return err
		}
	}
	// Rotate through endpoints so a dead node does not absorb the whole
	// attempt budget.
	base := s.c.endpoints[(int(s.c.cur.Load())+attempts)%len(s.c.endpoints)]
	req, err := s.c.newRequest(base, http.MethodGet, s.cfg.Path, s.cfg.Query, nil, "")
	if err != nil {
		return fmt.Errorf("%w: %v", ErrStreamFailed, err)
	}
	if cursor >= 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprint(cursor))
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := s.c.cfg.HTTPClient.Do(req.WithContext(ctx))
	if err != nil {
		s.mu.Lock()
		s.attempts++
		s.mu.Unlock()
		return nil // retry path: Next loops back into connect
	}
	if resp.StatusCode != http.StatusOK {
		err := decodeError(resp)
		status := resp.StatusCode
		resp.Body.Close()
		retryable := status >= 500 || status == http.StatusTooManyRequests
		var ae *core.APIError
		if errors.As(err, &ae) && ae.Code == core.CodeUnavailable {
			retryable = true
		}
		if !retryable {
			// The subscription itself is rejected (bad ticket, bad auth, or
			// an AM without the events surface at all): retrying cannot
			// help, fall back now.
			return fmt.Errorf("%w: %v", ErrStreamFailed, err)
		}
		s.mu.Lock()
		s.attempts++
		s.mu.Unlock()
		return nil
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/event-stream") {
		resp.Body.Close()
		return fmt.Errorf("%w: endpoint answered %q, not an event stream", ErrStreamFailed, ct)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		resp.Body.Close()
		return fmt.Errorf("%w: stream closed", ErrStreamFailed)
	}
	s.resp = resp
	s.br = bufio.NewReader(resp.Body)
	s.mu.Unlock()
	return nil
}

// Connect eagerly establishes the subscription instead of waiting for the
// first Next call. When it returns nil the server has registered the
// subscriber (the AM subscribes to its broker before writing the response
// headers), so events published afterwards will be delivered — the
// ordering guarantee loadgen's consent storm and any
// subscribe-then-trigger caller needs. On a rejected subscription or an
// exhausted attempt budget it returns an error wrapping ErrStreamFailed.
func (s *EventStream) Connect(ctx context.Context) error {
	stop := context.AfterFunc(ctx, s.abort)
	defer stop()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.mu.Lock()
		closed, connected := s.closed, s.resp != nil
		s.mu.Unlock()
		if closed {
			return fmt.Errorf("%w: stream closed", ErrStreamFailed)
		}
		if connected {
			return nil
		}
		// connect returns nil on a retryable failure (it only counts the
		// attempt), so loop until a connection is live or it gives up.
		if err := s.connect(ctx); err != nil {
			return err
		}
	}
}

// disconnect drops the live connection (if any), keeping the cursor.
func (s *EventStream) disconnect() {
	s.mu.Lock()
	resp := s.resp
	s.resp, s.br = nil, nil
	s.mu.Unlock()
	if resp != nil {
		resp.Body.Close()
	}
}

// readEvent parses frames off the live connection until one complete
// event arrives. Comment lines (heartbeats) reset the stall watchdog and
// confirm liveness: the first frame of any kind marks the connection good
// and clears the attempt counter.
func (s *EventStream) readEvent() (core.Event, error) {
	s.mu.Lock()
	br := s.br
	s.mu.Unlock()
	if br == nil {
		return core.Event{}, errors.New("amclient: stream not connected")
	}
	// The stall watchdog severs a silent connection: heartbeats arrive
	// every server-side interval, so silence beyond StallTimeout means a
	// half-open TCP connection (or a proxy buffering the stream).
	watchdog := time.AfterFunc(s.cfg.StallTimeout, s.abort)
	defer watchdog.Stop()
	var data []byte
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return core.Event{}, err
		}
		watchdog.Reset(s.cfg.StallTimeout)
		s.mu.Lock()
		s.attempts = 0 // bytes flowed: the connection is real
		s.mu.Unlock()
		line = bytes.TrimRight(line, "\r\n")
		switch {
		case len(line) == 0:
			// Frame boundary: dispatch when a data line was seen.
			if len(data) > 0 {
				var e core.Event
				if err := json.Unmarshal(data, &e); err != nil {
					return core.Event{}, fmt.Errorf("amclient: decode event: %w", err)
				}
				return e, nil
			}
		case line[0] == ':':
			// Heartbeat / comment; nothing to do beyond the watchdog reset.
		case bytes.HasPrefix(line, []byte("data:")):
			data = append(data, bytes.TrimSpace(line[len("data:"):])...)
		default:
			// id: and event: fields duplicate what the data JSON carries;
			// unknown fields are ignored per the SSE contract.
		}
	}
}

// jitteredBackoff is the reconnect delay after `attempts` consecutive
// failures: exponential, capped, with ±50% jitter so a fleet of
// subscribers does not redial a recovering AM in lockstep.
func jitteredBackoff(base, max time.Duration, attempts int) time.Duration {
	d := base << (attempts - 1)
	if d > max || d <= 0 {
		d = max
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// sleepCtx sleeps d or until ctx ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
