package pep

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"umac/internal/core"
)

func TestDecisionCacheBasics(t *testing.T) {
	c := NewDecisionCache()
	key := cacheKey("tok", "photo-1", core.ActionRead)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(key, true, 60)
	permit, ok := c.Get(key)
	if !ok || !permit {
		t.Fatalf("permit=%v ok=%v", permit, ok)
	}
	// Deny decisions cache too.
	key2 := cacheKey("tok", "photo-1", core.ActionWrite)
	c.Put(key2, false, 60)
	permit, ok = c.Get(key2)
	if !ok || permit {
		t.Fatalf("permit=%v ok=%v", permit, ok)
	}
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestDecisionCacheTTL(t *testing.T) {
	c := NewDecisionCache()
	base := time.Now()
	now := base
	c.SetClock(func() time.Time { return now })
	key := cacheKey("tok", "r", core.ActionRead)
	c.Put(key, true, 10)
	if _, ok := c.Get(key); !ok {
		t.Fatal("fresh entry missed")
	}
	now = base.Add(11 * time.Second)
	if _, ok := c.Get(key); ok {
		t.Fatal("stale entry served")
	}
}

func TestDecisionCacheZeroTTLNotStored(t *testing.T) {
	c := NewDecisionCache()
	key := cacheKey("tok", "r", core.ActionRead)
	c.Put(key, true, 0)
	c.Put(key, true, -5)
	if c.Len() != 0 {
		t.Fatal("non-positive TTL entries stored")
	}
}

func TestDecisionCacheInvalidate(t *testing.T) {
	c := NewDecisionCache()
	c.Put(cacheKey("t", "a", core.ActionRead), true, 60)
	c.Put(cacheKey("t", "b", core.ActionRead), true, 60)
	c.Invalidate()
	if c.Len() != 0 {
		t.Fatal("entries survived invalidate")
	}
}

func TestCacheKeyDistinguishesDimensions(t *testing.T) {
	base := cacheKey("tok", "res", core.ActionRead)
	if cacheKey("tok2", "res", core.ActionRead) == base {
		t.Fatal("token not in key")
	}
	if cacheKey("tok", "res2", core.ActionRead) == base {
		t.Fatal("resource not in key")
	}
	if cacheKey("tok", "res", core.ActionWrite) == base {
		t.Fatal("action not in key")
	}
	// Concatenation ambiguity: ("ab","c") vs ("a","bc") must differ.
	if cacheKey("ab", "c", core.ActionRead) == cacheKey("a", "bc", core.ActionRead) {
		t.Fatal("ambiguous key construction")
	}
}

func TestDecisionCacheConcurrent(t *testing.T) {
	c := NewDecisionCache()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				key := cacheKey("tok", core.ResourceID(rune('a'+n)), core.ActionRead)
				c.Put(key, true, 60)
				c.Get(key)
			}
		}(i)
	}
	wg.Wait()
}

func TestExtractToken(t *testing.T) {
	mk := func(auth, query string) *http.Request {
		r, _ := http.NewRequest(http.MethodGet, "http://h/res/x"+query, nil)
		if auth != "" {
			r.Header.Set("Authorization", auth)
		}
		return r
	}
	for name, tt := range map[string]struct {
		req  *http.Request
		want string
		ok   bool
	}{
		"umac scheme":    {mk("UMAC tok123", ""), "tok123", true},
		"lowercase":      {mk("umac tok123", ""), "tok123", true},
		"bearer":         {mk("Bearer tok456", ""), "tok456", true},
		"query param":    {mk("", "?token=tok789"), "tok789", true},
		"none":           {mk("", ""), "", false},
		"wrong scheme":   {mk("Basic dXNlcg==", ""), "", false},
		"empty token":    {mk("UMAC ", ""), "", false},
		"header beats q": {mk("UMAC tokH", "?token=tokQ"), "tokH", true},
	} {
		got, ok := ExtractToken(tt.req)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("%s: got (%q, %v), want (%q, %v)", name, got, ok, tt.want, tt.ok)
		}
	}
}

func TestCheckWithoutPairing(t *testing.T) {
	e := New(Config{Host: "webpics"})
	r, _ := http.NewRequest(http.MethodGet, "http://h/res/x", nil)
	_, err := e.Check(r, "bob", "travel", "x", core.ActionRead)
	if !errors.Is(err, core.ErrNotPaired) {
		t.Fatalf("err = %v", err)
	}
}

func TestBeginPairingURL(t *testing.T) {
	e := New(Config{Host: "webpics", Name: "WebPics", BaseURL: "http://pics.example"})
	u := e.BeginPairing("http://am.example/", "bob")
	if !strings.HasPrefix(u, "http://am.example/v1/pair/confirm?") {
		t.Fatalf("url = %s", u)
	}
	for _, want := range []string{"host=webpics", "host_name=WebPics", "return_to="} {
		if !strings.Contains(u, want) {
			t.Fatalf("url missing %q: %s", want, u)
		}
	}
}

func TestCompletePairingAgainstFakeAM(t *testing.T) {
	// A minimal fake AM exchange endpoint.
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/api/pair/exchange" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"pairing_id":"pair-1","secret":"s3cret","am":"` + "http://fake" + `","user":"bob"}`))
	}))
	defer fake.Close()

	e := New(Config{Host: "webpics", BaseURL: "http://pics.example"})
	p, err := e.CompletePairing(fake.URL, "bob", "code-1")
	if err != nil {
		t.Fatal(err)
	}
	if p.PairingID != "pair-1" || p.Secret != "s3cret" {
		t.Fatalf("pairing = %+v", p)
	}
	if !e.Delegated("bob") {
		t.Fatal("not delegated after pairing")
	}
	got, ok := e.PairingFor("bob")
	if !ok || got.PairingID != "pair-1" {
		t.Fatalf("PairingFor = %+v %v", got, ok)
	}
	e.Unpair("bob")
	if e.Delegated("bob") {
		t.Fatal("still delegated after unpair")
	}
}

func TestCompletePairingErrorPropagates(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"unknown code"}`, http.StatusForbidden)
	}))
	defer fake.Close()
	e := New(Config{Host: "webpics"})
	if _, err := e.CompletePairing(fake.URL, "bob", "bad-code"); err == nil {
		t.Fatal("error not propagated")
	}
}

func TestHandlePairCallbackValidation(t *testing.T) {
	e := New(Config{Host: "webpics"})
	rec := httptest.NewRecorder()
	r, _ := http.NewRequest(http.MethodGet, "http://pics/umac/pair/callback", nil)
	e.HandlePairCallback(rec, r)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestWriteReferralShape(t *testing.T) {
	e := New(Config{Host: "webpics"})
	rec := httptest.NewRecorder()
	e.WriteReferral(rec, "http://am.example", "travel", "photo-1", core.ActionRead)
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("status = %d", rec.Code)
	}
	h := rec.Header()
	if h.Get(HeaderAM) != "http://am.example" || h.Get(HeaderRealm) != "travel" ||
		h.Get(HeaderResource) != "photo-1" || h.Get(HeaderAction) != "read" ||
		h.Get(HeaderHost) != "webpics" {
		t.Fatalf("headers = %v", h)
	}
	if !strings.Contains(h.Get("Www-Authenticate"), "UMAC") {
		t.Fatalf("www-authenticate = %q", h.Get("Www-Authenticate"))
	}
	if !strings.Contains(rec.Body.String(), "authorization token required") {
		t.Fatalf("body = %s", rec.Body.String())
	}
}

func TestComposeURLRequiresPairing(t *testing.T) {
	e := New(Config{Host: "webpics", BaseURL: "http://pics.example"})
	if _, err := e.ComposeURL("bob", "travel"); !errors.Is(err, core.ErrNotPaired) {
		t.Fatalf("err = %v", err)
	}
}

func TestProtectRequiresPairing(t *testing.T) {
	e := New(Config{Host: "webpics"})
	if err := e.Protect("bob", "travel", nil, ""); !errors.Is(err, core.ErrNotPaired) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerdictString(t *testing.T) {
	if VerdictAllow.String() != "allow" || VerdictDeny.String() != "deny" ||
		VerdictNeedToken.String() != "need-token" {
		t.Fatal("verdict names wrong")
	}
	if !strings.HasPrefix(Verdict(9).String(), "verdict(") {
		t.Fatal("unknown verdict format")
	}
}
