package gallery

import (
	"image"
	"image/color"
	"testing"
)

// testImage builds a w×h image with a distinct color per pixel position.
func testImage(w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.Set(x, y, color.RGBA{R: uint8(x * 10), G: uint8(y * 10), B: 100, A: 255})
		}
	}
	return img
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	img := testImage(8, 6)
	data, err := EncodePNG(img)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Bounds().Dx() != 8 || got.Bounds().Dy() != 6 {
		t.Fatalf("bounds = %v", got.Bounds())
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not an image")); err == nil {
		t.Fatal("decoded garbage")
	}
	if _, err := Decode(nil); err == nil {
		t.Fatal("decoded nil")
	}
}

func TestResize(t *testing.T) {
	img := testImage(10, 10)
	out, err := Resize(img, 5, 20)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bounds().Dx() != 5 || out.Bounds().Dy() != 20 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
	// Corner pixels map to source corners (nearest neighbour).
	wantTL := img.At(0, 0)
	r1, g1, b1, _ := out.At(0, 0).RGBA()
	r2, g2, b2, _ := wantTL.RGBA()
	if r1 != r2 || g1 != g2 || b1 != b2 {
		t.Fatal("top-left pixel changed")
	}
}

func TestResizeValidation(t *testing.T) {
	img := testImage(4, 4)
	if _, err := Resize(img, 0, 5); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := Resize(img, 5, -1); err == nil {
		t.Fatal("negative height accepted")
	}
	empty := image.NewRGBA(image.Rect(0, 0, 0, 0))
	if _, err := Resize(empty, 5, 5); err == nil {
		t.Fatal("empty source accepted")
	}
}

func pixelsEqual(t *testing.T, a, b image.Image, ax, ay, bx, by int) bool {
	t.Helper()
	r1, g1, b1, _ := a.At(ax, ay).RGBA()
	r2, g2, b2, _ := b.At(bx, by).RGBA()
	return r1 == r2 && g1 == g2 && b1 == b2
}

func TestRotate90(t *testing.T) {
	img := testImage(4, 2) // wider than tall
	out := Rotate90(img)
	if out.Bounds().Dx() != 2 || out.Bounds().Dy() != 4 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
	// (x,y) → (H-1-y, x): source (0,0) lands at (1,0) for H=2.
	if !pixelsEqual(t, img, out, 0, 0, 1, 0) {
		t.Fatal("rotation mapping wrong")
	}
}

func TestRotate180(t *testing.T) {
	img := testImage(4, 3)
	out := Rotate180(img)
	if out.Bounds() != img.Bounds() {
		t.Fatalf("bounds = %v", out.Bounds())
	}
	if !pixelsEqual(t, img, out, 0, 0, 3, 2) {
		t.Fatal("180 mapping wrong")
	}
}

func TestRotate360IsIdentity(t *testing.T) {
	img := testImage(5, 3)
	out := Rotate180(Rotate180(img))
	for y := 0; y < 3; y++ {
		for x := 0; x < 5; x++ {
			if !pixelsEqual(t, img, out, x, y, x, y) {
				t.Fatalf("pixel (%d,%d) changed after 360°", x, y)
			}
		}
	}
	// And 90°×4 is identity too.
	out2 := Rotate90(Rotate90(Rotate90(Rotate90(img))))
	for y := 0; y < 3; y++ {
		for x := 0; x < 5; x++ {
			if !pixelsEqual(t, img, out2, x, y, x, y) {
				t.Fatalf("pixel (%d,%d) changed after 4×90°", x, y)
			}
		}
	}
}

func TestRotate270Matches90Inverse(t *testing.T) {
	img := testImage(4, 2)
	out := Rotate270(Rotate90(img))
	for y := 0; y < 2; y++ {
		for x := 0; x < 4; x++ {
			if !pixelsEqual(t, img, out, x, y, x, y) {
				t.Fatalf("pixel (%d,%d) changed after 90+270", x, y)
			}
		}
	}
}

func TestCrop(t *testing.T) {
	img := testImage(10, 10)
	out, err := Crop(img, 2, 3, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Bounds().Dx() != 4 || out.Bounds().Dy() != 5 {
		t.Fatalf("bounds = %v", out.Bounds())
	}
	if !pixelsEqual(t, img, out, 2, 3, 0, 0) {
		t.Fatal("crop origin wrong")
	}
}

func TestCropValidation(t *testing.T) {
	img := testImage(10, 10)
	if _, err := Crop(img, 8, 8, 5, 5); err == nil {
		t.Fatal("out-of-bounds crop accepted")
	}
	if _, err := Crop(img, 0, 0, 0, 5); err == nil {
		t.Fatal("zero-size crop accepted")
	}
	if _, err := Crop(img, -1, 0, 2, 2); err == nil {
		t.Fatal("negative origin accepted")
	}
}

func TestGrayscale(t *testing.T) {
	img := testImage(4, 4)
	out := Grayscale(img)
	for y := 0; y < 4; y++ {
		for x := 0; x < 4; x++ {
			r, g, b, _ := out.At(x, y).RGBA()
			if r != g || g != b {
				t.Fatalf("pixel (%d,%d) not gray: %d %d %d", x, y, r, g, b)
			}
		}
	}
}

func TestApplyEditOps(t *testing.T) {
	data, err := EncodePNG(testImage(10, 8))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]struct {
		params EditParams
		wantW  int
		wantH  int
	}{
		"resize":    {EditParams{Op: OpResize, Width: 5, Height: 4}, 5, 4},
		"rotate90":  {EditParams{Op: OpRotate90}, 8, 10},
		"rotate180": {EditParams{Op: OpRotate180}, 10, 8},
		"rotate270": {EditParams{Op: OpRotate270}, 8, 10},
		"crop":      {EditParams{Op: OpCrop, X: 1, Y: 1, Width: 3, Height: 2}, 3, 2},
		"grayscale": {EditParams{Op: OpGrayscale}, 10, 8},
	}
	for name, tc := range cases {
		out, err := ApplyEdit(data, tc.params)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		img, err := Decode(out)
		if err != nil {
			t.Errorf("%s: decode: %v", name, err)
			continue
		}
		if img.Bounds().Dx() != tc.wantW || img.Bounds().Dy() != tc.wantH {
			t.Errorf("%s: bounds = %v, want %dx%d", name, img.Bounds(), tc.wantW, tc.wantH)
		}
	}
}

func TestApplyEditErrors(t *testing.T) {
	data, _ := EncodePNG(testImage(4, 4))
	if _, err := ApplyEdit(data, EditParams{Op: "sharpen"}); err == nil {
		t.Fatal("unknown op accepted")
	}
	if _, err := ApplyEdit([]byte("junk"), EditParams{Op: OpRotate90}); err == nil {
		t.Fatal("junk input accepted")
	}
	if _, err := ApplyEdit(data, EditParams{Op: OpResize}); err == nil {
		t.Fatal("resize without dimensions accepted")
	}
}
