package rebalance

import (
	"fmt"
	"net/http"

	"umac/internal/amclient"
	"umac/internal/core"
)

// GatherOwners queries GET /v1/cluster/owners on every listed shard
// primary and returns the effective owner set per shard — BuildPlan's
// ownersByShard input. The listing is by effective ownership (ring plus
// overrides), so owners half-moved by an earlier aborted rebalance are
// reported by the shard that actually serves them.
func GatherOwners(shards []core.ShardInfo, secret string, hc *http.Client) (map[string][]core.UserID, error) {
	out := make(map[string][]core.UserID, len(shards))
	for _, s := range shards {
		cc := amclient.New(amclient.Config{BaseURL: s.Primary, ReplSecret: secret, HTTPClient: hc})
		stats, err := cc.OwnerStats()
		if err != nil {
			return nil, fmt.Errorf("rebalance: owner stats of shard %s: %w", s.Name, err)
		}
		owners := make([]core.UserID, 0, len(stats.Owners))
		for _, o := range stats.Owners {
			owners = append(owners, o.Owner)
		}
		out[s.Name] = owners
	}
	return out, nil
}
