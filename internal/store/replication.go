package store

import (
	"errors"
	"fmt"

	"umac/internal/core"
)

// This file is the replication side of the write-ahead log: the primary
// keeps an in-memory tail of recent WAL records (stamped with contiguous
// sequence numbers) that followers read in order, plus a broadcast channel
// that turns the HTTP long-poll into a push. A follower installs a
// consistent snapshot once (ReplicationSnapshot → LoadReplicationSnapshot)
// and then applies the tail record by record (TailSince → ApplyReplicated);
// because ApplyReplicated preserves sequence numbers in the follower's own
// WAL, a restarted follower resumes exactly at its applied offset — no
// duplicate and no lost record.

// Replication errors.
var (
	// ErrReplicationDisabled is returned by TailSince on a store that never
	// called EnableReplication.
	ErrReplicationDisabled = errors.New("store: replication not enabled")
	// ErrReplicationTruncated is returned by TailSince when the requested
	// offset predates the retained tail window; the caller must
	// re-bootstrap from a snapshot.
	ErrReplicationTruncated = errors.New("store: replication window truncated")
	// ErrReplicationGap is returned by ApplyReplicated for a record that
	// does not directly follow the store's applied offset.
	ErrReplicationGap = errors.New("store: replication sequence gap")
)

// DefaultReplicationWindow is how many recent WAL records EnableReplication
// retains by default. A follower further behind than this re-bootstraps
// from a snapshot instead of tailing.
const DefaultReplicationWindow = 65536

// replState is the retained WAL tail: a fixed-capacity ring of the most
// recent records, oldest first. Guarded by the store's walMu.
type replState struct {
	buf   []core.ReplRecord
	start int // index of the oldest record
	n     int // records currently retained
}

func newReplState(window int) *replState {
	if window <= 0 {
		window = DefaultReplicationWindow
	}
	return &replState{buf: make([]core.ReplRecord, window)}
}

// push appends rec, evicting the oldest record when the ring is full.
func (r *replState) push(rec core.ReplRecord) {
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = rec
		r.n++
		return
	}
	r.buf[r.start] = rec
	r.start = (r.start + 1) % len(r.buf)
}

// since returns up to max records with Seq > fromSeq, oldest first. It
// reports ErrReplicationTruncated when records after fromSeq have been
// evicted from the ring.
func (r *replState) since(fromSeq int64, max int) ([]core.ReplRecord, error) {
	if r.n == 0 {
		return nil, ErrReplicationTruncated
	}
	oldest := r.buf[r.start].Seq
	newest := r.buf[(r.start+r.n-1)%len(r.buf)].Seq
	if fromSeq >= newest {
		return nil, nil
	}
	if fromSeq+1 < oldest {
		return nil, ErrReplicationTruncated
	}
	first := int(fromSeq + 1 - oldest)
	count := r.n - first
	if count > max {
		count = max
	}
	out := make([]core.ReplRecord, 0, count)
	for i := 0; i < count; i++ {
		out = append(out, r.buf[(r.start+first+i)%len(r.buf)])
	}
	return out, nil
}

// EnableReplication starts retaining the WAL tail for followers, keeping up
// to window records (DefaultReplicationWindow when window <= 0). It is a
// no-op on a store that already replicates. Writes before the call are not
// retained; followers bootstrapping from a snapshot taken afterwards never
// need them.
func (s *Store) EnableReplication(window int) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.repl == nil {
		s.repl = newReplState(window)
	}
}

// ReplicationEnabled reports whether the store retains a WAL tail.
func (s *Store) ReplicationEnabled() bool {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.repl != nil
}

// LastSeq returns the store's applied WAL offset: the sequence number of
// the newest mutation logged (primary) or applied (follower). Zero on a
// store that has never written.
func (s *Store) LastSeq() int64 {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.lastSeq
}

// TailSince returns up to max WAL records with sequence numbers greater
// than fromSeq, oldest first, plus the store's newest sequence number. It
// returns ErrReplicationTruncated when the window no longer covers fromSeq
// (the follower must re-bootstrap from ReplicationSnapshot) and
// ErrReplicationDisabled on a store without EnableReplication.
func (s *Store) TailSince(fromSeq int64, max int) ([]core.ReplRecord, int64, error) {
	if max <= 0 {
		max = DefaultReplicationWindow
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.repl == nil {
		return nil, s.lastSeq, ErrReplicationDisabled
	}
	if fromSeq >= s.lastSeq {
		return nil, s.lastSeq, nil
	}
	recs, err := s.repl.since(fromSeq, max)
	return recs, s.lastSeq, err
}

// TailSinceFilter is TailSince restricted to the records keep accepts (nil
// keeps everything). The scanned return value is the sequence number the
// scan advanced through — the offset the caller resumes from — which can
// run ahead of the last returned record when trailing records were
// filtered out (or when the caller is caught up: scanned is then the
// store's newest sequence number). keep runs under the WAL mutex and must
// not call back into the store.
func (s *Store) TailSinceFilter(fromSeq int64, max int, keep func(core.ReplRecord) bool) (recs []core.ReplRecord, scanned int64, err error) {
	if max <= 0 {
		max = DefaultReplicationWindow
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.repl == nil {
		return nil, s.lastSeq, ErrReplicationDisabled
	}
	if fromSeq >= s.lastSeq {
		return nil, s.lastSeq, nil
	}
	raw, err := s.repl.since(fromSeq, max)
	if err != nil {
		return nil, s.lastSeq, err
	}
	scanned = fromSeq
	if n := len(raw); n > 0 {
		scanned = raw[n-1].Seq
	} else {
		scanned = s.lastSeq
	}
	if keep == nil {
		return raw, scanned, nil
	}
	for _, rec := range raw {
		if keep(rec) {
			recs = append(recs, rec)
		}
	}
	return recs, scanned, nil
}

// ReplWatch returns a channel that is closed on the next logged mutation.
// Callers re-arm by calling ReplWatch again; grab the channel before
// checking TailSince so a write between the two cannot be missed.
func (s *Store) ReplWatch() <-chan struct{} {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.watch == nil {
		s.watch = make(chan struct{})
	}
	return s.watch
}

// notifyLocked wakes every ReplWatch waiter. Called with walMu held after
// every logged mutation.
func (s *Store) notifyLocked() {
	if s.watch != nil {
		close(s.watch)
		s.watch = nil
	}
}

// ApplyReplicated installs one replicated record, preserving its sequence
// number in the follower's own WAL so a restart resumes at the exact
// applied offset. Records at or below the applied offset are skipped
// (idempotent re-delivery); a record further ahead than offset+1 returns
// ErrReplicationGap without applying anything. On a WAL-backed store the
// record rides the same group-commit batch as local writes.
func (s *Store) ApplyReplicated(rec core.ReplRecord) error {
	if rec.Kind == "" || rec.Key == "" {
		return ErrBadKey
	}
	if rec.Op != core.ReplOpPut && rec.Op != core.ReplOpDelete {
		return fmt.Errorf("store: apply replicated: unknown op %q", rec.Op)
	}
	sh := s.shardFor(rec.Kind, rec.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	s.walMu.Lock()
	if rec.Seq <= s.nextSeq {
		s.walMu.Unlock()
		return nil
	}
	if rec.Seq != s.nextSeq+1 {
		applied := s.nextSeq
		s.walMu.Unlock()
		return fmt.Errorf("%w: applied %d, got %d", ErrReplicationGap, applied, rec.Seq)
	}
	if s.wal != nil {
		if s.walClosing || s.wal.isClosed() {
			s.walMu.Unlock()
			return ErrClosed
		}
		wrec := walRecord{
			Seq: rec.Seq, Op: rec.Op, Kind: rec.Kind, Key: rec.Key,
			Version: rec.Version, Data: rec.Data,
		}
		buf, err := encodeRecord(wrec)
		if err != nil {
			s.walMu.Unlock()
			return err
		}
		s.nextSeq = rec.Seq
		b := s.enqueueLocked(buf, wrec)
		s.walMu.Unlock()
		s.kickCommitter()
		<-b.done
		if b.err != nil {
			return b.err
		}
	} else {
		s.nextSeq, s.lastSeq = rec.Seq, rec.Seq
		if s.repl != nil {
			s.repl.push(rec)
		}
		s.notifyLocked()
		s.walMu.Unlock()
	}
	switch rec.Op {
	case core.ReplOpPut:
		sh.kindLocked(rec.Kind)[rec.Key] = Entity{
			Kind: rec.Kind, Key: rec.Key, Version: rec.Version, Data: rec.Data,
		}
	case core.ReplOpDelete:
		delete(sh.kinds[rec.Kind], rec.Key)
	}
	return nil
}

// ReplicationSnapshot captures a consistent bootstrap image: the full store
// contents as put records plus the sequence number they are consistent at.
// Writers are paused for the duration (reads proceed), so tailing from the
// returned Seq loses nothing and duplicates nothing.
func (s *Store) ReplicationSnapshot() core.ReplSnapshot {
	return s.ReplicationSnapshotFilter(nil)
}

// ReplicationSnapshotFilter is ReplicationSnapshot restricted to the
// records keep accepts (nil keeps everything): the scoped bootstrap image
// live owner migration streams between shards. keep runs under every shard
// lock and must not call back into the store.
func (s *Store) ReplicationSnapshotFilter(keep func(core.ReplRecord) bool) core.ReplSnapshot {
	s.lockAll(false)
	defer s.unlockAll(false)
	s.walMu.Lock()
	seq := s.lastSeq
	s.walMu.Unlock()
	var recs []core.ReplRecord
	for i := range s.shards {
		for kind, m := range s.shards[i].kinds {
			for key, e := range m {
				rec := core.ReplRecord{
					Op: core.ReplOpPut, Kind: kind, Key: key,
					Version: e.Version, Data: e.Data,
				}
				if keep == nil || keep(rec) {
					recs = append(recs, rec)
				}
			}
		}
	}
	return core.ReplSnapshot{Seq: seq, Records: recs}
}

// LoadReplicationSnapshot replaces the store contents with a bootstrap
// image and moves the applied offset to the snapshot's sequence number. The
// follower's own WAL is emptied (its records predate the image); callers
// with a durable store should Snapshot to Path right after, so a crash
// between bootstrap and first local snapshot merely forces a re-bootstrap.
func (s *Store) LoadReplicationSnapshot(snap core.ReplSnapshot) error {
	staged := make([][]core.ReplRecord, shardCount)
	for _, rec := range snap.Records {
		if rec.Kind == "" || rec.Key == "" {
			return fmt.Errorf("store: snapshot record with empty kind or key")
		}
		i := s.shardIndex(rec.Kind, rec.Key)
		staged[i] = append(staged[i], rec)
	}
	s.lockAll(true)
	defer s.unlockAll(true)
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.wal != nil {
		if err := s.wal.reset(); err != nil {
			return err
		}
	}
	for i := range s.shards {
		s.shards[i].kinds = make(map[string]map[string]Entity)
		for _, rec := range staged[i] {
			s.shards[i].kindLocked(rec.Kind)[rec.Key] = Entity{
				Kind: rec.Kind, Key: rec.Key, Version: rec.Version, Data: rec.Data,
			}
		}
	}
	s.lastSeq, s.nextSeq = snap.Seq, snap.Seq
	if s.repl != nil {
		s.repl.start, s.repl.n = 0, 0
	}
	s.notifyLocked()
	return nil
}

// Path returns the snapshot path the store was Opened from ("" for
// memory-only stores): the file Snapshot must target to compact the WAL.
func (s *Store) Path() string { return s.snapshotPath }
