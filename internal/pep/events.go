package pep

import (
	"errors"
	"fmt"
	"time"

	"umac/internal/amclient"
	"umac/internal/core"
)

// This file is the PEP's consumer of the AM's event control plane: a
// subscription to GET /v1/events/invalidation (signed with the pairing
// channel, like every Host→AM call) that applies scoped decision-cache
// evictions the moment a policy changes — without the AM having to dial
// back in through the legacy POST push, which stays mounted as the
// fallback. The cache TTL remains the correctness backstop throughout:
// losing the stream can only delay freshness, never grant stale access
// beyond the TTL.

// DefaultStreamRetry is how long an invalidation subscription waits after
// the stream failed persistently (ErrStreamFailed) before resubscribing.
const DefaultStreamRetry = 15 * time.Second

// StartInvalidationStream subscribes the enforcer to owner's AM
// invalidation events and applies them to the decision cache until Close.
// On a persistent stream failure the whole cache is dropped once
// (fail-safe: evictions may have been missed) and the subscription
// retries after Config.StreamRetry — the legacy push handler and the TTL
// carry freshness in the meantime. Call once per paired owner.
func (e *Enforcer) StartInvalidationStream(owner core.UserID) error {
	p, ok := e.PairingFor(owner)
	if !ok {
		return core.ErrNotPaired
	}
	stream := e.amFor(p).Stream(amclient.StreamConfig{Path: "/events/invalidation"})
	e.streamWG.Add(1)
	go func() {
		defer e.streamWG.Done()
		defer stream.Close()
		for {
			ev, err := stream.Next(e.streamCtx)
			switch {
			case e.streamCtx.Err() != nil:
				return
			case errors.Is(err, amclient.ErrStreamFailed):
				// Events may have been missed while disconnected; drop the
				// cache once rather than serve decisions the AM already
				// revoked, then wait out the retry pause.
				e.cache.Invalidate()
				e.trace(core.PhaseObtainingDecision, "host:"+string(e.host), "am",
					"invalidation-stream-down", err.Error())
				t := time.NewTimer(e.streamRetry)
				select {
				case <-e.streamCtx.Done():
					t.Stop()
					return
				case <-t.C:
				}
			case err != nil:
				// Transient (context deadline etc.): the stream resumes by
				// cursor on the next call.
			default:
				e.applyEvent(ev)
			}
		}
	}()
	return nil
}

// applyEvent applies one stream event to the decision cache, mirroring
// HandleInvalidate's semantics: scoped eviction when the event names an
// owner, full drop on anything doubtful (resync markers, unscoped
// payloads) — when in doubt, never leave a stale permit behind.
func (e *Enforcer) applyEvent(ev core.Event) {
	switch ev.Type {
	case core.EventResync:
		// Events were lost between our cursor and the stream head: any of
		// them could have been an eviction we needed.
		e.cache.Invalidate()
		e.trace(core.PhaseObtainingDecision, "am", "host:"+string(e.host),
			"cache-invalidated", "stream resync")
	case core.EventInvalidation:
		push := ev.Invalidation
		if push == nil || push.Owner == "" {
			e.cache.Invalidate()
			e.trace(core.PhaseObtainingDecision, "am", "host:"+string(e.host),
				"cache-invalidated", "stream (unscoped)")
			return
		}
		n := e.cache.InvalidateScope(Scope{
			Owner:     push.Owner,
			Realms:    push.Realms,
			Resources: push.Resources,
		})
		e.trace(core.PhaseObtainingDecision, "am", "host:"+string(e.host),
			"cache-invalidated", fmt.Sprintf("stream owner=%s realms=%d resources=%d evicted=%d",
				push.Owner, len(push.Realms), len(push.Resources), n))
	}
}
