package requester

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"umac/internal/core"
	"umac/internal/pep"
)

// fakeAM is a scriptable token endpoint.
type fakeAM struct {
	srv *httptest.Server
	// respond builds the token response for a request.
	respond func(req core.TokenRequest) (int, core.TokenResponse)
	// consent state for /token/status.
	statusResponses []core.ConsentStatus
	statusCalls     atomic.Int32
	tokenCalls      atomic.Int32
}

func newFakeAM(t *testing.T) *fakeAM {
	t.Helper()
	f := &fakeAM{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/token", func(w http.ResponseWriter, r *http.Request) {
		f.tokenCalls.Add(1)
		var req core.TokenRequest
		json.NewDecoder(r.Body).Decode(&req)
		status, resp := f.respond(req)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("GET /v1/token/status", func(w http.ResponseWriter, r *http.Request) {
		n := int(f.statusCalls.Add(1)) - 1
		if n >= len(f.statusResponses) {
			n = len(f.statusResponses) - 1
		}
		json.NewEncoder(w).Encode(f.statusResponses[n])
	})
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

// fakeHost answers 401 referrals until it sees the expected token.
type fakeHost struct {
	srv       *httptest.Server
	amURL     string
	wantToken string
	hits      atomic.Int32
	referrals atomic.Int32
}

func newFakeHost(t *testing.T, amURL, wantToken string) *fakeHost {
	t.Helper()
	h := &fakeHost{amURL: amURL, wantToken: wantToken}
	h.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.hits.Add(1)
		tok, ok := pep.ExtractToken(r)
		if !ok || tok != h.wantToken {
			h.referrals.Add(1)
			w.Header().Set(pep.HeaderAM, h.amURL)
			w.Header().Set(pep.HeaderHost, "fakehost")
			w.Header().Set(pep.HeaderRealm, "realm-1")
			w.Header().Set(pep.HeaderResource, "res-1")
			w.WriteHeader(http.StatusUnauthorized)
			return
		}
		w.Write([]byte("protected content"))
	}))
	t.Cleanup(h.srv.Close)
	return h
}

func TestFetchHappyPath(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(req core.TokenRequest) (int, core.TokenResponse) {
		if req.Requester != "app-1" || req.Subject != "alice" ||
			req.Host != "fakehost" || req.Realm != "realm-1" || req.Action != core.ActionRead {
			t.Errorf("token request = %+v", req)
		}
		return 200, core.TokenResponse{Token: "tok-good", Realm: req.Realm}
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{ID: "app-1", Subject: "alice"})
	body, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "protected content" {
		t.Fatalf("body = %q", body)
	}
	if host.hits.Load() != 2 || host.referrals.Load() != 1 {
		t.Fatalf("hits=%d referrals=%d", host.hits.Load(), host.referrals.Load())
	}
}

func TestTokenCachedAcrossRequests(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(req core.TokenRequest) (int, core.TokenResponse) {
		return 200, core.TokenResponse{Token: "tok-good"}
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{ID: "app-1", Subject: "alice"})
	for i := 0; i < 3; i++ {
		if _, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead); err != nil {
			t.Fatal(err)
		}
	}
	if am.tokenCalls.Load() != 1 {
		t.Fatalf("token calls = %d, want 1", am.tokenCalls.Load())
	}
	// 1 tokenless + 1 retry + 2 direct = 4 host hits.
	if host.hits.Load() != 4 {
		t.Fatalf("host hits = %d", host.hits.Load())
	}
	c.ForgetTokens()
	if _, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if am.tokenCalls.Load() != 2 {
		t.Fatalf("token calls after forget = %d", am.tokenCalls.Load())
	}
}

func TestDeniedSurfacesErrDenied(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(core.TokenRequest) (int, core.TokenResponse) {
		return 403, core.TokenResponse{}
	}
	host := newFakeHost(t, am.srv.URL, "never")
	c := New(Config{ID: "app-1", Subject: "mallory"})
	_, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestTermsErrorSurfaced(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(core.TokenRequest) (int, core.TokenResponse) {
		return 202, core.TokenResponse{RequiredTerms: []string{"payment", "age"}}
	}
	host := newFakeHost(t, am.srv.URL, "never")
	c := New(Config{ID: "app-1", Subject: "carol"})
	_, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	var terms *TermsError
	if !errors.As(err, &terms) {
		t.Fatalf("err = %v", err)
	}
	if len(terms.Terms) != 2 || terms.Terms[0] != "payment" {
		t.Fatalf("terms = %v", terms.Terms)
	}
}

func TestClaimsSentWithTokenRequest(t *testing.T) {
	am := newFakeAM(t)
	var got map[string]string
	am.respond = func(req core.TokenRequest) (int, core.TokenResponse) {
		got = req.Claims
		return 200, core.TokenResponse{Token: "tok-good"}
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{ID: "app-1", Subject: "carol", Claims: map[string]string{"payment": "r-1"}})
	c.SetClaim("tier", "gold")
	if _, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if got["payment"] != "r-1" || got["tier"] != "gold" {
		t.Fatalf("claims = %v", got)
	}
}

func TestConsentPollingApproved(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(core.TokenRequest) (int, core.TokenResponse) {
		return 202, core.TokenResponse{PendingConsent: "ticket-1"}
	}
	am.statusResponses = []core.ConsentStatus{
		{Ticket: "ticket-1"},
		{Ticket: "ticket-1"},
		{Ticket: "ticket-1", Resolved: true, Approved: true, Token: "tok-good"},
	}
	host := newFakeHost(t, am.srv.URL, "tok-good")
	c := New(Config{
		ID: "app-1", Subject: "evelyn",
		ConsentPollInterval: time.Millisecond, ConsentTimeout: time.Second,
	})
	body, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "protected content" {
		t.Fatalf("body = %q", body)
	}
	if am.statusCalls.Load() != 3 {
		t.Fatalf("status polls = %d", am.statusCalls.Load())
	}
}

func TestConsentPollingDenied(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(core.TokenRequest) (int, core.TokenResponse) {
		return 202, core.TokenResponse{PendingConsent: "ticket-1"}
	}
	am.statusResponses = []core.ConsentStatus{
		{Ticket: "ticket-1", Resolved: true, Approved: false},
	}
	host := newFakeHost(t, am.srv.URL, "never")
	c := New(Config{ID: "app-1", ConsentPollInterval: time.Millisecond, ConsentTimeout: time.Second})
	_, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if !errors.Is(err, ErrConsentDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestConsentPollingTimeout(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(core.TokenRequest) (int, core.TokenResponse) {
		return 202, core.TokenResponse{PendingConsent: "ticket-1"}
	}
	am.statusResponses = []core.ConsentStatus{{Ticket: "ticket-1"}} // never resolves
	host := newFakeHost(t, am.srv.URL, "never")
	c := New(Config{ID: "app-1", ConsentPollInterval: time.Millisecond, ConsentTimeout: 20 * time.Millisecond})
	_, err := c.Fetch(host.srv.URL+"/res-1", core.ActionRead)
	if !errors.Is(err, ErrConsentTimeout) {
		t.Fatalf("err = %v", err)
	}
}

func TestNonUMAC401PassedThrough(t *testing.T) {
	// A 401 without referral headers (e.g. basic-auth site) must be
	// returned to the caller untouched, not misinterpreted.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Www-Authenticate", "Basic realm=x")
		w.WriteHeader(http.StatusUnauthorized)
	}))
	defer srv.Close()
	c := New(Config{ID: "app-1"})
	resp, err := c.Get(srv.URL, core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestPostReplaysBodyAfterTokenAcquisition(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(core.TokenRequest) (int, core.TokenResponse) {
		return 200, core.TokenResponse{Token: "tok-good"}
	}
	var received []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, 64)
		n, _ := r.Body.Read(buf)
		received = append(received, string(buf[:n]))
		if tok, ok := pep.ExtractToken(r); !ok || tok != "tok-good" {
			w.Header().Set(pep.HeaderAM, am.srv.URL)
			w.Header().Set(pep.HeaderHost, "fakehost")
			w.Header().Set(pep.HeaderRealm, "realm-1")
			w.WriteHeader(http.StatusUnauthorized)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	c := New(Config{ID: "app-1", Subject: "alice"})
	resp, err := c.Post(srv.URL+"/res-1", "text/plain", []byte("payload"), core.ActionWrite)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if len(received) != 2 || received[0] != "payload" || received[1] != "payload" {
		t.Fatalf("received = %q (body must be replayed intact)", received)
	}
}

func TestObtainTokenTransportError(t *testing.T) {
	c := New(Config{ID: "app-1"})
	if _, err := c.ObtainToken("http://127.0.0.1:1", "h", "r", "res", core.ActionRead); err == nil {
		t.Fatal("no error for unreachable AM")
	}
}

func TestEmptyTokenResponseRejected(t *testing.T) {
	am := newFakeAM(t)
	am.respond = func(core.TokenRequest) (int, core.TokenResponse) {
		return 200, core.TokenResponse{} // malformed: neither token nor pending
	}
	c := New(Config{ID: "app-1"})
	if _, err := c.ObtainToken(am.srv.URL, "h", "r", "res", core.ActionRead); err == nil {
		t.Fatal("empty response accepted")
	}
}
