package umac_test

// Benchmarks for the streaming event control plane (internal/events + the
// /v1/events SSE family). They anchor the broker's core promises in CI:
// publish cost stays flat as subscribers grow, a stalled subscriber does
// not slow the publisher, and end-to-end SSE delivery is cheap relative to
// a polling interval.

import (
	"context"
	"fmt"
	"testing"

	"umac/internal/core"
	"umac/internal/events"
)

// BenchmarkEventPublish measures raw publish cost with a draining
// subscriber fleet of varying size.
func BenchmarkEventPublish(b *testing.B) {
	for _, subs := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("subs-%d", subs), func(b *testing.B) {
			recordBench(b)
			broker := events.New(events.Options{})
			defer broker.Close()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			for i := 0; i < subs; i++ {
				sub, _ := broker.Subscribe(events.Filter{}, -1)
				go func(s *events.Subscriber) {
					for {
						if _, _, err := s.Next(ctx); err != nil {
							return
						}
					}
				}(sub)
			}
			e := core.Event{Type: core.EventInvalidation, Owner: "bob",
				Invalidation: &core.InvalidationPush{Owner: "bob"}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				broker.Publish(e)
			}
		})
	}
}

// BenchmarkEventPublishStalledSubscriber is the backpressure anchor: a
// subscriber that never drains must not change the publish cost class —
// overflow is a ring drop, not a block.
func BenchmarkEventPublishStalledSubscriber(b *testing.B) {
	recordBench(b)
	broker := events.New(events.Options{SubscriberBuffer: 8})
	defer broker.Close()
	sub, _ := broker.Subscribe(events.Filter{}, -1)
	defer sub.Close()
	e := core.Event{Type: core.EventConsent, Owner: "bob", Ticket: "t"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		broker.Publish(e)
	}
}

// BenchmarkEventFanoutFiltered measures publish with subscribers whose
// filters mostly do NOT match (the realistic owner-sharded case: one
// owner's mutation, many owners' subscriptions).
func BenchmarkEventFanoutFiltered(b *testing.B) {
	recordBench(b)
	broker := events.New(events.Options{})
	defer broker.Close()
	for i := 0; i < 64; i++ {
		sub, _ := broker.Subscribe(events.Filter{
			Types: []core.EventType{core.EventInvalidation},
			Owner: core.UserID(fmt.Sprintf("owner-%d", i)),
		}, -1)
		defer sub.Close()
	}
	e := core.Event{Type: core.EventInvalidation, Owner: "owner-0",
		Invalidation: &core.InvalidationPush{Owner: "owner-0"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		broker.Publish(e)
	}
}

// BenchmarkEventSubscribeResume measures a resume subscription against a
// full replay window (the reconnect storm case).
func BenchmarkEventSubscribeResume(b *testing.B) {
	recordBench(b)
	broker := events.New(events.Options{ReplayWindow: 1024})
	defer broker.Close()
	for i := 0; i < 2048; i++ {
		broker.Publish(core.Event{Type: core.EventReplication, Signal: core.SignalLag})
	}
	after := broker.LastSeq() - 512
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, _ := broker.Subscribe(events.Filter{}, after)
		sub.Close()
	}
}
