package policy

import "umac/internal/core"

// This file is the compiled form of a policy: a per-action candidate-rule
// index built once per policy version, so the decision path walks only the
// rules that can possibly cover the requested action instead of scanning
// the whole rule list per request. Compilation changes nothing about the
// outcome — both the scan path (Evaluate) and the compiled path
// (EvaluateCompiled) funnel into the same evaluation core via polRef, so
// the two cannot drift apart semantically. Candidate lists store ORIGINAL
// rule indices in rule order: audit Reason strings embed the rule index
// ("rule 3 permits read ..."), and combining algorithms are order-
// sensitive, so the compiled path must see rules exactly as the scan path
// does.
//
// Subjects are deliberately NOT compiled: group membership is resolved
// live through the GroupResolver at evaluation time, so group edits never
// invalidate a compiled policy — only the policy's own content does.

// CompiledPolicy is a policy plus its action index. Build with Compile;
// the policy value must not be mutated afterwards (compile a new one
// instead — the AM's index does exactly that on invalidation).
type CompiledPolicy struct {
	p *Policy
	// byAction maps every action named explicitly by any rule to the
	// ordered indices of all rules covering it (explicit or wildcard).
	byAction map[core.Action][]int
	// wildcard is the ordered indices of rules with an empty action list;
	// it is the candidate set for actions no rule names explicitly.
	// Always non-nil, so candidates never returns the scan-all sentinel.
	wildcard []int
}

// Compile builds the action index for p. Compile(nil) returns nil, so
// callers can pass through "no policy linked" unconditionally.
func Compile(p *Policy) *CompiledPolicy {
	if p == nil {
		return nil
	}
	c := &CompiledPolicy{
		p:        p,
		byAction: make(map[core.Action][]int),
		wildcard: make([]int, 0, len(p.Rules)),
	}
	for i := range p.Rules {
		if len(p.Rules[i].Actions) == 0 {
			c.wildcard = append(c.wildcard, i)
		}
		for _, a := range p.Rules[i].Actions {
			c.byAction[a] = nil // mark; filled below in rule order
		}
	}
	for a := range c.byAction {
		list := make([]int, 0, len(p.Rules))
		for i := range p.Rules {
			if p.Rules[i].coversAction(a) {
				list = append(list, i)
			}
		}
		c.byAction[a] = list
	}
	return c
}

// Source returns the policy this index was compiled from.
func (c *CompiledPolicy) Source() *Policy { return c.p }

// candidates returns the ordered rule indices that cover a. The result is
// never nil (nil is polRef's scan-all sentinel); it is empty when no rule
// covers the action.
func (c *CompiledPolicy) candidates(a core.Action) []int {
	if list, ok := c.byAction[a]; ok {
		return list
	}
	return c.wildcard
}

// polRef is the evaluation core's view of one policy: the policy itself
// plus an optional pre-filtered candidate set. cand == nil means "scan
// every rule and check coversAction per rule" (the uncompiled path);
// non-nil cand (possibly empty) means the indices already cover the
// request's action, so the per-rule action check is skipped.
type polRef struct {
	p    *Policy
	cand []int
}

// scanRef wraps a plain policy for the scan path; nil stays "no policy".
func scanRef(p *Policy) polRef { return polRef{p: p} }

// compiledRef selects the action's candidate set; nil stays "no policy".
func compiledRef(c *CompiledPolicy, a core.Action) polRef {
	if c == nil {
		return polRef{}
	}
	return polRef{p: c.p, cand: c.candidates(a)}
}

// ruleCount is the number of candidate rules this evaluation will visit.
func (r polRef) ruleCount() int {
	if r.cand != nil {
		return len(r.cand)
	}
	return len(r.p.Rules)
}

// ruleAt maps the visit position to the original rule index and the rule.
func (r polRef) ruleAt(k int) (int, *Rule) {
	i := k
	if r.cand != nil {
		i = r.cand[k]
	}
	return i, &r.p.Rules[i]
}

// covers reports whether the rule applies to the action; pre-filtered
// candidate sets have already established this at compile time.
func (r polRef) covers(rule *Rule, a core.Action) bool {
	return r.cand != nil || rule.coversAction(a)
}

// EvaluateCompiled is Evaluate over compiled policies: identical two-stage
// semantics and identical results (including Reason strings), but each
// stage visits only the requested action's candidate rules.
func (e *Engine) EvaluateCompiled(req Request, general, specific *CompiledPolicy) Result {
	return e.evaluate(req, compiledRef(general, req.Action), compiledRef(specific, req.Action))
}
