// Package umastate implements the UMA authorization-state variant the
// paper contrasts with its push-token design: "in UMA a Requester does not
// obtain a token from AM but rather establishes an authorization state for
// a particular realm at a particular Host. This state is then checked by a
// Host when it queries AM for an access control decision" (Section V.B.3 /
// VIII).
//
// The Requester calls EstablishState once per (host, realm) and presents
// the opaque handle to the Host; the Host includes the handle in each
// decision query. Compared with the push-token model the AM carries the
// state, and the Host cannot verify anything locally.
package umastate

import (
	"errors"
	"fmt"
	"net/http"

	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/pep"
)

// RequesterClient establishes authorization states at an AM.
type RequesterClient struct {
	ID      core.RequesterID
	Subject core.UserID
	HTTP    *http.Client
}

// EstablishState runs the UMA-style pre-authorization at the AM, returning
// the state handle to present to the Host. Refusals surface as
// core.ErrAccessDenied.
func (c *RequesterClient) EstablishState(amURL string, host core.HostID, realm core.RealmID, res core.ResourceID, action core.Action) (string, error) {
	am := amclient.New(amclient.Config{BaseURL: amURL, HTTPClient: c.HTTP})
	handle, err := am.EstablishState(core.TokenRequest{
		Requester: c.ID,
		Subject:   c.Subject,
		Host:      host,
		Realm:     realm,
		Resource:  res,
		Action:    action,
	})
	var ae *core.APIError
	switch {
	case errors.As(err, &ae):
		// The AM answered with an error response: the state was refused.
		return "", fmt.Errorf("%w: state refused: %v", core.ErrAccessDenied, err)
	case err != nil:
		// Transport failure — not a denial.
		return "", fmt.Errorf("umastate: establish: %w", err)
	}
	return handle, nil
}

// Enforcer is the Host-side checker for the state model.
type Enforcer struct {
	host   core.HostID
	client *http.Client
	tracer *core.Tracer
}

// New constructs a state-model enforcer.
func New(host core.HostID, client *http.Client, tracer *core.Tracer) *Enforcer {
	if client == nil {
		client = http.DefaultClient
	}
	return &Enforcer{host: host, client: client, tracer: tracer}
}

// Check queries the AM with the Requester's state handle.
func (e *Enforcer) Check(p pep.Pairing, handle string, realm core.RealmID, res core.ResourceID, action core.Action) (bool, error) {
	req := core.StateDecisionQuery{
		Query: core.DecisionQuery{
			PairingID: p.PairingID,
			Host:      e.host,
			Realm:     realm,
			Resource:  res,
			Action:    action,
		},
		Handle: handle,
	}
	e.tracer.Record(core.PhaseObtainingDecision, "host:"+string(e.host), "am",
		"state-decision-query", string(res))
	am := amclient.New(amclient.Config{
		BaseURL:    p.AMURL,
		HTTPClient: e.client,
		PairingID:  p.PairingID,
		Secret:     p.Secret,
	})
	dec, err := am.StateDecide(req)
	if err != nil {
		return false, fmt.Errorf("umastate: query: %w", err)
	}
	return dec.Permit(), nil
}
