package am

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"umac/internal/core"
	"umac/internal/webutil"
)

// The decision routes are the AM's hot path: every cache-missing resource
// access on every paired Host lands here. The handlers below recycle their
// request envelopes and response encode buffers through sync.Pool so a
// sustained decision load does not allocate two envelopes plus an encoder
// buffer per request. Pooling is safe because every Decide* method takes
// its query by value and returns its response by value — nothing retains
// the pooled object past the handler.

var (
	decisionQueryPool = sync.Pool{New: func() any { return new(core.DecisionQuery) }}
	batchQueryPool    = sync.Pool{New: func() any { return new(core.BatchDecisionQuery) }}
	pullQueryPool     = sync.Pool{New: func() any { return new(core.PullDecisionQuery) }}
	stateQueryPool    = sync.Pool{New: func() any { return new(core.StateDecisionQuery) }}
	decisionBufPool   = sync.Pool{New: func() any { return new(bytes.Buffer) }}
)

// maxPooledDecisionBuf caps the encode buffers kept for reuse; a giant
// batch response is served and then let go rather than pinned forever.
const maxPooledDecisionBuf = 64 << 10

// writeDecisionJSON is webutil.WriteJSON through a pooled buffer: the
// response is encoded once into reusable memory and written with a single
// Write call.
func writeDecisionJSON(w http.ResponseWriter, r *http.Request, v any) {
	buf := decisionBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	if err := json.NewEncoder(buf).Encode(v); err != nil {
		decisionBufPool.Put(buf)
		// Through the structured funnel, not http.Error: a 500 must wear
		// the envelope and the sanitizer, never the raw encoder message.
		webutil.Fail(w, r, fmt.Errorf("am: encode decision response: %w: %w", core.ErrInternalFault, err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf.Bytes())
	if buf.Cap() <= maxPooledDecisionBuf {
		decisionBufPool.Put(buf)
	}
}
