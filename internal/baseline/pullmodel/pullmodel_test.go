package pullmodel

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/pep"
)

// fakeAM verifies the channel signature and scripts a decision.
func fakeAM(t *testing.T, secret string, decision string) *httptest.Server {
	t.Helper()
	verifier := httpsig.NewVerifier(httpsig.SecretSourceFunc(func(id string) (string, bool) {
		return secret, true
	}))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/api/decision/pull" {
			http.NotFound(w, r)
			return
		}
		if _, err := verifier.Verify(r); err != nil {
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"decision":"` + decision + `","cache_ttl_seconds":0}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

func pairing(amURL string) pep.Pairing {
	return pep.Pairing{AMURL: amURL, PairingID: "pair-1", Secret: "s3cret", User: "bob"}
}

func TestCheckPermit(t *testing.T) {
	srv := fakeAM(t, "s3cret", "permit")
	e := New("webpics", nil, nil)
	ok, err := e.Check(pairing(srv.URL), "alice", "app", "travel", "r", core.ActionRead)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestCheckDeny(t *testing.T) {
	srv := fakeAM(t, "s3cret", "deny")
	e := New("webpics", nil, nil)
	ok, err := e.Check(pairing(srv.URL), "mallory", "app", "travel", "r", core.ActionRead)
	if err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
}

func TestCheckSignsRequests(t *testing.T) {
	// The fake AM rejects a wrong secret: Check must surface the failure.
	srv := fakeAM(t, "different-secret", "permit")
	e := New("webpics", nil, nil)
	_, err := e.Check(pairing(srv.URL), "alice", "app", "travel", "r", core.ActionRead)
	if err == nil || !strings.Contains(err.Error(), "401") {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckTransportError(t *testing.T) {
	e := New("webpics", nil, nil)
	p := pep.Pairing{AMURL: "http://127.0.0.1:1", PairingID: "x", Secret: "y"}
	if _, err := e.Check(p, "alice", "app", "travel", "r", core.ActionRead); err == nil {
		t.Fatal("no error for unreachable AM")
	}
}
