package store

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

type doc struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestPutGet(t *testing.T) {
	s := New()
	if _, err := s.Put("doc", "a", doc{Name: "alpha", Count: 1}); err != nil {
		t.Fatal(err)
	}
	var d doc
	e, err := s.Get("doc", "a", &d)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "alpha" || d.Count != 1 {
		t.Fatalf("got %+v", d)
	}
	if e.Version != 1 {
		t.Fatalf("version = %d, want 1", e.Version)
	}
}

func TestGetMissing(t *testing.T) {
	s := New()
	_, err := s.Get("doc", "missing", nil)
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestZeroValueUsable(t *testing.T) {
	var s Store
	if _, err := s.Put("k", "x", 1); err != nil {
		t.Fatal(err)
	}
	var v int
	if _, err := s.Get("k", "x", &v); err != nil || v != 1 {
		t.Fatalf("v=%d err=%v", v, err)
	}
}

func TestPutBadKey(t *testing.T) {
	s := New()
	if _, err := s.Put("", "k", 1); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty kind: %v", err)
	}
	if _, err := s.Put("k", "", 1); !errors.Is(err, ErrBadKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := s.PutIfVersion("", "k", 0, 1); !errors.Is(err, ErrBadKey) {
		t.Fatalf("PutIfVersion empty kind: %v", err)
	}
}

func TestVersionIncrements(t *testing.T) {
	s := New()
	for i := 1; i <= 5; i++ {
		e, err := s.Put("doc", "a", doc{Count: i})
		if err != nil {
			t.Fatal(err)
		}
		if e.Version != int64(i) {
			t.Fatalf("version = %d, want %d", e.Version, i)
		}
	}
}

func TestPutIfVersion(t *testing.T) {
	s := New()
	// Create-only semantics.
	if _, err := s.PutIfVersion("doc", "a", 0, doc{Name: "first"}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PutIfVersion("doc", "a", 0, doc{Name: "second"}); !errors.Is(err, ErrConflict) {
		t.Fatalf("create-over-existing: %v", err)
	}
	// Update with correct version.
	if _, err := s.PutIfVersion("doc", "a", 1, doc{Name: "second"}); err != nil {
		t.Fatal(err)
	}
	// Update with stale version.
	if _, err := s.PutIfVersion("doc", "a", 1, doc{Name: "third"}); !errors.Is(err, ErrConflict) {
		t.Fatalf("stale version: %v", err)
	}
	// Update of a missing entity with nonzero version.
	if _, err := s.PutIfVersion("doc", "nope", 3, doc{}); !errors.Is(err, ErrConflict) {
		t.Fatalf("missing entity: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s := New()
	s.Put("doc", "a", doc{})
	if err := s.Delete("doc", "a"); err != nil {
		t.Fatal(err)
	}
	if s.Exists("doc", "a") {
		t.Fatal("still exists after delete")
	}
	if err := s.Delete("doc", "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	if err := s.Delete("nokind", "a"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing kind: %v", err)
	}
}

func TestListSorted(t *testing.T) {
	s := New()
	for _, k := range []string{"c", "a", "b"} {
		s.Put("doc", k, doc{Name: k})
	}
	got := s.List("doc")
	if len(got) != 3 {
		t.Fatalf("len = %d", len(got))
	}
	for i, want := range []string{"a", "b", "c"} {
		if got[i].Key != want {
			t.Fatalf("got[%d].Key = %q, want %q", i, got[i].Key, want)
		}
	}
	if got := s.List("empty"); len(got) != 0 {
		t.Fatalf("empty kind list = %v", got)
	}
}

func TestListPrefix(t *testing.T) {
	s := New()
	s.Put("link", "bob/travel/p1", 1)
	s.Put("link", "bob/travel/p2", 2)
	s.Put("link", "bob/work/d1", 3)
	s.Put("link", "alice/travel/p9", 4)
	got := s.ListPrefix("link", "bob/travel/")
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	if got[0].Key != "bob/travel/p1" || got[1].Key != "bob/travel/p2" {
		t.Fatalf("got %v", got)
	}
}

func TestQuery(t *testing.T) {
	s := New()
	for i := 0; i < 10; i++ {
		s.Put("doc", fmt.Sprintf("k%d", i), doc{Count: i})
	}
	got := s.Query("doc", func(e Entity) bool {
		var d doc
		if err := e.Decode(&d); err != nil {
			return false
		}
		return d.Count%2 == 0
	})
	if len(got) != 5 {
		t.Fatalf("len = %d, want 5", len(got))
	}
}

func TestCountAndKinds(t *testing.T) {
	s := New()
	s.Put("a", "1", 1)
	s.Put("a", "2", 2)
	s.Put("b", "1", 3)
	if s.Count("a") != 2 || s.Count("b") != 1 || s.Count("c") != 0 {
		t.Fatal("counts wrong")
	}
	kinds := s.Kinds()
	if len(kinds) != 2 || kinds[0] != "a" || kinds[1] != "b" {
		t.Fatalf("kinds = %v", kinds)
	}
	s.Delete("b", "1")
	if got := s.Kinds(); len(got) != 1 {
		t.Fatalf("kinds after delete = %v", got)
	}
}

func TestUpdateExisting(t *testing.T) {
	s := New()
	s.Put("doc", "a", doc{Count: 1})
	var cur doc
	e, err := s.Update("doc", "a", &cur, func(exists bool) (any, error) {
		if !exists {
			t.Fatal("exists = false")
		}
		cur.Count++
		return cur, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if e.Version != 2 {
		t.Fatalf("version = %d", e.Version)
	}
	var d doc
	s.Get("doc", "a", &d)
	if d.Count != 2 {
		t.Fatalf("count = %d", d.Count)
	}
}

func TestUpdateCreates(t *testing.T) {
	s := New()
	_, err := s.Update("doc", "new", nil, func(exists bool) (any, error) {
		if exists {
			t.Fatal("exists = true for missing entity")
		}
		return doc{Count: 7}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var d doc
	if _, err := s.Get("doc", "new", &d); err != nil || d.Count != 7 {
		t.Fatalf("d=%+v err=%v", d, err)
	}
}

func TestUpdateFnError(t *testing.T) {
	s := New()
	wantErr := errors.New("boom")
	_, err := s.Update("doc", "a", nil, func(bool) (any, error) {
		return nil, wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestUpdateConcurrentIncrements(t *testing.T) {
	s := New()
	s.Put("doc", "ctr", doc{Count: 0})
	const workers, perWorker = 8, 50
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				var cur doc
				_, err := s.Update("doc", "ctr", &cur, func(bool) (any, error) {
					cur.Count++
					return cur, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	var d doc
	s.Get("doc", "ctr", &d)
	if d.Count != workers*perWorker {
		t.Fatalf("count = %d, want %d (lost updates)", d.Count, workers*perWorker)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	s := New()
	s.Put("doc", "a", doc{Name: "alpha", Count: 1})
	s.Put("doc", "b", doc{Name: "beta", Count: 2})
	s.Put("policy", "p1", map[string]string{"effect": "permit"})
	if err := s.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count("doc") != 2 || s2.Count("policy") != 1 {
		t.Fatal("counts after load wrong")
	}
	var d doc
	e, err := s2.Get("doc", "a", &d)
	if err != nil || d.Name != "alpha" {
		t.Fatalf("d=%+v err=%v", d, err)
	}
	if e.Version != 1 {
		t.Fatalf("version not preserved: %d", e.Version)
	}
}

func TestOpenMissingFile(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Kinds()) != 0 {
		t.Fatal("not empty")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.json")
	writeFile(t, path, "{not json")
	s := New()
	if err := s.Load(path); err == nil {
		t.Fatal("loaded garbage")
	}
	writeFile(t, path, `{"format_version": 99, "entities": []}`)
	if err := s.Load(path); err == nil {
		t.Fatal("loaded wrong format version")
	}
}

func TestPutGetRoundTripProperty(t *testing.T) {
	s := New()
	f := func(key string, name string, count int) bool {
		if key == "" {
			return true
		}
		if _, err := s.Put("prop", key, doc{Name: name, Count: count}); err != nil {
			return false
		}
		var d doc
		if _, err := s.Get("prop", key, &d); err != nil {
			return false
		}
		return d.Name == name && d.Count == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := writeAll(path, content); err != nil {
		t.Fatal(err)
	}
}
