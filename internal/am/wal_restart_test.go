package am

import (
	"path/filepath"
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/store"
)

// TestAMStateSurvivesHardKill is the WAL counterpart of
// TestAMStateSurvivesRestart: state written through the AM is NEVER
// snapshot — the process "dies" with only the write-ahead log on disk —
// and a second instance opened from the same path must still serve
// decisions from every acknowledged write (what cmd/amserver guarantees
// between -snapshot-every ticks).
func TestAMStateSurvivesHardKill(t *testing.T) {
	key := []byte("stable-master-key-0123456789abcd")
	path := filepath.Join(t.TempDir(), "am-state.json")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a1 := New(Config{Name: "am", Store: st, TokenKey: key})

	// Full setup through the first instance: pairing, realm, policy, link,
	// group membership, and a minted token.
	code, err := a1.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	pairing, err := a1.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a1.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	p, err := a1.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	if err := a1.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	tok, err := a1.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Hard kill: no Snapshot, no Close. Only the WAL survives.

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	a2 := New(Config{Name: "am", Store: st2, TokenKey: key})

	secret, ok := a2.PairingSecret(pairing.PairingID)
	if !ok || secret != pairing.Secret {
		t.Fatal("pairing secret lost across hard kill")
	}
	if got := a2.GroupMembers("bob", "friends"); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("groups after replay = %v", got)
	}
	dec, err := a2.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Permit() {
		t.Fatalf("pre-kill token denied after WAL replay: %+v", dec)
	}
}
