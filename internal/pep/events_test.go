package pep

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"umac/internal/am"
	"umac/internal/core"
	"umac/internal/policy"
)

// These tests prove the PEP's consumer side of the event control plane:
// StartInvalidationStream subscribes over the signed channel and applies
// scoped evictions pushed by the AM — with no legacy POST push enabled —
// and Close never waits out a parked stream read.

// streamFixture pairs an Enforcer with a live AM over HTTP.
type streamFixture struct {
	am  *am.AM
	enf *Enforcer
}

func newStreamFixture(t *testing.T, owner core.UserID) *streamFixture {
	t.Helper()
	a := am.New(am.Config{Name: "am", Notifier: &am.Outbox{}})
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	a.SetBaseURL(srv.URL)

	e := New(Config{Host: "h1", StreamRetry: 20 * time.Millisecond})
	t.Cleanup(func() { e.Close() })
	code, err := a.ApprovePairing(core.PairingRequest{Host: "h1", User: owner})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.CompletePairing(srv.URL, owner, code); err != nil {
		t.Fatal(err)
	}
	return &streamFixture{am: a, enf: e}
}

// waitSubscribed blocks until the AM sees at least one event subscriber.
func (f *streamFixture) waitSubscribed(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		h := f.am.Events().Health()
		if h.Subscribers[core.EventInvalidation] > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("stream never subscribed")
}

// waitEmpty blocks until the decision cache drains (eviction applied).
func waitEmpty(t *testing.T, c *DecisionCache) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if c.Len() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("cache still holds %d entries", c.Len())
}

// TestInvalidationStreamEvictsScoped: a PAP mutation at the AM reaches the
// subscribed PEP and evicts exactly the affected scope — the AM never
// dials the Host (no EnableInvalidationPush).
func TestInvalidationStreamEvictsScoped(t *testing.T) {
	f := newStreamFixture(t, "bob")
	if err := f.enf.Protect("bob", "travel", nil, ""); err != nil {
		t.Fatal(err)
	}
	pol, err := f.am.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	if err := f.enf.StartInvalidationStream("bob"); err != nil {
		t.Fatal(err)
	}
	f.waitSubscribed(t)

	cache := f.enf.Cache()
	cache.PutScopedAt(cache.Gen(), cacheKey("tok", "diary", core.ActionRead),
		EntryScope{Owner: "bob", Realm: "travel"}, true, 600)
	cache.PutScopedAt(cache.Gen(), cacheKey("tok", "pics", core.ActionRead),
		EntryScope{Owner: "carol", Realm: "albums"}, true, 600)

	// A PAP mutation scoped to bob's realm must evict bob's entry and leave
	// carol's alone.
	if err := f.am.LinkGeneral("bob", "travel", pol.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && cache.Len() > 1 {
		time.Sleep(5 * time.Millisecond)
	}
	if cache.Len() != 1 {
		t.Fatalf("cache len = %d, want 1 (only carol's entry)", cache.Len())
	}
	if _, ok := cache.Get(cacheKey("tok", "pics", core.ActionRead)); !ok {
		t.Fatal("unrelated owner's entry was evicted")
	}
}

// TestInvalidationStreamUnscopedDropsAll: a node-wide (ownerless)
// invalidation event drops everything — when in doubt, no stale permits.
func TestInvalidationStreamUnscopedDropsAll(t *testing.T) {
	f := newStreamFixture(t, "bob")
	if err := f.enf.StartInvalidationStream("bob"); err != nil {
		t.Fatal(err)
	}
	f.waitSubscribed(t)
	cache := f.enf.Cache()
	cache.PutScopedAt(cache.Gen(), cacheKey("tok", "diary", core.ActionRead),
		EntryScope{Owner: "bob"}, true, 600)
	f.am.Events().Publish(core.Event{Type: core.EventInvalidation})
	waitEmpty(t, cache)
}

// TestStreamRequiresPairing: subscribing for an unpaired owner fails fast.
func TestStreamRequiresPairing(t *testing.T) {
	e := New(Config{Host: "h1"})
	defer e.Close()
	if err := e.StartInvalidationStream("nobody"); !errors.Is(err, core.ErrNotPaired) {
		t.Fatalf("err = %v, want ErrNotPaired", err)
	}
}

// TestClosePrompt: Close returns while a stream read is parked on a silent
// connection, mirroring the follower-sync cancellation discipline.
func TestClosePrompt(t *testing.T) {
	f := newStreamFixture(t, "bob")
	if err := f.enf.StartInvalidationStream("bob"); err != nil {
		t.Fatal(err)
	}
	f.waitSubscribed(t)
	done := make(chan struct{})
	go func() {
		f.enf.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return while stream was parked")
	}
}
