package sim

import (
	"context"
	"testing"
	"time"
)

// TestClusterWorkload asserts the sharded cluster's promises under the
// combined migration + primary-kill scenario: zero acknowledged-write loss
// on both shards, no decision served by the losing shard after cutover,
// and decision continuity through the migration chase and the in-shard
// failover. The context deadline turns any hung follower or stalled drain
// into a fast phase-named failure.
func TestClusterWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster workload is a multi-node scenario")
	}
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	rep, err := RunClusterWorkload(ctx, t.TempDir(), 20)
	if err != nil {
		t.Fatalf("cluster workload: %v (report %+v)", err, rep)
	}
	t.Logf("report: %+v", rep)

	if rep.DecisionFailures != 0 {
		t.Errorf("%d decision queries failed outright (served %d)", rep.DecisionFailures, rep.DecisionsServed)
	}
	if rep.DecisionsServed == 0 || rep.DecisionsAfterKill == 0 {
		t.Errorf("workload served no decisions (served %d, after kill %d)",
			rep.DecisionsServed, rep.DecisionsAfterKill)
	}
	if !rep.WrongShardAfterCutover {
		t.Error("losing shard did not answer wrong_shard after cutover")
	}
	if len(rep.LostOnGainingShard) > 0 {
		t.Errorf("acknowledged writes missing on the gaining shard: %v", rep.LostOnGainingShard)
	}
	if len(rep.LostAfterRecovery) > 0 {
		t.Errorf("acknowledged writes missing after WAL recovery: %v", rep.LostAfterRecovery)
	}
	for role, n := range rep.WritesAcked {
		if n == 0 {
			t.Errorf("owner role %q acknowledged no writes", role)
		}
	}
	if rep.Migration.SnapshotRecords == 0 {
		t.Errorf("migration shipped an empty closure: %+v", rep.Migration)
	}
}
