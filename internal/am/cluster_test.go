package am

import (
	"errors"
	"fmt"
	"testing"

	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/policy"
)

// clusterFixture builds a two-shard ring and one AM per shard, plus one
// owner name hashing to each shard.
type clusterFixture struct {
	ring   *cluster.Ring
	amA    *AM
	amB    *AM
	ownerA core.UserID
	ownerB core.UserID
}

func newClusterFixture(t *testing.T) *clusterFixture {
	t.Helper()
	shards := []core.ShardInfo{
		{Name: "shard-a", Primary: "http://shard-a", Endpoints: []string{"http://shard-a"}},
		{Name: "shard-b", Primary: "http://shard-b", Endpoints: []string{"http://shard-b"}},
	}
	ring, err := cluster.New(shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	f := &clusterFixture{ring: ring}
	for i := 0; f.ownerA == "" || f.ownerB == ""; i++ {
		owner := core.UserID(fmt.Sprintf("owner-%d", i))
		switch ring.Owner(owner).Name {
		case "shard-a":
			if f.ownerA == "" {
				f.ownerA = owner
			}
		case "shard-b":
			if f.ownerB == "" {
				f.ownerB = owner
			}
		}
	}
	f.amA = New(Config{Name: "am-a", Cluster: ClusterConfig{Shard: "shard-a", Ring: ring}})
	f.amB = New(Config{Name: "am-b", Cluster: ClusterConfig{Shard: "shard-b", Ring: ring}})
	t.Cleanup(func() { f.amA.Close(); f.amB.Close() })
	return f
}

// wantWrongShard asserts err is the structured wrong_shard error hinting
// at the given primary URL.
func wantWrongShard(t *testing.T, err error, hint string) {
	t.Helper()
	var ae *core.APIError
	if !errors.As(err, &ae) || ae.Code != core.CodeWrongShard {
		t.Fatalf("want wrong_shard, got %v", err)
	}
	if ae.Shard != hint {
		t.Fatalf("wrong_shard hint = %q, want %q", ae.Shard, hint)
	}
	if !ae.Retryable || ae.Status != 421 {
		t.Fatalf("wrong_shard must be retryable 421, got %+v", ae)
	}
}

func permitPolicy(owner core.UserID) policy.Policy {
	return policy.Policy{
		Owner: owner, Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
		}},
	}
}

func TestShardGateOnMutatingRoutes(t *testing.T) {
	f := newClusterFixture(t)

	// A foreign owner's writes bounce with the owning shard's primary as
	// the hint, on every owner-scoped mutation family.
	_, err := f.amB.CreatePolicy(f.ownerA, permitPolicy(f.ownerA))
	wantWrongShard(t, err, "http://shard-a")

	_, err = f.amB.ApprovePairing(core.PairingRequest{Host: "webpics", User: f.ownerA})
	wantWrongShard(t, err, "http://shard-a")

	wantWrongShard(t, f.amB.LinkGeneral(f.ownerA, "travel", "pol-x"), "http://shard-a")
	wantWrongShard(t, f.amB.AddGroupMember(f.ownerA, f.ownerA, "friends", "alice"), "http://shard-a")
	wantWrongShard(t, f.amB.AddCustodian(f.ownerA, "carol"), "http://shard-a")

	// The owner's own shard accepts the same calls.
	if _, err := f.amA.CreatePolicy(f.ownerA, permitPolicy(f.ownerA)); err != nil {
		t.Fatalf("own shard rejected owner: %v", err)
	}
	if err := f.amA.AddGroupMember(f.ownerA, f.ownerA, "friends", "alice"); err != nil {
		t.Fatalf("own shard rejected group write: %v", err)
	}
}

// protocolFixture pairs a host and protects a realm for owner on am.
func protocolFixture(t *testing.T, a *AM, owner core.UserID) (pairingID string, token string) {
	t.Helper()
	code, err := a.ApprovePairing(core.PairingRequest{Host: "webpics", User: owner})
	if err != nil {
		t.Fatal(err)
	}
	pairing, err := a.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	p, err := a.CreatePolicy(owner, permitPolicy(owner))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LinkGeneral(owner, "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	tok, err := a.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pairing.PairingID, tok.Token
}

func TestShardGateOnDecisionAfterOverride(t *testing.T) {
	f := newClusterFixture(t)
	pairingID, tok := protocolFixture(t, f.amA, f.ownerA)

	q := core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok,
	}
	dec, err := f.amA.Decide(pairingID, q)
	if err != nil || !dec.Permit() {
		t.Fatalf("pre-override decide: dec=%+v err=%v", dec, err)
	}

	// The migration cutover: pin the owner to shard-b. The losing shard
	// still holds all the owner's state, but must stop serving decisions
	// and writes for it.
	if err := f.amA.SetOwnerShard(f.ownerA, "shard-b"); err != nil {
		t.Fatal(err)
	}
	_, err = f.amA.Decide(pairingID, q)
	wantWrongShard(t, err, "http://shard-b")

	_, err = f.amA.DecideBatch(pairingID, core.BatchDecisionQuery{
		Host: "webpics", Token: tok,
		Items: []core.BatchDecisionItem{{Realm: "travel", Resource: "photo", Action: core.ActionRead}},
	})
	wantWrongShard(t, err, "http://shard-b")

	_, err = f.amA.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	wantWrongShard(t, err, "http://shard-b")

	_, err = f.amA.CreatePolicy(f.ownerA, permitPolicy(f.ownerA))
	wantWrongShard(t, err, "http://shard-b")

	// Revocation must re-route too: acknowledging it against the losing
	// shard's stale pairing copy would leave the authoritative pairing
	// un-revoked.
	wantWrongShard(t, f.amA.RevokePairing(pairingID), "http://shard-b")

	// The gaining shard accepts the owner once its own override is set
	// (its hash ring would otherwise still map the owner to shard-a).
	if err := f.amB.SetOwnerShard(f.ownerA, "shard-b"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.amB.CreatePolicy(f.ownerA, permitPolicy(f.ownerA)); err != nil {
		t.Fatalf("gaining shard rejected migrated owner: %v", err)
	}
}

func TestSetOwnerShardValidation(t *testing.T) {
	f := newClusterFixture(t)
	if err := f.amA.SetOwnerShard(f.ownerA, "no-such-shard"); err == nil {
		t.Fatal("unknown shard accepted")
	}
	if err := f.amA.SetOwnerShard("", "shard-b"); err == nil {
		t.Fatal("empty owner accepted")
	}
	unsharded := New(Config{Name: "plain"})
	defer unsharded.Close()
	if err := unsharded.SetOwnerShard("bob", "shard-a"); err == nil {
		t.Fatal("unsharded node accepted an override")
	}
	if err := unsharded.checkShard("bob"); err != nil {
		t.Fatalf("unsharded node gated a write: %v", err)
	}
}

func TestClusterInfoReportsRingAndOverrides(t *testing.T) {
	f := newClusterFixture(t)
	if err := f.amA.SetOwnerShard(f.ownerA, "shard-b"); err != nil {
		t.Fatal(err)
	}
	info, err := f.amA.ClusterInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.Shard != "shard-a" || len(info.Shards) != 2 || info.Vnodes != 64 {
		t.Fatalf("cluster info wrong: %+v", info)
	}
	if info.Overrides[string(f.ownerA)] != "shard-b" {
		t.Fatalf("override missing from cluster info: %+v", info.Overrides)
	}
	unsharded := New(Config{Name: "plain"})
	defer unsharded.Close()
	if _, err := unsharded.ClusterInfo(); err == nil {
		t.Fatal("unsharded node served cluster info")
	}
}

func TestOwnerClosureSnapshotAndImport(t *testing.T) {
	f := newClusterFixture(t)
	pairingID, tok := protocolFixture(t, f.amA, f.ownerA)
	if err := f.amA.AddGroupMember(f.ownerA, f.ownerA, "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	// Foreign noise that must not leak into ownerA's closure.
	if _, err := f.amB.CreatePolicy(f.ownerB, permitPolicy(f.ownerB)); err != nil {
		t.Fatal(err)
	}

	snap := f.amA.Store().ReplicationSnapshotFilter(replOwnerKeep(f.ownerA))
	kinds := make(map[string]int)
	for _, rec := range snap.Records {
		kinds[rec.Kind]++
	}
	for _, kind := range []string{kindPairing, kindRealm, kindPolicy, kindLinkGen, kindGroup, kindGrant} {
		if kinds[kind] == 0 {
			t.Fatalf("owner closure misses kind %s: %v", kind, kinds)
		}
	}

	// Import the closure into shard-b and pin the owner there: decisions
	// must work from migrated state alone — including the group-backed
	// policy, which exercises the directory install path.
	for _, rec := range snap.Records {
		if err := f.amB.applyImported(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.amB.SetOwnerShard(f.ownerA, "shard-b"); err != nil {
		t.Fatal(err)
	}
	// The pairing and realm resolve from migrated state (the token itself
	// was minted under amA's random key, so the decision is a token-problem
	// deny here — the sim workload covers shared-key clusters end to end).
	if _, err := f.amB.Decide(pairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok,
	}); err != nil {
		t.Fatalf("decide on migrated state: %v", err)
	}
	// The group-backed directory must have been restored by the install
	// path, not just the store contents.
	members := f.amB.GroupMembers(f.ownerA, "friends")
	if len(members) != 1 || members[0] != "alice" {
		t.Fatalf("group directory not restored on import: %v", members)
	}
}

func TestRingUpdateVersioning(t *testing.T) {
	f := newClusterFixture(t)

	// A newer ring installs, swaps the routing view, and reports its
	// version; re-pushing the same version is an idempotent no-op; pushing
	// an older version is a conflict.
	next := f.ring.State()
	next.Version = 3
	info, err := f.amA.UpdateRing(next)
	if err != nil {
		t.Fatal(err)
	}
	if info.RingVersion != 3 {
		t.Fatalf("ring version %d after install, want 3", info.RingVersion)
	}
	if info, err = f.amA.UpdateRing(next); err != nil || info.RingVersion != 3 {
		t.Fatalf("same-version push: info=%+v err=%v", info, err)
	}
	stale := f.ring.State()
	stale.Version = 2
	if _, err := f.amA.UpdateRing(stale); err == nil {
		t.Fatal("stale ring push accepted")
	} else {
		var ae *core.APIError
		if !errors.As(err, &ae) || ae.Code != core.CodeConflict {
			t.Fatalf("stale ring push: want conflict, got %v", err)
		}
	}

	// The installed ring persists: a new AM over the same store must come
	// up at v3 even though its config seeds the v0 ring.
	st := f.amA.Store()
	f.amA.Close()
	reborn := New(Config{Name: "am-a2", Store: st, Cluster: ClusterConfig{Shard: "shard-a", Ring: f.ring}})
	defer reborn.Close()
	rinfo, err := reborn.ClusterInfo()
	if err != nil {
		t.Fatal(err)
	}
	if rinfo.RingVersion != 3 {
		t.Fatalf("rebuilt AM at ring v%d, want persisted v3", rinfo.RingVersion)
	}

	// A draining ring keeps the draining shard addressable (overrides and
	// hints still validate against it) but routes no owners to it.
	drain := f.ring.State()
	drain.Version = 4
	drain.Draining = []string{"shard-b"}
	if _, err := reborn.UpdateRing(drain); err != nil {
		t.Fatal(err)
	}
	if err := reborn.SetOwnerShard(f.ownerB, "shard-b"); err != nil {
		t.Fatalf("draining shard no longer addressable for overrides: %v", err)
	}
	inf, err := reborn.ClusterInfo()
	if err != nil {
		t.Fatal(err)
	}
	if len(inf.Draining) != 1 || inf.Draining[0] != "shard-b" {
		t.Fatalf("draining set %v, want [shard-b]", inf.Draining)
	}
}

func TestOwnerStatsEffectiveOwnership(t *testing.T) {
	f := newClusterFixture(t)
	if _, err := f.amA.CreatePolicy(f.ownerA, permitPolicy(f.ownerA)); err != nil {
		t.Fatal(err)
	}
	if _, err := f.amA.CreatePolicy(f.ownerA, permitPolicy(f.ownerA)); err != nil {
		t.Fatal(err)
	}

	stats, err := f.amA.OwnerStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Shard != "shard-a" || len(stats.Owners) != 1 {
		t.Fatalf("stats %+v, want one shard-a owner", stats)
	}
	if got := stats.Owners[0]; got.Owner != f.ownerA || got.Records < 2 {
		t.Fatalf("owner load %+v, want %s with >=2 records", got, f.ownerA)
	}

	// An owner pinned away stops counting even though its data is still
	// resident — OwnerStats reports effective ownership, so a rebalance
	// replan after an abort only sees the un-moved remainder.
	if err := f.amA.SetOwnerShard(f.ownerA, "shard-b"); err != nil {
		t.Fatal(err)
	}
	stats, err = f.amA.OwnerStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Owners) != 0 {
		t.Fatalf("migrated-away owner still counted: %+v", stats.Owners)
	}

	// Clearing the pin restores it, and ClearOwnerShard is idempotent.
	if err := f.amA.ClearOwnerShard(f.ownerA); err != nil {
		t.Fatal(err)
	}
	if err := f.amA.ClearOwnerShard(f.ownerA); err != nil {
		t.Fatalf("second clear not idempotent: %v", err)
	}
	stats, err = f.amA.OwnerStats()
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Owners) != 1 {
		t.Fatalf("owner not restored after pin clear: %+v", stats.Owners)
	}
}
