// Command hostserver runs one of the prototype Host applications from
// Section VI of the paper: the online storage service or the online photo
// gallery. Both start in built-in ACL mode; users delegate to an AM through
// the pairing flow (visit the printed pairing URL).
//
// Usage:
//
//	hostserver -app storage -addr :8081 -host-id storage [-state host-state.json]
//	hostserver -app gallery -addr :8082 -host-id gallery
//
// With -state, AM pairings are persisted through a WAL-backed store, so a
// restarted (or killed) Host keeps its delegation relationships; -fsync
// extends durability to machine crashes.
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"umac/internal/apps/gallery"
	"umac/internal/apps/storage"
	"umac/internal/core"
	kvstore "umac/internal/store"
)

func main() {
	var (
		app     = flag.String("app", "storage", "application to run: storage | gallery")
		addr    = flag.String("addr", ":8081", "listen address")
		hostID  = flag.String("host-id", "", "protocol host identity (default = app name)")
		baseURL = flag.String("base-url", "", "externally reachable URL (default http://localhost<addr>)")
		statef  = flag.String("state", "", "pairing state file (empty = in-memory only)")
		fsync   = flag.Bool("fsync", false, "fsync the WAL on every write")
		every   = flag.Duration("snapshot-every", time.Minute, "WAL compaction (snapshot) interval")
	)
	flag.Parse()

	id := core.HostID(*hostID)
	if id == "" {
		id = core.HostID(*app)
	}
	base := *baseURL
	if base == "" {
		base = "http://localhost" + *addr
	}

	var st *kvstore.Store
	if *statef != "" {
		var opts []kvstore.Option
		if *fsync {
			opts = append(opts, kvstore.WithFsync())
		}
		var err error
		if st, err = kvstore.Open(*statef, opts...); err != nil {
			log.Fatalf("hostserver: open state: %v", err)
		}
		// No explicit Close: every write is already on disk when
		// acknowledged, and this process only exits by being killed or
		// via log.Fatalf. Periodic snapshots bound WAL growth and the
		// replay cost of the next start.
		go func() {
			ticker := time.NewTicker(*every)
			defer ticker.Stop()
			for range ticker.C {
				if err := st.Snapshot(*statef); err != nil {
					log.Printf("hostserver: snapshot: %v", err)
				}
			}
		}()
	}

	var handler http.Handler
	switch *app {
	case "storage":
		a := storage.New(storage.Config{HostID: id, PairingStore: st})
		a.Enforcer.SetBaseURL(base)
		handler = a.Handler()
	case "gallery":
		a := gallery.New(gallery.Config{HostID: id, PairingStore: st})
		a.Enforcer.SetBaseURL(base)
		handler = a.Handler()
	default:
		log.Fatalf("hostserver: unknown app %q (want storage or gallery)", *app)
	}

	log.Printf("hostserver: %s (%s) listening on %s", *app, id, *addr)
	log.Printf("hostserver: pair with an AM by driving a browser through the enforcer's pairing URL")
	if err := http.ListenAndServe(*addr, handler); err != nil {
		log.Fatalf("hostserver: %v", err)
	}
}
