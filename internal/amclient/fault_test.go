package amclient_test

// These tests put the typed client's two routing behaviours — the
// multi-endpoint failover and the wrong_shard chase — under *slow*
// endpoints, not just dead ones: a loadgen.FaultProxy in front of each
// in-process AM injects latency far beyond the client's HTTP timeout, so
// the client sees timeouts (url.Error) rather than refused connections.
// Dead-endpoint behaviour is covered in failover_test.go; slow is the
// harder case because every misrouted attempt burns the full timeout.

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"net/http"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/loadgen"
	"umac/internal/policy"
	"umac/internal/store"
)

const (
	faultSecret = "fault-test-secret"
	faultHost   = core.HostID("webpics")
)

var faultTokenKey = []byte("fault-test-token-key-0123456789a")

// protocolFixture builds pairing, realm, permit policy and token for
// owner directly on a (in-process), returning what a decision needs.
func protocolFixture(t *testing.T, a *am.AM, owner core.UserID) (core.PairingResponse, core.RealmID, string) {
	t.Helper()
	code, err := a.ApprovePairing(core.PairingRequest{Host: faultHost, User: owner})
	if err != nil {
		t.Fatal(err)
	}
	pairing, err := a.ExchangeCode(code, faultHost)
	if err != nil {
		t.Fatal(err)
	}
	realm := core.RealmID("travel-" + string(owner))
	if _, err := a.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: realm}); err != nil {
		t.Fatal(err)
	}
	p, err := a.CreatePolicy(owner, policy.Policy{
		Owner: owner, Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LinkGeneral(owner, realm, p.ID); err != nil {
		t.Fatal(err)
	}
	tok, err := a.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: faultHost,
		Realm: realm, Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pairing, realm, tok.Token
}

// TestFailoverSlowEndpoint drives a decision through a replicated pair
// whose primary is slow — 2s of injected latency against a 300ms client
// timeout. The attempt against the primary must burn its timeout and the
// failover must land the decision on the follower, transparently.
func TestFailoverSlowEndpoint(t *testing.T) {
	primary := am.New(am.Config{
		Name: "p", TokenKey: faultTokenKey,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: faultSecret},
	})
	defer primary.Close()
	primarySrv := httptest.NewServer(primary.Handler())
	defer primarySrv.Close()
	primary.SetBaseURL(primarySrv.URL)

	pairing, realm, token := protocolFixture(t, primary, "bob")

	follower := am.New(am.Config{
		Name: "f", TokenKey: faultTokenKey,
		Replication: am.ReplicationConfig{
			Role: am.RoleFollower, Secret: faultSecret,
			PrimaryURL: primarySrv.URL, PollWait: 50 * time.Millisecond,
		},
	})
	defer follower.Close()
	followerSrv := httptest.NewServer(follower.Handler())
	defer followerSrv.Close()
	follower.SetBaseURL(followerSrv.URL)
	if !follower.WaitReplicated(primary.Store().LastSeq(), 10*time.Second) {
		t.Fatal("follower never caught up")
	}

	slowPrimary, err := loadgen.NewFaultProxy(primarySrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer slowPrimary.Close()
	okFollower, err := loadgen.NewFaultProxy(followerSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer okFollower.Close()

	const clientTimeout = 300 * time.Millisecond
	decider := amclient.New(amclient.Config{
		BaseURL:    slowPrimary.URL(),
		Endpoints:  []string{okFollower.URL()},
		HTTPClient: &http.Client{Timeout: clientTimeout},
		PairingID:  pairing.PairingID,
		Secret:     pairing.Secret,
	})
	q := core.DecisionQuery{
		Host: faultHost, Realm: realm, Resource: "photo",
		Action: core.ActionRead, Token: token,
	}

	// Sanity: the clean path works.
	if dec, err := decider.Decide(q); err != nil || !dec.Permit() {
		t.Fatalf("clean decision: dec=%+v err=%v", dec, err)
	}

	// Slow primary: the client must wait out its timeout there, then fail
	// over to the follower and still answer.
	slowPrimary.SetLatency(2 * time.Second)
	t0 := time.Now()
	dec, err := decider.Decide(q)
	elapsed := time.Since(t0)
	if err != nil || !dec.Permit() {
		t.Fatalf("decision under slow primary: dec=%+v err=%v", dec, err)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("decision took %s — the client sat through the full injected latency instead of timing out at %s", elapsed, clientTimeout)
	}

	// The client remembers the working endpoint: the next decision must
	// not burn the timeout again.
	t0 = time.Now()
	if dec, err := decider.Decide(q); err != nil || !dec.Permit() {
		t.Fatalf("follow-up decision: dec=%+v err=%v", dec, err)
	}
	if elapsed := time.Since(t0); elapsed >= clientTimeout {
		t.Fatalf("follow-up decision took %s — endpoint stickiness after failover is gone", elapsed)
	}

	// Healed primary: still answering (through whichever endpoint).
	slowPrimary.SetLatency(0)
	if dec, err := decider.Decide(q); err != nil || !dec.Permit() {
		t.Fatalf("decision after heal: dec=%+v err=%v", dec, err)
	}
}

// TestClusterChaseSlowWrongShard migrates an owner between two in-process
// shards after a ClusterClient has already learned the ring, then makes
// the losing shard slow. The client's stale route hits the slow losing
// shard, waits out its latency for the wrong_shard answer, chases the
// hint to the gaining shard — and must refresh its routing so subsequent
// calls skip the losing shard entirely (asserted by partitioning it).
func TestClusterChaseSlowWrongShard(t *testing.T) {
	dir := t.TempDir()
	aStore, err := store.Open(filepath.Join(dir, "a.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer aStore.Close()
	bStore, err := store.Open(filepath.Join(dir, "b.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer bStore.Close()

	aSrv := httptest.NewUnstartedServer(nil)
	bSrv := httptest.NewUnstartedServer(nil)
	aSrv.Start()
	bSrv.Start()
	defer aSrv.Close()
	defer bSrv.Close()

	aProxy, err := loadgen.NewFaultProxy(aSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer aProxy.Close()
	bProxy, err := loadgen.NewFaultProxy(bSrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer bProxy.Close()

	// The ring names the proxies: the chase traverses the shims.
	shards := []core.ShardInfo{
		{Name: "shard-a", Primary: aProxy.URL(), Endpoints: []string{aProxy.URL()}},
		{Name: "shard-b", Primary: bProxy.URL(), Endpoints: []string{bProxy.URL()}},
	}
	ring, err := cluster.New(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	aAM := am.New(am.Config{
		Name: "a", Store: aStore, TokenKey: faultTokenKey, BaseURL: aProxy.URL(),
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: faultSecret},
		Cluster:     am.ClusterConfig{Shard: "shard-a", Ring: ring},
	})
	defer aAM.Close()
	bAM := am.New(am.Config{
		Name: "b", Store: bStore, TokenKey: faultTokenKey, BaseURL: bProxy.URL(),
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: faultSecret},
		Cluster:     am.ClusterConfig{Shard: "shard-b", Ring: ring},
	})
	defer bAM.Close()
	aSrv.Config.Handler = aAM.Handler()
	bSrv.Config.Handler = bAM.Handler()

	// An owner whose hash home is shard-a.
	var owner core.UserID
	for i := 0; ; i++ {
		owner = core.UserID(string(rune('a'+i%26)) + "-owner")
		if ring.Owner(owner).Name == "shard-a" {
			break
		}
	}
	pairing, realm, token := protocolFixture(t, aAM, owner)

	// The decider learns the pre-migration ring — after the migration its
	// routing for owner is stale by construction.
	decider, err := amclient.NewCluster(amclient.Config{
		BaseURL:    aProxy.URL(),
		HTTPClient: &http.Client{Timeout: 5 * time.Second},
		PairingID:  pairing.PairingID,
		Secret:     pairing.Secret,
	})
	if err != nil {
		t.Fatal(err)
	}
	decide := func() (core.DecisionResponse, error) {
		return decider.Decide(owner, core.DecisionQuery{
			Host: faultHost, Realm: realm, Resource: "photo",
			Action: core.ActionRead, Token: token,
		})
	}
	if dec, err := decide(); err != nil || !dec.Permit() {
		t.Fatalf("pre-migration decision: dec=%+v err=%v", dec, err)
	}

	srcAdmin := amclient.New(amclient.Config{BaseURL: aSrv.URL, ReplSecret: faultSecret})
	dstAdmin := amclient.New(amclient.Config{BaseURL: bSrv.URL, ReplSecret: faultSecret})
	if _, err := amclient.MigrateOwner(srcAdmin, dstAdmin, owner, "shard-b", nil); err != nil {
		t.Fatalf("migration: %v", err)
	}

	// The losing shard turns slow. The stale route must wait out its
	// latency for the wrong_shard answer, then chase to shard-b.
	const lag = 150 * time.Millisecond
	aProxy.SetLatency(lag)
	t0 := time.Now()
	dec, err := decide()
	elapsed := time.Since(t0)
	if err != nil || !dec.Permit() {
		t.Fatalf("chased decision: dec=%+v err=%v", dec, err)
	}
	if elapsed < lag {
		t.Fatalf("chased decision took %s < %s — it never traversed the slow losing shard, so the route was not stale", elapsed, lag)
	}

	// The chase refreshed the ring (overrides included): with the losing
	// shard now fully partitioned, decisions must still flow.
	aProxy.SetPartitioned(true)
	if dec, err := decide(); err != nil || !dec.Permit() {
		t.Fatalf("post-chase decision with losing shard partitioned: dec=%+v err=%v", dec, err)
	}
}
