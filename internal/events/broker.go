// Package events is the in-process broker of the streaming event control
// plane: one publish surface over which the AM pushes typed control
// signals — decision-cache invalidation, consent resolution, replication
// state — to any number of subscribers (SSE handlers, in-process
// consumers, tests).
//
// The design promise is that a subscriber can NEVER hurt a publisher:
// Publish does a bounded amount of work per subscriber (append to a
// fixed-capacity ring under a short mutex) and returns. A subscriber that
// stops draining overflows its own ring — oldest events are discarded and
// the subscriber is handed a gap marker on its next read, telling it to
// re-establish state out of band (the decision-cache TTL and the consent
// poll endpoint remain the correctness backstops). A bounded replay
// window supports Last-Event-ID resume across reconnects; a cursor older
// than the window yields the same gap marker.
package events

import (
	"context"
	"errors"
	"slices"
	"sync"
	"time"

	"umac/internal/core"
)

// Defaults used when Options fields are zero.
const (
	// DefaultSubscriberBuffer is the per-subscriber ring capacity.
	DefaultSubscriberBuffer = 256
	// DefaultReplayWindow is how many published events the broker retains
	// for Last-Event-ID resume.
	DefaultReplayWindow = 1024
)

// ErrClosed is returned by Subscriber.Next once the subscription (or the
// whole broker) has been closed.
var ErrClosed = errors.New("events: subscription closed")

// Options sizes a Broker. The zero value uses the defaults.
type Options struct {
	// SubscriberBuffer caps each subscriber's ring; on overflow the
	// oldest buffered event is dropped and the subscriber gets a gap
	// marker on its next read.
	SubscriberBuffer int
	// ReplayWindow caps the broker-wide resume buffer.
	ReplayWindow int
}

// Filter selects which events a subscriber receives. Zero-valued fields
// match everything.
type Filter struct {
	// Types restricts to the listed event types (empty = all).
	Types []core.EventType
	// Owner restricts owner-scoped events to one owner. Node-wide events
	// (empty Owner) are delivered regardless, so a PEP filtered to its
	// pairing's owner still sees replication signals.
	Owner core.UserID
	// Ticket restricts consent events to one ticket (the requester-facing
	// consent stream).
	Ticket string
}

// Matches reports whether the filter selects e.
func (f Filter) Matches(e core.Event) bool {
	if len(f.Types) > 0 && !slices.Contains(f.Types, e.Type) {
		return false
	}
	if f.Owner != "" && e.Owner != "" && e.Owner != f.Owner {
		return false
	}
	if f.Ticket != "" && e.Ticket != f.Ticket {
		return false
	}
	return true
}

// Broker fans published events out to subscribers. Create with New; safe
// for concurrent use.
type Broker struct {
	subBuf int

	mu        sync.Mutex
	seq       int64
	replay    []core.Event // ascending seq, len ≤ replayCap
	replayCap int
	subs      map[*Subscriber]struct{}
	closed    bool
	published int64
	dropped   int64
}

// New constructs a Broker.
func New(opts Options) *Broker {
	if opts.SubscriberBuffer <= 0 {
		opts.SubscriberBuffer = DefaultSubscriberBuffer
	}
	if opts.ReplayWindow <= 0 {
		opts.ReplayWindow = DefaultReplayWindow
	}
	return &Broker{
		subBuf:    opts.SubscriberBuffer,
		replayCap: opts.ReplayWindow,
		subs:      make(map[*Subscriber]struct{}),
	}
}

// Publish assigns the next sequence number to e and enqueues it to every
// matching subscriber. It never blocks on a subscriber: a full ring drops
// its oldest event and flags a gap. Returns the assigned sequence number
// (0 after Close).
func (b *Broker) Publish(e core.Event) int64 {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return 0
	}
	b.seq++
	e.Seq = b.seq
	b.published++
	b.replay = append(b.replay, e)
	if len(b.replay) > b.replayCap {
		// Shift rather than reslice so the backing array cannot grow
		// without bound.
		copy(b.replay, b.replay[1:])
		b.replay = b.replay[:b.replayCap]
	}
	var dropped int64
	for s := range b.subs {
		if !s.filter.Matches(e) {
			continue
		}
		dropped += s.enqueue(e)
	}
	b.dropped += dropped
	b.mu.Unlock()
	return e.Seq
}

// LastSeq returns the newest assigned sequence number.
func (b *Broker) LastSeq() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.seq
}

// Subscribe registers a subscriber for events matching f. after is the
// resume cursor: events with Seq > after still in the replay window are
// pre-buffered, atomically with registration, so nothing published
// between replay and the first Next is missed. Pass after = -1 (or the
// current LastSeq) for a live-only subscription.
//
// The returned bool reports a resume gap: after ≥ 0 but outside what
// this broker can account for — older than the replay window, or AHEAD
// of the current head (a cursor minted by a previous process lifetime:
// seq restarts at 0, so anything published since the restart is already
// lost to that subscriber). The caller must surface that to its consumer
// exactly like a mid-stream gap. Close the subscriber when done.
func (b *Broker) Subscribe(f Filter, after int64) (*Subscriber, bool) {
	s := &Subscriber{
		b:      b,
		filter: f,
		cap:    b.subBuf,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	gap := false
	if after > b.seq {
		// The cursor is ahead of everything this broker ever published: it
		// belongs to a previous lifetime, and events since the restart are
		// unaccountably lost. Signal the gap so the consumer re-syncs and
		// adopts a cursor from THIS lifetime.
		gap = true
	} else if after >= 0 && after < b.seq {
		oldest := b.seq - int64(len(b.replay)) + 1
		if after+1 < oldest {
			// The cursor predates the replay window: replaying what is
			// retained would hide the hole, so skip straight to live.
			gap = true
		} else {
			for _, e := range b.replay {
				if e.Seq > after && f.Matches(e) {
					s.buf = append(s.buf, e)
				}
			}
		}
	}
	s.delivered = b.seq
	if len(s.buf) > 0 {
		s.delivered = s.buf[0].Seq - 1
		s.signal()
	}
	if b.closed {
		close(s.done)
		s.closed = true
		return s, gap
	}
	b.subs[s] = struct{}{}
	return s, gap
}

// Close shuts the broker down: every subscriber's Next returns ErrClosed
// once its buffer drains, and subsequent Publish calls are dropped.
func (b *Broker) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	for s := range b.subs {
		s.mu.Lock()
		if !s.closed {
			s.closed = true
			close(s.done)
		}
		s.mu.Unlock()
		delete(b.subs, s)
	}
}

// Health snapshots the event-plane gauges for GET /v1/metrics.
func (b *Broker) Health() core.EventsHealth {
	b.mu.Lock()
	defer b.mu.Unlock()
	h := core.EventsHealth{
		Subscribers: make(map[core.EventType]int),
		Published:   b.published,
		Dropped:     b.dropped,
		LastSeq:     b.seq,
	}
	all := []core.EventType{core.EventInvalidation, core.EventConsent, core.EventReplication}
	for s := range b.subs {
		types := s.filter.Types
		if len(types) == 0 {
			types = all
		}
		for _, t := range types {
			h.Subscribers[t]++
		}
		s.mu.Lock()
		lag := b.seq - s.delivered
		s.mu.Unlock()
		if lag > h.MaxLag {
			h.MaxLag = lag
		}
	}
	return h
}

// Subscriber is one registered consumer: a bounded ring of undelivered
// events plus a gap flag. Obtain with Broker.Subscribe.
type Subscriber struct {
	b      *Broker
	filter Filter
	cap    int
	notify chan struct{}
	done   chan struct{}

	mu        sync.Mutex
	buf       []core.Event
	gapped    bool
	closed    bool
	delivered int64 // seq of the last event handed to Next
}

// enqueue appends e, dropping the oldest buffered event on overflow.
// Called with b.mu held; returns how many events were dropped (0 or 1).
func (s *Subscriber) enqueue(e core.Event) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0
	}
	var dropped int64
	if len(s.buf) >= s.cap {
		copy(s.buf, s.buf[1:])
		s.buf = s.buf[:len(s.buf)-1]
		s.gapped = true
		dropped = 1
	}
	s.buf = append(s.buf, e)
	s.signal()
	return dropped
}

// signal nudges a parked Next without ever blocking the caller.
func (s *Subscriber) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next blocks until an event is available, the context ends, or the
// subscription closes. The bool reports a gap IMMEDIATELY BEFORE the
// returned event: one or more earlier events were dropped (slow consumer)
// and the caller must trigger its re-sync path before applying this one.
func (s *Subscriber) Next(ctx context.Context) (core.Event, bool, error) {
	for {
		s.mu.Lock()
		if len(s.buf) > 0 {
			e := s.buf[0]
			// Slide rather than reslice so enqueue's capacity check stays
			// meaningful against the original backing array.
			copy(s.buf, s.buf[1:])
			s.buf = s.buf[:len(s.buf)-1]
			gap := s.gapped
			s.gapped = false
			s.delivered = e.Seq
			s.mu.Unlock()
			return e, gap, nil
		}
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return core.Event{}, false, ErrClosed
		}
		select {
		case <-s.notify:
		case <-s.done:
		case <-ctx.Done():
			return core.Event{}, false, ctx.Err()
		}
	}
}

// Delivered returns the sequence number of the last event Next handed
// out (the subscriber's live cursor).
func (s *Subscriber) Delivered() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.delivered
}

// Close unregisters the subscriber; a parked Next returns ErrClosed
// after the remaining buffer drains.
func (s *Subscriber) Close() {
	s.b.mu.Lock()
	delete(s.b.subs, s)
	s.b.mu.Unlock()
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.done)
	}
	s.mu.Unlock()
}
