package sim

import (
	"fmt"
	"net/http"
	"time"

	"umac/internal/am"
	"umac/internal/core"
	"umac/internal/pep"
	"umac/internal/policy"
	"umac/internal/requester"
)

// This file is the policy-churn + hot-resource workload behind the scoped
// cache-invalidation experiments (E14): a Requester hammers a hot set of
// cached resources while the owner keeps editing an unrelated realm's
// policy. Every edit triggers an AM→Host invalidation push; with scoped
// invalidation only the edited realm's entries fall out of the Host cache,
// with drop-all every hot entry is evicted and the next access round
// stampedes the AM with decision re-queries.

// ChurnConfig sizes the workload.
type ChurnConfig struct {
	// HotResources is the size of the hot set (all in one realm).
	HotResources int
	// Rounds is how many times the hot set is fully accessed.
	Rounds int
	// ChurnEvery inserts a policy change on the unrelated realm every N
	// rounds (0 = never).
	ChurnEvery int
	// Scoped selects scoped invalidation at the Host cache; false restores
	// the historical drop-all behaviour (the baseline).
	Scoped bool
	// Batch resolves each round's misses through the batched decision
	// endpoint instead of per-pair queries.
	Batch bool
}

// ChurnResult reports what the workload cost.
type ChurnResult struct {
	Accesses      int   // total (resource, action) checks performed
	PolicyChanges int   // unrelated-realm policy edits applied
	AMRoundTrips  int64 // HTTP requests that reached the AM after warmup
	CacheHits     int64 // Host decision-cache hits after warmup
	CacheMisses   int64 // Host decision-cache misses after warmup
	Denied        int   // sanity: must stay 0 (the hot policy never changes)
}

// RunChurnWorkload builds a world with a hot realm and a churning cold
// realm, warms the Host cache, then runs the access/churn mix and reports
// the AM round-trips it cost. Warmup traffic (pairing, protection, token
// issuance, first-touch decisions) is excluded from the counters.
func RunChurnWorkload(cfg ChurnConfig) (ChurnResult, error) {
	var result ChurnResult
	if cfg.HotResources <= 0 || cfg.Rounds <= 0 {
		return result, fmt.Errorf("sim: churn workload needs resources and rounds")
	}
	// Hour-long TTLs so every eviction observed is an invalidation effect,
	// not expiry.
	w := NewWorldConfig(am.Config{DefaultCacheTTL: time.Hour})
	defer w.Close()
	w.AM.EnableInvalidationPush(nil)
	h := w.AddHost("webpics")
	h.Enforcer.Cache().SetScopedInvalidation(cfg.Scoped)

	hot := make([]core.ResourceID, cfg.HotResources)
	pairs := make([]pep.ResourceAction, cfg.HotResources)
	for i := range hot {
		hot[i] = core.ResourceID(fmt.Sprintf("hot-%04d", i))
		pairs[i] = pep.ResourceAction{Resource: hot[i], Action: core.ActionRead}
		h.AddResource("bob", "hot", hot[i], []byte("x"))
	}
	h.AddResource("bob", "cold", "cold-0", []byte("x"))

	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		return result, err
	}
	if err := h.Enforcer.Protect("bob", "hot", hot, ""); err != nil {
		return result, err
	}
	if err := h.Enforcer.Protect("bob", "cold", []core.ResourceID{"cold-0"}, ""); err != nil {
		return result, err
	}
	// Policy setup goes through the typed v1 management API — the same
	// surface a real owner's tooling uses. (This is warmup traffic: the
	// round-trip counters reset below, after the cache warm.)
	mgmt := w.Client("bob")
	hotPol, err := mgmt.CreatePolicy(policy.Policy{
		Owner: "bob", Name: "hot-readers", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		return result, err
	}
	if err := mgmt.LinkGeneral("bob", "hot", hotPol.ID); err != nil {
		return result, err
	}
	coldPol, err := mgmt.CreatePolicy(policy.Policy{
		Owner: "bob", Name: "cold-policy", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectDeny,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
		}},
	})
	if err != nil {
		return result, err
	}
	if err := mgmt.LinkGeneral("bob", "cold", coldPol.ID); err != nil {
		return result, err
	}

	// One token opens the whole hot realm.
	client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	tok, err := client.ObtainToken(w.AMServer.URL, h.ID, "hot", hot[0], core.ActionRead)
	if err != nil {
		return result, err
	}
	req, err := http.NewRequest(http.MethodGet, "http://workload/", nil)
	if err != nil {
		return result, err
	}
	req.Header.Set("Authorization", pep.TokenScheme+" "+tok)

	accessRound := func() error {
		if cfg.Batch {
			results, err := h.Enforcer.CheckBatch(req, "bob", "hot", pairs)
			if err != nil {
				return err
			}
			for _, r := range results {
				result.Accesses++
				if r.Verdict != pep.VerdictAllow {
					result.Denied++
				}
			}
			return nil
		}
		for _, pr := range pairs {
			r, err := h.Enforcer.Check(req, "bob", "hot", pr.Resource, pr.Action)
			if err != nil {
				return err
			}
			result.Accesses++
			if r.Verdict != pep.VerdictAllow {
				result.Denied++
			}
		}
		return nil
	}

	// Quiesce the setup's own invalidation pushes (the policy links above
	// each push) before warming: a push racing the warmup fill would drop
	// the filled entries via the generation guard.
	w.AM.FlushInvalidations()
	// Warm the cache, then exclude warmup traffic from the counters.
	if err := accessRound(); err != nil {
		return result, err
	}
	result = ChurnResult{}
	w.ResetAMRequests()
	hits0, misses0 := h.Enforcer.Cache().Stats()

	churn := 0
	for round := 0; round < cfg.Rounds; round++ {
		if cfg.ChurnEvery > 0 && round%cfg.ChurnEvery == 0 {
			churn++
			coldPol.Name = fmt.Sprintf("cold-policy-%d", churn)
			if err := w.AM.UpdatePolicy("bob", coldPol); err != nil {
				return result, err
			}
			w.AM.FlushInvalidations()
			result.PolicyChanges++
		}
		if err := accessRound(); err != nil {
			return result, err
		}
	}
	result.AMRoundTrips = w.AMRequests()
	hits1, misses1 := h.Enforcer.Cache().Stats()
	result.CacheHits = hits1 - hits0
	result.CacheMisses = misses1 - misses0
	return result, nil
}

// TokenRequestFor builds an http.Request presenting tok as the UMAC
// authorization token — the shape Check/CheckBatch expect from a
// Requester's access.
func TokenRequestFor(tok string) *http.Request {
	req, _ := http.NewRequest(http.MethodGet, "http://sim/", nil)
	req.Header.Set("Authorization", pep.TokenScheme+" "+tok)
	return req
}
