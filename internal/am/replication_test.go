package am

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/store"
)

// readJSONBody decodes an HTTP response body.
func readJSONBody(resp *http.Response, v any) error {
	return json.NewDecoder(resp.Body).Decode(v)
}

func itoa(n int64) string { return strconv.FormatInt(n, 10) }

// Replication end-to-end suite: a primary AM behind an httptest server, a
// follower syncing over real HTTP, decisions served from replicated state,
// write gating, restart resume, and promotion.

const replTestSecret = "repl-test-secret"

var replTestKey = []byte("stable-master-key-0123456789abcd")

// replWorld is a primary+follower pair wired over HTTP.
type replWorld struct {
	primary    *AM
	primarySrv *httptest.Server
	follower   *AM
	followSrv  *httptest.Server
}

func (w *replWorld) close() {
	if w.followSrv != nil {
		w.followSrv.Close()
	}
	if w.follower != nil {
		w.follower.Close()
	}
	w.primarySrv.Close()
	w.primary.Close()
}

// newReplWorld starts a primary (with the standard pairing/realm/policy
// fixture) and a follower syncing from it. followerStore nil means a fresh
// in-memory store.
func newReplWorld(t *testing.T, followerStore *store.Store) (*replWorld, core.PairingResponse, core.TokenResponse) {
	t.Helper()
	w := &replWorld{}
	w.primary = New(Config{
		Name: "am-primary", TokenKey: replTestKey,
		Replication: ReplicationConfig{Role: RolePrimary, Secret: replTestSecret},
	})
	w.primarySrv = httptest.NewServer(w.primary.Handler())
	w.primary.SetBaseURL(w.primarySrv.URL)
	t.Cleanup(w.close)

	code, err := w.primary.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	pairing, err := w.primary.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.primary.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	p, err := w.primary.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.primary.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	tok, err := w.primary.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}

	w.follower = New(Config{
		Name: "am-follower", TokenKey: replTestKey, Store: followerStore,
		Replication: ReplicationConfig{
			Role: RoleFollower, Secret: replTestSecret,
			PrimaryURL: w.primarySrv.URL, PollWait: 100 * time.Millisecond,
		},
	})
	w.followSrv = httptest.NewServer(w.follower.Handler())
	w.follower.SetBaseURL(w.followSrv.URL)
	if !w.follower.WaitReplicated(w.primary.Store().LastSeq(), 5*time.Second) {
		t.Fatalf("follower did not catch up: at %d, primary at %d",
			w.follower.Store().LastSeq(), w.primary.Store().LastSeq())
	}
	return w, pairing, tok
}

func TestFollowerServesDecisionsFromReplicatedState(t *testing.T) {
	w, pairing, tok := newReplWorld(t, nil)

	// The follower validates the primary-minted token, resolves the
	// replicated pairing secret for signature verification, and evaluates
	// the replicated policy — a full Fig. 6 decision with the primary
	// uninvolved.
	dec, err := w.follower.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Permit() {
		t.Fatalf("follower denied a replicated permit: %+v", dec)
	}

	// Lag telemetry: caught up, connected, follower role.
	h := w.follower.ReplicationHealth()
	if h == nil || h.Role != core.ReplRoleFollower || !h.Connected {
		t.Fatalf("replication health = %+v", h)
	}
	if h.LagRecords != 0 {
		t.Fatalf("lag = %d after catch-up", h.LagRecords)
	}
	if ph := w.primary.ReplicationHealth(); ph == nil || ph.Role != core.ReplRolePrimary {
		t.Fatalf("primary health = %+v", ph)
	}

	// A policy edit on the primary becomes visible on the follower.
	policies := w.primary.ListPolicies("bob")
	pol := policies[0]
	pol.Rules = []policy.Rule{{
		Effect:   policy.EffectDeny,
		Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
	}}
	if err := w.primary.UpdatePolicy("bob", pol); err != nil {
		t.Fatal(err)
	}
	if !w.follower.WaitReplicated(w.primary.Store().LastSeq(), 5*time.Second) {
		t.Fatal("policy edit not replicated")
	}
	dec, err = w.follower.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Permit() {
		t.Fatal("follower still permits after replicated deny edit")
	}
}

func TestFollowerRejectsWritesWithLeaderHint(t *testing.T) {
	w, _, _ := newReplWorld(t, nil)

	req, err := http.NewRequest(http.MethodPost, w.followSrv.URL+"/v1/policies", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Umac-User", "bob")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 421 {
		t.Fatalf("status = %d, want 421", resp.StatusCode)
	}
	var e core.APIError
	if err := readJSONBody(resp, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != core.CodeNotPrimary || !e.Retryable {
		t.Fatalf("envelope = %+v, want retryable not_primary", e)
	}
	if e.Leader != w.primarySrv.URL {
		t.Fatalf("leader hint = %q, want %q", e.Leader, w.primarySrv.URL)
	}

	// Reads keep working: the replicated policy list is served locally.
	greq, _ := http.NewRequest(http.MethodGet, w.followSrv.URL+"/v1/policies", nil)
	greq.Header.Set("X-Umac-User", "bob")
	gresp, err := http.DefaultClient.Do(greq)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != 200 {
		t.Fatalf("GET /v1/policies on follower = %d, want 200", gresp.StatusCode)
	}
}

func TestReplicationSurfaceRequiresSecret(t *testing.T) {
	w, _, _ := newReplWorld(t, nil)
	for _, auth := range []string{"", "Bearer wrong"} {
		req, _ := http.NewRequest(http.MethodGet, w.primarySrv.URL+"/v1/replication/wal?from=0", nil)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 403 {
			t.Fatalf("auth %q: status = %d, want 403", auth, resp.StatusCode)
		}
	}
}

// TestFollowerRestartResumesMidStream is the AM-level crash-during-
// replication case: a durable follower is stopped mid-stream, the primary
// keeps writing, and a second follower instance opened from the same path
// resumes from its applied WAL offset and converges without duplicate or
// lost records.
func TestFollowerRestartResumesMidStream(t *testing.T) {
	dir := t.TempDir()
	fpath := filepath.Join(dir, "follower.json")
	fst, err := store.Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	w, pairing, tok := newReplWorld(t, fst)

	// Stop the follower ("crash": the store is NOT snapshot; only its WAL
	// holds the applied stream) while the primary keeps writing.
	w.followSrv.Close()
	w.follower.Close()
	w.followSrv, w.follower = nil, nil
	appliedAtStop := fst.LastSeq()
	fst.Close()

	for i := 0; i < 10; i++ {
		if _, err := w.primary.CreatePolicy("bob", policy.Policy{
			Owner: "bob", Kind: policy.KindGeneral,
			Rules: []policy.Rule{{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "carol"}},
				Actions:  []core.Action{core.ActionRead},
			}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	fst2, err := store.Open(fpath)
	if err != nil {
		t.Fatal(err)
	}
	defer fst2.Close()
	if fst2.LastSeq() != appliedAtStop {
		t.Fatalf("restarted follower store at seq %d, want %d", fst2.LastSeq(), appliedAtStop)
	}
	f2 := New(Config{
		Name: "am-follower", TokenKey: replTestKey, Store: fst2,
		Replication: ReplicationConfig{
			Role: RoleFollower, Secret: replTestSecret,
			PrimaryURL: w.primarySrv.URL, PollWait: 100 * time.Millisecond,
		},
	})
	defer f2.Close()
	if !f2.WaitReplicated(w.primary.Store().LastSeq(), 5*time.Second) {
		t.Fatalf("restarted follower did not converge: %d vs %d",
			fst2.LastSeq(), w.primary.Store().LastSeq())
	}
	// Exactly-once: the policy count matches the primary (a duplicated
	// range would surface as version/count drift).
	if got, want := len(f2.ListPolicies("bob")), len(w.primary.ListPolicies("bob")); got != want {
		t.Fatalf("follower sees %d policies, primary %d", got, want)
	}
	dec, err := f2.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Permit() {
		t.Fatalf("decision after restart resume: %+v", dec)
	}
}

// TestFollowerFarBehindRebootstraps forces the truncated-window path: the
// primary's retained tail is tiny, the follower stops, the primary writes
// past the window, and the restarted follower must fall back to a snapshot
// bootstrap and still converge.
func TestFollowerFarBehindRebootstraps(t *testing.T) {
	primary := New(Config{
		Name: "am-primary", TokenKey: replTestKey,
		Replication: ReplicationConfig{Role: RolePrimary, Secret: replTestSecret, Window: 4},
	})
	srv := httptest.NewServer(primary.Handler())
	primary.SetBaseURL(srv.URL)
	defer func() { srv.Close(); primary.Close() }()

	for i := 0; i < 30; i++ {
		if _, err := primary.CreatePolicy("bob", policy.Policy{
			Owner: "bob", Kind: policy.KindGeneral,
			Rules: []policy.Rule{{Effect: policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
		}); err != nil {
			t.Fatal(err)
		}
	}

	follower := New(Config{
		Name: "am-follower", TokenKey: replTestKey,
		Replication: ReplicationConfig{
			Role: RoleFollower, Secret: replTestSecret,
			PrimaryURL: srv.URL, PollWait: 100 * time.Millisecond,
		},
	})
	defer follower.Close()
	if !follower.WaitReplicated(primary.Store().LastSeq(), 5*time.Second) {
		t.Fatal("follower did not bootstrap past a truncated window")
	}
	if got, want := len(follower.ListPolicies("bob")), 30; got != want {
		t.Fatalf("bootstrapped follower sees %d policies, want %d", got, want)
	}
}

func TestPromoteOpensWriteGate(t *testing.T) {
	w, _, _ := newReplWorld(t, nil)

	if _, err := w.follower.CreatePolicy("bob", policy.Policy{Owner: "bob", Kind: policy.KindGeneral}); err == nil {
		// CreatePolicy bypasses HTTP gating; assert the HTTP gate instead.
		t.Log("direct API writes are not gated; HTTP surface is")
	}
	req, _ := http.NewRequest(http.MethodPost, w.followSrv.URL+"/v1/policies", nil)
	req.Header.Set("X-Umac-User", "bob")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 421 {
		t.Fatalf("pre-promotion write = %d, want 421", resp.StatusCode)
	}

	w.follower.Promote()
	if w.follower.IsFollower() {
		t.Fatal("still a follower after Promote")
	}
	if h := w.follower.ReplicationHealth(); h == nil || h.Role != core.ReplRolePrimary {
		t.Fatalf("post-promotion health = %+v", h)
	}
	// The gate is open; the same request now reaches the handler (which
	// rejects the empty body with bad_request, not not_primary).
	req2, _ := http.NewRequest(http.MethodPost, w.followSrv.URL+"/v1/policies", nil)
	req2.Header.Set("X-Umac-User", "bob")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var e core.APIError
	if err := readJSONBody(resp2, &e); err != nil {
		t.Fatal(err)
	}
	if e.Code == core.CodeNotPrimary {
		t.Fatal("write still gated after Promote")
	}
	// And a real write through the promoted node succeeds.
	if _, err := w.follower.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	}); err != nil {
		t.Fatal(err)
	}
}

func TestWALLongPollDeliversWithinWait(t *testing.T) {
	w, _, _ := newReplWorld(t, nil)
	seqBefore := w.primary.Store().LastSeq()

	// Park a long poll, then write: the record must arrive well before the
	// wait elapses.
	type result struct {
		page core.ReplWALPage
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		req, _ := http.NewRequest(http.MethodGet,
			w.primarySrv.URL+"/v1/replication/wal?from="+itoa(seqBefore)+"&wait_ms=5000", nil)
		req.Header.Set("Authorization", "Bearer "+replTestSecret)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			ch <- result{err: err}
			return
		}
		defer resp.Body.Close()
		var page core.ReplWALPage
		err = readJSONBody(resp, &page)
		ch <- result{page: page, err: err}
	}()
	time.Sleep(50 * time.Millisecond)
	start := time.Now()
	if _, err := w.primary.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case res := <-ch:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if len(res.page.Records) == 0 {
			t.Fatal("long poll answered without records")
		}
		if elapsed := time.Since(start); elapsed > 2*time.Second {
			t.Fatalf("long poll took %v after the write; push is broken", elapsed)
		}
	case <-time.After(6 * time.Second):
		t.Fatal("long poll never answered")
	}
}

// TestFollowerCloseInterruptsLongPoll ensures Close (and thus Promote)
// does not wait out a parked long-poll: the sync loop's requests carry a
// context cancelled by stopReplication.
func TestFollowerCloseInterruptsLongPoll(t *testing.T) {
	primary := New(Config{
		Name: "am-primary", TokenKey: replTestKey,
		Replication: ReplicationConfig{Role: RolePrimary, Secret: replTestSecret},
	})
	srv := httptest.NewServer(primary.Handler())
	primary.SetBaseURL(srv.URL)
	defer func() { srv.Close(); primary.Close() }()

	follower := New(Config{
		Name: "am-follower", TokenKey: replTestKey,
		Replication: ReplicationConfig{
			Role: RoleFollower, Secret: replTestSecret,
			PrimaryURL: srv.URL, PollWait: 25 * time.Second,
		},
	})
	// Let the loop reach the long poll (nothing to replicate, so it parks).
	time.Sleep(200 * time.Millisecond)
	start := time.Now()
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Close blocked %v behind a parked long poll", elapsed)
	}
}

// TestReplicationGapDetected pins down the gap error surface at the store
// boundary the follower loop relies on.
func TestReplicationGapDetected(t *testing.T) {
	s := store.New()
	err := s.ApplyReplicated(core.ReplRecord{Seq: 7, Op: core.ReplOpPut, Kind: "k", Key: "x", Data: []byte("1")})
	if !errors.Is(err, store.ErrReplicationGap) {
		t.Fatalf("err = %v, want ErrReplicationGap", err)
	}
}

// TestFollowerAcrossSegmentedWAL runs the follower suite against a primary
// whose WAL is segmented with a tiny roll threshold: the follower must tail
// transparently across segment boundaries, and after the primary compacts
// (deleting every sealed segment) a fresh follower whose resume point
// predates the surviving log must re-bootstrap from the snapshot with zero
// loss.
func TestFollowerAcrossSegmentedWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(filepath.Join(dir, "primary.json"), store.WithWALSegmentSize(1<<10))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	primary := New(Config{
		Name: "am-primary", TokenKey: replTestKey, Store: st,
		Replication: ReplicationConfig{Role: RolePrimary, Secret: replTestSecret, Window: 16},
	})
	srv := httptest.NewServer(primary.Handler())
	primary.SetBaseURL(srv.URL)
	defer func() { srv.Close(); primary.Close() }()

	code, err := primary.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	pairing, err := primary.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	p, err := primary.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}

	// Live follower tailing while the primary's WAL rolls segments.
	f1 := New(Config{
		Name: "am-f1", TokenKey: replTestKey,
		Replication: ReplicationConfig{
			Role: RoleFollower, Secret: replTestSecret,
			PrimaryURL: srv.URL, PollWait: 50 * time.Millisecond,
		},
	})
	for st.WALSegments() < 3 {
		if err := primary.AddGroupMember("bob", "bob", "friends", core.UserID("u"+itoa(st.LastSeq()))); err != nil {
			t.Fatal(err)
		}
	}
	if !f1.WaitReplicated(st.LastSeq(), 5*time.Second) {
		f1.Close()
		t.Fatalf("live follower lost the stream across segment rolls: at %d, primary at %d",
			f1.Store().LastSeq(), st.LastSeq())
	}
	f1.Close()

	// While no follower is attached: enough churn to overflow the 16-record
	// window, then a compaction that deletes every sealed segment.
	for i := 0; i < 30; i++ {
		if err := primary.AddGroupMember("bob", "bob", "friends", core.UserID("late-"+itoa(int64(i)))); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Snapshot(st.Path()); err != nil {
		t.Fatal(err)
	}
	if n := st.WALSegments(); n != 1 {
		t.Fatalf("segments after compaction = %d, want 1", n)
	}

	// A fresh follower's resume point (0) predates both the replication
	// window and the deleted segments: it must bootstrap from the snapshot
	// and then serve correct decisions.
	f2 := New(Config{
		Name: "am-f2", TokenKey: replTestKey,
		Replication: ReplicationConfig{
			Role: RoleFollower, Secret: replTestSecret,
			PrimaryURL: srv.URL, PollWait: 50 * time.Millisecond,
		},
	})
	defer f2.Close()
	if !f2.WaitReplicated(st.LastSeq(), 5*time.Second) {
		t.Fatal("fresh follower did not bootstrap past deleted segments")
	}
	if !f2.Store().Exists("group", "bob/friends") {
		t.Fatal("group record lost across re-bootstrap")
	}
	tok, err := primary.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := f2.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil || !dec.Permit() {
		t.Fatalf("follower decision after re-bootstrap = %+v err=%v", dec, err)
	}
}
