// Package identity is the authentication substrate. The paper deliberately
// keeps authentication out of the access-control protocol: "we assume that
// this process can be completed with existing technologies. For example a
// User could authenticate to a Host using OpenID or Google Account
// credentials" (Section V.B). This package supplies that existing
// technology in miniature: a redirect-based identity provider issuing
// signed assertions, plus cookie-session middleware that Hosts and the AM
// use to know who is driving the browser.
package identity

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"umac/internal/core"
)

// Authenticator extracts the authenticated user from a request. Components
// accept any Authenticator so deployments can swap in real OpenID.
type Authenticator interface {
	// Authenticate returns the user driving the request, or ok=false when
	// the request is anonymous.
	Authenticate(r *http.Request) (core.UserID, bool)
}

// HeaderAuth authenticates via a trusted header. It stands in for a
// reverse-proxy-injected identity in tests and CLI tools.
type HeaderAuth struct {
	// Header is the header name; empty means "X-Umac-User".
	Header string
}

// DefaultUserHeader is the header HeaderAuth reads when unconfigured.
const DefaultUserHeader = "X-Umac-User"

// Authenticate implements Authenticator.
func (h HeaderAuth) Authenticate(r *http.Request) (core.UserID, bool) {
	name := h.Header
	if name == "" {
		name = DefaultUserHeader
	}
	u := r.Header.Get(name)
	return core.UserID(u), u != ""
}

// Provider is a minimal identity provider. Users are registered with
// passwords; a login issues an HMAC-signed assertion that relying parties
// verify offline with the provider's public verification secret — a
// simplification of OpenID association that preserves the redirect shape.
type Provider struct {
	mu    sync.RWMutex
	users map[core.UserID]string
	key   []byte
	ttl   time.Duration
	now   func() time.Time
}

// NewProvider returns a provider with the given assertion lifetime
// (<=0 means 10 minutes).
func NewProvider(ttl time.Duration) *Provider {
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	return &Provider{
		users: make(map[core.UserID]string),
		key:   []byte(core.NewSecret(32)),
		ttl:   ttl,
		now:   time.Now,
	}
}

// Register adds or replaces a user credential.
func (p *Provider) Register(user core.UserID, password string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.users[user] = password
}

// assertion is the signed login proof.
type assertion struct {
	User      core.UserID `json:"user"`
	ExpiresAt time.Time   `json:"exp"`
}

// Login checks credentials and returns a signed assertion.
func (p *Provider) Login(user core.UserID, password string) (string, error) {
	p.mu.RLock()
	want, ok := p.users[user]
	p.mu.RUnlock()
	if !ok || want != password {
		return "", fmt.Errorf("identity: invalid credentials for %q", user)
	}
	payload, err := json.Marshal(assertion{User: user, ExpiresAt: p.now().Add(p.ttl)})
	if err != nil {
		return "", fmt.Errorf("identity: encode assertion: %w", err)
	}
	sig := p.sign(payload)
	return base64.RawURLEncoding.EncodeToString(payload) + "." +
		base64.RawURLEncoding.EncodeToString(sig), nil
}

// VerifyAssertion validates an assertion and returns the asserted user.
func (p *Provider) VerifyAssertion(a string) (core.UserID, error) {
	dot := strings.IndexByte(a, '.')
	if dot < 0 {
		return "", fmt.Errorf("identity: malformed assertion")
	}
	payload, err := base64.RawURLEncoding.DecodeString(a[:dot])
	if err != nil {
		return "", fmt.Errorf("identity: bad assertion payload")
	}
	sig, err := base64.RawURLEncoding.DecodeString(a[dot+1:])
	if err != nil || !hmac.Equal(sig, p.sign(payload)) {
		return "", fmt.Errorf("identity: assertion signature mismatch")
	}
	var as assertion
	if err := json.Unmarshal(payload, &as); err != nil {
		return "", fmt.Errorf("identity: bad assertion: %w", err)
	}
	if p.now().After(as.ExpiresAt) {
		return "", fmt.Errorf("identity: assertion expired")
	}
	return as.User, nil
}

func (p *Provider) sign(payload []byte) []byte {
	m := hmac.New(sha256.New, p.key)
	m.Write(payload)
	return m.Sum(nil)
}

// Handler serves the provider's HTTP endpoints:
//
//	GET/POST /login?user=&password=&return_to=  →  302 return_to?assertion=...
//
// matching the redirect choreography a Host initiates when it wants the
// browser's user authenticated.
func (p *Provider) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/login", func(w http.ResponseWriter, r *http.Request) {
		user := core.UserID(r.FormValue("user"))
		pass := r.FormValue("password")
		returnTo := r.FormValue(core.ParamReturnTo)
		a, err := p.Login(user, pass)
		if err != nil {
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		}
		if returnTo == "" {
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]string{"assertion": a})
			return
		}
		u, err := url.Parse(returnTo)
		if err != nil {
			http.Error(w, "bad return_to", http.StatusBadRequest)
			return
		}
		q := u.Query()
		q.Set("assertion", a)
		u.RawQuery = q.Encode()
		http.Redirect(w, r, u.String(), http.StatusFound)
	})
	return mux
}

// Sessions is cookie-session middleware backed by the provider's
// assertions: a relying party (Host or AM) exchanges a verified assertion
// for a session cookie.
type Sessions struct {
	// CookieName identifies the session cookie; empty means "umac_session".
	CookieName string
	provider   *Provider

	mu       sync.RWMutex
	sessions map[string]core.UserID
}

// NewSessions returns session middleware verifying assertions against p.
func NewSessions(p *Provider) *Sessions {
	return &Sessions{provider: p, sessions: make(map[string]core.UserID)}
}

func (s *Sessions) cookieName() string {
	if s.CookieName == "" {
		return "umac_session"
	}
	return s.CookieName
}

// Establish verifies the assertion and sets a session cookie on w.
func (s *Sessions) Establish(w http.ResponseWriter, assertionStr string) (core.UserID, error) {
	user, err := s.provider.VerifyAssertion(assertionStr)
	if err != nil {
		return "", err
	}
	id := core.NewID("sess")
	s.mu.Lock()
	s.sessions[id] = user
	s.mu.Unlock()
	http.SetCookie(w, &http.Cookie{Name: s.cookieName(), Value: id, Path: "/", HttpOnly: true})
	return user, nil
}

// Authenticate implements Authenticator via the session cookie.
func (s *Sessions) Authenticate(r *http.Request) (core.UserID, bool) {
	c, err := r.Cookie(s.cookieName())
	if err != nil {
		return "", false
	}
	s.mu.RLock()
	user, ok := s.sessions[c.Value]
	s.mu.RUnlock()
	return user, ok
}

// Revoke terminates the session carried by the request, if any.
func (s *Sessions) Revoke(r *http.Request) {
	c, err := r.Cookie(s.cookieName())
	if err != nil {
		return
	}
	s.mu.Lock()
	delete(s.sessions, c.Value)
	s.mu.Unlock()
}

// Interface compliance.
var (
	_ Authenticator = HeaderAuth{}
	_ Authenticator = (*Sessions)(nil)
)
