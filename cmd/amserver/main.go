// Command amserver runs a standalone Authorization Manager.
//
// Usage:
//
//	amserver -addr :8080 -name my-am [-snapshot am-state.json] [-base-url http://am.example]
//
// State (policies, pairings, realms, groups) is persisted to the snapshot
// file on shutdown and every -snapshot-every interval, and reloaded on
// start. Browser-facing endpoints authenticate via the X-Umac-User header
// (front it with a real SSO proxy in production).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"umac"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		name     = flag.String("name", "am", "AM display name")
		baseURL  = flag.String("base-url", "", "externally reachable URL (default http://<addr>)")
		snapshot = flag.String("snapshot", "", "state snapshot file (empty = in-memory only)")
		every    = flag.Duration("snapshot-every", time.Minute, "periodic snapshot interval")
		tokenTTL = flag.Duration("token-ttl", 30*time.Minute, "authorization token lifetime")
	)
	flag.Parse()

	st := umac.NewStore()
	if *snapshot != "" {
		loaded, err := umac.OpenStore(*snapshot)
		if err != nil {
			log.Fatalf("amserver: load snapshot: %v", err)
		}
		st = loaded
	}
	base := *baseURL
	if base == "" {
		base = "http://localhost" + *addr
	}
	authMgr := umac.NewAM(umac.AMConfig{
		Name:     *name,
		BaseURL:  base,
		Store:    st,
		TokenTTL: *tokenTTL,
		Notifier: &umac.Outbox{},
	})

	srv := &http.Server{Addr: *addr, Handler: authMgr.Handler()}
	go func() {
		log.Printf("amserver: %s listening on %s (base URL %s)", *name, *addr, base)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("amserver: %v", err)
		}
	}()

	save := func() {
		if *snapshot == "" {
			return
		}
		if err := st.Snapshot(*snapshot); err != nil {
			log.Printf("amserver: snapshot: %v", err)
		}
	}
	if *snapshot != "" {
		go func() {
			ticker := time.NewTicker(*every)
			defer ticker.Stop()
			for range ticker.C {
				save()
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println()
	log.Print("amserver: shutting down")
	save()
	srv.Close()
}
