package cluster

import (
	"fmt"
	"testing"

	"umac/internal/core"
)

func testShards(n int) []core.ShardInfo {
	out := make([]core.ShardInfo, n)
	for i := range out {
		out[i] = core.ShardInfo{
			Name:      fmt.Sprintf("shard-%d", i),
			Primary:   fmt.Sprintf("http://shard-%d:8080", i),
			Endpoints: []string{fmt.Sprintf("http://shard-%d:8080", i)},
		}
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a, err := New(testShards(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	// Same shards in a different order must produce the same mapping: only
	// shard names seed ring points.
	shuffled := testShards(3)
	shuffled[0], shuffled[2] = shuffled[2], shuffled[0]
	b, err := New(shuffled, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		owner := core.UserID(fmt.Sprintf("owner-%d", i))
		if got, want := b.Owner(owner).Name, a.Owner(owner).Name; got != want {
			t.Fatalf("owner %s: order-dependent mapping (%s vs %s)", owner, got, want)
		}
	}
}

func TestRingBalance(t *testing.T) {
	r, err := New(testShards(4), 0) // 0 → DefaultVnodes
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const owners = 20000
	for i := 0; i < owners; i++ {
		counts[r.Owner(core.UserID(fmt.Sprintf("owner-%d", i))).Name]++
	}
	for name, n := range counts {
		frac := float64(n) / owners
		// 4 shards → expect 25% each; 64 vnodes keeps skew well inside
		// a 2x band.
		if frac < 0.125 || frac > 0.50 {
			t.Errorf("shard %s holds %.1f%% of owners (counts %v)", name, frac*100, counts)
		}
	}
	if len(counts) != 4 {
		t.Fatalf("only %d of 4 shards received owners: %v", len(counts), counts)
	}
}

func TestRingMinimalRemapOnShardAdd(t *testing.T) {
	before, err := New(testShards(3), 64)
	if err != nil {
		t.Fatal(err)
	}
	after, err := New(testShards(4), 64)
	if err != nil {
		t.Fatal(err)
	}
	const owners = 10000
	moved := 0
	for i := 0; i < owners; i++ {
		owner := core.UserID(fmt.Sprintf("owner-%d", i))
		was, is := before.Owner(owner).Name, after.Owner(owner).Name
		if was != is {
			moved++
			// Movement is only ever toward the new shard.
			if is != "shard-3" {
				t.Fatalf("owner %s moved %s → %s, not to the new shard", owner, was, is)
			}
		}
	}
	// Expect ~1/4 of owners to move; anything past half means the hash is
	// not consistent.
	if frac := float64(moved) / owners; frac > 0.5 {
		t.Fatalf("adding one shard remapped %.1f%% of owners", frac*100)
	}
}

func TestRingValidation(t *testing.T) {
	if _, err := New(nil, 64); err == nil {
		t.Error("empty ring accepted")
	}
	if _, err := New([]core.ShardInfo{{Name: ""}}, 64); err == nil {
		t.Error("unnamed shard accepted")
	}
	dup := []core.ShardInfo{{Name: "a"}, {Name: "a"}}
	if _, err := New(dup, 64); err == nil {
		t.Error("duplicate shard name accepted")
	}
}

func TestRingShardLookup(t *testing.T) {
	r, err := New(testShards(2), 8)
	if err != nil {
		t.Fatal(err)
	}
	s, ok := r.Shard("shard-1")
	if !ok || s.Primary != "http://shard-1:8080" {
		t.Fatalf("Shard lookup: ok=%v s=%+v", ok, s)
	}
	if _, ok := r.Shard("nope"); ok {
		t.Error("unknown shard name resolved")
	}
	if got := len(r.Shards()); got != 2 {
		t.Fatalf("Shards() returned %d entries", got)
	}
	if r.Vnodes() != 8 {
		t.Fatalf("Vnodes() = %d, want 8", r.Vnodes())
	}
}

func TestParseSpec(t *testing.T) {
	shards, err := ParseSpec("a=http://a0:1|http://a1:2, b=http://b0:3/")
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("parsed %d shards, want 2", len(shards))
	}
	if shards[0].Name != "a" || shards[0].Primary != "http://a0:1" ||
		len(shards[0].Endpoints) != 2 || shards[0].Endpoints[1] != "http://a1:2" {
		t.Fatalf("shard a parsed wrong: %+v", shards[0])
	}
	if shards[1].Name != "b" || shards[1].Primary != "http://b0:3" {
		t.Fatalf("shard b parsed wrong (trailing slash kept?): %+v", shards[1])
	}
	if got := FormatSpec(shards); got != "a=http://a0:1|http://a1:2,b=http://b0:3" {
		t.Fatalf("FormatSpec round-trip: %q", got)
	}

	for _, bad := range []string{"", "noequals", "=http://x", "a="} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}
