package pep

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"umac/internal/core"
)

// TestRequireAMFailureYields502 covers the Host's behaviour when the AM is
// unreachable or erroring: fail closed with 502, never serve.
func TestRequireAMFailureYields502(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "internal", http.StatusInternalServerError)
	}))
	defer broken.Close()

	e := New(Config{Host: "webpics"})
	e.mu.Lock()
	e.pairings["bob"] = Pairing{AMURL: broken.URL, PairingID: "p", Secret: "s", User: "bob"}
	e.mu.Unlock()

	req, _ := http.NewRequest(http.MethodGet, "http://pics/res/x", nil)
	req.Header.Set("Authorization", "UMAC some-token")
	rec := httptest.NewRecorder()
	if e.Require(rec, req, "bob", "travel", "x", core.ActionRead) {
		t.Fatal("Require returned true with a broken AM")
	}
	if rec.Code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", rec.Code)
	}
}

// TestCheckTokenProblemReferral covers the expired/forged-token referral:
// a decision with token_problem=true maps to VerdictNeedToken, uncached.
func TestCheckTokenProblemReferral(t *testing.T) {
	am := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"decision":"deny","cache_ttl_seconds":60,"reason":"token invalid","token_problem":true}`))
	}))
	defer am.Close()

	e := New(Config{Host: "webpics"})
	e.mu.Lock()
	e.pairings["bob"] = Pairing{AMURL: am.URL, PairingID: "p", Secret: "s", User: "bob"}
	e.mu.Unlock()

	req, _ := http.NewRequest(http.MethodGet, "http://pics/res/x", nil)
	req.Header.Set("Authorization", "UMAC stale-token")
	result, err := e.Check(req, "bob", "travel", "x", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if result.Verdict != VerdictNeedToken {
		t.Fatalf("verdict = %v, want need-token", result.Verdict)
	}
	if e.Cache().Len() != 0 {
		t.Fatal("token-problem decision was cached")
	}
}

// TestHandleInvalidateRejectsUnsigned: only the paired AM may clear caches.
func TestHandleInvalidateRejectsUnsigned(t *testing.T) {
	e := New(Config{Host: "webpics"})
	e.Cache().Put("k", true, 600)
	req, _ := http.NewRequest(http.MethodPost, "http://pics/umac/invalidate", nil)
	rec := httptest.NewRecorder()
	e.HandleInvalidate(rec, req)
	if rec.Code != http.StatusUnauthorized {
		t.Fatalf("status = %d", rec.Code)
	}
	if e.Cache().Len() != 1 {
		t.Fatal("cache cleared by unsigned request")
	}
}

// TestPairingSecretLookup covers the SecretSource across default and
// realm-scoped pairings.
func TestPairingSecretLookup(t *testing.T) {
	e := New(Config{Host: "webpics"})
	e.mu.Lock()
	e.pairings["bob"] = Pairing{PairingID: "pair-default", Secret: "s1"}
	e.realmPairings[realmKey{"bob", "work"}] = Pairing{PairingID: "pair-realm", Secret: "s2"}
	e.mu.Unlock()
	if s, ok := e.PairingSecret("pair-default"); !ok || s != "s1" {
		t.Fatalf("default: %q %v", s, ok)
	}
	if s, ok := e.PairingSecret("pair-realm"); !ok || s != "s2" {
		t.Fatalf("realm: %q %v", s, ok)
	}
	if _, ok := e.PairingSecret("pair-unknown"); ok {
		t.Fatal("unknown pairing resolved")
	}
}
