package am

import (
	"bytes"
	"encoding/json"
	"net/http"
	"sync"

	"umac/internal/core"
	"umac/internal/httpsig"
)

// This file implements decision-cache invalidation push, realising the
// Section V.B.5 requirement that "the AM may provide a User with mechanisms
// to control caching of access control decisions" beyond passive TTLs:
// when a user edits policies, groups or links, the AM notifies every paired
// Host (over the signed channel) to drop cached decisions, so revocations
// take effect immediately rather than at TTL expiry. The push names the
// realms/resources the change affects, so Hosts evict only the matching
// entries and unrelated cached decisions keep serving locally.
//
// Delivery is best-effort and asynchronous — a Host that misses the push
// still converges at TTL expiry, so the TTL remains the correctness bound
// and the push is a freshness optimisation.

// InvalidatePath is the Host endpoint the AM posts to.
const InvalidatePath = "/umac/invalidate"

// invalidator delivers cache-invalidation pushes to paired hosts.
type invalidator struct {
	client *http.Client

	mu      sync.Mutex
	pending sync.WaitGroup
}

// EnableInvalidationPush turns on best-effort invalidation pushes using the
// given HTTP client (nil means http.DefaultClient). Without this call the
// AM never contacts Hosts spontaneously (the paper's base protocol).
func (a *AM) EnableInvalidationPush(client *http.Client) {
	if client == nil {
		client = http.DefaultClient
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.inval = &invalidator{client: client}
}

// FlushInvalidations blocks until all in-flight pushes complete (tests).
func (a *AM) FlushInvalidations() {
	a.mu.Lock()
	inv := a.inval
	a.mu.Unlock()
	if inv != nil {
		inv.pending.Wait()
	}
}

// pushInvalidation notifies every non-revoked pairing of owner's Hosts.
// Call sites are the PAP mutations (policy update/delete, link changes,
// group changes). realms and resources scope the push to the cache entries
// the mutation can have affected — the Host evicts only those, so a policy
// edit on one realm no longer stampedes the AM with re-queries for every
// other cached decision. Both empty means "evict everything of owner's"
// (used for group changes, which may affect any policy).
func (a *AM) pushInvalidation(owner core.UserID, realms []core.RealmID, resources []core.ResourceID) {
	// The compiled decision index keys its entries by the same scope, and
	// unlike Host caches it has no TTL backstop — drop its entries first,
	// whether or not Host pushes are enabled.
	if a.index != nil {
		a.index.invalidate(owner, realms, resources)
	}
	// Publish to the event control plane regardless of whether legacy POST
	// pushes are enabled: stream subscribers (GET /v1/events) get scoped
	// invalidation without the AM dialing out, and the POST path below
	// stays as the fallback for Hosts that do not subscribe.
	a.broker.Publish(core.Event{
		Type:  core.EventInvalidation,
		Owner: owner,
		Invalidation: &core.InvalidationPush{
			Owner:     owner,
			Realms:    realms,
			Resources: resources,
		},
	})
	a.mu.Lock()
	inv := a.inval
	a.mu.Unlock()
	if inv == nil {
		return
	}
	body, err := json.Marshal(core.InvalidationPush{
		Owner:     owner,
		Realms:    realms,
		Resources: resources,
	})
	if err != nil {
		return
	}
	for _, p := range a.Pairings(owner) {
		if p.Revoked || p.HostURL == "" {
			continue
		}
		inv.pending.Add(1)
		go func(p Pairing) {
			defer inv.pending.Done()
			req, err := http.NewRequest(http.MethodPost, p.HostURL+InvalidatePath,
				bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			if err := httpsig.Sign(req, p.ID, p.Secret); err != nil {
				return
			}
			resp, err := inv.client.Do(req)
			if err != nil {
				return // best effort; TTL expiry is the fallback
			}
			resp.Body.Close()
		}(p)
	}
}
