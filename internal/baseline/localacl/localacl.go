// Package localacl is the status-quo baseline the paper argues against
// (Section III): access control tightly bound to each Web application,
// expressed as a per-application access-control matrix. Each Host keeps its
// own instance; nothing is shared across applications, there are no groups
// unless the application implements them, and auditing requires visiting
// every application.
//
// The prototype Hosts use this as their "built-in access control
// functionality" (Section VI) when a user has not delegated to an AM, and
// the benchmark harness uses it as the no-AM comparator in experiment E9.
package localacl

import (
	"sort"
	"sync"

	"umac/internal/core"
)

// entryKey identifies one matrix cell's row: a resource of an owner.
type entryKey struct {
	owner    core.UserID
	resource core.ResourceID
}

// Matrix is a per-application access-control matrix: (owner, resource,
// subject) → permitted actions. The zero value is ready to use.
type Matrix struct {
	mu      sync.RWMutex
	entries map[entryKey]map[core.UserID]map[core.Action]bool
	// public marks resources readable by everyone (the "public or private"
	// binary typical Web apps offer).
	public map[entryKey]bool
}

// Grant permits subject to perform action on owner's resource.
func (m *Matrix) Grant(owner core.UserID, resource core.ResourceID, subject core.UserID, actions ...core.Action) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.entries == nil {
		m.entries = make(map[entryKey]map[core.UserID]map[core.Action]bool)
	}
	k := entryKey{owner, resource}
	subjects, ok := m.entries[k]
	if !ok {
		subjects = make(map[core.UserID]map[core.Action]bool)
		m.entries[k] = subjects
	}
	acts, ok := subjects[subject]
	if !ok {
		acts = make(map[core.Action]bool)
		subjects[subject] = acts
	}
	for _, a := range actions {
		acts[a] = true
	}
}

// Revoke removes subject's permission for action on owner's resource.
func (m *Matrix) Revoke(owner core.UserID, resource core.ResourceID, subject core.UserID, actions ...core.Action) {
	m.mu.Lock()
	defer m.mu.Unlock()
	k := entryKey{owner, resource}
	acts := m.entries[k][subject]
	for _, a := range actions {
		delete(acts, a)
	}
}

// SetPublic marks a resource world-readable (read/list only).
func (m *Matrix) SetPublic(owner core.UserID, resource core.ResourceID, public bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.public == nil {
		m.public = make(map[entryKey]bool)
	}
	if public {
		m.public[entryKey{owner, resource}] = true
	} else {
		delete(m.public, entryKey{owner, resource})
	}
}

// Check reports whether subject may perform action on owner's resource.
// The owner always may; public resources are readable by anyone.
func (m *Matrix) Check(owner core.UserID, resource core.ResourceID, subject core.UserID, action core.Action) bool {
	if subject != "" && subject == owner {
		return true
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	k := entryKey{owner, resource}
	if m.public[k] && (action == core.ActionRead || action == core.ActionList) {
		return true
	}
	return m.entries[k][subject][action]
}

// Subjects lists the subjects with any grant on owner's resource, sorted.
func (m *Matrix) Subjects(owner core.UserID, resource core.ResourceID) []core.UserID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	subjects := m.entries[entryKey{owner, resource}]
	out := make([]core.UserID, 0, len(subjects))
	for s, acts := range subjects {
		if len(acts) > 0 {
			out = append(out, s)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// GrantCount counts explicit (subject, action) grants across the matrix —
// the administration burden metric for experiment E9: with N resources
// shared to M friends, the user maintains N×M entries per application,
// versus one group-based policy at an AM.
func (m *Matrix) GrantCount() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	n := 0
	for _, subjects := range m.entries {
		for _, acts := range subjects {
			n += len(acts)
		}
	}
	return n
}
