package core

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"
)

func TestDecisionString(t *testing.T) {
	tests := []struct {
		d    Decision
		want string
	}{
		{DecisionPermit, "permit"},
		{DecisionDeny, "deny"},
		{DecisionUnknown, "unknown"},
		{Decision(42), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.d.String(); got != tt.want {
			t.Errorf("Decision(%d).String() = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestParseDecision(t *testing.T) {
	for _, tt := range []struct {
		in      string
		want    Decision
		wantErr bool
	}{
		{"permit", DecisionPermit, false},
		{"deny", DecisionDeny, false},
		{"PERMIT", DecisionPermit, false},
		{"  deny \n", DecisionDeny, false},
		{"", DecisionUnknown, true},
		{"maybe", DecisionUnknown, true},
	} {
		got, err := ParseDecision(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseDecision(%q) error = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseDecision(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseDecisionRoundTrip(t *testing.T) {
	for _, d := range []Decision{DecisionPermit, DecisionDeny} {
		got, err := ParseDecision(d.String())
		if err != nil {
			t.Fatalf("round trip %v: %v", d, err)
		}
		if got != d {
			t.Fatalf("round trip %v = %v", d, got)
		}
	}
}

func TestValidAction(t *testing.T) {
	for _, a := range []Action{ActionRead, ActionWrite, ActionDelete, ActionList, ActionShare} {
		if !ValidAction(a) {
			t.Errorf("ValidAction(%q) = false, want true", a)
		}
	}
	for _, a := range []Action{"", "READ", "execute", "read "} {
		if ValidAction(a) {
			t.Errorf("ValidAction(%q) = true, want false", a)
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	phases := []Phase{
		PhaseDelegatingAccessControl,
		PhaseComposingPolicies,
		PhaseObtainingToken,
		PhaseAccessingResource,
		PhaseObtainingDecision,
		PhaseSubsequentAccess,
	}
	seen := map[string]bool{}
	for _, p := range phases {
		s := p.String()
		if s == "" || strings.HasPrefix(s, "phase(") {
			t.Errorf("Phase %d has no name: %q", p, s)
		}
		if seen[s] {
			t.Errorf("duplicate phase name %q", s)
		}
		seen[s] = true
	}
	if got := Phase(99).String(); got != "phase(99)" {
		t.Errorf("unknown phase = %q", got)
	}
}

func TestPhaseNumbering(t *testing.T) {
	// Fig. 2 numbers the phases 1..6; the constants must match so trace
	// output lines up with the paper.
	if PhaseDelegatingAccessControl != 1 || PhaseSubsequentAccess != 6 {
		t.Fatalf("phases misnumbered: first=%d last=%d",
			PhaseDelegatingAccessControl, PhaseSubsequentAccess)
	}
}

func TestResourceRef(t *testing.T) {
	r := ResourceRef{Host: "webpics", Resource: "photo-1"}
	if got := r.String(); got != "webpics/photo-1" {
		t.Errorf("String() = %q", got)
	}
	if !r.Valid() {
		t.Error("Valid() = false for complete ref")
	}
	if (ResourceRef{Host: "webpics"}).Valid() {
		t.Error("Valid() = true without resource")
	}
	if (ResourceRef{Resource: "p"}).Valid() {
		t.Error("Valid() = true without host")
	}
}

func TestPairingScopeString(t *testing.T) {
	if PairingScopeApplication.String() != "application" ||
		PairingScopeUser.String() != "user" ||
		PairingScopeResources.String() != "resources" {
		t.Error("pairing scope names wrong")
	}
	if got := PairingScope(0).String(); got != "scope(0)" {
		t.Errorf("zero scope = %q", got)
	}
}

func TestTokenResponsePending(t *testing.T) {
	if (TokenResponse{Token: "t"}).Pending() {
		t.Error("granted response reported pending")
	}
	if !(TokenResponse{PendingConsent: "tick"}).Pending() {
		t.Error("consent response not pending")
	}
	if !(TokenResponse{RequiredTerms: []string{"payment"}}).Pending() {
		t.Error("terms response not pending")
	}
	if (TokenResponse{}).Pending() {
		t.Error("empty response reported pending")
	}
}

func TestDecisionResponsePermit(t *testing.T) {
	if !(DecisionResponse{Decision: "permit"}).Permit() {
		t.Error("permit not recognized")
	}
	if (DecisionResponse{Decision: "deny"}).Permit() {
		t.Error("deny recognized as permit")
	}
}

func TestNewIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewID("x")
		if !strings.HasPrefix(id, "x-") {
			t.Fatalf("id %q missing prefix", id)
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}

func TestNewSecretLength(t *testing.T) {
	s := NewSecret(32)
	if len(s) < 40 { // 32 bytes base64url ≈ 43 chars
		t.Fatalf("secret too short: %d", len(s))
	}
	if s == NewSecret(32) {
		t.Fatal("two secrets identical")
	}
}

func TestMessageJSONRoundTrip(t *testing.T) {
	in := TokenRequest{
		Requester: "gallery",
		Subject:   "alice",
		Host:      "webpics",
		Realm:     "travel",
		Resource:  "photo-1",
		Action:    ActionRead,
		Claims:    map[string]string{"payment": "rcpt-1"},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out TokenRequest
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Requester != in.Requester || out.Realm != in.Realm ||
		out.Action != in.Action || out.Claims["payment"] != "rcpt-1" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestTracer(t *testing.T) {
	var tr Tracer
	tr.Record(PhaseObtainingToken, "requester", "am", "token-request", "realm=travel")
	tr.Record(PhaseObtainingToken, "am", "requester", "token-response", "")
	events := tr.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatal("sequence numbers wrong")
	}
	if got := tr.Ops(); got[0] != "token-request" || got[1] != "token-response" {
		t.Fatalf("ops = %v", got)
	}
	if tr.CountOp("token-request") != 1 {
		t.Fatal("CountOp wrong")
	}
	if !strings.Contains(events[0].String(), "requester -> am") {
		t.Fatalf("String() = %q", events[0].String())
	}
	tr.Reset()
	if len(tr.Events()) != 0 {
		t.Fatal("reset did not clear events")
	}
	tr.Record(PhaseSubsequentAccess, "a", "b", "op", "")
	if tr.Events()[0].Seq != 1 {
		t.Fatal("seq not reset")
	}
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Record(PhaseObtainingToken, "a", "b", "op", "") // must not panic
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
	tr.Reset()
	if tr.CountOp("op") != 0 {
		t.Fatal("nil tracer counted ops")
	}
}

func TestTracerConcurrent(t *testing.T) {
	var tr Tracer
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 100; j++ {
				tr.Record(PhaseSubsequentAccess, "a", "b", "op", "")
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	events := tr.Events()
	if len(events) != 800 {
		t.Fatalf("got %d events, want 800", len(events))
	}
	seen := map[int]bool{}
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}

func TestResourceRefStringProperty(t *testing.T) {
	// Property: String always contains exactly the host and resource joined
	// by a slash, for any inputs.
	f := func(h, r string) bool {
		ref := ResourceRef{Host: HostID(h), Resource: ResourceID(r)}
		return ref.String() == h+"/"+r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
