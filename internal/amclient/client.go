// Package amclient is the shared typed Go client for the Authorization
// Manager's versioned v1 API. It is the single place Host (PEP),
// Requester, CLI and simulation code build AM requests: every protocol and
// management route is wrapped in a method taking and returning the wire
// structs from internal/core, with both authentication modes built in —
// the HMAC-signed Host↔AM channel (pairing credentials) and the
// session-identity header used by the management surface.
//
// Error responses decode into *core.APIError, so callers branch on stable
// machine-readable codes (or errors.Is against the core sentinels, which
// APIError unwraps to) instead of string-matching response bodies.
package amclient

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/identity"
)

// Config configures a Client.
type Config struct {
	// BaseURL is the AM's base URL (scheme://host[:port]); a trailing
	// slash is tolerated.
	BaseURL string
	// HTTPClient performs the calls; nil means http.DefaultClient.
	HTTPClient *http.Client
	// User, when set, authenticates management calls via the session
	// identity header (UserHeader, default identity.DefaultUserHeader).
	// Front the AM with a real SSO proxy in production.
	User core.UserID
	// UserHeader overrides the identity header name.
	UserHeader string
	// PairingID and Secret, when set, HMAC-sign every request with the
	// pairing secret — the Host↔AM channel of Figs. 3/4/6.
	PairingID string
	Secret    string
	// Legacy pins the client to the pre-v1 alias paths. Used by the
	// compatibility tests; new code should leave it false.
	Legacy bool
}

// Client is a typed AM API client. Methods are safe for concurrent use.
type Client struct {
	cfg  Config
	base string
}

// New constructs a Client.
func New(cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.UserHeader == "" {
		cfg.UserHeader = identity.DefaultUserHeader
	}
	return &Client{cfg: cfg, base: strings.TrimSuffix(cfg.BaseURL, "/")}
}

// WithCredential returns a copy of the client signing with the given
// pairing credentials (the Host side uses one Client per paired AM).
func (c *Client) WithCredential(pairingID, secret string) *Client {
	cfg := c.cfg
	cfg.PairingID = pairingID
	cfg.Secret = secret
	return &Client{cfg: cfg, base: c.base}
}

// BaseURL returns the configured AM base URL (trailing slash trimmed).
func (c *Client) BaseURL() string { return c.base }

// url joins the base URL, version prefix and route path + query.
func (c *Client) url(path string, q url.Values) string {
	u := c.base
	if !c.cfg.Legacy {
		u += "/v1"
	}
	u += path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// Page selects a window of a list endpoint. The zero value means the
// server defaults (offset 0, default limit).
type Page struct {
	Offset int
	Limit  int
}

func (p Page) apply(q url.Values) url.Values {
	if p.Offset > 0 {
		if q == nil {
			q = url.Values{}
		}
		q.Set("offset", fmt.Sprint(p.Offset))
	}
	if p.Limit > 0 {
		if q == nil {
			q = url.Values{}
		}
		q.Set("limit", fmt.Sprint(p.Limit))
	}
	return q
}

// ownerQuery builds the ?owner= query management routes accept.
func ownerQuery(owner core.UserID) url.Values {
	q := url.Values{}
	if owner != "" {
		q.Set("owner", string(owner))
	}
	return q
}

// do performs one API call: method + route path (+ query), JSON-encoding
// in (nil = no body) and decoding a 2xx response into out (nil = discard).
// Non-2xx responses return *core.APIError.
func (c *Client) do(method, path string, q url.Values, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("amclient: encode %s: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	return c.doRaw(method, path, q, body, "application/json", out)
}

// newRequest builds an API request with both auth modes applied: the
// session identity header and (when credentials are configured) the HMAC
// signature. Every call path goes through here so auth can never drift
// between methods.
func (c *Client) newRequest(method, path string, q url.Values, body io.Reader, contentType string) (*http.Request, error) {
	req, err := http.NewRequest(method, c.url(path, q), body)
	if err != nil {
		return nil, fmt.Errorf("amclient: build %s: %w", path, err)
	}
	if body != nil && contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.cfg.User != "" {
		req.Header.Set(c.cfg.UserHeader, string(c.cfg.User))
	}
	if c.cfg.PairingID != "" {
		if err := httpsig.Sign(req, c.cfg.PairingID, c.cfg.Secret); err != nil {
			return nil, fmt.Errorf("amclient: sign %s: %w", path, err)
		}
	}
	return req, nil
}

// doRaw is do with a caller-supplied body stream and content type.
func (c *Client) doRaw(method, path string, q url.Values, body io.Reader, contentType string, out any) error {
	req, err := c.newRequest(method, path, q, body, contentType)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("amclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("amclient: decode %s response: %w", path, err)
		}
	}
	return nil
}

// get performs a GET decoding into out.
func (c *Client) get(path string, q url.Values, out any) error {
	return c.do(http.MethodGet, path, q, nil, out)
}

// PairConfirmURL builds the browser URL of the Fig. 3 consent leg
// (GET /v1/pair/confirm): a redirect the user's browser follows, not a
// request this client performs.
func PairConfirmURL(amURL string, q url.Values) string {
	return strings.TrimSuffix(amURL, "/") + "/v1/pair/confirm?" + q.Encode()
}

// ComposeURL builds the browser URL of the Fig. 4 policy-composition page
// (GET /v1/compose) a Host's "share" control redirects to.
func ComposeURL(amURL string, q url.Values) string {
	return strings.TrimSuffix(amURL, "/") + "/v1/compose?" + q.Encode()
}

// maxErrorBody bounds how much of an error response is read.
const maxErrorBody = 64 << 10

// decodeError turns a non-2xx response into *core.APIError. Structured
// envelopes pass through; legacy {"error": "..."} bodies and non-JSON
// bodies degrade to code "unknown" with the raw text as message.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var envelope struct {
		core.APIError
		LegacyError string `json:"error"`
	}
	if err := json.Unmarshal(raw, &envelope); err == nil {
		e := envelope.APIError
		if e.Code == "" {
			e.Code = core.CodeUnknown
			e.Message = envelope.LegacyError
		}
		if e.Message == "" {
			e.Message = strings.TrimSpace(string(raw))
		}
		if e.Status == 0 {
			e.Status = resp.StatusCode
		}
		if e.RequestID == "" {
			e.RequestID = resp.Header.Get("X-Request-Id")
		}
		return &e
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = resp.Status
	}
	return &core.APIError{
		Code:      core.CodeUnknown,
		Status:    resp.StatusCode,
		Message:   msg,
		RequestID: resp.Header.Get("X-Request-Id"),
	}
}
