// Command storehammer is the crash-consistency test's victim process: it
// opens a durable store with fsync and a small WAL segment size, hammers it
// with concurrent writers, and prints one "ACK <key>" line to stdout after
// each write is acknowledged (i.e. after the group commit made it durable).
// The test SIGKILLs it at a random moment and then checks that every key
// whose ACK line it read survives replay. The program never exits on its
// own under load — being killed is its purpose.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"sync"

	"umac/internal/store"
)

func main() {
	var (
		statePath = flag.String("state", "", "state file path (required); WAL segments live beside it")
		writers   = flag.Int("writers", 8, "concurrent writer goroutines")
		segSize   = flag.Int64("segsize", 16<<10, "WAL segment roll threshold in bytes")
		valueSize = flag.Int("value-size", 64, "payload bytes per record")
	)
	flag.Parse()
	if *statePath == "" {
		log.Fatal("storehammer: -state is required")
	}
	st, err := store.Open(*statePath, store.WithFsync(), store.WithWALSegmentSize(*segSize))
	if err != nil {
		log.Fatalf("storehammer: open: %v", err)
	}
	// The parent waits for this line so kills land on a store that finished
	// replaying, not one still opening.
	fmt.Println("READY")

	payload := strings.Repeat("x", *valueSize)
	var wg sync.WaitGroup
	for w := 0; w < *writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				key := fmt.Sprintf("w%d-%d", w, i)
				if _, err := st.Put("hammer", key, payload); err != nil {
					return
				}
				// One Write syscall per line, after the Put returned: any
				// complete line the parent reads names a durable write.
				fmt.Printf("ACK %s\n", key)
			}
		}(w)
	}
	wg.Wait()
}
