package pep

import (
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"umac/internal/store"
)

// fakeExchangeAM serves the pairing code-for-secret exchange.
func fakeExchangeAM(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/api/pair/exchange" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"pairing_id":"pair-1","secret":"s3cret","am":"http://fake","user":"bob"}`))
	}))
	t.Cleanup(srv.Close)
	return srv
}

// TestPairingsSurviveHostRestart: an enforcer built over a durable store
// writes its pairings through; a second enforcer over a reopened store
// (WAL only — the host was killed, never snapshot) sees them again.
func TestPairingsSurviveHostRestart(t *testing.T) {
	fake := fakeExchangeAM(t)
	path := filepath.Join(t.TempDir(), "host-state.json")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}

	e1 := New(Config{Host: "webpics", Store: st})
	if _, err := e1.CompletePairing(fake.URL, "bob", "code-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.CompleteRealmPairing(fake.URL, "bob", "travel", "code-2"); err != nil {
		t.Fatal(err)
	}
	// Hard kill: no snapshot, no close.

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2 := New(Config{Host: "webpics", Store: st2})
	if !e2.Delegated("bob") {
		t.Fatal("default pairing lost across restart")
	}
	p, ok := e2.PairingFor("bob")
	if !ok || p.PairingID != "pair-1" || p.Secret != "s3cret" || p.User != "bob" {
		t.Fatalf("PairingFor after restart = %+v %v", p, ok)
	}
	rp, ok := e2.pairingForRealm("bob", "travel")
	if !ok || rp.PairingID != "pair-1" {
		t.Fatalf("realm pairing after restart = %+v %v", rp, ok)
	}
	// The signed-channel secret source works too (cache invalidation).
	if secret, ok := e2.PairingSecret("pair-1"); !ok || secret != "s3cret" {
		t.Fatalf("PairingSecret after restart = %q %v", secret, ok)
	}
}

// TestUnpairRemovesPersistedPairing: unpair is written through, so a
// restarted host does not resurrect a revoked delegation.
func TestUnpairRemovesPersistedPairing(t *testing.T) {
	fake := fakeExchangeAM(t)
	path := filepath.Join(t.TempDir(), "host-state.json")
	st, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	e1 := New(Config{Host: "webpics", Store: st})
	if _, err := e1.CompletePairing(fake.URL, "bob", "code-1"); err != nil {
		t.Fatal(err)
	}
	e1.Unpair("bob")

	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	e2 := New(Config{Host: "webpics", Store: st2})
	if e2.Delegated("bob") {
		t.Fatal("revoked pairing resurrected by restart")
	}
}
