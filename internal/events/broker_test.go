package events

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"umac/internal/core"
)

func inval(owner core.UserID) core.Event {
	return core.Event{
		Type:  core.EventInvalidation,
		Owner: owner,
		Invalidation: &core.InvalidationPush{
			Owner: owner, Realms: []core.RealmID{"travel"},
		},
	}
}

func mustNext(t *testing.T, s *Subscriber) (core.Event, bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	e, gap, err := s.Next(ctx)
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	return e, gap
}

func TestPublishSubscribeOrder(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sub, gap := b.Subscribe(Filter{}, -1)
	if gap {
		t.Fatal("live subscription reported a resume gap")
	}
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(inval("bob"))
	}
	for i := int64(1); i <= 10; i++ {
		e, gap := mustNext(t, sub)
		if gap {
			t.Fatalf("unexpected gap before seq %d", e.Seq)
		}
		if e.Seq != i {
			t.Fatalf("seq = %d, want %d", e.Seq, i)
		}
		if e.Time.IsZero() {
			t.Fatalf("seq %d has zero publish time", e.Seq)
		}
	}
}

func TestFilterTypesOwnerTicket(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sub, _ := b.Subscribe(Filter{
		Types: []core.EventType{core.EventConsent},
		Owner: "bob", Ticket: "tick-1",
	}, -1)
	defer sub.Close()
	b.Publish(inval("bob"))                                                        // wrong type
	b.Publish(core.Event{Type: core.EventConsent, Owner: "eve", Ticket: "tick-1"}) // wrong owner
	b.Publish(core.Event{Type: core.EventConsent, Owner: "bob", Ticket: "other"})  // wrong ticket
	want := b.Publish(core.Event{Type: core.EventConsent, Owner: "bob", Ticket: "tick-1"})
	e, _ := mustNext(t, sub)
	if e.Seq != want || e.Ticket != "tick-1" {
		t.Fatalf("got seq %d ticket %q, want seq %d ticket tick-1", e.Seq, e.Ticket, want)
	}
}

func TestOwnerFilterPassesNodeWideEvents(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sub, _ := b.Subscribe(Filter{Owner: "bob"}, -1)
	defer sub.Close()
	b.Publish(core.Event{Type: core.EventReplication, Signal: core.SignalPromoted})
	e, _ := mustNext(t, sub)
	if e.Type != core.EventReplication {
		t.Fatalf("owner-filtered subscriber missed node-wide event, got %+v", e)
	}
}

func TestResumeReplaysExactlyOnce(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	for i := 0; i < 5; i++ {
		b.Publish(inval("bob"))
	}
	// Resume after seq 2: must replay 3,4,5 then continue live with 6.
	sub, gap := b.Subscribe(Filter{}, 2)
	if gap {
		t.Fatal("resume within the replay window reported a gap")
	}
	defer sub.Close()
	b.Publish(inval("bob")) // seq 6, published after subscribe
	for want := int64(3); want <= 6; want++ {
		e, gap := mustNext(t, sub)
		if gap || e.Seq != want {
			t.Fatalf("got seq %d (gap=%v), want %d", e.Seq, gap, want)
		}
	}
}

func TestResumePastWindowReportsGap(t *testing.T) {
	b := New(Options{ReplayWindow: 4})
	defer b.Close()
	for i := 0; i < 10; i++ {
		b.Publish(inval("bob"))
	}
	// Cursor 2 is far behind the retained tail (7..10): the hole must be
	// reported, and delivery must skip to live rather than silently
	// replaying a stream with missing middles.
	sub, gap := b.Subscribe(Filter{}, 2)
	defer sub.Close()
	if !gap {
		t.Fatal("resume past the replay window did not report a gap")
	}
	next := b.Publish(inval("bob"))
	e, _ := mustNext(t, sub)
	if e.Seq != next {
		t.Fatalf("after gap, got seq %d, want live seq %d", e.Seq, next)
	}
}

func TestResumeAheadOfHeadReportsGap(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	b.Publish(inval("bob")) // head = 1
	// Cursor 40 was minted by a previous process lifetime (seq restarts at
	// 0): everything published since the restart is already lost to this
	// subscriber, so the hole must be reported, not silently skipped.
	sub, gap := b.Subscribe(Filter{}, 40)
	defer sub.Close()
	if !gap {
		t.Fatal("resume ahead of the broker head did not report a gap")
	}
	next := b.Publish(inval("bob"))
	e, _ := mustNext(t, sub)
	if e.Seq != next {
		t.Fatalf("after gap, got seq %d, want live seq %d", e.Seq, next)
	}
}

func TestSlowSubscriberGapMarker(t *testing.T) {
	b := New(Options{SubscriberBuffer: 4})
	defer b.Close()
	sub, _ := b.Subscribe(Filter{}, -1)
	defer sub.Close()
	for i := 0; i < 10; i++ {
		b.Publish(inval("bob"))
	}
	// 6 events were dropped; the first delivered event carries the gap.
	e, gap := mustNext(t, sub)
	if !gap {
		t.Fatal("overflowed subscriber got no gap marker")
	}
	if e.Seq != 7 {
		t.Fatalf("first surviving event is seq %d, want 7 (oldest dropped first)", e.Seq)
	}
	// The gap is reported once; the rest of the tail is clean.
	for want := int64(8); want <= 10; want++ {
		e, gap := mustNext(t, sub)
		if gap || e.Seq != want {
			t.Fatalf("got seq %d (gap=%v), want %d gapless", e.Seq, gap, want)
		}
	}
	if h := b.Health(); h.Dropped != 6 {
		t.Fatalf("Health.Dropped = %d, want 6", h.Dropped)
	}
}

// TestStalledSubscriberNeverBlocksPublisher is the backpressure contract
// of the ISSUE: with one subscriber that never drains, publishing must
// stay a bounded-latency, always-completing operation.
func TestStalledSubscriberNeverBlocksPublisher(t *testing.T) {
	b := New(Options{SubscriberBuffer: 8})
	defer b.Close()
	stalled, _ := b.Subscribe(Filter{}, -1) // never calls Next
	defer stalled.Close()
	live, _ := b.Subscribe(Filter{}, -1)
	defer live.Close()

	var drained sync.WaitGroup
	drained.Add(1)
	got := 0
	go func() {
		defer drained.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		for {
			_, _, err := live.Next(ctx)
			if err != nil {
				return
			}
			got++
		}
	}()

	const n = 20000
	var maxPublish time.Duration
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		b.Publish(inval("bob"))
		if d := time.Since(t0); d > maxPublish {
			maxPublish = d
		}
	}
	total := time.Since(start)
	// The bound is deliberately loose (CI containers stall arbitrarily),
	// but a publisher actually blocking on the stalled ring would take
	// seconds or hang outright.
	if total > 5*time.Second {
		t.Fatalf("publishing %d events with a stalled subscriber took %v", n, total)
	}
	t.Logf("published %d events in %v (max single publish %v)", n, total, maxPublish)

	b.Close()
	drained.Wait()
	if got == 0 {
		t.Fatal("live subscriber starved while a sibling was stalled")
	}
	h := b.Health()
	if h.Dropped < n-8-1 {
		t.Fatalf("stalled subscriber dropped %d events, want ≥ %d", h.Dropped, n-8-1)
	}
}

func TestHealthGauges(t *testing.T) {
	b := New(Options{SubscriberBuffer: 4})
	defer b.Close()
	inv, _ := b.Subscribe(Filter{Types: []core.EventType{core.EventInvalidation}}, -1)
	defer inv.Close()
	all, _ := b.Subscribe(Filter{}, -1)
	defer all.Close()
	h := b.Health()
	if h.Subscribers[core.EventInvalidation] != 2 {
		t.Fatalf("invalidation subscribers = %d, want 2", h.Subscribers[core.EventInvalidation])
	}
	if h.Subscribers[core.EventConsent] != 1 {
		t.Fatalf("consent subscribers = %d, want 1", h.Subscribers[core.EventConsent])
	}
	for i := 0; i < 3; i++ {
		b.Publish(inval("bob"))
	}
	h = b.Health()
	if h.Published != 3 || h.LastSeq != 3 {
		t.Fatalf("published/last_seq = %d/%d, want 3/3", h.Published, h.LastSeq)
	}
	if h.MaxLag != 3 {
		t.Fatalf("max lag = %d, want 3 (nothing consumed yet)", h.MaxLag)
	}
	mustNext(t, all)
	mustNext(t, all)
	mustNext(t, all)
	h = b.Health()
	if h.MaxLag != 3 { // inv still has not consumed
		t.Fatalf("max lag = %d, want 3 from the idle subscriber", h.MaxLag)
	}
}

func TestNextContextCancel(t *testing.T) {
	b := New(Options{})
	defer b.Close()
	sub, _ := b.Subscribe(Filter{}, -1)
	defer sub.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, _, err := sub.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Next under cancel = %v, want context.Canceled", err)
	}
}

func TestCloseUnblocksAndDrains(t *testing.T) {
	b := New(Options{})
	sub, _ := b.Subscribe(Filter{}, -1)
	b.Publish(inval("bob"))
	b.Close()
	// The buffered event still drains, then ErrClosed.
	e, _ := mustNext(t, sub)
	if e.Seq != 1 {
		t.Fatalf("drained seq %d, want 1", e.Seq)
	}
	if _, _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Next after close = %v, want ErrClosed", err)
	}
	if got := b.Publish(inval("bob")); got != 0 {
		t.Fatalf("Publish after Close assigned seq %d, want 0", got)
	}
}

func TestConcurrentPublishSubscribe(t *testing.T) {
	b := New(Options{SubscriberBuffer: 64})
	defer b.Close()
	const (
		publishers = 4
		perPub     = 500
	)
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				b.Publish(inval(core.UserID(fmt.Sprintf("owner-%d", p))))
			}
		}(p)
	}
	// Churning subscribers come and go while publishers run.
	for s := 0; s < 8; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, _ := b.Subscribe(Filter{}, -1)
			ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
			defer cancel()
			last := int64(0)
			for {
				e, _, err := sub.Next(ctx)
				if err != nil {
					sub.Close()
					return
				}
				if e.Seq <= last {
					t.Errorf("out-of-order delivery: %d after %d", e.Seq, last)
					sub.Close()
					return
				}
				last = e.Seq
			}
		}()
	}
	wg.Wait()
	if got := b.LastSeq(); got != publishers*perPub {
		t.Fatalf("LastSeq = %d, want %d", got, publishers*perPub)
	}
}
