package am

import (
	"path/filepath"
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/store"
)

// TestAMStateSurvivesRestart exercises the persistence path end to end:
// pairings, realms, policies, links, groups and grants written through one
// AM instance are snapshot to disk, reloaded, and continue to serve
// decisions from a second instance — including validating tokens minted
// before the restart (the deployment must supply a stable TokenKey, exactly
// what cmd/amserver's flags provide).
func TestAMStateSurvivesRestart(t *testing.T) {
	key := []byte("stable-master-key-0123456789abcd")
	st := store.New()
	a1 := New(Config{Name: "am", Store: st, TokenKey: key})

	// Full setup through the first instance.
	code, err := a1.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	pairing, err := a1.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a1.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	p, err := a1.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a1.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	if err := a1.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	tok, err := a1.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Snapshot → disk → reload, as cmd/amserver does on restart.
	path := filepath.Join(t.TempDir(), "am-state.json")
	if err := st.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	st2, err := store.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	a2 := New(Config{Name: "am", Store: st2, TokenKey: key})

	// The pairing channel still verifies.
	secret, ok := a2.PairingSecret(pairing.PairingID)
	if !ok || secret != pairing.Secret {
		t.Fatal("pairing secret lost across restart")
	}
	// Group membership was rebuilt from the store.
	if got := a2.GroupMembers("bob", "friends"); len(got) != 1 || got[0] != "alice" {
		t.Fatalf("groups after restart = %v", got)
	}
	// Pre-restart tokens still decide correctly (stable key + persisted
	// realm/link/grant state).
	dec, err := a2.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Permit() {
		t.Fatalf("pre-restart token denied: %+v", dec)
	}
	// New tokens can be issued as well.
	if _, err := a2.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	}); err != nil {
		t.Fatal(err)
	}
	// Without the stable key, old tokens fail closed (fresh random key).
	a3 := New(Config{Name: "am", Store: st2})
	dec, err = a3.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Permit() {
		t.Fatal("token verified under a different master key")
	}
	if !dec.TokenProblem {
		t.Fatal("key-mismatch deny not flagged as token problem")
	}
}

func TestConsentApprovalReEvaluatesPolicy(t *testing.T) {
	// The owner approves a consent ticket, but by then the policy has been
	// replaced with a deny: approval must NOT mint a token.
	a, _ := newTestAM(t)
	pairing := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, pairing.PairingID, "private", "diary")
	p, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
		}},
	})
	a.LinkGeneral("bob", "private", p.ID)
	resp, err := a.IssueToken(core.TokenRequest{
		Requester: "editor", Subject: "evelyn", Host: "webpics",
		Realm: "private", Resource: "diary", Action: core.ActionRead,
	})
	if err != nil || resp.PendingConsent == "" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	// Policy flips to deny before the owner approves.
	p.Rules = []policy.Rule{{
		Effect:   policy.EffectDeny,
		Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
	}}
	if err := a.UpdatePolicy("bob", p); err != nil {
		t.Fatal(err)
	}
	if err := a.ResolveConsent("bob", resp.PendingConsent, true); err == nil {
		t.Fatal("consent approval minted a token against a denying policy")
	}
	st, err := a.ConsentStatus(resp.PendingConsent)
	if err != nil || st.Approved || st.Token != "" {
		t.Fatalf("st=%+v err=%v", st, err)
	}
}
