package am

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"umac/internal/core"
	"umac/internal/store"
	"umac/internal/webutil"
)

// This file implements WAL-shipping replication between AM instances: a
// primary serves its datastore's write-ahead log over the authenticated
// /v1/replication/* surface (snapshot bootstrap + resumable tailing by
// sequence number), and a follower applies the stream into its own store
// and serves the read-only decision path while rejecting writes with a
// not_primary error carrying a leader hint. Decision correctness on a
// follower needs no extra machinery: pairings, realms, policies, groups and
// grants all live in the replicated store, and the token-service key is
// shared deployment-wide (Config.TokenKey), so a follower validates tokens
// the primary minted.

// ReplicationRole selects how an AM participates in a replicated
// deployment.
type ReplicationRole string

// Replication roles. The zero value is a standalone AM: it serves writes
// like a primary but retains no WAL tail for followers.
const (
	// RolePrimary serves writes and streams its WAL on /v1/replication/*.
	RolePrimary ReplicationRole = ReplicationRole(core.ReplRolePrimary)
	// RoleFollower syncs from PrimaryURL and serves reads only.
	RoleFollower ReplicationRole = ReplicationRole(core.ReplRoleFollower)
)

// ReplicationConfig configures an AM's replication role.
type ReplicationConfig struct {
	// Role selects primary or follower; empty means standalone (no
	// replication surface, no sync loop).
	Role ReplicationRole
	// Secret authenticates the /v1/replication/* surface: the primary
	// requires it as a bearer token and the follower presents it. Both
	// sides must be configured with the same value; a primary without a
	// secret refuses replication requests outright.
	Secret string
	// PrimaryURL is the primary's base URL (followers only).
	PrimaryURL string
	// Window bounds how many recent WAL records the primary retains for
	// tailing; 0 means store.DefaultReplicationWindow. Followers further
	// behind re-bootstrap from a snapshot.
	Window int
	// PollWait is how long the follower's long-poll asks the primary to
	// hold when no records are pending; 0 means 2s.
	PollWait time.Duration
	// HTTPClient performs follower→primary calls; nil means a dedicated
	// client with a timeout slightly above PollWait.
	HTTPClient *http.Client
}

// defaultReplPollWait is the follower long-poll hold used when
// ReplicationConfig.PollWait is zero.
const defaultReplPollWait = 2 * time.Second

// replWALMaxBatch caps how many records one GET /v1/replication/wal
// response may carry, whatever the ?max= parameter says.
const replWALMaxBatch = 4096

// replWALDefaultBatch is the batch size used when ?max= is absent.
const replWALDefaultBatch = 512

// replMaxWait caps the server-side long-poll hold.
const replMaxWait = 30 * time.Second

// startReplication wires the configured role: a primary starts retaining
// its WAL tail, a follower launches the sync loop. Called from New.
func (a *AM) startReplication() {
	switch a.replCfg.Role {
	case RolePrimary:
		a.store.EnableReplication(a.replCfg.Window)
	case RoleFollower:
		a.roleFollower.Store(true)
		a.replCtx, a.replCancel = context.WithCancel(context.Background())
		a.replDone = make(chan struct{})
		go a.replLoop()
	}
}

// stopReplication terminates the follower sync loop (no-op otherwise),
// cancelling any in-flight long-poll so Close and Promote never wait for
// a poll hold or HTTP timeout to elapse.
func (a *AM) stopReplication() {
	if a.replCancel == nil {
		return
	}
	a.replStopOnce.Do(a.replCancel)
	<-a.replDone
}

// Promote turns a follower into a primary: the sync loop is stopped, the
// write gate opens, and the store starts retaining its WAL tail so other
// followers can re-point at this instance. The promoted AM continues the
// sequence numbering where its applied offset left off — any write the old
// primary acknowledged but never shipped here is NOT recovered (promote
// only after the follower has caught up, or accept the divergence; see
// docs/OPERATIONS.md, "Failover drill").
func (a *AM) Promote() {
	a.stopReplication()
	a.store.EnableReplication(a.replCfg.Window)
	a.roleFollower.Store(false)
	a.publishReplSignal(core.SignalPromoted)
}

// publishReplSignal emits a replication event on the control plane, with
// the node's current health as payload. Subscribed operators and clients
// learn about promotions and connectivity flips without polling /healthz.
func (a *AM) publishReplSignal(signal string) {
	a.broker.Publish(core.Event{
		Type:        core.EventReplication,
		Signal:      signal,
		Replication: a.ReplicationHealth(),
	})
}

// setReplConnected flips the follower's connectivity flag, publishing a
// replication signal only on actual transitions (the sync loop calls this
// every round; steady state must not flood the stream).
func (a *AM) setReplConnected(connected bool) {
	if a.replConnected.Swap(connected) == connected {
		return
	}
	if connected {
		a.publishReplSignal(core.SignalConnected)
	} else {
		a.publishReplSignal(core.SignalDisconnected)
	}
}

// IsFollower reports whether the AM currently rejects writes.
func (a *AM) IsFollower() bool { return a.roleFollower.Load() }

// ReplicationHealth reports the node's replication state, or nil for a
// standalone AM. Exposed on GET /v1/healthz and GET /v1/metrics.
func (a *AM) ReplicationHealth() *core.ReplicationHealth {
	if a.replCfg.Role == "" {
		return nil
	}
	h := &core.ReplicationHealth{
		Role:    core.ReplRolePrimary,
		LastSeq: a.store.LastSeq(),
	}
	if a.roleFollower.Load() {
		h.Role = core.ReplRoleFollower
		h.Primary = a.replCfg.PrimaryURL
		h.PrimarySeq = a.replPrimarySeq.Load()
		if lag := h.PrimarySeq - h.LastSeq; lag > 0 {
			h.LagRecords = lag
		}
		h.Connected = a.replConnected.Load()
		h.AppliedRecords = a.replApplied.Load()
	}
	return h
}

// WaitReplicated blocks until the store's applied offset reaches seq,
// polling; it reports false on timeout. Test and drill helper.
func (a *AM) WaitReplicated(seq int64, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for a.store.LastSeq() < seq {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
	return true
}

// --- Write gating (follower side) ---

// primaryOnly guards a mutating route: on a follower it answers the
// structured not_primary error (retryable, with the primary's URL as the
// leader hint) before authentication runs, so clients fail over without
// burning credentials against a node that cannot serve them.
func (a *AM) primaryOnly(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.roleFollower.Load() {
			e := core.APIErrorf(core.CodeNotPrimary,
				"am: %s is a read-only follower; send writes to the primary", a.name)
			e.Leader = a.replCfg.PrimaryURL
			webutil.WriteAPIError(w, r, e)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// --- Primary-side HTTP surface ---

// replAuthed guards the /v1/replication/* surface: the request must carry
// the shared replication secret as a bearer token, and the node must be
// configured with one. Followers redirect tailing peers to the primary.
func (a *AM) replAuthed(h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if a.replCfg.Secret == "" {
			webutil.FailCode(w, r, core.CodeForbidden, "am: replication is not configured on %s", a.name)
			return
		}
		got := strings.TrimPrefix(r.Header.Get("Authorization"), "Bearer ")
		if subtle.ConstantTimeCompare([]byte(got), []byte(a.replCfg.Secret)) != 1 {
			webutil.FailCode(w, r, core.CodeForbidden, "am: bad replication secret")
			return
		}
		if a.roleFollower.Load() {
			e := core.APIErrorf(core.CodeNotPrimary, "am: %s is a follower; replicate from the primary", a.name)
			e.Leader = a.replCfg.PrimaryURL
			webutil.WriteAPIError(w, r, e)
			return
		}
		h(w, r)
	})
}

// handleReplSnapshot serves the bootstrap image: the full store contents
// plus the sequence number they are consistent at. With ?owner= the image
// is restricted to that owner's closure (pairings, realms, policies,
// links, groups, custodians, grants) — the first leg of a live owner
// migration.
func (a *AM) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	if owner := core.UserID(r.URL.Query().Get("owner")); owner != "" {
		webutil.WriteJSON(w, http.StatusOK, a.store.ReplicationSnapshotFilter(replOwnerKeep(owner)))
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.store.ReplicationSnapshot())
}

// handleReplWAL serves the resumable WAL tail: records after ?from=, up to
// ?max= per response, holding up to ?wait_ms= for new records when the
// follower is caught up (long poll). A ?from= that predates the retained
// window answers wal_truncated: the follower must re-bootstrap.
//
// With ?owner= the tail is restricted to that owner's closure — the
// catch-up and drain legs of a live owner migration. The page's last_seq
// is then the offset the scan advanced through (which may exceed the last
// returned record when trailing foreign records were skipped); callers
// resume from it, and a page that is empty at an unmoved offset means the
// migration stream is drained.
func (a *AM) handleReplWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	ownerFilter := core.UserID(q.Get("owner"))
	from, err := strconv.ParseInt(q.Get("from"), 10, 64)
	if q.Get("from") == "" {
		from, err = 0, nil
	}
	if err != nil || from < 0 {
		webutil.FailCode(w, r, core.CodeBadRequest, "am: ?from= must be a non-negative integer")
		return
	}
	max := replWALDefaultBatch
	if raw := q.Get("max"); raw != "" {
		max, err = strconv.Atoi(raw)
		if err != nil || max <= 0 {
			webutil.FailCode(w, r, core.CodeBadRequest, "am: ?max= must be a positive integer")
			return
		}
	}
	if max > replWALMaxBatch {
		max = replWALMaxBatch
	}
	var wait time.Duration
	if raw := q.Get("wait_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms < 0 {
			webutil.FailCode(w, r, core.CodeBadRequest, "am: ?wait_ms= must be a non-negative integer")
			return
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	if wait > replMaxWait {
		wait = replMaxWait
	}

	deadline := time.Now().Add(wait)
	for {
		// Arm the watch before reading the tail so a record logged between
		// the two cannot be missed.
		watch := a.store.ReplWatch()
		var recs []core.ReplRecord
		var last int64
		if ownerFilter != "" {
			recs, last, err = a.store.TailSinceFilter(from, max, replOwnerKeep(ownerFilter))
		} else {
			recs, last, err = a.store.TailSince(from, max)
		}
		switch {
		case errors.Is(err, store.ErrReplicationTruncated):
			webutil.FailCode(w, r, core.CodeWALTruncated,
				"am: offset %d predates the retained WAL window; re-bootstrap from /v1/replication/snapshot", from)
			return
		case errors.Is(err, store.ErrReplicationDisabled):
			webutil.FailCode(w, r, core.CodeForbidden, "am: replication is not enabled on %s", a.name)
			return
		case err != nil:
			webutil.Fail(w, r, err)
			return
		}
		remain := time.Until(deadline)
		// An owner-filtered scan that advanced past foreign records must
		// answer immediately even with no records, so the migration loop's
		// offset keeps moving.
		if len(recs) > 0 || last > from || remain <= 0 {
			webutil.WriteJSON(w, http.StatusOK, core.ReplWALPage{Records: recs, LastSeq: last})
			return
		}
		timer := time.NewTimer(remain)
		select {
		case <-watch:
			timer.Stop()
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		}
	}
}

// --- Follower-side sync loop ---

// replLoop is the follower's sync engine: bootstrap from a snapshot when
// the primary's retained window no longer covers our applied offset (first
// start, long outage, primary compaction), then tail the WAL with long
// polls, applying records in sequence order. Transient failures back off
// and retry forever — a follower never gives up on its primary.
func (a *AM) replLoop() {
	defer close(a.replDone)
	client := a.replCfg.HTTPClient
	wait := a.replCfg.PollWait
	if wait <= 0 {
		wait = defaultReplPollWait
	}
	if client == nil {
		client = &http.Client{Timeout: wait + 10*time.Second}
	}
	backoff := 50 * time.Millisecond
	const maxBackoff = 5 * time.Second
	for {
		select {
		case <-a.replCtx.Done():
			return
		default:
		}
		err := a.syncOnce(client, wait)
		if err != nil {
			if a.replCtx.Err() != nil {
				return
			}
			a.setReplConnected(false)
			select {
			case <-a.replCtx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 50 * time.Millisecond
	}
}

// syncOnce performs one tail round-trip (or a snapshot bootstrap when the
// tail is truncated) and applies everything it got.
func (a *AM) syncOnce(client *http.Client, wait time.Duration) error {
	from := a.store.LastSeq()
	page, err := a.fetchWAL(client, from, wait)
	if err != nil {
		var ae *core.APIError
		if errors.As(err, &ae) && ae.Code == core.CodeWALTruncated {
			return a.bootstrap(client)
		}
		return err
	}
	for _, rec := range page.Records {
		if err := a.store.ApplyReplicated(rec); err != nil {
			if errors.Is(err, store.ErrReplicationGap) {
				// Should be impossible on an ordered stream; re-bootstrap
				// rather than diverge.
				return a.bootstrap(client)
			}
			return err
		}
		// The policy engine resolves group membership through the
		// in-memory directory, so replicated group records must reach it
		// too — otherwise follower decisions would evaluate against the
		// membership as of process start.
		if rec.Kind == kindGroup {
			a.groups.installRecord(rec)
		}
		// A replicated ring install must take routing effect on the
		// follower too: after a promotion it gates owners by the same
		// topology its former primary pushed.
		if rec.Kind == kindClusterRing {
			a.installRingRecord(rec)
		}
		// Policy and link records change what the compiled decision index
		// resolves; the index has no TTL, so replicated changes must drop
		// its entries just like local PAP mutations do.
		if a.index != nil {
			a.index.applyRecord(rec)
		}
		a.replApplied.Add(1)
	}
	a.replPrimarySeq.Store(page.LastSeq)
	a.setReplConnected(true)
	// A page that leaves us behind the primary's head means sustained lag:
	// surface it so dashboards see the gap before it becomes an outage.
	if page.LastSeq > a.store.LastSeq() {
		a.publishReplSignal(core.SignalLag)
	}
	return nil
}

// bootstrap installs a full snapshot from the primary and persists it
// locally (when the follower store is durable) so a restart resumes by
// tailing instead of re-bootstrapping.
func (a *AM) bootstrap(client *http.Client) error {
	var snap core.ReplSnapshot
	if err := a.replGet(client, "/v1/replication/snapshot", &snap); err != nil {
		return err
	}
	if err := a.store.LoadReplicationSnapshot(snap); err != nil {
		return err
	}
	// The snapshot replaced the whole store; rebuild the in-memory group
	// directory, adopt any newer ring state the image carried, and flush
	// the compiled decision index to match it.
	a.groups.rebuild()
	a.restoreRing()
	if a.index != nil {
		a.index.reset()
	}
	a.replApplied.Add(int64(len(snap.Records)))
	a.replPrimarySeq.Store(snap.Seq)
	a.setReplConnected(true)
	if p := a.store.Path(); p != "" && a.store.Durable() {
		if err := a.store.Snapshot(p); err != nil {
			return fmt.Errorf("am: persist bootstrap snapshot: %w", err)
		}
	}
	return nil
}

// fetchWAL pulls one page of records after from, long-polling for wait.
func (a *AM) fetchWAL(client *http.Client, from int64, wait time.Duration) (core.ReplWALPage, error) {
	q := url.Values{
		"from":    {strconv.FormatInt(from, 10)},
		"wait_ms": {strconv.FormatInt(wait.Milliseconds(), 10)},
	}
	var page core.ReplWALPage
	err := a.replGet(client, "/v1/replication/wal?"+q.Encode(), &page)
	return page, err
}

// replGet performs one authenticated GET against the primary, decoding a
// 2xx body into out and non-2xx bodies into *core.APIError. The request
// carries the loop's context, so stopReplication aborts in-flight polls.
func (a *AM) replGet(client *http.Client, path string, out any) error {
	req, err := http.NewRequestWithContext(a.replCtx, http.MethodGet,
		strings.TrimSuffix(a.replCfg.PrimaryURL, "/")+path, nil)
	if err != nil {
		return fmt.Errorf("am: replication request: %w", err)
	}
	req.Header.Set("Authorization", "Bearer "+a.replCfg.Secret)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("am: replication fetch %s: %w", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return fmt.Errorf("am: replication read %s: %w", path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e core.APIError
		if json.Unmarshal(body, &e) == nil && e.Code != "" {
			return &e
		}
		return fmt.Errorf("am: replication fetch %s: status %d", path, resp.StatusCode)
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("am: replication decode %s: %w", path, err)
	}
	return nil
}
