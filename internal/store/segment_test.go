package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// Regression tests for WAL segmentation: rolling, compaction of sealed
// segments, replay ordering across files, and replication behaviour when
// a follower's resume point falls behind what segments still exist.

// smallSeg rolls after ~1KiB so a few dozen writes span several segments.
const smallSeg = 1 << 10

// fillSegments writes records until the store has at least want segments.
func fillSegments(t *testing.T, st *Store, want int) int {
	t.Helper()
	for i := 0; st.WALSegments() < want; i++ {
		if i > 10000 {
			t.Fatalf("never reached %d segments (at %d)", want, st.WALSegments())
		}
		if _, err := st.Put("doc", fmt.Sprintf("k%05d", i), map[string]string{
			"pad": "0123456789012345678901234567890123456789",
		}); err != nil {
			t.Fatal(err)
		}
	}
	return st.WALSegments()
}

func TestSegmentRollAndReplayAcrossBoundaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	st, err := Open(path, WithWALSegmentSize(smallSeg))
	if err != nil {
		t.Fatal(err)
	}
	fillSegments(t, st, 4)
	keys := st.List("doc")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 4 {
		t.Fatalf("segments on disk = %d, want >= 4", len(segs))
	}

	re, err := Open(path, WithWALSegmentSize(smallSeg))
	if err != nil {
		t.Fatalf("reopen across segments: %v", err)
	}
	defer re.Close()
	if got := len(re.List("doc")); got != len(keys) {
		t.Fatalf("replayed %d entities, want %d", got, len(keys))
	}
	// Replay must preserve versions (ordered application across files).
	for _, e := range keys {
		var v map[string]string
		ge, err := re.Get("doc", e.Key, &v)
		if err != nil || ge.Version != e.Version {
			t.Fatalf("key %s: version %d err %v, want version %d", e.Key, ge.Version, err, e.Version)
		}
	}
}

func TestSnapshotMidRollDeletesOnlySealedSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	st, err := Open(path, WithWALSegmentSize(smallSeg))
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	fillSegments(t, st, 3)

	before, err := listSegments(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	active := before[len(before)-1]
	sealed := before[:len(before)-1]

	if err := st.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	// Compaction deletes exactly the sealed files; the active segment
	// survives (truncated) and keeps receiving appends.
	for _, seg := range sealed {
		if _, err := os.Stat(seg.path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("sealed segment %s survived compaction (err=%v)", seg.path, err)
		}
	}
	fi, err := os.Stat(active.path)
	if err != nil {
		t.Fatalf("active segment deleted by compaction: %v", err)
	}
	if fi.Size() != 0 {
		t.Fatalf("active segment not truncated: %d bytes", fi.Size())
	}
	if n := st.WALSegments(); n != 1 {
		t.Fatalf("segments after compaction = %d, want 1", n)
	}

	// The log is still live: more writes roll fresh segments and replay.
	fillSegments(t, st, 2)
	count := len(st.List("doc"))
	re, err := Open(path, WithWALSegmentSize(smallSeg))
	if err != nil {
		t.Fatalf("reopen after mid-roll compaction: %v", err)
	}
	defer re.Close()
	if got := len(re.List("doc")); got != count {
		t.Fatalf("replayed %d entities, want %d", got, count)
	}
}

func TestFollowerTailsAcrossSegmentBoundary(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	primary, err := Open(path, WithWALSegmentSize(smallSeg))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	primary.EnableReplication(0)

	follower := New()
	// Interleave writes and tailing so the follower's resume point crosses
	// every roll, not just the final state.
	for primary.WALSegments() < 4 {
		for i := 0; i < 5; i++ {
			if _, err := primary.Put("doc", fmt.Sprintf("s%d-%d", primary.WALSegments(), i),
				map[string]string{"pad": "0123456789012345678901234567890123456789"}); err != nil {
				t.Fatal(err)
			}
		}
		replicateAll(t, primary, follower)
	}
	assertSameContents(t, primary, follower)
	if follower.LastSeq() != primary.LastSeq() {
		t.Fatalf("follower seq %d != primary %d", follower.LastSeq(), primary.LastSeq())
	}
}

func TestTruncatedFollowerRebootstrapsPastDeletedSegments(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	primary, err := Open(path, WithWALSegmentSize(smallSeg))
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	// A tiny in-memory window: a follower that pauses falls out of it.
	primary.EnableReplication(8)

	follower := New()
	if _, err := primary.Put("doc", "seed", "v"); err != nil {
		t.Fatal(err)
	}
	replicateAll(t, primary, follower)
	resume := follower.LastSeq()

	// While the follower is away: enough writes to roll segments, then a
	// compaction that deletes the sealed ones the follower never saw.
	fillSegments(t, primary, 4)
	if err := primary.Snapshot(path); err != nil {
		t.Fatal(err)
	}

	_, _, err = primary.TailSince(resume, 100)
	if !errors.Is(err, ErrReplicationTruncated) {
		t.Fatalf("tail after window loss: err = %v, want ErrReplicationTruncated", err)
	}
	// The recovery path: full snapshot install, then resume tailing.
	if err := follower.LoadReplicationSnapshot(primary.ReplicationSnapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Put("doc", "after-bootstrap", "v"); err != nil {
		t.Fatal(err)
	}
	replicateAll(t, primary, follower)
	assertSameContents(t, primary, follower)
	if !follower.Exists("doc", "seed") || !follower.Exists("doc", "after-bootstrap") {
		t.Fatal("zero-loss violated across re-bootstrap")
	}
}
