package loadgen

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/sim"
)

// The abusive-tenant isolation drill. One tenant (the abuser) floods the
// cluster with decisions and policy churn far past its per-tenant rate
// budget — from clients with 429 retries disabled, so every throttle
// surfaces — while a victim tenant homed on the SAME shard runs the
// standard paced mix. The scenario asserts the three properties the
// abuse controls promise an internet-facing AM:
//
//   - the abuser drowns: once over budget, at least abuseMinThrottleShare
//     of its requests answer rate_limited (429);
//   - the victim doesn't: its decision p99 under the flood stays within
//     abuseVictimSlack x its clean-run baseline (with a floor absorbing
//     smoke-run noise);
//   - nothing acknowledged is lost: every write either tenant saw
//     succeed — including the abuser's trickle of admitted writes — is
//     re-read afterwards.
//
// The cluster must be started with ScenarioExtraArgs("abusive_tenant"),
// which arms the limiter with tight pairing/session budgets and an
// effectively unlimited IP tier (all harness traffic shares 127.0.0.1).

const (
	// abuseFlooders is how many unpaced goroutines the abuser runs.
	abuseFlooders = 8
	// abusePace is the victim's inter-op target interval — the standard
	// mix is paced, the flood is not.
	abusePace = 200 * time.Millisecond
	// abuseMinThrottleShare is the minimum fraction of post-first-429
	// abuser requests that must be throttled.
	abuseMinThrottleShare = 0.95
	// abuseVictimSlack bounds the victim's under-flood decision p99 as a
	// multiple of its clean baseline; abuseVictimFloor absorbs the
	// smoke-sized baseline's noise (a 3ms baseline would otherwise make
	// a 7ms p99 a failure).
	abuseVictimSlack = 2.0
	abuseVictimFloor = 50 * time.Millisecond
)

// timedOp runs f as one op of ph and also returns its duration, so a
// phase mixing op kinds can keep a separate latency series for one kind.
func timedOp(ph *PhaseRec, f func() error) (time.Duration, error) {
	var d time.Duration
	err := ph.Op(func() error {
		t0 := time.Now()
		ferr := f()
		d = time.Since(t0)
		return ferr
	})
	return d, err
}

// isRateLimited reports whether err is the structured 429.
func isRateLimited(err error) bool {
	var ae *core.APIError
	return errors.As(err, &ae) && ae.Code == core.CodeRateLimited
}

// abuserClients builds shard-routed clients for the abuser with 429
// retries disabled: the flood must SEE its throttles, not absorb them.
func abuserClients(rig *Rig, or *sim.ClusterOwnerRig) (decider, manager *amclient.ClusterClient, err error) {
	seed := rig.ClientConfig()
	seed.Retry429 = -1
	decCfg := seed
	decCfg.PairingID, decCfg.Secret = or.Pairing.PairingID, or.Pairing.Secret
	if decider, err = amclient.NewCluster(decCfg); err != nil {
		return nil, nil, err
	}
	mgrCfg := seed
	mgrCfg.User = or.Owner
	if manager, err = amclient.NewCluster(mgrCfg); err != nil {
		return nil, nil, err
	}
	return decider, manager, nil
}

// AbusiveTenant floods the cluster from one over-budget tenant while a
// victim on the same shard runs the paced standard mix, asserting tenant
// isolation: abuser ≥95% throttled once over budget, victim p99 within
// slack of its clean baseline, zero acknowledged-write loss.
func AbusiveTenant(ctx context.Context, rig *Rig, opts Options) (*Recorder, error) {
	rec := &Recorder{Scenario: "abusive_tenant"}
	victim := rig.OwnersFor("abuse-victim", "shard-a", 1)[0]
	abuser := rig.OwnersFor("abuse-flood", "shard-a", 1)[0]
	rigs, err := setupOwners(ctx, rig, rec, "setup", []core.UserID{victim, abuser})
	if err != nil {
		return rec, err
	}
	vr, ar := rigs[victim], rigs[abuser]
	floodDecider, floodManager, err := abuserClients(rig, ar)
	if err != nil {
		return rec, err
	}

	var (
		ackedMu sync.Mutex
		acked   []ackedWrite
	)
	ack := func(owner core.UserID, id core.PolicyID) {
		ackedMu.Lock()
		acked = append(acked, ackedWrite{owner, id})
		ackedMu.Unlock()
	}

	// victimMix runs the victim's standard paced mix — decisions with an
	// every-10th policy write — and returns the decision latency series.
	victimMix := func(phase string) ([]time.Duration, error) {
		ph := rec.Phase(phase)
		defer ph.End()
		var decDurs []time.Duration
		for i := 0; i < opts.Ops; i++ {
			if err := checkCtx(ctx, phase); err != nil {
				return nil, err
			}
			var d time.Duration
			if i%10 == 9 {
				var id core.PolicyID
				d, err = timedOp(ph, func() error {
					var werr error
					id, werr = vr.WritePolicy(i)
					return werr
				})
				if err != nil {
					return nil, phaseErr(phase, err)
				}
				ack(victim, id)
			} else {
				if d, err = timedOp(ph, vr.Decide); err != nil {
					return nil, phaseErr(phase, err)
				}
				decDurs = append(decDurs, d)
			}
			if d < abusePace {
				time.Sleep(abusePace - d)
			}
		}
		return decDurs, nil
	}

	// Clean baseline: the victim alone on an armed but idle limiter.
	cleanDurs, err := victimMix("victim_clean")
	if err != nil {
		return rec, err
	}

	// The flood. Abuser goroutines hammer unpaced until the victim's
	// measured window ends; throttle accounting starts at the first 429
	// (the burst allowance before it is the limiter working as designed).
	floodPh := rec.Phase("abuse_flood")
	var (
		overBudget     atomic.Bool
		floodAttempts  atomic.Int64 // post-first-429 requests
		floodThrottled atomic.Int64 // ... of which answered 429
		stop           = make(chan struct{})
		wg             sync.WaitGroup
		floodMu        sync.Mutex
		floodDurs      []time.Duration
		floodErrs      int
	)
	decideQ := core.DecisionQuery{
		Host: rigHost, Realm: ar.Realm, Resource: "photo",
		Action: core.ActionRead, Token: ar.Token,
	}
	for g := 0; g < abuseFlooders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var durs []time.Duration
			errs := 0
			defer func() {
				floodMu.Lock()
				floodDurs = append(floodDurs, durs...)
				floodErrs += errs
				floodMu.Unlock()
			}()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				case <-ctx.Done():
					return
				default:
				}
				counted := overBudget.Load()
				t0 := time.Now()
				var err error
				if i%2 == 0 {
					_, err = floodDecider.Decide(abuser, decideQ)
				} else {
					var p policy.Policy
					p, err = floodManager.CreatePolicy(policy.Policy{
						Owner: abuser, Kind: policy.KindGeneral,
						Rules: []policy.Rule{{
							Effect:   policy.EffectPermit,
							Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: fmt.Sprintf("flood-%d-%d", g, i)}},
							Actions:  []core.Action{core.ActionRead},
						}},
					})
					if err == nil {
						ack(abuser, p.ID)
					}
				}
				durs = append(durs, time.Since(t0))
				throttled := isRateLimited(err)
				if err != nil {
					errs++
				}
				if throttled {
					overBudget.Store(true)
				}
				if counted {
					floodAttempts.Add(1)
					if throttled {
						floodThrottled.Add(1)
					}
				}
			}
		}(g)
	}

	// The victim's measured window runs concurrently with the flood —
	// the one deliberate phase overlap in the harness; both records keep
	// their own wall clocks.
	abuseDurs, vErr := victimMix("victim_under_abuse")
	close(stop)
	wg.Wait()
	floodPh.durs = floodDurs
	floodPh.Errors = floodErrs
	floodPh.End()
	if vErr != nil {
		return rec, vErr
	}

	// Assertion 1: the abuser drowned.
	attempts, throttled := floodAttempts.Load(), floodThrottled.Load()
	if !overBudget.Load() || attempts == 0 {
		return rec, fmt.Errorf("loadgen: flood of %d requests never went over budget; the limiter is not armed", len(floodDurs))
	}
	share := float64(throttled) / float64(attempts)
	rig.Logf("loadgen: abuser: %d flood requests post-budget, %d throttled (%.1f%%)", attempts, throttled, 100*share)
	if share < abuseMinThrottleShare {
		return rec, fmt.Errorf("loadgen: abuser throttle share %.3f < %.2f (%d of %d requests 429)",
			share, abuseMinThrottleShare, throttled, attempts)
	}

	// Assertion 2: the victim didn't feel it.
	cleanP99, abuseP99 := sortedP99(cleanDurs), sortedP99(abuseDurs)
	bound := time.Duration(abuseVictimSlack * float64(cleanP99))
	if floor := abuseVictimFloor; bound < floor {
		bound = floor
	}
	rig.Logf("loadgen: victim decision p99: clean %s, under abuse %s (bound %s)", cleanP99, abuseP99, bound)
	if abuseP99 > bound {
		return rec, fmt.Errorf("loadgen: victim decision p99 %s under abuse exceeds %s (clean baseline %s)",
			abuseP99, bound, cleanP99)
	}

	// The limiter's own gauges must corroborate what the wire showed.
	if err := checkAbuseGauges(rig); err != nil {
		return rec, err
	}

	// Assertion 3: zero acknowledged loss, abuser's admitted writes
	// included — throttling must shed load, never durability.
	return rec, verifyAcked(ctx, rec, "verify", acked, func(w ackedWrite) error {
		_, err := rigs[w.owner].Manager.GetPolicy(w.owner, w.id)
		return err
	})
}

// sortedP99 is quantile() over an unsorted latency series.
func sortedP99(durs []time.Duration) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return quantile(sorted, 0.99)
}

// checkAbuseGauges reads the flooded primary's healthz and asserts the
// abuse gauges are present and recorded the flood.
func checkAbuseGauges(rig *Rig) error {
	node := rig.Nodes["a-primary"]
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(node.URL + "/v1/healthz")
	if err != nil {
		return fmt.Errorf("loadgen: healthz after flood: %w", err)
	}
	defer resp.Body.Close()
	var h core.HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fmt.Errorf("loadgen: healthz after flood: %w", err)
	}
	if h.Abuse == nil {
		return errors.New("loadgen: flooded node's healthz carries no abuse gauges")
	}
	if h.Abuse.Throttled < 1 {
		return fmt.Errorf("loadgen: flooded node's gauges saw %d throttles; the wire saw thousands", h.Abuse.Throttled)
	}
	rig.Logf("loadgen: a-primary abuse gauges: allowed=%d throttled=%d buckets=%d top-share=%.2f",
		h.Abuse.Allowed, h.Abuse.Throttled, h.Abuse.Buckets, h.Abuse.TopTenantShare)
	return nil
}
