// Package umastate implements the UMA authorization-state variant the
// paper contrasts with its push-token design: "in UMA a Requester does not
// obtain a token from AM but rather establishes an authorization state for
// a particular realm at a particular Host. This state is then checked by a
// Host when it queries AM for an access control decision" (Section V.B.3 /
// VIII).
//
// The Requester calls EstablishState once per (host, realm) and presents
// the opaque handle to the Host; the Host includes the handle in each
// decision query. Compared with the push-token model the AM carries the
// state, and the Host cannot verify anything locally.
package umastate

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/pep"
)

// RequesterClient establishes authorization states at an AM.
type RequesterClient struct {
	ID      core.RequesterID
	Subject core.UserID
	HTTP    *http.Client
}

// EstablishState runs the UMA-style pre-authorization at the AM, returning
// the state handle to present to the Host.
func (c *RequesterClient) EstablishState(amURL string, host core.HostID, realm core.RealmID, res core.ResourceID, action core.Action) (string, error) {
	httpClient := c.HTTP
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	req := core.TokenRequest{
		Requester: c.ID,
		Subject:   c.Subject,
		Host:      host,
		Realm:     realm,
		Resource:  res,
		Action:    action,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("umastate: encode: %w", err)
	}
	resp, err := httpClient.Post(strings.TrimSuffix(amURL, "/")+"/state", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", fmt.Errorf("umastate: establish: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return "", fmt.Errorf("%w: state refused: %s", core.ErrAccessDenied, strings.TrimSpace(string(msg)))
	}
	var out struct {
		Handle string `json:"handle"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("umastate: decode: %w", err)
	}
	return out.Handle, nil
}

// Enforcer is the Host-side checker for the state model.
type Enforcer struct {
	host   core.HostID
	client *http.Client
	tracer *core.Tracer
}

// New constructs a state-model enforcer.
func New(host core.HostID, client *http.Client, tracer *core.Tracer) *Enforcer {
	if client == nil {
		client = http.DefaultClient
	}
	return &Enforcer{host: host, client: client, tracer: tracer}
}

// stateDecisionRequest mirrors the AM's wire format.
type stateDecisionRequest struct {
	Query  core.DecisionQuery `json:"query"`
	Handle string             `json:"handle"`
}

// Check queries the AM with the Requester's state handle.
func (e *Enforcer) Check(p pep.Pairing, handle string, realm core.RealmID, res core.ResourceID, action core.Action) (bool, error) {
	req := stateDecisionRequest{
		Query: core.DecisionQuery{
			PairingID: p.PairingID,
			Host:      e.host,
			Realm:     realm,
			Resource:  res,
			Action:    action,
		},
		Handle: handle,
	}
	e.tracer.Record(core.PhaseObtainingDecision, "host:"+string(e.host), "am",
		"state-decision-query", string(res))
	body, err := json.Marshal(req)
	if err != nil {
		return false, fmt.Errorf("umastate: encode: %w", err)
	}
	httpReq, err := http.NewRequest(http.MethodPost, p.AMURL+"/api/decision/state", bytes.NewReader(body))
	if err != nil {
		return false, fmt.Errorf("umastate: build request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if err := httpsig.Sign(httpReq, p.PairingID, p.Secret); err != nil {
		return false, fmt.Errorf("umastate: sign: %w", err)
	}
	resp, err := e.client.Do(httpReq)
	if err != nil {
		return false, fmt.Errorf("umastate: query: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return false, fmt.Errorf("umastate: status %d: %s", resp.StatusCode, msg)
	}
	var dec core.DecisionResponse
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		return false, fmt.Errorf("umastate: decode: %w", err)
	}
	return dec.Permit(), nil
}
