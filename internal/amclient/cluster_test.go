package amclient_test

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/policy"
)

// clusterWorld is a running two-shard cluster: one AM per shard behind a
// request-counting httptest server, both built from the same ring.
type clusterWorld struct {
	ring   *cluster.Ring
	shards []core.ShardInfo
	ams    map[string]*am.AM
	srvs   map[string]*httptest.Server
	calls  map[string]*atomic.Int64
	ownerA core.UserID // hashes to shard-a
	ownerB core.UserID // hashes to shard-b
}

const clusterTestSecret = "cluster-test-secret"

func newClusterWorld(t *testing.T) *clusterWorld {
	t.Helper()
	w := &clusterWorld{
		ams:   make(map[string]*am.AM),
		srvs:  make(map[string]*httptest.Server),
		calls: make(map[string]*atomic.Int64),
	}
	// Servers must exist before the ring (it names their URLs), so start
	// them on deferred handlers and wire the AMs after.
	handlers := make(map[string]*http.Handler)
	for _, name := range []string{"shard-a", "shard-b"} {
		var h http.Handler
		handlers[name] = &h
		counter := &atomic.Int64{}
		w.calls[name] = counter
		hp := handlers[name]
		srv := httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
			counter.Add(1)
			(*hp).ServeHTTP(rw, r)
		}))
		w.srvs[name] = srv
		t.Cleanup(srv.Close)
		w.shards = append(w.shards, core.ShardInfo{
			Name: name, Primary: srv.URL, Endpoints: []string{srv.URL},
		})
	}
	ring, err := cluster.New(w.shards, 64)
	if err != nil {
		t.Fatal(err)
	}
	w.ring = ring
	key := []byte("cluster-test-token-key-012345678")
	for _, s := range w.shards {
		a := am.New(am.Config{
			Name: "am-" + s.Name, BaseURL: s.Primary, TokenKey: key,
			Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: clusterTestSecret},
			Cluster:     am.ClusterConfig{Shard: s.Name, Ring: ring},
		})
		t.Cleanup(func() { a.Close() })
		w.ams[s.Name] = a
		*handlers[s.Name] = a.Handler()
	}
	for i := 0; w.ownerA == "" || w.ownerB == ""; i++ {
		owner := core.UserID(fmt.Sprintf("owner-%d", i))
		switch ring.Owner(owner).Name {
		case "shard-a":
			if w.ownerA == "" {
				w.ownerA = owner
			}
		case "shard-b":
			if w.ownerB == "" {
				w.ownerB = owner
			}
		}
	}
	return w
}

func permitPolicy(owner core.UserID) policy.Policy {
	return policy.Policy{
		Owner: owner, Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
		}},
	}
}

func TestClusterClientRoutesByOwner(t *testing.T) {
	w := newClusterWorld(t)
	cc, err := amclient.NewCluster(amclient.Config{BaseURL: w.srvs["shard-a"].URL, User: w.ownerB})
	if err != nil {
		t.Fatal(err)
	}
	w.calls["shard-a"].Store(0)
	w.calls["shard-b"].Store(0)
	if _, err := cc.CreatePolicy(permitPolicy(w.ownerB)); err != nil {
		t.Fatal(err)
	}
	// ownerB's policy create must land on shard-b directly — no bounce
	// through the seed endpoint.
	if got := w.calls["shard-a"].Load(); got != 0 {
		t.Fatalf("shard-a saw %d calls for a shard-b owner", got)
	}
	if got := w.calls["shard-b"].Load(); got != 1 {
		t.Fatalf("shard-b saw %d calls, want 1", got)
	}
}

// migrate pins owner to shard-b on both AMs (state already present or
// irrelevant for the scenario under test).
func (w *clusterWorld) migrate(t *testing.T, owner core.UserID) {
	t.Helper()
	if err := w.ams["shard-b"].SetOwnerShard(owner, "shard-b"); err != nil {
		t.Fatal(err)
	}
	if err := w.ams["shard-a"].SetOwnerShard(owner, "shard-b"); err != nil {
		t.Fatal(err)
	}
}

func TestClusterClientChasesHintOnceAndRefreshes(t *testing.T) {
	w := newClusterWorld(t)
	// The client learns the ring while ownerA still lives on shard-a.
	cc, err := amclient.NewCluster(amclient.Config{BaseURL: w.srvs["shard-a"].URL, User: w.ownerA})
	if err != nil {
		t.Fatal(err)
	}
	// Migrate ownerA's ownership to shard-b behind the client's back.
	w.migrate(t, w.ownerA)

	w.calls["shard-a"].Store(0)
	w.calls["shard-b"].Store(0)
	if _, err := cc.CreatePolicy(permitPolicy(w.ownerA)); err != nil {
		t.Fatalf("stale-ring call failed despite hint: %v", err)
	}
	// One bounced attempt on shard-a, then the ring refresh (served by the
	// hinted shard-b) and the chased retry on shard-b.
	if got := w.calls["shard-a"].Load(); got != 1 {
		t.Fatalf("shard-a saw %d calls, want exactly the one bounce", got)
	}

	// The refresh must stick: the next call goes straight to shard-b.
	w.calls["shard-a"].Store(0)
	w.calls["shard-b"].Store(0)
	if _, err := cc.CreatePolicy(permitPolicy(w.ownerA)); err != nil {
		t.Fatal(err)
	}
	if got := w.calls["shard-a"].Load(); got != 0 {
		t.Fatalf("shard-a saw %d calls after refresh, want 0", got)
	}
}

func TestClusterClientChasesAtMostOnce(t *testing.T) {
	w := newClusterWorld(t)
	cc, err := amclient.NewCluster(amclient.Config{BaseURL: w.srvs["shard-a"].URL, User: w.ownerA})
	if err != nil {
		t.Fatal(err)
	}
	// A half-flipped migration: shard-a disclaims ownerA (override → b)
	// but shard-b was never told to accept (its ring still maps ownerA to
	// shard-a). Both shards now answer wrong_shard pointing at each other;
	// the client must chase once and surface the error, not ping-pong.
	if err := w.ams["shard-a"].SetOwnerShard(w.ownerA, "shard-b"); err != nil {
		t.Fatal(err)
	}
	_, err = cc.CreatePolicy(permitPolicy(w.ownerA))
	if ws := wrongShard(err); ws == nil {
		t.Fatalf("want wrong_shard after a single chase, got %v", err)
	}
}

func TestClusterClientOwnerWithNoShard(t *testing.T) {
	w := newClusterWorld(t)
	cc, err := amclient.NewCluster(amclient.Config{BaseURL: w.srvs["shard-a"].URL, User: w.ownerA})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a ring naming a shard with no endpoints: every owner that
	// hashes there is unroutable, reported per call rather than breaking
	// the client as a whole.
	info := cc.Info()
	for i := range info.Shards {
		if info.Shards[i].Name == w.ring.Owner(w.ownerA).Name {
			info.Shards[i].Primary = ""
			info.Shards[i].Endpoints = nil
		}
	}
	if err := cc.Install(info); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.For(w.ownerA); err == nil {
		t.Fatal("owner mapping to an endpoint-less shard resolved a client")
	}
	if _, err := cc.CreatePolicy(permitPolicy(w.ownerA)); err == nil {
		t.Fatal("call for an unroutable owner succeeded")
	}
	// Other owners keep working (through their own session identity).
	ccB, err := amclient.NewCluster(amclient.Config{BaseURL: w.srvs["shard-b"].URL, User: w.ownerB})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ccB.CreatePolicy(permitPolicy(w.ownerB)); err != nil {
		t.Fatalf("unrelated owner broken by the unroutable shard: %v", err)
	}
}

func TestMigrateOwnerMovesClosure(t *testing.T) {
	w := newClusterWorld(t)
	// Fixture on shard-a: pairing + realm + policy for ownerA.
	amA := w.ams["shard-a"]
	code, err := amA.ApprovePairing(core.PairingRequest{Host: "webpics", User: w.ownerA})
	if err != nil {
		t.Fatal(err)
	}
	pairing, err := amA.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := amA.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	pol, err := amA.CreatePolicy(w.ownerA, permitPolicy(w.ownerA))
	if err != nil {
		t.Fatal(err)
	}
	if err := amA.LinkGeneral(w.ownerA, "travel", pol.ID); err != nil {
		t.Fatal(err)
	}
	tok, err := amA.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}

	src := amclient.New(amclient.Config{BaseURL: w.srvs["shard-a"].URL, ReplSecret: clusterTestSecret})
	dst := amclient.New(amclient.Config{BaseURL: w.srvs["shard-b"].URL, ReplSecret: clusterTestSecret})
	rep, err := amclient.MigrateOwner(src, dst, w.ownerA, "shard-b", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotRecords == 0 || rep.FromShard != "shard-a" {
		t.Fatalf("report looks wrong: %+v", rep)
	}

	// The losing shard refuses the owner's decisions now…
	decider := amclient.New(amclient.Config{
		BaseURL: w.srvs["shard-a"].URL, PairingID: pairing.PairingID, Secret: pairing.Secret,
	})
	q := core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo",
		Action: core.ActionRead, Token: tok.Token,
	}
	if _, err := decider.Decide(q); wrongShard(err) == nil {
		t.Fatalf("losing shard still serves decisions: %v", err)
	}
	// …and the gaining shard serves them from migrated state (shared
	// token key, migrated pairing secret and grant).
	decider2 := amclient.New(amclient.Config{
		BaseURL: w.srvs["shard-b"].URL, PairingID: pairing.PairingID, Secret: pairing.Secret,
	})
	dec, err := decider2.Decide(q)
	if err != nil || dec.Decision != "permit" {
		t.Fatalf("gaining shard: dec=%+v err=%v", dec, err)
	}

	// Bad target shard name is refused up front.
	if _, err := amclient.MigrateOwner(src, dst, w.ownerB, "shard-x", nil); err == nil {
		t.Fatal("migration to an unknown shard accepted")
	}
}

// wrongShard extracts a wrong_shard APIError, nil for anything else (the
// external-test mirror of the package's unexported helper).
func wrongShard(err error) *core.APIError {
	var ae *core.APIError
	if errors.As(err, &ae) && ae.Code == core.CodeWrongShard {
		return ae
	}
	return nil
}
