package loadgen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"umac/internal/amclient"
	"umac/internal/sim"
)

// The TestLoadgen* tests are the scenario smokes: each spawns a real
// 3-process amserver cluster (built once in TestMain), runs one scenario
// at CI size, asserts zero acknowledged-write loss, and — when
// LOADGEN_OUT_DIR is set (the CI loadgen-smoke job) — writes the
// scenario's benchjson records there for the artifact upload and the
// schema diff against the committed BENCH_E17.json.

// testBinary is the amserver binary shared by every test in the package.
var testBinary string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "loadgen-bin-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
	testBinary, err = BuildServer(context.Background(), dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.RemoveAll(dir)
		os.Exit(1)
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// startRig spawns a fresh cluster for one test and tears it down after.
// extraArgs reach every node's flag list (ScenarioExtraArgs).
func startRig(t *testing.T, extraArgs ...string) *Rig {
	t.Helper()
	ctx, cancel := context.WithTimeout(t.Context(), 30*time.Second)
	defer cancel()
	rig, err := StartCluster(ctx, testBinary, t.TempDir(), t.Logf, extraArgs...)
	if err != nil {
		t.Fatalf("start cluster: %v", err)
	}
	t.Cleanup(rig.Stop)
	return rig
}

// runScenarioSmoke is the shared body of the scenario smokes.
func runScenarioSmoke(t *testing.T, name string) {
	if testing.Short() {
		t.Skip("loadgen scenarios spawn real server processes")
	}
	sc, ok := Scenarios[name]
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	ctx, cancel := context.WithTimeout(t.Context(), 4*time.Minute)
	defer cancel()
	rig := startRig(t, ScenarioExtraArgs(name)...)

	rec, err := sc(ctx, rig, SmokeOptions())
	if err != nil {
		t.Fatalf("scenario %s: %v", name, err)
	}
	if lost := rec.TotalLost(); lost != 0 {
		t.Fatalf("scenario %s lost %d acknowledged writes", name, lost)
	}
	recs := rec.Records()
	if len(recs) < 3 {
		t.Fatalf("scenario %s emitted only %d records; expected per-phase coverage", name, len(recs))
	}
	for _, r := range recs {
		if r.N <= 0 {
			t.Errorf("record %s ran zero ops", r.Name)
		}
		if r.P50Ns > r.P99Ns {
			t.Errorf("record %s: p50 %d > p99 %d", r.Name, r.P50Ns, r.P99Ns)
		}
		if r.OpsPerSec <= 0 {
			t.Errorf("record %s reports no throughput", r.Name)
		}
		t.Logf("%s: n=%d p50=%s p99=%s %.1f ops/s errs=%d",
			r.Name, r.N, time.Duration(r.P50Ns), time.Duration(r.P99Ns), r.OpsPerSec, r.Errors)
	}
	if dir := os.Getenv("LOADGEN_OUT_DIR"); dir != "" {
		path := filepath.Join(dir, name+".json")
		if err := WriteRecords(path, recs); err != nil {
			t.Fatalf("write records: %v", err)
		}
		t.Logf("records written to %s", path)
	}
}

func TestLoadgenZipfHotOwner(t *testing.T)    { runScenarioSmoke(t, "zipf_hot_owner") }
func TestLoadgenPairingChurn(t *testing.T)    { runScenarioSmoke(t, "pairing_churn") }
func TestLoadgenDelegationChain(t *testing.T) { runScenarioSmoke(t, "delegation_chain") }
func TestLoadgenKillMigration(t *testing.T)   { runScenarioSmoke(t, "kill_migration") }
func TestLoadgenConsentStorm(t *testing.T)    { runScenarioSmoke(t, "consent_storm") }
func TestLoadgenRingDouble(t *testing.T)      { runScenarioSmoke(t, "ring_double") }
func TestLoadgenKillRebalance(t *testing.T)   { runScenarioSmoke(t, "kill_rebalance") }
func TestLoadgenAbusiveTenant(t *testing.T)   { runScenarioSmoke(t, "abusive_tenant") }

// TestLoadgenAuditPagination drives >1000 audited operations for one
// owner against the spawned cluster, then walks the audit log with the
// X-Next-Offset pagination frame and asserts the walk covers the full
// set exactly once — no duplicates, no gaps, and a final offset of -1.
// Regression guard for the PR 3 off-by-page offset bug, now under real
// HTTP and real load.
func TestLoadgenAuditPagination(t *testing.T) {
	if testing.Short() {
		t.Skip("loadgen scenarios spawn real server processes")
	}
	ctx, cancel := context.WithTimeout(t.Context(), 4*time.Minute)
	defer cancel()
	rig := startRig(t)

	owner := rig.OwnersFor("pager", "shard-a", 1)[0]
	or, err := sim.SetupClusterOwner(rig.ClientConfig(), owner)
	if err != nil {
		t.Fatalf("setup owner: %v", err)
	}
	const decisions = 1050
	for i := 0; i < decisions; i++ {
		if err := ctx.Err(); err != nil {
			t.Fatalf("audit load: %v", err)
		}
		if err := or.Decide(); err != nil {
			t.Fatalf("decision %d: %v", i, err)
		}
	}

	filter := amclient.AuditFilter{Owner: owner}
	// An oversized request must be clamped to the server's MaxPageLimit
	// — and the frame must say so: the full total, a mid-set next offset.
	clamped, frame, err := or.Manager.AuditPage(owner, filter, amclient.Page{Limit: decisions * 2})
	if err != nil {
		t.Fatalf("clamped fetch: %v", err)
	}
	total := frame.Total
	if total <= 1000 {
		t.Fatalf("only %d audit events; load was supposed to produce >1000", total)
	}
	if len(clamped) >= total {
		t.Fatalf("oversized fetch returned %d of %d events; MaxPageLimit clamp is gone", len(clamped), total)
	}
	if frame.NextOffset != len(clamped) {
		t.Fatalf("clamped fetch: X-Next-Offset %d, want %d", frame.NextOffset, len(clamped))
	}

	// Walk the full set at a given page size, asserting the frame headers
	// advance coherently and the walk terminates.
	walk := func(pageSize int) []int64 {
		var seqs []int64
		offset := 0
		for pages := 0; ; pages++ {
			if pages > 2*total/pageSize+2 {
				t.Fatalf("pagination (limit %d) never terminated after %d pages", pageSize, pages)
			}
			events, frame, err := or.Manager.AuditPage(owner, filter, amclient.Page{Offset: offset, Limit: pageSize})
			if err != nil {
				t.Fatalf("page at offset %d: %v", offset, err)
			}
			if frame.Total != total {
				t.Fatalf("page at offset %d: X-Total-Count drifted to %d (want %d)", offset, frame.Total, total)
			}
			for _, e := range events {
				seqs = append(seqs, e.Seq)
			}
			if frame.NextOffset == -1 {
				break
			}
			if frame.NextOffset <= offset {
				t.Fatalf("X-Next-Offset %d did not advance past %d", frame.NextOffset, offset)
			}
			offset = frame.NextOffset
		}
		return seqs
	}

	walked := walk(64)
	if len(walked) != total {
		t.Fatalf("page walk yielded %d events, X-Total-Count says %d", len(walked), total)
	}
	seen := make(map[int64]bool, len(walked))
	for i, seq := range walked {
		if seen[seq] {
			t.Fatalf("duplicate event seq %d in page walk", seq)
		}
		seen[seq] = true
		if i > 0 && walked[i-1] >= seq {
			t.Fatalf("page walk out of order at index %d: %d >= %d", i, walked[i-1], seq)
		}
	}

	// A walk at a different page size must reproduce the identical
	// sequence — dup/gap freedom cannot depend on page-boundary luck.
	other := walk(striding)
	if len(other) != len(walked) {
		t.Fatalf("walks disagree on size: %d (limit %d) vs %d (limit 64)", len(other), striding, len(walked))
	}
	for i := range other {
		if other[i] != walked[i] {
			t.Fatalf("walks diverge at index %d: %d != %d", i, other[i], walked[i])
		}
	}
}

// striding is the second page size of the audit walk cross-check — prime,
// so its page boundaries never align with the 64-sized walk's.
const striding = 97
