package amclient

// In-package tests for the client's rate_limited (429) backoff: the sleep
// and jitter hooks are injected so the retry loop runs deterministically
// and instantly. The contract under test: honor the server's Retry-After
// hint, fall back to jittered exponential backoff without one, retry the
// SAME endpoint (a tenant budget follows the tenant, not the node), stop
// after the bounded count or sleep budget, and never let a 429 burn the
// ClusterClient's single wrong_shard chase.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"umac/internal/core"
)

// rateLimitedAnswer writes the structured 429 envelope; hintSeconds <= 0
// omits both the header and the body field.
func rateLimitedAnswer(w http.ResponseWriter, hintSeconds int) {
	if hintSeconds > 0 {
		w.Header().Set("Retry-After", fmt.Sprint(hintSeconds))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusTooManyRequests)
	e := core.APIError{Code: core.CodeRateLimited, Status: http.StatusTooManyRequests,
		Message: "rate budget exhausted", Retryable: true}
	if hintSeconds > 0 {
		e.RetryAfterSeconds = hintSeconds
	}
	json.NewEncoder(w).Encode(&e)
}

// retryClient wires a client to srv with recording sleep and fixed jitter.
func retryClient(srv *httptest.Server, cfg Config) (*Client, *[]time.Duration) {
	cfg.BaseURL = srv.URL
	c := New(cfg)
	sleeps := &[]time.Duration{}
	c.sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	c.jitter = func() float64 { return 1 } // deterministic: the full wait
	return c, sleeps
}

func TestRetry429HonorsServerHint(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			rateLimitedAnswer(w, 7)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c, sleeps := retryClient(srv, Config{RetryBudget: time.Minute})
	if err := c.get("/ping", nil, nil); err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 429s, one success)", calls.Load())
	}
	if len(*sleeps) != 2 {
		t.Fatalf("client slept %d times, want 2", len(*sleeps))
	}
	for i, d := range *sleeps {
		if d != 7*time.Second {
			t.Fatalf("sleep %d = %v, want the server's 7s hint", i, d)
		}
	}
}

func TestRetry429ExponentialBackoffWithoutHint(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 3 {
			rateLimitedAnswer(w, 0)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	c, sleeps := retryClient(srv, Config{})
	if err := c.get("/ping", nil, nil); err != nil {
		t.Fatalf("call failed despite retries: %v", err)
	}
	want := []time.Duration{retryBaseWait, 2 * retryBaseWait, 4 * retryBaseWait}
	if len(*sleeps) != len(want) {
		t.Fatalf("slept %v, want %v", *sleeps, want)
	}
	for i := range want {
		if (*sleeps)[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (exponential from %v)", i, (*sleeps)[i], want[i], retryBaseWait)
		}
	}
}

func TestRetry429JitterStaysBounded(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rateLimitedAnswer(w, 10)
	}))
	defer srv.Close()
	for _, j := range []float64{0, 0.25, 0.5, 0.999} {
		c, sleeps := retryClient(srv, Config{Retry429: 1, RetryBudget: time.Minute})
		c.jitter = func() float64 { return j }
		c.get("/ping", nil, nil) // one retry then surface
		if len(*sleeps) != 1 {
			t.Fatalf("jitter %v: slept %d times, want 1", j, len(*sleeps))
		}
		d := (*sleeps)[0]
		if d < 5*time.Second || d > 10*time.Second {
			t.Fatalf("jitter %v: wait %v outside [hint/2, hint] = [5s, 10s]", j, d)
		}
	}
}

func TestRetry429FailsFastPastBudget(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		rateLimitedAnswer(w, 30)
	}))
	defer srv.Close()
	c, sleeps := retryClient(srv, Config{RetryBudget: time.Second})
	err := c.get("/ping", nil, nil)
	var ae *core.APIError
	if !asAPIError(err, &ae) || ae.Code != core.CodeRateLimited {
		t.Fatalf("err = %v, want the surfaced rate_limited APIError", err)
	}
	// The first wait is clamped to the whole 1s budget; once it is spent
	// no further retry happens, however many the count would still allow.
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2 (initial + the single in-budget retry)", calls.Load())
	}
	var total time.Duration
	for _, d := range *sleeps {
		total += d
	}
	if total > time.Second {
		t.Fatalf("total sleep %v exceeds the 1s budget", total)
	}
}

func TestRetry429ExhaustsBoundedCount(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		rateLimitedAnswer(w, 0)
	}))
	defer srv.Close()
	c, _ := retryClient(srv, Config{})
	err := c.get("/ping", nil, nil)
	var ae *core.APIError
	if !asAPIError(err, &ae) || ae.Code != core.CodeRateLimited {
		t.Fatalf("err = %v, want rate_limited after exhausting retries", err)
	}
	if calls.Load() != defaultRetry429+1 {
		t.Fatalf("server saw %d calls, want %d (initial + default retries)", calls.Load(), defaultRetry429+1)
	}
}

func TestRetry429DisabledByNegativeConfig(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		rateLimitedAnswer(w, 1)
	}))
	defer srv.Close()
	c, sleeps := retryClient(srv, Config{Retry429: -1})
	err := c.get("/ping", nil, nil)
	var ae *core.APIError
	if !asAPIError(err, &ae) || ae.Code != core.CodeRateLimited {
		t.Fatalf("err = %v, want an immediate rate_limited", err)
	}
	if calls.Load() != 1 || len(*sleeps) != 0 {
		t.Fatalf("calls = %d, sleeps = %v; want exactly one call and no sleeping", calls.Load(), *sleeps)
	}
}

func TestRetry429DoesNotFailOver(t *testing.T) {
	// Two endpoints: the first answers 429 then succeeds; the second
	// must never be contacted — a tenant budget is not a node failure.
	var aCalls, bCalls atomic.Int32
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if aCalls.Add(1) == 1 {
			rateLimitedAnswer(w, 0)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srvA.Close()
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bCalls.Add(1)
		w.Write([]byte(`{}`))
	}))
	defer srvB.Close()
	c, _ := retryClient(srvA, Config{Endpoints: []string{srvB.URL}})
	if err := c.get("/ping", nil, nil); err != nil {
		t.Fatal(err)
	}
	if aCalls.Load() != 2 || bCalls.Load() != 0 {
		t.Fatalf("endpoint calls = %d/%d, want 2 on the throttling node and 0 elsewhere", aCalls.Load(), bCalls.Load())
	}
}

func TestDecodeErrorParsesRetryAfterHeader(t *testing.T) {
	// The header alone must populate the hint when the envelope omits it.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "42")
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		w.Write([]byte(`{"code":"rate_limited","status":429,"message":"slow down"}`))
	}))
	defer srv.Close()
	c, _ := retryClient(srv, Config{Retry429: -1})
	err := c.get("/ping", nil, nil)
	var ae *core.APIError
	if !asAPIError(err, &ae) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if ae.RetryAfterSeconds != 42 {
		t.Fatalf("RetryAfterSeconds = %d, want 42 from the header", ae.RetryAfterSeconds)
	}
}

func TestCluster429DoesNotBurnWrongShardChase(t *testing.T) {
	// shard-a throttles once, then discloses the owner moved to shard-b.
	// The client must absorb the 429 with a same-shard retry and still
	// have its single wrong_shard chase available for the real redirect.
	var aDecisions, bDecisions atomic.Int32
	var srvA, srvB *httptest.Server
	clusterInfo := func(self string) core.ClusterInfo {
		return core.ClusterInfo{
			Shard: self, RingVersion: 1, Vnodes: 4,
			Shards: []core.ShardInfo{
				{Name: "shard-a", Primary: srvA.URL},
				{Name: "shard-b", Primary: srvB.URL},
			},
		}
	}
	srvA = httptest.NewUnstartedServer(nil)
	srvB = httptest.NewUnstartedServer(nil)
	srvA.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/cluster":
			info := clusterInfo("shard-a")
			// Pin the owner here initially so the scenario starts on the
			// throttling shard regardless of where the hash would land.
			info.Overrides = map[string]string{"alice": "shard-a"}
			json.NewEncoder(w).Encode(info)
		case "/v1/api/decision":
			switch aDecisions.Add(1) {
			case 1:
				rateLimitedAnswer(w, 0)
			default:
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusMisdirectedRequest)
				json.NewEncoder(w).Encode(&core.APIError{
					Code: core.CodeWrongShard, Status: http.StatusMisdirectedRequest,
					Message: "owner lives on shard-b", Shard: srvB.URL,
				})
			}
		default:
			http.NotFound(w, r)
		}
	})
	srvB.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/cluster":
			info := clusterInfo("shard-b")
			// The refreshed ring pins the owner to shard-b so the
			// re-resolved route actually lands here.
			info.Overrides = map[string]string{"alice": "shard-b"}
			json.NewEncoder(w).Encode(info)
		case "/v1/api/decision":
			bDecisions.Add(1)
			json.NewEncoder(w).Encode(core.DecisionResponse{Decision: core.DecisionPermit.String()})
		default:
			http.NotFound(w, r)
		}
	})
	srvA.Start()
	defer srvA.Close()
	srvB.Start()
	defer srvB.Close()

	cc, err := NewCluster(Config{BaseURL: srvA.URL})
	if err != nil {
		t.Fatal(err)
	}
	// Make the inner per-shard clients deterministic: no real sleeping.
	for _, c := range cc.clients {
		c.sleep = func(time.Duration) {}
		c.jitter = func() float64 { return 1 }
	}
	resp, err := cc.Decide("alice", core.DecisionQuery{})
	if err != nil {
		t.Fatalf("Decide failed: %v", err)
	}
	if resp.Decision != core.DecisionPermit.String() {
		t.Fatalf("decision = %q, want permit from shard-b", resp.Decision)
	}
	if aDecisions.Load() != 2 {
		t.Fatalf("shard-a saw %d decision calls, want 2 (429 + wrong_shard)", aDecisions.Load())
	}
	if bDecisions.Load() != 1 {
		t.Fatalf("shard-b saw %d decision calls, want 1 (the chased retry)", bDecisions.Load())
	}
}

// asAPIError extracts the structured envelope from an error chain.
func asAPIError(err error, target **core.APIError) bool {
	return errors.As(err, target)
}
