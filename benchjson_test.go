package umac_test

// Machine-readable benchmark output: passing -benchjson=PATH (after
// -args) makes the harness write ns/op per recorded benchmark as JSON when
// the run ends, so CI can archive the perf trajectory as an artifact
// instead of scraping log text:
//
//	go test -run '^$' -bench 'Decision|Cluster' -benchtime 1x . \
//	    -args -benchjson=BENCH_E16.json
//
// Benchmarks opt in by calling recordBench(b) first thing (in the leaf
// sub-benchmark, so every recorded name maps to one measurement).

import (
	"encoding/json"
	"flag"
	"os"
	"sort"
	"sync"
	"testing"
)

var benchJSONPath = flag.String("benchjson", "", "write ns/op per recorded benchmark as JSON to this path")

// benchResult is one benchmark measurement in the JSON artifact.
type benchResult struct {
	Name    string  `json:"name"`
	N       int     `json:"n"`
	NsPerOp float64 `json:"ns_per_op"`
}

var (
	benchMu      sync.Mutex
	benchResults = make(map[string]benchResult)
)

// recordBench registers the benchmark for the JSON artifact: at the end of
// each measured run its elapsed/N is recorded, the final (largest-N) run
// overwriting the calibration runs.
func recordBench(b *testing.B) {
	b.Cleanup(func() {
		if b.N == 0 {
			return
		}
		benchMu.Lock()
		defer benchMu.Unlock()
		benchResults[b.Name()] = benchResult{
			Name:    b.Name(),
			N:       b.N,
			NsPerOp: float64(b.Elapsed().Nanoseconds()) / float64(b.N),
		}
	})
}

// TestMain flushes the recorded measurements after the run.
func TestMain(m *testing.M) {
	flag.Parse()
	code := m.Run()
	if *benchJSONPath != "" {
		benchMu.Lock()
		out := make([]benchResult, 0, len(benchResults))
		for _, r := range benchResults {
			out = append(out, r)
		}
		benchMu.Unlock()
		sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(*benchJSONPath, data, 0o644)
		}
		if err != nil {
			println("benchjson:", err.Error())
			if code == 0 {
				code = 1
			}
		}
	}
	os.Exit(code)
}
