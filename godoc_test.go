package umac_test

// Documentation-drift enforcement (the docs counterpart of the route-drift
// test): every internal package must carry a package-level godoc comment,
// and every exported identifier of internal/core — the shared protocol
// vocabulary other packages and external readers navigate by — must carry
// a doc comment. Run by CI as its own step, so documentation cannot
// silently rot as the surface grows.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// parsePackages parses every non-test Go file under dir (recursively),
// returning dir→package mappings.
func parsePackages(t *testing.T, root string) map[string]*ast.Package {
	t.Helper()
	fset := token.NewFileSet()
	pkgs := make(map[string]*ast.Package)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		parsed, err := parser.ParseDir(fset, path, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments|parser.PackageClauseOnly)
		if err != nil {
			return err
		}
		for _, pkg := range parsed {
			pkgs[path] = pkg
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return pkgs
}

// TestGodocPackageComments fails for any internal package whose files all
// lack a "// Package x ..." comment.
func TestGodocPackageComments(t *testing.T) {
	for dir, pkg := range parsePackages(t, "internal") {
		documented := false
		for _, f := range pkg.Files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				documented = true
				break
			}
		}
		if !documented {
			t.Errorf("package %s (%s) has no package-level godoc comment — add one (\"// Package %s ...\")",
				pkg.Name, dir, pkg.Name)
		}
	}
}

// TestGodocExportedComments fails for any exported top-level identifier
// (type, func, method, const, var) in ANY internal package that carries
// no doc comment. A comment on a const/var group documents every spec
// inside it unless a spec carries its own. internal/core started the
// policy (it is the shared protocol vocabulary); the rest of internal/
// joined when the sharded-cluster work made the surface large enough that
// undocumented exports cost real navigation time.
func TestGodocExportedComments(t *testing.T) {
	var dirs []string
	err := filepath.WalkDir("internal", func(path string, d fs.DirEntry, err error) error {
		if err == nil && d.IsDir() {
			dirs = append(dirs, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		report := func(pos token.Pos, kind, name string) {
			t.Errorf("%s: exported %s %s has no doc comment", fset.Position(pos), kind, name)
		}
		for _, pkg := range pkgs {
			for _, f := range f2sorted(pkg.Files) {
				for _, decl := range f.Decls {
					switch d := decl.(type) {
					case *ast.FuncDecl:
						if !d.Name.IsExported() || !exportedReceiver(d) {
							continue
						}
						if d.Doc == nil {
							kind := "function"
							if d.Recv != nil {
								kind = "method"
							}
							report(d.Pos(), kind, d.Name.Name)
						}
					case *ast.GenDecl:
						groupDoc := d.Doc != nil
						for _, spec := range d.Specs {
							switch s := spec.(type) {
							case *ast.TypeSpec:
								if s.Name.IsExported() && !groupDoc && s.Doc == nil {
									report(s.Pos(), "type", s.Name.Name)
								}
							case *ast.ValueSpec:
								if groupDoc || s.Doc != nil || s.Comment != nil {
									continue
								}
								for _, n := range s.Names {
									if n.IsExported() {
										report(s.Pos(), "const/var", n.Name)
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// exportedReceiver reports whether a func decl is package-level or a
// method on an exported type (unexported receivers are internal detail).
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// f2sorted returns the files of a package in deterministic name order so
// failure output is stable.
func f2sorted(files map[string]*ast.File) []*ast.File {
	names := make([]string, 0, len(files))
	for name := range files {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]*ast.File, 0, len(names))
	for _, name := range names {
		out = append(out, files[name])
	}
	return out
}
