package am

import (
	"net"
	"net/http"

	"umac/internal/core"
	"umac/internal/webutil"
)

// This file wires the webutil token-bucket limiter into the AM's
// middleware stack. Three tiers, keyed by who the caller already proved
// to be: signed Host traffic by pairing ID, session (management) traffic
// by the authenticated actor, and the unauthenticated public routes by
// remote IP. Admission runs AFTER authentication — keys are verified
// identities, so a stranger cannot drain another tenant's bucket by
// spoofing a header — and each route charges a cost class, so one policy
// import weighs as much as a bursty run of decisions.

// Limiter tier names (the keys of core.AbuseHealth.Tiers).
const (
	tierPairing = "pairing"
	tierSession = "session"
	tierIP      = "ip"
)

// Route cost classes, in bucket tokens. The decision hot path stays
// cheap; PAP mutations weigh an order of magnitude more; import/export,
// audit walks and consent resolution — the routes that touch whole
// owner closures — weigh another notch. See docs/OPERATIONS.md ("Abuse
// controls") for sizing quotas against these.
const (
	costDecision  = 1
	costRead      = 2
	costMutation  = 10
	costExpensive = 25
)

// AbuseConfig enables and sizes the per-tenant rate limiter. Rates are
// cost units per second; bursts are bucket capacities (<= 0 defaults to
// 10x the rate). A tier with rate <= 0 stays unlimited; the zero value
// disables the limiter entirely.
type AbuseConfig struct {
	// PairingRate / PairingBurst budget the HMAC-signed Host channel,
	// keyed per pairing ID (decisions, protect).
	PairingRate  float64
	PairingBurst float64
	// SessionRate / SessionBurst budget the session-authenticated
	// management surface, keyed per authenticated user.
	SessionRate  float64
	SessionBurst float64
	// IPRate / IPBurst budget the unauthenticated public routes (token,
	// pair/exchange, consent stream), keyed per remote IP.
	IPRate  float64
	IPBurst float64
}

// enabled reports whether any tier is configured.
func (c AbuseConfig) enabled() bool {
	return c.PairingRate > 0 || c.SessionRate > 0 || c.IPRate > 0
}

// newLimiter builds the configured limiter (nil when disabled).
func newLimiter(c AbuseConfig) *webutil.RateLimiter {
	if !c.enabled() {
		return nil
	}
	return webutil.NewRateLimiter(nil,
		webutil.TierConfig{Name: tierPairing, Rate: c.PairingRate, Burst: c.PairingBurst},
		webutil.TierConfig{Name: tierSession, Rate: c.SessionRate, Burst: c.SessionBurst},
		webutil.TierConfig{Name: tierIP, Rate: c.IPRate, Burst: c.IPBurst},
	)
}

// allow charges cost against the (tier, key) bucket and, when the budget
// is exhausted, answers the structured rate_limited envelope (429,
// retryable) with the Retry-After hint. Returns true when the request may
// proceed. A nil limiter (abuse controls disabled) always admits.
func (a *AM) allow(w http.ResponseWriter, r *http.Request, tier, key string, cost float64) bool {
	if a.limiter == nil {
		return true
	}
	ok, retryAfter := a.limiter.Allow(tier, key, cost)
	if ok {
		return true
	}
	e := core.APIErrorf(core.CodeRateLimited, "am: %s rate budget exhausted; retry later", tier)
	e.RetryAfterSeconds = webutil.RetryAfterSeconds(retryAfter)
	webutil.WriteAPIError(w, r, e)
	return false
}

// ipLimited wraps an unauthenticated public route with the per-remote-IP
// tier. The key is the connection's peer address — not a spoofable
// header — so the fail-safe default holds even for strangers.
func (a *AM) ipLimited(cost float64, h http.Handler) http.Handler {
	if a.limiter == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !a.allow(w, r, tierIP, remoteIP(r), cost) {
			return
		}
		h.ServeHTTP(w, r)
	})
}

// remoteIP extracts the peer IP from RemoteAddr (the whole address when
// it does not parse — still a stable per-peer key).
func remoteIP(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// AbuseHealth snapshots the limiter gauges (nil when abuse controls are
// disabled) for /v1/healthz and /v1/metrics.
func (a *AM) AbuseHealth() *core.AbuseHealth {
	if a.limiter == nil {
		return nil
	}
	return a.limiter.Health()
}
