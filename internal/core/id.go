package core

import (
	"crypto/rand"
	"encoding/base64"
	"encoding/hex"
	"fmt"
)

// NewID returns a fresh 128-bit random identifier with the given prefix,
// rendered as prefix-hex. Identifiers are unguessable so they can appear in
// redirect URLs (e.g. consent tickets) without leaking enumerable state.
func NewID(prefix string) string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failure means the platform RNG is broken; there is no
		// safe fallback for identifiers that gate authorization state.
		panic(fmt.Sprintf("core: crypto/rand unavailable: %v", err))
	}
	return prefix + "-" + hex.EncodeToString(b[:])
}

// NewSecret returns n cryptographically random bytes base64url-encoded.
// Used for pairing channel keys and token-service master keys.
func NewSecret(n int) string {
	b := make([]byte, n)
	if _, err := rand.Read(b); err != nil {
		panic(fmt.Sprintf("core: crypto/rand unavailable: %v", err))
	}
	return base64.RawURLEncoding.EncodeToString(b)
}
