// Package policylang provides a human-writable textual policy language for
// the Authorization Manager, plus a converter from per-application ACL
// matrices.
//
// Requirement R2 says a user "should be able to compose access control
// policies for distributed Web resources in their preferred policy
// language"; the AM's native model (internal/policy) is the evaluation
// form, and this package is one such preferred surface language. The
// converter demonstrates policy portability: a user migrating from a Host's
// built-in ACL (the incompatible-language problem of Section III.2) can
// carry their rules to the AM.
//
// Grammar (line-oriented; '#' starts a comment):
//
//	policy "<name>" <general|specific> [ttl <seconds>] [combine <alg>] {
//	  <permit|deny> <subject>[,<subject>...] [<action>[,<action>...]] [if <cond> [and <cond>]...]
//	  ...
//	}
//
// Subjects: user:<id>, group:<name>, requester:<id>, everyone, owner.
// Actions: read, write, delete, list, share (omitted = all actions).
// Conditions: claim <name> [= <value>] | consent | before <RFC3339> |
// after <RFC3339>.
// Combining algorithms: deny-overrides (default) | permit-overrides |
// first-applicable.
package policylang

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"umac/internal/baseline/localacl"
	"umac/internal/core"
	"umac/internal/policy"
)

// ParseError reports a syntax error with its line number.
type ParseError struct {
	Line int
	Msg  string
}

// Error implements error.
func (e *ParseError) Error() string {
	return fmt.Sprintf("policylang: line %d: %s", e.Line, e.Msg)
}

func errf(line int, format string, args ...any) error {
	return &ParseError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// Parse reads one or more policy blocks for the given owner.
func Parse(owner core.UserID, src string) ([]policy.Policy, error) {
	var policies []policy.Policy
	var cur *policy.Policy
	lines := strings.Split(src, "\n")
	for i, raw := range lines {
		lineNo := i + 1
		line := strings.TrimSpace(raw)
		if idx := strings.IndexByte(line, '#'); idx >= 0 {
			line = strings.TrimSpace(line[:idx])
		}
		if line == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "policy "):
			if cur != nil {
				return nil, errf(lineNo, "nested policy block")
			}
			p, err := parseHeader(owner, line, lineNo)
			if err != nil {
				return nil, err
			}
			cur = p
		case line == "}":
			if cur == nil {
				return nil, errf(lineNo, "unmatched '}'")
			}
			if err := cur.Validate(); err != nil {
				return nil, errf(lineNo, "invalid policy %q: %v", cur.Name, err)
			}
			policies = append(policies, *cur)
			cur = nil
		default:
			if cur == nil {
				return nil, errf(lineNo, "rule outside policy block: %q", line)
			}
			rule, err := parseRule(line, lineNo)
			if err != nil {
				return nil, err
			}
			cur.Rules = append(cur.Rules, rule)
		}
	}
	if cur != nil {
		return nil, errf(len(lines), "unterminated policy block %q", cur.Name)
	}
	return policies, nil
}

// parseHeader parses: policy "<name>" <kind> [ttl <seconds>] {
func parseHeader(owner core.UserID, line string, lineNo int) (*policy.Policy, error) {
	rest := strings.TrimPrefix(line, "policy ")
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, `"`) {
		return nil, errf(lineNo, "policy name must be quoted")
	}
	end := strings.Index(rest[1:], `"`)
	if end < 0 {
		return nil, errf(lineNo, "unterminated policy name")
	}
	name := rest[1 : 1+end]
	if name == "" {
		return nil, errf(lineNo, "empty policy name")
	}
	rest = strings.TrimSpace(rest[end+2:])
	if !strings.HasSuffix(rest, "{") {
		return nil, errf(lineNo, "policy header must end with '{'")
	}
	rest = strings.TrimSpace(strings.TrimSuffix(rest, "{"))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, errf(lineNo, "missing policy kind (general|specific)")
	}
	p := &policy.Policy{
		ID:    core.PolicyID("pol-" + sanitize(name)),
		Owner: owner,
		Name:  name,
	}
	switch fields[0] {
	case "general":
		p.Kind = policy.KindGeneral
	case "specific":
		p.Kind = policy.KindSpecific
	default:
		return nil, errf(lineNo, "unknown policy kind %q", fields[0])
	}
	fields = fields[1:]
	for len(fields) > 0 {
		switch fields[0] {
		case "ttl":
			if len(fields) < 2 {
				return nil, errf(lineNo, "ttl requires a value")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, errf(lineNo, "bad ttl %q", fields[1])
			}
			p.CacheTTLSeconds = n
			fields = fields[2:]
		case "combine":
			if len(fields) < 2 {
				return nil, errf(lineNo, "combine requires an algorithm")
			}
			switch policy.Combining(fields[1]) {
			case policy.CombineDenyOverrides, policy.CombinePermitOverrides, policy.CombineFirstApplicable:
				p.Combining = policy.Combining(fields[1])
			default:
				return nil, errf(lineNo, "unknown combining algorithm %q", fields[1])
			}
			fields = fields[2:]
		default:
			return nil, errf(lineNo, "unexpected token %q in policy header", fields[0])
		}
	}
	return p, nil
}

// parseRule parses one rule line.
func parseRule(line string, lineNo int) (policy.Rule, error) {
	var rule policy.Rule
	// Split off conditions.
	var condPart string
	if idx := strings.Index(line, " if "); idx >= 0 {
		condPart = strings.TrimSpace(line[idx+4:])
		line = strings.TrimSpace(line[:idx])
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return rule, errf(lineNo, "empty rule")
	}
	switch fields[0] {
	case "permit":
		rule.Effect = policy.EffectPermit
	case "deny":
		rule.Effect = policy.EffectDeny
	default:
		return rule, errf(lineNo, "rule must start with permit or deny, got %q", fields[0])
	}
	rest := strings.Join(fields[1:], " ")
	if rest == "" {
		return rule, errf(lineNo, "rule needs subjects")
	}
	// Subjects and actions are comma-separated lists; the subject list
	// comes first. "permit group:friends, owner read, list" → subjects
	// [group:friends, owner], actions [read, list]. We classify tokens:
	// anything that parses as an action after the subject list starts the
	// action list.
	tokens := splitCommaList(rest)
	inActions := false
	for _, tok := range tokens {
		if !inActions && isAction(tok) {
			inActions = true
		}
		if inActions {
			if !isAction(tok) {
				return rule, errf(lineNo, "expected action, got %q", tok)
			}
			rule.Actions = append(rule.Actions, core.Action(tok))
			continue
		}
		s, err := policy.ParseSubject(tok)
		if err != nil {
			return rule, errf(lineNo, "bad subject %q", tok)
		}
		rule.Subjects = append(rule.Subjects, s)
	}
	if len(rule.Subjects) == 0 {
		return rule, errf(lineNo, "rule needs at least one subject")
	}
	if condPart != "" {
		for _, c := range strings.Split(condPart, " and ") {
			cond, err := parseCondition(strings.TrimSpace(c), lineNo)
			if err != nil {
				return rule, err
			}
			rule.Conditions = append(rule.Conditions, cond)
		}
	}
	return rule, nil
}

// splitCommaList splits on commas and spaces between list items:
// "group:friends, owner read, list" → [group:friends owner read list].
func splitCommaList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		out = append(out, strings.Fields(part)...)
	}
	return out
}

func isAction(tok string) bool {
	return core.ValidAction(core.Action(tok))
}

func parseCondition(c string, lineNo int) (policy.Condition, error) {
	fields := strings.Fields(c)
	if len(fields) == 0 {
		return policy.Condition{}, errf(lineNo, "empty condition")
	}
	switch fields[0] {
	case "consent":
		if len(fields) != 1 {
			return policy.Condition{}, errf(lineNo, "consent takes no arguments")
		}
		return policy.Condition{Type: policy.CondRequireConsent}, nil
	case "claim":
		if len(fields) < 2 {
			return policy.Condition{}, errf(lineNo, "claim requires a name")
		}
		cond := policy.Condition{Type: policy.CondRequireClaim, Claim: fields[1]}
		if len(fields) >= 3 {
			if fields[2] != "=" || len(fields) != 4 {
				return policy.Condition{}, errf(lineNo, "claim value syntax: claim <name> = <value>")
			}
			cond.Value = fields[3]
		}
		return cond, nil
	case "before":
		if len(fields) != 2 {
			return policy.Condition{}, errf(lineNo, "before requires a timestamp")
		}
		ts, err := time.Parse(time.RFC3339, fields[1])
		if err != nil {
			return policy.Condition{}, errf(lineNo, "bad timestamp %q", fields[1])
		}
		return policy.Condition{Type: policy.CondTimeWindow, NotAfter: ts}, nil
	case "after":
		if len(fields) != 2 {
			return policy.Condition{}, errf(lineNo, "after requires a timestamp")
		}
		ts, err := time.Parse(time.RFC3339, fields[1])
		if err != nil {
			return policy.Condition{}, errf(lineNo, "bad timestamp %q", fields[1])
		}
		return policy.Condition{Type: policy.CondTimeWindow, NotBefore: ts}, nil
	default:
		return policy.Condition{}, errf(lineNo, "unknown condition %q", fields[0])
	}
}

func sanitize(name string) string {
	var b strings.Builder
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.ToLower(b.String())
}

// Format renders policies back into the DSL (Parse∘Format is semantically
// identity; formatting is canonical).
func Format(policies []policy.Policy) string {
	var b strings.Builder
	for i, p := range policies {
		if i > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "policy %q %s", p.Name, p.Kind)
		if p.CacheTTLSeconds != 0 {
			fmt.Fprintf(&b, " ttl %d", p.CacheTTLSeconds)
		}
		if p.Combining != "" && p.Combining != policy.CombineDenyOverrides {
			fmt.Fprintf(&b, " combine %s", p.Combining)
		}
		b.WriteString(" {\n")
		for _, r := range p.Rules {
			b.WriteString("  ")
			b.WriteString(r.Effect.String())
			b.WriteByte(' ')
			subjects := make([]string, len(r.Subjects))
			for j, s := range r.Subjects {
				subjects[j] = s.String()
			}
			b.WriteString(strings.Join(subjects, ", "))
			if len(r.Actions) > 0 {
				actions := make([]string, len(r.Actions))
				for j, a := range r.Actions {
					actions[j] = string(a)
				}
				b.WriteByte(' ')
				b.WriteString(strings.Join(actions, ", "))
			}
			if len(r.Conditions) > 0 {
				b.WriteString(" if ")
				conds := make([]string, len(r.Conditions))
				for j, c := range r.Conditions {
					conds[j] = formatCondition(c)
				}
				b.WriteString(strings.Join(conds, " and "))
			}
			b.WriteByte('\n')
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func formatCondition(c policy.Condition) string {
	switch c.Type {
	case policy.CondRequireConsent:
		return "consent"
	case policy.CondRequireClaim:
		if c.Value != "" {
			return fmt.Sprintf("claim %s = %s", c.Claim, c.Value)
		}
		return "claim " + c.Claim
	case policy.CondTimeWindow:
		// A window with both bounds formats as two conditions; emit the
		// set bounds.
		var parts []string
		if !c.NotBefore.IsZero() {
			parts = append(parts, "after "+c.NotBefore.Format(time.RFC3339))
		}
		if !c.NotAfter.IsZero() {
			parts = append(parts, "before "+c.NotAfter.Format(time.RFC3339))
		}
		return strings.Join(parts, " and ")
	default:
		return string(c.Type)
	}
}

// FromMatrix converts a Host's built-in ACL matrix into AM policies: one
// specific policy per resource, carrying each subject's granted actions.
// This is the migration path out of the Section III.2 lock-in — the rules a
// user maintained inside one application become portable AM policies.
func FromMatrix(owner core.UserID, m *localacl.Matrix, resources []core.ResourceID) []policy.Policy {
	var out []policy.Policy
	for _, res := range resources {
		subjects := m.Subjects(owner, res)
		if len(subjects) == 0 {
			continue
		}
		p := policy.Policy{
			ID:    core.PolicyID("pol-acl-" + sanitize(string(res))),
			Owner: owner,
			Name:  "migrated:" + string(res),
			Kind:  policy.KindSpecific,
		}
		for _, subj := range subjects {
			var actions []core.Action
			for _, a := range []core.Action{core.ActionRead, core.ActionWrite, core.ActionDelete, core.ActionList, core.ActionShare} {
				if m.Check(owner, res, subj, a) {
					actions = append(actions, a)
				}
			}
			if len(actions) == 0 {
				continue
			}
			p.Rules = append(p.Rules, policy.Rule{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: string(subj)}},
				Actions:  actions,
			})
		}
		if len(p.Rules) > 0 {
			sort.Slice(p.Rules, func(i, j int) bool {
				return p.Rules[i].Subjects[0].Name < p.Rules[j].Subjects[0].Name
			})
			out = append(out, p)
		}
	}
	return out
}
