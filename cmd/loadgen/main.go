// Command loadgen runs the scenario-diverse load harness against real
// spawned amserver binaries and maintains the committed perf trajectory.
//
// Run mode — spawn a fresh 3-process sharded cluster per scenario, drive
// it, and write the merged per-phase records (the BENCH_E17.json schema,
// a superset of the repo's -benchjson format):
//
//	go run ./cmd/loadgen -out BENCH_E17.json
//	go run ./cmd/loadgen -scenarios zipf_hot_owner,kill_migration -ops 200
//
// Verify mode — shape-check a fresh record set against a committed
// baseline (CI's loadgen-smoke job runs this after the scenario smokes):
//
//	go run ./cmd/loadgen -verify -baseline BENCH_E17.json -fresh artifacts/
//
// Verification is deliberately magnitude-blind: container speed varies,
// so it checks that every baseline record name is present, ran ops, has
// ordered quantiles and zero lost acknowledged writes — catching a
// scenario silently vanishing or a durability loss entering the
// trajectory without flaking on hardware.
//
// See docs/BENCHMARKS.md for the schema and docs/OPERATIONS.md for the
// harness's operational story.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"umac/internal/loadgen"
)

func main() {
	var (
		out       = flag.String("out", "BENCH_E17.json", "merged records output path (run mode)")
		scenarios = flag.String("scenarios", "", "comma-separated scenario names (default: all)")
		owners    = flag.Int("owners", 0, "owners per scenario (default: full-size)")
		ops       = flag.Int("ops", 0, "per-phase op budget (default: full-size)")
		seed      = flag.Int64("seed", 1, "random seed for every generator")
		smoke     = flag.Bool("smoke", false, "use CI smoke sizing instead of full-size")
		timeout   = flag.Duration("timeout", 20*time.Minute, "overall run deadline")

		verify   = flag.Bool("verify", false, "verify -fresh records against -baseline instead of running")
		baseline = flag.String("baseline", "BENCH_E17.json", "committed baseline records (verify mode)")
		fresh    = flag.String("fresh", "", "fresh records: a file, or a directory of *.json (verify mode)")
	)
	flag.Parse()

	if *verify {
		if err := runVerify(*baseline, *fresh); err != nil {
			log.Fatalf("loadgen: %v", err)
		}
		fmt.Println("loadgen: verify OK")
		return
	}

	opts := loadgen.FullOptions()
	if *smoke {
		opts = loadgen.SmokeOptions()
	}
	if *owners > 0 {
		opts.Owners = *owners
	}
	if *ops > 0 {
		opts.Ops = *ops
	}
	opts.Seed = *seed

	names := loadgen.ScenarioNames()
	if *scenarios != "" {
		names = strings.Split(*scenarios, ",")
		for _, name := range names {
			if _, ok := loadgen.Scenarios[name]; !ok {
				log.Fatalf("loadgen: unknown scenario %q (have %s)",
					name, strings.Join(loadgen.ScenarioNames(), ", "))
			}
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	if err := runScenarios(ctx, names, opts, *out); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
}

func runScenarios(ctx context.Context, names []string, opts loadgen.Options, out string) error {
	workDir, err := os.MkdirTemp("", "loadgen-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(workDir)

	log.Printf("building amserver...")
	binary, err := loadgen.BuildServer(ctx, workDir)
	if err != nil {
		return err
	}

	var merged []loadgen.Record
	for _, name := range names {
		log.Printf("=== scenario %s (owners=%d ops=%d seed=%d)", name, opts.Owners, opts.Ops, opts.Seed)
		dir := filepath.Join(workDir, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		// A fresh cluster per scenario: kill_migration leaves migrated
		// owners and restarted processes behind, and isolation keeps the
		// per-scenario numbers comparable run over run.
		rig, err := loadgen.StartCluster(ctx, binary, dir, log.Printf, loadgen.ScenarioExtraArgs(name)...)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		rec, err := loadgen.Scenarios[name](ctx, rig, opts)
		rig.Stop()
		if err != nil {
			return fmt.Errorf("scenario %s: %w", name, err)
		}
		if lost := rec.TotalLost(); lost != 0 {
			return fmt.Errorf("scenario %s lost %d acknowledged writes", name, lost)
		}
		for _, r := range rec.Records() {
			log.Printf("  %-45s n=%-5d p50=%-12s p99=%-12s %8.1f ops/s errs=%d",
				r.Name, r.N, time.Duration(r.P50Ns), time.Duration(r.P99Ns), r.OpsPerSec, r.Errors)
			merged = append(merged, r)
		}
	}
	if err := loadgen.WriteRecords(out, merged); err != nil {
		return err
	}
	log.Printf("wrote %d records to %s", len(merged), out)
	return nil
}

func runVerify(baselinePath, freshPath string) error {
	if freshPath == "" {
		return fmt.Errorf("-verify requires -fresh")
	}
	base, err := loadgen.ReadRecords(baselinePath)
	if err != nil {
		return err
	}
	var fresh []loadgen.Record
	info, err := os.Stat(freshPath)
	if err != nil {
		return err
	}
	if info.IsDir() {
		files, err := filepath.Glob(filepath.Join(freshPath, "*.json"))
		if err != nil {
			return err
		}
		if len(files) == 0 {
			return fmt.Errorf("no *.json records under %s", freshPath)
		}
		for _, f := range files {
			recs, err := loadgen.ReadRecords(f)
			if err != nil {
				return err
			}
			fresh = append(fresh, recs...)
		}
	} else {
		if fresh, err = loadgen.ReadRecords(freshPath); err != nil {
			return err
		}
	}
	return loadgen.VerifyRecords(fresh, base)
}
