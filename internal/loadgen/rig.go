package loadgen

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
)

// This file is the process side of the harness: it builds the real
// amserver binary, spawns a small sharded cluster of it (shard-a: durable
// primary + in-memory follower; shard-b: durable primary), fronts every
// node with a FaultProxy, and knows how to SIGKILL and restart nodes so
// scenarios can reuse the PR 4/5 kill drills against real processes. The
// in-process sim (internal/sim) proves the same properties faster; this
// rig proves them with nothing shared but TCP.

// rigSecret and rigTokenKey are the deployment-wide shared secrets every
// spawned node receives via secret files.
const (
	rigSecret   = "loadgen-repl-secret"
	rigTokenKey = "loadgen-shared-token-key-0123456"
)

// rigHost is the paired Host every scenario speaks for.
const rigHost core.HostID = "webpics"

// Node is one spawned amserver process plus its client-facing fault shim.
type Node struct {
	// Name keys the node in Rig.Nodes ("a-primary", "a-follower",
	// "b-primary"); Shard and Role mirror the flags it was started with.
	Name  string
	Shard string
	Role  string
	// Addr is the real listen address; URL fronts it. Proxy.URL() is what
	// the ring spec names — client traffic goes through the shim, admin
	// and replication traffic straight to URL.
	Addr  string
	URL   string
	Proxy *FaultProxy
	// StateFile is the durable state path ("" for the in-memory follower);
	// a restart after SIGKILL recovers from its WAL.
	StateFile string

	args    []string
	logPath string

	mu   sync.Mutex
	cmd  *exec.Cmd
	done chan struct{} // closed once the current process is reaped
}

// Rig is a running cluster of spawned amserver binaries.
type Rig struct {
	// Dir holds state files, logs and secret files; Binary is the built
	// amserver.
	Dir    string
	Binary string
	// RingSpec is the -ring value every node was started with (proxy
	// URLs); Ring is its parsed form, used to generate owners that hash
	// where a scenario needs them.
	RingSpec string
	Ring     *cluster.Ring
	// Nodes maps node names to their processes.
	Nodes map[string]*Node
	// Logf receives harness progress lines (testing.T.Logf in tests,
	// log.Printf in cmd/loadgen). Never nil after StartCluster.
	Logf func(format string, args ...any)
}

// Build compiles one of this module's main packages into dir and returns
// the binary path. Must run with a working directory inside the module (go
// test and cmd/loadgen both qualify). The crash-consistency suite uses it
// to build its hammer helper with the same plumbing the rig uses for
// amserver.
func Build(ctx context.Context, dir, pkg string) (string, error) {
	bin := filepath.Join(dir, filepath.Base(pkg))
	cmd := exec.CommandContext(ctx, "go", "build", "-o", bin, pkg)
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("loadgen: build %s: %v\n%s", pkg, err, out)
	}
	return bin, nil
}

// BuildServer compiles cmd/amserver into dir and returns the binary path.
func BuildServer(ctx context.Context, dir string) (string, error) {
	return Build(ctx, dir, "umac/cmd/amserver")
}

// freeAddr reserves a loopback port by binding and releasing it. The tiny
// window before the spawned server re-binds is an accepted race — the
// harness runs on a quiet loopback.
func freeAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// StartCluster spawns the standard scenario topology — shard-a with a
// durable primary and an in-memory follower, shard-b with a durable
// primary — every node fronted by a FaultProxy and registered in the ring
// by its proxy URL. It blocks until every node answers /v1/readyz.
// extraArgs are appended to every node's flag list; scenarios use them to
// start the cluster with non-default server config (ScenarioExtraArgs).
func StartCluster(ctx context.Context, binary, dir string, logf func(string, ...any), extraArgs ...string) (*Rig, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	secretFile := filepath.Join(dir, "repl.secret")
	keyFile := filepath.Join(dir, "token.key")
	if err := os.WriteFile(secretFile, []byte(rigSecret), 0o600); err != nil {
		return nil, err
	}
	if err := os.WriteFile(keyFile, []byte(rigTokenKey), 0o600); err != nil {
		return nil, err
	}

	rig := &Rig{Dir: dir, Binary: binary, Nodes: map[string]*Node{}, Logf: logf}
	mk := func(name, shard, role string) (*Node, error) {
		addr, err := freeAddr()
		if err != nil {
			return nil, err
		}
		target := "http://" + addr
		proxy, err := NewFaultProxy(target)
		if err != nil {
			return nil, err
		}
		n := &Node{
			Name: name, Shard: shard, Role: role,
			Addr: addr, URL: target, Proxy: proxy,
			logPath: filepath.Join(dir, name+".log"),
		}
		rig.Nodes[name] = n
		return n, nil
	}
	ap, err := mk("a-primary", "shard-a", "primary")
	if err != nil {
		return nil, err
	}
	af, err := mk("a-follower", "shard-a", "follower")
	if err != nil {
		return nil, err
	}
	bp, err := mk("b-primary", "shard-b", "primary")
	if err != nil {
		return nil, err
	}

	// The ring names the proxies: shard routing, wrong_shard hints and
	// in-shard failover all traverse the fault shims.
	rig.RingSpec = fmt.Sprintf("shard-a=%s|%s,shard-b=%s",
		ap.Proxy.URL(), af.Proxy.URL(), bp.Proxy.URL())
	shards, err := cluster.ParseSpec(rig.RingSpec)
	if err != nil {
		return nil, err
	}
	rig.Ring, err = cluster.New(shards, 0)
	if err != nil {
		return nil, err
	}

	common := []string{
		"-ring", rig.RingSpec,
		"-repl-secret-file", secretFile,
		"-token-key-file", keyFile,
	}
	common = append(common, extraArgs...)
	ap.StateFile = filepath.Join(dir, "a-primary.json")
	ap.args = append([]string{
		"-addr", ap.Addr, "-name", ap.Name, "-base-url", ap.Proxy.URL(),
		"-state", ap.StateFile, "-role", "primary", "-shard", "shard-a",
	}, common...)
	af.args = append([]string{
		"-addr", af.Addr, "-name", af.Name, "-base-url", af.Proxy.URL(),
		"-role", "follower", "-replica-of", ap.URL, "-shard", "shard-a",
	}, common...)
	bp.StateFile = filepath.Join(dir, "b-primary.json")
	bp.args = append([]string{
		"-addr", bp.Addr, "-name", bp.Name, "-base-url", bp.Proxy.URL(),
		"-state", bp.StateFile, "-role", "primary", "-shard", "shard-b",
	}, common...)

	for _, n := range []*Node{ap, af, bp} {
		if err := rig.start(n); err != nil {
			rig.Stop()
			return nil, err
		}
	}
	for _, n := range []*Node{ap, af, bp} {
		if err := waitReady(ctx, n.URL); err != nil {
			rig.Stop()
			return nil, fmt.Errorf("loadgen: node %s never became ready: %w", n.Name, err)
		}
	}
	logf("loadgen: cluster up — ring %s", rig.RingSpec)
	return rig, nil
}

// SpawnShard starts a fresh durable primary for a shard outside the
// original topology, fronted by its own FaultProxy like every other
// node, and waits for readiness. baseSpec is a ring spec WITHOUT the new
// shard (typically the rig's own, plus any shards that joined earlier);
// the node is started on the transition spec baseSpec+",shard=proxyURL",
// because amserver refuses a -shard absent from its ring. That is safe:
// clients keep routing by the old ring, so the new node sees nothing but
// migration traffic until a rebalance pushes the grown ring everywhere.
// The rig's own Ring and RingSpec are left untouched — OwnersFor keeps
// describing the pre-growth placement scenarios seeded under.
func (r *Rig) SpawnShard(ctx context.Context, shard, baseSpec string) (*Node, error) {
	name := shard + "-primary"
	if _, exists := r.Nodes[name]; exists {
		return nil, fmt.Errorf("loadgen: node %q already spawned", name)
	}
	addr, err := freeAddr()
	if err != nil {
		return nil, err
	}
	target := "http://" + addr
	proxy, err := NewFaultProxy(target)
	if err != nil {
		return nil, err
	}
	n := &Node{
		Name: name, Shard: shard, Role: "primary",
		Addr: addr, URL: target, Proxy: proxy,
		StateFile: filepath.Join(r.Dir, name+".json"),
		logPath:   filepath.Join(r.Dir, name+".log"),
	}
	ringSpec := fmt.Sprintf("%s,%s=%s", baseSpec, shard, proxy.URL())
	n.args = []string{
		"-addr", n.Addr, "-name", n.Name, "-base-url", n.Proxy.URL(),
		"-state", n.StateFile, "-role", "primary", "-shard", shard,
		"-ring", ringSpec,
		"-repl-secret-file", filepath.Join(r.Dir, "repl.secret"),
		"-token-key-file", filepath.Join(r.Dir, "token.key"),
	}
	r.Nodes[name] = n
	if err := r.start(n); err != nil {
		proxy.Close()
		delete(r.Nodes, name)
		return nil, err
	}
	if err := waitReady(ctx, n.URL); err != nil {
		n.Kill()
		proxy.Close()
		delete(r.Nodes, name)
		return nil, fmt.Errorf("loadgen: spawned shard %s never became ready: %w", shard, err)
	}
	r.Logf("loadgen: shard %s joined as %s (ring spec %s)", shard, name, ringSpec)
	return n, nil
}

// start launches (or relaunches) a node's process, appending its output
// to the node log.
func (r *Rig) start(n *Node) error {
	logf, err := os.OpenFile(n.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(r.Binary, n.args...)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return fmt.Errorf("loadgen: start %s: %w", n.Name, err)
	}
	done := make(chan struct{})
	go func() {
		cmd.Wait()
		logf.Close()
		close(done)
	}()
	n.mu.Lock()
	n.cmd, n.done = cmd, done
	n.mu.Unlock()
	r.Logf("loadgen: %s up (pid %d, %s)", n.Name, cmd.Process.Pid, n.Addr)
	return nil
}

// Kill SIGKILLs the node's process and waits for it to die — no drain, no
// snapshot; only what the WAL persisted before the kill survives.
func (n *Node) Kill() {
	n.mu.Lock()
	cmd, done := n.cmd, n.done
	n.cmd, n.done = nil, nil
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return
	}
	cmd.Process.Kill()
	// The start goroutine reaps the process; wait for it so a restart
	// never races the dying process's listener.
	select {
	case <-done:
	case <-time.After(5 * time.Second):
	}
}

// Restart respawns a previously killed node with its original arguments
// (recovering durable state from snapshot + WAL) and waits for readiness.
func (r *Rig) Restart(ctx context.Context, name string) error {
	n, ok := r.Nodes[name]
	if !ok {
		return fmt.Errorf("loadgen: unknown node %q", name)
	}
	if err := r.start(n); err != nil {
		return err
	}
	return waitReady(ctx, n.URL)
}

// Stop kills every node and closes every shim. Safe to call twice.
func (r *Rig) Stop() {
	for _, n := range r.Nodes {
		n.Kill()
		if n.Proxy != nil {
			n.Proxy.Close()
		}
	}
}

// waitReady polls the node's real (shim-bypassing) /v1/readyz until it
// answers 200.
func waitReady(ctx context.Context, base string) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := client.Get(base + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("readiness poll: %w", err)
			}
			return fmt.Errorf("readiness poll: last status %d", 0)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// ClientConfig is the seed config for scenario clients: it enters the
// cluster through shard-a's proxied primary and carries a timeout so a
// partitioned shim stalls a request, not the whole run.
func (r *Rig) ClientConfig() amclient.Config {
	return amclient.Config{
		BaseURL:    r.Nodes["a-primary"].Proxy.URL(),
		HTTPClient: &http.Client{Timeout: 15 * time.Second},
	}
}

// AdminClient is a ReplSecret-bearing client straight to the node's real
// URL (bypassing its shim) — what umacctl would be in production. The
// migration drill and the scenario loss audits use it.
func (r *Rig) AdminClient(name string) *amclient.Client {
	n := r.Nodes[name]
	return amclient.New(amclient.Config{
		BaseURL:    n.URL,
		ReplSecret: rigSecret,
		HTTPClient: &http.Client{Timeout: 15 * time.Second},
	})
}

// OwnersFor generates n distinct prefix-named owners that consistent-hash
// to shard (per the rig's ring), deterministically: the same ring, prefix
// and n always yield the same owners. Distinct prefixes keep scenarios
// sharing one rig from colliding on owner state.
func (r *Rig) OwnersFor(prefix, shard string, n int) []core.UserID {
	owners := make([]core.UserID, 0, n)
	for i := 0; len(owners) < n; i++ {
		owner := core.UserID(fmt.Sprintf("%s-%d", prefix, i))
		if r.Ring.Owner(owner).Name == shard {
			owners = append(owners, owner)
		}
	}
	return owners
}
