// Command amserver runs an Authorization Manager node — standalone, or as
// the primary or a follower of a replicated deployment.
//
// Usage:
//
//	amserver -addr :8080 -name my-am [-state am-state.json] [-base-url http://am.example]
//
// State (policies, pairings, realms, groups, token keys) is durable: every
// write is appended to a write-ahead log beside the state file before it is
// acknowledged, so a hard kill loses nothing. Snapshots every
// -snapshot-every interval (and on shutdown) compact the log. Pass -fsync
// to also survive machine crashes, or -no-wal for the legacy
// snapshot-only behaviour. Browser-facing endpoints authenticate via the
// X-Umac-User header (front it with a real SSO proxy in production).
//
// Replication (see docs/OPERATIONS.md for the full runbook):
//
//	# primary: serves writes and streams its WAL on /v1/replication/*
//	amserver -addr :8080 -state primary.json -role primary \
//	    -repl-secret-file repl.secret -token-key-file token.key
//
//	# follower: syncs from the primary, serves the read-only decision path
//	amserver -addr :8081 -state follower.json -role follower \
//	    -replica-of http://localhost:8080 \
//	    -repl-secret-file repl.secret -token-key-file token.key
//
// Both sides must share the replication secret and the token-service key
// (so a follower validates tokens the primary minted). Followers answer
// writes with the structured not_primary error carrying the primary's URL;
// the typed client (umac.AMClient with Endpoints) fails over on it.
//
// Sharding (see docs/OPERATIONS.md, "Sharded cluster"): -ring and -shard
// place the node in a multi-primary cluster whose consistent-hash ring
// maps each resource owner to one shard. Every node of every shard is
// started with the identical -ring value:
//
//	# shard-a primary
//	amserver -addr :8080 -state a.json -role primary \
//	    -ring "shard-a=http://localhost:8080,shard-b=http://localhost:9090" \
//	    -shard shard-a -repl-secret-file repl.secret -token-key-file token.key
//
//	# shard-b primary
//	amserver -addr :9090 -state b.json -role primary \
//	    -ring "shard-a=http://localhost:8080,shard-b=http://localhost:9090" \
//	    -shard shard-b -repl-secret-file repl.secret -token-key-file token.key
//
// Owner-scoped requests that hash to another shard answer the structured
// wrong_shard error with the owning shard's primary URL as the hint; the
// shard-aware client (umac.NewAMClusterClient) routes by owner and chases
// the hint once. umacctl migrate-owner moves an owner between shards live.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"umac"
	"umac/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		name     = flag.String("name", "am", "AM display name")
		baseURL  = flag.String("base-url", "", "externally reachable URL (default http://<addr>)")
		statef   = flag.String("state", "", "state file (empty = in-memory only)")
		snapshot = flag.String("snapshot", "", "deprecated alias for -state")
		every    = flag.Duration("snapshot-every", time.Minute, "WAL compaction (snapshot) interval")
		tokenTTL = flag.Duration("token-ttl", 30*time.Minute, "authorization token lifetime")
		fsync    = flag.Bool("fsync", false, "fsync the WAL on every write (survive machine crashes, not just process kills)")
		noWAL    = flag.Bool("no-wal", false, "disable the write-ahead log (persist on snapshot only)")
		walSeg   = flag.Int64("wal-segment-size", 0, "WAL segment roll threshold in bytes (0 = default 4 MiB)")

		role      = flag.String("role", "", "replication role: \"primary\" or \"follower\" (empty = standalone)")
		replicaOf = flag.String("replica-of", "", "primary base URL to sync from (follower role)")
		replSec   = flag.String("repl-secret", "", "shared replication secret (prefer -repl-secret-file)")
		replSecF  = flag.String("repl-secret-file", "", "file holding the shared replication secret")
		tokenKey  = flag.String("token-key", "", "token-service master key, shared across the deployment (prefer -token-key-file)")
		tokenKeyF = flag.String("token-key-file", "", "file holding the token-service master key")

		ringSpec = flag.String("ring", "", "cluster ring: name=primaryURL[|followerURL...] entries, comma-separated (sharded deployments)")
		shard    = flag.String("shard", "", "name of the shard this node belongs to (must appear in -ring)")

		eventBuf    = flag.Int("event-buffer", 0, "per-subscriber event buffer before a slow /v1/events consumer starts dropping (0 = default 256)")
		eventReplay = flag.Int("event-replay", 0, "events retained for Last-Event-ID resume on /v1/events (0 = default 1024)")
		eventHB     = flag.Duration("event-heartbeat", 0, "SSE heartbeat interval on /v1/events (0 = default 15s)")

		ratePairing      = flag.Float64("rate-pairing", 0, "per-pairing rate budget in cost units/sec on the signed Host channel (0 = unlimited)")
		ratePairingBurst = flag.Float64("rate-pairing-burst", 0, "per-pairing burst capacity (0 = 10x rate)")
		rateSession      = flag.Float64("rate-session", 0, "per-user rate budget in cost units/sec on the session management surface (0 = unlimited)")
		rateSessionBurst = flag.Float64("rate-session-burst", 0, "per-user burst capacity (0 = 10x rate)")
		rateIP           = flag.Float64("rate-ip", 0, "per-remote-IP rate budget in cost units/sec on unauthenticated public routes (0 = unlimited)")
		rateIPBurst      = flag.Float64("rate-ip-burst", 0, "per-remote-IP burst capacity (0 = 10x rate)")
	)
	flag.Parse()
	if *statef == "" {
		*statef = *snapshot
	}

	secret := readSecret(*replSec, *replSecF, "repl-secret")
	key := readSecret(*tokenKey, *tokenKeyF, "token-key")
	var repl umac.ReplicationConfig
	switch *role {
	case "":
		if *replicaOf != "" {
			log.Fatal("amserver: -replica-of requires -role follower")
		}
	case "primary":
		if *replicaOf != "" {
			log.Fatal("amserver: -replica-of contradicts -role primary; a primary syncs from nobody")
		}
		if secret == "" {
			log.Fatal("amserver: -role primary requires a replication secret (-repl-secret-file)")
		}
		repl = umac.ReplicationConfig{Role: umac.RolePrimary, Secret: secret}
	case "follower":
		if *replicaOf == "" || secret == "" {
			log.Fatal("amserver: -role follower requires -replica-of and a replication secret")
		}
		if key == "" {
			log.Fatal("amserver: -role follower requires the shared token key (-token-key-file), or primary-minted tokens will not validate here")
		}
		repl = umac.ReplicationConfig{Role: umac.RoleFollower, Secret: secret, PrimaryURL: *replicaOf}
	default:
		log.Fatalf("amserver: unknown -role %q", *role)
	}

	var clusterCfg umac.ClusterConfig
	switch {
	case *ringSpec == "" && *shard == "":
		// Unsharded.
	case *ringSpec == "" || *shard == "":
		log.Fatal("amserver: -ring and -shard must be set together")
	default:
		shards, err := cluster.ParseSpec(*ringSpec)
		if err != nil {
			log.Fatalf("amserver: %v", err)
		}
		ring, err := cluster.New(shards, 0)
		if err != nil {
			log.Fatalf("amserver: %v", err)
		}
		if _, ok := ring.Shard(*shard); !ok {
			log.Fatalf("amserver: -shard %q does not appear in -ring", *shard)
		}
		clusterCfg = umac.ClusterConfig{Shard: *shard, Ring: ring}
	}

	st := umac.NewStore()
	if *statef != "" {
		var opts []umac.StoreOption
		if *noWAL {
			opts = append(opts, umac.StoreWithoutWAL())
		}
		if *fsync {
			opts = append(opts, umac.StoreWithFsync())
		}
		if *walSeg > 0 {
			opts = append(opts, umac.StoreWithWALSegmentSize(*walSeg))
		}
		loaded, err := umac.OpenStore(*statef, opts...)
		if err != nil {
			log.Fatalf("amserver: open state: %v", err)
		}
		st = loaded
		if n := st.WALSize(); n > 0 {
			log.Printf("amserver: replayed %d bytes of write-ahead log", n)
		}
	}
	base := *baseURL
	if base == "" {
		base = "http://localhost" + *addr
	}
	authMgr := umac.NewAM(umac.AMConfig{
		Name:        *name,
		BaseURL:     base,
		Store:       st,
		TokenKey:    []byte(key),
		TokenTTL:    *tokenTTL,
		Notifier:    &umac.Outbox{},
		Replication: repl,
		Cluster:     clusterCfg,
		Events: umac.AMEventsConfig{
			SubscriberBuffer: *eventBuf,
			ReplayWindow:     *eventReplay,
			Heartbeat:        *eventHB,
		},
		Abuse: umac.AMAbuseConfig{
			PairingRate: *ratePairing, PairingBurst: *ratePairingBurst,
			SessionRate: *rateSession, SessionBurst: *rateSessionBurst,
			IPRate: *rateIP, IPBurst: *rateIPBurst,
		},
	})
	if *ratePairing > 0 || *rateSession > 0 || *rateIP > 0 {
		log.Printf("amserver: abuse controls on (pairing %.1f/s, session %.1f/s, ip %.1f/s)",
			*ratePairing, *rateSession, *rateIP)
	}
	if repl.Role != "" {
		log.Printf("amserver: replication role %s (applied seq %d)", repl.Role, st.LastSeq())
	}
	if clusterCfg.Shard != "" {
		log.Printf("amserver: cluster shard %s (ring %s)", clusterCfg.Shard, *ringSpec)
	}

	srv := &http.Server{Addr: *addr, Handler: authMgr.Handler()}
	go func() {
		log.Printf("amserver: %s listening on %s (base URL %s)", *name, *addr, base)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("amserver: %v", err)
		}
	}()

	save := func() {
		if *statef == "" {
			return
		}
		if err := st.Snapshot(*statef); err != nil {
			log.Printf("amserver: snapshot: %v", err)
		}
	}
	if *statef != "" {
		go func() {
			ticker := time.NewTicker(*every)
			defer ticker.Stop()
			for range ticker.C {
				save()
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println()
	log.Print("amserver: shutting down")
	// Flip /v1/readyz to 503 first so load balancers drain this instance
	// before the listener goes away.
	authMgr.SetDraining(true)
	save()
	if err := authMgr.Close(); err != nil {
		log.Printf("amserver: close am: %v", err)
	}
	if err := st.Close(); err != nil {
		log.Printf("amserver: close store: %v", err)
	}
	srv.Close()
}

// readSecret resolves a value/file flag pair: the file wins when set, its
// contents trimmed of trailing whitespace.
func readSecret(value, file, name string) string {
	if file == "" {
		return value
	}
	data, err := os.ReadFile(file)
	if err != nil {
		log.Fatalf("amserver: read -%s-file: %v", name, err)
	}
	return strings.TrimSpace(string(data))
}
