package sim

import (
	"errors"
	"strings"
	"testing"
	"time"

	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
)

// setupWorld builds the canonical fixture over real HTTP:
// bob owns photo-1/photo-2 in realm "travel" at host "webpics", pairs the
// host with the AM, and links a general friends-read policy. alice is in
// bob's friends group.
func setupWorld(t *testing.T) (*World, *SimpleHost) {
	t.Helper()
	w := NewWorld()
	t.Cleanup(w.Close)
	h := w.AddHost("webpics")
	h.AddResource("bob", "travel", "photo-1", []byte("sunset over kraków"))
	h.AddResource("bob", "travel", "photo-2", []byte("tatra mountains"))

	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", []core.ResourceID{"photo-1", "photo-2"}, ""); err != nil {
		t.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Name: "friends-read", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	if err := w.AM.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	return w, h
}

func TestFullProtocolFirstAccess(t *testing.T) {
	w, h := setupWorld(t)
	w.Tracer.Reset()

	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice", Tracer: w.Tracer})
	body, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "sunset over kraków" {
		t.Fatalf("body = %q", body)
	}

	// The trace must witness the Fig. 2 phases in order: tokenless access
	// → referral → token request/issue → access with token → decision
	// query/response.
	ops := w.Tracer.Ops()
	var sequence []string
	for _, op := range ops {
		switch op {
		case "refer-to-am", "token-request", "token-issued",
			"decision-query", "decision-response":
			sequence = append(sequence, op)
		}
	}
	want := []string{"refer-to-am", "token-request", "token-request", "token-issued",
		"decision-query", "decision-response"}
	if strings.Join(sequence, ",") != strings.Join(want, ",") {
		t.Fatalf("protocol sequence = %v, want %v (all ops: %v)", sequence, want, ops)
	}
}

func TestSubsequentAccessUsesCache(t *testing.T) {
	w, h := setupWorld(t)
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})

	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	decisionsBefore := w.Tracer.CountOp("decision-query")
	hitsBefore, _ := h.Enforcer.Cache().Stats()

	// Section V.B.6: subsequent requests are enforced from the cached
	// decision with no AM round-trip and no new token.
	for i := 0; i < 5; i++ {
		if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.Tracer.CountOp("decision-query"); got != decisionsBefore {
		t.Fatalf("decision queries grew: %d → %d", decisionsBefore, got)
	}
	hitsAfter, _ := h.Enforcer.Cache().Stats()
	if hitsAfter-hitsBefore != 5 {
		t.Fatalf("cache hits = %d, want 5", hitsAfter-hitsBefore)
	}
}

func TestTokenReusedAcrossRealmResources(t *testing.T) {
	w, h := setupWorld(t)
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})

	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	tokensBefore := w.Tracer.CountOp("token-issued")
	// photo-2 is in the same realm: the cached realm token is presented
	// directly; only a fresh decision query is needed.
	if _, err := alice.Fetch(h.ResourceURL("photo-2"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if got := w.Tracer.CountOp("token-issued"); got != tokensBefore {
		t.Fatalf("new token minted for same-realm resource: %d → %d", tokensBefore, got)
	}
}

func TestDenyForStranger(t *testing.T) {
	_, h := setupWorld(t)
	mallory := requester.New(requester.Config{ID: "mallory-browser", Subject: "mallory"})
	_, err := mallory.Fetch(h.ResourceURL("photo-1"), core.ActionRead)
	if !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("err = %v, want denied", err)
	}
}

func TestWriteDeniedByReadOnlyPolicy(t *testing.T) {
	_, h := setupWorld(t)
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	resp, err := alice.Post(h.ResourceURL("photo-1"), "text/plain", []byte("defaced"), core.ActionWrite)
	if err != nil {
		// Token refusal surfaces as ErrDenied before the PUT is retried.
		if errors.Is(err, requester.ErrDenied) {
			return
		}
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 403 && resp.StatusCode != 405 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestAnonymousGets401(t *testing.T) {
	_, h := setupWorld(t)
	// A raw HTTP client (no requester library) sees the referral.
	resp, err := h.Server.Client().Get(h.ResourceURL("photo-1"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Umac-Am") == "" {
		t.Fatal("referral headers missing")
	}
}

func TestSinglePolicyAcrossMultipleHosts(t *testing.T) {
	// Requirement R2: one policy, linked once per realm, protects
	// resources at any number of Hosts.
	w, pics := setupWorld(t)
	docs := w.AddHost("webdocs")
	docs.AddResource("bob", "travel", "trip-report", []byte("day 1: arrived"))
	bob := NewUserAgent("bob")
	if err := bob.PairHost(docs, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := docs.Enforcer.Protect("bob", "travel", []core.ResourceID{"trip-report"}, ""); err != nil {
		t.Fatal(err)
	}
	// No new policy, no new link: the existing owner/realm link covers the
	// new host.
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(pics.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	body, err := alice.Fetch(docs.ResourceURL("trip-report"), core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "day 1: arrived" {
		t.Fatalf("body = %q", body)
	}
	// Tokens are host-scoped: accessing the second host required a second
	// token (Section V.B.3 binding), which the client fetched silently.
	if w.Tracer.CountOp("token-issued") < 2 {
		t.Fatal("expected a distinct token per host")
	}
}

func TestGroupChangeTakesEffect(t *testing.T) {
	w, h := setupWorld(t)
	chris := requester.New(requester.Config{ID: "chris-browser", Subject: "chris"})
	if _, err := chris.Fetch(h.ResourceURL("photo-1"), core.ActionRead); !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("chris before membership: %v", err)
	}
	// Bob adds chris to friends at the AM; chris can now read without any
	// change at the Host.
	if err := w.AM.AddGroupMember("bob", "bob", "friends", "chris"); err != nil {
		t.Fatal(err)
	}
	if _, err := chris.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatalf("chris after membership: %v", err)
	}
}

func TestConsentFlowOverHTTP(t *testing.T) {
	w, h := setupWorld(t)
	h.AddResource("bob", "private", "diary", []byte("dear diary"))
	if err := h.Enforcer.Protect("bob", "private", []core.ResourceID{"diary"}, ""); err != nil {
		t.Fatal(err)
	}
	p, _ := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
		}},
	})
	if err := w.AM.LinkGeneral("bob", "private", p.ID); err != nil {
		t.Fatal(err)
	}
	// Bob approves the consent request when it appears — the "user reacts
	// to the SMS" simulation.
	done := make(chan error, 1)
	go func() {
		// Poll pending consents until one appears, then approve it. The
		// deadline is generous: under -race on a loaded single-CPU box the
		// whole flow can stall for seconds without anything being wrong.
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			pending := w.AM.PendingConsents("bob")
			if len(pending) > 0 {
				done <- w.AM.ResolveConsent("bob", pending[0].Ticket, true)
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		done <- errors.New("no consent request appeared")
	}()

	alice := requester.New(requester.Config{
		ID: "alice-browser", Subject: "alice",
		ConsentTimeout: 15 * time.Second,
	})
	body, err := alice.Fetch(h.ResourceURL("diary"), core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "dear diary" {
		t.Fatalf("body = %q", body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTermsFlowOverHTTP(t *testing.T) {
	w, h := setupWorld(t)
	h.AddResource("bob", "shop", "print-1", []byte("high-res print"))
	if err := h.Enforcer.Protect("bob", "shop", []core.ResourceID{"print-1"}, ""); err != nil {
		t.Fatal(err)
	}
	p, _ := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireClaim, Claim: "payment"}},
		}},
	})
	if err := w.AM.LinkGeneral("bob", "shop", p.ID); err != nil {
		t.Fatal(err)
	}

	// Without payment: TermsError naming the missing claim.
	broke := requester.New(requester.Config{ID: "printshop", Subject: "alice"})
	_, err := broke.Fetch(h.ResourceURL("print-1"), core.ActionRead)
	var terms *requester.TermsError
	if !errors.As(err, &terms) || len(terms.Terms) != 1 || terms.Terms[0] != "payment" {
		t.Fatalf("err = %v", err)
	}
	// With the payment claim: access granted.
	broke.SetClaim("payment", "rcpt-42")
	body, err := broke.Fetch(h.ResourceURL("print-1"), core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "high-res print" {
		t.Fatalf("body = %q", body)
	}
}

func TestRevokedPairingStopsDecisions(t *testing.T) {
	w, h := setupWorld(t)
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	pairing, _ := h.Enforcer.PairingFor("bob")
	if err := w.AM.RevokePairing(pairing.PairingID); err != nil {
		t.Fatal(err)
	}
	// A fresh client (empty caches on both sides would be needed; the
	// host's decision cache may still hold the old permit, so clear it to
	// model TTL expiry).
	h.Enforcer.Cache().Invalidate()
	fresh := requester.New(requester.Config{ID: "alice-browser-2", Subject: "alice"})
	if _, err := fresh.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err == nil {
		t.Fatal("access succeeded over revoked pairing")
	}
}

func TestAuditConsolidatedAcrossHosts(t *testing.T) {
	w, pics := setupWorld(t)
	docs := w.AddHost("webdocs")
	docs.AddResource("bob", "travel", "trip-report", []byte("x"))
	bob := NewUserAgent("bob")
	if err := bob.PairHost(docs, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := docs.Enforcer.Protect("bob", "travel", []core.ResourceID{"trip-report"}, ""); err != nil {
		t.Fatal(err)
	}
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	alice.Fetch(pics.ResourceURL("photo-1"), core.ActionRead)
	alice.Fetch(docs.ResourceURL("trip-report"), core.ActionRead)
	mallory := requester.New(requester.Config{ID: "mallory-app", Subject: "mallory"})
	mallory.Fetch(pics.ResourceURL("photo-1"), core.ActionRead)

	// Requirement R4: one query at the AM sees decisions across all Hosts.
	s := w.AM.Audit().Summarize("bob")
	if len(s.Hosts) < 2 {
		t.Fatalf("hosts in consolidated view = %v", s.Hosts)
	}
	if s.PermitCount < 2 {
		t.Fatalf("permits = %d", s.PermitCount)
	}
}
