package am

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/identity"
	"umac/internal/policy"
)

// httpFixture is an AM behind an httptest server.
type httpFixture struct {
	am  *AM
	srv *httptest.Server
}

func newHTTPFixture(t *testing.T) *httpFixture {
	t.Helper()
	a := New(Config{Name: "am", Notifier: &Outbox{}})
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	a.SetBaseURL(srv.URL)
	return &httpFixture{am: a, srv: srv}
}

// do issues a request as the given (header-authenticated) user.
func (f *httpFixture) do(t *testing.T, user, method, path string, body any) *http.Response {
	t.Helper()
	var rdr io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rdr = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, f.srv.URL+path, rdr)
	if err != nil {
		t.Fatal(err)
	}
	if user != "" {
		req.Header.Set(identity.DefaultUserHeader, user)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func simplePolicy(owner string) policy.Policy {
	return policy.Policy{
		Owner: core.UserID(owner), Name: "p", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
			Actions:  []core.Action{core.ActionRead},
		}},
	}
}

func TestHTTPHealthz(t *testing.T) {
	f := newHTTPFixture(t)
	// Both the legacy alias and the canonical v1 path serve the upgraded
	// subsystem-health report.
	for _, path := range []string{"/healthz", "/v1/healthz"} {
		resp := f.do(t, "", http.MethodGet, path, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("%s status = %d", path, resp.StatusCode)
		}
		body := decodeBody[map[string]any](t, resp)
		if body["status"] != "ok" {
			t.Fatalf("%s body = %v", path, body)
		}
		for _, key := range []string{"store", "audit"} {
			if _, ok := body[key].(map[string]any); !ok {
				t.Fatalf("%s body missing %s report: %v", path, key, body)
			}
		}
	}
}

func TestHTTPRequiresAuth(t *testing.T) {
	f := newHTTPFixture(t)
	for _, path := range []string{"/policies", "/groups", "/audit", "/consents", "/pairings"} {
		resp := f.do(t, "", http.MethodGet, path, nil)
		resp.Body.Close()
		if resp.StatusCode != 401 {
			t.Errorf("%s: status = %d, want 401", path, resp.StatusCode)
		}
	}
}

func TestHTTPPolicyCRUD(t *testing.T) {
	f := newHTTPFixture(t)
	// Create.
	resp := f.do(t, "bob", http.MethodPost, "/policies", simplePolicy("bob"))
	if resp.StatusCode != 201 {
		t.Fatalf("create status = %d", resp.StatusCode)
	}
	created := decodeBody[policy.Policy](t, resp)
	if created.ID == "" || created.Owner != "bob" {
		t.Fatalf("created = %+v", created)
	}
	// Get.
	resp = f.do(t, "bob", http.MethodGet, "/policies/"+string(created.ID), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("get status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// List.
	resp = f.do(t, "bob", http.MethodGet, "/policies", nil)
	if got := decodeBody[[]policy.Policy](t, resp); len(got) != 1 {
		t.Fatalf("list = %d", len(got))
	}
	// Update.
	created.Name = "renamed"
	resp = f.do(t, "bob", http.MethodPut, "/policies/"+string(created.ID), created)
	if resp.StatusCode != 200 {
		t.Fatalf("update status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Delete.
	resp = f.do(t, "bob", http.MethodDelete, "/policies/"+string(created.ID), nil)
	if resp.StatusCode != 204 {
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Get after delete.
	resp = f.do(t, "bob", http.MethodGet, "/policies/"+string(created.ID), nil)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("get-after-delete status = %d", resp.StatusCode)
	}
}

func TestHTTPPolicyIsolationBetweenUsers(t *testing.T) {
	f := newHTTPFixture(t)
	resp := f.do(t, "bob", http.MethodPost, "/policies", simplePolicy("bob"))
	created := decodeBody[policy.Policy](t, resp)

	// Mallory cannot view, update or delete bob's policy.
	resp = f.do(t, "mallory", http.MethodGet, "/policies/"+string(created.ID), nil)
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("mallory get = %d", resp.StatusCode)
	}
	resp = f.do(t, "mallory", http.MethodDelete, "/policies/"+string(created.ID), nil)
	resp.Body.Close()
	if resp.StatusCode == 204 {
		t.Fatal("mallory deleted bob's policy")
	}
	// Mallory cannot list bob's policies either.
	resp = f.do(t, "mallory", http.MethodGet, "/policies?owner=bob", nil)
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("mallory list = %d", resp.StatusCode)
	}
	// Mallory cannot create a policy owned by bob.
	resp = f.do(t, "mallory", http.MethodPost, "/policies", simplePolicy("bob"))
	resp.Body.Close()
	if resp.StatusCode == 201 {
		t.Fatal("mallory created bob's policy")
	}
}

func TestHTTPPolicyExportImport(t *testing.T) {
	f := newHTTPFixture(t)
	f.do(t, "bob", http.MethodPost, "/policies", simplePolicy("bob")).Body.Close()

	for _, format := range []string{"json", "xml"} {
		resp := f.do(t, "bob", http.MethodGet, "/policies/export?format="+format, nil)
		if resp.StatusCode != 200 {
			t.Fatalf("%s export status = %d", format, resp.StatusCode)
		}
		exported, _ := io.ReadAll(resp.Body)
		resp.Body.Close()

		// Import into alice's account.
		req, _ := http.NewRequest(http.MethodPost, f.srv.URL+"/policies/import?format="+format,
			bytes.NewReader(exported))
		req.Header.Set(identity.DefaultUserHeader, "alice")
		resp2, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp2.StatusCode != 200 {
			t.Fatalf("%s import status = %d", format, resp2.StatusCode)
		}
		out := decodeBody[map[string]int](t, resp2)
		if out["imported"] != 1 {
			t.Fatalf("%s imported = %d", format, out["imported"])
		}
	}
	// Each cross-owner import is re-keyed, so alice accumulates one policy
	// per import — and bob's original is never clobbered.
	resp := f.do(t, "alice", http.MethodGet, "/policies", nil)
	if got := decodeBody[[]policy.Policy](t, resp); len(got) != 2 {
		t.Fatalf("alice policies = %d", len(got))
	}
	resp = f.do(t, "bob", http.MethodGet, "/policies", nil)
	if got := decodeBody[[]policy.Policy](t, resp); len(got) != 1 || got[0].Owner != "bob" {
		t.Fatalf("bob's policies disturbed by imports: %+v", got)
	}
}

func TestHTTPGroupLifecycle(t *testing.T) {
	f := newHTTPFixture(t)
	resp := f.do(t, "bob", http.MethodPost, "/groups/friends/members", map[string]string{"user": "alice"})
	if resp.StatusCode != 200 {
		t.Fatalf("add status = %d", resp.StatusCode)
	}
	members := decodeBody[[]core.UserID](t, resp)
	if len(members) != 1 || members[0] != "alice" {
		t.Fatalf("members = %v", members)
	}
	resp = f.do(t, "bob", http.MethodGet, "/groups", nil)
	if groups := decodeBody[[]string](t, resp); len(groups) != 1 || groups[0] != "friends" {
		t.Fatalf("groups = %v", groups)
	}
	resp = f.do(t, "bob", http.MethodDelete, "/groups/friends/members/alice", nil)
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("remove status = %d", resp.StatusCode)
	}
	resp = f.do(t, "bob", http.MethodGet, "/groups/friends/members", nil)
	if members := decodeBody[[]core.UserID](t, resp); len(members) != 0 {
		t.Fatalf("members after remove = %v", members)
	}
}

func TestHTTPCustodianLifecycle(t *testing.T) {
	f := newHTTPFixture(t)
	resp := f.do(t, "bob", http.MethodPost, "/custodians", map[string]string{"custodian": "carol"})
	if resp.StatusCode != 200 {
		t.Fatalf("add status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Carol can now create policies for bob over HTTP.
	resp = f.do(t, "carol", http.MethodPost, "/policies", simplePolicy("bob"))
	if resp.StatusCode != 201 {
		t.Fatalf("custodian create status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Remove; carol loses the right.
	resp = f.do(t, "bob", http.MethodDelete, "/custodians/carol", nil)
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("remove status = %d", resp.StatusCode)
	}
	resp = f.do(t, "carol", http.MethodPost, "/policies", simplePolicy("bob"))
	resp.Body.Close()
	if resp.StatusCode == 201 {
		t.Fatal("removed custodian still creates")
	}
}

func TestHTTPPairConfirmRedirect(t *testing.T) {
	f := newHTTPFixture(t)
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	u := f.srv.URL + "/pair/confirm?" + url.Values{
		core.ParamHost:     {"webpics"},
		"host_url":         {"http://pics.example"},
		core.ParamReturnTo: {"http://pics.example/umac/pair/callback?am=x"},
	}.Encode()
	req, _ := http.NewRequest(http.MethodGet, u, nil)
	req.Header.Set(identity.DefaultUserHeader, "bob")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 302 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	loc, _ := url.Parse(resp.Header.Get("Location"))
	code := loc.Query().Get("code")
	if code == "" {
		t.Fatalf("no code in redirect: %s", loc)
	}
	// The code exchanges for a pairing.
	body, _ := json.Marshal(map[string]string{"code": code, "host": "webpics"})
	resp2, err := http.Post(f.srv.URL+"/api/pair/exchange", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	pr := decodeBody[core.PairingResponse](t, resp2)
	if pr.PairingID == "" || pr.Secret == "" || pr.User != "bob" {
		t.Fatalf("pairing = %+v", pr)
	}
	// Pairing list hides the secret.
	resp3 := f.do(t, "bob", http.MethodGet, "/pairings", nil)
	pairings := decodeBody[[]Pairing](t, resp3)
	if len(pairings) != 1 || pairings[0].Secret != "" {
		t.Fatalf("pairings = %+v", pairings)
	}
	// Revoke over HTTP.
	resp4 := f.do(t, "bob", http.MethodPost, "/pairings/"+pairings[0].ID+"/revoke", map[string]string{})
	resp4.Body.Close()
	if resp4.StatusCode != 200 {
		t.Fatalf("revoke status = %d", resp4.StatusCode)
	}
	// Mallory cannot revoke (nothing left to revoke here, so set up anew).
}

func TestHTTPPairConfirmWithoutReturnToGivesJSON(t *testing.T) {
	f := newHTTPFixture(t)
	resp := f.do(t, "bob", http.MethodGet, "/pair/confirm?host=webpics", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body := decodeBody[map[string]string](t, resp)
	if body["code"] == "" {
		t.Fatalf("body = %v", body)
	}
}

func TestHTTPExchangeBadCode(t *testing.T) {
	f := newHTTPFixture(t)
	body, _ := json.Marshal(map[string]string{"code": "code-bogus", "host": "webpics"})
	resp, err := http.Post(f.srv.URL+"/api/pair/exchange", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestHTTPSignedEndpointsRejectUnsigned(t *testing.T) {
	f := newHTTPFixture(t)
	for _, path := range []string{"/api/protect", "/api/decision", "/api/decision/pull", "/api/decision/state"} {
		resp, err := http.Post(f.srv.URL+path, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 401 {
			t.Errorf("%s: status = %d, want 401", path, resp.StatusCode)
		}
	}
}

func TestHTTPSignedEndpointRejectsReplay(t *testing.T) {
	f := newHTTPFixture(t)
	// Pair directly through the core.
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, err := f.am.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"pairing_id":"x","user":"bob","realm":"travel"}`)
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+"/api/protect", bytes.NewReader(payload))
	req.Header.Set("Content-Type", "application/json")
	if err := httpsig.Sign(req, pr.PairingID, pr.Secret); err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("first request status = %d", resp.StatusCode)
	}
	// Identical signed request again: replayed nonce → 409.
	req2, _ := http.NewRequest(http.MethodPost, f.srv.URL+"/api/protect", bytes.NewReader(payload))
	for _, h := range []string{"X-Umac-Pairing", "X-Umac-Timestamp", "X-Umac-Nonce", "X-Umac-Signature"} {
		req2.Header.Set(h, req.Header.Get(h))
	}
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 409 {
		t.Fatalf("replay status = %d, want 409", resp2.StatusCode)
	}
}

func TestHTTPTokenEndpointStatuses(t *testing.T) {
	f := newHTTPFixture(t)
	// Wire a protected realm with an everyone-read policy.
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, _ := f.am.ExchangeCode(code, "webpics")
	if _, err := f.am.RegisterRealm(pr.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	p, _ := f.am.CreatePolicy("bob", simplePolicy("bob"))
	if err := f.am.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}

	post := func(body core.TokenRequest) *http.Response {
		b, _ := json.Marshal(body)
		resp, err := http.Post(f.srv.URL+"/token", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Permit → 200 with token.
	resp := post(core.TokenRequest{
		Requester: "r", Subject: "alice", Host: "webpics", Realm: "travel",
		Resource: "x", Action: core.ActionRead,
	})
	if resp.StatusCode != 200 {
		t.Fatalf("permit status = %d", resp.StatusCode)
	}
	tr := decodeBody[core.TokenResponse](t, resp)
	if tr.Token == "" {
		t.Fatal("no token")
	}
	// Deny (write not covered) → 403.
	resp = post(core.TokenRequest{
		Requester: "r", Subject: "alice", Host: "webpics", Realm: "travel",
		Resource: "x", Action: core.ActionWrite,
	})
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("deny status = %d", resp.StatusCode)
	}
	// Unknown realm → 404.
	resp = post(core.TokenRequest{
		Requester: "r", Subject: "alice", Host: "webpics", Realm: "ghosts",
		Resource: "x", Action: core.ActionRead,
	})
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("unknown realm status = %d", resp.StatusCode)
	}
	// Garbage body → 400.
	respG, err := http.Post(f.srv.URL+"/token", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	respG.Body.Close()
	if respG.StatusCode != 400 {
		t.Fatalf("garbage status = %d", respG.StatusCode)
	}
	// Token status for unknown ticket → 404.
	respS, err := http.Get(f.srv.URL + "/token/status?ticket=ticket-none")
	if err != nil {
		t.Fatal(err)
	}
	respS.Body.Close()
	if respS.StatusCode != 404 {
		t.Fatalf("status endpoint = %d", respS.StatusCode)
	}
}

func TestHTTPAuditEndpoints(t *testing.T) {
	f := newHTTPFixture(t)
	f.do(t, "bob", http.MethodPost, "/policies", simplePolicy("bob")).Body.Close()
	resp := f.do(t, "bob", http.MethodGet, "/audit", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("audit status = %d", resp.StatusCode)
	}
	events := decodeBody[[]json.RawMessage](t, resp)
	if len(events) == 0 {
		t.Fatal("no audit events")
	}
	resp = f.do(t, "bob", http.MethodGet, "/audit/summary", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("summary status = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Cross-user audit denied.
	resp = f.do(t, "mallory", http.MethodGet, "/audit?owner=bob", nil)
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("mallory audit = %d", resp.StatusCode)
	}
}

func TestHTTPComposePage(t *testing.T) {
	f := newHTTPFixture(t)
	f.do(t, "bob", http.MethodPost, "/policies", simplePolicy("bob")).Body.Close()
	resp := f.do(t, "bob", http.MethodGet, "/compose?host=webpics&realm=travel", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	page := string(body)
	for _, want := range []string{"travel", "webpics", "bob", "<ul>"} {
		if !strings.Contains(page, want) {
			t.Errorf("compose page missing %q", want)
		}
	}
}

func TestHTTPLinkEndpoints(t *testing.T) {
	f := newHTTPFixture(t)
	resp := f.do(t, "bob", http.MethodPost, "/policies", simplePolicy("bob"))
	gen := decodeBody[policy.Policy](t, resp)
	spec := simplePolicy("bob")
	spec.Kind = policy.KindSpecific
	resp = f.do(t, "bob", http.MethodPost, "/policies", spec)
	specCreated := decodeBody[policy.Policy](t, resp)

	resp = f.do(t, "bob", http.MethodPost, "/links/general",
		map[string]string{"realm": "travel", "policy": string(gen.ID)})
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("link general = %d", resp.StatusCode)
	}
	resp = f.do(t, "bob", http.MethodPost, "/links/specific",
		map[string]string{"host": "webpics", "resource": "p1", "policy": string(specCreated.ID)})
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("link specific = %d", resp.StatusCode)
	}
	// Unlink.
	resp = f.do(t, "bob", http.MethodDelete, "/links/general?realm=travel", nil)
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("unlink general = %d", resp.StatusCode)
	}
	resp = f.do(t, "bob", http.MethodDelete, "/links/specific?host=webpics&resource=p1", nil)
	resp.Body.Close()
	if resp.StatusCode != 204 {
		t.Fatalf("unlink specific = %d", resp.StatusCode)
	}
	// Kind mismatch over HTTP → 400.
	resp = f.do(t, "bob", http.MethodPost, "/links/general",
		map[string]string{"realm": "travel", "policy": string(specCreated.ID)})
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("kind mismatch = %d", resp.StatusCode)
	}
}

var _ = fmt.Sprintf
