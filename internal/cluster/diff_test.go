package cluster

import (
	"fmt"
	"testing"

	"umac/internal/core"
)

// Property tests for the rebalance planner's pure core: Diff(old, new)
// over an owner population must move exactly the owners the hash
// placement remaps — no more (minimal remap), no fewer (every remapped
// owner is in the plan) — across vnode counts and in both topology
// directions (shard add, shard drain).

func testOwners(n int) []core.UserID {
	out := make([]core.UserID, n)
	for i := range out {
		out[i] = core.UserID(fmt.Sprintf("owner-%d", i))
	}
	return out
}

// mustRing builds a ring or fails the test.
func mustRing(t *testing.T, st core.RingState) *Ring {
	t.Helper()
	r, err := NewState(st)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// checkDiffExact asserts Diff's contract against brute force: a move for
// every owner whose placement differs between the rings, with From/To
// matching the placements, and nothing else.
func checkDiffExact(t *testing.T, old, next *Ring, owners []core.UserID) []core.RebalanceMove {
	t.Helper()
	moves := Diff(old, next, owners)
	byOwner := make(map[core.UserID]core.RebalanceMove, len(moves))
	for _, m := range moves {
		if _, dup := byOwner[m.Owner]; dup {
			t.Fatalf("owner %s planned twice", m.Owner)
		}
		byOwner[m.Owner] = m
	}
	for _, owner := range owners {
		from, to := old.Owner(owner).Name, next.Owner(owner).Name
		m, planned := byOwner[owner]
		if from == to {
			if planned {
				t.Fatalf("owner %s planned to move %s → %s but placement is unchanged (%s)",
					owner, m.From, m.To, from)
			}
			continue
		}
		if !planned {
			t.Fatalf("owner %s remapped %s → %s but missing from the plan", owner, from, to)
		}
		if m.From != from || m.To != to || m.Phase != core.MovePending {
			t.Fatalf("owner %s: move %+v, want from=%s to=%s phase=%s", owner, m, from, to, core.MovePending)
		}
	}
	return moves
}

func TestDiffShardAddMinimal(t *testing.T) {
	owners := testOwners(5000)
	for _, vnodes := range []int{8, 64, 128} {
		old := mustRing(t, core.RingState{Vnodes: vnodes, Shards: testShards(3)})
		next := mustRing(t, core.RingState{Version: 1, Vnodes: vnodes, Shards: testShards(4)})
		moves := checkDiffExact(t, old, next, owners)
		if len(moves) == 0 {
			t.Fatalf("vnodes=%d: adding a shard moved nobody", vnodes)
		}
		for _, m := range moves {
			// Adding shard-3 may only pull owners toward it.
			if m.To != "shard-3" {
				t.Fatalf("vnodes=%d: owner %s moves %s → %s, not to the new shard", vnodes, m.Owner, m.From, m.To)
			}
		}
		// Consistent hashing: ~1/4 of owners move; past half the hash is
		// not consistent.
		if frac := float64(len(moves)) / float64(len(owners)); frac > 0.5 {
			t.Fatalf("vnodes=%d: shard add remapped %.1f%% of owners", vnodes, frac*100)
		}
	}
}

func TestDiffShardDrainExact(t *testing.T) {
	owners := testOwners(5000)
	for _, vnodes := range []int{8, 64} {
		shards := testShards(4)
		old := mustRing(t, core.RingState{Vnodes: vnodes, Shards: shards})
		// The transition state keeps the draining shard addressable but
		// pointless: exactly its owners move, everyone else stays put.
		next := mustRing(t, core.RingState{
			Version: 1, Vnodes: vnodes, Shards: shards, Draining: []string{"shard-2"},
		})
		moves := checkDiffExact(t, old, next, owners)
		for _, m := range moves {
			if m.From != "shard-2" {
				t.Fatalf("vnodes=%d: drain moved owner %s off %s, not the draining shard", vnodes, m.Owner, m.From)
			}
			if m.To == "shard-2" {
				t.Fatalf("vnodes=%d: drain moved owner %s onto the draining shard", vnodes, m.Owner)
			}
		}
		want := 0
		for _, owner := range owners {
			if old.Owner(owner).Name == "shard-2" {
				want++
			}
		}
		if len(moves) != want {
			t.Fatalf("vnodes=%d: drain planned %d moves, shard-2 holds %d owners", vnodes, len(moves), want)
		}
	}
}

func TestDiffIdenticalRingsEmpty(t *testing.T) {
	owners := testOwners(1000)
	a := mustRing(t, core.RingState{Shards: testShards(3)})
	b := mustRing(t, core.RingState{Version: 7, Shards: testShards(3)})
	if moves := Diff(a, b, owners); len(moves) != 0 {
		t.Fatalf("identical membership produced %d moves", len(moves))
	}
}

func TestRingStateRoundTripAndDraining(t *testing.T) {
	st := core.RingState{
		Version: 3, Vnodes: 16, Shards: testShards(3), Draining: []string{"shard-1"},
	}
	r := mustRing(t, st)
	if r.Version() != 3 || r.Vnodes() != 16 {
		t.Fatalf("version/vnodes lost: %d/%d", r.Version(), r.Vnodes())
	}
	if !r.IsDraining("shard-1") || r.IsDraining("shard-0") {
		t.Fatalf("draining flags wrong: %v", r.Draining())
	}
	// Draining shards stay addressable...
	if _, ok := r.Shard("shard-1"); !ok {
		t.Fatal("draining shard not resolvable by name")
	}
	// ...but never own an owner.
	for _, owner := range testOwners(2000) {
		if r.Owner(owner).Name == "shard-1" {
			t.Fatalf("owner %s mapped to the draining shard", owner)
		}
	}
	got := r.State()
	if got.Version != st.Version || got.Vnodes != st.Vnodes ||
		len(got.Shards) != len(st.Shards) || len(got.Draining) != 1 || got.Draining[0] != "shard-1" {
		t.Fatalf("State() round-trip: %+v", got)
	}
	// Rebuilding from the serialized state yields the identical mapping.
	r2 := mustRing(t, got)
	for _, owner := range testOwners(500) {
		if r.Owner(owner).Name != r2.Owner(owner).Name {
			t.Fatalf("owner %s maps differently after State round-trip", owner)
		}
	}
}

func TestRingStateValidation(t *testing.T) {
	if _, err := NewState(core.RingState{
		Shards: testShards(2), Draining: []string{"nope"},
	}); err == nil {
		t.Error("unknown draining shard accepted")
	}
	if _, err := NewState(core.RingState{
		Shards: testShards(2), Draining: []string{"shard-0", "shard-1"},
	}); err == nil {
		t.Error("fully draining ring accepted")
	}
}
