package sim

import (
	"errors"
	"testing"
	"time"

	"umac/internal/am"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
)

// These tests inject the failure and staleness conditions a deployment
// actually hits: expired tokens, forged tokens, an unreachable AM, dangling
// policy links, cache expiry after policy changes.

// setupWorldCfg mirrors setupWorld with a custom AM config.
func setupWorldCfg(t *testing.T, cfg am.Config) (*World, *SimpleHost) {
	t.Helper()
	w := NewWorldConfig(cfg)
	t.Cleanup(w.Close)
	h := w.AddHost("webpics")
	h.AddResource("bob", "travel", "photo-1", []byte("pic"))
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", []core.ResourceID{"photo-1"}, ""); err != nil {
		t.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	return w, h
}

func TestExpiredTokenTransparentlyRenewed(t *testing.T) {
	// Token TTL is tiny; the decision cache must not outlive it either,
	// so disable caching via a no-cache policy? Simpler: small TTL and
	// cache invalidation between accesses.
	w, h := setupWorldCfg(t, am.Config{TokenTTL: 50 * time.Millisecond})
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	tokensBefore := w.Tracer.CountOp("token-issued")

	// Let the token expire; drop the host's cached decision to force a
	// fresh decision query (models TTL expiry on the host side).
	time.Sleep(80 * time.Millisecond)
	h.Enforcer.Cache().Invalidate()

	// The stale token triggers a token-problem referral; the client
	// obtains a fresh token and succeeds without surfacing an error.
	body, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "pic" {
		t.Fatalf("body = %q", body)
	}
	if got := w.Tracer.CountOp("token-issued"); got != tokensBefore+1 {
		t.Fatalf("token-issued count = %d, want %d (one renewal)", got, tokensBefore+1)
	}
}

func TestForgedTokenGetsReferralNotServed(t *testing.T) {
	_, h := setupWorldCfg(t, am.Config{})
	// A hand-crafted bogus token: the Host forwards it, the AM flags a
	// token problem, and the Host answers 401 (fresh referral), never 200.
	req, _ := newGet(h.ResourceURL("photo-1"))
	req.Header.Set("Authorization", "UMAC forged.token")
	resp, err := h.Server.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("status = %d, want 401 referral", resp.StatusCode)
	}
	if resp.Header.Get("X-Umac-Am") == "" {
		t.Fatal("referral headers missing on token-problem response")
	}
}

func TestAMDownYieldsBadGateway(t *testing.T) {
	w, h := setupWorldCfg(t, am.Config{})
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	// Warm up: token + cached decision.
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	// Cached accesses keep working while the AM is down (availability win
	// of decision caching).
	w.AMServer.Close()
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatalf("cached access failed with AM down: %v", err)
	}
	// A cold request (cache cleared) cannot reach the AM: the Host reports
	// a gateway failure rather than silently allowing or denying.
	h.Enforcer.Cache().Invalidate()
	resp, err := alice.Get(h.ResourceURL("photo-1"), core.ActionRead)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != 502 {
			t.Fatalf("status = %d, want 502", resp.StatusCode)
		}
	}
}

func TestDeletedPolicyFailsClosed(t *testing.T) {
	w, h := setupWorldCfg(t, am.Config{})
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	// Bob deletes the linked policy: the link dangles, and the deny-biased
	// engine refuses new evaluations.
	policies := w.AM.ListPolicies("bob")
	if len(policies) != 1 {
		t.Fatalf("policies = %d", len(policies))
	}
	if err := w.AM.DeletePolicy("bob", policies[0].ID); err != nil {
		t.Fatal(err)
	}
	h.Enforcer.Cache().Invalidate()
	fresh := requester.New(requester.Config{ID: "alice-2", Subject: "alice"})
	if _, err := fresh.Fetch(h.ResourceURL("photo-1"), core.ActionRead); !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("err = %v, want denied (dangling link fails closed)", err)
	}
}

func TestCacheExpiryPicksUpPolicyChange(t *testing.T) {
	// With a short decision-cache TTL, a policy change at the AM takes
	// effect at the Host once the cached decision expires — the staleness
	// bound the user controls (Section V.B.5).
	w, h := setupWorldCfg(t, am.Config{DefaultCacheTTL: time.Second})
	base := time.Now()
	now := base
	h.Enforcer.Cache().SetClock(func() time.Time { return now })

	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	// Bob revokes by replacing the policy with a deny.
	policies := w.AM.ListPolicies("bob")
	pol := policies[0]
	pol.Rules = []policy.Rule{{
		Effect:   policy.EffectDeny,
		Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
	}}
	if err := w.AM.UpdatePolicy("bob", pol); err != nil {
		t.Fatal(err)
	}
	// Within the TTL the stale permit is still served (documented bound).
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatalf("within TTL: %v", err)
	}
	// After the TTL the host re-queries and the deny applies.
	now = base.Add(2 * time.Second)
	resp, err := alice.Get(h.ResourceURL("photo-1"), core.ActionRead)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != 403 {
			t.Fatalf("status after TTL = %d, want 403", resp.StatusCode)
		}
	} else if !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunComparisonSmall(t *testing.T) {
	results, err := RunComparison(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("models = %d", len(results))
	}
	byModel := map[Model]ComparisonResult{}
	for _, r := range results {
		if r.Permitted != r.Accesses {
			t.Fatalf("%s permitted %d/%d", r.Model, r.Permitted, r.Accesses)
		}
		byModel[r.Model] = r
	}
	// Pull pays one AM round-trip per access; push-token amortises.
	if byModel[ModelPull].AMRoundTrips != 6 {
		t.Fatalf("pull round trips = %d", byModel[ModelPull].AMRoundTrips)
	}
	if byModel[ModelPushToken].AMRoundTrips >= byModel[ModelPull].AMRoundTrips {
		t.Fatalf("push (%d) not cheaper than pull (%d)",
			byModel[ModelPushToken].AMRoundTrips, byModel[ModelPull].AMRoundTrips)
	}
	if byModel[ModelLocalACL].AMRoundTrips != 0 {
		t.Fatalf("local-acl hit the AM %d times", byModel[ModelLocalACL].AMRoundTrips)
	}
}

func TestComputeAdminBurden(t *testing.T) {
	b := ComputeAdminBurden(3, 10, 2)
	if b.LocalACLGrants != 60 || b.UMACOperations != 6 {
		t.Fatalf("burden = %+v", b)
	}
}
