package amclient

import (
	"net/http"
	"net/url"

	"umac/internal/core"
)

// This file wraps the protocol routes: the Host-facing signed API
// (pair/exchange, protect, decision family) and the open Requester-facing
// token service. Management routes live in management.go.

// ConfirmPairing drives the Fig. 3 user-consent leg programmatically:
// acting as Config.User it approves a pairing with host and returns the
// one-time code the Host exchanges for the channel secret. Browsers follow
// the redirect form of the same route (PairConfirmURL); headless tooling —
// the sim, the load harness, operator scripts — uses this JSON form.
func (c *Client) ConfirmPairing(host core.HostID) (string, error) {
	var resp struct {
		Code string `json:"code"`
	}
	err := c.get("/pair/confirm", url.Values{core.ParamHost: {string(host)}}, &resp)
	return resp.Code, err
}

// ExchangePairingCode completes Fig. 3: the Host presents the one-time
// code minted by the user's confirmation and receives the pairing ID plus
// channel secret. The only Host-facing call that is not signed (it runs
// before the Host has a secret).
func (c *Client) ExchangePairingCode(code string, host core.HostID) (core.PairingResponse, error) {
	var resp core.PairingResponse
	err := c.do(http.MethodPost, "/api/pair/exchange", nil,
		core.PairExchangeRequest{Code: code, Host: host}, &resp)
	return resp, err
}

// Protect registers a protected realm over the signed channel (Fig. 4).
func (c *Client) Protect(req core.ProtectRequest) (core.ProtectResponse, error) {
	var resp core.ProtectResponse
	err := c.do(http.MethodPost, "/api/protect", nil, req, &resp)
	return resp, err
}

// Decide runs one decision query over the signed channel (Fig. 6).
func (c *Client) Decide(q core.DecisionQuery) (core.DecisionResponse, error) {
	var resp core.DecisionResponse
	err := c.do(http.MethodPost, "/api/decision", nil, q, &resp)
	return resp, err
}

// DecideBatch resolves up to core.MaxBatchDecisionItems decision queries
// in one signed round-trip.
func (c *Client) DecideBatch(q core.BatchDecisionQuery) (core.BatchDecisionResponse, error) {
	var resp core.BatchDecisionResponse
	err := c.do(http.MethodPost, "/api/decision/batch", nil, q, &resp)
	return resp, err
}

// PullDecide runs a tokenless pull-model decision query (the SSP'09
// baseline kept for the E9 comparison).
func (c *Client) PullDecide(q core.PullDecisionQuery) (core.DecisionResponse, error) {
	var resp core.DecisionResponse
	err := c.do(http.MethodPost, "/api/decision/pull", nil, q, &resp)
	return resp, err
}

// StateDecide runs a decision query in the UMA authorization-state
// baseline, carrying the handle from EstablishState.
func (c *Client) StateDecide(q core.StateDecisionQuery) (core.DecisionResponse, error) {
	var resp core.DecisionResponse
	err := c.do(http.MethodPost, "/api/decision/state", nil, q, &resp)
	return resp, err
}

// EstablishState pre-authorizes in the UMA-state baseline, returning the
// opaque handle the Host presents in StateDecide queries.
func (c *Client) EstablishState(req core.TokenRequest) (string, error) {
	var resp core.StateResponse
	err := c.do(http.MethodPost, "/state", nil, req, &resp)
	return resp.Handle, err
}

// RequestToken asks for an authorization token (Fig. 5). Inspect the
// response: Token set means granted; Pending() means consent or terms are
// outstanding (poll TokenStatus / retry with claims). A policy deny is an
// error with errors.Is(err, core.ErrAccessDenied) == true (wire code
// "access_denied").
func (c *Client) RequestToken(req core.TokenRequest) (core.TokenResponse, error) {
	var resp core.TokenResponse
	err := c.do(http.MethodPost, "/token", nil, req, &resp)
	return resp, err
}

// TokenStatus polls a pending-consent ticket (§V.D). Unknown tickets are
// a not_found APIError.
func (c *Client) TokenStatus(ticket string) (core.ConsentStatus, error) {
	var st core.ConsentStatus
	err := c.get("/token/status", url.Values{core.ParamTicket: {ticket}}, &st)
	return st, err
}
