package sim

import (
	"context"
	"testing"
	"time"
)

// TestFailoverWorkload is the HA acceptance test: kill the primary under
// load, the follower keeps answering decisions, and no write acknowledged
// by the primary before the kill is missing after recovery — neither from
// the recovered primary (WAL durability) nor from the re-synced follower
// (replication convergence). The context deadline turns a hung follower
// into a fast phase-named failure.
func TestFailoverWorkload(t *testing.T) {
	ctx, cancel := context.WithTimeout(t.Context(), 2*time.Minute)
	defer cancel()
	rep, err := RunFailoverWorkload(ctx, t.TempDir(), 40)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WritesAcked < 20 {
		t.Fatalf("only %d writes acked; workload too small to mean anything", rep.WritesAcked)
	}
	if rep.DecisionsBeforeKill == 0 {
		t.Fatal("no decisions served before the kill")
	}
	if rep.DecisionsAfterKill == 0 {
		t.Fatal("follower served no decisions after the primary died")
	}
	if rep.DecisionFailures != 0 {
		t.Fatalf("%d decision queries failed outright; failover is leaky", rep.DecisionFailures)
	}
	if len(rep.LostAfterRecovery) != 0 {
		t.Fatalf("acknowledged writes missing after WAL recovery: %v", rep.LostAfterRecovery)
	}
	if !rep.FollowerCaughtUp {
		t.Fatal("follower never converged on the recovered primary")
	}
	if len(rep.LostOnFollower) != 0 {
		t.Fatalf("acknowledged writes missing on the re-synced follower: %v", rep.LostOnFollower)
	}
}
