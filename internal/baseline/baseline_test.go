// Package baseline_test exercises the pull-model and UMA-state baselines
// against a live AM over HTTP, verifying that all three protocol variants
// (push-token, pull, state) agree on who may access what while differing in
// round-trip structure — the premise of experiment E9.
package baseline_test

import (
	"errors"
	"testing"

	"umac/internal/baseline/pullmodel"
	"umac/internal/baseline/umastate"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/sim"
)

// setup builds a world where alice (friend) may read bob's travel realm.
func setup(t *testing.T) (*sim.World, *sim.SimpleHost) {
	t.Helper()
	w := sim.NewWorld()
	t.Cleanup(w.Close)
	h := w.AddHost("webpics")
	h.AddResource("bob", "travel", "photo-1", []byte("x"))
	bob := sim.NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", []core.ResourceID{"photo-1"}, ""); err != nil {
		t.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	return w, h
}

func TestPullModelDecision(t *testing.T) {
	w, h := setup(t)
	pairing, _ := h.Enforcer.PairingFor("bob")
	pull := pullmodel.New("webpics", nil, w.Tracer)

	ok, err := pull.Check(pairing, "alice", "alice-browser", "travel", "photo-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("alice denied in pull model")
	}
	ok, err = pull.Check(pairing, "mallory", "m-app", "travel", "photo-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("mallory permitted in pull model")
	}
	// Every check is an AM round-trip: the defining pull-model property.
	if got := w.Tracer.CountOp("pull-decision-query"); got != 2 {
		t.Fatalf("pull queries = %d, want 2", got)
	}
}

func TestPullModelUnknownRealm(t *testing.T) {
	_, h := setup(t)
	pairing, _ := h.Enforcer.PairingFor("bob")
	pull := pullmodel.New("webpics", nil, nil)
	if _, err := pull.Check(pairing, "alice", "a", "ghosts", "photo-1", core.ActionRead); err == nil {
		t.Fatal("unknown realm accepted")
	}
}

func TestStateModelDecision(t *testing.T) {
	w, h := setup(t)
	pairing, _ := h.Enforcer.PairingFor("bob")

	rc := &umastate.RequesterClient{ID: "alice-browser", Subject: "alice"}
	handle, err := rc.EstablishState(w.AMServer.URL, "webpics", "travel", "photo-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if handle == "" {
		t.Fatal("empty handle")
	}

	enf := umastate.New("webpics", nil, w.Tracer)
	ok, err := enf.Check(pairing, handle, "travel", "photo-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("established state denied")
	}
	// A bogus handle is denied, not errored (the AM answers deny).
	ok, err = enf.Check(pairing, "state-forged", "travel", "photo-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("forged handle permitted")
	}
}

func TestStateEstablishmentDeniedForStranger(t *testing.T) {
	w, _ := setup(t)
	rc := &umastate.RequesterClient{ID: "m-app", Subject: "mallory"}
	_, err := rc.EstablishState(w.AMServer.URL, "webpics", "travel", "photo-1", core.ActionRead)
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestStateIsRealmScoped(t *testing.T) {
	w, h := setup(t)
	pairing, _ := h.Enforcer.PairingFor("bob")
	// Protect a second realm alice may also read.
	h.AddResource("bob", "work", "doc-1", []byte("y"))
	if err := h.Enforcer.Protect("bob", "work", []core.ResourceID{"doc-1"}, ""); err != nil {
		t.Fatal(err)
	}
	p, _ := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
		}},
	})
	w.AM.LinkGeneral("bob", "work", p.ID)

	rc := &umastate.RequesterClient{ID: "alice-browser", Subject: "alice"}
	handle, err := rc.EstablishState(w.AMServer.URL, "webpics", "travel", "photo-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	enf := umastate.New("webpics", nil, nil)
	// The travel-realm state must not open the work realm.
	ok, err := enf.Check(pairing, handle, "work", "doc-1", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("state crossed realms")
	}
}

func TestAllModelsAgreeOnOutcome(t *testing.T) {
	// The three delegated variants must produce identical allow/deny
	// outcomes for the same request — they differ only in mechanics.
	w, h := setup(t)
	pairing, _ := h.Enforcer.PairingFor("bob")
	pull := pullmodel.New("webpics", nil, nil)
	stateEnf := umastate.New("webpics", nil, nil)

	for _, tc := range []struct {
		subject core.UserID
		want    bool
	}{
		{"alice", true},
		{"mallory", false},
	} {
		// Pull.
		gotPull, err := pull.Check(pairing, tc.subject, core.RequesterID(tc.subject+"-app"), "travel", "photo-1", core.ActionRead)
		if err != nil {
			t.Fatal(err)
		}
		// State.
		rc := &umastate.RequesterClient{ID: core.RequesterID(tc.subject + "-app"), Subject: tc.subject}
		handle, err := rc.EstablishState(w.AMServer.URL, "webpics", "travel", "photo-1", core.ActionRead)
		gotState := err == nil
		if gotState {
			gotState, err = stateEnf.Check(pairing, handle, "travel", "photo-1", core.ActionRead)
			if err != nil {
				t.Fatal(err)
			}
		}
		// Push-token via the AM core.
		tok, err := w.AM.IssueToken(core.TokenRequest{
			Requester: core.RequesterID(tc.subject + "-app"), Subject: tc.subject,
			Host: "webpics", Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
		})
		gotPush := err == nil
		if gotPush {
			dec, err := w.AM.Decide(pairing.PairingID, core.DecisionQuery{
				Host: "webpics", Realm: "travel", Resource: "photo-1",
				Action: core.ActionRead, Token: tok.Token,
			})
			if err != nil {
				t.Fatal(err)
			}
			gotPush = dec.Permit()
		}
		if gotPull != tc.want || gotState != tc.want || gotPush != tc.want {
			t.Fatalf("subject %s: pull=%v state=%v push=%v want=%v",
				tc.subject, gotPull, gotState, gotPush, tc.want)
		}
	}
}
