package am

// Abuse-control integration tests at the HTTP surface: request-size caps
// answer the structured request_too_large (413) on every decode path, and
// the per-tenant limiter answers rate_limited (429) with a Retry-After
// hint while leaving other tenants and the operational probes untouched.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/identity"
	"umac/internal/webutil"
)

// oversized returns a JSON body just past the MaxBodyBytes cap: a single
// string field whose value is cap-many bytes of padding.
func oversized() []byte {
	var b bytes.Buffer
	b.WriteString(`{"pad":"`)
	b.Write(bytes.Repeat([]byte("x"), webutil.MaxBodyBytes+1))
	b.WriteString(`"}`)
	return b.Bytes()
}

func wantTooLarge(t *testing.T, resp *http.Response, route string) {
	t.Helper()
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("%s: oversized body status = %d, want 413", route, resp.StatusCode)
	}
	var e core.APIError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("%s: 413 body is not the structured envelope: %v", route, err)
	}
	if e.Code != core.CodeRequestTooLarge {
		t.Fatalf("%s: 413 code = %q, want %q", route, e.Code, core.CodeRequestTooLarge)
	}
}

func TestOversizedBodiesRejected(t *testing.T) {
	f := newHTTPFixture(t)
	code, _ := f.am.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	pr, err := f.am.ExchangeCode(code, "webpics")
	if err != nil {
		t.Fatal(err)
	}
	huge := oversized()

	// Unauthenticated JSON decode path (ReadJSON).
	resp, err := http.Post(f.srv.URL+"/v1/api/pair/exchange", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	wantTooLarge(t, resp, "pair/exchange")

	// Signed decode path (the decision batch family).
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+"/v1/api/decision/batch", bytes.NewReader(huge))
	req.Header.Set("Content-Type", "application/json")
	if err := httpsig.Sign(req, pr.PairingID, pr.Secret); err != nil {
		t.Fatal(err)
	}
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantTooLarge(t, resp, "decision/batch")

	// The import stream, which bypasses ReadJSON and carries its own cap.
	// The body must be a syntactically valid JSON prefix so the decoder
	// keeps reading until the size cap — not a parse error — stops it.
	var importBody bytes.Buffer
	importBody.WriteString(`[`)
	for importBody.Len() <= webutil.MaxBodyBytes {
		importBody.WriteString(`{"name":"p"},`)
	}
	importBody.WriteString(`{}]`)
	req, _ = http.NewRequest(http.MethodPost, f.srv.URL+"/v1/policies/import", &importBody)
	req.Header.Set(identity.DefaultUserHeader, "bob")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wantTooLarge(t, resp, "policies/import")

	// An in-bounds body on the same route still works: the cap is a cap,
	// not a regression of the happy path.
	resp, err = http.Post(f.srv.URL+"/v1/api/pair/exchange", "application/json",
		strings.NewReader(`{"code":"nope","host":"webpics"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusRequestEntityTooLarge {
		t.Fatal("pair/exchange: in-bounds body answered 413")
	}
}

// limitedFixture builds an AM with tight session/pairing budgets and a
// generous IP tier (the tests all originate from one address).
func limitedFixture(t *testing.T) *httpFixture {
	t.Helper()
	a := New(Config{Name: "am", Notifier: &Outbox{}, Abuse: AbuseConfig{
		SessionRate: 1, SessionBurst: 5,
		PairingRate: 1, PairingBurst: 5,
		IPRate: 100000, IPBurst: 100000,
	}})
	srv := httptest.NewServer(a.Handler())
	t.Cleanup(srv.Close)
	a.SetBaseURL(srv.URL)
	return &httpFixture{am: a, srv: srv}
}

func TestRateLimit429Surface(t *testing.T) {
	f := limitedFixture(t)

	get := func(user, path string) *http.Response {
		req, _ := http.NewRequest(http.MethodGet, f.srv.URL+path, nil)
		if user != "" {
			req.Header.Set(identity.DefaultUserHeader, user)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Burn bob's burst (costRead=2, burst 5 -> two admits), then assert
	// the structured 429.
	var last *http.Response
	for i := 0; i < 6; i++ {
		if last != nil {
			last.Body.Close()
		}
		last = get("bob", "/v1/policies")
	}
	if last.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget status = %d, want 429", last.StatusCode)
	}
	retryHdr := last.Header.Get("Retry-After")
	if retryHdr == "" {
		t.Fatal("429 answer is missing the Retry-After header")
	}
	if n, err := strconv.Atoi(retryHdr); err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer of seconds", retryHdr)
	}
	var e core.APIError
	if err := json.NewDecoder(last.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	last.Body.Close()
	if e.Code != core.CodeRateLimited {
		t.Fatalf("429 code = %q, want %q", e.Code, core.CodeRateLimited)
	}
	if e.RetryAfterSeconds < 1 {
		t.Fatalf("envelope retry_after_seconds = %d, want >= 1", e.RetryAfterSeconds)
	}

	// Another user on the same AM is not throttled by bob's spend.
	resp := get("carol", "/v1/policies")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("victim tenant status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// The operational probes are never limited.
	for i := 0; i < 20; i++ {
		resp := get("", "/v1/healthz")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz throttled to %d on probe %d; probes must be exempt", resp.StatusCode, i)
		}
		resp.Body.Close()
	}

	// The gauges surface on healthz and count what happened above.
	resp = get("", "/v1/healthz")
	defer resp.Body.Close()
	var h core.HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Abuse == nil {
		t.Fatal("healthz carries no abuse gauges on a limiter-enabled AM")
	}
	if h.Abuse.Throttled < 1 {
		t.Fatalf("abuse gauges show %d throttled, want >= 1", h.Abuse.Throttled)
	}
	session := h.Abuse.Tiers["session"]
	if session.Throttled < 1 || session.Buckets < 2 {
		t.Fatalf("session tier = %+v, want throttles and both tenants' buckets", session)
	}
}

// TestRateLimitDisabledByDefault pins the fail-open default: an AM with a
// zero AbuseConfig never answers 429 and exposes no abuse gauges.
func TestRateLimitDisabledByDefault(t *testing.T) {
	f := newHTTPFixture(t)
	for i := 0; i < 50; i++ {
		resp := f.do(t, "bob", http.MethodGet, "/v1/policies", nil)
		if resp.StatusCode == http.StatusTooManyRequests {
			t.Fatalf("request %d throttled on an AM with abuse controls disabled", i)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp := f.do(t, "", http.MethodGet, "/v1/healthz", nil)
	defer resp.Body.Close()
	var h core.HealthStatus
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Abuse != nil {
		t.Fatalf("healthz reports abuse gauges %+v with the limiter disabled", h.Abuse)
	}
}
