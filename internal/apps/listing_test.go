package apps_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"umac/internal/core"
)

// TestGalleryAlbumListing covers the album list endpoint in both modes.
func TestGalleryAlbumListing(t *testing.T) {
	f := newFixture(t)
	photo := pngBytes(t)
	if err := f.gallery.AddPhoto("bob", "holiday", "a.png", photo); err != nil {
		t.Fatal(err)
	}
	if err := f.gallery.AddPhoto("bob", "holiday", "b.png", photo); err != nil {
		t.Fatal(err)
	}

	// Built-in mode: owner lists, stranger denied.
	resp := asUser(t, "bob", http.MethodGet, f.gallerySrv.URL+"/albums/bob/holiday", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("owner list = %d", resp.StatusCode)
	}
	var names []string
	if err := json.NewDecoder(resp.Body).Decode(&names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a.png" {
		t.Fatalf("names = %v", names)
	}
	resp2 := asUser(t, "mallory", http.MethodGet, f.gallerySrv.URL+"/albums/bob/holiday", nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != 403 {
		t.Fatalf("stranger list = %d", resp2.StatusCode)
	}
	// Unknown album under owner auth → 404.
	resp3 := asUser(t, "bob", http.MethodGet, f.gallerySrv.URL+"/albums/bob/ghosts", nil)
	defer resp3.Body.Close()
	if resp3.StatusCode != 404 {
		t.Fatalf("unknown album = %d", resp3.StatusCode)
	}
	// In-memory accessors agree.
	photos, err := f.gallery.Photos("bob", "holiday")
	if err != nil || len(photos) != 2 {
		t.Fatalf("photos=%v err=%v", photos, err)
	}
	if _, err := f.gallery.Photos("bob", "ghosts"); err == nil {
		t.Fatal("unknown album listed")
	}
}

// TestComposeURLFromHost covers the Fig. 4 redirect construction from a
// paired application.
func TestComposeURLFromHost(t *testing.T) {
	f := newFixture(t)
	delegateStorage(t, f)
	u, err := f.storage.Enforcer.ComposeURL("bob", "travel")
	if err != nil {
		t.Fatal(err)
	}
	// The URL must point at the paired AM's compose page with host+realm.
	resp := asUser(t, "bob", http.MethodGet, u, nil)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("compose page = %d (url %s)", resp.StatusCode, u)
	}
}

// TestStorageDeleteDelegated exercises the delete action end to end.
func TestStorageDeleteDelegated(t *testing.T) {
	f := newFixture(t)
	f.storage.Tree("bob").Put("/travel/old.txt", []byte("x"))
	delegateStorage(t, f) // policy grants read+list only

	// Alice cannot delete (policy grants read/list).
	req, _ := http.NewRequest(http.MethodDelete, f.storageSrv.URL+"/files/bob/travel/old.txt", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 401 { // tokenless → referral; token would be refused
		t.Fatalf("delete status = %d", resp.StatusCode)
	}
	if !f.storage.Tree("bob").Exists("/travel/old.txt") {
		t.Fatal("file deleted without authorization")
	}
	_ = core.ActionDelete
}
