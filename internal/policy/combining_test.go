package policy

import (
	"testing"

	"umac/internal/core"
)

// conflicted builds a policy with a permit-everyone rule followed by a
// deny-alice rule, under the given combining algorithm — the canonical
// conflict each algorithm resolves differently.
func conflicted(c Combining) *Policy {
	return &Policy{
		ID: "p", Owner: "bob", Kind: KindGeneral, Combining: c,
		Rules: []Rule{
			{Effect: EffectPermit, Subjects: everyone()},
			{Effect: EffectDeny, Subjects: alice()},
		},
	}
}

func TestCombiningDenyOverrides(t *testing.T) {
	e := NewEngine(nil)
	p := conflicted(CombineDenyOverrides)
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("alice = %v", res.Decision)
	}
	if res := e.Evaluate(readRequest("chris"), p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("chris = %v", res.Decision)
	}
	// Empty combining behaves identically (default).
	p2 := conflicted("")
	if res := e.Evaluate(readRequest("alice"), p2, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("default alice = %v", res.Decision)
	}
}

func TestCombiningPermitOverrides(t *testing.T) {
	e := NewEngine(nil)
	p := conflicted(CombinePermitOverrides)
	// The permit-everyone rule beats the deny for alice.
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("alice = %v (%s)", res.Decision, res.Reason)
	}
	// With only a deny applicable, deny still results.
	pd := &Policy{
		ID: "pd", Owner: "bob", Kind: KindGeneral, Combining: CombinePermitOverrides,
		Rules: []Rule{{Effect: EffectDeny, Subjects: alice()}},
	}
	if res := e.Evaluate(readRequest("alice"), pd, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("deny-only alice = %v", res.Decision)
	}
}

func TestCombiningFirstApplicable(t *testing.T) {
	e := NewEngine(nil)
	// Order matters: deny-alice first, then permit-everyone.
	p := &Policy{
		ID: "p", Owner: "bob", Kind: KindGeneral, Combining: CombineFirstApplicable,
		Rules: []Rule{
			{Effect: EffectDeny, Subjects: alice()},
			{Effect: EffectPermit, Subjects: everyone()},
		},
	}
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionDeny {
		t.Fatalf("alice = %v", res.Decision)
	}
	if res := e.Evaluate(readRequest("chris"), p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("chris = %v", res.Decision)
	}
	// Reversed order flips alice's outcome.
	p.Rules[0], p.Rules[1] = p.Rules[1], p.Rules[0]
	if res := e.Evaluate(readRequest("alice"), p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("alice (reversed) = %v", res.Decision)
	}
}

func TestFirstApplicableSkipsGuardedRules(t *testing.T) {
	e := NewEngine(nil)
	// The first rule requires a claim the request lacks: first-applicable
	// must fall through to the second rule, while surfacing the term.
	p := &Policy{
		ID: "p", Owner: "bob", Kind: KindGeneral, Combining: CombineFirstApplicable,
		Rules: []Rule{
			{
				Effect:     EffectPermit,
				Subjects:   everyone(),
				Conditions: []Condition{{Type: CondRequireClaim, Claim: "payment"}},
				Actions:    []core.Action{core.ActionRead},
			},
			{Effect: EffectDeny, Subjects: everyone()},
		},
	}
	res := e.Evaluate(readRequest("alice"), p, nil)
	if res.Decision != core.DecisionDeny {
		t.Fatalf("decision = %v", res.Decision)
	}
	// With the claim, the first rule decides.
	req := readRequest("alice")
	req.Claims = map[string]string{"payment": "x"}
	if res := e.Evaluate(req, p, nil); res.Decision != core.DecisionPermit {
		t.Fatalf("with claim = %v", res.Decision)
	}
}

func TestValidateRejectsUnknownCombining(t *testing.T) {
	p := conflicted("majority-vote")
	if err := p.Validate(); err == nil {
		t.Fatal("unknown combining accepted")
	}
	for _, c := range []Combining{"", CombineDenyOverrides, CombinePermitOverrides, CombineFirstApplicable} {
		p := conflicted(c)
		if err := p.Validate(); err != nil {
			t.Fatalf("combining %q rejected: %v", c, err)
		}
	}
}

func TestCombiningObligationsStillSurface(t *testing.T) {
	e := NewEngine(nil)
	for _, c := range []Combining{CombineDenyOverrides, CombinePermitOverrides, CombineFirstApplicable} {
		p := &Policy{
			ID: "p", Owner: "bob", Kind: KindGeneral, Combining: c,
			Rules: []Rule{{
				Effect:     EffectPermit,
				Subjects:   everyone(),
				Conditions: []Condition{{Type: CondRequireConsent}},
			}},
		}
		res := e.Evaluate(readRequest("alice"), p, nil)
		if res.Decision == core.DecisionPermit {
			t.Fatalf("%s: permitted without consent", c)
		}
		if !res.RequireConsent {
			t.Fatalf("%s: consent obligation lost", c)
		}
	}
}
