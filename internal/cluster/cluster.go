// Package cluster implements the consistent-hash owner ring of a sharded
// AM deployment. The paper's AM centralizes every user's authorization
// state in one service; scaling the write path past one primary means
// partitioning that state — and the UMA model partitions cleanly by
// resource owner, because each owner's realms, policies, groups, grants
// and consents form an independent closure no cross-owner decision ever
// reads. The ring maps each owner to exactly one shard (a replication
// group: primary plus followers) via consistent hashing with virtual
// nodes, so adding or removing a shard remaps only ~1/N of the owners.
//
// The ring starts as configuration (every node and client is built with
// the same shard list, version 0) and evolves as versioned RingState
// pushed over PUT /v1/cluster/ring during a rebalance: a state may name
// draining shards, which stay addressable (overrides and wrong_shard
// hints still resolve through them) but own no hash points — the
// transition topology of a drain while owners move off. Per-owner
// overrides — the live-migration cutover state — live in each AM's
// replicated store, not here. Diff is the rebalance planner's primitive:
// the exact owner set a topology change remaps.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"

	"umac/internal/core"
)

// DefaultVnodes is the virtual-node count per shard when a ring is built
// with vnodes <= 0. 64 points per shard keeps the expected owner imbalance
// across shards under a few percent.
const DefaultVnodes = 64

// point is one virtual node on the ring: a hash position owned by a shard.
type point struct {
	hash  uint64
	shard int // index into Ring.shards
}

// Ring maps resource owners onto shards by consistent hashing. A Ring is
// immutable after New/NewState and safe for concurrent use.
type Ring struct {
	shards   []core.ShardInfo
	byName   map[string]int
	points   []point
	vnodes   int
	version  int64
	draining map[string]bool
}

// New builds a version-0 ring over the given shards with vnodes virtual
// nodes per shard (DefaultVnodes when vnodes <= 0). Shard names must be
// non-empty and unique; order does not affect the mapping (only names seed
// the ring).
func New(shards []core.ShardInfo, vnodes int) (*Ring, error) {
	return NewState(core.RingState{Vnodes: vnodes, Shards: shards})
}

// NewState builds a ring from a versioned ring state. Draining shards must
// be members of st.Shards; they resolve by name (Shard) and appear in
// Shards, but own no hash points, so Owner never maps to them. At least
// one shard must not be draining.
func NewState(st core.RingState) (*Ring, error) {
	if len(st.Shards) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard")
	}
	vnodes := st.Vnodes
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	r := &Ring{
		shards:   append([]core.ShardInfo(nil), st.Shards...),
		byName:   make(map[string]int, len(st.Shards)),
		points:   make([]point, 0, len(st.Shards)*vnodes),
		vnodes:   vnodes,
		version:  st.Version,
		draining: make(map[string]bool, len(st.Draining)),
	}
	for i, s := range r.shards {
		if s.Name == "" {
			return nil, fmt.Errorf("cluster: shard %d has no name", i)
		}
		if _, dup := r.byName[s.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", s.Name)
		}
		r.byName[s.Name] = i
	}
	for _, name := range st.Draining {
		if _, ok := r.byName[name]; !ok {
			return nil, fmt.Errorf("cluster: draining shard %q is not a ring member", name)
		}
		r.draining[name] = true
	}
	owning := 0
	for i, s := range r.shards {
		if r.draining[s.Name] {
			continue
		}
		owning++
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash:  hash64(fmt.Sprintf("%s#%d", s.Name, v)),
				shard: i,
			})
		}
	}
	if owning == 0 {
		return nil, fmt.Errorf("cluster: every shard is draining; at least one must own the ring")
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Identical hash points (vanishingly rare) tie-break by shard so
		// the mapping stays deterministic across nodes.
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// hash64 is the ring hash: FNV-64a finished with a splitmix64 mix, stable
// across processes and releases. The finalizer decorrelates the nearly
// sequential inputs ("shard-a#0", "shard-a#1", …) so vnode points spread
// uniformly instead of clustering.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Owner maps an owner to its shard: the first ring point clockwise from
// the owner's hash.
func (r *Ring) Owner(owner core.UserID) core.ShardInfo {
	h := hash64(string(owner))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.shards[r.points[i].shard]
}

// Shard returns the shard with the given name.
func (r *Ring) Shard(name string) (core.ShardInfo, bool) {
	i, ok := r.byName[name]
	if !ok {
		return core.ShardInfo{}, false
	}
	return r.shards[i], true
}

// Shards returns the ring membership in configuration order.
func (r *Ring) Shards() []core.ShardInfo {
	return append([]core.ShardInfo(nil), r.shards...)
}

// Vnodes returns the virtual-node count per shard the ring was built with.
func (r *Ring) Vnodes() int { return r.vnodes }

// Version returns the ring state's version (0 for configuration-built
// rings).
func (r *Ring) Version() int64 { return r.version }

// Draining returns the names of draining shards (members that own no hash
// points), sorted.
func (r *Ring) Draining() []string {
	if len(r.draining) == 0 {
		return nil
	}
	out := make([]string, 0, len(r.draining))
	for name := range r.draining {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsDraining reports whether the named shard is a draining member.
func (r *Ring) IsDraining(name string) bool { return r.draining[name] }

// State serializes the ring back into the versioned wire form (the inverse
// of NewState).
func (r *Ring) State() core.RingState {
	return core.RingState{
		Version:  r.version,
		Vnodes:   r.vnodes,
		Shards:   r.Shards(),
		Draining: r.Draining(),
	}
}

// Diff computes the owner moves a topology change implies: for each owner,
// a move from its placement on the old ring to its placement on the new
// one, skipping owners whose shard is unchanged. Consistent hashing keeps
// the result minimal (~1/N of the owners on a shard add, exactly the
// drained shard's owners on a drain); the moves come back in owners'
// order, phase MovePending. Per-owner overrides are the caller's concern —
// Diff is the pure hash-placement diff.
func Diff(old, next *Ring, owners []core.UserID) []core.RebalanceMove {
	var moves []core.RebalanceMove
	for _, owner := range owners {
		from := old.Owner(owner).Name
		to := next.Owner(owner).Name
		if from == to {
			continue
		}
		moves = append(moves, core.RebalanceMove{
			Owner: owner, From: from, To: to, Phase: core.MovePending,
		})
	}
	return moves
}

// ParseSpec parses the -ring flag syntax into shard infos:
//
//	name=primaryURL[|followerURL...][,name=...]
//
// Shards are comma-separated; a shard's endpoints are pipe-separated with
// the primary first. Example:
//
//	shard-a=http://a0:8080|http://a1:8081,shard-b=http://b0:8080
func ParseSpec(spec string) ([]core.ShardInfo, error) {
	var shards []core.ShardInfo
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, urls, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("cluster: bad ring entry %q (want name=url[|url...])", part)
		}
		var endpoints []string
		for _, u := range strings.Split(urls, "|") {
			u = strings.TrimSuffix(strings.TrimSpace(u), "/")
			if u != "" {
				endpoints = append(endpoints, u)
			}
		}
		if len(endpoints) == 0 {
			return nil, fmt.Errorf("cluster: ring entry %q names no endpoints", part)
		}
		shards = append(shards, core.ShardInfo{
			Name:      strings.TrimSpace(name),
			Primary:   endpoints[0],
			Endpoints: endpoints,
		})
	}
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: empty ring spec")
	}
	return shards, nil
}

// FormatSpec renders shard infos back into the -ring flag syntax (the
// inverse of ParseSpec), for logs and generated quickstarts.
func FormatSpec(shards []core.ShardInfo) string {
	parts := make([]string, 0, len(shards))
	for _, s := range shards {
		endpoints := s.Endpoints
		if len(endpoints) == 0 {
			endpoints = []string{s.Primary}
		}
		parts = append(parts, s.Name+"="+strings.Join(endpoints, "|"))
	}
	return strings.Join(parts, ",")
}
