package pep

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"umac/internal/core"
)

// DecisionCache caches AM decisions at the Host so "each subsequent request
// to a resource does not have to follow the entire protocol ... a Host does
// not have to issue an access control decision query to an Authorization
// Manager" (Section V.B.6). TTLs come from the AM per decision, giving the
// user control over caching (Section V.B.5).
//
// The cache is a bounded, shard-striped LRU:
//
//   - entries hash onto lock-striped shards, so concurrent enforcement
//     checks on different keys never contend;
//   - each shard holds at most its share of the configured capacity and
//     evicts its least-recently-used entry when full, so a busy Host's
//     cache cannot grow without bound;
//   - every entry is tagged with the (owner, realm, resource) scope it
//     decides for, so an AM invalidation push naming the realms/resources a
//     policy change affected evicts exactly those entries — unrelated
//     cached decisions keep serving locally (see InvalidateScope);
//   - expired entries are deleted when a Get trips over them, and each
//     shard opportunistically sweeps itself every sweepEvery writes, so
//     stale entries cannot accumulate between full invalidations. Sweep
//     runs the same pass on demand.
type DecisionCache struct {
	shards   [cacheShards]cacheShard
	perShard int
	now      func() time.Time

	// scoped can be switched off (SetScopedInvalidation) to degrade
	// InvalidateScope to the historical drop-all behaviour; the churn
	// benchmarks use it as the A/B lever.
	scoped atomic.Bool

	// gen counts invalidations. A decision-query response that was in
	// flight when an invalidation landed must not be written back (it was
	// evaluated under the old policy); fills capture Gen() before querying
	// and PutScopedAt drops the write if it moved. Incremented BEFORE the
	// eviction walk, so a fill that read the old value has its entry
	// inserted before the walk reaches its shard — and thus evicted.
	gen atomic.Uint64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// cacheShards is the number of lock stripes. Power of two so the shard
// index is a mask.
const cacheShards = 16

// DefaultCacheCapacity bounds the total entry count of NewDecisionCache.
const DefaultCacheCapacity = 65536

// sweepEvery is how many writes a shard accepts between opportunistic
// expiry sweeps.
const sweepEvery = 256

type cacheShard struct {
	mu    sync.Mutex
	byKey map[string]*list.Element
	lru   *list.List // front = most recently used
	puts  int        // writes since the last opportunistic sweep
}

// EntryScope names what a cached decision is about, so invalidation pushes
// can be applied to exactly the entries a policy change affected.
type EntryScope struct {
	Owner    core.UserID
	Realm    core.RealmID
	Resource core.ResourceID
}

// Scope selects cache entries for InvalidateScope. An entry matches when
// its owner equals Owner and — unless both lists are empty, which means
// "everything of the owner's" — its realm appears in Realms or its resource
// appears in Resources.
type Scope struct {
	Owner     core.UserID
	Realms    []core.RealmID
	Resources []core.ResourceID
}

func (s Scope) matches(e EntryScope) bool {
	if e.Owner != s.Owner {
		return false
	}
	if len(s.Realms) == 0 && len(s.Resources) == 0 {
		return true
	}
	for _, r := range s.Realms {
		if e.Realm == r {
			return true
		}
	}
	for _, r := range s.Resources {
		if e.Resource == r {
			return true
		}
	}
	return false
}

type cacheEntry struct {
	key     string
	permit  bool
	expires time.Time
	scope   EntryScope
}

// NewDecisionCache returns an empty cache with DefaultCacheCapacity.
func NewDecisionCache() *DecisionCache {
	return NewDecisionCacheCap(DefaultCacheCapacity)
}

// NewDecisionCacheCap returns an empty cache bounded to roughly capacity
// entries (rounded up to a multiple of the shard count).
func NewDecisionCacheCap(capacity int) *DecisionCache {
	perShard := capacity / cacheShards
	if perShard < 1 {
		perShard = 1
	}
	c := &DecisionCache{perShard: perShard, now: time.Now}
	c.scoped.Store(true)
	for i := range c.shards {
		c.shards[i].byKey = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// SetClock overrides the cache's time source for tests. Call before the
// cache is shared between goroutines.
func (c *DecisionCache) SetClock(now func() time.Time) { c.now = now }

// SetScopedInvalidation toggles whether InvalidateScope honours its scope
// (the default) or degrades to dropping every entry — the pre-scoping
// behaviour, kept as the baseline for the invalidation benchmarks.
func (c *DecisionCache) SetScopedInvalidation(enabled bool) { c.scoped.Store(enabled) }

// cacheKey derives the cache key. The token identifies the (requester,
// realm) grant; resource and action narrow it to the exact decision the AM
// issued ("whether an access control decision has been already obtained
// from AM for this Requester to access this particular resource").
func cacheKey(token string, res core.ResourceID, action core.Action) string {
	h := sha256.New()
	h.Write([]byte(token))
	h.Write([]byte{0})
	h.Write([]byte(res))
	h.Write([]byte{0})
	h.Write([]byte(action))
	return hex.EncodeToString(h.Sum(nil))
}

func (c *DecisionCache) shardFor(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()&(cacheShards-1)]
}

// Get returns the cached decision if present and fresh. An expired entry is
// deleted on the spot rather than left to linger until the next sweep.
func (c *DecisionCache) Get(key string) (permit, ok bool) {
	s := c.shardFor(key)
	now := c.now()
	s.mu.Lock()
	el, present := s.byKey[key]
	if !present {
		s.mu.Unlock()
		c.misses.Add(1)
		return false, false
	}
	e := el.Value.(*cacheEntry)
	if now.After(e.expires) {
		s.removeLocked(el)
		s.mu.Unlock()
		c.misses.Add(1)
		return false, false
	}
	s.lru.MoveToFront(el)
	permit = e.permit
	s.mu.Unlock()
	c.hits.Add(1)
	return permit, true
}

// Put stores an unscoped decision for ttlSeconds. Unscoped entries are
// only removed by key expiry, capacity eviction or a full Invalidate;
// enforcement paths use PutScoped so invalidation pushes can reach them.
func (c *DecisionCache) Put(key string, permit bool, ttlSeconds int) {
	c.PutScoped(key, EntryScope{}, permit, ttlSeconds)
}

// Gen returns the invalidation generation. Capture it before issuing a
// decision query and pass it to PutScopedAt so a response that raced an
// invalidation push is not written back as a fresh entry.
func (c *DecisionCache) Gen() uint64 { return c.gen.Load() }

// PutScoped stores a decision for ttlSeconds, tagged with the (owner,
// realm, resource) it was issued for.
func (c *DecisionCache) PutScoped(key string, scope EntryScope, permit bool, ttlSeconds int) {
	c.putScoped(key, scope, permit, ttlSeconds, 0, false)
}

// PutScopedAt is PutScoped guarded by the invalidation generation: if any
// invalidation has run since gen was observed, the decision may predate a
// policy change and the write is silently dropped — the next access simply
// re-queries. Checked under the shard lock, so a concurrent invalidation
// either sees the entry (and evicts it) or has already bumped the
// generation (and the write is dropped); a stale permit can never survive.
func (c *DecisionCache) PutScopedAt(gen uint64, key string, scope EntryScope, permit bool, ttlSeconds int) {
	c.putScoped(key, scope, permit, ttlSeconds, gen, true)
}

func (c *DecisionCache) putScoped(key string, scope EntryScope, permit bool, ttlSeconds int, gen uint64, checkGen bool) {
	if ttlSeconds <= 0 {
		return
	}
	now := c.now()
	expires := now.Add(time.Duration(ttlSeconds) * time.Second)
	s := c.shardFor(key)
	s.mu.Lock()
	if checkGen && c.gen.Load() != gen {
		s.mu.Unlock()
		return
	}
	if el, ok := s.byKey[key]; ok {
		e := el.Value.(*cacheEntry)
		e.permit, e.expires, e.scope = permit, expires, scope
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	if s.lru.Len() >= c.perShard {
		// Full shard: evict the least recently used entry.
		if back := s.lru.Back(); back != nil {
			s.removeLocked(back)
			c.evictions.Add(1)
		}
	}
	s.byKey[key] = s.lru.PushFront(&cacheEntry{key: key, permit: permit, expires: expires, scope: scope})
	s.puts++
	if s.puts >= sweepEvery {
		s.puts = 0
		s.sweepLocked(now)
	}
	s.mu.Unlock()
}

// removeLocked drops an element from the shard; the shard lock is held.
func (s *cacheShard) removeLocked(el *list.Element) {
	e := el.Value.(*cacheEntry)
	delete(s.byKey, e.key)
	s.lru.Remove(el)
}

// sweepLocked removes every expired entry from the shard; the shard lock is
// held. Returns how many were removed.
func (s *cacheShard) sweepLocked(now time.Time) int {
	var removed int
	for el := s.lru.Front(); el != nil; {
		next := el.Next()
		if now.After(el.Value.(*cacheEntry).expires) {
			s.removeLocked(el)
			removed++
		}
		el = next
	}
	return removed
}

// Sweep removes every expired entry and reports how many it dropped. The
// cache also sweeps opportunistically as it is written, so calling Sweep is
// optional hygiene for long-idle Hosts.
func (c *DecisionCache) Sweep() int {
	now := c.now()
	var removed int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		removed += s.sweepLocked(now)
		s.mu.Unlock()
	}
	return removed
}

// Invalidate drops every cached decision (e.g. after an invalidation push
// that does not name an owner, or on operator request).
func (c *DecisionCache) Invalidate() {
	c.gen.Add(1)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.byKey = make(map[string]*list.Element)
		s.lru.Init()
		s.mu.Unlock()
	}
}

// InvalidateScope drops the cached decisions a policy change can have
// affected — entries whose owner matches and whose realm or resource is
// named by the scope (or all of the owner's entries when the scope names
// none). Unrelated entries survive and keep serving locally, so one policy
// edit does not force the Host to re-query every cached decision. Returns
// how many entries were evicted.
func (c *DecisionCache) InvalidateScope(scope Scope) int {
	if !c.scoped.Load() {
		c.Invalidate()
		return 0
	}
	c.gen.Add(1)
	var removed int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; {
			next := el.Next()
			if scope.matches(el.Value.(*cacheEntry).scope) {
				s.removeLocked(el)
				removed++
			}
			el = next
		}
		s.mu.Unlock()
	}
	return removed
}

// Len returns the number of fresh cached entries; expired entries that have
// not been reaped yet are not counted.
func (c *DecisionCache) Len() int {
	now := c.now()
	var n int
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.lru.Front(); el != nil; el = el.Next() {
			if !now.After(el.Value.(*cacheEntry).expires) {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Stats returns cumulative hit/miss counts.
func (c *DecisionCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Evictions returns how many entries capacity pressure has pushed out.
func (c *DecisionCache) Evictions() int64 { return c.evictions.Load() }
