// Package amclient is the shared typed Go client for the Authorization
// Manager's versioned v1 API. It is the single place Host (PEP),
// Requester, CLI and simulation code build AM requests: every protocol and
// management route is wrapped in a method taking and returning the wire
// structs from internal/core, with both authentication modes built in —
// the HMAC-signed Host↔AM channel (pairing credentials) and the
// session-identity header used by the management surface.
//
// Error responses decode into *core.APIError, so callers branch on stable
// machine-readable codes (or errors.Is against the core sentinels, which
// APIError unwraps to) instead of string-matching response bodies.
//
// Against a replicated deployment, configure every node in
// Config.Endpoints: the client fails over transparently on connection
// errors, not_primary rejections (following the error's leader hint) and
// unavailable (draining) answers, and remembers the working endpoint for
// subsequent calls.
package amclient

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"slices"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/identity"
)

// Config configures a Client.
type Config struct {
	// BaseURL is the AM's base URL (scheme://host[:port]); a trailing
	// slash is tolerated.
	BaseURL string
	// Endpoints lists additional AM endpoints of the same replicated
	// deployment (followers and/or the primary). When more than one
	// endpoint is known, the client fails over transparently: a connection
	// error, a not_primary rejection or an unavailable (draining) answer
	// is retried against the next endpoint — following the error's leader
	// hint when one is present — until every endpoint has been tried once.
	Endpoints []string
	// HTTPClient performs the calls; nil means http.DefaultClient.
	HTTPClient *http.Client
	// User, when set, authenticates management calls via the session
	// identity header (UserHeader, default identity.DefaultUserHeader).
	// Front the AM with a real SSO proxy in production.
	User core.UserID
	// UserHeader overrides the identity header name.
	UserHeader string
	// PairingID and Secret, when set, HMAC-sign every request with the
	// pairing secret — the Host↔AM channel of Figs. 3/4/6.
	PairingID string
	Secret    string
	// ReplSecret, when set, is sent as a bearer token on every request —
	// the shared replication secret that authenticates the
	// /v1/replication/* surface and the cluster migration admin routes.
	// Only operator tooling (umacctl migrate-owner, the sim harness)
	// should set it.
	ReplSecret string
	// Legacy pins the client to the pre-v1 alias paths. Used by the
	// compatibility tests; new code should leave it false.
	Legacy bool
	// Retry429 bounds how many times a rate_limited (429) answer is
	// retried against the same endpoint before the error surfaces to the
	// caller: 0 selects the default (3), a negative value disables
	// retrying. Waits honor the server's Retry-After hint when present
	// and fall back to jittered exponential backoff otherwise.
	Retry429 int
	// RetryBudget caps the total time one call spends sleeping between
	// rate_limited retries (0 = default 5s). Once the budget is spent the
	// 429 surfaces immediately — fail fast rather than pile on.
	RetryBudget time.Duration
}

// Rate-limit retry defaults (see Config.Retry429 / Config.RetryBudget).
const (
	defaultRetry429    = 3
	defaultRetryBudget = 5 * time.Second
	retryBaseWait      = 100 * time.Millisecond
)

// Client is a typed AM API client. Methods are safe for concurrent use.
type Client struct {
	cfg       Config
	endpoints []string
	// cur indexes the endpoint requests currently start at; failover
	// advances it so later calls go straight to the working node.
	cur atomic.Int32
	// sleep and jitter are the rate-limit backoff's clock hooks; tests
	// replace them to run the retry loop deterministically.
	sleep  func(time.Duration)
	jitter func() float64
}

// New constructs a Client.
func New(cfg Config) *Client {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.UserHeader == "" {
		cfg.UserHeader = identity.DefaultUserHeader
	}
	var endpoints []string
	if cfg.BaseURL != "" {
		endpoints = append(endpoints, strings.TrimSuffix(cfg.BaseURL, "/"))
	}
	for _, e := range cfg.Endpoints {
		e = strings.TrimSuffix(e, "/")
		if e != "" && !slices.Contains(endpoints, e) {
			endpoints = append(endpoints, e)
		}
	}
	if len(endpoints) == 0 {
		endpoints = []string{""}
	}
	return &Client{cfg: cfg, endpoints: endpoints, sleep: time.Sleep, jitter: rand.Float64}
}

// WithCredential returns a copy of the client signing with the given
// pairing credentials (the Host side uses one Client per paired AM).
func (c *Client) WithCredential(pairingID, secret string) *Client {
	cfg := c.cfg
	cfg.PairingID = pairingID
	cfg.Secret = secret
	nc := &Client{cfg: cfg, endpoints: c.endpoints, sleep: c.sleep, jitter: c.jitter}
	nc.cur.Store(c.cur.Load())
	return nc
}

// BaseURL returns the AM base URL requests currently start at (the
// configured BaseURL until a failover moved on).
func (c *Client) BaseURL() string { return c.endpoints[c.cur.Load()] }

// urlAt joins one endpoint, the version prefix and the route path + query.
func (c *Client) urlAt(base, path string, q url.Values) string {
	u := base
	if !c.cfg.Legacy {
		u += "/v1"
	}
	u += path
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	return u
}

// failoverWorthy reports whether err may succeed against another endpoint:
// transport-level failures (the node is down) and the two structured
// answers a healthy-but-wrong node gives — not_primary (a follower
// refusing a write) and unavailable (a draining node).
func failoverWorthy(err error) bool {
	var ae *core.APIError
	if errors.As(err, &ae) {
		return ae.Code == core.CodeNotPrimary || ae.Code == core.CodeUnavailable
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// nextEndpoint picks the index for the following attempt: the leader hint
// when it names a known endpoint this call has not tried yet (a stale hint
// pointing back at a dead node must not burn the budget), otherwise the
// nearest untried endpoint; -1 when every endpoint has been tried.
func (c *Client) nextEndpoint(at int, tried []bool, err error) int {
	var ae *core.APIError
	if errors.As(err, &ae) && ae.Leader != "" {
		if i := slices.Index(c.endpoints, strings.TrimSuffix(ae.Leader, "/")); i >= 0 && !tried[i] {
			return i
		}
	}
	for i := 1; i <= len(c.endpoints); i++ {
		idx := (at + i) % len(c.endpoints)
		if !tried[idx] {
			return idx
		}
	}
	return -1
}

// Page selects a window of a list endpoint. The zero value means the
// server defaults (offset 0, default limit).
type Page struct {
	Offset int
	Limit  int
}

func (p Page) apply(q url.Values) url.Values {
	if p.Offset > 0 {
		if q == nil {
			q = url.Values{}
		}
		q.Set("offset", fmt.Sprint(p.Offset))
	}
	if p.Limit > 0 {
		if q == nil {
			q = url.Values{}
		}
		q.Set("limit", fmt.Sprint(p.Limit))
	}
	return q
}

// ownerQuery builds the ?owner= query management routes accept.
func ownerQuery(owner core.UserID) url.Values {
	q := url.Values{}
	if owner != "" {
		q.Set("owner", string(owner))
	}
	return q
}

// do performs one API call: method + route path (+ query), JSON-encoding
// in (nil = no body) and decoding a 2xx response into out (nil = discard).
// Non-2xx responses return *core.APIError.
func (c *Client) do(method, path string, q url.Values, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("amclient: encode %s: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	return c.doRaw(method, path, q, body, "application/json", out)
}

// newRequest builds an API request against one endpoint with both auth
// modes applied: the session identity header and (when credentials are
// configured) the HMAC signature. Every call path goes through here so
// auth can never drift between methods.
func (c *Client) newRequest(base, method, path string, q url.Values, body io.Reader, contentType string) (*http.Request, error) {
	req, err := http.NewRequest(method, c.urlAt(base, path, q), body)
	if err != nil {
		return nil, fmt.Errorf("amclient: build %s: %w", path, err)
	}
	if body != nil && contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if c.cfg.User != "" {
		req.Header.Set(c.cfg.UserHeader, string(c.cfg.User))
	}
	if c.cfg.ReplSecret != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.ReplSecret)
	}
	if c.cfg.PairingID != "" {
		if err := httpsig.Sign(req, c.cfg.PairingID, c.cfg.Secret); err != nil {
			return nil, fmt.Errorf("amclient: sign %s: %w", path, err)
		}
	}
	return req, nil
}

// doRaw is do with a caller-supplied body stream and content type. The body
// is buffered so a failover can replay it: each endpoint is tried at most
// once per call, starting at the last known-good one.
func (c *Client) doRaw(method, path string, q url.Values, body io.Reader, contentType string, out any) error {
	return c.doRawHdr(method, path, q, body, contentType, out, nil)
}

// doRawHdr is doRaw with optional response-header capture: when hdr is
// non-nil it receives the headers of the successful attempt (list routes
// carry their pagination frame there).
func (c *Client) doRawHdr(method, path string, q url.Values, body io.Reader, contentType string, out any, hdr *http.Header) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = io.ReadAll(body); err != nil {
			return fmt.Errorf("amclient: read %s body: %w", path, err)
		}
	}
	tried := make([]bool, len(c.endpoints))
	at := int(c.cur.Load())
	retries := c.cfg.Retry429
	if retries == 0 {
		retries = defaultRetry429
	}
	budget := c.cfg.RetryBudget
	if budget == 0 {
		budget = defaultRetryBudget
	}
	var slept time.Duration
	retried := 0
	var lastErr error
	for at >= 0 {
		tried[at] = true
		var attempt io.Reader
		if payload != nil {
			attempt = bytes.NewReader(payload)
		}
		err := c.doOnce(c.endpoints[at], method, path, q, attempt, contentType, out, hdr)
		if err == nil {
			// Remember the working endpoint so later calls start here.
			c.cur.Store(int32(at))
			return nil
		}
		lastErr = err
		// A rate_limited answer is retried against the SAME endpoint —
		// the budget is per tenant, not per node, so failing over would
		// just spend another shard's goodwill. Bounded count, bounded
		// total sleep; past either, the 429 surfaces to the caller.
		if hint, ok := rateLimited(err); ok {
			if retried >= retries || slept >= budget {
				return err
			}
			wait := c.backoff429(hint, retried, budget-slept)
			retried++
			slept += wait
			c.sleep(wait)
			continue
		}
		if len(c.endpoints) == 1 || !failoverWorthy(err) {
			return err
		}
		at = c.nextEndpoint(at, tried, err)
	}
	return lastErr
}

// rateLimited reports whether err is the structured rate_limited answer,
// returning the server's Retry-After hint when it carried one.
func rateLimited(err error) (time.Duration, bool) {
	var ae *core.APIError
	if errors.As(err, &ae) && ae.Code == core.CodeRateLimited {
		return time.Duration(ae.RetryAfterSeconds) * time.Second, true
	}
	return 0, false
}

// backoff429 picks the wait before the n-th rate_limited retry: the
// server's Retry-After hint when present, exponential from retryBaseWait
// otherwise, jittered into [wait/2, wait) so a herd of throttled clients
// does not re-arrive in lockstep, and never past the remaining budget.
func (c *Client) backoff429(hint time.Duration, n int, remaining time.Duration) time.Duration {
	wait := hint
	if wait <= 0 {
		wait = retryBaseWait << uint(n)
	}
	wait = wait/2 + time.Duration(c.jitter()*float64(wait/2))
	if wait > remaining {
		wait = remaining
	}
	return wait
}

// doOnce performs one API call against one endpoint.
func (c *Client) doOnce(base, method, path string, q url.Values, body io.Reader, contentType string, out any, hdr *http.Header) error {
	req, err := c.newRequest(base, method, path, q, body, contentType)
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("amclient: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return decodeError(resp)
	}
	if hdr != nil {
		*hdr = resp.Header.Clone()
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return fmt.Errorf("amclient: decode %s response: %w", path, err)
		}
	}
	return nil
}

// get performs a GET decoding into out.
func (c *Client) get(path string, q url.Values, out any) error {
	return c.do(http.MethodGet, path, q, nil, out)
}

// PairConfirmURL builds the browser URL of the Fig. 3 consent leg
// (GET /v1/pair/confirm): a redirect the user's browser follows, not a
// request this client performs.
func PairConfirmURL(amURL string, q url.Values) string {
	return strings.TrimSuffix(amURL, "/") + "/v1/pair/confirm?" + q.Encode()
}

// ComposeURL builds the browser URL of the Fig. 4 policy-composition page
// (GET /v1/compose) a Host's "share" control redirects to.
func ComposeURL(amURL string, q url.Values) string {
	return strings.TrimSuffix(amURL, "/") + "/v1/compose?" + q.Encode()
}

// maxErrorBody bounds how much of an error response is read.
const maxErrorBody = 64 << 10

// decodeError turns a non-2xx response into *core.APIError. Structured
// envelopes pass through; legacy {"error": "..."} bodies and non-JSON
// bodies degrade to code "unknown" with the raw text as message.
func decodeError(resp *http.Response) error {
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, maxErrorBody))
	var envelope struct {
		core.APIError
		LegacyError string `json:"error"`
	}
	if err := json.Unmarshal(raw, &envelope); err == nil {
		e := envelope.APIError
		if e.Code == "" {
			e.Code = core.CodeUnknown
			e.Message = envelope.LegacyError
		}
		if e.Message == "" {
			e.Message = strings.TrimSpace(string(raw))
		}
		if e.Status == 0 {
			e.Status = resp.StatusCode
		}
		if e.RequestID == "" {
			e.RequestID = resp.Header.Get("X-Request-Id")
		}
		if e.RetryAfterSeconds == 0 {
			if n, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && n > 0 {
				e.RetryAfterSeconds = n
			}
		}
		return &e
	}
	msg := strings.TrimSpace(string(raw))
	if msg == "" {
		msg = resp.Status
	}
	return &core.APIError{
		Code:      core.CodeUnknown,
		Status:    resp.StatusCode,
		Message:   msg,
		RequestID: resp.Header.Get("X-Request-Id"),
	}
}
