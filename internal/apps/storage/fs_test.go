package storage

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	var fs FS
	if err := fs.Put("/travel/beach.jpg", []byte("jpeg-bytes")); err != nil {
		t.Fatal(err)
	}
	got, err := fs.Get("/travel/beach.jpg")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte("jpeg-bytes")) {
		t.Fatalf("got %q", got)
	}
}

func TestPutCreatesParents(t *testing.T) {
	var fs FS
	if err := fs.Put("/a/b/c/d.txt", []byte("x")); err != nil {
		t.Fatal(err)
	}
	entries, err := fs.List("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Dir || entries[0].Name != "c" {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestPutOverwrites(t *testing.T) {
	var fs FS
	fs.Put("/f.txt", []byte("one"))
	fs.Put("/f.txt", []byte("two"))
	got, _ := fs.Get("/f.txt")
	if string(got) != "two" {
		t.Fatalf("got %q", got)
	}
}

func TestPutContentCopied(t *testing.T) {
	var fs FS
	content := []byte("original")
	fs.Put("/f.txt", content)
	content[0] = 'X'
	got, _ := fs.Get("/f.txt")
	if string(got) != "original" {
		t.Fatal("FS aliases caller's buffer")
	}
}

func TestGetErrors(t *testing.T) {
	var fs FS
	fs.Put("/dir/file.txt", []byte("x"))
	if _, err := fs.Get("/missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if _, err := fs.Get("/dir"); !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("directory: %v", err)
	}
	if _, err := fs.Get("//bad//"); err == nil {
		t.Fatal("accepted empty segments")
	}
	if _, err := fs.Get("/../etc/passwd"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("dot-dot: %v", err)
	}
}

func TestPutErrors(t *testing.T) {
	var fs FS
	fs.Put("/file.txt", []byte("x"))
	// A file cannot become a directory.
	if err := fs.Put("/file.txt/child", []byte("y")); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("file-as-dir: %v", err)
	}
	fs.Mkdir("/dir")
	// A directory cannot be overwritten by a file.
	if err := fs.Put("/dir", []byte("y")); !errors.Is(err, ErrIsDirectory) {
		t.Fatalf("dir-as-file: %v", err)
	}
	if err := fs.Put("/", []byte("y")); !errors.Is(err, ErrBadPath) {
		t.Fatalf("root: %v", err)
	}
}

func TestMkdirAndList(t *testing.T) {
	var fs FS
	if err := fs.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	fs.Put("/a/file.txt", []byte("hello"))
	entries, err := fs.List("/a")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
	// Sorted: "b" then "file.txt".
	if entries[0].Name != "b" || !entries[0].Dir {
		t.Fatalf("entries[0] = %+v", entries[0])
	}
	if entries[1].Name != "file.txt" || entries[1].Dir || entries[1].Size != 5 {
		t.Fatalf("entries[1] = %+v", entries[1])
	}
	// Listing a file fails.
	if _, err := fs.List("/a/file.txt"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("list file: %v", err)
	}
	// Listing the empty root works.
	var empty FS
	if got, err := empty.List("/"); err != nil || len(got) != 0 {
		t.Fatalf("empty root: %v %v", got, err)
	}
}

func TestMkdirOverFile(t *testing.T) {
	var fs FS
	fs.Put("/x", []byte("f"))
	if err := fs.Mkdir("/x/y"); !errors.Is(err, ErrNotDirectory) {
		t.Fatalf("err = %v", err)
	}
}

func TestDelete(t *testing.T) {
	var fs FS
	fs.Put("/a/b/file.txt", []byte("x"))
	if err := fs.Delete("/a/b/file.txt"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/b/file.txt") {
		t.Fatal("file survived delete")
	}
	if !fs.Exists("/a/b") {
		t.Fatal("parent directory deleted")
	}
	// Deleting a subtree removes everything under it.
	fs.Put("/a/b/one.txt", []byte("1"))
	fs.Put("/a/b/two.txt", []byte("2"))
	if err := fs.Delete("/a"); err != nil {
		t.Fatal(err)
	}
	if fs.Exists("/a/b/one.txt") || fs.Exists("/a") {
		t.Fatal("subtree survived delete")
	}
	if err := fs.Delete("/ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing: %v", err)
	}
	if err := fs.Delete("/"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("root: %v", err)
	}
}

func TestWalk(t *testing.T) {
	var fs FS
	fs.Put("/travel/b.jpg", []byte("bb"))
	fs.Put("/travel/a.jpg", []byte("a"))
	fs.Put("/travel/nested/c.jpg", []byte("ccc"))
	fs.Put("/work/doc.txt", []byte("d"))

	var paths []string
	var total int
	if err := fs.Walk("/travel", func(p string, size int) {
		paths = append(paths, p)
		total += size
	}); err != nil {
		t.Fatal(err)
	}
	want := []string{"/travel/a.jpg", "/travel/b.jpg", "/travel/nested/c.jpg"}
	if strings.Join(paths, ",") != strings.Join(want, ",") {
		t.Fatalf("paths = %v", paths)
	}
	if total != 6 {
		t.Fatalf("total = %d", total)
	}
	// Walking the root sees everything.
	paths = nil
	fs.Walk("/", func(p string, _ int) { paths = append(paths, p) })
	if len(paths) != 4 {
		t.Fatalf("root walk = %v", paths)
	}
}

func TestRealmOf(t *testing.T) {
	r, err := RealmOf("/travel/beach.jpg")
	if err != nil || r != "travel" {
		t.Fatalf("r=%q err=%v", r, err)
	}
	r, err = RealmOf("work")
	if err != nil || r != "work" {
		t.Fatalf("r=%q err=%v", r, err)
	}
	if _, err := RealmOf("/"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("root: %v", err)
	}
	if _, err := RealmOf("/../x"); !errors.Is(err, ErrBadPath) {
		t.Fatalf("dot-dot: %v", err)
	}
}

func TestExists(t *testing.T) {
	var fs FS
	fs.Put("/a/b.txt", []byte("x"))
	if !fs.Exists("/a") || !fs.Exists("/a/b.txt") || !fs.Exists("/") {
		t.Fatal("existing paths reported missing")
	}
	if fs.Exists("/nope") || fs.Exists("/../x") {
		t.Fatal("missing/invalid paths reported existing")
	}
}

func TestFSPutGetProperty(t *testing.T) {
	var fs FS
	f := func(name string, content []byte) bool {
		if name == "" || strings.ContainsAny(name, "/.") {
			return true
		}
		path := "/prop/" + name
		if err := fs.Put(path, content); err != nil {
			return false
		}
		got, err := fs.Get(path)
		return err == nil && bytes.Equal(got, content)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
