package sim

import (
	"errors"
	"fmt"
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
)

// TestDifferentHostsDifferentAMs exercises the Section V.D configuration
// where a user delegates different Hosts to different Authorization
// Managers: WebPics to AM1, WebDocs to AM2. Policies live where the realm
// is protected; tokens from one AM are useless at Hosts paired elsewhere.
func TestDifferentHostsDifferentAMs(t *testing.T) {
	w1 := NewWorld()
	t.Cleanup(w1.Close)
	w2 := NewWorld()
	t.Cleanup(w2.Close)

	pics := w1.AddHost("webpics")
	pics.AddResource("bob", "travel", "photo", []byte("p"))
	docs := w2.AddHost("webdocs")
	docs.AddResource("bob", "travel", "report", []byte("r"))

	bob := NewUserAgent("bob")
	if err := bob.PairHost(pics, w1.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := bob.PairHost(docs, w2.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := pics.Enforcer.Protect("bob", "travel", nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := docs.Enforcer.Protect("bob", "travel", nil, ""); err != nil {
		t.Fatal(err)
	}
	// AM1 permits alice; AM2 permits only chris. Each host obeys its AM.
	for _, cfg := range []struct {
		w    *World
		user string
	}{{w1, "alice"}, {w2, "chris"}} {
		p, err := cfg.w.AM.CreatePolicy("bob", policy.Policy{
			Owner: "bob", Kind: policy.KindGeneral,
			Rules: []policy.Rule{{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: cfg.user}},
				Actions:  []core.Action{core.ActionRead},
			}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
			t.Fatal(err)
		}
	}

	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	chris := requester.New(requester.Config{ID: "chris-browser", Subject: "chris"})

	if _, err := alice.Fetch(pics.ResourceURL("photo"), core.ActionRead); err != nil {
		t.Fatalf("alice at AM1-governed host: %v", err)
	}
	if _, err := alice.Fetch(docs.ResourceURL("report"), core.ActionRead); !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("alice at AM2-governed host: %v, want denied", err)
	}
	if _, err := chris.Fetch(docs.ResourceURL("report"), core.ActionRead); err != nil {
		t.Fatalf("chris at AM2-governed host: %v", err)
	}
	if _, err := chris.Fetch(pics.ResourceURL("photo"), core.ActionRead); !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("chris at AM1-governed host: %v, want denied", err)
	}
}

// TestPerRealmAMOverride exercises the finer-grained V.D setting: one Host,
// two realms, each protected by a different AM (per-resource delegation).
func TestPerRealmAMOverride(t *testing.T) {
	w1 := NewWorld()
	t.Cleanup(w1.Close)
	w2 := NewWorld()
	t.Cleanup(w2.Close)

	h := w1.AddHost("webpics")
	h.AddResource("bob", "travel", "photo", []byte("p"))
	h.AddResource("bob", "work", "slides", []byte("s"))

	// Default pairing with AM1 (governs "travel").
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w1.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", nil, ""); err != nil {
		t.Fatal(err)
	}
	// Realm-specific pairing with AM2 for "work": approve at AM2 and bind
	// the pairing to the realm.
	code, err := w2.AM.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Enforcer.CompleteRealmPairing(w2.AMServer.URL, "bob", "work", code); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "work", nil, ""); err != nil {
		t.Fatal(err)
	}

	// Policies: AM1 permits alice on travel; AM2 permits carol on work.
	p1, _ := w1.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
		}},
	})
	if err := w1.AM.LinkGeneral("bob", "travel", p1.ID); err != nil {
		t.Fatal(err)
	}
	p2, _ := w2.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "carol"}},
		}},
	})
	if err := w2.AM.LinkGeneral("bob", "work", p2.ID); err != nil {
		t.Fatal(err)
	}
	// The work realm must be registered at AM2, which the realm pairing
	// already did via Protect above — verify.
	if _, err := w2.AM.LookupRealm("webpics", "work"); err != nil {
		t.Fatalf("work realm not registered at AM2: %v", err)
	}
	if _, err := w1.AM.LookupRealm("webpics", "work"); err == nil {
		t.Fatal("work realm leaked to AM1")
	}

	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	carol := requester.New(requester.Config{ID: "carol-browser", Subject: "carol"})

	if _, err := alice.Fetch(h.ResourceURL("photo"), core.ActionRead); err != nil {
		t.Fatalf("alice on AM1 realm: %v", err)
	}
	if _, err := carol.Fetch(h.ResourceURL("slides"), core.ActionRead); err != nil {
		t.Fatalf("carol on AM2 realm: %v", err)
	}
	// Cross-realm denials, each decided by its own AM.
	if _, err := carol.Fetch(h.ResourceURL("photo"), core.ActionRead); !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("carol on AM1 realm: %v", err)
	}
	if _, err := alice.Fetch(h.ResourceURL("slides"), core.ActionRead); !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("alice on AM2 realm: %v", err)
	}
	// Each AM audited only its own realm's decisions.
	if n := len(w2.AM.Audit().Query(auditDecisions())); n == 0 {
		t.Fatal("AM2 saw no decisions")
	}
	_ = fmt.Sprint
}
