package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Record is one phase's measurement in the committed perf trajectory. It
// is a strict superset of the repo's -benchjson schema (name/n/ns_per_op,
// see benchjson_test.go), so the same tooling can diff BENCH_E13..E17
// files uniformly; the extra fields carry what a load harness knows that
// a microbenchmark does not: tail latency, wall-clock throughput, and the
// error/loss counters that make a perf number trustworthy.
type Record struct {
	// Name is "Loadgen/<scenario>/<phase>".
	Name string `json:"name"`
	// N is the number of operations the phase completed (errors included).
	N int `json:"n"`
	// NsPerOp is the mean operation latency in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// P50Ns and P99Ns are the median and 99th-percentile op latencies.
	P50Ns int64 `json:"p50_ns"`
	P99Ns int64 `json:"p99_ns"`
	// OpsPerSec is N divided by the phase's wall-clock duration — unlike
	// 1/NsPerOp it includes inter-op scenario overhead.
	OpsPerSec float64 `json:"ops_per_sec"`
	// Errors counts operations that failed. Some phases expect errors
	// (writes against a killed primary); the scenario decides what is
	// tolerable, the record just reports.
	Errors int `json:"errors"`
	// Lost counts acknowledged writes that later turned out to be missing.
	// Any non-zero value is a durability-contract violation and fails the
	// scenario outright; it is recorded anyway so a bench artifact can
	// never silently paper over a loss.
	Lost int `json:"lost"`
}

// Recorder accumulates one scenario's phases in order.
type Recorder struct {
	// Scenario names the run; it prefixes every record name.
	Scenario string
	phases   []*PhaseRec
}

// PhaseRec measures one named phase: individual op latencies, the phase's
// wall-clock span, and error/loss tallies.
type PhaseRec struct {
	Name   string
	Errors int
	Lost   int

	start   time.Time
	elapsed time.Duration
	durs    []time.Duration
}

// Phase starts (and registers) a new phase. Call End when its load loop
// finishes; phases must not overlap.
func (r *Recorder) Phase(name string) *PhaseRec {
	ph := &PhaseRec{Name: name, start: time.Now()}
	r.phases = append(r.phases, ph)
	return ph
}

// Op runs and times one operation, tallying a failure instead of
// propagating it — load loops decide separately whether an error is fatal.
// It returns the operation's error for loops that do care.
func (ph *PhaseRec) Op(f func() error) error {
	t0 := time.Now()
	err := f()
	ph.durs = append(ph.durs, time.Since(t0))
	if err != nil {
		ph.Errors++
	}
	return err
}

// End freezes the phase's wall-clock duration.
func (ph *PhaseRec) End() {
	ph.elapsed = time.Since(ph.start)
}

// record flattens the phase into its Record under scenario.
func (ph *PhaseRec) record(scenario string) Record {
	rec := Record{
		Name:   fmt.Sprintf("Loadgen/%s/%s", scenario, ph.Name),
		N:      len(ph.durs),
		Errors: ph.Errors,
		Lost:   ph.Lost,
	}
	if len(ph.durs) == 0 {
		return rec
	}
	sorted := make([]time.Duration, len(ph.durs))
	copy(sorted, ph.durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var total time.Duration
	for _, d := range sorted {
		total += d
	}
	rec.NsPerOp = float64(total.Nanoseconds()) / float64(len(sorted))
	rec.P50Ns = quantile(sorted, 0.50).Nanoseconds()
	rec.P99Ns = quantile(sorted, 0.99).Nanoseconds()
	elapsed := ph.elapsed
	if elapsed <= 0 {
		elapsed = total
	}
	if elapsed > 0 {
		rec.OpsPerSec = float64(len(sorted)) / elapsed.Seconds()
	}
	return rec
}

// quantile picks the q-th quantile of an ascending-sorted sample by the
// nearest-rank method — crude but stable for the smoke-sized samples CI
// produces.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return sorted[idx]
}

// Records flattens every phase, in execution order.
func (r *Recorder) Records() []Record {
	recs := make([]Record, 0, len(r.phases))
	for _, ph := range r.phases {
		recs = append(recs, ph.record(r.Scenario))
	}
	return recs
}

// TotalLost sums loss counters across phases — the scenario-level
// zero-loss assertion reads this.
func (r *Recorder) TotalLost() int {
	n := 0
	for _, ph := range r.phases {
		n += ph.Lost
	}
	return n
}

// WriteRecords writes records as an indented JSON array — the exact
// framing benchjson_test.go uses, so BENCH_E17.json diffs like its
// siblings.
func WriteRecords(path string, recs []Record) error {
	sort.Slice(recs, func(i, j int) bool { return recs[i].Name < recs[j].Name })
	data, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadRecords loads a records artifact written by WriteRecords (or any
// benchjson file — missing extended fields decode to zero).
func ReadRecords(path string) ([]Record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var recs []Record
	if err := json.Unmarshal(data, &recs); err != nil {
		return nil, fmt.Errorf("loadgen: parse %s: %w", path, err)
	}
	return recs, nil
}

// VerifyRecords checks a freshly emitted record set against a committed
// baseline: every baseline scenario/phase name must be present, every
// record must be internally sane (ops ran, latencies ordered, no loss).
// It deliberately does NOT compare magnitudes — container perf varies —
// only shape, so CI catches a scenario silently vanishing or a loss
// sneaking into the trajectory without flaking on speed.
func VerifyRecords(fresh, baseline []Record) error {
	have := make(map[string]Record, len(fresh))
	for _, r := range fresh {
		have[r.Name] = r
	}
	for _, want := range baseline {
		got, ok := have[want.Name]
		if !ok {
			return fmt.Errorf("loadgen: verify: record %q in baseline but missing from fresh run", want.Name)
		}
		if got.N <= 0 {
			return fmt.Errorf("loadgen: verify: record %q ran zero ops", want.Name)
		}
		if got.P50Ns > got.P99Ns {
			return fmt.Errorf("loadgen: verify: record %q has p50 %d > p99 %d", want.Name, got.P50Ns, got.P99Ns)
		}
		if got.Lost != 0 {
			return fmt.Errorf("loadgen: verify: record %q reports %d lost acknowledged writes", want.Name, got.Lost)
		}
	}
	return nil
}
