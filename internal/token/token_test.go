package token

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"umac/internal/core"
)

func newTestService() *Service {
	return NewService([]byte("test-master-key-0123456789abcdef"), time.Minute)
}

func TestMintValidateRoundTrip(t *testing.T) {
	s := newTestService()
	tok, claims, err := s.Mint("gallery", "alice", "webpics", "travel")
	if err != nil {
		t.Fatal(err)
	}
	if claims.ID == "" || claims.ExpiresAt.Before(claims.IssuedAt) {
		t.Fatalf("bad claims: %+v", claims)
	}
	got, err := s.Validate(tok)
	if err != nil {
		t.Fatal(err)
	}
	if got.Requester != "gallery" || got.Subject != "alice" ||
		got.Host != "webpics" || got.Realm != "travel" || got.ID != claims.ID {
		t.Fatalf("claims mismatch: %+v", got)
	}
}

func TestMintRequiresBinding(t *testing.T) {
	s := newTestService()
	if _, _, err := s.Mint("", "alice", "h", "r"); err == nil {
		t.Fatal("minted without requester")
	}
	if _, _, err := s.Mint("req", "alice", "", "r"); err == nil {
		t.Fatal("minted without host")
	}
	if _, _, err := s.Mint("req", "alice", "h", ""); err == nil {
		t.Fatal("minted without realm")
	}
	// Subject may be empty (autonomous service requesters).
	if _, _, err := s.Mint("req", "", "h", "r"); err != nil {
		t.Fatalf("empty subject rejected: %v", err)
	}
}

func TestValidateRejectsTampering(t *testing.T) {
	s := newTestService()
	tok, _, err := s.Mint("gallery", "alice", "webpics", "travel")
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"empty":             "",
		"no dot":            strings.ReplaceAll(tok, ".", ""),
		"two dots":          tok + ".extra",
		"bad payload b64":   "!!!." + strings.Split(tok, ".")[1],
		"bad signature b64": strings.Split(tok, ".")[0] + ".!!!",
		"flipped byte":      flipLastPayloadByte(tok),
		"truncated sig":     tok[:len(tok)-4],
	}
	for name, bad := range cases {
		if _, err := s.Validate(bad); !errors.Is(err, core.ErrTokenInvalid) {
			t.Errorf("%s: err = %v, want ErrTokenInvalid", name, err)
		}
	}
}

func flipLastPayloadByte(tok string) string {
	dot := strings.IndexByte(tok, '.')
	b := []byte(tok)
	// Flip a base64 character inside the payload to another valid one.
	if b[dot-1] == 'A' {
		b[dot-1] = 'B'
	} else {
		b[dot-1] = 'A'
	}
	return string(b)
}

func TestValidateRejectsWrongKey(t *testing.T) {
	s1 := NewService([]byte("key-one"), time.Minute)
	s2 := NewService([]byte("key-two"), time.Minute)
	tok, _, err := s1.Mint("gallery", "alice", "webpics", "travel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Validate(tok); !errors.Is(err, core.ErrTokenInvalid) {
		t.Fatalf("cross-AM token accepted: %v", err)
	}
}

func TestValidateRejectsExpired(t *testing.T) {
	s := newTestService()
	base := time.Date(2026, 6, 11, 12, 0, 0, 0, time.UTC)
	now := base
	s.SetClock(func() time.Time { return now })
	tok, _, err := s.Mint("gallery", "alice", "webpics", "travel")
	if err != nil {
		t.Fatal(err)
	}
	now = base.Add(30 * time.Second)
	if _, err := s.Validate(tok); err != nil {
		t.Fatalf("valid token rejected: %v", err)
	}
	now = base.Add(2 * time.Minute)
	if _, err := s.Validate(tok); !errors.Is(err, core.ErrTokenInvalid) {
		t.Fatalf("expired token accepted: %v", err)
	}
}

func TestRandomKeyServicesDiffer(t *testing.T) {
	s1 := NewService(nil, 0)
	s2 := NewService(nil, 0)
	tok, _, err := s1.Mint("r", "s", "h", "realm")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Validate(tok); err == nil {
		t.Fatal("random-key services share a key")
	}
	if s1.TTL() != DefaultTTL {
		t.Fatalf("default ttl = %v", s1.TTL())
	}
}

func TestKeyCopiedAtBoundary(t *testing.T) {
	key := []byte("mutable-key-material-0123456789a")
	s := NewService(key, time.Minute)
	tok, _, err := s.Mint("r", "s", "h", "realm")
	if err != nil {
		t.Fatal(err)
	}
	for i := range key {
		key[i] = 0
	}
	if _, err := s.Validate(tok); err != nil {
		t.Fatalf("service affected by caller mutating key: %v", err)
	}
}

func TestCheckScope(t *testing.T) {
	c := Claims{Requester: "gallery", Host: "webpics", Realm: "travel"}
	if err := CheckScope(c, "gallery", "webpics", "travel"); err != nil {
		t.Fatalf("exact scope rejected: %v", err)
	}
	// Empty requester skips the requester comparison (Host-side check).
	if err := CheckScope(c, "", "webpics", "travel"); err != nil {
		t.Fatalf("host-side check rejected: %v", err)
	}
	for name, args := range map[string][3]string{
		"wrong requester": {"storage", "webpics", "travel"},
		"wrong host":      {"gallery", "webdocs", "travel"},
		"wrong realm":     {"gallery", "webpics", "work"},
	} {
		err := CheckScope(c, core.RequesterID(args[0]), core.HostID(args[1]), core.RealmID(args[2]))
		if !errors.Is(err, core.ErrTokenScope) {
			t.Errorf("%s: err = %v, want ErrTokenScope", name, err)
		}
	}
}

func TestTokenIsURLSafe(t *testing.T) {
	s := newTestService()
	tok, _, err := s.Mint("gallery", "alice", "webpics", "travel")
	if err != nil {
		t.Fatal(err)
	}
	if strings.ContainsAny(tok, "+/= \n&?") {
		t.Fatalf("token not URL-safe: %q", tok)
	}
}

func TestMintValidateProperty(t *testing.T) {
	// Property: any minted token validates and returns the exact binding.
	s := newTestService()
	f := func(req, sub, host, realm string) bool {
		if req == "" || host == "" || realm == "" {
			return true
		}
		tok, _, err := s.Mint(core.RequesterID(req), core.UserID(sub), core.HostID(host), core.RealmID(realm))
		if err != nil {
			return false
		}
		c, err := s.Validate(tok)
		if err != nil {
			return false
		}
		return string(c.Requester) == req && string(c.Subject) == sub &&
			string(c.Host) == host && string(c.Realm) == realm
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTokensUniquePerMint(t *testing.T) {
	s := newTestService()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		tok, _, err := s.Mint("r", "s", "h", "realm")
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok] {
			t.Fatal("duplicate token minted")
		}
		seen[tok] = true
	}
}
