package sim

import (
	"fmt"

	"umac/internal/baseline/localacl"
	"umac/internal/baseline/pullmodel"
	"umac/internal/baseline/umastate"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
)

// This file is the workload harness behind experiments E9 (protocol-model
// comparison) and E10 (consolidated vs per-Host audit): it runs the same
// access pattern under each access-control model and reports the AM
// round-trips each one costs.

// Model names a protocol model under comparison.
type Model string

// Models.
const (
	ModelPushToken Model = "push-token" // the paper's protocol (Fig. 2)
	ModelPull      Model = "pull"       // the authors' earlier SSP'09 design
	ModelUMAState  Model = "uma-state"  // UMA authorization-state variant
	ModelLocalACL  Model = "local-acl"  // per-app ACLs, no AM (status quo)
)

// ComparisonResult reports one model's cost on a workload.
type ComparisonResult struct {
	Model Model
	// Resources and AccessesPerResource describe the workload.
	Resources           int
	AccessesPerResource int
	// Accesses actually performed (= Resources × AccessesPerResource).
	Accesses int
	// AMRoundTrips is the number of HTTP requests that reached the AM.
	AMRoundTrips int64
	// PerAccess is AMRoundTrips / Accesses.
	PerAccess float64
	// Permitted counts successful accesses (sanity: must equal Accesses).
	Permitted int
}

// comparisonWorld builds a world with one host serving n resources in one
// realm readable by alice, paired and protected.
func comparisonWorld(n int) (*World, *SimpleHost, error) {
	w := NewWorld()
	h := w.AddHost("webpics")
	ids := make([]core.ResourceID, n)
	for i := 0; i < n; i++ {
		id := core.ResourceID(fmt.Sprintf("photo-%04d", i))
		ids[i] = id
		h.AddResource("bob", "travel", id, []byte("content"))
	}
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		w.Close()
		return nil, nil, err
	}
	if err := h.Enforcer.Protect("bob", "travel", ids, ""); err != nil {
		w.Close()
		return nil, nil, err
	}
	// Management traffic flows through the typed v1 client; the per-model
	// round-trip counters reset after this setup.
	mgmt := w.Client("bob")
	p, err := mgmt.CreatePolicy(policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		w.Close()
		return nil, nil, err
	}
	if err := mgmt.LinkGeneral("bob", "travel", p.ID); err != nil {
		w.Close()
		return nil, nil, err
	}
	return w, h, nil
}

// RunComparison executes the E9 workload — alice reads each of `resources`
// resources `accessesPerResource` times — under every model and returns the
// per-model costs.
func RunComparison(resources, accessesPerResource int) ([]ComparisonResult, error) {
	var out []ComparisonResult
	for _, model := range []Model{ModelPushToken, ModelPull, ModelUMAState, ModelLocalACL} {
		res, err := runModel(model, resources, accessesPerResource)
		if err != nil {
			return nil, fmt.Errorf("sim: model %s: %w", model, err)
		}
		out = append(out, res)
	}
	return out, nil
}

func runModel(model Model, resources, accessesPerResource int) (ComparisonResult, error) {
	result := ComparisonResult{
		Model:               model,
		Resources:           resources,
		AccessesPerResource: accessesPerResource,
		Accesses:            resources * accessesPerResource,
	}

	if model == ModelLocalACL {
		// No AM at all: a per-app matrix answers locally.
		var m localacl.Matrix
		for i := 0; i < resources; i++ {
			m.Grant("bob", core.ResourceID(fmt.Sprintf("photo-%04d", i)), "alice", core.ActionRead)
		}
		for k := 0; k < accessesPerResource; k++ {
			for i := 0; i < resources; i++ {
				if m.Check("bob", core.ResourceID(fmt.Sprintf("photo-%04d", i)), "alice", core.ActionRead) {
					result.Permitted++
				}
			}
		}
		return result, nil
	}

	w, h, err := comparisonWorld(resources)
	if err != nil {
		return result, err
	}
	defer w.Close()
	pairing, _ := h.Enforcer.PairingFor("bob")
	w.ResetAMRequests()

	switch model {
	case ModelPushToken:
		client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
		for k := 0; k < accessesPerResource; k++ {
			for i := 0; i < resources; i++ {
				url := h.ResourceURL(core.ResourceID(fmt.Sprintf("photo-%04d", i)))
				if _, err := client.Fetch(url, core.ActionRead); err != nil {
					return result, err
				}
				result.Permitted++
			}
		}
	case ModelPull:
		pull := pullmodel.New(h.ID, nil, w.Tracer)
		for k := 0; k < accessesPerResource; k++ {
			for i := 0; i < resources; i++ {
				ok, err := pull.Check(pairing, "alice", "alice-browser", "travel",
					core.ResourceID(fmt.Sprintf("photo-%04d", i)), core.ActionRead)
				if err != nil {
					return result, err
				}
				if ok {
					result.Permitted++
				}
			}
		}
	case ModelUMAState:
		rc := &umastate.RequesterClient{ID: "alice-browser", Subject: "alice"}
		handle, err := rc.EstablishState(w.AMServer.URL, h.ID, "travel", "photo-0000", core.ActionRead)
		if err != nil {
			return result, err
		}
		enf := umastate.New(h.ID, nil, w.Tracer)
		for k := 0; k < accessesPerResource; k++ {
			for i := 0; i < resources; i++ {
				ok, err := enf.Check(pairing, handle, "travel",
					core.ResourceID(fmt.Sprintf("photo-%04d", i)), core.ActionRead)
				if err != nil {
					return result, err
				}
				if ok {
					result.Permitted++
				}
			}
		}
	}
	result.AMRoundTrips = w.AMRequests()
	if result.Accesses > 0 {
		result.PerAccess = float64(result.AMRoundTrips) / float64(result.Accesses)
	}
	return result, nil
}

// AdminBurden quantifies the S1 administration cost: the number of
// management operations to share `resources` resources across `hosts`
// applications with `friends` people, under per-app ACLs versus one AM.
type AdminBurden struct {
	LocalACLGrants int // per-app: hosts × resources × friends
	UMACOperations int // AM: 1 policy + friends group-adds + hosts links
}

// ComputeAdminBurden returns both costs for the given scenario size.
func ComputeAdminBurden(hosts, resources, friends int) AdminBurden {
	return AdminBurden{
		LocalACLGrants: hosts * resources * friends,
		UMACOperations: 1 + friends + hosts, // one policy, M members, one protect per host
	}
}
