package localacl

import (
	"testing"
	"testing/quick"

	"umac/internal/core"
)

func TestOwnerAlwaysAllowed(t *testing.T) {
	var m Matrix
	for _, a := range []core.Action{core.ActionRead, core.ActionWrite, core.ActionDelete} {
		if !m.Check("bob", "photo-1", "bob", a) {
			t.Errorf("owner denied %s", a)
		}
	}
}

func TestGrantAndRevoke(t *testing.T) {
	var m Matrix
	if m.Check("bob", "photo-1", "alice", core.ActionRead) {
		t.Fatal("default allowed")
	}
	m.Grant("bob", "photo-1", "alice", core.ActionRead, core.ActionList)
	if !m.Check("bob", "photo-1", "alice", core.ActionRead) {
		t.Fatal("granted read denied")
	}
	if m.Check("bob", "photo-1", "alice", core.ActionWrite) {
		t.Fatal("ungranted write allowed")
	}
	m.Revoke("bob", "photo-1", "alice", core.ActionRead)
	if m.Check("bob", "photo-1", "alice", core.ActionRead) {
		t.Fatal("revoked read allowed")
	}
	if !m.Check("bob", "photo-1", "alice", core.ActionList) {
		t.Fatal("revoke removed unrelated action")
	}
}

func TestGrantsAreResourceScoped(t *testing.T) {
	var m Matrix
	m.Grant("bob", "photo-1", "alice", core.ActionRead)
	if m.Check("bob", "photo-2", "alice", core.ActionRead) {
		t.Fatal("grant leaked across resources")
	}
	if m.Check("carol", "photo-1", "alice", core.ActionRead) {
		t.Fatal("grant leaked across owners")
	}
}

func TestPublic(t *testing.T) {
	var m Matrix
	m.SetPublic("bob", "photo-1", true)
	if !m.Check("bob", "photo-1", "anyone", core.ActionRead) {
		t.Fatal("public read denied")
	}
	if !m.Check("bob", "photo-1", "", core.ActionList) {
		t.Fatal("public list denied for anonymous")
	}
	if m.Check("bob", "photo-1", "anyone", core.ActionWrite) {
		t.Fatal("public write allowed")
	}
	m.SetPublic("bob", "photo-1", false)
	if m.Check("bob", "photo-1", "anyone", core.ActionRead) {
		t.Fatal("unpublished resource readable")
	}
}

func TestSubjects(t *testing.T) {
	var m Matrix
	m.Grant("bob", "photo-1", "alice", core.ActionRead)
	m.Grant("bob", "photo-1", "chris", core.ActionRead)
	got := m.Subjects("bob", "photo-1")
	if len(got) != 2 || got[0] != "alice" || got[1] != "chris" {
		t.Fatalf("subjects = %v", got)
	}
	m.Revoke("bob", "photo-1", "alice", core.ActionRead)
	if got := m.Subjects("bob", "photo-1"); len(got) != 1 || got[0] != "chris" {
		t.Fatalf("subjects after revoke = %v", got)
	}
}

func TestGrantCountQuantifiesAdminBurden(t *testing.T) {
	// The S1 pain: sharing N resources with M friends costs N*M grants per
	// application — exactly what GrantCount reports.
	var m Matrix
	friends := []core.UserID{"alice", "chris", "dana"}
	resources := []core.ResourceID{"p1", "p2", "p3", "p4"}
	for _, r := range resources {
		for _, f := range friends {
			m.Grant("bob", r, f, core.ActionRead)
		}
	}
	if got := m.GrantCount(); got != len(friends)*len(resources) {
		t.Fatalf("grant count = %d, want %d", got, len(friends)*len(resources))
	}
}

func TestGrantCheckProperty(t *testing.T) {
	var m Matrix
	f := func(owner, resource, subject string) bool {
		o, s := core.UserID(owner), core.UserID(subject)
		r := core.ResourceID(resource)
		m.Grant(o, r, s, core.ActionRead)
		if !m.Check(o, r, s, core.ActionRead) {
			return false
		}
		m.Revoke(o, r, s, core.ActionRead)
		// After revocation only the owner keeps access.
		return m.Check(o, r, s, core.ActionRead) == (s == o && s != "")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
