// Package umac is the public facade of the user-managed access control
// library, a Go implementation of Machulak & van Moorsel, "Architecture and
// Protocol for User-Controlled Access Management in Web 2.0 Applications"
// (Newcastle CS-TR-1191 / ICDCS 2010).
//
// The system has four actors (Fig. 1 of the paper):
//
//   - a User owns resources scattered across Web applications;
//   - Hosts store those resources and enforce decisions (PEP);
//   - a user-chosen Authorization Manager (AM) stores the user's policies
//     centrally, decides access requests (PAP+PDP) and issues authorization
//     tokens;
//   - Requesters obtain tokens from the AM and present them to Hosts.
//
// Typical use:
//
//	// Run an Authorization Manager.
//	authMgr := umac.NewAM(umac.AMConfig{Name: "my-am"})
//	http.ListenAndServe(":8080", authMgr.Handler())
//
//	// Protect a Host application.
//	enforcer := umac.NewEnforcer(umac.EnforcerConfig{Host: "webpics"})
//	// ... pair via enforcer.BeginPairing / HandlePairCallback, then:
//	if enforcer.Require(w, r, owner, realm, resource, umac.ActionRead) {
//	    // serve the resource
//	}
//
//	// Access protected resources as a Requester.
//	client := umac.NewRequester(umac.RequesterConfig{ID: "my-app", Subject: "alice"})
//	data, err := client.Fetch(resourceURL, umac.ActionRead)
//
// The facade re-exports the protocol-level types from the internal
// packages; the full surface (policy engine, DSL, stores, baselines,
// prototype applications) lives under internal/ and is exercised by the
// examples and the benchmark harness.
package umac

import (
	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/pep"
	"umac/internal/policy"
	"umac/internal/policylang"
	"umac/internal/requester"
	"umac/internal/store"
)

// Core protocol vocabulary.
type (
	// Action is an operation on a resource.
	Action = core.Action
	// Decision is a permit/deny outcome.
	Decision = core.Decision
	// UserID identifies a user.
	UserID = core.UserID
	// HostID identifies a Host application.
	HostID = core.HostID
	// RequesterID identifies a Requester application.
	RequesterID = core.RequesterID
	// RealmID identifies a protected group of resources.
	RealmID = core.RealmID
	// ResourceID identifies a resource within a Host.
	ResourceID = core.ResourceID
	// PolicyID identifies a stored policy.
	PolicyID = core.PolicyID
	// Tracer collects protocol trace events.
	Tracer = core.Tracer
)

// Actions.
const (
	ActionRead   = core.ActionRead
	ActionWrite  = core.ActionWrite
	ActionDelete = core.ActionDelete
	ActionList   = core.ActionList
	ActionShare  = core.ActionShare
)

// Authorization Manager.
type (
	// AM is an Authorization Manager instance.
	AM = am.AM
	// AMConfig configures an AM.
	AMConfig = am.Config
	// AMEventsConfig tunes the AM's streaming event control plane
	// (the GET /v1/events endpoint family): per-subscriber buffering,
	// the resume replay window, and the SSE heartbeat interval.
	AMEventsConfig = am.EventsConfig
	// Outbox is the simulated e-mail/SMS consent channel.
	Outbox = am.Outbox
	// ReplicationConfig selects an AM's role in a replicated deployment:
	// a primary streams its write-ahead log on /v1/replication/*, a
	// follower applies it and serves the read-only decision path.
	ReplicationConfig = am.ReplicationConfig
	// ReplicationRole is the primary/follower selector.
	ReplicationRole = am.ReplicationRole
	// AMAbuseConfig enables and sizes the AM's per-tenant token-bucket
	// rate limiter: per-pairing, per-session-user and per-remote-IP
	// budgets in route-cost units per second, each with a burst capacity.
	// Over-budget requests answer the structured rate_limited error (429,
	// retryable) with a Retry-After hint; the gauges surface on
	// /v1/healthz and /v1/metrics. The zero value disables the limiter.
	AMAbuseConfig = am.AbuseConfig
)

// Replication roles for ReplicationConfig.Role.
const (
	// RolePrimary serves writes and streams its WAL to followers.
	RolePrimary = am.RolePrimary
	// RoleFollower syncs from a primary and serves reads only.
	RoleFollower = am.RoleFollower
)

// Sharded cluster (consistent-hash owner sharding across replication
// groups).
type (
	// ClusterConfig places an AM in a sharded multi-primary cluster.
	ClusterConfig = am.ClusterConfig
	// ClusterRing is the consistent-hash owner ring of a sharded cluster.
	ClusterRing = cluster.Ring
	// ShardInfo names one shard: its name, primary URL and endpoints.
	ShardInfo = core.ShardInfo
	// AMClusterClient routes AM calls by resource owner across shards,
	// chasing wrong_shard hints once and failing over within each shard.
	AMClusterClient = amclient.ClusterClient
)

// NewClusterRing builds the owner ring every node and client of a sharded
// deployment shares; vnodes <= 0 selects the default (64 per shard).
func NewClusterRing(shards []ShardInfo, vnodes int) (*ClusterRing, error) {
	return cluster.New(shards, vnodes)
}

// ParseRingSpec parses the amserver -ring flag syntax
// ("name=primaryURL[|followerURL...]", comma-separated).
func ParseRingSpec(spec string) ([]ShardInfo, error) { return cluster.ParseSpec(spec) }

// NewAMClusterClient builds a shard-aware AM client: the configuration's
// BaseURL seeds the GET /v1/cluster ring fetch, and the remaining fields
// template the per-shard clients.
func NewAMClusterClient(cfg AMClientConfig) (*AMClusterClient, error) {
	return amclient.NewCluster(cfg)
}

// NewAM constructs an Authorization Manager.
func NewAM(cfg AMConfig) *AM { return am.New(cfg) }

// Typed AM API client.
type (
	// AMClient is the typed client for the AM's versioned v1 HTTP API:
	// every protocol and management route, with signed (Host) and
	// session (management) authentication built in. Errors are
	// *APIError values carrying stable machine-readable codes.
	AMClient = amclient.Client
	// AMClientConfig configures an AMClient.
	AMClientConfig = amclient.Config
	// Page selects a window of a paginated list endpoint.
	Page = amclient.Page
	// AuditFilter narrows an AMClient audit query.
	AuditFilter = amclient.AuditFilter
	// EventStream is a reconnecting subscription to an AM event endpoint:
	// it resumes from its cursor across drops and surfaces gaps as resync
	// events.
	EventStream = amclient.EventStream
	// StreamConfig configures an AMClient.Stream subscription.
	StreamConfig = amclient.StreamConfig
	// Event is one envelope on the AM's event control plane.
	Event = core.Event
	// EventType partitions the event control plane: invalidation, consent,
	// replication, resync.
	EventType = core.EventType
	// APIError is the structured error envelope of the v1 API.
	APIError = core.APIError
)

// NewAMClient constructs a typed AM API client.
func NewAMClient(cfg AMClientConfig) *AMClient { return amclient.New(cfg) }

// Host-side enforcement.
type (
	// Enforcer is a Host's policy enforcement point.
	Enforcer = pep.Enforcer
	// EnforcerConfig configures an Enforcer.
	EnforcerConfig = pep.Config
)

// NewEnforcer constructs a Host enforcer.
func NewEnforcer(cfg EnforcerConfig) *Enforcer { return pep.New(cfg) }

// Requester side.
type (
	// Requester is a protocol-aware HTTP client.
	Requester = requester.Client
	// RequesterConfig configures a Requester.
	RequesterConfig = requester.Config
)

// NewRequester constructs a Requester client.
func NewRequester(cfg RequesterConfig) *Requester { return requester.New(cfg) }

// Policies.
type (
	// Policy is an access-control policy.
	Policy = policy.Policy
	// Rule is one policy rule.
	Rule = policy.Rule
	// Subject is a rule subject.
	Subject = policy.Subject
	// Condition guards a rule.
	Condition = policy.Condition
)

// Policy kinds and effects.
const (
	KindGeneral  = policy.KindGeneral
	KindSpecific = policy.KindSpecific
	EffectPermit = policy.EffectPermit
	EffectDeny   = policy.EffectDeny
)

// ParsePolicies parses the textual policy DSL (see internal/policylang).
func ParsePolicies(owner UserID, src string) ([]Policy, error) {
	return policylang.Parse(owner, src)
}

// FormatPolicies renders policies in the textual DSL.
func FormatPolicies(policies []Policy) string {
	return policylang.Format(policies)
}

// Store is the sharded, WAL-backed datastore used for AM and Host state.
type Store = store.Store

// StoreOption customizes OpenStore (see StoreWithoutWAL, StoreWithFsync,
// StoreWithWALPath).
type StoreOption = store.Option

// NewStore returns an empty memory-only datastore for AM state.
func NewStore() *Store { return store.New() }

// OpenStore opens a durable datastore rooted at path: the snapshot file is
// loaded if present, the write-ahead log beside it is replayed, and every
// subsequent write is logged before it is acknowledged. Snapshot(path)
// compacts the log; Close releases it.
func OpenStore(path string, opts ...StoreOption) (*Store, error) { return store.Open(path, opts...) }

// StoreWithoutWAL disables the write-ahead log: state persists only on
// explicit Snapshot calls (the pre-WAL behaviour).
func StoreWithoutWAL() StoreOption { return store.WithoutWAL() }

// StoreWithFsync fsyncs the write-ahead log on every commit, extending the
// durability guarantee from "survives process kills" to "survives machine
// crashes". Concurrent writers are group-committed and share one fsync per
// batch, so the latency cost amortizes across them.
func StoreWithFsync() StoreOption { return store.WithFsync() }

// StoreWithWALPath roots the write-ahead log's segment files at an
// explicit path instead of "<state path>.wal".
func StoreWithWALPath(path string) StoreOption { return store.WithWALPath(path) }

// StoreWithWALSegmentSize sets the WAL segment roll threshold in bytes.
func StoreWithWALSegmentSize(n int64) StoreOption { return store.WithWALSegmentSize(n) }
