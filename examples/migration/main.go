// Migration demonstrates escaping the Section III.2 lock-in: Bob has years
// of sharing rules inside one application's built-in ACL matrix and wants
// to (a) carry them to his Authorization Manager as portable policies and
// (b) move between AMs without recomposing anything — the DSL and the
// JSON/XML interchange formats make both a mechanical export/import.
//
// Run with: go run ./examples/migration
package main

import (
	"bytes"
	"fmt"
	"log"

	"umac"
	"umac/internal/baseline/localacl"
	"umac/internal/policy"
	"umac/internal/policylang"
	"umac/internal/sim"
)

func main() {
	// Bob's legacy state: a per-app ACL matrix he maintained by hand.
	var legacy localacl.Matrix
	resources := []umac.ResourceID{"/travel/lion.jpg", "/travel/camp.jpg", "/work/slides.pdf"}
	legacy.Grant("bob", "/travel/lion.jpg", "alice", umac.ActionRead, umac.ActionList)
	legacy.Grant("bob", "/travel/lion.jpg", "chris", umac.ActionRead)
	legacy.Grant("bob", "/travel/camp.jpg", "alice", umac.ActionRead)
	legacy.Grant("bob", "/work/slides.pdf", "dana", umac.ActionRead, umac.ActionWrite)
	fmt.Printf("legacy app holds %d hand-maintained grants\n", legacy.GrantCount())

	// Step 1: convert the matrix into portable AM policies.
	migrated := policylang.FromMatrix("bob", &legacy, resources)
	fmt.Printf("converted into %d portable policies:\n\n", len(migrated))
	fmt.Println(policylang.Format(migrated))

	// Step 2: load them into Bob's first AM (plus a general outer-bound
	// policy, since specific policies refine a general permit).
	world1 := sim.NewWorld()
	defer world1.Close()
	general, err := umac.ParsePolicies("bob", `
policy "outer-bound" general {
  permit everyone read, write, list
}`)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := world1.AM.CreatePolicy("bob", general[0]); err != nil {
		log.Fatal(err)
	}
	for _, p := range migrated {
		if _, err := world1.AM.CreatePolicy("bob", p); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("AM1 now holds %d policies\n", len(world1.AM.ListPolicies("bob")))

	// Step 3: Bob switches AM providers. Export everything from AM1 in the
	// JSON interchange format and import into AM2 — nothing is recomposed.
	var buf bytes.Buffer
	if err := world1.AM.ExportPolicies(&buf, "bob", policy.FormatJSON); err != nil {
		log.Fatal(err)
	}
	world2 := sim.NewWorld()
	defer world2.Close()
	n, err := world2.AM.ImportPolicies("bob", "bob", bytes.NewReader(buf.Bytes()), policy.FormatJSON)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AM2 imported %d policies verbatim (R2: one language, portable)\n", n)

	// The same export also round-trips through XML and the textual DSL.
	var xmlBuf bytes.Buffer
	if err := world2.AM.ExportPolicies(&xmlBuf, "bob", policy.FormatXML); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("XML export: %d bytes; DSL rendering of the imported set:\n\n", xmlBuf.Len())
	fmt.Println(policylang.Format(world2.AM.ListPolicies("bob")[:1]))
}
