// Package pep is the Host-side policy enforcement point: "a Host is only
// concerned with access control enforcement of decisions that are issued by
// AM. As such, a Host acts as a policy enforcement point (PEP)" (Section
// V.A.3).
//
// The Enforcer manages the Host's side of the protocol:
//
//   - pairing with a user's chosen AM (Fig. 3);
//   - registering protected realms (Fig. 4, Host leg);
//   - intercepting resource accesses, referring tokenless Requesters to the
//     AM (Fig. 5, Host leg), and querying decisions for token-bearing
//     requests (Fig. 6);
//   - caching decisions under the AM's user-controlled TTL so subsequent
//     accesses bypass the AM entirely (Section V.B.6).
//
// It is the "general library that could be easily reused by other
// cloud-based applications" the paper aims for in Section VII; the storage
// and gallery prototypes in internal/apps both embed it.
package pep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/store"
)

// Headers used on Host→Requester referral responses (the programmatic form
// of the Fig. 5 redirect).
const (
	HeaderAM       = "X-Umac-Am"
	HeaderHost     = "X-Umac-Host"
	HeaderRealm    = "X-Umac-Realm"
	HeaderResource = "X-Umac-Resource"
	HeaderAction   = "X-Umac-Action"
)

// TokenScheme is the Authorization scheme carrying authorization tokens.
const TokenScheme = "UMAC"

// Pairing is the Host's record of its trust relationship with an AM.
type Pairing struct {
	AMURL     string      `json:"am_url"`
	PairingID string      `json:"pairing_id"`
	Secret    string      `json:"secret"`
	User      core.UserID `json:"user"`
}

// Config configures an Enforcer.
type Config struct {
	// Host is this Host's protocol identity.
	Host core.HostID
	// Name is the human-readable application name shown on consent pages.
	Name string
	// BaseURL is the Host's externally reachable URL (for pairing
	// callbacks).
	BaseURL string
	// HTTPClient performs Host→AM calls; nil means http.DefaultClient.
	HTTPClient *http.Client
	// Cache is the decision cache; nil means a fresh cache.
	Cache *DecisionCache
	// Tracer records protocol events.
	Tracer *core.Tracer
	// Store, when non-nil, persists pairings: existing ones are loaded on
	// construction and changes are written through, so a Host restarted
	// against a durable (WAL-backed) store keeps its AM trust
	// relationships. nil keeps pairings in memory only.
	Store *store.Store
	// StreamRetry is how long an invalidation-stream goroutine pauses
	// after the stream fails persistently before trying again; 0 means
	// DefaultStreamRetry. See StartInvalidationStream.
	StreamRetry time.Duration
}

// Store kinds used by the enforcer for persisted pairing state.
const (
	kindPairing      = "pep_pairing"       // key: owner user ID
	kindRealmPairing = "pep_realm_pairing" // key: owner + NUL + realm
)

// realmPairingRecord is the persisted form of a realm-scoped pairing. Owner
// and realm travel as fields (not parsed back out of the key) so IDs may
// contain any separator character.
type realmPairingRecord struct {
	Owner   core.UserID  `json:"owner"`
	Realm   core.RealmID `json:"realm"`
	Pairing Pairing      `json:"pairing"`
}

// realmPairingKey builds the store key for (owner, realm). NUL cannot
// appear in IDs that arrive over HTTP query/path encoding, so the key is
// collision-free even for owners containing '/'.
func realmPairingKey(owner core.UserID, realm core.RealmID) string {
	return string(owner) + "\x00" + string(realm)
}

// Enforcer is a Host's policy enforcement point. Create with New.
type Enforcer struct {
	host    core.HostID
	name    string
	baseURL string
	client  *http.Client
	cache   *DecisionCache
	tracer  *core.Tracer
	store   *store.Store // nil = memory-only pairings

	verifierOnce sync.Once
	verifier     *httpsig.Verifier

	// streamCtx governs every subscription goroutine (see events.go):
	// Close cancels it, which severs parked stream reads and reconnect
	// backoff sleeps immediately — the same discipline as the AM's
	// follower-sync loop, so Close never waits out a timeout.
	streamCtx    context.Context
	streamCancel context.CancelFunc
	streamWG     sync.WaitGroup
	streamRetry  time.Duration

	// flights collapses concurrent decision queries for one cache key into
	// a single signed round-trip (see singleflight.go).
	flights flightGroup

	mu       sync.RWMutex
	pairings map[core.UserID]Pairing // per-owner default AM pairing
	// realmPairings holds per-realm AM overrides: the Section V.D
	// extension where "a User may ... delegate access control for
	// different resources to different AMs as well".
	realmPairings map[realmKey]Pairing
}

// realmKey identifies an owner's realm at this Host.
type realmKey struct {
	owner core.UserID
	realm core.RealmID
}

// New constructs an Enforcer.
func New(cfg Config) *Enforcer {
	client := cfg.HTTPClient
	if client == nil {
		client = http.DefaultClient
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewDecisionCache()
	}
	name := cfg.Name
	if name == "" {
		name = string(cfg.Host)
	}
	retry := cfg.StreamRetry
	if retry <= 0 {
		retry = DefaultStreamRetry
	}
	e := &Enforcer{
		host:          cfg.Host,
		name:          name,
		baseURL:       cfg.BaseURL,
		client:        client,
		cache:         cache,
		tracer:        cfg.Tracer,
		store:         cfg.Store,
		streamRetry:   retry,
		pairings:      make(map[core.UserID]Pairing),
		realmPairings: make(map[realmKey]Pairing),
	}
	e.streamCtx, e.streamCancel = context.WithCancel(context.Background())
	e.loadPairings()
	return e
}

// Close stops every stream subscription goroutine the enforcer started,
// cancelling parked reads and backoff sleeps so it returns promptly. The
// enforcement surface (Check, Require) keeps working — only push-driven
// freshness stops.
func (e *Enforcer) Close() error {
	e.streamCancel()
	e.streamWG.Wait()
	return nil
}

// loadPairings rehydrates persisted pairings from the backing store.
func (e *Enforcer) loadPairings() {
	if e.store == nil {
		return
	}
	for _, ent := range e.store.List(kindPairing) {
		var p Pairing
		if err := ent.Decode(&p); err == nil {
			e.pairings[p.User] = p
		}
	}
	for _, ent := range e.store.List(kindRealmPairing) {
		var rec realmPairingRecord
		if err := ent.Decode(&rec); err == nil {
			e.realmPairings[realmKey{rec.Owner, rec.Realm}] = rec.Pairing
		}
	}
}

// Host returns the enforcer's host identity.
func (e *Enforcer) Host() core.HostID { return e.host }

// SetBaseURL records the externally reachable URL once known.
func (e *Enforcer) SetBaseURL(u string) { e.baseURL = u }

// Cache exposes the decision cache (metrics, invalidation).
func (e *Enforcer) Cache() *DecisionCache { return e.cache }

func (e *Enforcer) trace(phase core.Phase, from, to, op, detail string) {
	e.tracer.Record(phase, from, to, op, detail)
}

// --- Pairing (Fig. 3) ---

// BeginPairing returns the AM confirmation URL the user's browser must
// visit: the first leg of Fig. 3 ("A User ... is then redirected from the
// Host to AM to confirm that this particular Host can delegate its access
// control functionality to this component").
func (e *Enforcer) BeginPairing(amURL string, user core.UserID) string {
	q := url.Values{}
	q.Set(core.ParamHost, string(e.host))
	q.Set("host_name", e.name)
	q.Set("host_url", e.baseURL)
	q.Set(core.ParamReturnTo, e.baseURL+"/umac/pair/callback?"+url.Values{
		core.ParamAM:   {amURL},
		core.ParamUser: {string(user)},
	}.Encode())
	e.trace(core.PhaseDelegatingAccessControl, "host:"+string(e.host), "user:"+string(user),
		"redirect-to-am", amURL)
	return amclient.PairConfirmURL(amURL, q)
}

// CompletePairing exchanges the one-time code at the AM for the channel
// secret — the closing leg of Fig. 3. It stores the pairing as the user's
// default.
func (e *Enforcer) CompletePairing(amURL string, user core.UserID, code string) (Pairing, error) {
	p, err := e.exchange(amURL, code)
	if err != nil {
		return Pairing{}, err
	}
	p.User = user
	// Persist before installing, under the same critical section: on a
	// persist failure the enforcer does not start honoring a pairing the
	// caller was told failed, and racing completions for one user cannot
	// commit different pairings to memory and disk.
	e.mu.Lock()
	if e.store != nil {
		if _, err := e.store.Put(kindPairing, string(user), p); err != nil {
			e.mu.Unlock()
			return Pairing{}, fmt.Errorf("pep: persist pairing: %w", err)
		}
	}
	e.pairings[user] = p
	e.mu.Unlock()
	e.trace(core.PhaseDelegatingAccessControl, "host:"+string(e.host), "am",
		"pairing-complete", p.PairingID)
	return p, nil
}

// amFor returns a typed AM client signing with the pairing's credentials.
func (e *Enforcer) amFor(p Pairing) *amclient.Client {
	return amclient.New(amclient.Config{
		BaseURL:    p.AMURL,
		HTTPClient: e.client,
		PairingID:  p.PairingID,
		Secret:     p.Secret,
	})
}

// exchange performs the code-for-secret exchange at an AM.
func (e *Enforcer) exchange(amURL, code string) (Pairing, error) {
	c := amclient.New(amclient.Config{BaseURL: amURL, HTTPClient: e.client})
	pr, err := c.ExchangePairingCode(code, e.host)
	if err != nil {
		return Pairing{}, fmt.Errorf("pep: pairing exchange: %w", err)
	}
	return Pairing{AMURL: c.BaseURL(), PairingID: pr.PairingID, Secret: pr.Secret}, nil
}

// HandlePairCallback is the HTTP handler for the pairing redirect leg; Host
// applications mount it at /umac/pair/callback.
func (e *Enforcer) HandlePairCallback(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	amURL := q.Get(core.ParamAM)
	user := core.UserID(q.Get(core.ParamUser))
	code := q.Get("code")
	if amURL == "" || code == "" {
		http.Error(w, "pep: missing am or code", http.StatusBadRequest)
		return
	}
	if _, err := e.CompletePairing(amURL, user, code); err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	// "a User is redirected back to the Host to be acknowledged that a
	// secure communication channel has been established" (Section V.B.1).
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"paired": string(user), "host": string(e.host)})
}

// PairingSecret implements httpsig.SecretSource over the enforcer's
// pairings, letting the Host verify AM-originated signed calls (cache
// invalidation pushes).
func (e *Enforcer) PairingSecret(pairingID string) (string, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	for _, p := range e.pairings {
		if p.PairingID == pairingID {
			return p.Secret, true
		}
	}
	for _, p := range e.realmPairings {
		if p.PairingID == pairingID {
			return p.Secret, true
		}
	}
	return "", false
}

// HandleInvalidate serves the AM→Host decision-cache invalidation push
// (mounted at am.InvalidatePath). The request must be signed with a known
// pairing secret. The body (core.InvalidationPush) names the owner and the
// realms/resources a policy change affected; only the matching cache
// entries are evicted, so unrelated cached decisions keep serving locally
// while the change still takes effect immediately (Section V.B.5). A push
// that names no owner — or an unreadable body — degrades to dropping the
// whole cache: when in doubt, never leave a stale permit behind.
func (e *Enforcer) HandleInvalidate(w http.ResponseWriter, r *http.Request) {
	e.verifierOnce.Do(func() { e.verifier = httpsig.NewVerifier(e) })
	if _, err := e.verifier.Verify(r); err != nil {
		http.Error(w, err.Error(), http.StatusUnauthorized)
		return
	}
	var push core.InvalidationPush
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&push); err != nil || push.Owner == "" {
		e.cache.Invalidate()
		e.trace(core.PhaseObtainingDecision, "am", "host:"+string(e.host),
			"cache-invalidated", "all")
		w.WriteHeader(http.StatusNoContent)
		return
	}
	n := e.cache.InvalidateScope(Scope{
		Owner:     push.Owner,
		Realms:    push.Realms,
		Resources: push.Resources,
	})
	e.trace(core.PhaseObtainingDecision, "am", "host:"+string(e.host),
		"cache-invalidated", fmt.Sprintf("owner=%s realms=%d resources=%d evicted=%d",
			push.Owner, len(push.Realms), len(push.Resources), n))
	w.WriteHeader(http.StatusNoContent)
}

// PairingFor returns the owner's default pairing.
func (e *Enforcer) PairingFor(owner core.UserID) (Pairing, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	p, ok := e.pairings[owner]
	return p, ok
}

// SetRealmPairing routes one realm's protection to a specific AM pairing,
// overriding the owner's default AM for that realm (Section V.D: different
// AMs for different resources). Obtain the pairing with CompleteRealmPairing
// or construct it from a stored credential.
func (e *Enforcer) SetRealmPairing(owner core.UserID, realm core.RealmID, p Pairing) {
	e.setRealmPairing(owner, realm, p)
}

// setRealmPairing persists and installs a realm pairing, reporting
// persistence failures (SetRealmPairing's signature predates the store and
// drops them; the protocol path surfaces them via CompleteRealmPairing).
func (e *Enforcer) setRealmPairing(owner core.UserID, realm core.RealmID, p Pairing) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.store != nil {
		rec := realmPairingRecord{Owner: owner, Realm: realm, Pairing: p}
		if _, err := e.store.Put(kindRealmPairing, realmPairingKey(owner, realm), rec); err != nil {
			return fmt.Errorf("pep: persist realm pairing: %w", err)
		}
	}
	e.realmPairings[realmKey{owner, realm}] = p
	return nil
}

// CompleteRealmPairing exchanges a pairing code at the given AM and binds
// the resulting pairing to one realm only (the owner's default pairing is
// untouched).
func (e *Enforcer) CompleteRealmPairing(amURL string, owner core.UserID, realm core.RealmID, code string) (Pairing, error) {
	p, err := e.exchange(amURL, code)
	if err != nil {
		return Pairing{}, err
	}
	p.User = owner
	if err := e.setRealmPairing(owner, realm, p); err != nil {
		return Pairing{}, err
	}
	e.trace(core.PhaseDelegatingAccessControl, "host:"+string(e.host), "am",
		"realm-pairing-complete", fmt.Sprintf("%s -> %s", realm, p.PairingID))
	return p, nil
}

// pairingForRealm resolves the pairing protecting (owner, realm): the
// realm-specific pairing when present, otherwise the owner's default.
func (e *Enforcer) pairingForRealm(owner core.UserID, realm core.RealmID) (Pairing, bool) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if p, ok := e.realmPairings[realmKey{owner, realm}]; ok {
		return p, true
	}
	p, ok := e.pairings[owner]
	return p, ok
}

// Delegated reports whether owner has delegated this Host's access control
// to an AM.
func (e *Enforcer) Delegated(owner core.UserID) bool {
	_, ok := e.PairingFor(owner)
	return ok
}

// Unpair drops the owner's pairing (e.g. after the AM reports it revoked).
// The in-memory pairing is removed unconditionally (fail-safe for a
// revocation); a non-nil error means the persisted copy may survive and
// resurrect on the next restart.
func (e *Enforcer) Unpair(owner core.UserID) error {
	e.mu.Lock()
	delete(e.pairings, owner)
	e.mu.Unlock()
	if e.store == nil {
		return nil
	}
	if err := e.store.Delete(kindPairing, string(owner)); err != nil && !errors.Is(err, store.ErrNotFound) {
		return fmt.Errorf("pep: unpersist pairing: %w", err)
	}
	return nil
}

// --- Protecting resources (Fig. 4, Host leg) ---

// Protect registers owner's realm (and optionally its resource list and a
// policy link) with the owner's AM over the signed channel.
func (e *Enforcer) Protect(owner core.UserID, realm core.RealmID, resources []core.ResourceID, pol core.PolicyID) error {
	p, ok := e.pairingForRealm(owner, realm)
	if !ok {
		return core.ErrNotPaired
	}
	req := core.ProtectRequest{
		PairingID: p.PairingID,
		User:      owner,
		Realm:     realm,
		Resources: resources,
		Policy:    pol,
	}
	if _, err := e.amFor(p).Protect(req); err != nil {
		return fmt.Errorf("pep: protect %s: %w", realm, err)
	}
	e.trace(core.PhaseComposingPolicies, "host:"+string(e.host), "am",
		"protect", string(realm))
	return nil
}

// ComposeURL returns the AM policy-composition URL a Host's "share" control
// redirects the user to (Fig. 4: "a User does not access the configuration
// menu but is redirected to this AM").
func (e *Enforcer) ComposeURL(owner core.UserID, realm core.RealmID) (string, error) {
	p, ok := e.pairingForRealm(owner, realm)
	if !ok {
		return "", core.ErrNotPaired
	}
	q := url.Values{}
	q.Set(core.ParamHost, string(e.host))
	q.Set(core.ParamRealm, string(realm))
	q.Set(core.ParamReturnTo, e.baseURL)
	return amclient.ComposeURL(p.AMURL, q), nil
}

// --- Enforcement (Figs. 5, 6 and subsequent access) ---

// Verdict classifies the outcome of a Check.
type Verdict int

// Verdicts.
const (
	// VerdictAllow: serve the resource.
	VerdictAllow Verdict = iota + 1
	// VerdictDeny: refuse with 403.
	VerdictDeny
	// VerdictNeedToken: the request carried no token; refer the Requester
	// to the AM (Fig. 5).
	VerdictNeedToken
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case VerdictAllow:
		return "allow"
	case VerdictDeny:
		return "deny"
	case VerdictNeedToken:
		return "need-token"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// CheckResult is the outcome of an enforcement check.
type CheckResult struct {
	Verdict Verdict
	// Reason explains denials.
	Reason string
	// CacheHit is true when the decision came from the local cache —
	// the Section V.B.6 fast path with no AM round-trip.
	CacheHit bool
	// AMURL is the owner's AM base URL (set for VerdictNeedToken).
	AMURL string
}

// ExtractToken pulls the authorization token from a request: the
// "Authorization: UMAC <token>" header (preferred), a Bearer header, or the
// ?token= query parameter (for browser redirects back from the AM).
func ExtractToken(r *http.Request) (string, bool) {
	if h := r.Header.Get("Authorization"); h != "" {
		parts := strings.SplitN(h, " ", 2)
		if len(parts) == 2 && (strings.EqualFold(parts[0], TokenScheme) || strings.EqualFold(parts[0], "Bearer")) {
			return strings.TrimSpace(parts[1]), parts[1] != ""
		}
	}
	if t := r.URL.Query().Get(core.ParamToken); t != "" {
		return t, true
	}
	return "", false
}

// Check enforces access to (owner, realm, resource, action) for the given
// request. It never writes to the response; use Require for the common
// serve-or-refuse pattern.
func (e *Enforcer) Check(r *http.Request, owner core.UserID, realm core.RealmID, res core.ResourceID, action core.Action) (CheckResult, error) {
	p, ok := e.pairingForRealm(owner, realm)
	if !ok {
		return CheckResult{}, core.ErrNotPaired
	}
	tok, ok := ExtractToken(r)
	if !ok {
		e.trace(core.PhaseObtainingToken, "host:"+string(e.host), "requester",
			"refer-to-am", string(res))
		return CheckResult{Verdict: VerdictNeedToken, AMURL: p.AMURL}, nil
	}

	key := cacheKey(tok, res, action)
	if decision, ok := e.cache.Get(key); ok {
		e.trace(core.PhaseSubsequentAccess, "host:"+string(e.host), "host:"+string(e.host),
			"enforce-cached", fmt.Sprintf("%s %s=%v", res, action, decision))
		verdict := VerdictDeny
		if decision {
			verdict = VerdictAllow
		}
		return CheckResult{Verdict: verdict, CacheHit: true}, nil
	}

	// Fig. 6: decision query over the signed channel. Concurrent misses for
	// the same key collapse into one query — the leader asks the AM and
	// fills the cache, followers share its response.
	dec, err, shared := e.flights.do(key, func() (core.DecisionResponse, error) {
		q := core.DecisionQuery{
			PairingID: p.PairingID,
			Host:      e.host,
			Realm:     realm,
			Resource:  res,
			Action:    action,
			Token:     tok,
		}
		// Capture the invalidation generation before the query: if a push
		// lands while the response is in flight, the decision may predate
		// the policy change and must not be written back.
		gen := e.cache.Gen()
		e.trace(core.PhaseObtainingDecision, "host:"+string(e.host), "am",
			"decision-query-sent", string(res))
		d, err := e.amFor(p).Decide(q)
		if err != nil {
			return core.DecisionResponse{}, fmt.Errorf("pep: decision query: %w", err)
		}
		// Token-problem denials are about the token, not the policy; they
		// must never be cached no matter what TTL the response claims.
		if d.CacheTTLSeconds > 0 && !d.TokenProblem {
			e.cache.PutScopedAt(gen, key, EntryScope{Owner: owner, Realm: realm, Resource: res},
				d.Permit(), d.CacheTTLSeconds)
		}
		return d, nil
	})
	if err != nil {
		return CheckResult{}, err
	}
	if dec.TokenProblem {
		// The token itself is bad (expired, forged, out of scope): refer
		// the Requester back to the AM for a fresh one rather than
		// answering with a terminal deny.
		e.trace(core.PhaseObtainingToken, "host:"+string(e.host), "requester",
			"refer-to-am", "token problem: "+dec.Reason)
		return CheckResult{Verdict: VerdictNeedToken, AMURL: p.AMURL, Reason: dec.Reason}, nil
	}
	verdict := VerdictDeny
	if dec.Permit() {
		verdict = VerdictAllow
	}
	// A shared result cost this caller no round-trip of its own — report it
	// like a cache hit so the fast path stays visible in metrics.
	return CheckResult{Verdict: verdict, Reason: dec.Reason, CacheHit: shared}, nil
}

// ResourceAction names one (resource, action) pair in a batched check.
type ResourceAction struct {
	Resource core.ResourceID
	Action   core.Action
}

// CheckBatch enforces access to many (resource, action) pairs of one
// owner's realm in a single pass: cached decisions answer locally and every
// uncached pair is resolved in ONE signed round-trip via the AM's batch
// decision endpoint — a Host rendering a listing of N protected resources
// pays one query instead of N (the batched form of Fig. 6). Results[i]
// corresponds to pairs[i].
func (e *Enforcer) CheckBatch(r *http.Request, owner core.UserID, realm core.RealmID, pairs []ResourceAction) ([]CheckResult, error) {
	p, ok := e.pairingForRealm(owner, realm)
	if !ok {
		return nil, core.ErrNotPaired
	}
	results := make([]CheckResult, len(pairs))
	tok, ok := ExtractToken(r)
	if !ok {
		e.trace(core.PhaseObtainingToken, "host:"+string(e.host), "requester",
			"refer-to-am", fmt.Sprintf("batch of %d", len(pairs)))
		for i := range results {
			results[i] = CheckResult{Verdict: VerdictNeedToken, AMURL: p.AMURL}
		}
		return results, nil
	}

	// First pass: answer from the cache, collect the distinct misses.
	missIdx := make(map[string][]int) // cache key -> result indexes
	var items []core.BatchDecisionItem
	for i, pr := range pairs {
		key := cacheKey(tok, pr.Resource, pr.Action)
		if idx, dup := missIdx[key]; dup {
			missIdx[key] = append(idx, i)
			continue
		}
		if decision, ok := e.cache.Get(key); ok {
			verdict := VerdictDeny
			if decision {
				verdict = VerdictAllow
			}
			results[i] = CheckResult{Verdict: verdict, CacheHit: true}
			continue
		}
		missIdx[key] = []int{i}
		items = append(items, core.BatchDecisionItem{
			Realm:    realm,
			Resource: pr.Resource,
			Action:   pr.Action,
		})
	}
	if len(items) == 0 {
		return results, nil
	}

	// Second pass: one signed round-trip resolves every miss — chunked to
	// the AM's batch limit, so a page wider than MaxBatchDecisionItems
	// still resolves (in ceil(n/max) round-trips) instead of erroring.
	for start := 0; start < len(items); start += core.MaxBatchDecisionItems {
		end := min(start+core.MaxBatchDecisionItems, len(items))
		chunk := items[start:end]
		q := core.BatchDecisionQuery{
			PairingID: p.PairingID,
			Host:      e.host,
			Token:     tok,
			Items:     chunk,
		}
		gen := e.cache.Gen()
		e.trace(core.PhaseObtainingDecision, "host:"+string(e.host), "am",
			"decision-batch-sent", fmt.Sprintf("%d items", len(chunk)))
		resp, err := e.amFor(p).DecideBatch(q)
		if err != nil {
			return nil, fmt.Errorf("pep: batch decision query: %w", err)
		}
		if len(resp.Results) != len(chunk) {
			return nil, fmt.Errorf("pep: batch decision answered %d of %d items",
				len(resp.Results), len(chunk))
		}
		for j, item := range chunk {
			res := resp.Results[j]
			key := cacheKey(tok, item.Resource, item.Action)
			var cr CheckResult
			switch {
			case res.Error != "":
				// Item-level failure (e.g. unknown realm): deny-biased,
				// never cached.
				cr = CheckResult{Verdict: VerdictDeny, Reason: res.Error}
			case res.TokenProblem:
				cr = CheckResult{Verdict: VerdictNeedToken, AMURL: p.AMURL, Reason: res.Reason}
			default:
				if res.CacheTTLSeconds > 0 {
					e.cache.PutScopedAt(gen, key, EntryScope{Owner: owner, Realm: realm, Resource: item.Resource},
						res.Permit(), res.CacheTTLSeconds)
				}
				verdict := VerdictDeny
				if res.Permit() {
					verdict = VerdictAllow
				}
				cr = CheckResult{Verdict: verdict, Reason: res.Reason}
			}
			for _, i := range missIdx[key] {
				results[i] = cr
			}
		}
	}
	return results, nil
}

// Require runs Check and writes the appropriate protocol response for
// anything but an allow: 401 with AM referral headers for missing tokens,
// 403 for denials, 502 for AM communication failures. It returns true only
// when the caller should serve the resource.
func (e *Enforcer) Require(w http.ResponseWriter, r *http.Request, owner core.UserID, realm core.RealmID, res core.ResourceID, action core.Action) bool {
	result, err := e.Check(r, owner, realm, res, action)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return false
	}
	switch result.Verdict {
	case VerdictAllow:
		return true
	case VerdictNeedToken:
		e.WriteReferral(w, result.AMURL, realm, res, action)
		return false
	default:
		http.Error(w, "access denied: "+result.Reason, http.StatusForbidden)
		return false
	}
}

// WriteReferral writes the 401 referral telling the Requester which AM to
// obtain a token from and for what — the programmatic equivalent of the
// Fig. 5 redirect ("a Host redirects a Requester to the AM along with
// information about the Host and the resource").
func (e *Enforcer) WriteReferral(w http.ResponseWriter, amURL string, realm core.RealmID, res core.ResourceID, action core.Action) {
	w.Header().Set(HeaderAM, amURL)
	w.Header().Set(HeaderHost, string(e.host))
	w.Header().Set(HeaderRealm, string(realm))
	w.Header().Set(HeaderResource, string(res))
	w.Header().Set(HeaderAction, string(action))
	w.Header().Set("Www-Authenticate", fmt.Sprintf("%s am=%q, realm=%q", TokenScheme, amURL, realm))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusUnauthorized)
	json.NewEncoder(w).Encode(map[string]string{
		"error":    "authorization token required",
		"am":       amURL,
		"host":     string(e.host),
		"realm":    string(realm),
		"resource": string(res),
		"action":   string(action),
	})
}
