package amclient

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"umac/internal/core"
)

// stubAM is a minimal AM endpoint for failover tests: it answers
// GET /v1/healthz with 200 and everything else with the configured error
// envelope (nil means 200 with an empty object).
type stubAM struct {
	srv   *httptest.Server
	calls atomic.Int64
	errFn func() *core.APIError
}

func newStubAM(t *testing.T, errFn func() *core.APIError) *stubAM {
	t.Helper()
	s := &stubAM{errFn: errFn}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.calls.Add(1)
		if s.errFn != nil {
			if e := s.errFn(); e != nil {
				w.Header().Set("Content-Type", "application/problem+json")
				w.WriteHeader(e.Status)
				json.NewEncoder(w).Encode(e)
				return
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"served_by":"` + s.srv.URL + `"}`))
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func TestFailoverOnConnectionError(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here any more
	live := newStubAM(t, nil)

	c := New(Config{BaseURL: deadURL, Endpoints: []string{live.srv.URL}})
	var out map[string]string
	if err := c.do(http.MethodGet, "/anything", nil, nil, &out); err != nil {
		t.Fatalf("failover did not rescue the call: %v", err)
	}
	if out["served_by"] != live.srv.URL {
		t.Fatalf("served by %q, want the live endpoint", out["served_by"])
	}
	// The client remembers the working endpoint for subsequent calls.
	if c.BaseURL() != live.srv.URL {
		t.Fatalf("BaseURL after failover = %q, want %q", c.BaseURL(), live.srv.URL)
	}
}

func TestFailoverOnNotPrimaryFollowsLeaderHint(t *testing.T) {
	primary := newStubAM(t, nil)
	follower := newStubAM(t, nil)
	// There are three endpoints; the follower's hint names the primary
	// directly, so the middle endpoint must be skipped.
	bystander := newStubAM(t, nil)
	follower.errFn = func() *core.APIError {
		e := core.APIErrorf(core.CodeNotPrimary, "follower")
		e.Leader = primary.srv.URL
		return e
	}

	c := New(Config{
		BaseURL:   follower.srv.URL,
		Endpoints: []string{bystander.srv.URL, primary.srv.URL},
	})
	var out map[string]string
	if err := c.do(http.MethodPost, "/write", nil, map[string]string{"k": "v"}, &out); err != nil {
		t.Fatalf("not_primary failover failed: %v", err)
	}
	if out["served_by"] != primary.srv.URL {
		t.Fatalf("served by %q, want the leader-hinted primary", out["served_by"])
	}
	if bystander.calls.Load() != 0 {
		t.Fatalf("bystander got %d calls; leader hint not honoured", bystander.calls.Load())
	}
}

func TestFailoverSkipsStaleLeaderHint(t *testing.T) {
	// A is the dead old primary; B is a follower still advertising A as
	// leader; C is the newly promoted primary. The stale hint must not
	// burn the attempt budget bouncing back to A — C must be reached.
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	aURL := a.URL
	a.Close()
	b := newStubAM(t, nil)
	b.errFn = func() *core.APIError {
		e := core.APIErrorf(core.CodeNotPrimary, "follower")
		e.Leader = aURL // stale: points at the dead node
		return e
	}
	cNode := newStubAM(t, nil)

	cl := New(Config{BaseURL: aURL, Endpoints: []string{b.srv.URL, cNode.srv.URL}})
	var out map[string]string
	if err := cl.do(http.MethodPost, "/write", nil, map[string]string{"k": "v"}, &out); err != nil {
		t.Fatalf("stale leader hint defeated failover: %v", err)
	}
	if out["served_by"] != cNode.srv.URL {
		t.Fatalf("served by %q, want the promoted primary", out["served_by"])
	}
}

func TestFailoverOnUnavailable(t *testing.T) {
	draining := newStubAM(t, func() *core.APIError {
		return core.APIErrorf(core.CodeUnavailable, "draining")
	})
	live := newStubAM(t, nil)
	c := New(Config{BaseURL: draining.srv.URL, Endpoints: []string{live.srv.URL}})
	if err := c.do(http.MethodGet, "/x", nil, nil, nil); err != nil {
		t.Fatalf("unavailable failover failed: %v", err)
	}
	if live.calls.Load() != 1 {
		t.Fatalf("live endpoint calls = %d, want 1", live.calls.Load())
	}
}

func TestNoFailoverOnTerminalErrors(t *testing.T) {
	denied := newStubAM(t, func() *core.APIError {
		return core.APIErrorf(core.CodeAccessDenied, "no")
	})
	second := newStubAM(t, nil)
	c := New(Config{BaseURL: denied.srv.URL, Endpoints: []string{second.srv.URL}})
	err := c.do(http.MethodGet, "/x", nil, nil, nil)
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("err = %v, want access denied", err)
	}
	if second.calls.Load() != 0 {
		t.Fatalf("terminal error was retried (%d calls)", second.calls.Load())
	}
}

func TestAllEndpointsDownReturnsLastError(t *testing.T) {
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	aURL, bURL := a.URL, b.URL
	a.Close()
	b.Close()
	c := New(Config{BaseURL: aURL, Endpoints: []string{bURL}})
	if err := c.do(http.MethodGet, "/x", nil, nil, nil); err == nil {
		t.Fatal("no error with every endpoint down")
	}
}

func TestSingleEndpointBehaviourUnchanged(t *testing.T) {
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	downURL := down.URL
	down.Close()
	c := New(Config{BaseURL: downURL})
	if err := c.do(http.MethodGet, "/x", nil, nil, nil); err == nil {
		t.Fatal("single dead endpoint must error")
	}
	if c.BaseURL() != downURL {
		t.Fatalf("single-endpoint BaseURL changed to %q", c.BaseURL())
	}
}
