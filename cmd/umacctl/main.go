// Command umacctl is the policy-management CLI: it converts between the
// textual policy DSL and the JSON/XML interchange formats (the Section VI
// REST export/import formats), talks to a running AM, and queries the
// consolidated audit view.
//
// Subcommands:
//
//	umacctl parse  -owner bob < policies.umac        DSL → JSON
//	umacctl format < policies.json                   JSON → DSL
//	umacctl export -am URL -user bob [-format xml]   pull policies from an AM
//	umacctl import -am URL -user bob < policies.json push policies to an AM
//	umacctl audit  -am URL -user bob                 consolidated audit summary
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"umac"
	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		cmdParse(os.Args[2:])
	case "format":
		cmdFormat(os.Args[2:])
	case "export":
		cmdExport(os.Args[2:])
	case "import":
		cmdImport(os.Args[2:])
	case "audit":
		cmdAudit(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: umacctl <parse|format|export|import|audit> [flags]")
	os.Exit(2)
}

func cmdParse(args []string) {
	fs := flag.NewFlagSet("parse", flag.ExitOnError)
	owner := fs.String("owner", "", "policy owner")
	fs.Parse(args)
	if *owner == "" {
		log.Fatal("umacctl parse: -owner required")
	}
	src, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := umac.ParsePolicies(umac.UserID(*owner), string(src))
	if err != nil {
		log.Fatal(err)
	}
	if err := policy.Export(os.Stdout, policies, policy.FormatJSON); err != nil {
		log.Fatal(err)
	}
}

func cmdFormat(args []string) {
	fs := flag.NewFlagSet("format", flag.ExitOnError)
	format := fs.String("format", "json", "input format: json|xml")
	fs.Parse(args)
	f, err := policy.ParseFormat(*format)
	if err != nil {
		log.Fatal(err)
	}
	policies, err := policy.Import(os.Stdin, f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(umac.FormatPolicies(policies))
}

// amClient builds the typed AM client acting as user.
func amClient(amURL, user string) *amclient.Client {
	return amclient.New(amclient.Config{BaseURL: amURL, User: core.UserID(user)})
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	format := fs.String("format", "json", "export format: json|xml")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl export: -am and -user required")
	}
	if err := amClient(*amURL, *user).ExportPolicies(os.Stdout, "", *format); err != nil {
		log.Fatalf("umacctl export: %v", err)
	}
}

func cmdImport(args []string) {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	format := fs.String("format", "json", "import format: json|xml")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl import: -am and -user required")
	}
	n, err := amClient(*amURL, *user).ImportPolicies(os.Stdin, "", *format)
	if err != nil {
		log.Fatalf("umacctl import: %v", err)
	}
	fmt.Printf("{\"imported\": %d}\n", n)
}

func cmdAudit(args []string) {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	amURL := fs.String("am", "", "AM base URL")
	user := fs.String("user", "", "acting user")
	fs.Parse(args)
	if *amURL == "" || *user == "" {
		log.Fatal("umacctl audit: -am and -user required")
	}
	summary, err := amClient(*amURL, *user).AuditSummary("")
	if err != nil {
		log.Fatalf("umacctl audit: %v", err)
	}
	out, _ := json.MarshalIndent(summary, "", "  ")
	fmt.Println(string(out))
}
