package sim

import (
	"net/http"

	"umac/internal/audit"
)

// newGet builds a GET request for tests.
func newGet(url string) (*http.Request, error) {
	return http.NewRequest(http.MethodGet, url, nil)
}

// auditDecisions is a filter selecting decision events.
func auditDecisions() audit.Filter {
	return audit.Filter{Type: audit.EventDecision}
}
