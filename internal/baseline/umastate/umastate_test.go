package umastate

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/pep"
)

// fakeAM scripts the /state and /api/decision/state endpoints.
func fakeAM(t *testing.T, grantState bool, decision string) *httptest.Server {
	t.Helper()
	verifier := httpsig.NewVerifier(httpsig.SecretSourceFunc(func(string) (string, bool) {
		return "s3cret", true
	}))
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/state", func(w http.ResponseWriter, r *http.Request) {
		var req core.TokenRequest
		json.NewDecoder(r.Body).Decode(&req)
		if !grantState {
			http.Error(w, `{"error":"denied"}`, http.StatusForbidden)
			return
		}
		json.NewEncoder(w).Encode(map[string]string{"handle": "state-1"})
	})
	mux.HandleFunc("POST /v1/api/decision/state", func(w http.ResponseWriter, r *http.Request) {
		if _, err := verifier.Verify(r); err != nil {
			http.Error(w, err.Error(), http.StatusUnauthorized)
			return
		}
		var req struct {
			Handle string `json:"handle"`
		}
		json.NewDecoder(r.Body).Decode(&req)
		d := decision
		if req.Handle != "state-1" {
			d = "deny"
		}
		w.Write([]byte(`{"decision":"` + d + `"}`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func TestEstablishAndCheck(t *testing.T) {
	srv := fakeAM(t, true, "permit")
	rc := &RequesterClient{ID: "app", Subject: "alice"}
	handle, err := rc.EstablishState(srv.URL, "webpics", "travel", "r", core.ActionRead)
	if err != nil || handle != "state-1" {
		t.Fatalf("handle=%q err=%v", handle, err)
	}
	e := New("webpics", nil, nil)
	p := pep.Pairing{AMURL: srv.URL, PairingID: "pair", Secret: "s3cret"}
	ok, err := e.Check(p, handle, "travel", "r", core.ActionRead)
	if err != nil || !ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	// Unknown handle denies.
	ok, err = e.Check(p, "state-bogus", "travel", "r", core.ActionRead)
	if err != nil || ok {
		t.Fatalf("forged: ok=%v err=%v", ok, err)
	}
}

func TestEstablishDenied(t *testing.T) {
	srv := fakeAM(t, false, "deny")
	rc := &RequesterClient{ID: "app", Subject: "mallory"}
	_, err := rc.EstablishState(srv.URL, "webpics", "travel", "r", core.ActionRead)
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
}

func TestCheckTransportError(t *testing.T) {
	e := New("webpics", nil, nil)
	p := pep.Pairing{AMURL: "http://127.0.0.1:1", PairingID: "x", Secret: "y"}
	if _, err := e.Check(p, "h", "travel", "r", core.ActionRead); err == nil {
		t.Fatal("no error for unreachable AM")
	}
}

func TestEstablishTransportError(t *testing.T) {
	rc := &RequesterClient{ID: "app"}
	if _, err := rc.EstablishState("http://127.0.0.1:1", "h", "r", "res", core.ActionRead); err == nil {
		t.Fatal("no error for unreachable AM")
	}
}
