package sim

import (
	"fmt"
	"testing"
	"time"

	"umac/internal/am"
	"umac/internal/core"
	"umac/internal/pep"
	"umac/internal/policy"
	"umac/internal/requester"
)

// batchWorld builds a world with one host, n read-permitted resources for
// alice in realm "travel" owned by bob, and returns a request bearing
// alice's realm token.
func batchWorld(t *testing.T, n int) (*World, *SimpleHost, []pep.ResourceAction, *requestFixture) {
	t.Helper()
	w := NewWorldConfig(am.Config{DefaultCacheTTL: time.Hour})
	t.Cleanup(w.Close)
	h := w.AddHost("webpics")
	ids := make([]core.ResourceID, n)
	pairs := make([]pep.ResourceAction, n)
	for i := 0; i < n; i++ {
		ids[i] = core.ResourceID(fmt.Sprintf("photo-%04d", i))
		pairs[i] = pep.ResourceAction{Resource: ids[i], Action: core.ActionRead}
		h.AddResource("bob", "travel", ids[i], []byte("x"))
	}
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", ids, ""); err != nil {
		t.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	client := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	tok, err := client.ObtainToken(w.AMServer.URL, h.ID, "travel", ids[0], core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	return w, h, pairs, &requestFixture{token: tok}
}

type requestFixture struct{ token string }

// TestBatchDecisionOneRoundTrip is the tentpole claim: resolving N uncached
// (resource, action) pairs costs ONE signed AM round-trip via CheckBatch,
// against N for per-pair Check — at least the 3× the acceptance criteria
// demand, here N×.
func TestBatchDecisionOneRoundTrip(t *testing.T) {
	const n = 8
	w, h, pairs, fx := batchWorld(t, n)
	req := TokenRequestFor(fx.token)

	// Per-pair baseline, cold cache.
	h.Enforcer.Cache().Invalidate()
	w.ResetAMRequests()
	for _, pr := range pairs {
		res, err := h.Enforcer.Check(req, "bob", "travel", pr.Resource, pr.Action)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != pep.VerdictAllow {
			t.Fatalf("single check denied: %+v", res)
		}
	}
	single := w.AMRequests()
	if single != n {
		t.Fatalf("per-pair checks cost %d AM round-trips, want %d", single, n)
	}

	// Batched, cold cache.
	h.Enforcer.Cache().Invalidate()
	w.ResetAMRequests()
	results, err := h.Enforcer.CheckBatch(req, "bob", "travel", pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Verdict != pep.VerdictAllow {
			t.Fatalf("batch item %d denied: %+v", i, res)
		}
	}
	batched := w.AMRequests()
	if batched != 1 {
		t.Fatalf("batch check cost %d AM round-trips, want 1", batched)
	}
	if single < 3*batched {
		t.Fatalf("batch saves %dx, want >= 3x", single/batched)
	}

	// The batch filled the cache: a second batch answers fully locally.
	w.ResetAMRequests()
	results, err = h.Enforcer.CheckBatch(req, "bob", "travel", pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Verdict != pep.VerdictAllow || !res.CacheHit {
			t.Fatalf("warm batch item %d not a cache hit: %+v", i, res)
		}
	}
	if got := w.AMRequests(); got != 0 {
		t.Fatalf("warm batch cost %d AM round-trips, want 0", got)
	}
}

// TestBatchDecisionMixedVerdicts: one batch carrying permitted reads and a
// policy-denied write keeps per-item verdicts straight.
func TestBatchDecisionMixedVerdicts(t *testing.T) {
	_, h, pairs, fx := batchWorld(t, 2)
	req := TokenRequestFor(fx.token)
	mixed := append(pairs, pep.ResourceAction{Resource: pairs[0].Resource, Action: core.ActionWrite})
	results, err := h.Enforcer.CheckBatch(req, "bob", "travel", mixed)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Verdict != pep.VerdictAllow || results[1].Verdict != pep.VerdictAllow {
		t.Fatalf("reads denied: %+v", results)
	}
	if results[2].Verdict != pep.VerdictDeny {
		t.Fatalf("write verdict = %v, want deny", results[2].Verdict)
	}
}

// TestBatchDecisionDuplicatePairs: the same (resource, action) pair listed
// twice resolves once upstream and both result slots agree.
func TestBatchDecisionDuplicatePairs(t *testing.T) {
	w, h, pairs, fx := batchWorld(t, 1)
	req := TokenRequestFor(fx.token)
	dup := []pep.ResourceAction{pairs[0], pairs[0], pairs[0]}
	h.Enforcer.Cache().Invalidate()
	w.ResetAMRequests()
	results, err := h.Enforcer.CheckBatch(req, "bob", "travel", dup)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Verdict != pep.VerdictAllow {
			t.Fatalf("dup item %d: %+v", i, res)
		}
	}
	if got := w.AMRequests(); got != 1 {
		t.Fatalf("duplicate pairs cost %d round-trips, want 1", got)
	}
}

// TestBatchDecisionChunksAboveLimit: a page wider than the AM's per-batch
// item limit resolves in ceil(n/limit) round-trips instead of erroring.
func TestBatchDecisionChunksAboveLimit(t *testing.T) {
	n := core.MaxBatchDecisionItems + 8
	w, h, pairs, fx := batchWorld(t, n)
	req := TokenRequestFor(fx.token)
	w.ResetAMRequests()
	results, err := h.Enforcer.CheckBatch(req, "bob", "travel", pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Verdict != pep.VerdictAllow {
			t.Fatalf("item %d denied: %+v", i, res)
		}
	}
	if got := w.AMRequests(); got != 2 {
		t.Fatalf("oversized batch cost %d round-trips, want 2 (chunked)", got)
	}
}

// TestBatchDecisionWithoutToken: a tokenless batch refers every pair to the
// AM without any round-trip.
func TestBatchDecisionWithoutToken(t *testing.T) {
	w, h, pairs, _ := batchWorld(t, 3)
	req, err := newGet("http://host/res/x")
	if err != nil {
		t.Fatal(err)
	}
	w.ResetAMRequests()
	results, err := h.Enforcer.CheckBatch(req, "bob", "travel", pairs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Verdict != pep.VerdictNeedToken || res.AMURL == "" {
			t.Fatalf("item %d = %+v, want need-token with AM URL", i, res)
		}
	}
	if got := w.AMRequests(); got != 0 {
		t.Fatalf("tokenless batch cost %d round-trips, want 0", got)
	}
}

// TestScopedInvalidationKeepsUnrelatedEntries is the scoped-eviction
// acceptance criterion: after a policy change on one realm, the affected
// pairing's entries are gone (no stale PERMIT survives) while cached
// decisions for an unrelated realm still answer locally.
func TestScopedInvalidationKeepsUnrelatedEntries(t *testing.T) {
	w := NewWorldConfig(am.Config{DefaultCacheTTL: time.Hour})
	t.Cleanup(w.Close)
	w.AM.EnableInvalidationPush(nil)
	h := w.AddHost("webpics")
	h.AddResource("bob", "travel", "photo-1", []byte("x"))
	h.AddResource("bob", "work", "doc-1", []byte("x"))
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", []core.ResourceID{"photo-1"}, ""); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "work", []core.ResourceID{"doc-1"}, ""); err != nil {
		t.Fatal(err)
	}
	mkPolicy := func(name string) policy.Policy {
		return policy.Policy{
			Owner: "bob", Name: name, Kind: policy.KindGeneral,
			Rules: []policy.Rule{{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
				Actions:  []core.Action{core.ActionRead},
			}},
		}
	}
	travelPol, err := w.AM.CreatePolicy("bob", mkPolicy("travel-pol"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", travelPol.ID); err != nil {
		t.Fatal(err)
	}
	workPol, err := w.AM.CreatePolicy("bob", mkPolicy("work-pol"))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "work", workPol.ID); err != nil {
		t.Fatal(err)
	}

	// Separate clients per realm so each keeps presenting its own realm's
	// token (a shared client's token juggling would add referral
	// round-trips that have nothing to do with the cache under test).
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	aliceWork := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if _, err := aliceWork.Fetch(h.ResourceURL("doc-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if n := h.Enforcer.Cache().Len(); n != 2 {
		t.Fatalf("cache len = %d, want 2", n)
	}

	// Bob flips the travel policy to deny; the scoped push must evict the
	// travel entry and leave the work entry alone.
	travelPol.Rules = []policy.Rule{{
		Effect:   policy.EffectDeny,
		Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
	}}
	if err := w.AM.UpdatePolicy("bob", travelPol); err != nil {
		t.Fatal(err)
	}
	w.AM.FlushInvalidations()
	if n := h.Enforcer.Cache().Len(); n != 1 {
		t.Fatalf("cache len after scoped push = %d, want 1 (work entry only)", n)
	}

	// No stale PERMIT: the next travel access is denied immediately.
	if resp, err := alice.Get(h.ResourceURL("photo-1"), core.ActionRead); err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != 403 {
			t.Fatalf("travel status = %d, want 403 right after the policy change", resp.StatusCode)
		}
	}

	// The unrelated work entry still answers locally: no AM round-trip.
	w.ResetAMRequests()
	if _, err := aliceWork.Fetch(h.ResourceURL("doc-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if got := w.AMRequests(); got != 0 {
		t.Fatalf("unrelated access cost %d AM round-trips, want 0 (still cached)", got)
	}
}

// TestChurnWorkloadScopedBeatsDropAll runs the E14 workload both ways and
// asserts the scoped mode suppresses the invalidation stampede entirely on
// this mix (hot realm untouched by the churn).
func TestChurnWorkloadScopedBeatsDropAll(t *testing.T) {
	cfg := ChurnConfig{HotResources: 8, Rounds: 6, ChurnEvery: 2}

	cfg.Scoped = false
	dropAll, err := RunChurnWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Scoped = true
	scoped, err := RunChurnWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dropAll.Denied != 0 || scoped.Denied != 0 {
		t.Fatalf("hot accesses denied: drop-all=%d scoped=%d", dropAll.Denied, scoped.Denied)
	}
	// Drop-all: every churn wipes the hot entries, so each of the 3 churns
	// forces a full re-query round (8 queries each).
	if dropAll.AMRoundTrips < int64(cfg.HotResources) {
		t.Fatalf("drop-all round-trips = %d, expected a stampede (>= %d)",
			dropAll.AMRoundTrips, cfg.HotResources)
	}
	// Scoped: the churned realm is not the hot realm, so the hot cache
	// survives every push and no decision re-queries happen at all.
	if scoped.AMRoundTrips != 0 {
		t.Fatalf("scoped round-trips = %d, want 0 (hot cache must survive churn)", scoped.AMRoundTrips)
	}
	t.Logf("drop-all: %+v", dropAll)
	t.Logf("scoped:   %+v", scoped)
}
