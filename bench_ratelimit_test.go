package umac_test

// Benchmarks for the abuse-control rate limiter (internal/webutil). They
// anchor the admission path's promise in CI: charging a token bucket on
// every request must stay cheap and allocation-free even when many
// goroutines hit the limiter at once, because it sits in front of the
// decision hot path.

import (
	"fmt"
	"testing"
	"time"

	"umac/internal/webutil"
)

// BenchmarkRateLimit measures the striped admission path under parallel
// load: every goroutine charges the shared limiter, spread over a small
// (contended) and a large (stripe-friendly) tenant population.
func BenchmarkRateLimit(b *testing.B) {
	for _, tenants := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("tenants-%d", tenants), func(b *testing.B) {
			recordBench(b)
			l := webutil.NewRateLimiter(nil,
				webutil.TierConfig{Name: "session", Rate: 1e12, Burst: 1e12})
			keys := make([]string, tenants)
			for i := range keys {
				keys[i] = fmt.Sprintf("tenant-%04d", i)
				l.Allow("session", keys[i], 1) // pre-create the bucket
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					l.Allow("session", keys[i%tenants], 1)
					i++
				}
			})
		})
	}
}

// BenchmarkRateLimitDeny measures the over-budget path — the cost of
// answering an abuser — which must stay as cheap as the admit path so a
// flood of throttled requests cannot itself become the bottleneck.
func BenchmarkRateLimitDeny(b *testing.B) {
	recordBench(b)
	clk := time.Now() // frozen clock: never refills, every charge denies
	l := webutil.NewRateLimiter(func() time.Time { return clk },
		webutil.TierConfig{Name: "session", Rate: 1, Burst: 1})
	l.Allow("session", "abuser", 1) // drain the bucket
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			l.Allow("session", "abuser", 1)
		}
	})
}
