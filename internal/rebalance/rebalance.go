// Package rebalance implements the cluster's self-rebalancing coordinator:
// given a target ring (a shard added, or one marked draining), it plans
// the owner moves the topology change implies and executes them as
// rate-limited, batched live migrations over the owner-scoped replication
// surface — the same three-leg copy/cutover/drain discipline
// amclient.MigrateOwner performs for one owner, driven in bulk.
//
// The coordinator is crash-resumable: the plan and every owner's move
// phase are checkpointed through the hosting AM's store (and therefore
// its WAL), so a SIGKILLed coordinator restarts, reloads the plan, skips
// owners already done, re-flips owners caught between copy and cutover,
// and never migrates a finished owner twice. It is abortable: a clean
// stop completes the move in flight and leaves every other owner pinned
// to its source shard — wholly on exactly one shard, with consistent
// wrong_shard hints. And it is observable: progress is exposed on
// GET /v1/rebalance and /v1/metrics, and every lifecycle transition and
// completed move publishes a replication-type event on the AM's broker.
//
// Ordering is what makes the bulk move safe under load:
//
//  1. Pin every planned owner to its current (source) shard on both the
//     losing and gaining primaries. Overrides beat hash placement, so the
//     topology flip in step 2 moves no live traffic.
//  2. Push the target ring state to every shard primary (idempotent by
//     version). New placements now route by the target ring; every
//     planned owner still routes to its source via the pins.
//  3. Migrate owners one at a time (batched, rate-limited): copy,
//     checkpoint the WAL offset, cut over (re-point the pins at the
//     gaining shard), drain from the checkpointed offset, clear the pins
//     (the ring now agrees), checkpoint the move done.
//  4. For a drain, once every owner has moved off, push a final ring
//     state (version+1) without the drained shard.
//
// A crash between copy and cutover resumes by re-flipping and draining
// from the checkpointed offset — never by re-importing a by-then-stale
// snapshot over writes the gaining shard has accepted since.
package rebalance

import (
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/store"
)

// Store kinds of the coordinator's checkpoint state. They live in the
// hosting AM's store, so they ride its WAL (surviving SIGKILL) and its
// replication stream (a promoted follower can resume the plan).
const (
	// kindPlan holds the single active plan under key planKey.
	kindPlan = "rebalance-plan"
	// kindMove holds one record per planned owner, key "<planID>/<owner>",
	// value moveState — the per-owner resume checkpoint.
	kindMove = "rebalance-move"
)

// planKey is the fixed key of the active plan: one rebalance at a time.
const planKey = "current"

// Default execution tuning.
const (
	// DefaultBatchSize is how many owners move between plan-progress
	// checkpoints when RebalanceRequest.BatchSize is 0.
	DefaultBatchSize = 16
	// DefaultMaxRetries bounds per-operation retries against shard
	// primaries (a restarting primary needs the budget to cover its
	// recovery window).
	DefaultMaxRetries = 8
	// retryBaseBackoff and retryMaxBackoff shape the retry schedule.
	retryBaseBackoff = 250 * time.Millisecond
	retryMaxBackoff  = 3 * time.Second
)

// Plan is the persisted rebalance plan: everything a freshly restarted
// coordinator needs to continue exactly where its predecessor died.
type Plan struct {
	// ID identifies the plan; move checkpoints are keyed under it. Derived
	// from the target ring version, which is unique per rebalance.
	ID string `json:"id"`
	// Target is the ring state being converged on.
	Target core.RingState `json:"target"`
	// Final, when non-nil, is the post-drain ring state (Target.Version+1,
	// drained shards removed) pushed once every move is done.
	Final *core.RingState `json:"final,omitempty"`
	// Moves is the full planned move set, in execution order.
	Moves []core.RebalanceMove `json:"moves"`
	// BatchSize and MovesPerSec are the execution tuning the plan was
	// started with (resume keeps them).
	BatchSize   int     `json:"batch_size"`
	MovesPerSec float64 `json:"moves_per_sec,omitempty"`
	// State is the lifecycle state (core.RebalanceRunning et al.).
	State string `json:"state"`
	// Error carries the terminal error of a failed plan.
	Error string `json:"error,omitempty"`
}

// moveState is one owner's checkpointed progress.
type moveState struct {
	// Phase is core.MovePending / MoveCopied / MoveDone.
	Phase string `json:"phase"`
	// Offset is the source WAL offset the copy leg reached — where the
	// drain resumes from after a crash between copy and cutover.
	Offset int64 `json:"offset,omitempty"`
}

// Config wires a Coordinator into its host.
type Config struct {
	// Store is the checkpoint substrate (the hosting AM's store).
	Store *store.Store
	// Secret is the deployment's replication secret, presented to every
	// shard primary's admin surface.
	Secret string
	// HTTPClient performs the coordinator's calls; nil means a dedicated
	// client with a 15s timeout.
	HTTPClient *http.Client
	// MaxRetries bounds retries per remote operation; 0 means
	// DefaultMaxRetries.
	MaxRetries int
	// Notify, when non-nil, receives every lifecycle signal
	// (core.SignalRebalanceStarted et al.) with the owner concerned (move
	// signals only) and the progress snapshot. The hosting AM publishes
	// these on its event broker.
	Notify func(signal string, owner core.UserID, st core.RebalanceStatus)
	// Logf receives progress lines; nil discards them.
	Logf func(format string, args ...any)
	// BeforeMove is a test seam: called before each move executes. A
	// non-nil error stops the run loop immediately — like a coordinator
	// crash, the plan stays checkpointed as running and resumes later —
	// which is how the fault-injection suites die deterministically
	// between moves.
	BeforeMove func(m core.RebalanceMove) error
}

// Coordinator executes one rebalance plan at a time against the cluster.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	running bool
	status  core.RebalanceStatus
	abort   bool
	idle    chan struct{} // closed when the run loop exits; nil when idle
}

// New builds a coordinator. It does not touch the store or the network;
// call Resume to continue a checkpointed plan, or Start for a new one.
func New(cfg Config) *Coordinator {
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = &http.Client{Timeout: 15 * time.Second}
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	c := &Coordinator{cfg: cfg}
	if plan, ok := c.loadPlan(); ok {
		c.status = c.statusOf(plan)
	}
	return c
}

// loadPlan reads the persisted plan, if any.
func (c *Coordinator) loadPlan() (*Plan, bool) {
	var p Plan
	if _, err := c.cfg.Store.Get(kindPlan, planKey, &p); err != nil {
		return nil, false
	}
	return &p, true
}

// savePlan persists the plan record.
func (c *Coordinator) savePlan(p *Plan) error {
	_, err := c.cfg.Store.Put(kindPlan, planKey, p)
	return err
}

// loadMove reads one owner's checkpoint (zero value when absent).
func (c *Coordinator) loadMove(planID string, owner core.UserID) moveState {
	var ms moveState
	c.cfg.Store.Get(kindMove, planID+"/"+string(owner), &ms)
	if ms.Phase == "" {
		ms.Phase = core.MovePending
	}
	return ms
}

// saveMove checkpoints one owner's progress.
func (c *Coordinator) saveMove(planID string, owner core.UserID, ms moveState) error {
	_, err := c.cfg.Store.Put(kindMove, planID+"/"+string(owner), ms)
	return err
}

// statusOf derives a progress snapshot from a plan and its move
// checkpoints.
func (c *Coordinator) statusOf(p *Plan) core.RebalanceStatus {
	st := core.RebalanceStatus{
		ID: p.ID, State: p.State, RingVersion: p.Target.Version,
		Total: len(p.Moves), Error: p.Error,
	}
	for _, m := range p.Moves {
		if c.loadMove(p.ID, m.Owner).Phase == core.MoveDone {
			st.Done++
		}
	}
	st.Remaining = st.Total - st.Done
	return st
}

// Status returns the coordinator's progress snapshot ("" state when no
// plan has ever been checkpointed).
func (c *Coordinator) Status() core.RebalanceStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// Abort asks the running plan to stop at the next move boundary; the
// move in flight completes, everything else stays pinned to its source.
// Aborting an idle unfinished plan marks it aborted directly. Returns the
// resulting status.
func (c *Coordinator) Abort() (core.RebalanceStatus, error) {
	c.mu.Lock()
	if c.running {
		c.abort = true
		st := c.status
		c.mu.Unlock()
		return st, nil
	}
	c.mu.Unlock()
	plan, ok := c.loadPlan()
	if !ok {
		return core.RebalanceStatus{}, core.APIErrorf(core.CodeNotFound, "rebalance: no plan to abort")
	}
	if plan.State == core.RebalanceRunning || plan.State == core.RebalanceFailed {
		plan.State = core.RebalanceAborted
		if err := c.savePlan(plan); err != nil {
			return core.RebalanceStatus{}, err
		}
		st := c.statusOf(plan)
		c.setStatus(st)
		c.notify(core.SignalRebalanceAborted, "", st)
		return st, nil
	}
	// Already terminal (done or aborted): nothing to stop, no signal.
	st := c.statusOf(plan)
	c.setStatus(st)
	return st, nil
}

// Wait blocks until no run loop is active (or the timeout elapses) and
// returns the latest status. Test and CLI helper.
func (c *Coordinator) Wait(timeout time.Duration) core.RebalanceStatus {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		running, idle := c.running, c.idle
		c.mu.Unlock()
		if !running {
			return c.Status()
		}
		select {
		case <-idle:
		case <-time.After(time.Until(deadline)):
			return c.Status()
		}
		if time.Now().After(deadline) {
			return c.Status()
		}
	}
}

func (c *Coordinator) setStatus(st core.RebalanceStatus) {
	c.mu.Lock()
	c.status = st
	c.mu.Unlock()
}

func (c *Coordinator) notify(signal string, owner core.UserID, st core.RebalanceStatus) {
	if c.cfg.Notify != nil {
		c.cfg.Notify(signal, owner, st)
	}
}

// clientFor builds an admin client for the named shard out of the plan's
// target membership (which includes draining shards).
func clientFor(p *Plan, shard string, secret string, hc *http.Client) (*amclient.Client, error) {
	for _, s := range p.Target.Shards {
		if s.Name == shard {
			return amclient.New(amclient.Config{
				BaseURL: s.Primary, ReplSecret: secret, HTTPClient: hc,
			}), nil
		}
	}
	return nil, fmt.Errorf("rebalance: shard %q is not in the target ring", shard)
}

// BuildPlan computes the move set converging the cluster's effective
// ownership onto target: for every owner each source shard effectively
// owns (per its stats), a move to the owner's target-ring placement when
// they differ. ownersByShard comes from GET /v1/cluster/owners against
// each current shard, so owners already moved by an earlier (aborted or
// crashed) rebalance are planned from where they actually are — re-
// planning after an abort naturally covers only the remainder. Every
// source shard must be a member of the target ring (drain via
// Target.Draining, never by dropping a shard outright).
func BuildPlan(req core.RebalanceRequest, ownersByShard map[string][]core.UserID) (*Plan, error) {
	targetRing, err := cluster.NewState(req.Target)
	if err != nil {
		return nil, fmt.Errorf("rebalance: bad target ring: %w", err)
	}
	p := &Plan{
		ID:          fmt.Sprintf("ring-v%d", req.Target.Version),
		Target:      targetRing.State(),
		BatchSize:   req.BatchSize,
		MovesPerSec: req.MovesPerSec,
		State:       core.RebalanceRunning,
	}
	if p.BatchSize <= 0 {
		p.BatchSize = DefaultBatchSize
	}
	if len(req.Target.Draining) > 0 {
		final := core.RingState{Version: req.Target.Version + 1, Vnodes: req.Target.Vnodes}
		for _, s := range req.Target.Shards {
			if !targetRing.IsDraining(s.Name) {
				final.Shards = append(final.Shards, s)
			}
		}
		p.Final = &final
	}
	// Deterministic move order: by source shard, then owner.
	shards := make([]string, 0, len(ownersByShard))
	for shard := range ownersByShard {
		shards = append(shards, shard)
	}
	sort.Strings(shards)
	for _, shard := range shards {
		if _, ok := targetRing.Shard(shard); !ok {
			return nil, fmt.Errorf("rebalance: source shard %q is missing from the target ring; drain it via target.draining instead of dropping it", shard)
		}
		owners := append([]core.UserID(nil), ownersByShard[shard]...)
		sort.Slice(owners, func(i, j int) bool { return owners[i] < owners[j] })
		for _, owner := range owners {
			to := targetRing.Owner(owner).Name
			if to == shard {
				continue
			}
			p.Moves = append(p.Moves, core.RebalanceMove{
				Owner: owner, From: shard, To: to, Phase: core.MovePending,
			})
		}
	}
	return p, nil
}

// Start begins executing a new plan (built by BuildPlan) in a background
// goroutine. An unfinished checkpointed plan must be resumed (same target
// version) or aborted first; Start answers conflict otherwise.
func (c *Coordinator) Start(p *Plan) (core.RebalanceStatus, error) {
	c.mu.Lock()
	if c.running {
		st := c.status
		c.mu.Unlock()
		return st, core.APIErrorf(core.CodeConflict, "rebalance: plan %s is already running", st.ID)
	}
	c.mu.Unlock()
	if prev, ok := c.loadPlan(); ok && prev.State == core.RebalanceRunning && prev.ID != p.ID {
		return c.statusOf(prev), core.APIErrorf(core.CodeConflict,
			"rebalance: unfinished plan %s is checkpointed; resume or abort it first", prev.ID)
	}
	if err := c.savePlan(p); err != nil {
		return core.RebalanceStatus{}, err
	}
	return c.launch(p)
}

// Resume continues a checkpointed unfinished plan (state running — a
// crashed coordinator — or failed). It reports false when there is
// nothing to resume.
func (c *Coordinator) Resume() (core.RebalanceStatus, bool, error) {
	c.mu.Lock()
	if c.running {
		st := c.status
		c.mu.Unlock()
		return st, true, nil
	}
	c.mu.Unlock()
	p, ok := c.loadPlan()
	if !ok || (p.State != core.RebalanceRunning && p.State != core.RebalanceFailed) {
		return c.Status(), false, nil
	}
	p.State = core.RebalanceRunning
	p.Error = ""
	if err := c.savePlan(p); err != nil {
		return core.RebalanceStatus{}, false, err
	}
	st, err := c.launch(p)
	return st, true, err
}

// launch flips the coordinator into running state and starts the run
// loop.
func (c *Coordinator) launch(p *Plan) (core.RebalanceStatus, error) {
	st := c.statusOf(p)
	c.mu.Lock()
	if c.running {
		cur := c.status
		c.mu.Unlock()
		return cur, core.APIErrorf(core.CodeConflict, "rebalance: plan %s is already running", cur.ID)
	}
	c.running = true
	c.abort = false
	c.status = st
	idle := make(chan struct{})
	c.idle = idle
	c.mu.Unlock()
	go func() {
		defer func() {
			c.mu.Lock()
			c.running = false
			c.mu.Unlock()
			close(idle)
		}()
		c.run(p)
	}()
	return st, nil
}

// aborting reports whether an abort was requested.
func (c *Coordinator) aborting() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.abort
}

// retry runs fn with capped exponential backoff — the budget covers a
// shard primary's kill-and-restart window — giving up early on an abort
// request.
func (c *Coordinator) retry(desc string, fn func() error) error {
	backoff := retryBaseBackoff
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil {
			return nil
		}
		if attempt >= c.cfg.MaxRetries || c.aborting() {
			return fmt.Errorf("rebalance: %s: %w", desc, err)
		}
		c.cfg.Logf("rebalance: %s failed (attempt %d/%d), retrying: %v", desc, attempt+1, c.cfg.MaxRetries, err)
		time.Sleep(backoff)
		if backoff *= 2; backoff > retryMaxBackoff {
			backoff = retryMaxBackoff
		}
	}
}

// errCrashed marks a BeforeMove-injected stop: the run loop exits with
// the plan still checkpointed as running, exactly like a process kill.
var errCrashed = errors.New("rebalance: stopped by test seam")

// run executes the plan to completion, abort, or failure. Every state
// transition is checkpointed before it is acted on.
func (c *Coordinator) run(p *Plan) {
	st := c.statusOf(p)
	c.setStatus(st)
	c.notify(core.SignalRebalanceStarted, "", st)
	c.cfg.Logf("rebalance: plan %s: %d moves toward ring v%d (%d already done)",
		p.ID, len(p.Moves), p.Target.Version, st.Done)
	err := c.execute(p, &st)
	switch {
	case err == nil && c.aborting():
		p.State = core.RebalanceAborted
		c.savePlan(p)
		st.State = p.State
		c.setStatus(st)
		c.notify(core.SignalRebalanceAborted, "", st)
		c.cfg.Logf("rebalance: plan %s aborted with %d/%d moves done", p.ID, st.Done, st.Total)
	case err == nil:
		p.State = core.RebalanceDone
		c.savePlan(p)
		st.State = p.State
		c.setStatus(st)
		c.notify(core.SignalRebalanceDone, "", st)
		c.cfg.Logf("rebalance: plan %s done (%d moves)", p.ID, st.Total)
	case errors.Is(err, errCrashed):
		// Leave the plan checkpointed as running; a restart resumes it.
		c.cfg.Logf("rebalance: plan %s stopped by test seam", p.ID)
	default:
		p.State = core.RebalanceFailed
		p.Error = err.Error()
		c.savePlan(p)
		st.State, st.Error = p.State, p.Error
		c.setStatus(st)
		c.notify(core.SignalRebalanceFailed, "", st)
		c.cfg.Logf("rebalance: plan %s failed: %v", p.ID, err)
	}
}

// execute performs the pin → ring → migrate → final-ring sequence. A nil
// return with the abort flag set means a clean stop at a move boundary.
func (c *Coordinator) execute(p *Plan, st *core.RebalanceStatus) error {
	hc := c.cfg.HTTPClient
	clients := make(map[string]*amclient.Client)
	cl := func(shard string) (*amclient.Client, error) {
		if cc, ok := clients[shard]; ok {
			return cc, nil
		}
		cc, err := clientFor(p, shard, c.cfg.Secret, hc)
		if err == nil {
			clients[shard] = cc
		}
		return cc, err
	}

	// Phase 1: pin. Every not-yet-copied owner is pinned to its source on
	// BOTH sides before the ring moves, so the topology flip redirects no
	// live traffic. Owners already copied (resume) keep their pins; owners
	// already done need none.
	pinned := 0
	for _, m := range p.Moves {
		if c.aborting() {
			return nil
		}
		if c.loadMove(p.ID, m.Owner).Phase != core.MovePending {
			continue
		}
		for _, shard := range []string{m.To, m.From} {
			cc, err := cl(shard)
			if err != nil {
				return err
			}
			if err := c.retry(fmt.Sprintf("pin %s on %s", m.Owner, shard), func() error {
				return cc.SetOwnerShard(m.Owner, m.From)
			}); err != nil {
				return err
			}
		}
		pinned++
	}
	c.cfg.Logf("rebalance: pinned %d owners to their source shards", pinned)

	// Phase 2: push the target ring to every member primary (idempotent
	// by version; a node already at the version answers OK).
	for _, s := range p.Target.Shards {
		if c.aborting() {
			return nil
		}
		cc, err := cl(s.Name)
		if err != nil {
			return err
		}
		if err := c.retry(fmt.Sprintf("push ring v%d to %s", p.Target.Version, s.Name), func() error {
			_, err := cc.UpdateRing(p.Target)
			return err
		}); err != nil {
			return err
		}
	}
	c.cfg.Logf("rebalance: ring v%d in force on %d shards", p.Target.Version, len(p.Target.Shards))

	// Phase 3: migrate, batched and rate-limited. The move in flight
	// always completes before an abort takes effect.
	var interval time.Duration
	if p.MovesPerSec > 0 {
		interval = time.Duration(float64(time.Second) / p.MovesPerSec)
	}
	var lastStart time.Time
	sinceCheckpoint := 0
	for _, m := range p.Moves {
		if c.aborting() {
			return nil
		}
		ms := c.loadMove(p.ID, m.Owner)
		if ms.Phase == core.MoveDone {
			continue
		}
		if c.cfg.BeforeMove != nil {
			if err := c.cfg.BeforeMove(m); err != nil {
				return fmt.Errorf("%w: %v", errCrashed, err)
			}
		}
		if interval > 0 && !lastStart.IsZero() {
			if wait := interval - time.Since(lastStart); wait > 0 {
				time.Sleep(wait)
			}
		}
		lastStart = time.Now()
		st.Moving = m.Owner
		c.setStatus(*st)
		if err := c.moveOwner(p, m, ms, cl); err != nil {
			st.Moving = ""
			c.setStatus(*st)
			return err
		}
		st.Done++
		st.Remaining = st.Total - st.Done
		st.Moving = ""
		c.setStatus(*st)
		c.notify(core.SignalRebalanceMove, m.Owner, *st)
		if sinceCheckpoint++; sinceCheckpoint >= p.BatchSize {
			sinceCheckpoint = 0
			// Plan-level checkpoint: purely informational (the per-move
			// records are authoritative), but it bounds how much status
			// derivation a restart re-reads.
			if err := c.savePlan(p); err != nil {
				return err
			}
			c.cfg.Logf("rebalance: %d/%d moves done", st.Done, st.Total)
		}
	}

	// Phase 4: a drain ends by removing the drained shards from the ring
	// entirely — pushed to every member, the drained nodes included, so
	// they disclaim everything from here on.
	if p.Final != nil {
		for _, s := range p.Target.Shards {
			cc, err := cl(s.Name)
			if err != nil {
				return err
			}
			if err := c.retry(fmt.Sprintf("push final ring v%d to %s", p.Final.Version, s.Name), func() error {
				_, err := cc.UpdateRing(*p.Final)
				return err
			}); err != nil {
				return err
			}
		}
		c.cfg.Logf("rebalance: final ring v%d in force (drained shards removed)", p.Final.Version)
	}
	return nil
}

// moveOwner executes (or resumes) one owner's migration through its
// checkpointed phases.
func (c *Coordinator) moveOwner(p *Plan, m core.RebalanceMove, ms moveState, cl func(string) (*amclient.Client, error)) error {
	src, err := cl(m.From)
	if err != nil {
		return err
	}
	dst, err := cl(m.To)
	if err != nil {
		return err
	}
	if ms.Phase == core.MovePending {
		// Copy leg: safe to re-run wholesale after a crash — ownership has
		// not moved, the fresh snapshot supersedes any partial import.
		if err := c.retry(fmt.Sprintf("copy %s to %s", m.Owner, m.To), func() error {
			_, offset, err := amclient.MigrateCopy(src, dst, m.Owner, m.To, nil)
			if err == nil {
				ms.Offset = offset
			}
			return err
		}); err != nil {
			return err
		}
		// Checkpoint BEFORE the cutover: a crash past this point must
		// resume by re-flipping and draining from Offset, never by
		// re-copying a stale snapshot over post-cutover writes.
		ms.Phase = core.MoveCopied
		if err := c.saveMove(p.ID, m.Owner, ms); err != nil {
			return err
		}
	}
	// Cutover + drain (both idempotent from the checkpointed offset).
	if err := c.retry(fmt.Sprintf("cutover %s to %s", m.Owner, m.To), func() error {
		return amclient.MigrateCutover(src, dst, m.Owner, m.To, nil)
	}); err != nil {
		return err
	}
	if err := c.retry(fmt.Sprintf("drain %s from offset %d", m.Owner, ms.Offset), func() error {
		_, err := amclient.MigrateDrain(src, dst, m.Owner, ms.Offset, nil)
		return err
	}); err != nil {
		return err
	}
	// The ring now maps the owner to its new shard; the pins are
	// redundant, so clear them (idempotent deletes).
	for shard, cc := range map[string]*amclient.Client{m.From: src, m.To: dst} {
		if err := c.retry(fmt.Sprintf("clear pin for %s on %s", m.Owner, shard), func() error {
			return cc.ClearOwnerShard(m.Owner)
		}); err != nil {
			return err
		}
	}
	ms.Phase = core.MoveDone
	return c.saveMove(p.ID, m.Owner, ms)
}
