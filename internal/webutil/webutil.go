// Package webutil holds the small HTTP helpers shared by the AM, Hosts and
// prototype applications: JSON request/response plumbing and error mapping.
package webutil

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"sync/atomic"

	"umac/internal/core"
)

// MaxBodyBytes bounds request bodies accepted by ReadJSON.
const MaxBodyBytes = 4 << 20 // 4 MiB

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if v != nil {
		_ = json.NewEncoder(w).Encode(v)
	}
}

// ErrorBody is the legacy JSON error envelope (pre-v1 surface and the
// prototype Hosts).
type ErrorBody struct {
	Error string `json:"error"`
}

// WriteError writes a JSON error response.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, ErrorBody{Error: err.Error()})
}

// WriteErrorf writes a formatted JSON error response.
func WriteErrorf(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// ProblemContentType is the content type of structured error responses.
const ProblemContentType = "application/problem+json"

// apiErrorBody is the rendered envelope: the structured fields plus the
// legacy "error" member, so pre-v1 clients that decode ErrorBody keep
// reading a message.
type apiErrorBody struct {
	*core.APIError
	LegacyError string `json:"error"`
}

// SanitizedMessage is the only message a sanitized 5xx body carries; the
// real cause is logged server-side under the request ID.
const SanitizedMessage = "internal error"

// internalLogSink receives the full cause of every sanitized 5xx. Stored
// as an atomic so the sanitization audit can capture causes without
// racing live traffic.
var internalLogSink atomic.Value // of func(requestID string, e *core.APIError)

// SetInternalErrorLog replaces the server-side sink sanitized 5xx causes
// are reported to (nil restores the default log.Printf sink) and returns
// the previous sink. The sink runs on the request goroutine — keep it
// fast and never let it write to the response.
func SetInternalErrorLog(fn func(requestID string, e *core.APIError)) func(string, *core.APIError) {
	if fn == nil {
		fn = defaultInternalLog
	}
	prev, _ := internalLogSink.Swap(fn).(func(string, *core.APIError))
	return prev
}

// defaultInternalLog is the stock sink: one server-log line keyed by the
// request ID, carrying everything the sanitized body withholds.
func defaultInternalLog(requestID string, e *core.APIError) {
	log.Printf("webutil: internal error [req %s] code=%s status=%d: %s", requestID, e.Code, e.Status, e.Message)
}

func init() { internalLogSink.Store(defaultInternalLog) }

// sanitize returns the envelope actually written for e: 5xx messages are
// replaced with SanitizedMessage after the full cause is handed to the
// internal log sink, so filesystem paths, wrapped Go error chains and WAL
// internals never reach the wire. The one exception is "unavailable"
// (503): its message is the server's own drain announcement, carries no
// internals, and clients display it. 4xx envelopes pass through — their
// messages describe the caller's own input.
func sanitize(e *core.APIError) *core.APIError {
	if e.Status < http.StatusInternalServerError || e.Code == core.CodeUnavailable {
		return e
	}
	if sink, ok := internalLogSink.Load().(func(string, *core.APIError)); ok {
		sink(e.RequestID, e)
	}
	if e.Message == SanitizedMessage {
		return e
	}
	clean := *e
	clean.Message = SanitizedMessage
	return &clean
}

// WriteAPIError writes the structured error envelope, stamping the request
// ID from the request context when the error carries none. It is the
// single funnel every error response passes through: 5xx messages are
// sanitized (full cause to the server log, stable envelope to the wire)
// and rate_limited hints gain their Retry-After header here, so no
// handler can leak or forget either.
func WriteAPIError(w http.ResponseWriter, r *http.Request, e *core.APIError) {
	if e.RequestID == "" && r != nil {
		e.RequestID = RequestIDFrom(r.Context())
	}
	e = sanitize(e)
	if e.RetryAfterSeconds > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.RetryAfterSeconds))
	}
	w.Header().Set("Content-Type", ProblemContentType)
	w.WriteHeader(e.Status)
	_ = json.NewEncoder(w).Encode(apiErrorBody{APIError: e, LegacyError: e.Message})
}

// Fail classifies err (core.APIErrorFor) and writes the envelope. Bodies
// rejected by a MaxBytesReader cap map to request_too_large (413).
func Fail(w http.ResponseWriter, r *http.Request, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		WriteAPIError(w, r, core.APIErrorf(core.CodeRequestTooLarge,
			"webutil: request body exceeds %d bytes", mbe.Limit))
		return
	}
	WriteAPIError(w, r, core.APIErrorFor(err))
}

// FailCode writes the envelope for an explicit error code.
func FailCode(w http.ResponseWriter, r *http.Request, code, format string, args ...any) {
	WriteAPIError(w, r, core.APIErrorf(code, format, args...))
}

// Pagination defaults for the list endpoints: a request with no explicit
// limit gets DefaultPageLimit items; explicit limits are capped at
// MaxPageLimit so one response cannot dump a million-event log.
const (
	DefaultPageLimit = 100
	MaxPageLimit     = 1000
)

// Pagination response headers. The body stays a plain JSON array (the
// pre-v1 shape); the page frame travels in headers.
const (
	HeaderTotalCount = "X-Total-Count"
	HeaderNextOffset = "X-Next-Offset"
)

// ParsePage reads ?offset= and ?limit= with the shared defaults. Invalid
// values yield a bad_request APIError.
func ParsePage(r *http.Request) (offset, limit int, err error) {
	offset, err = pageInt(r, "offset", 0)
	if err != nil {
		return 0, 0, err
	}
	limit, err = pageInt(r, "limit", DefaultPageLimit)
	if err != nil {
		return 0, 0, err
	}
	if limit <= 0 || limit > MaxPageLimit {
		limit = MaxPageLimit
	}
	return offset, limit, nil
}

func pageInt(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	n, err := strconv.Atoi(raw)
	if err != nil || n < 0 {
		return 0, core.APIErrorf(core.CodeBadRequest, "webutil: %s must be a non-negative integer, got %q", name, raw)
	}
	return n, nil
}

// WritePage slices items to [offset, offset+limit), sets the pagination
// headers and writes the page as a JSON array. total is the pre-slice
// size of the filtered set.
func WritePage[T any](w http.ResponseWriter, status int, items []T, total, offset, limit int) {
	if offset > len(items) {
		offset = len(items)
	}
	end := offset + limit
	if end > len(items) {
		end = len(items)
	}
	WritePageFrame(w, status, items[offset:end], total, offset)
}

// WritePageFrame writes an already-windowed page whose first element sits
// at offset within the total matching set (for handlers that window at
// the source, like the audit log). It sets the pagination headers and
// writes the page as a JSON array.
func WritePageFrame[T any](w http.ResponseWriter, status int, page []T, total, offset int) {
	w.Header().Set(HeaderTotalCount, strconv.Itoa(total))
	if next := offset + len(page); next < total {
		w.Header().Set(HeaderNextOffset, strconv.Itoa(next))
	}
	// An empty page renders as [] (not null) so clients can range over it.
	if page == nil {
		page = []T{}
	}
	WriteJSON(w, status, page)
}

// StatusFor maps protocol errors to HTTP statuses.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrAccessDenied):
		return http.StatusForbidden
	case errors.Is(err, core.ErrTokenInvalid), errors.Is(err, core.ErrTokenScope):
		return http.StatusUnauthorized
	case errors.Is(err, core.ErrUnknownRealm), errors.Is(err, core.ErrNotPaired):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// ReadJSON decodes the request body into v, rejecting oversized bodies and
// trailing garbage.
func ReadJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("webutil: decode body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("webutil: trailing data after JSON body")
	}
	return nil
}

// ReadJSONLoose decodes without rejecting unknown fields (for
// forward-compatible endpoints).
func ReadJSONLoose(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("webutil: decode body: %w", err)
	}
	return nil
}
