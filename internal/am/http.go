package am

import (
	"errors"
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strings"

	"umac/internal/audit"
	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/policy"
	"umac/internal/webutil"
)

// APIVersionPrefix is the path prefix of the current API version. Every
// route is canonically mounted under it; the bare pre-v1 paths remain as
// thin legacy aliases sharing the same handlers (and metrics label).
const APIVersionPrefix = "/v1"

// RouteInfo describes one registered API route: the canonical v1 pattern
// plus any legacy alias patterns. The route-drift test asserts every entry
// is documented in docs/PROTOCOL.md.
type RouteInfo struct {
	Method string
	Path   string   // canonical path, including the /v1 prefix
	Legacy []string // alias paths served by the same handler
}

// Handler returns the AM's versioned HTTP API. Canonical routes live under
// /v1; pre-v1 paths are retained as aliases:
//
//	Browser-facing (authenticated via Config.Auth):
//	  GET    /v1/pair/confirm            Fig. 3 user-consent leg
//	  GET    /v1/compose                 Fig. 4 policy-composition page
//	  CRUD   /v1/policies, /v1/policies/{id}, /v1/policies/export, /v1/policies/import
//	  POST   /v1/links/general, /v1/links/specific (+ DELETE)
//	  CRUD   /v1/groups/{group}/members, /v1/custodians
//	  GET    /v1/audit, /v1/audit/summary
//	  GET    /v1/consents, POST /v1/consents/{ticket}
//	  GET    /v1/pairings, DELETE /v1/pairings/{id}
//
//	Requester-facing (unauthenticated; Fig. 5):
//	  POST   /v1/token
//	  GET    /v1/token/status
//
//	Host-facing (HMAC-signed with the pairing secret; Figs. 3/4/6):
//	  POST   /v1/api/pair/exchange       (one-time code, pre-secret: unsigned)
//	  POST   /v1/api/protect
//	  POST   /v1/api/decision
//	  POST   /v1/api/decision/batch
//
//	Replication (shared-secret bearer auth; primaries only):
//	  GET    /v1/replication/snapshot   follower bootstrap image
//	  GET    /v1/replication/wal        resumable WAL tail (long poll)
//
//	Event control plane (SSE; see events.go for the framing):
//	  GET    /v1/events                 session or repl-bearer subscription
//	  GET    /v1/events/consent        ticket-capability consent stream
//	  GET    /v1/events/invalidation  pairing-signed invalidation stream
//
//	Operational (unauthenticated):
//	  GET    /v1/healthz, /v1/readyz, /v1/metrics
//
// On a follower (Config.Replication.Role == RoleFollower) every mutating
// route answers the structured not_primary error with a leader hint; the
// decision family and all reads keep serving from replicated state.
//
// Every route runs inside the shared middleware stack: request-ID
// injection, panic recovery, and per-route latency/status counters
// (exposed on GET /v1/metrics). All errors are the structured
// core.APIError envelope. See docs/PROTOCOL.md for the full reference.
func (a *AM) Handler() http.Handler {
	verifier := httpsig.NewVerifier(a)
	// metrics and routes are locals closed over by this handler's own
	// endpoints, so a second Handler() call cannot zero or race a live
	// handler's counters; the AM fields only back Routes() (drift test).
	metrics := webutil.NewMetrics()
	var routes []RouteInfo
	mux := http.NewServeMux()

	// reg mounts h under "method /v1<path>" and every legacy alias, all
	// sharing one instrumented wrapper so alias traffic lands in the
	// canonical route's counters.
	reg := func(method, path string, h http.Handler, aliases ...string) {
		canonical := method + " " + APIVersionPrefix + path
		wrapped := metrics.Instrument(canonical, h)
		mux.Handle(canonical, wrapped)
		for _, alias := range aliases {
			mux.Handle(method+" "+alias, wrapped)
		}
		routes = append(routes, RouteInfo{Method: method, Path: APIVersionPrefix + path, Legacy: aliases})
	}
	// regSame registers path with the pre-v1 alias at the identical path.
	regSame := func(method, path string, h http.Handler) {
		reg(method, path, h, path)
	}

	// Mutating routes additionally pass through a.primaryOnly, so a
	// read-only follower rejects them with the structured not_primary
	// error (leader hint included) before authentication runs. The
	// decision family and all GET reads stay open on followers.
	//
	// Admission control (ratelimit.go) runs inside the auth wrappers —
	// signed and authed charge their verified identity's bucket, and the
	// unauthenticated public routes are wrapped in the per-remote-IP tier.
	// Costs are the route's cost class: decisions cheap, PAP mutations
	// heavy, import/export/audit/consent heaviest. Operational probes and
	// the replication-secret admin surface are never limited.

	// --- Host-facing API ---
	regSame("POST", "/api/pair/exchange", a.primaryOnly(a.ipLimited(costMutation, http.HandlerFunc(a.handlePairExchange))))
	regSame("POST", "/api/protect", a.primaryOnly(a.signed(verifier, costMutation, a.handleProtect)))
	regSame("POST", "/api/decision", a.signed(verifier, costDecision, a.handleDecision))
	regSame("POST", "/api/decision/batch", a.signed(verifier, costDecision, a.handleDecisionBatch))
	regSame("POST", "/api/decision/pull", a.signed(verifier, costDecision, a.handlePullDecision))
	regSame("POST", "/api/decision/state", a.signed(verifier, costDecision, a.handleStateDecision))

	// --- Requester-facing ---
	regSame("POST", "/token", a.primaryOnly(a.ipLimited(costMutation, http.HandlerFunc(a.handleToken))))
	regSame("GET", "/token/status", a.ipLimited(costDecision, http.HandlerFunc(a.handleTokenStatus)))
	regSame("POST", "/state", a.primaryOnly(a.ipLimited(costMutation, http.HandlerFunc(a.handleEstablishState))))

	// --- Browser-facing ---
	regSame("GET", "/pair/confirm", a.primaryOnly(a.authed(costMutation, a.handlePairConfirm)))
	regSame("GET", "/compose", a.authed(costRead, a.handleComposePage))

	regSame("GET", "/policies", a.authed(costRead, a.handlePolicyList))
	regSame("POST", "/policies", a.primaryOnly(a.authed(costMutation, a.handlePolicyCreate)))
	regSame("GET", "/policies/export", a.authed(costExpensive, a.handlePolicyExport))
	regSame("POST", "/policies/import", a.primaryOnly(a.authed(costExpensive, a.handlePolicyImport)))
	regSame("GET", "/policies/{id}", a.authed(costRead, a.handlePolicyGet))
	regSame("PUT", "/policies/{id}", a.primaryOnly(a.authed(costMutation, a.handlePolicyUpdate)))
	regSame("DELETE", "/policies/{id}", a.primaryOnly(a.authed(costMutation, a.handlePolicyDelete)))

	regSame("POST", "/links/general", a.primaryOnly(a.authed(costMutation, a.handleLinkGeneral)))
	regSame("POST", "/links/specific", a.primaryOnly(a.authed(costMutation, a.handleLinkSpecific)))
	regSame("DELETE", "/links/general", a.primaryOnly(a.authed(costMutation, a.handleUnlinkGeneral)))
	regSame("DELETE", "/links/specific", a.primaryOnly(a.authed(costMutation, a.handleUnlinkSpecific)))

	regSame("GET", "/groups", a.authed(costRead, a.handleGroupList))
	regSame("GET", "/groups/{group}/members", a.authed(costRead, a.handleGroupMembers))
	regSame("POST", "/groups/{group}/members", a.primaryOnly(a.authed(costMutation, a.handleGroupAdd)))
	regSame("DELETE", "/groups/{group}/members/{user}", a.primaryOnly(a.authed(costMutation, a.handleGroupRemove)))

	regSame("GET", "/custodians", a.authed(costRead, a.handleCustodianList))
	regSame("POST", "/custodians", a.primaryOnly(a.authed(costMutation, a.handleCustodianAdd)))
	regSame("DELETE", "/custodians/{user}", a.primaryOnly(a.authed(costMutation, a.handleCustodianRemove)))

	regSame("GET", "/audit", a.authed(costExpensive, a.handleAudit))
	regSame("GET", "/audit/summary", a.authed(costExpensive, a.handleAuditSummary))

	regSame("GET", "/consents", a.authed(costRead, a.handleConsentList))
	regSame("POST", "/consents/{ticket}", a.primaryOnly(a.authed(costExpensive, a.handleConsentResolve)))

	regSame("GET", "/pairings", a.authed(costRead, a.handlePairingList))
	// DELETE is the canonical revocation; the pre-v1 POST …/revoke form is
	// kept as an alias on both surfaces.
	reg("DELETE", "/pairings/{id}", a.primaryOnly(a.authed(costMutation, a.handlePairingRevoke)))
	regSame("POST", "/pairings/{id}/revoke", a.primaryOnly(a.authed(costMutation, a.handlePairingRevoke)))

	// --- Replication (primary → follower WAL shipping) ---
	// New endpoints, v1-only per the frozen-alias policy. Authenticated by
	// the shared replication secret, not by user sessions or pairings.
	reg("GET", "/replication/snapshot", a.replAuthed(a.handleReplSnapshot))
	reg("GET", "/replication/wal", a.replAuthed(a.handleReplWAL))

	// --- Cluster (consistent-hash owner sharding) ---
	// v1-only. The topology probe is open like healthz; the migration
	// admin routes share the replication secret's bearer auth.
	reg("GET", "/cluster", http.HandlerFunc(a.handleClusterInfo))
	reg("PUT", "/cluster/ring", a.replAuthed(a.handleRingUpdate))
	reg("GET", "/cluster/owners", a.replAuthed(a.handleOwnerStats))
	reg("PUT", "/cluster/owners/{owner}", a.replAuthed(a.handleOwnerOverride))
	reg("DELETE", "/cluster/owners/{owner}", a.replAuthed(a.handleOwnerOverrideClear))
	reg("POST", "/cluster/import", a.replAuthed(a.handleClusterImport))

	// --- Rebalance (the self-rebalancing coordinator; see rebalance.go) ---
	// v1-only, replication-secret bearer auth: starting, watching and
	// aborting a bulk owner migration are operator actions on the same
	// trust level as the migration routes the coordinator drives.
	reg("POST", "/rebalance", a.replAuthed(a.handleRebalanceStart))
	reg("GET", "/rebalance", a.replAuthed(a.handleRebalanceStatus))
	reg("DELETE", "/rebalance", a.replAuthed(a.handleRebalanceAbort))

	// --- Event control plane (SSE) ---
	// v1-only. One server-push surface for invalidation, consent and
	// replication signals; each route authenticates for its audience
	// (session or repl bearer / consent ticket capability / pairing HMAC).
	// /events authenticates internally (session or repl bearer) and
	// stays unlimited — follower tailing must never be throttled; the
	// public consent stream rides the IP tier, the invalidation stream
	// its pairing's bucket (one charge per subscription, not per event).
	reg("GET", "/events", http.HandlerFunc(a.handleEvents))
	reg("GET", "/events/consent", a.ipLimited(costMutation, http.HandlerFunc(a.handleEventsConsent)))
	reg("GET", "/events/invalidation", a.signed(verifier, costMutation, a.handleEventsInvalidation))

	// --- Operational ---
	// healthz predates v1 and keeps its alias; readyz and metrics are new
	// endpoints, so per the frozen-alias policy they exist under /v1 only.
	regSame("GET", "/healthz", http.HandlerFunc(a.handleHealthz))
	reg("GET", "/readyz", http.HandlerFunc(a.handleReadyz))
	reg("GET", "/metrics", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		eventsHealth := a.broker.Health()
		body := metricsBody{
			AM:              a.name,
			Replication:     a.ReplicationHealth(),
			Events:          &eventsHealth,
			Cluster:         a.ClusterHealth(),
			Abuse:           a.AbuseHealth(),
			MetricsSnapshot: metrics.Snapshot(),
		}
		if a.rebal != nil {
			if st := a.rebal.Status(); st.State != "" {
				body.Rebalance = &st
			}
		}
		webutil.WriteJSON(w, http.StatusOK, body)
	}))

	a.mu.Lock()
	a.routes = routes
	a.mu.Unlock()
	return webutil.RequestID(webutil.Recover(mux))
}

// Routes returns the route table the last Handler call registered. The
// route-drift test keeps it in lockstep with docs/PROTOCOL.md.
func (a *AM) Routes() []RouteInfo {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.routes
}

// authedHandler receives the authenticated actor.
type authedHandler func(w http.ResponseWriter, r *http.Request, actor core.UserID)

// authed wraps browser endpoints with authentication, then charges cost
// against the authenticated user's session-tier bucket.
func (a *AM) authed(cost float64, h authedHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		actor, ok := a.auth.Authenticate(r)
		if !ok {
			webutil.FailCode(w, r, core.CodeUnauthenticated, "am: authentication required")
			return
		}
		if !a.allow(w, r, tierSession, string(actor), cost) {
			return
		}
		h(w, r, actor)
	})
}

// signed wraps Host-facing endpoints with HMAC channel verification, then
// charges cost against the verified pairing's bucket; the handler
// receives the authenticated pairing ID. Verification runs first so a
// forged signature cannot drain a tenant's budget.
func (a *AM) signed(v *httpsig.Verifier, cost float64, h func(w http.ResponseWriter, r *http.Request, pairingID string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pairingID, err := v.Verify(r)
		if err != nil {
			code := core.CodeSignatureInvalid
			if errors.Is(err, httpsig.ErrReplay) {
				code = core.CodeSignatureReplay
			}
			webutil.FailCode(w, r, code, "%s", err.Error())
			return
		}
		if !a.allow(w, r, tierPairing, pairingID, cost) {
			return
		}
		h(w, r, pairingID)
	})
}

// failOp answers an operation error under the given caller-fault code —
// unless the error chain carries core.ErrInternalFault, which is not the
// caller's doing and must ride the sanitizing 500 funnel instead of
// leaking its cause inside a 4xx envelope.
func failOp(w http.ResponseWriter, r *http.Request, code string, err error) {
	if errors.Is(err, core.ErrInternalFault) {
		webutil.Fail(w, r, err)
		return
	}
	webutil.FailCode(w, r, code, "%s", err.Error())
}

// ownerParam resolves the owner an actor is operating on: the explicit
// ?owner= query value, defaulting to the actor. Management rights are
// verified.
func (a *AM) ownerParam(r *http.Request, actor core.UserID) (core.UserID, error) {
	owner := core.UserID(r.FormValue("owner"))
	if owner == "" {
		owner = actor
	}
	if !a.CanManage(owner, actor) {
		return "", core.APIErrorf(core.CodeForbidden, "am: %s may not manage %s", actor, owner)
	}
	return owner, nil
}

// --- Operational handlers ---

func (a *AM) handleHealthz(w http.ResponseWriter, r *http.Request) {
	webutil.WriteJSON(w, http.StatusOK, core.HealthStatus{
		Status: "ok",
		AM:     a.name,
		Store: core.StoreHealth{
			Durable:  a.store.Durable(),
			WALBytes: a.store.WALSize(),
		},
		Audit: core.AuditHealth{
			Events:        a.audit.Len(),
			PipelineDepth: a.auditPipe.Depth(),
			PipelineCap:   a.auditPipe.Capacity(),
		},
		Replication: a.ReplicationHealth(),
		Abuse:       a.AbuseHealth(),
	})
}

// handleReadyz is the load-balancer readiness probe: 200 while serving,
// 503 (code "unavailable", retryable) once SetDraining(true) — so an LB
// stops routing new traffic while in-flight requests finish.
func (a *AM) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if a.draining.Load() {
		webutil.FailCode(w, r, core.CodeUnavailable, "am: %s is draining", a.name)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]any{"ready": true, "am": a.name})
}

// metricsBody is the GET /v1/metrics response.
type metricsBody struct {
	AM          string                  `json:"am"`
	Replication *core.ReplicationHealth `json:"replication,omitempty"`
	Events      *core.EventsHealth      `json:"events,omitempty"`
	// Cluster carries the shard's owner-load gauges (sharded nodes only):
	// the data the rebalance planner diffs and operators alert on.
	Cluster *core.ClusterHealth `json:"cluster,omitempty"`
	// Rebalance is the embedded coordinator's progress, present once a
	// plan has run on this node.
	Rebalance *core.RebalanceStatus `json:"rebalance,omitempty"`
	// Abuse carries the rate-limiter throttle gauges (present only when
	// abuse controls are enabled).
	Abuse *core.AbuseHealth `json:"abuse,omitempty"`
	webutil.MetricsSnapshot
}

// --- Pairing handlers ---

func (a *AM) handlePairConfirm(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	q := r.URL.Query()
	req := core.PairingRequest{
		Host:     core.HostID(q.Get(core.ParamHost)),
		HostName: q.Get("host_name"),
		HostURL:  q.Get("host_url"),
		User:     actor,
	}
	switch q.Get("scope") {
	case "application":
		req.Scope = core.PairingScopeApplication
	case "resources":
		req.Scope = core.PairingScopeResources
		for _, res := range q[core.ParamResource] {
			req.Resources = append(req.Resources, core.ResourceID(res))
		}
	default:
		req.Scope = core.PairingScopeUser
	}
	returnTo := q.Get(core.ParamReturnTo)
	code, err := a.ApprovePairing(req)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	if returnTo == "" {
		webutil.WriteJSON(w, http.StatusOK, map[string]string{"code": code})
		return
	}
	u, err := url.Parse(returnTo)
	if err != nil {
		webutil.FailCode(w, r, core.CodeBadRequest, "am: bad return_to")
		return
	}
	uq := u.Query()
	uq.Set("code", code)
	u.RawQuery = uq.Encode()
	http.Redirect(w, r, u.String(), http.StatusFound)
}

func (a *AM) handlePairExchange(w http.ResponseWriter, r *http.Request) {
	var req core.PairExchangeRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	resp, err := a.ExchangeCode(req.Code, req.Host)
	if err != nil {
		failOp(w, r, core.CodePairingCodeInvalid, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

func (a *AM) handlePairingList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	offset, limit, err := webutil.ParsePage(r)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	// Serve the declared wire struct (core.PairingInfo), which has no
	// secret field at all — the channel secret cannot leak through the
	// listing API even by omission.
	pairings := a.Pairings(owner)
	infos := make([]core.PairingInfo, len(pairings))
	for i, p := range pairings {
		infos[i] = core.PairingInfo{
			ID:        p.ID,
			Host:      p.Host,
			HostName:  p.HostName,
			HostURL:   p.HostURL,
			User:      p.User,
			Scope:     p.Scope,
			Resources: p.Resources,
			CreatedAt: p.CreatedAt,
			Revoked:   p.Revoked,
		}
	}
	webutil.WritePage(w, http.StatusOK, infos, len(infos), offset, limit)
}

func (a *AM) handlePairingRevoke(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	id := r.PathValue("id")
	p, err := a.GetPairing(id)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	if !a.CanManage(p.User, actor) {
		webutil.FailCode(w, r, core.CodeForbidden, "am: %s may not revoke pairing of %s", actor, p.User)
		return
	}
	if err := a.RevokePairing(id); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{"revoked": id})
}

// --- Host API handlers ---

func (a *AM) handleProtect(w http.ResponseWriter, r *http.Request, pairingID string) {
	var req core.ProtectRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	resp, err := a.RegisterRealm(pairingID, req)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

func (a *AM) handleDecision(w http.ResponseWriter, r *http.Request, pairingID string) {
	q := decisionQueryPool.Get().(*core.DecisionQuery)
	defer decisionQueryPool.Put(q)
	*q = core.DecisionQuery{}
	if err := webutil.ReadJSON(r, q); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	resp, err := a.Decide(pairingID, *q)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	writeDecisionJSON(w, r, resp)
}

func (a *AM) handleDecisionBatch(w http.ResponseWriter, r *http.Request, pairingID string) {
	q := batchQueryPool.Get().(*core.BatchDecisionQuery)
	defer batchQueryPool.Put(q)
	*q = core.BatchDecisionQuery{Items: q.Items[:0]}
	if err := webutil.ReadJSON(r, q); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	resp, err := a.DecideBatch(pairingID, *q)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	writeDecisionJSON(w, r, resp)
}

func (a *AM) handlePullDecision(w http.ResponseWriter, r *http.Request, pairingID string) {
	req := pullQueryPool.Get().(*core.PullDecisionQuery)
	defer pullQueryPool.Put(req)
	*req = core.PullDecisionQuery{}
	if err := webutil.ReadJSON(r, req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	resp, err := a.PullDecide(pairingID, req.Query, req.Subject, req.Requester)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	writeDecisionJSON(w, r, resp)
}

func (a *AM) handleStateDecision(w http.ResponseWriter, r *http.Request, pairingID string) {
	req := stateQueryPool.Get().(*core.StateDecisionQuery)
	defer stateQueryPool.Put(req)
	*req = core.StateDecisionQuery{}
	if err := webutil.ReadJSON(r, req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	resp, err := a.StateDecide(pairingID, req.Query, req.Handle)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	writeDecisionJSON(w, r, resp)
}

func (a *AM) handleEstablishState(w http.ResponseWriter, r *http.Request) {
	var req core.TokenRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	handle, err := a.EstablishState(req)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, core.StateResponse{Handle: handle})
}

// --- Requester handlers ---

func (a *AM) handleToken(w http.ResponseWriter, r *http.Request) {
	var req core.TokenRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	resp, err := a.IssueToken(req)
	switch {
	case err != nil:
		webutil.Fail(w, r, err)
	case resp.Pending():
		// 202: the request is accepted but the token is not ready —
		// consent pending or terms outstanding (asynchronous flow).
		webutil.WriteJSON(w, http.StatusAccepted, resp)
	default:
		webutil.WriteJSON(w, http.StatusOK, resp)
	}
}

func (a *AM) handleTokenStatus(w http.ResponseWriter, r *http.Request) {
	st, err := a.ConsentStatus(r.FormValue(core.ParamTicket))
	if err != nil {
		failOp(w, r, core.CodeNotFound, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, st)
}

// --- Policy handlers ---

func (a *AM) handlePolicyList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	offset, limit, err := webutil.ParsePage(r)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	policies := a.ListPolicies(owner)
	webutil.WritePage(w, http.StatusOK, policies, len(policies), offset, limit)
}

func (a *AM) handlePolicyCreate(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var p policy.Policy
	if err := webutil.ReadJSONLoose(r, &p); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	if p.Owner == "" {
		p.Owner = actor
	}
	created, err := a.CreatePolicy(actor, p)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusCreated, created)
}

func (a *AM) handlePolicyGet(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	p, err := a.GetPolicy(core.PolicyID(r.PathValue("id")))
	if err != nil {
		failOp(w, r, core.CodeNotFound, err)
		return
	}
	if !a.CanManage(p.Owner, actor) {
		webutil.FailCode(w, r, core.CodeForbidden, "am: %s may not view policies of %s", actor, p.Owner)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, p)
}

func (a *AM) handlePolicyUpdate(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var p policy.Policy
	if err := webutil.ReadJSONLoose(r, &p); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	p.ID = core.PolicyID(r.PathValue("id"))
	if err := a.UpdatePolicy(actor, p); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, p)
}

func (a *AM) handlePolicyDelete(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	if err := a.DeletePolicy(actor, core.PolicyID(r.PathValue("id"))); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *AM) handlePolicyExport(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	format, err := policy.ParseFormat(formatParam(r))
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	w.Header().Set("Content-Type", format.ContentType())
	if err := a.ExportPolicies(w, owner, format); err != nil {
		// Headers are gone; nothing more we can do than log via audit.
		return
	}
}

func (a *AM) handlePolicyImport(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	format, err := policy.ParseFormat(formatParam(r))
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	// The import stream bypasses ReadJSON, so it needs its own size cap;
	// an over-cap read surfaces as *http.MaxBytesError through the policy
	// codec's %w chain and maps to request_too_large in webutil.Fail.
	n, err := a.ImportPolicies(actor, owner, http.MaxBytesReader(w, r.Body, webutil.MaxBodyBytes), format)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]int{"imported": n})
}

// formatParam reads the serialization format from ?format= or Content-Type.
func formatParam(r *http.Request) string {
	if f := r.URL.Query().Get("format"); f != "" {
		return f
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		return ct
	}
	return "json"
}

// --- Link handlers ---

func (a *AM) handleLinkGeneral(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req core.LinkGeneralRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	owner := req.Owner
	if owner == "" {
		owner = actor
	}
	if !a.CanManage(owner, actor) {
		webutil.FailCode(w, r, core.CodeForbidden, "am: %s may not manage %s", actor, owner)
		return
	}
	if err := a.LinkGeneral(owner, req.Realm, req.Policy); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{"linked": string(req.Realm)})
}

func (a *AM) handleLinkSpecific(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req core.LinkSpecificRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	owner := req.Owner
	if owner == "" {
		owner = actor
	}
	if !a.CanManage(owner, actor) {
		webutil.FailCode(w, r, core.CodeForbidden, "am: %s may not manage %s", actor, owner)
		return
	}
	if err := a.LinkSpecific(owner, req.Host, req.Resource, req.Policy); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{"linked": string(req.Resource)})
}

func (a *AM) handleUnlinkGeneral(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	if err := a.UnlinkGeneral(owner, core.RealmID(r.FormValue(core.ParamRealm))); err != nil {
		failOp(w, r, core.CodeNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *AM) handleUnlinkSpecific(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	err = a.UnlinkSpecific(owner,
		core.HostID(r.FormValue(core.ParamHost)),
		core.ResourceID(r.FormValue(core.ParamResource)))
	if err != nil {
		failOp(w, r, core.CodeNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Group handlers ---

func (a *AM) handleGroupList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Groups(owner))
}

func (a *AM) handleGroupMembers(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.GroupMembers(owner, r.PathValue("group")))
}

func (a *AM) handleGroupAdd(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req core.GroupMemberRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	owner := req.Owner
	if owner == "" {
		owner = actor
	}
	if err := a.AddGroupMember(actor, owner, r.PathValue("group"), req.User); err != nil {
		failOp(w, r, core.CodeForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.GroupMembers(owner, r.PathValue("group")))
}

func (a *AM) handleGroupRemove(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	if err := a.RemoveGroupMember(actor, owner, r.PathValue("group"), core.UserID(r.PathValue("user"))); err != nil {
		failOp(w, r, core.CodeForbidden, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Custodian handlers ---

func (a *AM) handleCustodianList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Custodians(owner))
}

func (a *AM) handleCustodianAdd(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req core.CustodianRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	// Only the owner themselves may appoint custodians.
	if err := a.AddCustodian(actor, req.Custodian); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Custodians(actor))
}

func (a *AM) handleCustodianRemove(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	if err := a.RemoveCustodian(actor, core.UserID(r.PathValue("user"))); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Audit handlers ---

func (a *AM) handleAudit(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	offset, limit, err := webutil.ParsePage(r)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	f := audit.Filter{
		Owner:     owner,
		Host:      core.HostID(r.FormValue(core.ParamHost)),
		Realm:     core.RealmID(r.FormValue(core.ParamRealm)),
		Requester: core.RequesterID(r.FormValue(core.ParamRequester)),
		Type:      audit.EventType(r.FormValue("type")),
	}
	// QueryPage windows at the source (one pass, page-sized allocation);
	// the frame headers are computed from the request offset.
	events, total := a.Audit().QueryPage(f, offset, limit)
	webutil.WritePageFrame(w, http.StatusOK, events, total, offset)
}

func (a *AM) handleAuditSummary(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Audit().Summarize(owner))
}

// --- Consent handlers ---

func (a *AM) handleConsentList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	offset, limit, err := webutil.ParsePage(r)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	pending := a.PendingConsents(owner)
	webutil.WritePage(w, http.StatusOK, pending, len(pending), offset, limit)
}

func (a *AM) handleConsentResolve(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req core.ConsentResolveRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	if err := a.ResolveConsent(actor, r.PathValue("ticket"), req.Approve); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]bool{"approved": req.Approve})
}

// --- Compose page (Fig. 4) ---

// handleComposePage renders the policy-composition landing page a user
// reaches when redirected from a Host's "share" control. It lists the
// user's policies so one can be linked to the realm the Host supplied.
// Programmatic clients use POST /v1/links/general instead.
func (a *AM) handleComposePage(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	q := r.URL.Query()
	host := q.Get(core.ParamHost)
	realm := q.Get(core.ParamRealm)
	var b strings.Builder
	fmt.Fprintf(&b, "<!doctype html><title>%s — compose policy</title>", html.EscapeString(a.name))
	fmt.Fprintf(&b, "<h1>Protect %s at %s</h1>", html.EscapeString(realm), html.EscapeString(host))
	fmt.Fprintf(&b, "<p>Signed in as %s.</p><h2>Your policies</h2><ul>", html.EscapeString(string(actor)))
	for _, p := range a.ListPolicies(actor) {
		fmt.Fprintf(&b, "<li>%s (%s, %d rules)</li>",
			html.EscapeString(string(p.ID)), html.EscapeString(p.Kind.String()), len(p.Rules))
	}
	b.WriteString("</ul><p>Link a policy via POST /v1/links/general.</p>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
	a.trace(core.PhaseComposingPolicies, "user:"+string(actor), "am:"+a.name,
		"compose-page", realm)
}
