// Package apps_test integration-tests the two prototype Hosts of Section
// VI against a live AM: built-in ACL mode, delegated UMAC mode, and the
// cross-Host flows where each application acts as a Requester against the
// other (gallery imports from storage; storage backs up gallery albums).
package apps_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"image"
	"image/color"
	"net/http"
	"net/http/httptest"
	"testing"

	"umac/internal/apps/gallery"
	"umac/internal/apps/storage"
	"umac/internal/core"
	"umac/internal/identity"
	"umac/internal/policy"
	"umac/internal/requester"
	"umac/internal/sim"
)

// fixture is a full two-app deployment.
type fixture struct {
	world      *sim.World
	storage    *storage.App
	storageSrv *httptest.Server
	gallery    *gallery.App
	gallerySrv *httptest.Server
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	w := sim.NewWorld()
	t.Cleanup(w.Close)

	st := storage.New(storage.Config{HostID: "storage", Tracer: w.Tracer})
	stSrv := httptest.NewServer(st.Handler())
	t.Cleanup(stSrv.Close)
	st.Enforcer.SetBaseURL(stSrv.URL)

	g := gallery.New(gallery.Config{HostID: "gallery", Tracer: w.Tracer})
	gSrv := httptest.NewServer(g.Handler())
	t.Cleanup(gSrv.Close)
	g.Enforcer.SetBaseURL(gSrv.URL)

	return &fixture{world: w, storage: st, storageSrv: stSrv, gallery: g, gallerySrv: gSrv}
}

func pngBytes(t *testing.T) []byte {
	t.Helper()
	img := image.NewRGBA(image.Rect(0, 0, 6, 4))
	for y := 0; y < 4; y++ {
		for x := 0; x < 6; x++ {
			img.Set(x, y, color.RGBA{R: uint8(40 * x), G: uint8(60 * y), B: 128, A: 255})
		}
	}
	data, err := gallery.EncodePNG(img)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// asUser issues a request authenticated as the given user via the identity
// header (simulated login).
func asUser(t *testing.T, user, method, url string, body []byte) *http.Response {
	t.Helper()
	var rdr *bytes.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(identity.DefaultUserHeader, user)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestStorageBuiltinACLMode(t *testing.T) {
	f := newFixture(t)
	f.storage.Tree("bob").Put("/travel/notes.txt", []byte("secret notes"))

	// Owner reads their own file.
	resp := asUser(t, "bob", http.MethodGet, f.storageSrv.URL+"/files/bob/travel/notes.txt", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("owner read status = %d", resp.StatusCode)
	}
	// A stranger is denied by the built-in matrix.
	resp2 := asUser(t, "mallory", http.MethodGet, f.storageSrv.URL+"/files/bob/travel/notes.txt", nil)
	defer resp2.Body.Close()
	if resp2.StatusCode != 403 {
		t.Fatalf("stranger status = %d", resp2.StatusCode)
	}
	// After a local grant (the pre-UMAC workflow) alice can read.
	f.storage.ACL.Grant("bob", "/travel/notes.txt", "alice", core.ActionRead)
	resp3 := asUser(t, "alice", http.MethodGet, f.storageSrv.URL+"/files/bob/travel/notes.txt", nil)
	defer resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Fatalf("granted alice status = %d", resp3.StatusCode)
	}
}

// delegateStorage pairs bob's storage account with the AM and protects the
// travel realm with a friends-read policy.
func delegateStorage(t *testing.T, f *fixture) {
	t.Helper()
	bob := sim.NewUserAgent("bob")
	if err := bob.PairEnforcer(f.storage.Enforcer, f.world.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := f.storage.Enforcer.Protect("bob", "travel", nil, ""); err != nil {
		t.Fatal(err)
	}
	p, err := f.world.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect: policy.EffectPermit,
			Subjects: []policy.Subject{
				{Type: policy.SubjectGroup, Name: "friends"},
				{Type: policy.SubjectOwner},
				{Type: policy.SubjectRequester, Name: "gallery"},
			},
			Actions: []core.Action{core.ActionRead, core.ActionList},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.world.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	if err := f.world.AM.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
}

func TestStorageDelegatedMode(t *testing.T) {
	f := newFixture(t)
	f.storage.Tree("bob").Put("/travel/notes.txt", []byte("trip notes"))
	delegateStorage(t, f)

	// Plain authenticated browsing no longer suffices: the protocol takes
	// over and a tokenless request gets the 401 referral.
	resp := asUser(t, "alice", http.MethodGet, f.storageSrv.URL+"/files/bob/travel/notes.txt", nil)
	defer resp.Body.Close()
	if resp.StatusCode != 401 {
		t.Fatalf("tokenless status = %d", resp.StatusCode)
	}
	// The requester library completes the flow for friend alice.
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	body, err := alice.Fetch(storage.FileURL(f.storageSrv.URL, "bob", "/travel/notes.txt"), core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "trip notes" {
		t.Fatalf("body = %q", body)
	}
	// Stranger denied by the AM.
	mallory := requester.New(requester.Config{ID: "m", Subject: "mallory"})
	if _, err := mallory.Fetch(storage.FileURL(f.storageSrv.URL, "bob", "/travel/notes.txt"), core.ActionRead); err == nil {
		t.Fatal("mallory read the protected file")
	}
}

func TestStorageDirectoryListingDelegated(t *testing.T) {
	f := newFixture(t)
	f.storage.Tree("bob").Put("/travel/a.txt", []byte("1"))
	f.storage.Tree("bob").Put("/travel/b.txt", []byte("2"))
	delegateStorage(t, f)

	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	body, err := alice.Fetch(f.storageSrv.URL+"/dirs/bob/travel", core.ActionList)
	if err != nil {
		t.Fatal(err)
	}
	var entries []storage.Entry
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestGalleryUploadAndEditDelegated(t *testing.T) {
	f := newFixture(t)
	bob := sim.NewUserAgent("bob")
	if err := bob.PairEnforcer(f.gallery.Enforcer, f.world.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := f.gallery.Enforcer.Protect("bob", "holiday", nil, ""); err != nil {
		t.Fatal(err)
	}
	p, _ := f.world.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{
			{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectOwner}},
			},
			{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
				Actions:  []core.Action{core.ActionRead, core.ActionList},
			},
		},
	})
	if err := f.world.AM.LinkGeneral("bob", "holiday", p.ID); err != nil {
		t.Fatal(err)
	}

	photo := pngBytes(t)
	// Bob uploads through the protocol (the owner rule permits write): the
	// PUT carries a token bob's browser obtained from the AM.
	bobClient := requester.New(requester.Config{ID: "bob-browser", Subject: "bob"})
	url := gallery.PhotoURL(f.gallerySrv.URL, "bob", "holiday", "beach.png")
	tok, err := bobClient.ObtainToken(f.world.AMServer.URL, "gallery", "holiday", "holiday/beach.png", core.ActionWrite)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(photo))
	req.Header.Set("Authorization", "UMAC "+tok)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("upload status = %d", resp2.StatusCode)
	}

	// Alice reads the photo through the protocol.
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	got, err := alice.Fetch(url, core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, photo) {
		t.Fatal("photo bytes mismatch")
	}
	// Alice cannot edit (read-only rule): the edit endpoint denies.
	editBody, _ := json.Marshal(gallery.EditParams{Op: gallery.OpRotate90})
	editResp, err := alice.Post(url+"/edit", "application/json", editBody, core.ActionWrite)
	if err == nil {
		defer editResp.Body.Close()
		if editResp.StatusCode != 401 && editResp.StatusCode != 403 {
			t.Fatalf("alice edit status = %d", editResp.StatusCode)
		}
	}
	// Bob edits: rotate90 flips dimensions 6x4 → 4x6.
	if err := f.gallery.Edit("bob", "holiday", "beach.png", gallery.EditParams{Op: gallery.OpRotate90}); err != nil {
		t.Fatal(err)
	}
	data, err := f.gallery.Photo("bob", "holiday", "beach.png")
	if err != nil {
		t.Fatal(err)
	}
	img, err := gallery.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 4 || img.Bounds().Dy() != 6 {
		t.Fatalf("bounds after rotate = %v", img.Bounds())
	}
}

func TestGalleryImportsFromStorage(t *testing.T) {
	// Section VI: "users can store photos in their online storage service
	// and can load them to the photo gallery" — the gallery acts as a
	// Requester against the storage Host.
	f := newFixture(t)
	photo := pngBytes(t)
	f.storage.Tree("bob").Put("/travel/beach.png", photo)
	delegateStorage(t, f) // permits requester:gallery to read travel

	resp := asUser(t, "bob", http.MethodPost, f.gallerySrv.URL+"/import", mustJSON(t, map[string]string{
		"url":   storage.FileURL(f.storageSrv.URL, "bob", "/travel/beach.png"),
		"album": "imported",
		"photo": "beach.png",
	}))
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("import status = %d", resp.StatusCode)
	}
	got, err := f.gallery.Photo("bob", "imported", "beach.png")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, photo) {
		t.Fatal("imported bytes mismatch")
	}
}

func TestStorageBacksUpGallery(t *testing.T) {
	// The reverse flow: "it may act as a backup service for online photo
	// albums" — storage as Requester against the gallery Host.
	f := newFixture(t)
	photo := pngBytes(t)
	if err := f.gallery.AddPhoto("bob", "holiday", "sunset.png", photo); err != nil {
		t.Fatal(err)
	}
	// Delegate the gallery and permit requester:storage to read holiday.
	bob := sim.NewUserAgent("bob")
	if err := bob.PairEnforcer(f.gallery.Enforcer, f.world.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := f.gallery.Enforcer.Protect("bob", "holiday", nil, ""); err != nil {
		t.Fatal(err)
	}
	p, _ := f.world.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectRequester, Name: "storage"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err := f.world.AM.LinkGeneral("bob", "holiday", p.ID); err != nil {
		t.Fatal(err)
	}

	resp := asUser(t, "bob", http.MethodPost, f.storageSrv.URL+"/backup", mustJSON(t, map[string]string{
		"url":       gallery.PhotoURL(f.gallerySrv.URL, "bob", "holiday", "sunset.png"),
		"dest_path": "/backups/sunset.png",
	}))
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("backup status = %d: %s", resp.StatusCode, readBody(resp))
	}
	got, err := f.storage.Tree("bob").Get("/backups/sunset.png")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, photo) {
		t.Fatal("backup bytes mismatch")
	}
}

func TestImportDeniedWithoutPolicy(t *testing.T) {
	f := newFixture(t)
	f.storage.Tree("bob").Put("/travel/beach.png", pngBytes(t))
	// Delegate storage but link NO policy: deny-biased default.
	bob := sim.NewUserAgent("bob")
	if err := bob.PairEnforcer(f.storage.Enforcer, f.world.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := f.storage.Enforcer.Protect("bob", "travel", nil, ""); err != nil {
		t.Fatal(err)
	}
	resp := asUser(t, "bob", http.MethodPost, f.gallerySrv.URL+"/import", mustJSON(t, map[string]string{
		"url":   storage.FileURL(f.storageSrv.URL, "bob", "/travel/beach.png"),
		"album": "x", "photo": "y",
	}))
	defer resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Fatalf("status = %d, want 403", resp.StatusCode)
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func readBody(resp *http.Response) string {
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return buf.String()
}

var _ = fmt.Sprintf
