package sim

import (
	"context"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"time"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/store"
)

// This file is the high-availability workload: a durable primary AM and an
// in-memory follower replicating from it over HTTP, a failover-aware typed
// client spreading decision queries across both, and a hard kill of the
// primary mid-run. It demonstrates (and the tests assert) the two HA
// properties the replication design promises: the follower keeps answering
// decisions with the primary gone, and no write the primary acknowledged
// is missing once the primary's store is recovered from its WAL — with the
// follower converging on the recovered state afterwards.

// failoverSecret and failoverTokenKey are the deployment-wide shared
// secrets of the workload (see docs/OPERATIONS.md: followers need the
// token-service key to validate primary-minted tokens).
const failoverSecret = "sim-repl-secret"

var failoverTokenKey = []byte("sim-shared-token-key-0123456789a")

// FailoverReport summarizes one RunFailoverWorkload execution.
type FailoverReport struct {
	// WritesAcked is how many policy-create writes the primary
	// acknowledged before it was killed.
	WritesAcked int
	// DecisionsBeforeKill / DecisionsAfterKill count decision queries the
	// failover client had answered while the primary lived and after it
	// was killed (the latter necessarily by the follower).
	DecisionsBeforeKill int
	DecisionsAfterKill  int
	// DecisionFailures counts decision queries that failed outright (no
	// endpoint answered). Zero in a healthy run.
	DecisionFailures int
	// LostAfterRecovery lists acknowledged policy IDs missing from the
	// primary's store once reopened from its WAL. Non-empty means the
	// durability contract broke.
	LostAfterRecovery []core.PolicyID
	// LostOnFollower lists acknowledged policy IDs missing from the
	// follower after it re-synced against the recovered primary.
	LostOnFollower []core.PolicyID
	// FollowerCaughtUp reports whether the follower converged on the
	// recovered primary's applied offset.
	FollowerCaughtUp bool
}

// RunFailoverWorkload drives the kill-the-primary scenario in dir (scratch
// space for the primary's durable state): set up a paired host and permit
// policy, stream writes interleaved with decision queries through a
// failover client, hard-kill the primary mid-run, keep querying decisions
// against the surviving follower, then recover the primary from its WAL
// and let the follower re-sync. writes is the total number of policy
// writes attempted; the kill lands after roughly half. ctx bounds every
// phase with a phase-named error.
func RunFailoverWorkload(ctx context.Context, dir string, writes int) (FailoverReport, error) {
	var rep FailoverReport
	statePath := filepath.Join(dir, "primary.json")
	pst, err := store.Open(statePath)
	if err != nil {
		return rep, err
	}
	primary := am.New(am.Config{
		Name: "am-primary", Store: pst, TokenKey: failoverTokenKey,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: failoverSecret},
	})
	primarySrv := httptest.NewServer(primary.Handler())
	primary.SetBaseURL(primarySrv.URL)

	// Protocol fixture: pairing, realm, permit policy, token — all written
	// through the primary, all replicated state.
	code, err := primary.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if err != nil {
		return rep, err
	}
	pairing, err := primary.ExchangeCode(code, "webpics")
	if err != nil {
		return rep, err
	}
	if _, err := primary.RegisterRealm(pairing.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		return rep, err
	}
	base, err := primary.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		return rep, err
	}
	if err := primary.LinkGeneral("bob", "travel", base.ID); err != nil {
		return rep, err
	}
	tok, err := primary.IssueToken(core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		return rep, err
	}

	follower := am.New(am.Config{
		Name: "am-follower", TokenKey: failoverTokenKey,
		Replication: am.ReplicationConfig{
			Role: am.RoleFollower, Secret: failoverSecret,
			PrimaryURL: primarySrv.URL, PollWait: 100 * time.Millisecond,
		},
	})
	followerSrv := httptest.NewServer(follower.Handler())
	follower.SetBaseURL(followerSrv.URL)
	defer func() {
		followerSrv.Close()
		follower.Close()
	}()
	// The follower must hold the protocol fixture before the kill can
	// demonstrate read continuity; writes racing the kill are recovered
	// from the primary's WAL, not from the follower.
	if err := awaitReplicated(ctx, "fixture-sync", follower, pst.LastSeq(), 10*time.Second); err != nil {
		return rep, err
	}

	// The failover-aware clients: decisions signed with the pairing
	// credentials, management writes as bob — both listing primary first.
	decider := amclient.New(amclient.Config{
		BaseURL:   primarySrv.URL,
		Endpoints: []string{followerSrv.URL},
		PairingID: pairing.PairingID,
		Secret:    pairing.Secret,
	})
	manager := amclient.New(amclient.Config{
		BaseURL:   primarySrv.URL,
		Endpoints: []string{followerSrv.URL},
		User:      "bob",
	})

	decide := func() error {
		dec, err := decider.Decide(core.DecisionQuery{
			Host: "webpics", Realm: "travel", Resource: "photo",
			Action: core.ActionRead, Token: tok.Token,
		})
		if err != nil {
			return err
		}
		if !dec.Permit() {
			return fmt.Errorf("sim: unexpected deny: %+v", dec)
		}
		return nil
	}

	var acked []core.PolicyID
	writePolicy := func(i int) error {
		p, err := manager.CreatePolicy(policy.Policy{
			Owner: "bob", Kind: policy.KindGeneral,
			Rules: []policy.Rule{{
				Effect:   policy.EffectPermit,
				Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: fmt.Sprintf("friend-%d", i)}},
				Actions:  []core.Action{core.ActionRead},
			}},
		})
		if err != nil {
			return err
		}
		acked = append(acked, p.ID)
		return nil
	}

	// Phase 1: writes interleaved with decisions, primary alive.
	half := writes / 2
	for i := 0; i < half; i++ {
		if err := checkPhase(ctx, "pre-kill-load"); err != nil {
			return rep, err
		}
		if err := writePolicy(i); err != nil {
			return rep, fmt.Errorf("sim: pre-kill write %d: %w", i, err)
		}
		if err := decide(); err != nil {
			rep.DecisionFailures++
		} else {
			rep.DecisionsBeforeKill++
		}
	}

	// Hard kill: the listener dies and the store is dropped without a
	// snapshot — only the WAL (written before each ack) survives in
	// primary.json.wal.
	primarySrv.Close()
	primary.Close()
	pst.Close()

	// Phase 2: the primary is gone. Decisions keep flowing — the client
	// fails over to the follower. Writes now fail (no primary); that is
	// the documented degradation, not a correctness loss.
	for i := 0; i < half; i++ {
		if err := checkPhase(ctx, "post-kill-load"); err != nil {
			return rep, err
		}
		if err := decide(); err != nil {
			rep.DecisionFailures++
		} else {
			rep.DecisionsAfterKill++
		}
		if err := writePolicy(half + i); err == nil {
			// A follower acked a write: the gate is broken.
			return rep, fmt.Errorf("sim: write %d acknowledged with no primary alive", half+i)
		}
	}

	// Phase 3: recovery. Reopen the primary's store from disk (snapshot +
	// WAL replay) and verify every acknowledged write survived.
	pst2, err := store.Open(statePath)
	if err != nil {
		return rep, err
	}
	recovered := am.New(am.Config{
		Name: "am-primary", Store: pst2, TokenKey: failoverTokenKey,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: failoverSecret},
	})
	recoveredSrv := httptest.NewServer(recovered.Handler())
	recovered.SetBaseURL(recoveredSrv.URL)
	defer func() {
		recoveredSrv.Close()
		recovered.Close()
		pst2.Close()
	}()
	for _, id := range acked {
		if _, err := recovered.GetPolicy(id); err != nil {
			rep.LostAfterRecovery = append(rep.LostAfterRecovery, id)
		}
	}

	// Phase 4: the follower re-points at the recovered primary (a restart
	// in production; here a fresh follower AM over the same store) and
	// converges. Its retained offset makes the re-sync incremental or a
	// snapshot re-bootstrap — both must end at the same state.
	fst := follower.Store()
	followerSrv.Close()
	follower.Close()
	follower = am.New(am.Config{
		Name: "am-follower", Store: fst, TokenKey: failoverTokenKey,
		Replication: am.ReplicationConfig{
			Role: am.RoleFollower, Secret: failoverSecret,
			PrimaryURL: recoveredSrv.URL, PollWait: 100 * time.Millisecond,
		},
	})
	followerSrv = httptest.NewServer(follower.Handler())
	follower.SetBaseURL(followerSrv.URL)
	rep.FollowerCaughtUp = awaitReplicated(ctx, "follower-resync", follower, pst2.LastSeq(), 10*time.Second) == nil
	for _, id := range acked {
		if _, err := follower.GetPolicy(id); err != nil {
			rep.LostOnFollower = append(rep.LostOnFollower, id)
		}
	}
	rep.WritesAcked = len(acked)
	return rep, nil
}
