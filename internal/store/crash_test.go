package store_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"umac/internal/loadgen"
	"umac/internal/store"
)

// Crash-consistency suite: spawn cmd/storehammer (concurrent fsynced
// writers over a small-segment WAL), SIGKILL it at an arbitrary moment,
// and verify the three durability invariants on what is left on disk:
//
//  1. every write the process acknowledged before dying is present after
//     replay (acknowledged means the group commit fsynced it);
//  2. no torn record exists outside the final segment (sealed segments are
//     synced before the WAL rolls, so only the active tail may tear);
//  3. sequence numbers replay contiguously — the batch accounting never
//     skips or reuses a number across a crash.
//
// The same state directory is reused across kill rounds, so each round
// also exercises recovery-of-a-recovery: replay, append more, die again.
//
// On failure the WAL files are copied to $CRASH_OUT_DIR (when set) so CI
// can upload the evidence.

// ackedWrites parses complete "ACK <key>" lines from the hammer's output.
// A final line without a newline was torn mid-write by the kill and its
// key may be truncated, so it is discarded — losing a report only weakens
// coverage, it can never fake one.
func ackedWrites(out []byte) []string {
	s := string(out)
	if !strings.HasSuffix(s, "\n") {
		if i := strings.LastIndexByte(s, '\n'); i >= 0 {
			s = s[:i+1]
		} else {
			s = ""
		}
	}
	var keys []string
	for _, line := range strings.Split(s, "\n") {
		if key, ok := strings.CutPrefix(line, "ACK "); ok {
			keys = append(keys, key)
		}
	}
	return keys
}

func TestCrashConsistencyUnderKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills real processes")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	dir := t.TempDir()
	bin, err := loadgen.Build(ctx, dir, "umac/cmd/storehammer")
	if err != nil {
		t.Fatal(err)
	}
	state := filepath.Join(dir, "state.json")
	const segSize = 16 << 10

	t.Cleanup(func() {
		if t.Failed() {
			preserveWAL(t, state)
		}
	})

	acked := make(map[string]bool)
	killDelays := []time.Duration{
		35 * time.Millisecond, 80 * time.Millisecond,
		140 * time.Millisecond, 220 * time.Millisecond,
	}
	for round, delay := range killDelays {
		out := runAndKill(t, ctx, bin, state, delay)
		keys := ackedWrites(out)
		t.Logf("round %d: %d acked writes before kill", round, len(keys))
		for _, k := range keys {
			acked[k] = true
		}

		// Audit the raw post-crash files BEFORE any repairing open: a torn
		// tail is legal only in the final segment (VerifyWAL fails on a
		// corrupt sealed segment) and sequence numbers must be contiguous.
		info, err := store.VerifyWAL(state + ".wal")
		if err != nil {
			t.Fatalf("round %d: WAL audit after kill: %v", round, err)
		}
		if !info.Contiguous {
			t.Fatalf("round %d: sequence numbers not contiguous: %+v", round, info)
		}
		if info.TornBytes > 0 {
			t.Logf("round %d: torn tail of %d bytes in final segment (legal)", round, info.TornBytes)
		}

		// Replay and check every acknowledged write (from all rounds so
		// far) survived.
		st, err := store.Open(state, store.WithFsync(), store.WithWALSegmentSize(segSize))
		if err != nil {
			t.Fatalf("round %d: reopen after kill: %v", round, err)
		}
		missing := 0
		for key := range acked {
			var v string
			if _, err := st.Get("hammer", key, &v); err != nil {
				missing++
				if missing <= 5 {
					t.Errorf("round %d: acknowledged write %q lost: %v", round, key, err)
				}
			}
		}
		if missing > 0 {
			t.Fatalf("round %d: %d acknowledged writes lost after replay", round, missing)
		}
		if info.Segments < 1 {
			t.Fatalf("round %d: no WAL segments on disk", round)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
	}
	if len(acked) == 0 {
		t.Fatal("no writes were ever acknowledged; the hammer never got going")
	}
}

// runAndKill spawns the hammer, waits for READY plus delay, SIGKILLs it
// and returns everything it wrote to stdout.
func runAndKill(t *testing.T, ctx context.Context, bin, state string, delay time.Duration) []byte {
	t.Helper()
	cmd := exec.CommandContext(ctx, bin,
		"-state", state, "-writers", "8", "-segsize", fmt.Sprint(16<<10))
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	buf := &lockedBuffer{}
	copied := make(chan struct{})
	go func() {
		defer close(copied)
		io.Copy(buf, stdout)
	}()

	// Wait for the store to finish replaying (READY) before arming the
	// kill, polling the buffer the copier goroutine fills.
	deadline := time.Now().Add(15 * time.Second)
	for {
		if bytes.Contains(buf.snapshot(), []byte("READY\n")) {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("hammer never reported READY")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(delay)
	cmd.Process.Kill()
	cmd.Wait()
	<-copied
	return buf.snapshot()
}

// lockedBuffer lets the copier goroutine append while the test polls.
type lockedBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuffer) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuffer) snapshot() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.b.Bytes()...)
}

// preserveWAL copies the state file and every WAL segment to
// $CRASH_OUT_DIR for CI artifact upload.
func preserveWAL(t *testing.T, state string) {
	outDir := os.Getenv("CRASH_OUT_DIR")
	if outDir == "" {
		return
	}
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Logf("preserve: %v", err)
		return
	}
	matches, _ := filepath.Glob(state + "*")
	for _, src := range matches {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Logf("preserve %s: %v", src, err)
			continue
		}
		dst := filepath.Join(outDir, filepath.Base(src))
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			t.Logf("preserve %s: %v", dst, err)
			continue
		}
		t.Logf("preserved %s", dst)
	}
}
