package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead log is a flat sequence of length-prefixed, checksummed
// records:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// The payload is the JSON encoding of walRecord. Appends are a single
// write(2) call, so the only possible failure mode on a hard kill is a torn
// record at the tail — which the checksum (or a short read) detects, and
// replay discards by truncating the file back to the last good record.

// Operations recorded in the log.
const (
	opPut    = "put"
	opDelete = "del"
)

// walRecord is one logged mutation. Seq is the global replication sequence
// number (see replication.go); logs written before sequence numbering carry
// Seq 0 and are renumbered on replay.
type walRecord struct {
	Seq     int64           `json:"seq,omitempty"`
	Op      string          `json:"op"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Version int64           `json:"version,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
}

const walHeaderSize = 8

// wal is an open write-ahead log. All methods are called with the store's
// walMu held.
type wal struct {
	f      *os.File
	path   string
	fsync  bool
	size   int64
	closed bool
}

// openWAL opens (creating if needed) the log at path, replays every intact
// record, and truncates any torn or corrupt tail so the file ends on a
// record boundary ready for appends.
func openWAL(path string, fsync bool) (*wal, []walRecord, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: open wal: %w", err)
	}
	records, good, err := replay(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	// Discard the tail past the last intact record (torn write from a
	// previous crash) and position for appends.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: wal truncate tail: %w", err)
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: wal seek: %w", err)
	}
	return &wal{f: f, path: path, fsync: fsync, size: good}, records, nil
}

// replay scans the log from the start, returning every intact record and
// the offset just past the last one. Corruption (bad checksum, short read,
// undecodable payload) ends the scan rather than failing the open: records
// past a corrupt one were never acknowledged.
func replay(f *os.File) ([]walRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("store: wal seek: %w", err)
	}
	var (
		records []walRecord
		good    int64
		header  [walHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, good, nil
			}
			return nil, 0, fmt.Errorf("store: wal read: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, good, nil
			}
			return nil, 0, fmt.Errorf("store: wal read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, good, nil
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, good, nil
		}
		records = append(records, rec)
		good += walHeaderSize + int64(length)
	}
}

// append durably logs one record.
func (w *wal) append(rec walRecord) error {
	if w.closed {
		return ErrClosed
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("store: wal encode: %w", err)
	}
	buf := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	if _, err := w.f.Write(buf); err != nil {
		// A partial write (ENOSPC) would leave torn bytes that make every
		// LATER acknowledged record unreachable at replay. Rewind to the
		// last record boundary; if even that fails, poison the log so
		// writes fail loudly instead of silently losing durability.
		if w.f.Truncate(w.size) != nil {
			w.closed = true
		} else if _, serr := w.f.Seek(w.size, io.SeekStart); serr != nil {
			w.closed = true
		}
		return fmt.Errorf("store: wal append: %w", err)
	}
	if w.fsync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	w.size += int64(len(buf))
	return nil
}

// reset empties the log after a snapshot has captured its contents.
func (w *wal) reset() error {
	if w.closed {
		return ErrClosed
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("store: wal reset: %w", err)
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal reset seek: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: wal reset sync: %w", err)
	}
	w.size = 0
	return nil
}

// close syncs and closes the file. Idempotent.
func (w *wal) close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return fmt.Errorf("store: wal close sync: %w", err)
	}
	return w.f.Close()
}
