package am

import (
	"fmt"
	"log"
	"net/http"

	"umac/internal/core"
	"umac/internal/rebalance"
	"umac/internal/webutil"
)

// This file embeds the rebalance coordinator (internal/rebalance) into a
// sharded primary: the /v1/rebalance admin surface (start, progress,
// abort — replication-secret bearer auth like the other cluster admin
// routes), the broker adapter turning coordinator lifecycle signals into
// replication-type events on /v1/events, and the startup auto-resume that
// makes a SIGKILLed coordinator continue its checkpointed plan when the
// process comes back.

// setupRebalance embeds a coordinator on sharded primaries and resumes
// any unfinished checkpointed plan. Followers and unsharded nodes get no
// coordinator: the /v1/rebalance routes answer not_found there.
func (a *AM) setupRebalance() {
	if !a.sharded() || a.replCfg.Role == RoleFollower || a.replCfg.Secret == "" {
		return
	}
	a.rebal = rebalance.New(rebalance.Config{
		Store:  a.store,
		Secret: a.replCfg.Secret,
		Notify: a.publishRebalanceSignal,
		Logf: func(format string, args ...any) {
			log.Printf("[%s] %s", a.name, fmt.Sprintf(format, args...))
		},
	})
	if st, resumed, err := a.rebal.Resume(); err != nil {
		log.Printf("[%s] rebalance: resume failed: %v", a.name, err)
	} else if resumed {
		log.Printf("[%s] rebalance: resumed plan %s (%d/%d moves done)", a.name, st.ID, st.Done, st.Total)
	}
}

// publishRebalanceSignal adapts coordinator lifecycle notifications onto
// the event broker: replication-type events (so ?types=replication
// subscriptions see the rebalance progress) carrying the progress
// snapshot and, for move signals, the owner that just moved.
func (a *AM) publishRebalanceSignal(signal string, owner core.UserID, st core.RebalanceStatus) {
	snapshot := st
	a.broker.Publish(core.Event{
		Type:      core.EventReplication,
		Signal:    signal,
		Owner:     owner,
		Rebalance: &snapshot,
	})
}

// Rebalancer exposes the embedded coordinator (nil on followers and
// unsharded nodes) for in-process drivers: sims and tests.
func (a *AM) Rebalancer() *rebalance.Coordinator { return a.rebal }

// handleRebalanceStart serves POST /v1/rebalance: plan and start a
// rebalance toward the requested target ring. Re-POSTing the target of
// the unfinished checkpointed plan resumes it; a different target while
// one is unfinished answers conflict (abort it first).
func (a *AM) handleRebalanceStart(w http.ResponseWriter, r *http.Request) {
	if a.rebal == nil {
		webutil.FailCode(w, r, core.CodeNotFound, "am: %s hosts no rebalance coordinator", a.name)
		return
	}
	var req core.RebalanceRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	if req.Target.Version <= 0 {
		req.Target.Version = a.ring().Version() + 1
	}
	// Resume path: the checkpointed plan for this same target, unfinished.
	planID := fmt.Sprintf("ring-v%d", req.Target.Version)
	if st := a.rebal.Status(); st.ID == planID &&
		(st.State == core.RebalanceRunning || st.State == core.RebalanceFailed) {
		st, _, err := a.rebal.Resume()
		if err != nil {
			webutil.Fail(w, r, err)
			return
		}
		webutil.WriteJSON(w, http.StatusAccepted, st)
		return
	}
	if req.Target.Version < a.ring().Version() {
		webutil.FailCode(w, r, core.CodeConflict,
			"am: target ring v%d is older than the installed v%d", req.Target.Version, a.ring().Version())
		return
	}
	owners, err := rebalance.GatherOwners(a.ring().Shards(), a.replCfg.Secret, nil)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	plan, err := rebalance.BuildPlan(req, owners)
	if err != nil {
		failOp(w, r, core.CodeBadRequest, err)
		return
	}
	st, err := a.rebal.Start(plan)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusAccepted, st)
}

// handleRebalanceStatus serves GET /v1/rebalance: the coordinator's
// progress snapshot (not_found before any plan ever ran here).
func (a *AM) handleRebalanceStatus(w http.ResponseWriter, r *http.Request) {
	if a.rebal == nil {
		webutil.FailCode(w, r, core.CodeNotFound, "am: %s hosts no rebalance coordinator", a.name)
		return
	}
	st := a.rebal.Status()
	if st.State == "" {
		webutil.FailCode(w, r, core.CodeNotFound, "am: no rebalance plan on %s", a.name)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, st)
}

// handleRebalanceAbort serves DELETE /v1/rebalance: stop at the next
// move boundary, leaving every unfinished owner wholly on its source.
func (a *AM) handleRebalanceAbort(w http.ResponseWriter, r *http.Request) {
	if a.rebal == nil {
		webutil.FailCode(w, r, core.CodeNotFound, "am: %s hosts no rebalance coordinator", a.name)
		return
	}
	st, err := a.rebal.Abort()
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, st)
}
