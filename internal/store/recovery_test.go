package store

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openDurable opens a WAL-backed store rooted in a temp dir and returns the
// snapshot path alongside it.
func openDurable(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "state.json")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s, path
}

// activeSegment returns the path of the highest-numbered WAL segment for
// the store rooted at path — the file a torn or corrupt tail lives in.
func activeSegment(t *testing.T, path string) string {
	t.Helper()
	segs, err := listSegments(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatalf("no WAL segments under %s.wal", path)
	}
	return segs[len(segs)-1].path
}

// TestWALReplayRestoresAcknowledgedWrites is the core durability contract:
// a store abandoned without any Snapshot (a hard kill) loses nothing that
// Put or Delete acknowledged.
func TestWALReplayRestoresAcknowledgedWrites(t *testing.T) {
	s, path := openDurable(t)
	if !s.Durable() {
		t.Fatal("Open did not attach a WAL")
	}
	for i := 0; i < 20; i++ {
		if _, err := s.Put("doc", fmt.Sprintf("k%02d", i), doc{Name: "n", Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite one (version must survive too) and delete another.
	if _, err := s.Put("doc", "k03", doc{Name: "updated", Count: 103}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("doc", "k07"); err != nil {
		t.Fatal(err)
	}
	// No Snapshot, no Close: the process dies here.

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count("doc"); got != 19 {
		t.Fatalf("Count after replay = %d, want 19", got)
	}
	var d doc
	e, err := s2.Get("doc", "k03", &d)
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "updated" || d.Count != 103 {
		t.Fatalf("k03 after replay = %+v", d)
	}
	if e.Version != 2 {
		t.Fatalf("k03 version after replay = %d, want 2", e.Version)
	}
	if s2.Exists("doc", "k07") {
		t.Fatal("deleted entity resurrected by replay")
	}
}

// TestWALTruncatedTailDiscarded simulates a write torn mid-record by the
// crash: the partial record is dropped, every record before it survives,
// and the store accepts new writes afterwards.
func TestWALTruncatedTailDiscarded(t *testing.T) {
	s, path := openDurable(t)
	for i := 0; i < 10; i++ {
		if _, err := s.Put("doc", fmt.Sprintf("k%d", i), doc{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := activeSegment(t, path)
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	// Chop into the middle of the final record.
	if err := os.Truncate(walPath, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count("doc"); got != 9 {
		t.Fatalf("Count after torn tail = %d, want 9", got)
	}
	if s2.Exists("doc", "k9") {
		t.Fatal("torn record partially applied")
	}
	// The log is usable again: a write after recovery survives a reopen.
	if _, err := s2.Put("doc", "post-crash", doc{Count: 99}); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Exists("doc", "post-crash") || s3.Count("doc") != 10 {
		t.Fatalf("post-recovery write lost; count = %d", s3.Count("doc"))
	}
}

// TestWALCorruptTailDiscarded flips a byte in the last record's payload:
// the checksum catches it and replay keeps everything before it.
func TestWALCorruptTailDiscarded(t *testing.T) {
	s, path := openDurable(t)
	for i := 0; i < 5; i++ {
		if _, err := s.Put("doc", fmt.Sprintf("k%d", i), doc{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	walPath := activeSegment(t, path)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count("doc"); got != 4 {
		t.Fatalf("Count after corrupt tail = %d, want 4", got)
	}
	if s2.Exists("doc", "k4") {
		t.Fatal("corrupt record applied")
	}
}

// TestSnapshotCompactsWAL: Snapshot to the opened path is the compaction
// point — the log empties, and a reopen sees snapshotted state plus any
// writes logged after the snapshot.
func TestSnapshotCompactsWAL(t *testing.T) {
	s, path := openDurable(t)
	for i := 0; i < 8; i++ {
		if _, err := s.Put("doc", fmt.Sprintf("k%d", i), doc{Count: i}); err != nil {
			t.Fatal(err)
		}
	}
	if s.WALSize() == 0 {
		t.Fatal("WAL empty before snapshot")
	}
	if err := s.Snapshot(path); err != nil {
		t.Fatal(err)
	}
	if got := s.WALSize(); got != 0 {
		t.Fatalf("WALSize after snapshot = %d, want 0", got)
	}
	// Post-snapshot writes land in the fresh log.
	if _, err := s.Put("doc", "after", doc{Count: 100}); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Count("doc"); got != 9 {
		t.Fatalf("Count after compact+reopen = %d, want 9", got)
	}
	if !s2.Exists("doc", "after") {
		t.Fatal("post-snapshot write lost")
	}
}

// TestSnapshotElsewhereDoesNotCompact: snapshotting to a side path (a
// backup) must not truncate the log that protects the primary path.
func TestSnapshotElsewhereDoesNotCompact(t *testing.T) {
	s, path := openDurable(t)
	if _, err := s.Put("doc", "a", doc{Count: 1}); err != nil {
		t.Fatal(err)
	}
	backup := filepath.Join(filepath.Dir(path), "backup.json")
	if err := s.Snapshot(backup); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() == 0 {
		t.Fatal("side snapshot truncated the primary WAL")
	}
}

// TestOpenWithoutWAL preserves the pre-WAL contract for callers that want
// explicit-snapshot-only persistence.
func TestOpenWithoutWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "state.json")
	s, err := Open(path, WithoutWAL())
	if err != nil {
		t.Fatal(err)
	}
	if s.Durable() {
		t.Fatal("WithoutWAL store reports durable")
	}
	if _, err := s.Put("doc", "a", doc{Count: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".wal"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("WAL file created despite WithoutWAL: %v", err)
	}
	if segs, err := listSegments(path + ".wal"); err != nil || len(segs) != 0 {
		t.Fatalf("WAL segments created despite WithoutWAL: %v %v", segs, err)
	}
}

// TestClosedStoreRejectsWrites: writes after Close fail loudly instead of
// silently losing durability; reads keep working.
func TestClosedStoreRejectsWrites(t *testing.T) {
	s, _ := openDurable(t)
	if _, err := s.Put("doc", "a", doc{Count: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Put("doc", "b", doc{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put after Close: %v, want ErrClosed", err)
	}
	if err := s.Delete("doc", "a"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete after Close: %v, want ErrClosed", err)
	}
	var d doc
	if _, err := s.Get("doc", "a", &d); err != nil || d.Count != 1 {
		t.Fatalf("read after Close: d=%+v err=%v", d, err)
	}
}

// TestDurableConcurrentWriters drives writers across shards (run under
// -race) and verifies the replayed image matches exactly what was
// acknowledged.
func TestDurableConcurrentWriters(t *testing.T) {
	s, path := openDurable(t)
	const workers, perWorker = 8, 40
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i)
				if _, err := s.Put("doc", key, doc{Count: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	// Contended counter through Update exercises PutIfVersion's WAL path.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				var cur doc
				if _, err := s.Update("doc", "ctr", &cur, func(bool) (any, error) {
					cur.Count++
					return cur, nil
				}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Count("doc"), workers*perWorker+1; got != want {
		t.Fatalf("Count after replay = %d, want %d", got, want)
	}
	var ctr doc
	if _, err := s2.Get("doc", "ctr", &ctr); err != nil || ctr.Count != 4*perWorker {
		t.Fatalf("ctr after replay = %+v err=%v, want %d", ctr, err, 4*perWorker)
	}
}

// TestSnapshotConcurrentWithWriters compacts while writers are running:
// every acknowledged write must be in snapshot ∪ log at reopen.
func TestSnapshotConcurrentWithWriters(t *testing.T) {
	s, path := openDurable(t)
	const workers, perWorker = 4, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := s.Put("doc", fmt.Sprintf("w%d-k%d", w, i), doc{Count: i}); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 5; i++ {
		if err := s.Snapshot(path); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := s2.Count("doc"), workers*perWorker; got != want {
		t.Fatalf("Count after concurrent snapshots = %d, want %d", got, want)
	}
}

// TestWithWALPathAndFsync covers the remaining options: an explicit WAL
// location and fsync-per-append both recover correctly.
func TestWithWALPathAndFsync(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.json")
	walPath := filepath.Join(dir, "side.wal")
	s, err := Open(path, WithWALPath(walPath), WithFsync())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put("doc", "a", doc{Count: 7}); err != nil {
		t.Fatal(err)
	}
	if segs, err := listSegments(walPath); err != nil || len(segs) == 0 {
		t.Fatalf("explicit WAL path not used: %v %v", segs, err)
	}
	s2, err := Open(path, WithWALPath(walPath))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var d doc
	if _, err := s2.Get("doc", "a", &d); err != nil || d.Count != 7 {
		t.Fatalf("d=%+v err=%v", d, err)
	}
}
