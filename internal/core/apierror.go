package core

import (
	"errors"
	"fmt"
)

// This file defines the structured error envelope of the versioned AM API.
// Every AM error response carries one APIError rendered as an
// application/problem+json-style body: a stable machine-readable code the
// PEP/Requester retry logic can branch on, the HTTP status, a human
// message, a retryable hint, and the request ID for cross-log correlation.
// The code registry below is part of the wire contract (docs/PROTOCOL.md):
// codes are only ever added, never renamed or removed.

// API error codes. Stable: clients may compare against these strings.
const (
	// CodeBadRequest: malformed body, unknown fields, invalid parameters.
	CodeBadRequest = "bad_request"
	// CodeUnauthenticated: a session-authenticated route was called without
	// (or with an invalid) user session.
	CodeUnauthenticated = "unauthenticated"
	// CodeSignatureInvalid: a signed Host route was called unsigned, with a
	// bad signature, an unknown/revoked pairing, or excessive clock skew.
	CodeSignatureInvalid = "signature_invalid"
	// CodeSignatureReplay: the signature nonce was already seen; re-sign
	// with a fresh nonce and retry.
	CodeSignatureReplay = "signature_replay"
	// CodeTokenInvalid: the authorization token is malformed, forged or
	// expired.
	CodeTokenInvalid = "token_invalid"
	// CodeTokenScope: a valid token was used outside the (requester, realm)
	// it is bound to.
	CodeTokenScope = "token_scope"
	// CodeAccessDenied: the policy decision is deny.
	CodeAccessDenied = "access_denied"
	// CodeForbidden: the authenticated actor lacks management rights over
	// the targeted owner's state.
	CodeForbidden = "forbidden"
	// CodeNotPaired: no (valid) pairing with the calling Host.
	CodeNotPaired = "not_paired"
	// CodeUnknownRealm: the named realm is not protected by this AM.
	CodeUnknownRealm = "unknown_realm"
	// CodeNotFound: any other missing entity (policy, ticket, link).
	CodeNotFound = "not_found"
	// CodeConflict: the request conflicts with current server state — a
	// stale ring version push, or a rebalance started while a different
	// unfinished plan is checkpointed. Resolve the conflict (refresh the
	// ring; resume or abort the existing plan) before retrying.
	CodeConflict = "conflict"
	// CodePairingCodeInvalid: the one-time pairing code is unknown, expired,
	// consumed, or presented by the wrong Host.
	CodePairingCodeInvalid = "pairing_code_invalid"
	// CodeInternal: the handler panicked or hit an unexpected fault; the
	// request may be retried.
	CodeInternal = "internal"
	// CodeUnavailable: the AM is draining (readiness probe); retry against
	// another instance.
	CodeUnavailable = "unavailable"
	// CodeNotPrimary: a write was sent to a read-only follower; retry
	// against the primary (the Leader field carries its base URL when the
	// follower knows it).
	CodeNotPrimary = "not_primary"
	// CodeWALTruncated: the requested replication offset predates the
	// primary's retained WAL window (compaction or buffer overflow); the
	// follower must re-bootstrap from GET /v1/replication/snapshot.
	CodeWALTruncated = "wal_truncated"
	// CodeWrongShard: the request targets a resource owner that a
	// different shard of the cluster owns; retry against the shard named
	// in the Shard hint (its primary base URL) after refreshing the ring
	// from GET /v1/cluster.
	CodeWrongShard = "wrong_shard"
	// CodeRateLimited: the caller exhausted its per-tenant token-bucket
	// budget (pairing, session or remote-IP tier). Retry after the delay
	// named by the Retry-After header / RetryAfterSeconds field; hammering
	// sooner only refills the 429 counter.
	CodeRateLimited = "rate_limited"
	// CodeRequestTooLarge: the request body exceeds the server's size cap.
	// Not retryable — the same payload will be rejected again.
	CodeRequestTooLarge = "request_too_large"
	// CodeUnknown is used client-side for error responses that carry no
	// machine-readable code (pre-v1 servers, proxies).
	CodeUnknown = "unknown"
)

// codeInfo is the registry backing NewAPIError: default status, retryable
// hint, and the sentinel error the code unwraps to (nil if none).
var codeInfo = map[string]struct {
	status    int
	retryable bool
	sentinel  error
}{
	CodeBadRequest:         {400, false, nil},
	CodeUnauthenticated:    {401, false, nil},
	CodeSignatureInvalid:   {401, false, nil},
	CodeSignatureReplay:    {409, true, nil},
	CodeTokenInvalid:       {401, false, ErrTokenInvalid},
	CodeTokenScope:         {401, false, ErrTokenScope},
	CodeAccessDenied:       {403, false, ErrAccessDenied},
	CodeForbidden:          {403, false, nil},
	CodeNotPaired:          {404, false, ErrNotPaired},
	CodeUnknownRealm:       {404, false, ErrUnknownRealm},
	CodeNotFound:           {404, false, nil},
	CodeConflict:           {409, false, nil},
	CodePairingCodeInvalid: {403, false, nil},
	CodeInternal:           {500, true, ErrInternalFault},
	CodeUnavailable:        {503, true, nil},
	CodeNotPrimary:         {421, true, nil},
	CodeWALTruncated:       {410, false, nil},
	CodeWrongShard:         {421, true, nil},
	CodeRateLimited:        {429, true, nil},
	CodeRequestTooLarge:    {413, false, nil},
	CodeUnknown:            {500, false, nil},
}

// APIError is the structured error envelope of the v1 AM API.
type APIError struct {
	// Code is the stable machine-readable error class (registry above).
	Code string `json:"code"`
	// Status is the HTTP status the error was (or should be) served with.
	Status int `json:"status"`
	// Message is the human-auditable explanation.
	Message string `json:"message"`
	// Retryable hints that the identical request may succeed if retried
	// (fresh nonce, transient fault, another instance).
	Retryable bool `json:"retryable"`
	// RequestID correlates the response with the AM's logs and metrics.
	RequestID string `json:"request_id,omitempty"`
	// Leader is the primary's base URL on not_primary errors: the endpoint
	// a client should retry the write against. Best-effort — a follower
	// that has lost its primary may leave it empty.
	Leader string `json:"leader,omitempty"`
	// Shard is the owning shard's primary base URL on wrong_shard errors:
	// the endpoint a client should chase (exactly once) after refreshing
	// its ring. Best-effort — empty when the answering node cannot name
	// the owner's shard.
	Shard string `json:"shard,omitempty"`
	// RetryAfterSeconds is the server's backoff hint on rate_limited
	// errors: how long (in whole seconds, rounded up) until the caller's
	// token bucket can cover the rejected request. Mirrored in the
	// Retry-After response header.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
}

// Error implements error. Responses without a machine-readable code
// (pre-v1 servers) fall back to the HTTP status as the classifier.
func (e *APIError) Error() string {
	if e.Code == "" || e.Code == CodeUnknown {
		return fmt.Sprintf("status %d: %s", e.Status, e.Message)
	}
	return e.Message + " [" + e.Code + "]"
}

// Unwrap maps the wire code back to the protocol sentinel, so
// errors.Is(err, core.ErrAccessDenied) keeps working across an HTTP hop.
func (e *APIError) Unwrap() error {
	if info, ok := codeInfo[e.Code]; ok {
		return info.sentinel
	}
	return nil
}

// NewAPIError builds an APIError for a registered code; status and
// retryable come from the registry. Unregistered codes get status 500.
func NewAPIError(code, message string) *APIError {
	info, ok := codeInfo[code]
	if !ok {
		info.status = 500
	}
	return &APIError{Code: code, Status: info.status, Message: message, Retryable: info.retryable}
}

// APIErrorf is NewAPIError with formatting.
func APIErrorf(code, format string, args ...any) *APIError {
	return NewAPIError(code, fmt.Sprintf(format, args...))
}

// APIErrorFor classifies an arbitrary error: an *APIError passes through,
// protocol sentinels map to their codes, anything else is bad_request —
// the default the pre-v1 surface used, because the unmatched population
// is overwhelmingly validation errors ("am: protect requires a realm").
// Server-side faults that deserve internal/503 must be raised as explicit
// APIError values (or new sentinels) at the site that knows the cause.
func APIErrorFor(err error) *APIError {
	var ae *APIError
	if errors.As(err, &ae) {
		return ae
	}
	code := CodeBadRequest
	switch {
	case errors.Is(err, ErrInternalFault):
		code = CodeInternal
	case errors.Is(err, ErrAccessDenied):
		code = CodeAccessDenied
	case errors.Is(err, ErrTokenInvalid):
		code = CodeTokenInvalid
	case errors.Is(err, ErrTokenScope):
		code = CodeTokenScope
	case errors.Is(err, ErrUnknownRealm):
		code = CodeUnknownRealm
	case errors.Is(err, ErrNotPaired):
		code = CodeNotPaired
	}
	return NewAPIError(code, err.Error())
}
