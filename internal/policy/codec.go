package policy

import (
	"encoding/json"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// This file implements the export/import formats of Section VI: "these
// policies can be exported from and imported into the datastore via a
// RESTful interface in JSON or XML formats."

// Format names a serialization format.
type Format string

// Supported formats.
const (
	FormatJSON Format = "json"
	FormatXML  Format = "xml"
)

// ParseFormat accepts "json" or "xml" (case-insensitive) and content types
// like "application/json".
func ParseFormat(s string) (Format, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	switch {
	case s == "json" || strings.Contains(s, "application/json"):
		return FormatJSON, nil
	case s == "xml" || strings.Contains(s, "application/xml") || strings.Contains(s, "text/xml"):
		return FormatXML, nil
	default:
		return "", fmt.Errorf("policy: unsupported format %q", s)
	}
}

// ContentType returns the MIME type for the format.
func (f Format) ContentType() string {
	if f == FormatXML {
		return "application/xml"
	}
	return "application/json"
}

// policySetXML wraps a policy list for XML round-trips.
type policySetXML struct {
	XMLName  xml.Name `xml:"policies"`
	Policies []Policy `xml:"policy"`
}

// Export writes the policies to w in the given format.
func Export(w io.Writer, policies []Policy, f Format) error {
	switch f {
	case FormatJSON:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(policies); err != nil {
			return fmt.Errorf("policy: export json: %w", err)
		}
		return nil
	case FormatXML:
		if _, err := io.WriteString(w, xml.Header); err != nil {
			return fmt.Errorf("policy: export xml: %w", err)
		}
		enc := xml.NewEncoder(w)
		enc.Indent("", "  ")
		if err := enc.Encode(policySetXML{Policies: policies}); err != nil {
			return fmt.Errorf("policy: export xml: %w", err)
		}
		return nil
	default:
		return fmt.Errorf("policy: unsupported export format %q", f)
	}
}

// Import reads a policy set from r in the given format and validates every
// policy.
func Import(r io.Reader, f Format) ([]Policy, error) {
	var policies []Policy
	switch f {
	case FormatJSON:
		if err := json.NewDecoder(r).Decode(&policies); err != nil {
			return nil, fmt.Errorf("policy: import json: %w", err)
		}
	case FormatXML:
		var set policySetXML
		if err := xml.NewDecoder(r).Decode(&set); err != nil {
			return nil, fmt.Errorf("policy: import xml: %w", err)
		}
		policies = set.Policies
	default:
		return nil, fmt.Errorf("policy: unsupported import format %q", f)
	}
	for i := range policies {
		if err := policies[i].Validate(); err != nil {
			return nil, fmt.Errorf("policy: import: entry %d: %w", i, err)
		}
	}
	return policies, nil
}
