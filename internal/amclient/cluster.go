package amclient

import (
	"errors"
	"fmt"
	"net/url"
	"strconv"
	"sync"

	"umac/internal/audit"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/policy"
)

// This file is the shard-aware side of the client: ClusterClient learns
// the owner ring from GET /v1/cluster and routes every call to the shard
// owning the call's resource owner, chasing a wrong_shard hint exactly
// once (with a ring refresh in between) when the local ring turns out to
// be stale — e.g. mid live-migration. Each shard is served by an ordinary
// Client configured with the shard's full endpoint list, so the existing
// multi-endpoint failover (connection errors, not_primary leader hints,
// draining nodes) composes underneath the shard routing rather than being
// replaced by it.

// --- Plain-client cluster and migration calls ---

// ClusterInfo fetches the node's view of the cluster ring
// (GET /v1/cluster). Unsharded nodes answer not_found.
func (c *Client) ClusterInfo() (core.ClusterInfo, error) {
	var info core.ClusterInfo
	err := c.get("/cluster", nil, &info)
	return info, err
}

// SetOwnerShard pins owner to the named shard on the receiving shard
// group (PUT /v1/cluster/owners/{owner}) — the migration cutover flip.
// Requires Config.ReplSecret.
func (c *Client) SetOwnerShard(owner core.UserID, shard string) error {
	return c.do("PUT", "/cluster/owners/"+url.PathEscape(string(owner)), nil,
		core.OwnerOverrideRequest{Shard: shard}, nil)
}

// ClusterImport installs records captured from another shard as local
// writes (POST /v1/cluster/import). Requires Config.ReplSecret.
func (c *Client) ClusterImport(records []core.ReplRecord) (int, error) {
	var resp core.ClusterImportResponse
	err := c.do("POST", "/cluster/import", nil, core.ClusterImportRequest{Records: records}, &resp)
	return resp.Applied, err
}

// ReplicationSnapshotScoped fetches the owner-scoped bootstrap image
// (GET /v1/replication/snapshot?owner=): the first leg of a live owner
// migration. Requires Config.ReplSecret.
func (c *Client) ReplicationSnapshotScoped(owner core.UserID) (core.ReplSnapshot, error) {
	var snap core.ReplSnapshot
	err := c.get("/replication/snapshot", url.Values{"owner": {string(owner)}}, &snap)
	return snap, err
}

// ReplicationTailScoped fetches one page of the owner-scoped WAL tail
// after from (GET /v1/replication/wal?owner=&from=). The page's LastSeq is
// the offset the scan advanced through; resume from it. Requires
// Config.ReplSecret.
func (c *Client) ReplicationTailScoped(owner core.UserID, from int64, max int) (core.ReplWALPage, error) {
	q := url.Values{
		"owner": {string(owner)},
		"from":  {strconv.FormatInt(from, 10)},
	}
	if max > 0 {
		q.Set("max", strconv.Itoa(max))
	}
	var page core.ReplWALPage
	err := c.get("/replication/wal", q, &page)
	return page, err
}

// ClearOwnerShard removes owner's shard override on the receiving shard
// group (DELETE /v1/cluster/owners/{owner}) — the cleanup step once the
// hash ring itself maps the owner where the override pointed. Clearing an
// absent override succeeds (idempotent). Requires Config.ReplSecret.
func (c *Client) ClearOwnerShard(owner core.UserID) error {
	return c.do("DELETE", "/cluster/owners/"+url.PathEscape(string(owner)), nil, nil, nil)
}

// UpdateRing pushes a versioned ring state to the node
// (PUT /v1/cluster/ring). The node installs and persists it when the
// version exceeds the state in force, answers idempotently for the same
// version, and rejects older versions with conflict. Requires
// Config.ReplSecret.
func (c *Client) UpdateRing(st core.RingState) (core.ClusterInfo, error) {
	var info core.ClusterInfo
	err := c.do("PUT", "/cluster/ring", nil, st, &info)
	return info, err
}

// OwnerStats fetches the shard's per-owner load (GET /v1/cluster/owners):
// the record counts the rebalance planner weighs moves by. Requires
// Config.ReplSecret.
func (c *Client) OwnerStats() (core.OwnerStatsResponse, error) {
	var resp core.OwnerStatsResponse
	err := c.get("/cluster/owners", nil, &resp)
	return resp, err
}

// RebalanceStart asks the node to coordinate a rebalance onto the target
// ring (POST /v1/rebalance). Re-posting the same target resumes an
// unfinished plan; a different target while one is unfinished answers
// conflict. Requires Config.ReplSecret.
func (c *Client) RebalanceStart(req core.RebalanceRequest) (core.RebalanceStatus, error) {
	var st core.RebalanceStatus
	err := c.do("POST", "/rebalance", nil, req, &st)
	return st, err
}

// RebalanceStatus fetches the coordinator's checkpointed progress
// (GET /v1/rebalance). Requires Config.ReplSecret.
func (c *Client) RebalanceStatus() (core.RebalanceStatus, error) {
	var st core.RebalanceStatus
	err := c.get("/rebalance", nil, &st)
	return st, err
}

// RebalanceAbort asks the coordinator to stop at the next move boundary
// (DELETE /v1/rebalance), leaving every owner wholly on exactly one shard.
// Requires Config.ReplSecret.
func (c *Client) RebalanceAbort() (core.RebalanceStatus, error) {
	var st core.RebalanceStatus
	err := c.do("DELETE", "/rebalance", nil, nil, &st)
	return st, err
}

// --- ClusterClient ---

// ClusterClient is a shard-aware AM client: it holds one Client per shard
// and routes each call by the resource owner it concerns.
type ClusterClient struct {
	cfg Config

	mu        sync.RWMutex
	ring      *cluster.Ring
	overrides map[string]string // owner → shard name
	clients   map[string]*Client
}

// NewCluster builds a shard-aware client: cfg's BaseURL/Endpoints seed the
// initial GET /v1/cluster fetch, and the remaining fields (credentials,
// user identity, HTTP client) template every per-shard client.
func NewCluster(cfg Config) (*ClusterClient, error) {
	info, err := New(cfg).ClusterInfo()
	if err != nil {
		return nil, fmt.Errorf("amclient: learn cluster ring: %w", err)
	}
	cc := &ClusterClient{cfg: cfg}
	if err := cc.install(info); err != nil {
		return nil, err
	}
	return cc, nil
}

// Install replaces the routing state with the given ClusterInfo — the
// push-side alternative to Refresh for a caller that already holds a
// fresher topology (a streamed replication event, a rebalance driver).
func (cc *ClusterClient) Install(info core.ClusterInfo) error {
	return cc.install(info)
}

// install replaces the routing state with a freshly fetched ClusterInfo.
// Draining shards keep their clients (pinned owners still live there mid-
// rebalance) but own no hash points, so fresh placements avoid them.
func (cc *ClusterClient) install(info core.ClusterInfo) error {
	ring, err := cluster.NewState(core.RingState{
		Version:  info.RingVersion,
		Vnodes:   info.Vnodes,
		Shards:   info.Shards,
		Draining: info.Draining,
	})
	if err != nil {
		return fmt.Errorf("amclient: bad cluster ring: %w", err)
	}
	clients := make(map[string]*Client, len(info.Shards))
	for _, s := range info.Shards {
		endpoints := s.Endpoints
		if len(endpoints) == 0 && s.Primary != "" {
			endpoints = []string{s.Primary}
		}
		if len(endpoints) == 0 {
			// A shard with no usable endpoints stays unroutable; For
			// reports it per owner instead of failing the whole install.
			continue
		}
		scfg := cc.cfg
		scfg.BaseURL = endpoints[0]
		scfg.Endpoints = endpoints[1:]
		clients[s.Name] = New(scfg)
	}
	cc.mu.Lock()
	cc.ring = ring
	cc.overrides = info.Overrides
	cc.clients = clients
	cc.mu.Unlock()
	return nil
}

// Refresh refetches the ring from any currently known shard endpoint.
func (cc *ClusterClient) Refresh() error {
	cc.mu.RLock()
	clients := make([]*Client, 0, len(cc.clients))
	for _, c := range cc.clients {
		clients = append(clients, c)
	}
	cc.mu.RUnlock()
	var lastErr error = errors.New("amclient: no cluster endpoints known")
	for _, c := range clients {
		info, err := c.ClusterInfo()
		if err == nil {
			return cc.install(info)
		}
		lastErr = err
	}
	return lastErr
}

// refreshFrom refetches the ring from an explicit endpoint (the shard a
// wrong_shard hint named — it just answered, so it is alive), falling
// back to Refresh when the fetch fails.
func (cc *ClusterClient) refreshFrom(endpoint string) error {
	if endpoint == "" {
		return cc.Refresh()
	}
	scfg := cc.cfg
	scfg.BaseURL = endpoint
	scfg.Endpoints = nil
	info, err := New(scfg).ClusterInfo()
	if err != nil {
		return cc.Refresh()
	}
	return cc.install(info)
}

// shardNameFor resolves the shard name owning owner under the current
// ring + overrides.
func (cc *ClusterClient) shardNameFor(owner core.UserID) string {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	if name, ok := cc.overrides[string(owner)]; ok {
		if _, known := cc.ring.Shard(name); known {
			return name
		}
	}
	return cc.ring.Owner(owner).Name
}

// For returns the Client of the shard owning owner.
func (cc *ClusterClient) For(owner core.UserID) (*Client, error) {
	name := cc.shardNameFor(owner)
	cc.mu.RLock()
	c := cc.clients[name]
	cc.mu.RUnlock()
	if c == nil {
		return nil, fmt.Errorf("amclient: owner %s maps to shard %q which has no usable endpoints", owner, name)
	}
	return c, nil
}

// wrongShard extracts a wrong_shard APIError, nil for anything else.
func wrongShard(err error) *core.APIError {
	var ae *core.APIError
	if errors.As(err, &ae) && ae.Code == core.CodeWrongShard {
		return ae
	}
	return nil
}

// Do runs fn against the owner's shard. A wrong_shard answer — the local
// ring is stale, typically mid-migration — triggers one ring refresh
// (from the hinted shard) and exactly one retry against the owner's
// re-resolved shard; a second wrong_shard is returned as-is, so two
// shards disclaiming the same owner cannot bounce a call forever.
func (cc *ClusterClient) Do(owner core.UserID, fn func(*Client) error) error {
	c, err := cc.For(owner)
	if err != nil {
		return err
	}
	err = fn(c)
	ae := wrongShard(err)
	if ae == nil {
		return err
	}
	if rerr := cc.refreshFrom(ae.Shard); rerr != nil {
		return err
	}
	c2, err2 := cc.For(owner)
	if err2 != nil {
		return err2
	}
	return fn(c2)
}

// Info returns the cluster view the client currently routes by. Both the
// shard list and the override map are copies: mutating them (tests stage
// topologies that way) must not corrupt the live routing state.
func (cc *ClusterClient) Info() core.ClusterInfo {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	info := core.ClusterInfo{
		RingVersion: cc.ring.Version(),
		Vnodes:      cc.ring.Vnodes(),
		Shards:      cc.ring.Shards(),
		Draining:    cc.ring.Draining(),
	}
	if len(cc.overrides) > 0 {
		info.Overrides = make(map[string]string, len(cc.overrides))
		for k, v := range cc.overrides {
			info.Overrides[k] = v
		}
	}
	return info
}

// --- Owner-routed call wrappers ---
// Each wrapper names the owner whose shard must serve the call; the
// owner-less protocol identities (requester, host) ride along unchanged.

// Decide routes one signed decision query by the resource owner.
func (cc *ClusterClient) Decide(owner core.UserID, q core.DecisionQuery) (core.DecisionResponse, error) {
	var resp core.DecisionResponse
	err := cc.Do(owner, func(c *Client) error {
		var e error
		resp, e = c.Decide(q)
		return e
	})
	return resp, err
}

// DecideBatch routes one signed batched decision query by the resource
// owner.
func (cc *ClusterClient) DecideBatch(owner core.UserID, q core.BatchDecisionQuery) (core.BatchDecisionResponse, error) {
	var resp core.BatchDecisionResponse
	err := cc.Do(owner, func(c *Client) error {
		var e error
		resp, e = c.DecideBatch(q)
		return e
	})
	return resp, err
}

// RequestToken routes a token request by the realm owner.
func (cc *ClusterClient) RequestToken(owner core.UserID, req core.TokenRequest) (core.TokenResponse, error) {
	var resp core.TokenResponse
	err := cc.Do(owner, func(c *Client) error {
		var e error
		resp, e = c.RequestToken(req)
		return e
	})
	return resp, err
}

// ExchangePairingCode routes the Fig. 3 code exchange by the pairing
// owner.
func (cc *ClusterClient) ExchangePairingCode(owner core.UserID, code string, host core.HostID) (core.PairingResponse, error) {
	var resp core.PairingResponse
	err := cc.Do(owner, func(c *Client) error {
		var e error
		resp, e = c.ExchangePairingCode(code, host)
		return e
	})
	return resp, err
}

// Protect routes a signed realm registration by the resource owner.
func (cc *ClusterClient) Protect(owner core.UserID, req core.ProtectRequest) (core.ProtectResponse, error) {
	var resp core.ProtectResponse
	err := cc.Do(owner, func(c *Client) error {
		var e error
		resp, e = c.Protect(req)
		return e
	})
	return resp, err
}

// CreatePolicy routes a policy create by the policy's owner.
func (cc *ClusterClient) CreatePolicy(p policy.Policy) (policy.Policy, error) {
	var created policy.Policy
	err := cc.Do(p.Owner, func(c *Client) error {
		var e error
		created, e = c.CreatePolicy(p)
		return e
	})
	return created, err
}

// GetPolicy routes a policy fetch by its owner.
func (cc *ClusterClient) GetPolicy(owner core.UserID, id core.PolicyID) (policy.Policy, error) {
	var p policy.Policy
	err := cc.Do(owner, func(c *Client) error {
		var e error
		p, e = c.GetPolicy(id)
		return e
	})
	return p, err
}

// LinkGeneral routes a realm-policy link by its owner.
func (cc *ClusterClient) LinkGeneral(owner core.UserID, realm core.RealmID, pid core.PolicyID) error {
	return cc.Do(owner, func(c *Client) error { return c.LinkGeneral(owner, realm, pid) })
}

// AddGroupMember routes a group mutation by its owner.
func (cc *ClusterClient) AddGroupMember(owner core.UserID, group string, user core.UserID) ([]core.UserID, error) {
	var members []core.UserID
	err := cc.Do(owner, func(c *Client) error {
		var e error
		members, e = c.AddGroupMember(owner, group, user)
		return e
	})
	return members, err
}

// ConfirmPairing routes the Fig. 3 user-consent leg by the approving
// owner (the acting user), returning the one-time code.
func (cc *ClusterClient) ConfirmPairing(owner core.UserID, host core.HostID) (string, error) {
	var code string
	err := cc.Do(owner, func(c *Client) error {
		var e error
		code, e = c.ConfirmPairing(host)
		return e
	})
	return code, err
}

// RevokePairing routes a pairing revocation by the pairing's owner.
func (cc *ClusterClient) RevokePairing(owner core.UserID, id string) error {
	return cc.Do(owner, func(c *Client) error { return c.RevokePairing(id) })
}

// Pairings routes a pairing listing by its owner.
func (cc *ClusterClient) Pairings(owner core.UserID, page Page) ([]core.PairingInfo, error) {
	var out []core.PairingInfo
	err := cc.Do(owner, func(c *Client) error {
		var e error
		out, e = c.Pairings(owner, page)
		return e
	})
	return out, err
}

// AddCustodian routes a custodian appointment by the appointing owner
// (only the owner themselves may appoint, so the acting user must be
// owner).
func (cc *ClusterClient) AddCustodian(owner, custodian core.UserID) ([]core.UserID, error) {
	var out []core.UserID
	err := cc.Do(owner, func(c *Client) error {
		var e error
		out, e = c.AddCustodian(custodian)
		return e
	})
	return out, err
}

// AuditPage routes one page of owner's consolidated audit view (with its
// pagination frame) to the owner's home shard — audit locality follows
// decision locality in a sharded cluster.
func (cc *ClusterClient) AuditPage(owner core.UserID, f AuditFilter, page Page) ([]audit.Event, PageFrame, error) {
	var out []audit.Event
	frame := PageFrame{NextOffset: -1}
	err := cc.Do(owner, func(c *Client) error {
		var e error
		out, frame, e = c.AuditPage(f, page)
		return e
	})
	return out, frame, err
}
