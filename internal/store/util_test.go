package store

import "os"

// writeAll is a test helper writing content to path.
func writeAll(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o600)
}
