// Package storage implements the first prototype Host of Section VI: "an
// online file system accessible over a Web browser where users can upload
// arbitrary files and create an arbitrary directory structure."
//
// Each user owns a file tree. The first path segment of every file is its
// realm ("/travel/beach.jpg" lives in realm "travel"), so protecting a
// top-level directory at the AM protects everything under it — the
// "albums/collections/folders" grouping of the paper's scenario.
//
// The application has built-in access control (a localacl.Matrix) and can
// delegate per-owner to an Authorization Manager through its pep.Enforcer —
// the mode switch of Section VI ("Users, however, can configure both
// applications to delegate access control to our prototype Authorization
// Manager").
package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"umac/internal/core"
)

// FS errors.
var (
	// ErrNotFound: no file or directory at the path.
	ErrNotFound = errors.New("storage: not found")
	// ErrIsDirectory: file operation on a directory.
	ErrIsDirectory = errors.New("storage: is a directory")
	// ErrNotDirectory: directory operation on a file.
	ErrNotDirectory = errors.New("storage: not a directory")
	// ErrBadPath: empty or malformed path.
	ErrBadPath = errors.New("storage: bad path")
)

// node is a file or directory in the tree.
type node struct {
	name     string
	dir      bool
	content  []byte
	children map[string]*node
}

// FS is one user's file tree. The zero value is an empty tree ready to use.
type FS struct {
	mu   sync.RWMutex
	root *node
}

// splitPath normalizes "/a/b/c" into segments, rejecting empties and dot
// segments.
func splitPath(path string) ([]string, error) {
	path = strings.Trim(path, "/")
	if path == "" {
		return nil, nil // the root
	}
	segs := strings.Split(path, "/")
	for _, s := range segs {
		if s == "" || s == "." || s == ".." {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	return segs, nil
}

func (f *FS) rootLocked() *node {
	if f.root == nil {
		f.root = &node{dir: true, children: make(map[string]*node)}
	}
	return f.root
}

// Put writes a file at path, creating parent directories as needed. It
// fails if any ancestor exists as a file, or the path names a directory.
func (f *FS) Put(path string, content []byte) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("%w: cannot write the root", ErrBadPath)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.rootLocked()
	for _, seg := range segs[:len(segs)-1] {
		next, ok := cur.children[seg]
		if !ok {
			next = &node{name: seg, dir: true, children: make(map[string]*node)}
			cur.children[seg] = next
		}
		if !next.dir {
			return fmt.Errorf("%w: %s", ErrNotDirectory, seg)
		}
		cur = next
	}
	leaf := segs[len(segs)-1]
	if existing, ok := cur.children[leaf]; ok && existing.dir {
		return fmt.Errorf("%w: %s", ErrIsDirectory, path)
	}
	cur.children[leaf] = &node{name: leaf, content: append([]byte(nil), content...)}
	return nil
}

// Mkdir creates a directory (and parents) at path.
func (f *FS) Mkdir(path string) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	cur := f.rootLocked()
	for _, seg := range segs {
		next, ok := cur.children[seg]
		if !ok {
			next = &node{name: seg, dir: true, children: make(map[string]*node)}
			cur.children[seg] = next
		}
		if !next.dir {
			return fmt.Errorf("%w: %s", ErrNotDirectory, seg)
		}
		cur = next
	}
	return nil
}

// lookup walks to a node; the caller holds at least a read lock.
func (f *FS) lookup(segs []string) (*node, error) {
	cur := f.root
	if cur == nil {
		if len(segs) == 0 {
			return &node{dir: true}, nil
		}
		return nil, fmt.Errorf("%w: /%s", ErrNotFound, strings.Join(segs, "/"))
	}
	for _, seg := range segs {
		if !cur.dir {
			return nil, fmt.Errorf("%w: %s", ErrNotDirectory, seg)
		}
		next, ok := cur.children[seg]
		if !ok {
			return nil, fmt.Errorf("%w: /%s", ErrNotFound, strings.Join(segs, "/"))
		}
		cur = next
	}
	return cur, nil
}

// Get reads a file's content.
func (f *FS) Get(path string) ([]byte, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(segs)
	if err != nil {
		return nil, err
	}
	if n.dir {
		return nil, fmt.Errorf("%w: %s", ErrIsDirectory, path)
	}
	return append([]byte(nil), n.content...), nil
}

// Entry describes a directory member.
type Entry struct {
	Name string `json:"name"`
	Dir  bool   `json:"dir"`
	Size int    `json:"size"`
}

// List returns a directory's entries sorted by name.
func (f *FS) List(path string) ([]Entry, error) {
	segs, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(segs)
	if err != nil {
		return nil, err
	}
	if !n.dir {
		return nil, fmt.Errorf("%w: %s", ErrNotDirectory, path)
	}
	out := make([]Entry, 0, len(n.children))
	for _, c := range n.children {
		out = append(out, Entry{Name: c.name, Dir: c.dir, Size: len(c.content)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// Delete removes a file or an entire directory subtree.
func (f *FS) Delete(path string) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return fmt.Errorf("%w: cannot delete the root", ErrBadPath)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	parent, err := f.lookup(segs[:len(segs)-1])
	if err != nil {
		return err
	}
	leaf := segs[len(segs)-1]
	if _, ok := parent.children[leaf]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, path)
	}
	delete(parent.children, leaf)
	return nil
}

// Exists reports whether a file or directory exists at path.
func (f *FS) Exists(path string) bool {
	segs, err := splitPath(path)
	if err != nil {
		return false
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	_, err = f.lookup(segs)
	return err == nil
}

// Walk calls fn for every file (not directory) under path, with its full
// path. Iteration order is deterministic (sorted).
func (f *FS) Walk(path string, fn func(path string, size int)) error {
	segs, err := splitPath(path)
	if err != nil {
		return err
	}
	f.mu.RLock()
	defer f.mu.RUnlock()
	n, err := f.lookup(segs)
	if err != nil {
		return err
	}
	prefix := "/" + strings.Join(segs, "/")
	if len(segs) == 0 {
		prefix = ""
	}
	walk(n, prefix, fn)
	return nil
}

func walk(n *node, prefix string, fn func(path string, size int)) {
	if !n.dir {
		fn(prefix, len(n.content))
		return
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		walk(n.children[name], prefix+"/"+name, fn)
	}
}

// RealmOf returns the realm a path belongs to: its first segment.
func RealmOf(path string) (core.RealmID, error) {
	segs, err := splitPath(path)
	if err != nil {
		return "", err
	}
	if len(segs) == 0 {
		return "", fmt.Errorf("%w: the root has no realm", ErrBadPath)
	}
	return core.RealmID(segs[0]), nil
}
