package am

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"umac/internal/audit"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/store"
	"umac/internal/webutil"
)

// This file is the multi-primary cluster side of the AM: a consistent-hash
// ring partitions the decision space by resource owner, each shard being
// one PR-4 replication group (primary + followers). Every owner-scoped
// mutating and decision route checks ownership and answers the structured
// wrong_shard error (421, retryable, with the owning shard's primary URL
// as the hint) when the owner hashes elsewhere — the sharded sibling of
// the follower's not_primary gate. Live migration flips ownership per
// owner via store-persisted overrides, which replicate to the shard's
// followers like any other state, and streams the owner's closure between
// shards over the owner-scoped replication surface plus the import route
// below.

// ClusterConfig configures an AM node's membership in a sharded cluster.
// The zero value is an unsharded node: no ownership checks, no cluster
// surface beyond GET /v1/cluster reporting the absence of a cluster.
type ClusterConfig struct {
	// Shard names the shard this node belongs to. It must match one of the
	// ring's shard names.
	Shard string
	// Ring is the cluster-wide owner ring the node boots with; every node
	// and client of the deployment must be built from the same shard list.
	// It is only the seed: a persisted ring state (installed by a
	// rebalance via PUT /v1/cluster/ring) with a higher version supersedes
	// it at startup and at runtime.
	Ring *cluster.Ring
}

// enabled reports whether the node participates in a sharded cluster.
func (c ClusterConfig) enabled() bool { return c.Ring != nil && c.Shard != "" }

// kindShardOverride is the store kind pinning an owner to a shard by name,
// irrespective of the hash ring: the live-migration cutover state. Keyed
// by owner; the value is the shard name. Being ordinary store state it
// travels the WAL, so a shard's followers enforce the same overrides as
// its primary.
const kindShardOverride = "shard-override"

// kindClusterRing is the store kind persisting the installed ring state
// (core.RingState) under clusterRingKey. Being ordinary store state it
// survives a SIGKILL through the WAL and replicates to the shard's
// followers, so the whole replication group routes by the same ring after
// a rebalance — and after a crash.
const kindClusterRing = "cluster-ring"

// clusterRingKey is the fixed key of the installed ring state.
const clusterRingKey = "current"

// sharded reports whether ownership gating is active on this node.
func (a *AM) sharded() bool { return a.ringPtr.Load() != nil && a.clusterCfg.Shard != "" }

// ring returns the ring currently in force (nil on an unsharded node).
// The pointer is swapped atomically by ring installs; readers must not
// cache it across requests.
func (a *AM) ring() *cluster.Ring { return a.ringPtr.Load() }

// restoreRing installs the persisted ring state when it is newer than the
// ring currently in force — the crash-recovery path (New) and the
// follower bootstrap path (the snapshot may carry a newer ring record).
func (a *AM) restoreRing() {
	cur := a.ringPtr.Load()
	if cur == nil {
		return // unsharded: a persisted ring without shard membership is meaningless
	}
	var st core.RingState
	if _, err := a.store.Get(kindClusterRing, clusterRingKey, &st); err != nil {
		return
	}
	if st.Version <= cur.Version() {
		return
	}
	if ring, err := cluster.NewState(st); err == nil {
		a.ringPtr.Store(ring)
	}
}

// installRingRecord applies a replicated or imported cluster-ring record:
// the follower-side mirror of UpdateRing. Older versions are skipped
// (snapshot-then-tail replays may present them transiently).
func (a *AM) installRingRecord(rec core.ReplRecord) {
	if rec.Op != core.ReplOpPut || rec.Key != clusterRingKey {
		return
	}
	cur := a.ringPtr.Load()
	if cur == nil {
		return
	}
	var st core.RingState
	if json.Unmarshal(rec.Data, &st) != nil || st.Version <= cur.Version() {
		return
	}
	if ring, err := cluster.NewState(st); err == nil {
		a.ringPtr.Store(ring)
	}
}

// UpdateRing installs a new ring state: the rebalance coordinator's
// topology push. Version discipline makes it idempotent and
// monotonic — a higher version persists and takes effect atomically, the
// current version is acknowledged without change, an older one answers
// conflict. The node's own shard may be absent from the new state (the
// final ring of its own drain), after which it disclaims every owner.
// The install write-locks the migration barrier, so no gated mutation
// straddles the routing flip.
func (a *AM) UpdateRing(st core.RingState) (core.ClusterInfo, error) {
	if !a.sharded() {
		return core.ClusterInfo{}, core.APIErrorf(core.CodeNotFound,
			"am: %s is not part of a sharded cluster", a.name)
	}
	cur := a.ring()
	if st.Version < cur.Version() {
		return core.ClusterInfo{}, core.APIErrorf(core.CodeConflict,
			"am: ring v%d is older than the installed v%d", st.Version, cur.Version())
	}
	if st.Version == cur.Version() {
		return a.ClusterInfo()
	}
	ring, err := cluster.NewState(st)
	if err != nil {
		return core.ClusterInfo{}, core.APIErrorf(core.CodeBadRequest, "am: %v", err)
	}
	a.migMu.Lock()
	_, err = a.store.Put(kindClusterRing, clusterRingKey, st)
	if err == nil {
		a.ringPtr.Store(ring)
	}
	a.migMu.Unlock()
	if err != nil {
		return core.ClusterInfo{}, err
	}
	a.audit.Append(audit.Event{
		Type:   audit.EventOwnerMigrated,
		Detail: fmt.Sprintf("ring v%d installed (%d shards, %d draining)", st.Version, len(st.Shards), len(st.Draining)),
	})
	return a.ClusterInfo()
}

// ShardName returns the name of the shard this node belongs to ("" when
// unsharded).
func (a *AM) ShardName() string { return a.clusterCfg.Shard }

// shardOf resolves the shard owning owner: a store-persisted override when
// one names a known shard, the hash ring otherwise. ok is false on an
// unsharded node.
func (a *AM) shardOf(owner core.UserID) (core.ShardInfo, bool) {
	if !a.sharded() {
		return core.ShardInfo{}, false
	}
	ring := a.ring()
	var name string
	if _, err := a.store.Get(kindShardOverride, string(owner), &name); err == nil {
		if s, ok := ring.Shard(name); ok {
			return s, true
		}
	}
	return ring.Owner(owner), true
}

// gateOwner guards an owner-scoped MUTATING operation: it checks shard
// ownership with the migration barrier read-held and returns a release
// the caller defers across the whole mutation. SetOwnerShard write-locks
// the same barrier, so an ownership flip waits for every in-flight gated
// mutation to commit (WAL append included) and no gated mutation can
// start once the flip is in — which is what makes the migration drain's
// "the gate is closed, nothing more can arrive" a real fence instead of
// a race against writers that passed the check but had not appended yet.
// Decision (read-only) paths use checkShard directly; they append
// nothing a drain could miss.
func (a *AM) gateOwner(owner core.UserID) (func(), error) {
	if !a.sharded() {
		return func() {}, nil
	}
	a.migMu.RLock()
	if err := a.checkShard(owner); err != nil {
		a.migMu.RUnlock()
		return nil, err
	}
	return a.migMu.RUnlock, nil
}

// checkShard guards an owner-scoped mutating or decision path: nil when
// this node's shard owns the owner (or the node is unsharded, or the owner
// is unknown), otherwise the structured wrong_shard error carrying the
// owning shard's primary URL as the hint a client chases once.
func (a *AM) checkShard(owner core.UserID) error {
	if owner == "" {
		return nil
	}
	s, ok := a.shardOf(owner)
	if !ok || s.Name == a.clusterCfg.Shard {
		return nil
	}
	e := core.APIErrorf(core.CodeWrongShard,
		"am: owner %s belongs to shard %s, not %s", owner, s.Name, a.clusterCfg.Shard)
	e.Shard = s.Primary
	return e
}

// ClusterInfo reports the node's view of the cluster: ring membership,
// this node's shard, and the owner overrides currently in force.
func (a *AM) ClusterInfo() (core.ClusterInfo, error) {
	if !a.sharded() {
		return core.ClusterInfo{}, core.APIErrorf(core.CodeNotFound,
			"am: %s is not part of a sharded cluster", a.name)
	}
	ring := a.ring()
	info := core.ClusterInfo{
		Shard:       a.clusterCfg.Shard,
		RingVersion: ring.Version(),
		Vnodes:      ring.Vnodes(),
		Shards:      ring.Shards(),
		Draining:    ring.Draining(),
	}
	for _, e := range a.store.List(kindShardOverride) {
		var name string
		if e.Decode(&name) == nil {
			if info.Overrides == nil {
				info.Overrides = make(map[string]string)
			}
			info.Overrides[e.Key] = name
		}
	}
	return info, nil
}

// SetOwnerShard pins owner to the named shard (the migration cutover
// flip). On the losing shard this makes every subsequent owner-scoped
// request answer wrong_shard with the new shard as the hint; on the
// gaining shard it makes the node accept an owner its hash ring would
// otherwise place elsewhere. The override is ordinary replicated state.
func (a *AM) SetOwnerShard(owner core.UserID, shard string) error {
	if !a.sharded() {
		return core.APIErrorf(core.CodeNotFound, "am: %s is not part of a sharded cluster", a.name)
	}
	if owner == "" {
		return core.APIErrorf(core.CodeBadRequest, "am: owner required")
	}
	if _, ok := a.ring().Shard(shard); !ok {
		return core.APIErrorf(core.CodeBadRequest, "am: unknown shard %q", shard)
	}
	// Write-lock the migration barrier: every in-flight gated mutation
	// commits before the flip lands, and none can start past it — see
	// gateOwner.
	a.migMu.Lock()
	_, err := a.store.Put(kindShardOverride, string(owner), shard)
	a.migMu.Unlock()
	if err != nil {
		return err
	}
	a.audit.Append(audit.Event{
		Type: audit.EventOwnerMigrated, Owner: owner, Detail: "owner pinned to shard " + shard,
	})
	return nil
}

// ClearOwnerShard removes an owner's shard override, so the hash ring
// alone places the owner again — the rebalance coordinator's cleanup once
// the pushed ring agrees with the migrated placement. Clearing an absent
// override is a no-op: the call is idempotent under coordinator retries.
func (a *AM) ClearOwnerShard(owner core.UserID) error {
	if !a.sharded() {
		return core.APIErrorf(core.CodeNotFound, "am: %s is not part of a sharded cluster", a.name)
	}
	if owner == "" {
		return core.APIErrorf(core.CodeBadRequest, "am: owner required")
	}
	a.migMu.Lock()
	err := a.store.Delete(kindShardOverride, string(owner))
	a.migMu.Unlock()
	if errors.Is(err, store.ErrNotFound) {
		return nil
	}
	if err != nil {
		return err
	}
	a.audit.Append(audit.Event{
		Type: audit.EventOwnerMigrated, Owner: owner, Detail: "owner shard override cleared",
	})
	return nil
}

// --- Per-shard load accounting (the rebalance planner's input) ---

// ownerOf classifies a store entity to the owner whose closure it belongs
// to — the forward direction of replOwnerKeep's predicate, sharing its
// kind-by-kind ownership encoding. Ownerless entities (system state,
// grants predating the cluster) report ok=false. It runs under store
// locks and must not call back into the store.
func ownerOf(e store.Entity) (core.UserID, bool) {
	switch e.Kind {
	case kindLinkGen, kindLinkSpec, kindGroup:
		owner, _, ok := strings.Cut(e.Key, "/")
		return core.UserID(owner), ok
	case kindCustodian, kindShardOverride:
		return core.UserID(e.Key), true
	case kindPairing, kindRealm, kindPolicy, kindGrant:
		var doc ownerDoc
		if json.Unmarshal(e.Data, &doc) != nil {
			return "", false
		}
		if e.Kind == kindPairing {
			return doc.User, doc.User != ""
		}
		return doc.Owner, doc.Owner != ""
	}
	return "", false
}

// OwnerStats reports the owners this shard effectively owns (ring
// placement plus overrides) with their record counts — the per-shard load
// data the rebalance planner diffs against the target ring, and the
// source of the /v1/metrics cluster gauges. Owners whose records linger
// locally but who are owned elsewhere (migrated-away leftovers) are
// excluded: planning from them would re-move owners that already moved.
// Override records count toward their owner, so a just-migrated owner
// with no data yet still appears on its new shard.
func (a *AM) OwnerStats() (core.OwnerStatsResponse, error) {
	if !a.sharded() {
		return core.OwnerStatsResponse{}, core.APIErrorf(core.CodeNotFound,
			"am: %s is not part of a sharded cluster", a.name)
	}
	counts := a.store.OwnerStats(func(e store.Entity) (string, bool) {
		owner, ok := ownerOf(e)
		return string(owner), ok
	})
	resp := core.OwnerStatsResponse{
		Shard:       a.clusterCfg.Shard,
		RingVersion: a.ring().Version(),
	}
	for owner, n := range counts {
		if s, ok := a.shardOf(core.UserID(owner)); ok && s.Name == a.clusterCfg.Shard {
			resp.Owners = append(resp.Owners, core.OwnerLoad{Owner: core.UserID(owner), Records: n})
		}
	}
	sort.Slice(resp.Owners, func(i, j int) bool { return resp.Owners[i].Owner < resp.Owners[j].Owner })
	return resp, nil
}

// ClusterHealth condenses OwnerStats into the /v1/metrics gauge set (nil
// on an unsharded node).
func (a *AM) ClusterHealth() *core.ClusterHealth {
	stats, err := a.OwnerStats()
	if err != nil {
		return nil
	}
	h := &core.ClusterHealth{Shard: stats.Shard, RingVersion: stats.RingVersion, Owners: len(stats.Owners)}
	for _, o := range stats.Owners {
		h.OwnerRecords += o.Records
		if o.Records > h.MaxOwnerRecords {
			h.MaxOwnerRecords = o.Records
		}
	}
	return h
}

// --- Owner-closure filtering (the migration stream) ---

// ownerDoc is the minimal decoding of an owner-carrying record payload.
type ownerDoc struct {
	Owner core.UserID `json:"owner"`
	User  core.UserID `json:"user"`
}

// replOwnerKeep is the record predicate of the owner-scoped replication
// surface: it accepts exactly the records of owner's closure. Ownership is
// read from the key for owner-prefixed kinds and from the payload for
// ID-keyed kinds. Delete records of ID-keyed kinds carry no payload, so
// they are always kept: IDs are globally unique, which makes replaying a
// foreign delete on the target a no-op. The predicate never calls back
// into the store (it runs under store locks).
func replOwnerKeep(owner core.UserID) func(core.ReplRecord) bool {
	prefix := string(owner) + "/"
	return func(rec core.ReplRecord) bool {
		switch rec.Kind {
		case kindLinkGen, kindLinkSpec, kindGroup:
			return strings.HasPrefix(rec.Key, prefix)
		case kindCustodian, kindShardOverride:
			return rec.Key == string(owner)
		case kindPairing, kindRealm, kindPolicy, kindGrant:
			if rec.Op == core.ReplOpDelete {
				return true
			}
			var doc ownerDoc
			if json.Unmarshal(rec.Data, &doc) != nil {
				return false
			}
			if rec.Kind == kindPairing {
				return doc.User == owner
			}
			return doc.Owner == owner
		}
		return false
	}
}

// --- HTTP surface ---

// handleClusterInfo serves GET /v1/cluster: the ring clients build their
// owner routing from. Unauthenticated, like the other topology probes.
func (a *AM) handleClusterInfo(w http.ResponseWriter, r *http.Request) {
	info, err := a.ClusterInfo()
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, info)
}

// handleOwnerOverride serves PUT /v1/cluster/owners/{owner}: the
// migration cutover flip, authenticated by the replication secret.
func (a *AM) handleOwnerOverride(w http.ResponseWriter, r *http.Request) {
	var req core.OwnerOverrideRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	owner := core.UserID(r.PathValue("owner"))
	if err := a.SetOwnerShard(owner, req.Shard); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{string(owner): req.Shard})
}

// handleOwnerOverrideClear serves DELETE /v1/cluster/owners/{owner}: the
// rebalance coordinator's pin cleanup, authenticated by the replication
// secret. Idempotent.
func (a *AM) handleOwnerOverrideClear(w http.ResponseWriter, r *http.Request) {
	owner := core.UserID(r.PathValue("owner"))
	if err := a.ClearOwnerShard(owner); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleOwnerStats serves GET /v1/cluster/owners: the shard's effective
// owner list with record counts, authenticated by the replication secret
// (it enumerates every owner the shard serves).
func (a *AM) handleOwnerStats(w http.ResponseWriter, r *http.Request) {
	stats, err := a.OwnerStats()
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, stats)
}

// handleRingUpdate serves PUT /v1/cluster/ring: the rebalance
// coordinator's topology push, authenticated by the replication secret.
// Idempotent and monotonic by ring version.
func (a *AM) handleRingUpdate(w http.ResponseWriter, r *http.Request) {
	var st core.RingState
	if err := webutil.ReadJSON(r, &st); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	info, err := a.UpdateRing(st)
	if err != nil {
		webutil.Fail(w, r, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, info)
}

// handleClusterImport serves POST /v1/cluster/import: records captured
// from another shard's owner-scoped snapshot or WAL tail, installed as
// ordinary local writes (re-sequenced into this primary's WAL, so they
// replicate onward to its followers). Applying a batch twice is safe:
// puts overwrite with identical payloads and deletes of absent keys are
// skipped.
func (a *AM) handleClusterImport(w http.ResponseWriter, r *http.Request) {
	var req core.ClusterImportRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.Fail(w, r, err)
		return
	}
	applied := 0
	for _, rec := range req.Records {
		if err := a.applyImported(rec); err != nil {
			webutil.Fail(w, r, err)
			return
		}
		applied++
	}
	webutil.WriteJSON(w, http.StatusOK, core.ClusterImportResponse{Applied: applied})
}

// applyImported installs one migrated record as a local write, keeping the
// in-memory group directory in sync for group records.
func (a *AM) applyImported(rec core.ReplRecord) error {
	if rec.Kind == "" || rec.Key == "" {
		return core.APIErrorf(core.CodeBadRequest, "am: import record with empty kind or key")
	}
	switch rec.Op {
	case core.ReplOpPut:
		if _, err := a.store.Put(rec.Kind, rec.Key, rec.Data); err != nil {
			return err
		}
	case core.ReplOpDelete:
		if err := a.store.Delete(rec.Kind, rec.Key); err != nil && !errors.Is(err, store.ErrNotFound) {
			return err
		}
	default:
		return core.APIErrorf(core.CodeBadRequest, "am: import record with unknown op %q", rec.Op)
	}
	if rec.Kind == kindGroup {
		a.groups.installRecord(rec)
	}
	if rec.Kind == kindClusterRing {
		a.installRingRecord(rec)
	}
	if a.index != nil {
		a.index.applyRecord(rec)
	}
	return nil
}
