package sim

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"time"

	"umac/internal/am"
	"umac/internal/amclient"
	"umac/internal/cluster"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/store"
)

// This file is the sharded-cluster workload: two shards (shard-a a durable
// primary with an in-memory follower, shard-b a durable primary) behind
// one consistent-hash ring, three owners spread across them, and a
// shard-aware client stream of writes and decisions. Mid-run one owner is
// live-migrated from shard-a to shard-b while its load keeps flowing, and
// afterwards shard-a's primary is hard-killed. The assertions are the
// cluster design's promises: zero acknowledged-write loss across both
// events, no decision served by the losing shard after cutover, and
// decision continuity throughout (the chase and the in-shard failover
// absorb the topology changes).

// clusterSecret and clusterTokenKey are the deployment-wide shared
// secrets of the workload.
const clusterSecret = "sim-cluster-secret"

var clusterTokenKey = []byte("sim-cluster-token-key-0123456789")

// ClusterReport summarizes one RunClusterWorkload execution.
type ClusterReport struct {
	// Owners maps the scenario roles to the generated owner names:
	// "stay" (shard-a resident), "move" (migrated a→b), "b" (shard-b
	// resident).
	Owners map[string]core.UserID
	// WritesAcked counts acknowledged policy writes per role, including
	// the migrated owner's writes during the migration window.
	WritesAcked map[string]int
	// DecisionsServed counts decision queries answered across all phases;
	// DecisionFailures counts ones no endpoint answered (0 in a healthy
	// run).
	DecisionsServed  int
	DecisionFailures int
	// MigrationWindowWrites counts the migrated owner's writes
	// acknowledged while the migration was in flight.
	MigrationWindowWrites int
	// Migration is the migration drill's own report.
	Migration amclient.MigrateReport
	// WrongShardAfterCutover reports whether the losing shard answered a
	// direct post-cutover decision with wrong_shard (it must).
	WrongShardAfterCutover bool
	// LostOnGainingShard lists the migrated owner's acknowledged policy
	// IDs missing from shard-b after the migration. Non-empty means the
	// zero-loss contract broke.
	LostOnGainingShard []core.PolicyID
	// DecisionsAfterKill counts decisions served after shard-a's primary
	// was killed (necessarily by its follower or by shard-b).
	DecisionsAfterKill int
	// LostAfterRecovery lists stay-owner policy IDs missing from
	// shard-a's store once reopened from its WAL.
	LostAfterRecovery []core.PolicyID
}

// clusterOwnerFor scans generated names for one hashing to the wanted
// shard (skipping any in taken).
func clusterOwnerFor(ring *cluster.Ring, shard string, taken map[core.UserID]bool) core.UserID {
	for i := 0; ; i++ {
		owner := core.UserID(fmt.Sprintf("user-%d", i))
		if !taken[owner] && ring.Owner(owner).Name == shard {
			taken[owner] = true
			return owner
		}
	}
}

// ClusterOwnerRig is one owner's protocol fixture and shard-aware
// clients in a sharded-cluster scenario. The cluster workload and the
// E16 benchmarks share it.
type ClusterOwnerRig struct {
	// Owner is the resource owner; Realm its per-owner protected realm.
	Owner core.UserID
	Realm core.RealmID
	// Pairing is the Host↔AM channel credential minted on the owner's
	// home shard; Token an authorization token for alice's reads.
	Pairing core.PairingResponse
	Token   string
	// Decider signs decision queries with the pairing credential;
	// Manager acts as the owner's session. Both route by owner.
	Decider *amclient.ClusterClient
	Manager *amclient.ClusterClient
}

// SetupClusterOwner builds pairing, realm, permit policy and token for
// owner entirely over the shard-routed HTTP surface: seed templates the
// per-shard clients (BaseURL names any cluster node; HTTPClient, timeouts
// and the rest are inherited), so the same rig drives in-process httptest
// clusters, the E16/E17 benchmarks, and the loadgen harness's real spawned
// binaries.
func SetupClusterOwner(seed amclient.Config, owner core.UserID) (*ClusterOwnerRig, error) {
	mgrCfg := seed
	mgrCfg.User = owner
	mgrCfg.PairingID, mgrCfg.Secret = "", ""
	manager, err := amclient.NewCluster(mgrCfg)
	if err != nil {
		return nil, err
	}
	code, err := manager.ConfirmPairing(owner, "webpics")
	if err != nil {
		return nil, fmt.Errorf("sim: confirm pairing for %s: %w", owner, err)
	}
	pairing, err := manager.ExchangePairingCode(owner, code, "webpics")
	if err != nil {
		return nil, fmt.Errorf("sim: exchange pairing code for %s: %w", owner, err)
	}
	decCfg := seed
	decCfg.User = ""
	decCfg.PairingID, decCfg.Secret = pairing.PairingID, pairing.Secret
	decider, err := amclient.NewCluster(decCfg)
	if err != nil {
		return nil, err
	}
	realm := core.RealmID("travel-" + string(owner))
	if _, err := decider.Protect(owner, core.ProtectRequest{Realm: realm}); err != nil {
		return nil, fmt.Errorf("sim: protect realm for %s: %w", owner, err)
	}
	pol, err := manager.CreatePolicy(policy.Policy{
		Owner: owner, Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		return nil, fmt.Errorf("sim: base policy for %s: %w", owner, err)
	}
	if err := manager.LinkGeneral(owner, realm, pol.ID); err != nil {
		return nil, fmt.Errorf("sim: link policy for %s: %w", owner, err)
	}
	tok, err := manager.RequestToken(owner, core.TokenRequest{
		Requester: "alice-browser", Subject: "alice", Host: "webpics",
		Realm: realm, Resource: "photo", Action: core.ActionRead,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: token for %s: %w", owner, err)
	}
	return &ClusterOwnerRig{
		Owner: owner, Realm: realm, Pairing: pairing, Token: tok.Token,
		Decider: decider, Manager: manager,
	}, nil
}

// Decide runs one shard-routed decision for the rig's owner, requiring
// a permit.
func (r *ClusterOwnerRig) Decide() error {
	dec, err := r.Decider.Decide(r.Owner, core.DecisionQuery{
		Host: "webpics", Realm: r.Realm, Resource: "photo",
		Action: core.ActionRead, Token: r.Token,
	})
	if err != nil {
		return err
	}
	if !dec.Permit() {
		return fmt.Errorf("sim: unexpected deny for %s: %+v", r.Owner, dec)
	}
	return nil
}

// WritePolicy creates one throwaway permit policy for the rig's owner
// (i disambiguates the rule subject) and returns the acknowledged ID.
func (r *ClusterOwnerRig) WritePolicy(i int) (core.PolicyID, error) {
	p, err := r.Manager.CreatePolicy(policy.Policy{
		Owner: r.Owner, Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: fmt.Sprintf("friend-%d", i)}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		return "", err
	}
	return p.ID, nil
}

// RunClusterWorkload drives the sharded-cluster scenario in dir (scratch
// space for the two primaries' durable state). writes is the per-owner
// write budget of the steady phases. ctx bounds every phase: cancellation
// (or a test deadline) surfaces as a phase-named error instead of a hang.
func RunClusterWorkload(ctx context.Context, dir string, writes int) (ClusterReport, error) {
	rep := ClusterReport{
		Owners:      make(map[string]core.UserID),
		WritesAcked: make(map[string]int),
	}

	// --- Topology: shard-a (primary + follower), shard-b (primary) ---
	aStore, err := store.Open(filepath.Join(dir, "shard-a.json"))
	if err != nil {
		return rep, err
	}
	bStore, err := store.Open(filepath.Join(dir, "shard-b.json"))
	if err != nil {
		return rep, err
	}

	// The ring must name the URLs before the servers know their handlers;
	// allocate servers first, wire handlers after the AMs exist.
	aPrimarySrv := httptest.NewUnstartedServer(nil)
	aFollowerSrv := httptest.NewUnstartedServer(nil)
	bPrimarySrv := httptest.NewUnstartedServer(nil)
	aPrimarySrv.Start()
	aFollowerSrv.Start()
	bPrimarySrv.Start()

	shards := []core.ShardInfo{
		{Name: "shard-a", Primary: aPrimarySrv.URL, Endpoints: []string{aPrimarySrv.URL, aFollowerSrv.URL}},
		{Name: "shard-b", Primary: bPrimarySrv.URL, Endpoints: []string{bPrimarySrv.URL}},
	}
	ring, err := cluster.New(shards, 0)
	if err != nil {
		return rep, err
	}

	aPrimary := am.New(am.Config{
		Name: "am-a", Store: aStore, TokenKey: clusterTokenKey, BaseURL: aPrimarySrv.URL,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: clusterSecret},
		Cluster:     am.ClusterConfig{Shard: "shard-a", Ring: ring},
	})
	aFollower := am.New(am.Config{
		Name: "am-a-f", TokenKey: clusterTokenKey, BaseURL: aFollowerSrv.URL,
		Replication: am.ReplicationConfig{
			Role: am.RoleFollower, Secret: clusterSecret,
			PrimaryURL: aPrimarySrv.URL, PollWait: 100 * time.Millisecond,
		},
		Cluster: am.ClusterConfig{Shard: "shard-a", Ring: ring},
	})
	bPrimary := am.New(am.Config{
		Name: "am-b", Store: bStore, TokenKey: clusterTokenKey, BaseURL: bPrimarySrv.URL,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: clusterSecret},
		Cluster:     am.ClusterConfig{Shard: "shard-b", Ring: ring},
	})
	aPrimarySrv.Config.Handler = aPrimary.Handler()
	aFollowerSrv.Config.Handler = aFollower.Handler()
	bPrimarySrv.Config.Handler = bPrimary.Handler()
	// Shard-a's primary is hard-killed mid-run on the happy path; the
	// guard keeps early error returns from leaking its server, AM loops
	// and open WAL handle.
	aPrimaryClosed := false
	closeAPrimary := func() {
		if !aPrimaryClosed {
			aPrimaryClosed = true
			aPrimarySrv.Close()
			aPrimary.Close()
			aStore.Close()
		}
	}
	defer func() {
		closeAPrimary()
		aFollowerSrv.Close()
		aFollower.Close()
		bPrimarySrv.Close()
		bPrimary.Close()
		bStore.Close()
	}()

	taken := make(map[core.UserID]bool)
	ownerStay := clusterOwnerFor(ring, "shard-a", taken)
	ownerMove := clusterOwnerFor(ring, "shard-a", taken)
	ownerB := clusterOwnerFor(ring, "shard-b", taken)
	rep.Owners["stay"], rep.Owners["move"], rep.Owners["b"] = ownerStay, ownerMove, ownerB

	rigs := make(map[string]*ClusterOwnerRig, 3)
	for role, owner := range map[string]core.UserID{
		"stay": ownerStay, "move": ownerMove, "b": ownerB,
	} {
		rig, err := SetupClusterOwner(amclient.Config{BaseURL: aPrimarySrv.URL}, owner)
		if err != nil {
			return rep, fmt.Errorf("sim: setup %s: %w", owner, err)
		}
		rigs[role] = rig
	}
	var ackedMu sync.Mutex
	acked := make(map[string][]core.PolicyID)
	ack := func(role string, id core.PolicyID) {
		ackedMu.Lock()
		acked[role] = append(acked[role], id)
		rep.WritesAcked[role]++
		ackedMu.Unlock()
	}

	// --- Phase 1: steady sharded load on all three owners ---
	half := writes / 2
	for i := 0; i < half; i++ {
		if err := checkPhase(ctx, "steady-load"); err != nil {
			return rep, err
		}
		for role, rig := range rigs {
			id, err := rig.WritePolicy(i)
			if err != nil {
				return rep, fmt.Errorf("sim: phase-1 write for %s: %w", rig.Owner, err)
			}
			ack(role, id)
			if err := rig.Decide(); err != nil {
				rep.DecisionFailures++
			} else {
				rep.DecisionsServed++
			}
		}
	}

	// --- Phase 2: live-migrate ownerMove a→b while its load keeps
	// flowing ---
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var windowWrites, windowDecisions, windowFailures int
	wg.Add(1)
	go func() {
		defer wg.Done()
		rig := rigs["move"]
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-ctx.Done():
				return
			default:
			}
			if id, err := rig.WritePolicy(10000 + i); err == nil {
				ack("move", id)
				windowWrites++
			}
			if err := rig.Decide(); err != nil {
				windowFailures++
			} else {
				windowDecisions++
			}
		}
	}()
	src := amclient.New(amclient.Config{BaseURL: aPrimarySrv.URL, ReplSecret: clusterSecret})
	dst := amclient.New(amclient.Config{BaseURL: bPrimarySrv.URL, ReplSecret: clusterSecret})
	time.Sleep(20 * time.Millisecond) // let the window load overlap the copy
	rep.Migration, err = amclient.MigrateOwner(src, dst, ownerMove, "shard-b", nil)
	if err != nil {
		return rep, fmt.Errorf("sim: migration: %w", err)
	}
	time.Sleep(20 * time.Millisecond) // post-cutover load through the chase
	close(stop)
	wg.Wait()
	rep.MigrationWindowWrites = windowWrites
	rep.DecisionsServed += windowDecisions
	rep.DecisionFailures += windowFailures

	// No decision from the losing shard after cutover: a direct (ring-
	// oblivious) signed query against shard-a must answer wrong_shard.
	direct := amclient.New(amclient.Config{
		BaseURL: aPrimarySrv.URL, PairingID: rigs["move"].Pairing.PairingID, Secret: rigs["move"].Pairing.Secret,
	})
	_, err = direct.Decide(core.DecisionQuery{
		Host: "webpics", Realm: rigs["move"].Realm, Resource: "photo",
		Action: core.ActionRead, Token: rigs["move"].Token,
	})
	var ae *core.APIError
	rep.WrongShardAfterCutover = errors.As(err, &ae) && ae.Code == core.CodeWrongShard
	if !rep.WrongShardAfterCutover {
		return rep, fmt.Errorf("sim: losing shard answered a post-cutover decision with %v", err)
	}

	// Zero-loss check: every acknowledged ownerMove policy is on shard-b.
	bReader := amclient.New(amclient.Config{BaseURL: bPrimarySrv.URL, User: ownerMove})
	ackedMu.Lock()
	moveIDs := append([]core.PolicyID(nil), acked["move"]...)
	ackedMu.Unlock()
	for _, id := range moveIDs {
		if _, err := bReader.GetPolicy(id); err != nil {
			rep.LostOnGainingShard = append(rep.LostOnGainingShard, id)
		}
	}

	// Post-migration load: everything still flows (move now on shard-b).
	for i := 0; i < half; i++ {
		if err := checkPhase(ctx, "post-migration-load"); err != nil {
			return rep, err
		}
		for role, rig := range rigs {
			id, err := rig.WritePolicy(20000 + i)
			if err != nil {
				return rep, fmt.Errorf("sim: phase-3 write for %s: %w", rig.Owner, err)
			}
			ack(role, id)
			if err := rig.Decide(); err != nil {
				rep.DecisionFailures++
			} else {
				rep.DecisionsServed++
			}
		}
	}

	// --- Phase 3: hard-kill shard-a's primary ---
	// The follower must hold everything acknowledged so far before the
	// kill demonstrates decision continuity from replicated state.
	if err := awaitReplicated(ctx, "pre-kill-catchup", aFollower, aStore.LastSeq(), 10*time.Second); err != nil {
		return rep, err
	}
	closeAPrimary()

	for i := 0; i < half; i++ {
		if err := checkPhase(ctx, "post-kill-load"); err != nil {
			return rep, err
		}
		// ownerStay decisions fail over to shard-a's follower; the other
		// owners are untouched (shard-b).
		for _, role := range []string{"stay", "move", "b"} {
			if err := rigs[role].Decide(); err != nil {
				rep.DecisionFailures++
			} else {
				rep.DecisionsServed++
				rep.DecisionsAfterKill++
			}
		}
		// Writes to the dead shard must fail, not silently ack.
		if id, err := rigs["stay"].WritePolicy(30000 + i); err == nil {
			return rep, fmt.Errorf("sim: write %s acknowledged with shard-a's primary dead", id)
		}
	}

	// --- Phase 4: recover shard-a's primary from its WAL ---
	aStore2, err := store.Open(filepath.Join(dir, "shard-a.json"))
	if err != nil {
		return rep, err
	}
	recovered := am.New(am.Config{
		Name: "am-a", Store: aStore2, TokenKey: clusterTokenKey,
		Replication: am.ReplicationConfig{Role: am.RolePrimary, Secret: clusterSecret},
		Cluster:     am.ClusterConfig{Shard: "shard-a", Ring: ring},
	})
	defer func() {
		recovered.Close()
		aStore2.Close()
	}()
	ackedMu.Lock()
	stayIDs := append([]core.PolicyID(nil), acked["stay"]...)
	ackedMu.Unlock()
	for _, id := range stayIDs {
		if _, err := recovered.GetPolicy(id); err != nil {
			rep.LostAfterRecovery = append(rep.LostAfterRecovery, id)
		}
	}
	return rep, nil
}
