package httpsig

import (
	"net/http"
	"net/url"
	"strings"
	"testing"
	"testing/quick"
)

// TestSignVerifyProperty: any (method, path, body, secret) combination
// signs and verifies, and verification fails under a different secret.
func TestSignVerifyProperty(t *testing.T) {
	methods := []string{http.MethodGet, http.MethodPost, http.MethodPut, http.MethodDelete}
	f := func(pathRaw, body, secret string, methodIdx uint8) bool {
		if secret == "" {
			return true
		}
		path := "/" + url.PathEscape(pathRaw)
		method := methods[int(methodIdx)%len(methods)]
		var rdr *strings.Reader
		if body != "" {
			rdr = strings.NewReader(body)
		} else {
			rdr = strings.NewReader("")
		}
		req, err := http.NewRequest(method, "http://am.example"+path, rdr)
		if err != nil {
			return true // unbuildable request: not our property's concern
		}
		if err := Sign(req, "pair-1", secret); err != nil {
			return false
		}
		good := NewVerifier(SecretSourceFunc(func(string) (string, bool) { return secret, true }))
		if _, err := good.Verify(req); err != nil {
			return false
		}
		// Fresh body for the second verification attempt.
		req.Body = nil
		bad := NewVerifier(SecretSourceFunc(func(string) (string, bool) { return secret + "x", true }))
		_, err = bad.Verify(req)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
