package store

// This file adds the per-owner load accounting the rebalance planner and
// the /v1/metrics cluster gauges read: one consistent whole-store pass
// that buckets every entity by the owner a caller-supplied classifier
// assigns it to. The store itself has no notion of ownership — kinds
// encode it differently (key prefixes, payload fields) — so the mapping
// stays with the caller (the AM's replication closure rules), and this
// side keeps the locking discipline: one lockAll(false) view, classifier
// must not call back into the store.

// OwnerStats walks every entity under a consistent read view and counts
// records per owner. classify maps an entity to its owner; entities it
// rejects (system state, indexes, anything ownerless) are not counted.
// The classifier runs under the store's read locks and must not call back
// into the store.
func (s *Store) OwnerStats(classify func(Entity) (owner string, ok bool)) map[string]int {
	out := make(map[string]int)
	s.lockAll(false)
	for i := range s.shards {
		for _, kind := range s.shards[i].kinds {
			for _, e := range kind {
				if owner, ok := classify(e); ok {
					out[owner]++
				}
			}
		}
	}
	s.unlockAll(false)
	return out
}
