package webutil

import (
	"math"
	"sync"
	"sync/atomic"
	"time"

	"umac/internal/core"
)

// This file is the per-tenant token-bucket rate limiter of the abuse
// layer. One RateLimiter holds several named tiers (pairing, session,
// remote IP); each tier holds one token bucket per key it has seen,
// lock-striped so concurrent tenants rarely contend on the same mutex.
// The allow path is allocation-free at steady state: an FNV-1a stripe
// pick, one map lookup and a float refill under a stripe mutex.
//
// Time is injectable (Clock) so the unit suite can prove burst, refill
// and exact-boundary behaviour deterministically.

// Clock supplies the limiter's notion of now; nil means time.Now.
type Clock func() time.Time

// rateStripes is the per-tier stripe count. Power of two so the stripe
// pick is a mask; 64 keeps cross-tenant mutex collisions rare without
// bloating an idle tier.
const rateStripes = 64

// TierConfig sizes one limiter tier.
type TierConfig struct {
	// Name labels the tier in gauges ("pairing", "session", "ip").
	Name string
	// Rate is the sustained budget in cost units per second. Tiers with
	// Rate <= 0 are not installed (unlimited).
	Rate float64
	// Burst is the bucket capacity — how much cost a quiet tenant can
	// spend at once. <= 0 defaults to 10x Rate (min 1).
	Burst float64
}

// withDefaults resolves the Burst default.
func (c TierConfig) withDefaults() TierConfig {
	if c.Burst <= 0 {
		c.Burst = 10 * c.Rate
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	return c
}

// bucket is one tenant's token bucket. Guarded by its stripe's mutex;
// throttled is additionally read under the stripe lock by Health.
type bucket struct {
	tokens    float64
	last      int64 // clock nanos of the last refill
	throttled int64
}

// stripe is one lock-striped slice of a tier's bucket map.
type stripe struct {
	mu      sync.Mutex
	buckets map[string]*bucket
}

// Tier is one keyed budget class of a RateLimiter.
type Tier struct {
	cfg       TierConfig
	stripes   [rateStripes]stripe
	allowed   atomic.Int64
	throttled atomic.Int64
}

// RateLimiter is a multi-tier token-bucket admission controller. Safe for
// concurrent use.
type RateLimiter struct {
	clock Clock
	tiers map[string]*Tier
	names []string // insertion order, for stable gauge output
}

// NewRateLimiter builds a limiter from the given tiers (those with
// Rate <= 0 are skipped). clock nil means time.Now.
func NewRateLimiter(clock Clock, tiers ...TierConfig) *RateLimiter {
	if clock == nil {
		clock = time.Now
	}
	l := &RateLimiter{clock: clock, tiers: make(map[string]*Tier, len(tiers))}
	for _, cfg := range tiers {
		if cfg.Rate <= 0 || cfg.Name == "" {
			continue
		}
		t := &Tier{cfg: cfg.withDefaults()}
		for i := range t.stripes {
			t.stripes[i].buckets = make(map[string]*bucket)
		}
		l.tiers[cfg.Name] = t
		l.names = append(l.names, cfg.Name)
	}
	return l
}

// stripeFor hashes key onto a stripe index (inline FNV-1a; no allocation).
func stripeFor(key string) int {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h & (rateStripes - 1))
}

// Allow charges cost against the (tier, key) bucket. It returns ok=true
// when the bucket covers the cost; otherwise ok=false and retryAfter is
// how long until the refill covers it. An unconfigured tier always
// admits — enabling one tier must not silently throttle traffic keyed
// for another.
func (l *RateLimiter) Allow(tier, key string, cost float64) (ok bool, retryAfter time.Duration) {
	t := l.tiers[tier]
	if t == nil {
		return true, 0
	}
	now := l.clock().UnixNano()
	s := &t.stripes[stripeFor(key)]
	s.mu.Lock()
	b := s.buckets[key]
	if b == nil {
		b = &bucket{tokens: t.cfg.Burst, last: now}
		s.buckets[key] = b
	}
	// Refill for the time elapsed since the last charge, capped at Burst.
	// A clock that stands still (tests) or steps backwards refills nothing.
	if now > b.last {
		b.tokens += float64(now-b.last) / float64(time.Second) * t.cfg.Rate
		if b.tokens > t.cfg.Burst {
			b.tokens = t.cfg.Burst
		}
		b.last = now
	}
	if b.tokens >= cost {
		b.tokens -= cost
		s.mu.Unlock()
		t.allowed.Add(1)
		return true, 0
	}
	b.throttled++
	deficit := cost - b.tokens
	s.mu.Unlock()
	t.throttled.Add(1)
	return false, time.Duration(deficit / t.cfg.Rate * float64(time.Second))
}

// RetryAfterSeconds renders a retryAfter hint as the whole-seconds value
// the Retry-After header and envelope carry: rounded up, minimum 1.
func RetryAfterSeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Health snapshots the limiter gauges: totals, per-tier breakdown, live
// bucket occupancy and the top-tenant throttle share across all tiers.
func (l *RateLimiter) Health() *core.AbuseHealth {
	h := &core.AbuseHealth{Tiers: make(map[string]core.AbuseTierHealth, len(l.names))}
	var maxKeyThrottled int64
	for _, name := range l.names {
		t := l.tiers[name]
		th := core.AbuseTierHealth{
			Allowed:   t.allowed.Load(),
			Throttled: t.throttled.Load(),
		}
		for i := range t.stripes {
			s := &t.stripes[i]
			s.mu.Lock()
			th.Buckets += len(s.buckets)
			for _, b := range s.buckets {
				if b.throttled > maxKeyThrottled {
					maxKeyThrottled = b.throttled
				}
			}
			s.mu.Unlock()
		}
		h.Allowed += th.Allowed
		h.Throttled += th.Throttled
		h.Buckets += th.Buckets
		h.Tiers[name] = th
	}
	if h.Throttled > 0 {
		h.TopTenantShare = float64(maxKeyThrottled) / float64(h.Throttled)
	}
	return h
}
