package store

import (
	"strings"
	"testing"
)

func TestOwnerStats(t *testing.T) {
	s := New()
	put := func(kind, key string) {
		t.Helper()
		if _, err := s.Put(kind, key, map[string]string{"k": key}); err != nil {
			t.Fatal(err)
		}
	}
	put("policy", "alice/p1")
	put("policy", "alice/p2")
	put("realm", "alice/travel")
	put("policy", "bob/p1")
	put("system", "ring") // ownerless: must not be counted

	classify := func(e Entity) (string, bool) {
		if e.Kind == "system" {
			return "", false
		}
		owner, _, ok := strings.Cut(e.Key, "/")
		return owner, ok
	}
	got := s.OwnerStats(classify)
	if len(got) != 2 || got["alice"] != 3 || got["bob"] != 1 {
		t.Fatalf("OwnerStats = %v, want alice:3 bob:1", got)
	}

	// Deletes shrink the counts; a drained owner disappears entirely.
	if err := s.Delete("policy", "bob/p1"); err != nil {
		t.Fatal(err)
	}
	got = s.OwnerStats(classify)
	if _, there := got["bob"]; there || got["alice"] != 3 {
		t.Fatalf("OwnerStats after delete = %v", got)
	}
}
