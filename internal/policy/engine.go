package policy

import (
	"fmt"
	"time"

	"umac/internal/core"
)

// Request is an access request as seen by the engine: who wants to do what
// to which resource, plus whatever claims and consent state accompany it.
type Request struct {
	// Subject is the authenticated human identity, empty for anonymous.
	Subject core.UserID
	// Requester is the application identity issuing the request.
	Requester core.RequesterID
	Action    core.Action
	Resource  core.ResourceRef
	Realm     core.RealmID
	// Owner of the resource; used to resolve "owner" subjects and group
	// membership (groups are per-owner).
	Owner core.UserID
	// Claims presented by the Requester (terms extension).
	Claims map[string]string
	// ConsentGranted is set by the AM after the user resolves a real-time
	// consent ticket; it satisfies CondRequireConsent conditions.
	ConsentGranted bool
	// Time of evaluation; zero means time.Now().
	Time time.Time
}

func (r Request) at() time.Time {
	if r.Time.IsZero() {
		return time.Now()
	}
	return r.Time
}

// GroupResolver answers group-membership questions. Groups are owned by the
// policy owner (each user curates their own "friends", "family", ... sets).
type GroupResolver interface {
	// Member reports whether user belongs to the owner's named group.
	Member(owner core.UserID, group string, user core.UserID) bool
}

// Result is the engine's outcome for one evaluation.
type Result struct {
	Decision core.Decision
	// Policy that produced the final decision (empty when no applicable
	// policy was found).
	Policy core.PolicyID
	// Reason explains the outcome for auditing.
	Reason string
	// RequireConsent is set when a matching permit rule is guarded by a
	// real-time consent condition that has not been granted yet.
	RequireConsent bool
	// RequiredTerms lists claim names a matching permit rule demands but
	// the request did not present.
	RequiredTerms []string
	// CacheTTLSeconds is the caching directive derived from the deciding
	// policy (0 = engine default, negative = never cache).
	CacheTTLSeconds int
}

// Engine evaluates requests against the two-level policy structure of the
// paper's prototype. The zero value is not useful; construct with NewEngine.
type Engine struct {
	groups GroupResolver
}

// NewEngine returns an engine using the given group resolver. A nil
// resolver treats every group as empty.
func NewEngine(groups GroupResolver) *Engine {
	return &Engine{groups: groups}
}

// Evaluate implements the exact two-stage semantics of Section VI:
//
//	"First, the engine evaluates the access request against the general
//	policy as defined by a user for the group of resources to which a
//	particular resource belongs. If the decision derived from the general
//	policy is 'deny' then no other policy is processed. In case the
//	evaluation produces a 'permit' decision then the engine checks whether
//	a specific policy is associated with a resource. It then evaluates the
//	access request against this policy and produces a final decision."
//
// general may be nil when no general policy is linked to the realm; the
// result is then DecisionUnknown, which the (deny-biased) AM maps to deny.
// specific may be nil when the resource carries no specific policy.
func (e *Engine) Evaluate(req Request, general, specific *Policy) Result {
	return e.evaluate(req, scanRef(general), scanRef(specific))
}

// evaluate is the two-stage core shared by the scan path (Evaluate) and
// the compiled path (EvaluateCompiled); the polRef only changes which
// candidate rules each stage visits, never the outcome.
func (e *Engine) evaluate(req Request, general, specific polRef) Result {
	if general.p == nil {
		return Result{
			Decision: core.DecisionUnknown,
			Reason:   "no general policy applies to realm " + string(req.Realm),
		}
	}
	gen := e.evalPolicy(req, general)
	if gen.Decision != core.DecisionPermit {
		// Deny (or unknown within the general policy) is final: no other
		// policy is processed.
		if gen.Decision == core.DecisionUnknown {
			gen.Decision = core.DecisionDeny
			gen.Reason = "no rule in general policy matched: " + gen.Reason
		}
		gen.Policy = general.p.ID
		return gen
	}
	if specific.p == nil {
		gen.Policy = general.p.ID
		return gen
	}
	spec := e.evalPolicy(req, specific)
	spec.Policy = specific.p.ID
	if spec.Decision == core.DecisionUnknown &&
		!spec.RequireConsent && len(spec.RequiredTerms) == 0 {
		// The resource has a specific policy but it does not speak to this
		// request at all; the general permit stands. This keeps "read for
		// everyone" + "write for subset" compositions (the paper's example)
		// working: the write-only specific policy is silent about reads.
		// A specific permit withheld pending consent/terms is NOT silent —
		// its obligations block the request below.
		gen.Policy = general.p.ID
		gen.Reason = fmt.Sprintf("general permit; specific policy %s silent", specific.p.ID)
		return gen
	}
	// Obligations gathered at the general stage must survive refinement.
	spec.RequireConsent = spec.RequireConsent || gen.RequireConsent
	spec.RequiredTerms = append(spec.RequiredTerms, gen.RequiredTerms...)
	if spec.CacheTTLSeconds == 0 {
		spec.CacheTTLSeconds = gen.CacheTTLSeconds
	}
	return spec
}

// evalPolicy evaluates a single policy under its combining algorithm.
// Permit rules whose consent/terms conditions are unsatisfied never permit
// but surface obligations instead; deny rules guarded by unmet conditions
// simply do not apply.
func (e *Engine) evalPolicy(req Request, ref polRef) Result {
	switch ref.p.combining() {
	case CombineFirstApplicable:
		return e.evalFirstApplicable(req, ref)
	case CombinePermitOverrides:
		return e.evalOverrides(req, ref, true)
	default:
		return e.evalOverrides(req, ref, false)
	}
}

// evalOverrides implements deny-overrides (permitWins=false) and
// permit-overrides (permitWins=true) in one pass.
func (e *Engine) evalOverrides(req Request, ref polRef, permitWins bool) Result {
	p := ref.p
	res := Result{Decision: core.DecisionUnknown, CacheTTLSeconds: p.CacheTTLSeconds}
	permitted, denied := -1, -1
	for k := 0; k < ref.ruleCount(); k++ {
		i, rule := ref.ruleAt(k)
		if !ref.covers(rule, req.Action) || !e.subjectsMatch(req, p.Owner, rule.Subjects) {
			continue
		}
		ok, obligations := e.conditionsMet(req, rule.Conditions)
		if rule.Effect == EffectDeny {
			if ok && denied < 0 {
				denied = i
			}
			continue
		}
		if ok {
			if permitted < 0 {
				permitted = i
			}
			continue
		}
		// The rule would permit but has outstanding obligations.
		if obligations.requireConsent {
			res.RequireConsent = true
		}
		res.RequiredTerms = append(res.RequiredTerms, obligations.missingClaims...)
	}
	winner := func(idx int, effect Effect) Result {
		return Result{
			Decision:        map[Effect]core.Decision{EffectPermit: core.DecisionPermit, EffectDeny: core.DecisionDeny}[effect],
			Reason:          fmt.Sprintf("rule %d %ss %s (%s)", idx, effect, req.Action, p.combining()),
			CacheTTLSeconds: p.CacheTTLSeconds,
		}
	}
	switch {
	case permitWins && permitted >= 0:
		return winner(permitted, EffectPermit)
	case !permitWins && denied >= 0:
		return winner(denied, EffectDeny)
	case permitted >= 0:
		return winner(permitted, EffectPermit)
	case denied >= 0:
		return winner(denied, EffectDeny)
	}
	if res.RequireConsent || len(res.RequiredTerms) > 0 {
		res.Reason = "permit withheld pending obligations"
		return res
	}
	res.Reason = "no applicable rule"
	return res
}

// evalFirstApplicable decides by the first rule whose subjects, action and
// conditions all apply; rules with unmet obligation conditions are recorded
// (so pending consent/terms surface) but do not decide.
func (e *Engine) evalFirstApplicable(req Request, ref polRef) Result {
	p := ref.p
	res := Result{Decision: core.DecisionUnknown, CacheTTLSeconds: p.CacheTTLSeconds}
	for k := 0; k < ref.ruleCount(); k++ {
		i, rule := ref.ruleAt(k)
		if !ref.covers(rule, req.Action) || !e.subjectsMatch(req, p.Owner, rule.Subjects) {
			continue
		}
		ok, obligations := e.conditionsMet(req, rule.Conditions)
		if ok {
			decision := core.DecisionDeny
			if rule.Effect == EffectPermit {
				decision = core.DecisionPermit
			}
			return Result{
				Decision:        decision,
				Reason:          fmt.Sprintf("rule %d %ss %s (first-applicable)", i, rule.Effect, req.Action),
				CacheTTLSeconds: p.CacheTTLSeconds,
			}
		}
		if rule.Effect == EffectPermit {
			if obligations.requireConsent {
				res.RequireConsent = true
			}
			res.RequiredTerms = append(res.RequiredTerms, obligations.missingClaims...)
		}
	}
	if res.RequireConsent || len(res.RequiredTerms) > 0 {
		res.Reason = "permit withheld pending obligations"
		return res
	}
	res.Reason = "no applicable rule"
	return res
}

type obligations struct {
	requireConsent bool
	missingClaims  []string
}

// conditionsMet evaluates all conditions of a rule. It returns met=true
// when every condition is satisfied. Unsatisfied consent/claim conditions
// are reported as obligations; an out-of-window time condition is a plain
// mismatch with no obligations.
func (e *Engine) conditionsMet(req Request, conds []Condition) (bool, obligations) {
	var ob obligations
	met := true
	for _, c := range conds {
		switch c.Type {
		case CondTimeWindow:
			now := req.at()
			if !c.NotBefore.IsZero() && now.Before(c.NotBefore) {
				return false, obligations{}
			}
			if !c.NotAfter.IsZero() && now.After(c.NotAfter) {
				return false, obligations{}
			}
		case CondRequireClaim:
			got, present := req.Claims[c.Claim]
			if !present || (c.Value != "" && got != c.Value) {
				met = false
				ob.missingClaims = append(ob.missingClaims, c.Claim)
			}
		case CondRequireConsent:
			if !req.ConsentGranted {
				met = false
				ob.requireConsent = true
			}
		default:
			// Unknown condition types fail closed.
			return false, obligations{}
		}
	}
	return met, ob
}

// subjectsMatch reports whether any subject entry matches the request.
func (e *Engine) subjectsMatch(req Request, owner core.UserID, subjects []Subject) bool {
	for _, s := range subjects {
		switch s.Type {
		case SubjectEveryone:
			return true
		case SubjectOwner:
			if req.Subject != "" && req.Subject == owner {
				return true
			}
		case SubjectUser:
			if req.Subject != "" && string(req.Subject) == s.Name {
				return true
			}
		case SubjectRequester:
			if req.Requester != "" && string(req.Requester) == s.Name {
				return true
			}
		case SubjectGroup:
			if e.groups != nil && req.Subject != "" &&
				e.groups.Member(owner, s.Name, req.Subject) {
				return true
			}
		}
	}
	return false
}
