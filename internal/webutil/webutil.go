// Package webutil holds the small HTTP helpers shared by the AM, Hosts and
// prototype applications: JSON request/response plumbing and error mapping.
package webutil

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"umac/internal/core"
)

// MaxBodyBytes bounds request bodies accepted by ReadJSON.
const MaxBodyBytes = 4 << 20 // 4 MiB

// WriteJSON writes v as a JSON response with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if v != nil {
		_ = json.NewEncoder(w).Encode(v)
	}
}

// ErrorBody is the JSON error envelope.
type ErrorBody struct {
	Error string `json:"error"`
}

// WriteError writes a JSON error response.
func WriteError(w http.ResponseWriter, status int, err error) {
	WriteJSON(w, status, ErrorBody{Error: err.Error()})
}

// WriteErrorf writes a formatted JSON error response.
func WriteErrorf(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, ErrorBody{Error: fmt.Sprintf(format, args...)})
}

// StatusFor maps protocol errors to HTTP statuses.
func StatusFor(err error) int {
	switch {
	case errors.Is(err, core.ErrAccessDenied):
		return http.StatusForbidden
	case errors.Is(err, core.ErrTokenInvalid), errors.Is(err, core.ErrTokenScope):
		return http.StatusUnauthorized
	case errors.Is(err, core.ErrUnknownRealm), errors.Is(err, core.ErrNotPaired):
		return http.StatusNotFound
	default:
		return http.StatusBadRequest
	}
}

// ReadJSON decodes the request body into v, rejecting oversized bodies and
// trailing garbage.
func ReadJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("webutil: decode body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("webutil: trailing data after JSON body")
	}
	return nil
}

// ReadJSONLoose decodes without rejecting unknown fields (for
// forward-compatible endpoints).
func ReadJSONLoose(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, MaxBodyBytes))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("webutil: decode body: %w", err)
	}
	return nil
}
