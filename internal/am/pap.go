package am

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"umac/internal/audit"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/store"
)

// This file is the policy administration point (PAP): policy CRUD,
// realm/resource linking, groups and custodians. Authorization to manage a
// user's policies is checked here via CanManage so the HTTP layer and CLI
// share the rules.

// CanManage reports whether actor may administer owner's policies: the
// owner always can, and so can appointed custodians (Section V.D: "a
// different entity, a Custodian, may be responsible for composing access
// control policies for a User's Web resources").
func (a *AM) CanManage(owner, actor core.UserID) bool {
	if actor == "" {
		return false
	}
	if owner == actor {
		return true
	}
	var custodians []core.UserID
	if _, err := a.store.Get(kindCustodian, string(owner), &custodians); err != nil {
		return false
	}
	for _, c := range custodians {
		if c == actor {
			return true
		}
	}
	return false
}

// AddCustodian appoints a custodian for owner.
func (a *AM) AddCustodian(owner, custodian core.UserID) error {
	if owner == "" || custodian == "" {
		return fmt.Errorf("am: owner and custodian required")
	}
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	var cur []core.UserID
	_, err = a.store.Update(kindCustodian, string(owner), &cur, func(exists bool) (any, error) {
		for _, c := range cur {
			if c == custodian {
				return cur, nil
			}
		}
		return append(cur, custodian), nil
	})
	return err
}

// RemoveCustodian revokes a custodian appointment.
func (a *AM) RemoveCustodian(owner, custodian core.UserID) error {
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	var cur []core.UserID
	_, err = a.store.Update(kindCustodian, string(owner), &cur, func(exists bool) (any, error) {
		out := cur[:0]
		for _, c := range cur {
			if c != custodian {
				out = append(out, c)
			}
		}
		return out, nil
	})
	return err
}

// Custodians lists owner's custodians.
func (a *AM) Custodians(owner core.UserID) []core.UserID {
	var cur []core.UserID
	a.store.Get(kindCustodian, string(owner), &cur)
	sort.Slice(cur, func(i, j int) bool { return cur[i] < cur[j] })
	return cur
}

// --- Policy CRUD ---

// CreatePolicy validates and stores a new policy. A policy ID is assigned
// when empty. actor must be allowed to manage the policy owner's security.
func (a *AM) CreatePolicy(actor core.UserID, p policy.Policy) (policy.Policy, error) {
	if p.ID == "" {
		p.ID = core.PolicyID(core.NewID("pol"))
	}
	if !a.CanManage(p.Owner, actor) {
		return policy.Policy{}, fmt.Errorf("am: %s may not manage policies of %s", actor, p.Owner)
	}
	release, err := a.gateOwner(p.Owner)
	if err != nil {
		return policy.Policy{}, err
	}
	defer release()
	if err := p.Validate(); err != nil {
		return policy.Policy{}, err
	}
	if _, err := a.store.PutIfVersion(kindPolicy, string(p.ID), 0, p); err != nil {
		return policy.Policy{}, fmt.Errorf("am: policy %s already exists: %w", p.ID, err)
	}
	a.audit.Append(audit.Event{
		Type: audit.EventPolicyCreated, Owner: p.Owner, Subject: actor, Detail: string(p.ID),
	})
	a.trace(core.PhaseComposingPolicies, "user:"+string(actor), "am:"+a.name,
		"create-policy", string(p.ID))
	// Links left dangling by an earlier delete resolve again once a policy
	// re-appears under the same ID; caches holding the dangling (deny)
	// outcome must hear about it.
	if realms, resources := a.linksForPolicy(p.Owner, p.ID); len(realms)+len(resources) > 0 {
		a.pushInvalidation(p.Owner, realms, resources)
	}
	return p, nil
}

// UpdatePolicy replaces an existing policy; owner and ID are immutable.
func (a *AM) UpdatePolicy(actor core.UserID, p policy.Policy) error {
	var old policy.Policy
	if _, err := a.store.Get(kindPolicy, string(p.ID), &old); err != nil {
		return fmt.Errorf("am: policy %s not found", p.ID)
	}
	if !a.CanManage(old.Owner, actor) {
		return fmt.Errorf("am: %s may not manage policies of %s", actor, old.Owner)
	}
	release, err := a.gateOwner(old.Owner)
	if err != nil {
		return err
	}
	defer release()
	p.Owner = old.Owner
	if err := p.Validate(); err != nil {
		return err
	}
	if _, err := a.store.Put(kindPolicy, string(p.ID), p); err != nil {
		return err
	}
	a.audit.Append(audit.Event{
		Type: audit.EventPolicyUpdated, Owner: old.Owner, Subject: actor, Detail: string(p.ID),
	})
	realms, resources := a.linksForPolicy(old.Owner, p.ID)
	if len(realms)+len(resources) > 0 {
		// A policy with no links decides nothing, so there is nothing to
		// evict; pushing an empty (owner-wide) scope would stampede.
		a.pushInvalidation(old.Owner, realms, resources)
	}
	return nil
}

// DeletePolicy removes a policy. Links pointing at it become dangling and
// resolve to "no policy" (deny-biased), which is the safe failure mode.
func (a *AM) DeletePolicy(actor core.UserID, id core.PolicyID) error {
	var old policy.Policy
	if _, err := a.store.Get(kindPolicy, string(id), &old); err != nil {
		return fmt.Errorf("am: policy %s not found", id)
	}
	if !a.CanManage(old.Owner, actor) {
		return fmt.Errorf("am: %s may not manage policies of %s", actor, old.Owner)
	}
	release, err := a.gateOwner(old.Owner)
	if err != nil {
		return err
	}
	defer release()
	// Capture the affected scope while the links still resolve; after the
	// delete they dangle (deny-biased) but still name the same targets.
	realms, resources := a.linksForPolicy(old.Owner, id)
	if err := a.store.Delete(kindPolicy, string(id)); err != nil {
		return err
	}
	a.audit.Append(audit.Event{
		Type: audit.EventPolicyDeleted, Owner: old.Owner, Subject: actor, Detail: string(id),
	})
	if len(realms)+len(resources) > 0 {
		a.pushInvalidation(old.Owner, realms, resources)
	}
	return nil
}

// linksForPolicy names every realm (general links) and resource (specific
// links) of owner's currently bound to policy id — the exact scope of cache
// entries a change to that policy can have affected.
func (a *AM) linksForPolicy(owner core.UserID, id core.PolicyID) ([]core.RealmID, []core.ResourceID) {
	prefix := string(owner) + "/"
	var realms []core.RealmID
	for _, e := range a.store.ListPrefix(kindLinkGen, prefix) {
		var link linkRecord
		if e.Decode(&link) != nil || link.Policy != id {
			continue
		}
		realms = append(realms, core.RealmID(e.Key[len(prefix):]))
	}
	var resources []core.ResourceID
	for _, e := range a.store.ListPrefix(kindLinkSpec, prefix) {
		var link linkRecord
		if e.Decode(&link) != nil || link.Policy != id {
			continue
		}
		// Key layout is owner/host/resource; the resource may itself
		// contain '/' (storage paths), so split off only the host segment.
		rest := e.Key[len(prefix):]
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			resources = append(resources, core.ResourceID(rest[i+1:]))
		}
	}
	return realms, resources
}

// GetPolicy fetches a policy by ID.
func (a *AM) GetPolicy(id core.PolicyID) (policy.Policy, error) {
	var p policy.Policy
	if _, err := a.store.Get(kindPolicy, string(id), &p); err != nil {
		return policy.Policy{}, fmt.Errorf("am: policy %s not found", id)
	}
	return p, nil
}

// ListPolicies returns all policies owned by owner, sorted by ID.
func (a *AM) ListPolicies(owner core.UserID) []policy.Policy {
	entities := a.store.Query(kindPolicy, func(e store.Entity) bool {
		var p policy.Policy
		return e.Decode(&p) == nil && p.Owner == owner
	})
	out := make([]policy.Policy, 0, len(entities))
	for _, e := range entities {
		var p policy.Policy
		if err := e.Decode(&p); err == nil {
			out = append(out, p)
		}
	}
	return out
}

// ExportPolicies writes owner's policies to w in the requested format —
// the Section VI REST export.
func (a *AM) ExportPolicies(w io.Writer, owner core.UserID, f policy.Format) error {
	return policy.Export(w, a.ListPolicies(owner), f)
}

// ImportPolicies reads policies from r, forcing ownership to owner, and
// stores them (overwriting same-ID policies). Returns how many were
// imported.
func (a *AM) ImportPolicies(actor core.UserID, owner core.UserID, r io.Reader, f policy.Format) (int, error) {
	if !a.CanManage(owner, actor) {
		return 0, fmt.Errorf("am: %s may not manage policies of %s", actor, owner)
	}
	release, err := a.gateOwner(owner)
	if err != nil {
		return 0, err
	}
	defer release()
	policies, err := policy.Import(r, f)
	if err != nil {
		return 0, err
	}
	for i := range policies {
		policies[i].Owner = owner
		// Policy IDs are global store keys. An import must never clobber
		// another user's policy that happens to share the ID (e.g. when
		// importing a policy set exported by someone else), so re-key on
		// cross-owner collision.
		var existing policy.Policy
		if _, err := a.store.Get(kindPolicy, string(policies[i].ID), &existing); err == nil && existing.Owner != owner {
			policies[i].ID = core.PolicyID(core.NewID("pol"))
		}
		if _, err := a.store.Put(kindPolicy, string(policies[i].ID), policies[i]); err != nil {
			return i, err
		}
		a.audit.Append(audit.Event{
			Type: audit.EventPolicyCreated, Owner: owner, Subject: actor,
			Detail: string(policies[i].ID) + " (import)",
		})
	}
	if len(policies) > 0 {
		// Imports may overwrite policies that are already linked; the
		// affected scope is not tracked per policy here, so evict
		// owner-wide.
		a.pushInvalidation(owner, nil, nil)
	}
	return len(policies), nil
}

// --- Linking (Fig. 4) ---

// LinkGeneral applies a general policy to all resources of owner's realm,
// across every Host where that realm is registered. This is the R2 win:
// one policy, one link, many Hosts.
func (a *AM) LinkGeneral(owner core.UserID, realm core.RealmID, pid core.PolicyID) error {
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	return a.linkGeneralGated(owner, realm, pid)
}

// linkGeneralGated is LinkGeneral minus the ownership gate, for callers
// already holding the migration barrier (RegisterRealm) — gateOwner must
// never nest: a recursive RLock behind a queued SetOwnerShard write lock
// deadlocks.
func (a *AM) linkGeneralGated(owner core.UserID, realm core.RealmID, pid core.PolicyID) error {
	p, err := a.GetPolicy(pid)
	if err != nil {
		return err
	}
	if p.Owner != owner {
		return fmt.Errorf("am: policy %s is not owned by %s", pid, owner)
	}
	if p.Kind != policy.KindGeneral {
		return fmt.Errorf("am: policy %s is %s, need general", pid, p.Kind)
	}
	if _, err := a.store.Put(kindLinkGen, linkGenKey(owner, realm), linkRecord{Policy: pid}); err != nil {
		return err
	}
	a.audit.Append(audit.Event{
		Type: audit.EventResourceLinked, Owner: owner, Realm: realm,
		Detail: "general policy " + string(pid),
	})
	a.trace(core.PhaseComposingPolicies, "user:"+string(owner), "am:"+a.name,
		"link-general", fmt.Sprintf("%s -> %s", realm, pid))
	a.pushInvalidation(owner, []core.RealmID{realm}, nil)
	return nil
}

// LinkSpecific applies a specific policy to one resource at one Host.
func (a *AM) LinkSpecific(owner core.UserID, host core.HostID, res core.ResourceID, pid core.PolicyID) error {
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	p, err := a.GetPolicy(pid)
	if err != nil {
		return err
	}
	if p.Owner != owner {
		return fmt.Errorf("am: policy %s is not owned by %s", pid, owner)
	}
	if p.Kind != policy.KindSpecific {
		return fmt.Errorf("am: policy %s is %s, need specific", pid, p.Kind)
	}
	if _, err := a.store.Put(kindLinkSpec, linkSpecKey(owner, host, res), linkRecord{Policy: pid}); err != nil {
		return err
	}
	a.audit.Append(audit.Event{
		Type: audit.EventResourceLinked, Owner: owner, Host: host, Resource: res,
		Detail: "specific policy " + string(pid),
	})
	a.trace(core.PhaseComposingPolicies, "user:"+string(owner), "am:"+a.name,
		"link-specific", fmt.Sprintf("%s/%s -> %s", host, res, pid))
	a.pushInvalidation(owner, nil, []core.ResourceID{res})
	return nil
}

// UnlinkGeneral removes the realm's general policy link.
func (a *AM) UnlinkGeneral(owner core.UserID, realm core.RealmID) error {
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	if err := a.store.Delete(kindLinkGen, linkGenKey(owner, realm)); err != nil {
		return err
	}
	a.pushInvalidation(owner, []core.RealmID{realm}, nil)
	return nil
}

// UnlinkSpecific removes a resource's specific policy link.
func (a *AM) UnlinkSpecific(owner core.UserID, host core.HostID, res core.ResourceID) error {
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	if err := a.store.Delete(kindLinkSpec, linkSpecKey(owner, host, res)); err != nil {
		return err
	}
	a.pushInvalidation(owner, nil, []core.ResourceID{res})
	return nil
}

// generalPolicyFor resolves the general policy protecting owner's realm,
// nil when none is linked (or the link dangles).
func (a *AM) generalPolicyFor(owner core.UserID, realm core.RealmID) *policy.Policy {
	var link linkRecord
	if _, err := a.store.Get(kindLinkGen, linkGenKey(owner, realm), &link); err != nil {
		return nil
	}
	p, err := a.GetPolicy(link.Policy)
	if err != nil {
		return nil
	}
	return &p
}

// specificPolicyFor resolves the specific policy for a resource, nil when
// none.
func (a *AM) specificPolicyFor(owner core.UserID, host core.HostID, res core.ResourceID) *policy.Policy {
	var link linkRecord
	if _, err := a.store.Get(kindLinkSpec, linkSpecKey(owner, host, res), &link); err != nil {
		return nil
	}
	p, err := a.GetPolicy(link.Policy)
	if err != nil {
		return nil
	}
	return &p
}

func linkGenKey(owner core.UserID, realm core.RealmID) string {
	return string(owner) + "/" + string(realm)
}

func linkSpecKey(owner core.UserID, host core.HostID, res core.ResourceID) string {
	return string(owner) + "/" + string(host) + "/" + string(res)
}

// --- Groups ---

// groupStore is a store-backed policy.GroupResolver with a write-through
// in-memory directory for fast membership checks on the decision path.
type groupStore struct {
	st  *store.Store
	dir policy.Directory
}

func newGroupStore(st *store.Store) *groupStore {
	g := &groupStore{st: st}
	// Rebuild the directory from persisted groups.
	for _, e := range st.List(kindGroup) {
		var members []core.UserID
		if err := e.Decode(&members); err != nil {
			continue
		}
		owner, group, ok := splitGroupKey(e.Key)
		if !ok {
			continue
		}
		for _, m := range members {
			g.dir.Add(owner, group, m)
		}
	}
	return g
}

// Member implements policy.GroupResolver.
func (g *groupStore) Member(owner core.UserID, group string, user core.UserID) bool {
	return g.dir.Member(owner, group, user)
}

func (g *groupStore) add(owner core.UserID, group string, user core.UserID) error {
	g.dir.Add(owner, group, user)
	return g.persist(owner, group)
}

func (g *groupStore) remove(owner core.UserID, group string, user core.UserID) error {
	g.dir.Remove(owner, group, user)
	return g.persist(owner, group)
}

func (g *groupStore) persist(owner core.UserID, group string) error {
	members := g.dir.Members(owner, group)
	key := string(owner) + "/" + group
	if len(members) == 0 {
		// Deleting a missing entity is fine here.
		g.st.Delete(kindGroup, key)
		return nil
	}
	_, err := g.st.Put(kindGroup, key, members)
	return err
}

// install syncs the in-memory directory with a group record that arrived
// from outside the local write path (replication apply, migration import):
// key is the store key ("owner/group"), members the authoritative list
// (nil for a deleted group).
func (g *groupStore) install(key string, members []core.UserID) {
	owner, group, ok := splitGroupKey(key)
	if !ok {
		return
	}
	g.dir.SetMembers(owner, group, members)
}

// installRecord is install for a raw replicated/imported record: puts
// decode the member list (an undecodable payload clears the group rather
// than serving stale membership), deletes clear it.
func (g *groupStore) installRecord(rec core.ReplRecord) {
	var members []core.UserID
	if rec.Op == core.ReplOpPut && json.Unmarshal(rec.Data, &members) != nil {
		members = nil
	}
	g.install(rec.Key, members)
}

// rebuild resets the directory from the backing store — the follower
// bootstrap path, where the whole store was just replaced by a snapshot.
func (g *groupStore) rebuild() {
	g.dir.Reset()
	for _, e := range g.st.List(kindGroup) {
		var members []core.UserID
		if err := e.Decode(&members); err != nil {
			continue
		}
		g.install(e.Key, members)
	}
}

func splitGroupKey(key string) (core.UserID, string, bool) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return core.UserID(key[:i]), key[i+1:], key[i+1:] != ""
		}
	}
	return "", "", false
}

// AddGroupMember adds user to actor-managed owner's group.
func (a *AM) AddGroupMember(actor, owner core.UserID, group string, user core.UserID) error {
	if !a.CanManage(owner, actor) {
		return fmt.Errorf("am: %s may not manage groups of %s", actor, owner)
	}
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	if group == "" || user == "" {
		return fmt.Errorf("am: group and user required")
	}
	if err := a.groups.add(owner, group, user); err != nil {
		return err
	}
	// Group membership may be referenced by any of the owner's policies, so
	// the push is owner-wide (empty scope = evict everything of owner's).
	a.pushInvalidation(owner, nil, nil)
	return nil
}

// RemoveGroupMember removes user from owner's group.
func (a *AM) RemoveGroupMember(actor, owner core.UserID, group string, user core.UserID) error {
	if !a.CanManage(owner, actor) {
		return fmt.Errorf("am: %s may not manage groups of %s", actor, owner)
	}
	release, err := a.gateOwner(owner)
	if err != nil {
		return err
	}
	defer release()
	if err := a.groups.remove(owner, group, user); err != nil {
		return err
	}
	a.pushInvalidation(owner, nil, nil)
	return nil
}

// Groups lists owner's group names.
func (a *AM) Groups(owner core.UserID) []string { return a.groups.dir.Groups(owner) }

// GroupMembers lists members of owner's group.
func (a *AM) GroupMembers(owner core.UserID, group string) []core.UserID {
	return a.groups.dir.Members(owner, group)
}
