package sim

import (
	"fmt"
	"sync"
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
)

// TestConcurrentRequesters drives many requesters through the full protocol
// in parallel: distinct subjects, overlapping resources, mixed permit/deny.
// It checks that no request ever produces a wrong outcome under contention
// (races in the token service, decision cache, policy store or audit log
// would surface here; run with -race).
func TestConcurrentRequesters(t *testing.T) {
	w := NewWorld()
	t.Cleanup(w.Close)
	h := w.AddHost("webpics")
	const resources = 8
	ids := make([]core.ResourceID, resources)
	for i := range ids {
		ids[i] = core.ResourceID(fmt.Sprintf("photo-%d", i))
		h.AddResource("bob", "travel", ids[i], []byte(fmt.Sprintf("content-%d", i)))
	}
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", ids, ""); err != nil {
		t.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	const friends = 6
	for i := 0; i < friends; i++ {
		if err := w.AM.AddGroupMember("bob", "bob", "friends", core.UserID(fmt.Sprintf("friend-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Friends hammer reads in parallel.
	for i := 0; i < friends; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			subject := core.UserID(fmt.Sprintf("friend-%d", n))
			client := requester.New(requester.Config{
				ID: core.RequesterID(fmt.Sprintf("app-%d", n)), Subject: subject,
			})
			for j := 0; j < 20; j++ {
				res := ids[j%resources]
				body, err := client.Fetch(h.ResourceURL(res), core.ActionRead)
				if err != nil {
					errs <- fmt.Errorf("%s reading %s: %w", subject, res, err)
					return
				}
				if want := fmt.Sprintf("content-%d", j%resources); string(body) != want {
					errs <- fmt.Errorf("%s got %q want %q", subject, body, want)
					return
				}
			}
		}(i)
	}
	// Strangers hammer in parallel and must always be denied.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			client := requester.New(requester.Config{
				ID: core.RequesterID(fmt.Sprintf("intruder-%d", n)), Subject: core.UserID(fmt.Sprintf("mallory-%d", n)),
			})
			for j := 0; j < 10; j++ {
				if _, err := client.Fetch(h.ResourceURL(ids[j%resources]), core.ActionRead); err == nil {
					errs <- fmt.Errorf("intruder-%d was permitted", n)
					return
				}
			}
		}(i)
	}
	// The owner mutates group membership concurrently (adding more
	// friends must never disturb existing members' access).
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 20; j++ {
			u := core.UserID(fmt.Sprintf("late-friend-%d", j))
			if err := w.AM.AddGroupMember("bob", "bob", "friends", u); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Audit integrity: every event has a unique sequence number.
	events := w.AM.Audit().Query(auditDecisions())
	if len(events) == 0 {
		t.Fatal("no decisions audited")
	}
	seen := map[int64]bool{}
	for _, e := range events {
		if seen[e.Seq] {
			t.Fatalf("duplicate audit seq %d", e.Seq)
		}
		seen[e.Seq] = true
	}
}
