package sim

import (
	"strings"
	"testing"

	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
)

// These tests assert the exact interaction sequences of the paper's
// figures, as recorded by the shared tracer — the message-level fidelity
// claims behind experiments E1–E7.

// filterOps keeps only the listed trace ops, in order.
func filterOps(all []string, keep ...string) []string {
	set := make(map[string]bool, len(keep))
	for _, k := range keep {
		set[k] = true
	}
	var out []string
	for _, op := range all {
		if set[op] {
			out = append(out, op)
		}
	}
	return out
}

func TestFig3TraceSequence(t *testing.T) {
	// Fig. 3: Host redirects user to AM → user confirms (approve-pairing)
	// → Host exchanges code → secure channel established.
	w := NewWorld()
	t.Cleanup(w.Close)
	h := w.AddHost("webpics")
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	got := filterOps(w.Tracer.Ops(),
		"redirect-to-am", "approve-pairing", "exchange-code", "pairing-complete")
	want := []string{"redirect-to-am", "approve-pairing", "exchange-code", "pairing-complete"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Fig.3 sequence = %v, want %v", got, want)
	}
	// All four events belong to phase 1 (delegating access control).
	for _, e := range w.Tracer.Events() {
		if e.Phase != core.PhaseDelegatingAccessControl {
			t.Fatalf("event %q in phase %v", e.Op, e.Phase)
		}
	}
}

func TestFig4TraceSequence(t *testing.T) {
	// Fig. 4: Host registers the realm with the AM; the user links a
	// policy (the "share" flow lands on the AM's compose page).
	w := NewWorld()
	t.Cleanup(w.Close)
	h := w.AddHost("webpics")
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	w.Tracer.Reset()
	if err := h.Enforcer.Protect("bob", "travel", []core.ResourceID{"p1"}, ""); err != nil {
		t.Fatal(err)
	}
	p, err := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	// The user visits the compose page (the Fig. 4 redirect target).
	composeURL, err := h.Enforcer.ComposeURL("bob", "travel")
	if err != nil {
		t.Fatal(err)
	}
	if err := bob.Visit(composeURL); err != nil {
		t.Fatal(err)
	}
	got := filterOps(w.Tracer.Ops(),
		"register-realm", "create-policy", "link-general", "compose-page")
	want := []string{"register-realm", "create-policy", "link-general", "compose-page"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Fig.4 sequence = %v, want %v", got, want)
	}
	for _, e := range w.Tracer.Events() {
		if e.Op == "protect" || e.Op == "register-realm" || e.Op == "link-general" || e.Op == "compose-page" {
			if e.Phase != core.PhaseComposingPolicies {
				t.Fatalf("event %q in phase %v", e.Op, e.Phase)
			}
		}
	}
}

func TestFig6SubsequentAccessPhase(t *testing.T) {
	// §V.B.6: the cache-served access is traced as phase 6 with an
	// enforce-cached op and no AM interaction.
	w, h := setupWorld(t)
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	w.Tracer.Reset()
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	events := w.Tracer.Events()
	foundCached := false
	for _, e := range events {
		switch e.Op {
		case "enforce-cached":
			foundCached = true
			if e.Phase != core.PhaseSubsequentAccess {
				t.Fatalf("enforce-cached in phase %v", e.Phase)
			}
		case "decision-query", "token-request", "token-issued":
			t.Fatalf("AM interaction %q during cached access", e.Op)
		}
	}
	if !foundCached {
		t.Fatalf("no enforce-cached event; ops = %v", w.Tracer.Ops())
	}
}
