package audit

import (
	"fmt"
	"sync"
	"testing"
)

func TestPipelineFlushMakesEventsVisible(t *testing.T) {
	var log Log
	p := NewPipeline(&log, 8)
	defer p.Close()
	for i := 0; i < 100; i++ {
		p.Enqueue(Event{Type: EventDecision, Owner: "bob", Detail: fmt.Sprintf("d-%d", i)})
	}
	p.Flush()
	if n := log.Len(); n != 100 {
		t.Fatalf("log has %d events after flush, want 100", n)
	}
	// Sequence numbers are dense and ordered.
	events := log.Query(Filter{Owner: "bob"})
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d has seq %d", i, e.Seq)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has zero time", i)
		}
	}
}

func TestPipelineConcurrentProducers(t *testing.T) {
	var log Log
	p := NewPipeline(&log, 16)
	defer p.Close()
	const producers, each = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				p.Enqueue(Event{Type: EventDecision, Owner: "bob"})
			}
		}(g)
	}
	wg.Wait()
	p.Flush()
	if n := log.Len(); n != producers*each {
		t.Fatalf("log has %d events, want %d (lossless backpressure)", n, producers*each)
	}
}

func TestPipelineCloseDrains(t *testing.T) {
	var log Log
	p := NewPipeline(&log, 1024)
	for i := 0; i < 300; i++ {
		p.Enqueue(Event{Type: EventDecision, Owner: "bob"})
	}
	p.Close()
	if n := log.Len(); n != 300 {
		t.Fatalf("log has %d events after close, want 300", n)
	}
	// Close is idempotent; post-close traffic degrades to sync appends.
	p.Close()
	p.Enqueue(Event{Type: EventDecision, Owner: "bob"})
	p.Flush()
	if n := log.Len(); n != 301 {
		t.Fatalf("log has %d events after post-close enqueue, want 301", n)
	}
}

func TestAppendBatchStampsLikeAppend(t *testing.T) {
	var log Log
	log.Append(Event{Type: EventPolicyCreated, Owner: "bob"})
	log.AppendBatch([]Event{
		{Type: EventDecision, Owner: "bob"},
		{Type: EventDecision, Owner: "bob"},
	})
	log.Append(Event{Type: EventPolicyDeleted, Owner: "bob"})
	events := log.Query(Filter{Owner: "bob"})
	if len(events) != 4 {
		t.Fatalf("len = %d", len(events))
	}
	for i, e := range events {
		if e.Seq != int64(i+1) {
			t.Fatalf("event %d seq %d, want %d", i, e.Seq, i+1)
		}
	}
	log.AppendBatch(nil) // no-op, no panic
}
