// Package store is the datastore substrate of the reproduction. The paper's
// prototype persists policies "within the GAE datastore" (Section VI); this
// package provides the equivalent surface on a laptop: a transactional,
// kind-partitioned key-value store with JSON entity encoding, secondary
// filtering queries, and durable persistence to disk.
//
// Layout: entities are hash-partitioned across a fixed set of lock-striped
// shards, so independent keys never contend on a single mutex. Durability is
// two-tier: every mutation is appended (with a CRC32 checksum) to a
// segmented write-ahead log before it is acknowledged — concurrent writers
// are group-committed, sharing one write and one fsync per batch
// (commit.go) — and Snapshot writes the full contents to a compact file,
// deleting the sealed log segments it subsumes. Open replays
// snapshot + WAL, so a process killed between snapshots loses no
// acknowledged write. A store built with New (or the zero value) is
// memory-only and skips the WAL entirely.
//
// The WAL doubles as a replication log (replication.go): every mutation
// carries a contiguous sequence number, a primary retains the recent tail
// for followers to read in order (TailSince/ReplWatch), and followers
// apply it exactly once (ApplyReplicated), preserving the numbering in
// their own WAL so a restart resumes at the applied offset.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"umac/internal/core"
)

// Common errors.
var (
	// ErrNotFound is returned when a key has no entity.
	ErrNotFound = errors.New("store: entity not found")
	// ErrConflict is returned by conditional writes whose precondition
	// failed (entity changed since it was read).
	ErrConflict = errors.New("store: version conflict")
	// ErrBadKey is returned for empty kinds or keys.
	ErrBadKey = errors.New("store: kind and key must be non-empty")
	// ErrClosed is returned for writes against a store whose WAL has been
	// closed.
	ErrClosed = errors.New("store: closed")
)

// Entity is a stored record: an opaque JSON document plus a version counter
// used for optimistic concurrency.
type Entity struct {
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Version int64           `json:"version"`
	Data    json.RawMessage `json:"data"`
}

// Decode unmarshals the entity's data into v.
func (e Entity) Decode(v any) error {
	if err := json.Unmarshal(e.Data, v); err != nil {
		return fmt.Errorf("store: decode %s/%s: %w", e.Kind, e.Key, err)
	}
	return nil
}

// shardCount is the number of lock stripes. Power of two so the shard index
// is a mask; 32 stripes keep contention negligible well past the core counts
// this runs on, at ~a few hundred bytes of zero-value overhead.
const shardCount = 32

// shard is one lock stripe: a private mutex plus the kind-partitioned
// entities that hash to it.
type shard struct {
	mu    sync.RWMutex
	kinds map[string]map[string]Entity
}

func (sh *shard) kindLocked(kind string) map[string]Entity {
	if sh.kinds == nil {
		sh.kinds = make(map[string]map[string]Entity)
	}
	k, ok := sh.kinds[kind]
	if !ok {
		k = make(map[string]Entity)
		sh.kinds[kind] = k
	}
	return k
}

// Store is a transactional datastore, lock-striped across shards. The zero
// value is a ready-to-use memory-only store; Open returns a durable one.
//
// Lock ordering (deadlock freedom): shard mutexes are only ever acquired in
// ascending index order, and the WAL mutex is only acquired while holding
// the shard lock(s) involved — never the reverse. The committer goroutine
// (commit.go) takes the WAL mutex with no shard locks held, which is
// compatible; writers blocked on a commit hold their shard lock, which is
// what lets Snapshot/Close treat "all shard locks held" as "no batch in
// flight".
type Store struct {
	shards [shardCount]shard

	walMu sync.Mutex
	wal   *wal // nil = memory-only
	// lastSeq is the applied WAL offset: the sequence number of the newest
	// mutation durably logged locally or applied from a replication stream.
	lastSeq int64
	// nextSeq runs ahead of lastSeq by the records enqueued for group
	// commit but not yet flushed; writers stamp nextSeq+1 at enqueue and
	// lastSeq follows once the batch is on disk.
	nextSeq int64
	// pending is the open group-commit batch (nil when nothing is queued);
	// see commit.go for the committer protocol.
	pending       *commitBatch
	commitKick    chan struct{}
	commitStop    chan struct{}
	committerDone chan struct{}
	// walClosing is set by Close before the committer drains, so writers
	// cannot enqueue into a batch nobody will ever flush.
	walClosing bool
	// repl retains the recent WAL tail for followers (nil until
	// EnableReplication).
	repl *replState
	// watch is the ReplWatch broadcast channel (closed and replaced on
	// every logged mutation; nil until someone watches).
	watch chan struct{}

	// snapshotPath is the path Open loaded from; Snapshot to this path is
	// the WAL compaction point.
	snapshotPath string

	// failWrites, when non-nil, makes every mutation fail with the stored
	// error (wrapped as an internal fault). Fault-injection hook for the
	// HTTP sanitization audit; never set in production.
	failWrites atomic.Pointer[error]
}

// New returns an empty memory-only store. Equivalent to new(Store); provided
// for symmetry with Open.
func New() *Store { return &Store{} }

// shardIndex hashes (kind, key) onto a shard index.
func (s *Store) shardIndex(kind, key string) int {
	h := fnv.New32a()
	h.Write([]byte(kind))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return int(h.Sum32() & (shardCount - 1))
}

func (s *Store) shardFor(kind, key string) *shard {
	return &s.shards[s.shardIndex(kind, key)]
}

// lockAll acquires every shard lock in ascending order; unlock with
// unlockAll. Used by whole-store operations (snapshot, load, scans) that
// need a consistent view.
func (s *Store) lockAll(write bool) {
	for i := range s.shards {
		if write {
			s.shards[i].mu.Lock()
		} else {
			s.shards[i].mu.RLock()
		}
	}
}

func (s *Store) unlockAll(write bool) {
	for i := range s.shards {
		if write {
			s.shards[i].mu.Unlock()
		} else {
			s.shards[i].mu.RUnlock()
		}
	}
}

// logPut appends a put record to the WAL and replication tail (no-op for
// memory-only, non-replicating stores). Called with the owning shard lock
// held, so WAL order matches apply order for any single key.
func (s *Store) logPut(e Entity) error {
	return s.logMutation(opPut, e.Kind, e.Key, e.Version, e.Data)
}

// logDelete appends a delete record to the WAL and replication tail.
func (s *Store) logDelete(kind, key string) error {
	return s.logMutation(opDelete, kind, key, 0, nil)
}

// logMutation stamps one mutation with the next sequence number and makes
// it durable and visible to replication. For a WAL-backed store the record
// joins the open group-commit batch and the call blocks until the
// committer lands the whole batch (one write, one fsync for everyone in
// it); lastSeq — the offset TailSince serves from — only advances once the
// batch is on disk, so an acknowledged offset always names durable bytes.
// Memory-only replicating stores publish synchronously.
func (s *Store) logMutation(op, kind, key string, version int64, data json.RawMessage) error {
	if f := s.failWrites.Load(); f != nil {
		return internalFault(*f)
	}
	if s.wal == nil && s.repl == nil {
		return nil
	}
	s.walMu.Lock()
	if s.wal == nil {
		seq := s.nextSeq + 1
		s.nextSeq, s.lastSeq = seq, seq
		s.repl.push(core.ReplRecord{Seq: seq, Op: op, Kind: kind, Key: key, Version: version, Data: data})
		s.notifyLocked()
		s.walMu.Unlock()
		return nil
	}
	if s.walClosing || s.wal.isClosed() {
		s.walMu.Unlock()
		return internalFault(ErrClosed)
	}
	rec := walRecord{Seq: s.nextSeq + 1, Op: op, Kind: kind, Key: key, Version: version, Data: data}
	buf, err := encodeRecord(rec)
	if err != nil {
		s.walMu.Unlock()
		return internalFault(err)
	}
	s.nextSeq++
	b := s.enqueueLocked(buf, rec)
	s.walMu.Unlock()
	s.kickCommitter()
	<-b.done
	return internalFault(b.err)
}

// internalFault classifies a storage-layer failure as a server fault: the
// HTTP surface maps anything wrapping core.ErrInternalFault to a
// sanitized 500 instead of a caller-blaming 400 that would echo WAL
// paths back on the wire. errors.Is against the original error (e.g.
// ErrClosed) keeps working through the wrap.
func internalFault(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("store: %w: %w", core.ErrInternalFault, err)
}

// FailWrites injects err as the outcome of every subsequent mutation on
// this store (wrapped as an internal fault); nil clears the injection.
// Fault-injection hook for the sanitization audit — it proves that a
// disk-full WAL append cannot leak its path through any registered route.
func (s *Store) FailWrites(err error) {
	if err == nil {
		s.failWrites.Store(nil)
		return
	}
	s.failWrites.Store(&err)
}

// Put stores v under (kind, key), overwriting any existing entity and
// bumping its version. It returns the stored entity. For durable stores the
// write is on disk before Put returns.
func (s *Store) Put(kind, key string, v any) (Entity, error) {
	if kind == "" || key == "" {
		return Entity{}, ErrBadKey
	}
	data, err := json.Marshal(v)
	if err != nil {
		return Entity{}, fmt.Errorf("store: encode %s/%s: %w", kind, key, err)
	}
	sh := s.shardFor(kind, key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	k := sh.kindLocked(kind)
	e := Entity{Kind: kind, Key: key, Version: k[key].Version + 1, Data: data}
	if err := s.logPut(e); err != nil {
		return Entity{}, err
	}
	k[key] = e
	return e, nil
}

// PutIfVersion stores v only if the current version of (kind, key) equals
// version; version 0 means "must not exist". Returns ErrConflict otherwise.
func (s *Store) PutIfVersion(kind, key string, version int64, v any) (Entity, error) {
	if kind == "" || key == "" {
		return Entity{}, ErrBadKey
	}
	data, err := json.Marshal(v)
	if err != nil {
		return Entity{}, fmt.Errorf("store: encode %s/%s: %w", kind, key, err)
	}
	sh := s.shardFor(kind, key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	k := sh.kindLocked(kind)
	cur, exists := k[key]
	switch {
	case version == 0 && exists:
		return Entity{}, ErrConflict
	case version != 0 && (!exists || cur.Version != version):
		return Entity{}, ErrConflict
	}
	e := Entity{Kind: kind, Key: key, Version: cur.Version + 1, Data: data}
	if err := s.logPut(e); err != nil {
		return Entity{}, err
	}
	k[key] = e
	return e, nil
}

// Get retrieves (kind, key) and decodes it into v if v is non-nil.
func (s *Store) Get(kind, key string, v any) (Entity, error) {
	sh := s.shardFor(kind, key)
	sh.mu.RLock()
	e, ok := sh.kinds[kind][key]
	sh.mu.RUnlock()
	if !ok {
		return Entity{}, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	if v != nil {
		if err := e.Decode(v); err != nil {
			return Entity{}, err
		}
	}
	return e, nil
}

// Exists reports whether (kind, key) is present.
func (s *Store) Exists(kind, key string) bool {
	sh := s.shardFor(kind, key)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	_, ok := sh.kinds[kind][key]
	return ok
}

// Delete removes (kind, key). Deleting a missing entity returns ErrNotFound.
func (s *Store) Delete(kind, key string) error {
	sh := s.shardFor(kind, key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	k, ok := sh.kinds[kind]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	if _, ok := k[key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	if err := s.logDelete(kind, key); err != nil {
		return err
	}
	delete(k, key)
	return nil
}

// collect gathers entities of a kind matching keep (nil = all) across all
// shards under a consistent read view, sorted by key.
func (s *Store) collect(kind string, keep func(Entity) bool) []Entity {
	s.lockAll(false)
	var out []Entity
	for i := range s.shards {
		for _, e := range s.shards[i].kinds[kind] {
			if keep == nil || keep(e) {
				out = append(out, e)
			}
		}
	}
	s.unlockAll(false)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// List returns all entities of a kind, sorted by key for determinism.
func (s *Store) List(kind string) []Entity {
	return s.collect(kind, nil)
}

// ListPrefix returns all entities of a kind whose key starts with prefix,
// sorted by key. This is the index primitive the AM uses for realm-scoped
// lookups (keys are structured like "user/realm/resource").
func (s *Store) ListPrefix(kind, prefix string) []Entity {
	return s.collect(kind, func(e Entity) bool { return strings.HasPrefix(e.Key, prefix) })
}

// Query returns entities of a kind for which filter returns true, sorted by
// key. Filter runs under the read locks and must not call back into the
// store.
func (s *Store) Query(kind string, filter func(Entity) bool) []Entity {
	return s.collect(kind, filter)
}

// Count returns the number of entities of a kind.
func (s *Store) Count(kind string) int {
	n := 0
	s.lockAll(false)
	for i := range s.shards {
		n += len(s.shards[i].kinds[kind])
	}
	s.unlockAll(false)
	return n
}

// Kinds returns the sorted list of kinds with at least one entity.
func (s *Store) Kinds() []string {
	set := make(map[string]bool)
	s.lockAll(false)
	for i := range s.shards {
		for kind, m := range s.shards[i].kinds {
			if len(m) > 0 {
				set[kind] = true
			}
		}
	}
	s.unlockAll(false)
	out := make([]string, 0, len(set))
	for kind := range set {
		out = append(out, kind)
	}
	sort.Strings(out)
	return out
}

// Update atomically reads (kind, key), applies fn to the decoded old value,
// and writes the result back, retrying on concurrent modification. decode
// receives a pointer to decode into (may be ignored when the entity does
// not exist yet; fn then sees exists=false).
func (s *Store) Update(kind, key string, decode any, fn func(exists bool) (any, error)) (Entity, error) {
	for {
		var version int64
		e, err := s.Get(kind, key, nil)
		exists := err == nil
		if exists {
			version = e.Version
			if decode != nil {
				if err := e.Decode(decode); err != nil {
					return Entity{}, err
				}
			}
		} else if !errors.Is(err, ErrNotFound) {
			return Entity{}, err
		}
		next, err := fn(exists)
		if err != nil {
			return Entity{}, err
		}
		out, err := s.PutIfVersion(kind, key, version, next)
		if errors.Is(err, ErrConflict) {
			continue
		}
		return out, err
	}
}

// applyReplayed installs a replayed WAL record without re-logging it.
func (s *Store) applyReplayed(rec walRecord) {
	sh := s.shardFor(rec.Kind, rec.Key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	switch rec.Op {
	case opPut:
		sh.kindLocked(rec.Kind)[rec.Key] = Entity{
			Kind: rec.Kind, Key: rec.Key, Version: rec.Version, Data: rec.Data,
		}
	case opDelete:
		delete(sh.kinds[rec.Kind], rec.Key)
	}
}

// Durable reports whether the store is backed by a write-ahead log.
func (s *Store) Durable() bool { return s.wal != nil }

// WALSize returns the current size in bytes of the write-ahead log across
// all its segments (0 for memory-only stores). Useful for deciding when to
// compact.
func (s *Store) WALSize() int64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.totalSize()
}

// WALSegments returns the number of on-disk WAL segment files (0 for
// memory-only stores). Compaction deletes sealed segments, so a freshly
// compacted log is back to one.
func (s *Store) WALSegments() int {
	if s.wal == nil {
		return 0
	}
	return s.wal.segmentCount()
}

// Close drains the group-commit queue, then flushes and closes the
// write-ahead log. Subsequent writes return ErrClosed; reads keep working.
// Close is a no-op for memory-only stores and idempotent otherwise.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	s.walMu.Lock()
	already := s.walClosing
	s.walClosing = true
	s.walMu.Unlock()
	if !already {
		close(s.commitStop)
	}
	<-s.committerDone
	return s.wal.close()
}

// options configures Open.
type options struct {
	disableWAL bool
	walPath    string
	fsync      bool
	segLimit   int64
}

// Option customizes Open.
type Option func(*options)

// WithoutWAL opens the store without a write-ahead log: writes live in
// memory only between explicit Snapshot calls (the pre-WAL behaviour).
func WithoutWAL() Option { return func(o *options) { o.disableWAL = true } }

// WithWALPath roots the write-ahead log's segment files at an explicit
// path instead of the default "<snapshot path>.wal". Segments are named
// "<path>.000001", "<path>.000002", ….
func WithWALPath(path string) Option { return func(o *options) { o.walPath = path } }

// WithWALSegmentSize sets the byte threshold at which the active WAL
// segment is sealed and a fresh one opened (DefaultWALSegmentSize when
// unset or <= 0). Smaller segments mean compaction reclaims space in finer
// steps; the last batch before a roll may overshoot the limit.
func WithWALSegmentSize(n int64) Option { return func(o *options) { o.segLimit = n } }

// WithFsync fsyncs the write-ahead log after every append. Default is a
// plain write(2) per record, which survives process kills (the log lives in
// the page cache); enable this to also survive machine crashes, at a large
// per-write latency cost.
func WithFsync() Option { return func(o *options) { o.fsync = true } }

// Open loads the snapshot at path if it exists, then replays and attaches
// the write-ahead log beside it, so every subsequent write is durable.
// A torn or corrupt record at the WAL tail (a write in flight when the
// process died) is discarded; everything acknowledged before it is kept.
func Open(path string, opts ...Option) (*Store, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	s := New()
	s.snapshotPath = path
	if err := s.Load(path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	if o.disableWAL {
		return s, nil
	}
	walPath := o.walPath
	if walPath == "" {
		walPath = path + ".wal"
	}
	w, records, err := openWAL(walPath, o.fsync, o.segLimit)
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		// Pre-sequence-number logs carry Seq 0: number them as they replay.
		if rec.Seq == 0 {
			rec.Seq = s.lastSeq + 1
		}
		// A crash between snapshot rename and WAL truncation leaves records
		// the snapshot already contains; skip them instead of re-applying.
		if rec.Seq <= s.lastSeq {
			continue
		}
		s.applyReplayed(rec)
		s.lastSeq = rec.Seq
	}
	s.wal = w
	s.nextSeq = s.lastSeq
	s.commitKick = make(chan struct{}, 1)
	s.commitStop = make(chan struct{})
	s.committerDone = make(chan struct{})
	go s.committer()
	return s, nil
}
