package amclient

import (
	"fmt"

	"umac/internal/core"
)

// This file orchestrates a live owner migration between two shards of a
// sharded AM cluster: the owner's closure (pairings, realms, policies,
// links, groups, custodians, grants) is streamed from the losing shard to
// the gaining shard over the owner-scoped replication surface, writes
// landing on the losing shard during the copy are shipped continuously
// (the WAL-tail catch-up — the double-write window of the cutover), ring
// ownership is flipped via per-owner overrides, and a final drain picks up
// every write the losing shard acknowledged before the flip took effect.
// Zero acknowledged-write loss: a write either lands before the flip (and
// the drain ships it) or after (and the losing shard answers wrong_shard,
// so the client's chase re-routes it to the gaining shard).
//
// umacctl migrate-owner and the sim's cluster workload both drive this
// function; docs/OPERATIONS.md documents it as the 7-step migration drill.

// migrateTailBatch is the per-round record cap of the catch-up and drain
// tails.
const migrateTailBatch = 1024

// migrateMaxCatchup bounds the pre-cutover catch-up rounds: under a
// relentless write load the tail may never go empty, and correctness does
// not require it to — the post-cutover drain ships the remainder.
const migrateMaxCatchup = 64

// MigrateReport summarizes one live owner migration.
type MigrateReport struct {
	// Owner is the migrated owner.
	Owner core.UserID `json:"owner"`
	// FromShard and ToShard name the losing and gaining shards.
	FromShard string `json:"from_shard"`
	ToShard   string `json:"to_shard"`
	// SnapshotRecords counts the owner-closure records in the initial
	// scoped snapshot.
	SnapshotRecords int `json:"snapshot_records"`
	// CatchupRecords counts records shipped by the pre-cutover tail.
	CatchupRecords int `json:"catchup_records"`
	// DrainRecords counts records shipped by the post-cutover drain —
	// writes acknowledged by the losing shard while the flip propagated.
	DrainRecords int `json:"drain_records"`
}

// MigrateOwner moves owner from the shard behind src to the shard named
// toShard behind dst. Both clients need Config.ReplSecret (the migration
// surface's bearer auth). progress, when non-nil, receives one line per
// drill step. See the package comment above for the loss-freedom
// argument.
//
// MigrateOwner is the one-shot composition of the three resumable legs —
// MigrateCopy, MigrateCutover, MigrateDrain — which the rebalance
// coordinator drives individually so it can checkpoint between them and
// resume a killed migration at the right leg.
func MigrateOwner(src, dst *Client, owner core.UserID, toShard string, progress func(step int, msg string)) (MigrateReport, error) {
	rep, from, err := MigrateCopy(src, dst, owner, toShard, progress)
	if err != nil {
		return rep, err
	}
	if err := MigrateCutover(src, dst, owner, toShard, progress); err != nil {
		return rep, err
	}
	rep.DrainRecords, err = MigrateDrain(src, dst, owner, from, progress)
	return rep, err
}

// MigrateCopy is the migration's copy leg (drill steps 1–4): topology
// check, owner-scoped snapshot, snapshot import on the gaining shard, and
// the pre-cutover catch-up tail. It returns the source WAL offset the copy
// reached — the offset MigrateDrain must resume from, and the value a
// coordinator checkpoints before cutting over. The leg changes no
// ownership state: until MigrateCutover runs, the source keeps serving the
// owner, so re-running the whole leg after a crash is safe (the fresh
// snapshot supersedes the earlier import).
func MigrateCopy(src, dst *Client, owner core.UserID, toShard string, progress func(step int, msg string)) (MigrateReport, int64, error) {
	rep := MigrateReport{Owner: owner, ToShard: toShard}
	say := migrateSay(progress)

	// Step 1: confirm the topology — the target shard must exist on both
	// sides' rings, and dst must actually front it.
	srcInfo, err := src.ClusterInfo()
	if err != nil {
		return rep, 0, fmt.Errorf("amclient: migrate: source cluster info: %w", err)
	}
	dstInfo, err := dst.ClusterInfo()
	if err != nil {
		return rep, 0, fmt.Errorf("amclient: migrate: target cluster info: %w", err)
	}
	rep.FromShard = srcInfo.Shard
	if dstInfo.Shard != toShard {
		return rep, 0, fmt.Errorf("amclient: migrate: target node belongs to shard %q, not %q", dstInfo.Shard, toShard)
	}
	if srcInfo.Shard == toShard {
		return rep, 0, fmt.Errorf("amclient: migrate: owner already targeted at shard %q", toShard)
	}
	say(1, "topology confirmed: %s → %s", srcInfo.Shard, toShard)

	// Step 2: owner-scoped snapshot from the losing shard.
	snap, err := src.ReplicationSnapshotScoped(owner)
	if err != nil {
		return rep, 0, fmt.Errorf("amclient: migrate: scoped snapshot: %w", err)
	}
	rep.SnapshotRecords = len(snap.Records)
	say(2, "snapshot captured: %d records at seq %d", len(snap.Records), snap.Seq)

	// Step 3: install the snapshot on the gaining shard.
	if _, err := dst.ClusterImport(snap.Records); err != nil {
		return rep, 0, fmt.Errorf("amclient: migrate: import snapshot: %w", err)
	}
	say(3, "snapshot imported")

	// Step 4: catch-up — ship owner writes that landed during the copy,
	// until a round comes back empty (or the bound trips; the drain covers
	// the rest either way).
	from := snap.Seq
	for round := 0; round < migrateMaxCatchup; round++ {
		page, err := src.ReplicationTailScoped(owner, from, migrateTailBatch)
		if err != nil {
			return rep, from, fmt.Errorf("amclient: migrate: catch-up tail: %w", err)
		}
		if len(page.Records) > 0 {
			if _, err := dst.ClusterImport(page.Records); err != nil {
				return rep, from, fmt.Errorf("amclient: migrate: import catch-up: %w", err)
			}
			rep.CatchupRecords += len(page.Records)
		}
		caughtUp := len(page.Records) == 0 && page.LastSeq == from
		from = page.LastSeq
		if caughtUp {
			break
		}
	}
	say(4, "caught up: %d records shipped, offset %d", rep.CatchupRecords, from)
	return rep, from, nil
}

// MigrateCutover is the migration's ownership flip (drill steps 5–6):
// pin the owner to toShard on the gaining shard, then on the losing
// shard. Both writes are idempotent overwrites of the same override, so
// re-running the leg after a crash converges to the same state.
func MigrateCutover(src, dst *Client, owner core.UserID, toShard string, progress func(step int, msg string)) error {
	say := migrateSay(progress)

	// Step 5: the gaining shard starts accepting the owner (its hash ring
	// would otherwise still disclaim it). From here until step 6 both
	// shards accept the owner — the double-write window; writes still
	// landing at the source are shipped by the drain.
	if err := dst.SetOwnerShard(owner, toShard); err != nil {
		return fmt.Errorf("amclient: migrate: pin owner on target: %w", err)
	}
	say(5, "target accepts %s", owner)

	// Step 6: cutover — the losing shard stops serving the owner; every
	// subsequent decision or write there answers wrong_shard with the
	// gaining shard as the hint.
	if err := src.SetOwnerShard(owner, toShard); err != nil {
		return fmt.Errorf("amclient: migrate: flip owner on source: %w", err)
	}
	say(6, "cutover: source now answers wrong_shard for %s", owner)
	return nil
}

// MigrateDrain is the migration's final leg (drill step 7): ship
// everything the source acknowledged before the cutover became visible,
// starting at the offset MigrateCopy returned (or a checkpoint of it).
// Re-running from the same offset re-imports the same records — idempotent
// puts — so a crashed drain restarts safely.
func MigrateDrain(src, dst *Client, owner core.UserID, from int64, progress func(step int, msg string)) (int, error) {
	say := migrateSay(progress)

	// Two consecutive empty rounds mean no owner record appeared between
	// two scans of the source WAL, at which point nothing more can arrive
	// (the gate is closed).
	drained, empty := 0, 0
	for empty < 2 {
		page, err := src.ReplicationTailScoped(owner, from, migrateTailBatch)
		if err != nil {
			return drained, fmt.Errorf("amclient: migrate: drain tail: %w", err)
		}
		if len(page.Records) > 0 {
			if _, err := dst.ClusterImport(page.Records); err != nil {
				return drained, fmt.Errorf("amclient: migrate: import drain: %w", err)
			}
			drained += len(page.Records)
			empty = 0
		} else {
			empty++
		}
		from = page.LastSeq
	}
	say(7, "drained: %d records; migration complete", drained)
	return drained, nil
}

// migrateSay adapts the optional progress callback into a printf-shaped
// helper shared by the migration legs.
func migrateSay(progress func(step int, msg string)) func(step int, format string, args ...any) {
	return func(step int, format string, args ...any) {
		if progress != nil {
			progress(step, fmt.Sprintf(format, args...))
		}
	}
}
