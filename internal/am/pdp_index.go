package am

import (
	"encoding/json"
	"strings"
	"sync"

	"umac/internal/core"
	"umac/internal/policy"
)

// This file is the AM's compiled decision index: a cache from link keys
// (the same owner/realm and owner/host/resource keys the PAP stores link
// records under) to compiled policies, consulted by the decision path
// before any store scan. Entries are filled lazily on first use and
// dropped by exactly the scoped-invalidation events the PAP already
// computes for Host cache pushes — a policy edit on one realm recompiles
// that realm's entry and nothing else. Negative results (no policy linked,
// or a dangling link) are cached too, so repeated queries against
// unprotected resources stay off the store.
//
// Staleness discipline: unlike Host decision caches there is no TTL
// backstop here, so every mutation that can change what a link key
// resolves to MUST reach invalidate/applyRecord/reset. The hooks are:
// pushInvalidation (every PAP mutation), the follower replication apply
// (syncOnce), bootstrap/snapshot install (reset), and the cluster
// migration import (applyImported).

// decisionIndex caches compiled policies by link key.
type decisionIndex struct {
	mu sync.RWMutex
	// gen maps linkGenKey(owner, realm) to the realm's compiled general
	// policy; spec maps linkSpecKey(owner, host, resource) likewise. A
	// present nil value is a negative entry: the lookup ran and found no
	// (resolvable) policy.
	gen  map[string]*policy.CompiledPolicy
	spec map[string]*policy.CompiledPolicy
	// ver counts invalidations. Lazy fills capture it before resolving
	// from the store and only insert if it is unchanged, so a fill racing
	// an invalidation can never install a stale entry over the drop.
	ver uint64
}

func newDecisionIndex() *decisionIndex {
	return &decisionIndex{
		gen:  make(map[string]*policy.CompiledPolicy),
		spec: make(map[string]*policy.CompiledPolicy),
	}
}

// lookup returns the cached entry (which may be a negative nil), whether
// one was present, and the version to pass back to store on a miss.
func (ix *decisionIndex) lookup(m map[string]*policy.CompiledPolicy, key string) (*policy.CompiledPolicy, bool, uint64) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	c, ok := m[key]
	return c, ok, ix.ver
}

// store installs a freshly resolved entry unless an invalidation ran since
// the version was captured (the resolve may then have read stale state).
func (ix *decisionIndex) store(m map[string]*policy.CompiledPolicy, key string, c *policy.CompiledPolicy, ver uint64) {
	ix.mu.Lock()
	if ix.ver == ver {
		m[key] = c
	}
	ix.mu.Unlock()
}

func (ix *decisionIndex) lookupGeneral(key string) (*policy.CompiledPolicy, bool, uint64) {
	return ix.lookup(ix.gen, key)
}

func (ix *decisionIndex) lookupSpecific(key string) (*policy.CompiledPolicy, bool, uint64) {
	return ix.lookup(ix.spec, key)
}

func (ix *decisionIndex) storeGeneral(key string, c *policy.CompiledPolicy, ver uint64) {
	ix.store(ix.gen, key, c, ver)
}

func (ix *decisionIndex) storeSpecific(key string, c *policy.CompiledPolicy, ver uint64) {
	ix.store(ix.spec, key, c, ver)
}

// invalidate drops the entries a PAP mutation can have affected, mirroring
// the scope contract of pushInvalidation: realms name general entries,
// resources name specific entries (across all hosts — the push does not
// carry the host), and an empty scope means everything of owner's.
func (ix *decisionIndex) invalidate(owner core.UserID, realms []core.RealmID, resources []core.ResourceID) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.ver++
	if len(realms) == 0 && len(resources) == 0 {
		ix.dropOwnerLocked(owner)
		return
	}
	for _, realm := range realms {
		delete(ix.gen, linkGenKey(owner, realm))
	}
	if len(resources) == 0 {
		return
	}
	// Specific keys are owner/host/resource and the resource itself may
	// contain '/', so match by prefix and suffix rather than splitting.
	prefix := string(owner) + "/"
	for _, res := range resources {
		suffix := "/" + string(res)
		for key := range ix.spec {
			if strings.HasPrefix(key, prefix) && strings.HasSuffix(key, suffix) {
				delete(ix.spec, key)
			}
		}
	}
}

func (ix *decisionIndex) dropOwnerLocked(owner core.UserID) {
	prefix := string(owner) + "/"
	for key := range ix.gen {
		if strings.HasPrefix(key, prefix) {
			delete(ix.gen, key)
		}
	}
	for key := range ix.spec {
		if strings.HasPrefix(key, prefix) {
			delete(ix.spec, key)
		}
	}
}

// reset drops everything — the bootstrap path, where the whole store was
// just replaced underneath the index.
func (ix *decisionIndex) reset() {
	ix.mu.Lock()
	ix.ver++
	ix.gen = make(map[string]*policy.CompiledPolicy)
	ix.spec = make(map[string]*policy.CompiledPolicy)
	ix.mu.Unlock()
}

// applyRecord is the invalidation hook for records that arrive from
// outside the local PAP path (follower replication apply, cluster
// migration import): it drops whatever the record can have changed. Group
// records are ignored on purpose — membership is resolved live through
// the GroupResolver, so they never affect compiled structure.
func (ix *decisionIndex) applyRecord(rec core.ReplRecord) {
	switch rec.Kind {
	case kindLinkGen:
		ix.mu.Lock()
		ix.ver++
		delete(ix.gen, rec.Key)
		ix.mu.Unlock()
	case kindLinkSpec:
		ix.mu.Lock()
		ix.ver++
		delete(ix.spec, rec.Key)
		ix.mu.Unlock()
	case kindPolicy:
		// The record key is the policy ID, not a link key; without the
		// reverse link mapping the safe scope is the owner. A delete (or
		// an undecodable payload) does not name the owner at all, so it
		// falls back to a full reset.
		if rec.Op == core.ReplOpPut {
			var p policy.Policy
			if json.Unmarshal(rec.Data, &p) == nil && p.Owner != "" {
				ix.mu.Lock()
				ix.ver++
				ix.dropOwnerLocked(p.Owner)
				ix.mu.Unlock()
				return
			}
		}
		ix.reset()
	}
}

// compiledGeneral resolves the realm's compiled general policy through the
// index, filling it on miss.
func (a *AM) compiledGeneral(owner core.UserID, realm core.RealmID) *policy.CompiledPolicy {
	key := linkGenKey(owner, realm)
	c, ok, ver := a.index.lookupGeneral(key)
	if ok {
		return c
	}
	c = policy.Compile(a.generalPolicyFor(owner, realm))
	a.index.storeGeneral(key, c, ver)
	return c
}

// compiledSpecific resolves a resource's compiled specific policy through
// the index, filling it on miss.
func (a *AM) compiledSpecific(owner core.UserID, host core.HostID, res core.ResourceID) *policy.CompiledPolicy {
	key := linkSpecKey(owner, host, res)
	c, ok, ver := a.index.lookupSpecific(key)
	if ok {
		return c
	}
	c = policy.Compile(a.specificPolicyFor(owner, host, res))
	a.index.storeSpecific(key, c, ver)
	return c
}
