package webutil

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"umac/internal/core"
)

func TestRequestIDGeneratedAndEchoed(t *testing.T) {
	var seen string
	h := RequestID(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen = RequestIDFrom(r.Context())
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if seen == "" || rec.Header().Get(RequestIDHeader) != seen {
		t.Fatalf("ctx=%q header=%q", seen, rec.Header().Get(RequestIDHeader))
	}

	// A sane inbound ID is honoured…
	req := httptest.NewRequest("GET", "/x", nil)
	req.Header.Set(RequestIDHeader, "req-from-proxy")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seen != "req-from-proxy" {
		t.Fatalf("inbound id dropped: %q", seen)
	}

	// …an oversized or non-printable one is replaced.
	for _, bad := range []string{strings.Repeat("x", 65), "evil\nheader"} {
		req = httptest.NewRequest("GET", "/x", nil)
		req.Header.Set(RequestIDHeader, bad)
		h.ServeHTTP(httptest.NewRecorder(), req)
		if seen == bad {
			t.Fatalf("bad inbound id %q accepted", bad)
		}
	}
}

func TestRecoverWritesStructured500(t *testing.T) {
	h := RequestID(Recover(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/x", nil))
	if rec.Code != 500 {
		t.Fatalf("status = %d", rec.Code)
	}
	var e struct {
		Code      string `json:"code"`
		Retryable bool   `json:"retryable"`
		RequestID string `json:"request_id"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatal(err)
	}
	if e.Code != core.CodeInternal || !e.Retryable || e.RequestID == "" {
		t.Fatalf("envelope = %+v", e)
	}
}

func TestMetricsCountsByRouteAndClass(t *testing.T) {
	m := NewMetrics()
	okH := m.Instrument("GET /v1/a", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi")) // implicit 200
	}))
	errH := m.Instrument("GET /v1/b", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(404)
	}))
	for i := 0; i < 3; i++ {
		okH.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/a", nil))
	}
	errH.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/b", nil))

	snap := m.Snapshot()
	if snap.Requests != 4 {
		t.Fatalf("requests = %d", snap.Requests)
	}
	a := snap.Routes["GET /v1/a"]
	if a.Count != 3 || a.Status["2xx"] != 3 {
		t.Fatalf("a = %+v", a)
	}
	b := snap.Routes["GET /v1/b"]
	if b.Count != 1 || b.Status["4xx"] != 1 {
		t.Fatalf("b = %+v", b)
	}
}

// TestMetricsCountsPanics asserts a panicking handler is still accounted
// (as 5xx) even though the panic unwinds through the instrumentation to
// the outer Recover middleware.
func TestMetricsCountsPanics(t *testing.T) {
	m := NewMetrics()
	h := Recover(m.Instrument("GET /v1/boom", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("boom")
	})))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/boom", nil))
	if rec.Code != 500 {
		t.Fatalf("status = %d", rec.Code)
	}
	rs := m.Snapshot().Routes["GET /v1/boom"]
	if rs.Count != 1 || rs.Status["5xx"] != 1 {
		t.Fatalf("snapshot = %+v", rs)
	}
}

func TestWritePageFrames(t *testing.T) {
	rec := httptest.NewRecorder()
	WritePage(rec, 200, []int{1, 2, 3, 4, 5}, 5, 1, 2)
	if rec.Header().Get(HeaderTotalCount) != "5" || rec.Header().Get(HeaderNextOffset) != "3" {
		t.Fatalf("headers = %v", rec.Header())
	}
	var page []int
	if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
		t.Fatal(err)
	}
	if len(page) != 2 || page[0] != 2 {
		t.Fatalf("page = %v", page)
	}

	// Past-the-end offset → empty array, no next-offset header.
	rec = httptest.NewRecorder()
	WritePage(rec, 200, []int{1}, 1, 9, 10)
	if strings.TrimSpace(rec.Body.String()) != "[]" || rec.Header().Get(HeaderNextOffset) != "" {
		t.Fatalf("past-end body=%q next=%q", rec.Body.String(), rec.Header().Get(HeaderNextOffset))
	}
}
