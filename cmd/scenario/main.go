// Command scenario is the experiment driver: it executes the paper-derived
// experiments E9 (protocol-model comparison) and E10 (consolidated audit)
// on the in-process deployment and prints the tables recorded in
// EXPERIMENTS.md. Timing-oriented experiments (E1-E8, E11-E12) live in the
// testing.B harness (go test -bench).
//
// Usage:
//
//	scenario [-resources 20] [-sweep 1,2,5,10,20]
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"umac"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
	"umac/internal/sim"
)

func main() {
	var (
		resources = flag.Int("resources", 20, "resources in the workload realm")
		sweepStr  = flag.String("sweep", "1,2,5,10,20", "accesses-per-resource sweep")
	)
	flag.Parse()
	var sweep []int
	for _, s := range strings.Split(*sweepStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			log.Fatalf("scenario: bad sweep value %q", s)
		}
		sweep = append(sweep, n)
	}

	fmt.Println("Experiment E9 — AM round-trips per protocol model")
	fmt.Printf("workload: alice reads %d resources k times each\n\n", *resources)
	fmt.Printf("%-12s %8s %10s %14s %12s\n", "model", "k", "accesses", "AM-roundtrips", "per-access")
	for _, k := range sweep {
		results, err := sim.RunComparison(*resources, k)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range results {
			if r.Permitted != r.Accesses {
				log.Fatalf("scenario: model %s permitted %d/%d", r.Model, r.Permitted, r.Accesses)
			}
			fmt.Printf("%-12s %8d %10d %14d %12.3f\n",
				r.Model, k, r.Accesses, r.AMRoundTrips, r.PerAccess)
		}
		fmt.Println()
	}

	fmt.Println("Administration burden (shortcoming S1): share R resources on H hosts with F friends")
	fmt.Printf("%-28s %12s %12s\n", "scenario (H hosts,R res,F fr)", "per-app ACL", "UMAC ops")
	for _, tc := range [][3]int{{1, 10, 2}, {3, 10, 2}, {3, 50, 5}, {5, 200, 20}} {
		b := sim.ComputeAdminBurden(tc[0], tc[1], tc[2])
		fmt.Printf("H=%-3d R=%-5d F=%-16d %12d %12d\n", tc[0], tc[1], tc[2], b.LocalACLGrants, b.UMACOperations)
	}
	fmt.Println()

	fmt.Println("Experiment E10 — consolidated audit vs per-Host pull")
	runAuditExperiment()
}

// runAuditExperiment measures the R4 claim: auditing N hosts' access
// history takes one AM query under UMAC versus one query per host without.
func runAuditExperiment() {
	world := sim.NewWorld()
	defer world.Close()
	const hosts = 5
	bob := sim.NewUserAgent("bob")
	var hostApps []*sim.SimpleHost
	for i := 0; i < hosts; i++ {
		h := world.AddHost(core.HostID(fmt.Sprintf("host-%d", i)))
		h.AddResource("bob", "stuff", "r", []byte("x"))
		if err := bob.PairHost(h, world.AMServer.URL); err != nil {
			log.Fatal(err)
		}
		if err := h.Enforcer.Protect("bob", "stuff", nil, ""); err != nil {
			log.Fatal(err)
		}
		hostApps = append(hostApps, h)
	}
	p, err := world.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := world.AM.LinkGeneral("bob", "stuff", p.ID); err != nil {
		log.Fatal(err)
	}
	client := requester.New(requester.Config{ID: "friend-app", Subject: "carol"})
	accesses := 0
	for _, h := range hostApps {
		for j := 0; j < 4; j++ {
			if _, err := client.Fetch(h.ResourceURL("r"), umac.ActionRead); err != nil {
				log.Fatal(err)
			}
			accesses++
		}
	}
	s := world.AM.Audit().Summarize("bob")
	fmt.Printf("workload: %d accesses across %d hosts\n", accesses, hosts)
	fmt.Printf("consolidated view: 1 AM query sees %d hosts, %d decisions (%d permit)\n",
		len(s.Hosts), s.PermitCount+s.DenyCount, s.PermitCount)
	fmt.Printf("without an AM:     %d per-host log pulls would be required (one per application)\n", hosts)
}
