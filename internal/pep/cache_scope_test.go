package pep

import (
	"fmt"
	"testing"
	"time"

	"umac/internal/core"
)

func scopedKey(i int) (string, EntryScope) {
	res := core.ResourceID(fmt.Sprintf("res-%04d", i))
	return cacheKey("tok", res, core.ActionRead), EntryScope{Owner: "bob", Realm: "travel", Resource: res}
}

// TestDecisionCacheCapacityEviction: the cache is bounded — under capacity
// pressure it evicts rather than grows, preferring the least recently used
// entries, and fresh inserts always land.
func TestDecisionCacheCapacityEviction(t *testing.T) {
	const capacity = cacheShards * 4
	c := NewDecisionCacheCap(capacity)
	for i := 0; i < capacity*4; i++ {
		key, sc := scopedKey(i)
		c.PutScoped(key, sc, true, 600)
	}
	if n := c.Len(); n > capacity {
		t.Fatalf("len = %d after overfill, want <= %d", n, capacity)
	}
	if c.Evictions() == 0 {
		t.Fatal("no evictions recorded under capacity pressure")
	}
	// The most recent insert must still be resident.
	key, _ := scopedKey(capacity*4 - 1)
	if _, ok := c.Get(key); !ok {
		t.Fatal("most recent entry was evicted")
	}
}

// TestDecisionCacheLRUOrder: within one shard, touching an entry protects
// it from the next eviction.
func TestDecisionCacheLRUOrder(t *testing.T) {
	c := NewDecisionCacheCap(cacheShards) // one entry per shard
	keyA, scA := scopedKey(1)
	c.PutScoped(keyA, scA, true, 600)
	if _, ok := c.Get(keyA); !ok {
		t.Fatal("A missing immediately after put")
	}
	// Find a key landing in A's shard; inserting it must evict A (cap 1).
	shardA := c.shardFor(keyA)
	for i := 2; ; i++ {
		keyB, scB := scopedKey(i)
		if c.shardFor(keyB) != shardA {
			continue
		}
		c.PutScoped(keyB, scB, true, 600)
		if _, ok := c.Get(keyA); ok {
			t.Fatal("LRU entry survived over-capacity insert into its shard")
		}
		if _, ok := c.Get(keyB); !ok {
			t.Fatal("new entry not resident after eviction")
		}
		return
	}
}

// TestDecisionCacheExpiredDeletedOnRead: reading an expired entry removes
// it immediately (no accumulation until the next full invalidation), and
// Len never counts stale entries.
func TestDecisionCacheExpiredDeletedOnRead(t *testing.T) {
	c := NewDecisionCache()
	base := time.Now()
	now := base
	c.SetClock(func() time.Time { return now })
	key, sc := scopedKey(1)
	c.PutScoped(key, sc, true, 10)
	keep, sc2 := scopedKey(2)
	c.PutScoped(keep, sc2, true, 3600)

	now = base.Add(11 * time.Second)
	if n := c.Len(); n != 1 {
		t.Fatalf("Len = %d with one stale entry, want 1 (fresh only)", n)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("stale entry served")
	}
	// The read reaped it: resetting the clock does not resurrect it.
	now = base
	if _, ok := c.Get(key); ok {
		t.Fatal("expired entry not deleted on read")
	}
	if _, ok := c.Get(keep); !ok {
		t.Fatal("fresh entry lost")
	}
}

// TestDecisionCacheSweep: Sweep reaps every expired entry in one pass.
func TestDecisionCacheSweep(t *testing.T) {
	c := NewDecisionCache()
	base := time.Now()
	now := base
	c.SetClock(func() time.Time { return now })
	for i := 0; i < 100; i++ {
		key, sc := scopedKey(i)
		ttl := 10
		if i%2 == 0 {
			ttl = 3600
		}
		c.PutScoped(key, sc, true, ttl)
	}
	now = base.Add(time.Minute)
	if removed := c.Sweep(); removed != 50 {
		t.Fatalf("Sweep removed %d, want 50", removed)
	}
	if n := c.Len(); n != 50 {
		t.Fatalf("Len after sweep = %d, want 50", n)
	}
}

// TestDecisionCacheScopedInvalidation: scoped eviction matches by owner +
// realm/resource and leaves everything else resident.
func TestDecisionCacheScopedInvalidation(t *testing.T) {
	c := NewDecisionCache()
	put := func(owner core.UserID, realm core.RealmID, res core.ResourceID) string {
		key := cacheKey("tok", res, core.ActionRead)
		c.PutScoped(key, EntryScope{Owner: owner, Realm: realm, Resource: res}, true, 600)
		return key
	}
	bobTravel := put("bob", "travel", "photo-1")
	bobWork := put("bob", "work", "doc-1")
	bobShared := put("bob", "misc", "shared-res")
	carol := put("carol", "travel", "photo-9")

	// Realm-scoped: only bob's travel entry goes.
	if n := c.InvalidateScope(Scope{Owner: "bob", Realms: []core.RealmID{"travel"}}); n != 1 {
		t.Fatalf("realm-scoped evicted %d, want 1", n)
	}
	for key, want := range map[string]bool{bobTravel: false, bobWork: true, bobShared: true, carol: true} {
		if _, ok := c.Get(key); ok != want {
			t.Fatalf("entry %q resident=%v, want %v", key[:8], ok, want)
		}
	}

	// Resource-scoped: only the named resource goes.
	if n := c.InvalidateScope(Scope{Owner: "bob", Resources: []core.ResourceID{"shared-res"}}); n != 1 {
		t.Fatalf("resource-scoped evicted %d, want 1", n)
	}
	if _, ok := c.Get(bobShared); ok {
		t.Fatal("resource-scoped entry survived")
	}
	if _, ok := c.Get(bobWork); !ok {
		t.Fatal("unrelated entry evicted by resource scope")
	}

	// Owner-wide (empty scope lists): all of bob's go, carol's stays.
	if n := c.InvalidateScope(Scope{Owner: "bob"}); n != 1 {
		t.Fatalf("owner-wide evicted %d, want 1 (only bobWork left)", n)
	}
	if _, ok := c.Get(carol); !ok {
		t.Fatal("other owner's entry evicted")
	}
}

// TestPutScopedAtDroppedAfterInvalidation: a decision-query response that
// was in flight when an invalidation ran must not be written back — the
// write is dropped when the captured generation is stale, whichever
// invalidation flavour bumped it.
func TestPutScopedAtDroppedAfterInvalidation(t *testing.T) {
	c := NewDecisionCache()
	key, sc := scopedKey(1)

	gen := c.Gen()
	c.InvalidateScope(Scope{Owner: "someone-else"})
	c.PutScopedAt(gen, key, sc, true, 600)
	if _, ok := c.Get(key); ok {
		t.Fatal("stale fill survived a scoped invalidation")
	}

	gen = c.Gen()
	c.Invalidate()
	c.PutScopedAt(gen, key, sc, true, 600)
	if _, ok := c.Get(key); ok {
		t.Fatal("stale fill survived a full invalidation")
	}

	// A fill with a current generation lands normally.
	c.PutScopedAt(c.Gen(), key, sc, true, 600)
	if _, ok := c.Get(key); !ok {
		t.Fatal("fresh fill dropped")
	}
}

// TestDecisionCacheScopedDisabled: with scoping switched off (the
// benchmark baseline), InvalidateScope degrades to drop-all.
func TestDecisionCacheScopedDisabled(t *testing.T) {
	c := NewDecisionCache()
	key1, sc1 := scopedKey(1)
	c.PutScoped(key1, sc1, true, 600)
	c.PutScoped(cacheKey("tok", "other", core.ActionRead),
		EntryScope{Owner: "carol", Realm: "r", Resource: "other"}, true, 600)
	c.SetScopedInvalidation(false)
	c.InvalidateScope(Scope{Owner: "bob", Realms: []core.RealmID{"travel"}})
	if n := c.Len(); n != 0 {
		t.Fatalf("drop-all mode left %d entries", n)
	}
}
