package amclient

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"umac/internal/audit"
	"umac/internal/core"
	"umac/internal/policy"
)

// This file wraps the session-authenticated management surface: policies,
// links, groups, custodians, audit, consents, pairings, and the
// operational probes. All calls act as Config.User; pass owner to operate
// on another user's state as their custodian (empty owner = the actor).

// --- Policies ---

// ListPolicies returns one page of owner's policies.
func (c *Client) ListPolicies(owner core.UserID, page Page) ([]policy.Policy, error) {
	var out []policy.Policy
	err := c.get("/policies", page.apply(ownerQuery(owner)), &out)
	return out, err
}

// CreatePolicy stores a policy (owner defaults to the acting user) and
// returns it with the server-assigned ID.
func (c *Client) CreatePolicy(p policy.Policy) (policy.Policy, error) {
	var created policy.Policy
	err := c.do(http.MethodPost, "/policies", nil, p, &created)
	return created, err
}

// GetPolicy fetches one policy by ID.
func (c *Client) GetPolicy(id core.PolicyID) (policy.Policy, error) {
	var p policy.Policy
	err := c.get("/policies/"+url.PathEscape(string(id)), nil, &p)
	return p, err
}

// UpdatePolicy replaces the policy with p.ID.
func (c *Client) UpdatePolicy(p policy.Policy) error {
	return c.do(http.MethodPut, "/policies/"+url.PathEscape(string(p.ID)), nil, p, nil)
}

// DeletePolicy removes a policy; links to it dangle deny-biased.
func (c *Client) DeletePolicy(id core.PolicyID) error {
	return c.do(http.MethodDelete, "/policies/"+url.PathEscape(string(id)), nil, nil, nil)
}

// ExportPolicies streams owner's serialized policy set ("json" or "xml")
// to w.
func (c *Client) ExportPolicies(w io.Writer, owner core.UserID, format string) error {
	q := ownerQuery(owner)
	q.Set("format", format)
	req, err := c.newRequest(c.BaseURL(), http.MethodGet, "/policies/export", q, nil, "")
	if err != nil {
		return err
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return fmt.Errorf("amclient: GET /policies/export: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// ImportPolicies pushes a serialized policy set from r into owner's
// account, returning how many policies were imported.
func (c *Client) ImportPolicies(r io.Reader, owner core.UserID, format string) (int, error) {
	q := ownerQuery(owner)
	q.Set("format", format)
	var out struct {
		Imported int `json:"imported"`
	}
	err := c.doRaw(http.MethodPost, "/policies/import", q, r, "", &out)
	return out.Imported, err
}

// --- Links ---

// LinkGeneral binds a general policy to a realm across every Host where
// the realm is registered.
func (c *Client) LinkGeneral(owner core.UserID, realm core.RealmID, pid core.PolicyID) error {
	return c.do(http.MethodPost, "/links/general", nil,
		core.LinkGeneralRequest{Owner: owner, Realm: realm, Policy: pid}, nil)
}

// UnlinkGeneral removes a realm's general-policy link.
func (c *Client) UnlinkGeneral(owner core.UserID, realm core.RealmID) error {
	q := ownerQuery(owner)
	q.Set(core.ParamRealm, string(realm))
	return c.do(http.MethodDelete, "/links/general", q, nil, nil)
}

// LinkSpecific binds a specific policy to one resource.
func (c *Client) LinkSpecific(owner core.UserID, host core.HostID, res core.ResourceID, pid core.PolicyID) error {
	return c.do(http.MethodPost, "/links/specific", nil,
		core.LinkSpecificRequest{Owner: owner, Host: host, Resource: res, Policy: pid}, nil)
}

// UnlinkSpecific removes a resource's specific-policy link.
func (c *Client) UnlinkSpecific(owner core.UserID, host core.HostID, res core.ResourceID) error {
	q := ownerQuery(owner)
	q.Set(core.ParamHost, string(host))
	q.Set(core.ParamResource, string(res))
	return c.do(http.MethodDelete, "/links/specific", q, nil, nil)
}

// --- Groups and custodians ---

// Groups lists owner's group names.
func (c *Client) Groups(owner core.UserID) ([]string, error) {
	var out []string
	err := c.get("/groups", ownerQuery(owner), &out)
	return out, err
}

// GroupMembers lists one group's members.
func (c *Client) GroupMembers(owner core.UserID, group string) ([]core.UserID, error) {
	var out []core.UserID
	err := c.get("/groups/"+url.PathEscape(group)+"/members", ownerQuery(owner), &out)
	return out, err
}

// AddGroupMember adds user to owner's group, returning the updated
// member list.
func (c *Client) AddGroupMember(owner core.UserID, group string, user core.UserID) ([]core.UserID, error) {
	var out []core.UserID
	err := c.do(http.MethodPost, "/groups/"+url.PathEscape(group)+"/members", nil,
		core.GroupMemberRequest{Owner: owner, User: user}, &out)
	return out, err
}

// RemoveGroupMember removes user from owner's group.
func (c *Client) RemoveGroupMember(owner core.UserID, group string, user core.UserID) error {
	return c.do(http.MethodDelete,
		"/groups/"+url.PathEscape(group)+"/members/"+url.PathEscape(string(user)),
		ownerQuery(owner), nil, nil)
}

// Custodians lists owner's custodians.
func (c *Client) Custodians(owner core.UserID) ([]core.UserID, error) {
	var out []core.UserID
	err := c.get("/custodians", ownerQuery(owner), &out)
	return out, err
}

// AddCustodian appoints a custodian for the acting user (only the owner
// themselves may appoint), returning the updated list.
func (c *Client) AddCustodian(custodian core.UserID) ([]core.UserID, error) {
	var out []core.UserID
	err := c.do(http.MethodPost, "/custodians", nil,
		core.CustodianRequest{Custodian: custodian}, &out)
	return out, err
}

// RemoveCustodian removes one of the acting user's custodians.
func (c *Client) RemoveCustodian(custodian core.UserID) error {
	return c.do(http.MethodDelete, "/custodians/"+url.PathEscape(string(custodian)), nil, nil, nil)
}

// --- Audit ---

// AuditFilter narrows an audit query; zero-valued fields match everything.
type AuditFilter struct {
	Owner     core.UserID
	Host      core.HostID
	Realm     core.RealmID
	Requester core.RequesterID
	Type      audit.EventType
}

func (f AuditFilter) query() url.Values {
	q := ownerQuery(f.Owner)
	if f.Host != "" {
		q.Set(core.ParamHost, string(f.Host))
	}
	if f.Realm != "" {
		q.Set(core.ParamRealm, string(f.Realm))
	}
	if f.Requester != "" {
		q.Set(core.ParamRequester, string(f.Requester))
	}
	if f.Type != "" {
		q.Set("type", string(f.Type))
	}
	return q
}

// Audit returns one page of the consolidated audit view.
func (c *Client) Audit(f AuditFilter, page Page) ([]audit.Event, error) {
	var out []audit.Event
	err := c.get("/audit", page.apply(f.query()), &out)
	return out, err
}

// PageFrame is the pagination frame a list route reports in its
// X-Total-Count / X-Next-Offset response headers.
type PageFrame struct {
	// Total is the pre-windowing size of the filtered set.
	Total int
	// NextOffset is the offset of the next page, -1 when this page
	// exhausted the listing.
	NextOffset int
}

// parsePageFrame reads the pagination headers of a list response.
func parsePageFrame(hdr http.Header) (PageFrame, error) {
	frame := PageFrame{NextOffset: -1}
	if raw := hdr.Get("X-Total-Count"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return frame, fmt.Errorf("amclient: bad X-Total-Count %q", raw)
		}
		frame.Total = n
	}
	if raw := hdr.Get("X-Next-Offset"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil {
			return frame, fmt.Errorf("amclient: bad X-Next-Offset %q", raw)
		}
		frame.NextOffset = n
	}
	return frame, nil
}

// AuditPage returns one page of the consolidated audit view together with
// its pagination frame, so callers can walk the full set by following
// NextOffset (the offset-based framing the PR 3 pagination fix pinned
// down).
func (c *Client) AuditPage(f AuditFilter, page Page) ([]audit.Event, PageFrame, error) {
	var out []audit.Event
	var hdr http.Header
	if err := c.doRawHdr(http.MethodGet, "/audit", page.apply(f.query()), nil, "", &out, &hdr); err != nil {
		return nil, PageFrame{NextOffset: -1}, err
	}
	frame, err := parsePageFrame(hdr)
	return out, frame, err
}

// AuditSummary returns the one-pass consolidated summary for owner.
func (c *Client) AuditSummary(owner core.UserID) (audit.Summary, error) {
	var out audit.Summary
	err := c.get("/audit/summary", ownerQuery(owner), &out)
	return out, err
}

// --- Consents ---

// Consents lists owner's unresolved consent tickets, oldest first.
func (c *Client) Consents(owner core.UserID, page Page) ([]core.ConsentStatus, error) {
	var out []core.ConsentStatus
	err := c.get("/consents", page.apply(ownerQuery(owner)), &out)
	return out, err
}

// ResolveConsent approves or denies a pending consent ticket.
func (c *Client) ResolveConsent(ticket string, approve bool) error {
	return c.do(http.MethodPost, "/consents/"+url.PathEscape(ticket), nil,
		core.ConsentResolveRequest{Approve: approve}, nil)
}

// --- Pairings ---

// Pairings lists owner's Host pairings (secrets always redacted).
func (c *Client) Pairings(owner core.UserID, page Page) ([]core.PairingInfo, error) {
	var out []core.PairingInfo
	err := c.get("/pairings", page.apply(ownerQuery(owner)), &out)
	return out, err
}

// RevokePairing severs a pairing: the Host's signed calls stop verifying
// immediately. Unknown IDs are a not_paired APIError. The canonical form
// is DELETE /v1/pairings/{id}; in Legacy mode the pre-v1
// POST /pairings/{id}/revoke alias is used instead.
func (c *Client) RevokePairing(id string) error {
	if c.cfg.Legacy {
		return c.do(http.MethodPost, "/pairings/"+url.PathEscape(id)+"/revoke", nil,
			struct{}{}, nil)
	}
	return c.do(http.MethodDelete, "/pairings/"+url.PathEscape(id), nil, nil, nil)
}

// --- Operational ---

// Healthz fetches the AM's health report.
func (c *Client) Healthz() (core.HealthStatus, error) {
	var h core.HealthStatus
	err := c.get("/healthz", nil, &h)
	return h, err
}

// Ready reports whether the AM is accepting new traffic (readyz probe).
// A draining AM returns (false, nil); transport failures return an error.
func (c *Client) Ready() (bool, error) {
	err := c.get("/readyz", nil, nil)
	if err == nil {
		return true, nil
	}
	var ae *core.APIError
	if errors.As(err, &ae) && ae.Code == core.CodeUnavailable {
		return false, nil
	}
	return false, err
}
