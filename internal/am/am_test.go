package am

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"umac/internal/audit"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/store"
)

// newTestAM builds an AM with an outbox notifier and returns both.
func newTestAM(t *testing.T) (*AM, *Outbox) {
	t.Helper()
	outbox := &Outbox{}
	a := New(Config{Name: "testam", BaseURL: "http://am.test", Notifier: outbox})
	return a, outbox
}

// pairHost runs the Fig. 3 flow directly against the AM core.
func pairHost(t *testing.T, a *AM, host core.HostID, user core.UserID) core.PairingResponse {
	t.Helper()
	code, err := a.ApprovePairing(core.PairingRequest{
		Host: host, HostName: string(host), HostURL: "http://" + string(host), User: user,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.ExchangeCode(code, host)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// protectRealm registers a realm under a pairing.
func protectRealm(t *testing.T, a *AM, pairingID string, realm core.RealmID, resources ...core.ResourceID) {
	t.Helper()
	_, err := a.RegisterRealm(pairingID, core.ProtectRequest{Realm: realm, Resources: resources})
	if err != nil {
		t.Fatal(err)
	}
}

// friendsReadPolicy creates and links a general policy permitting the
// owner's "friends" group to read.
func friendsReadPolicy(t *testing.T, a *AM, owner core.UserID, realm core.RealmID) core.PolicyID {
	t.Helper()
	p, err := a.CreatePolicy(owner, policy.Policy{
		Owner: owner, Name: "friends-read", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}, {Type: policy.SubjectOwner}},
			Actions:  []core.Action{core.ActionRead, core.ActionList},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.LinkGeneral(owner, realm, p.ID); err != nil {
		t.Fatal(err)
	}
	return p.ID
}

func TestPairingFlow(t *testing.T) {
	a, _ := newTestAM(t)
	resp := pairHost(t, a, "webpics", "bob")
	if resp.PairingID == "" || resp.Secret == "" {
		t.Fatalf("incomplete pairing: %+v", resp)
	}
	if resp.User != "bob" || resp.AM != "http://am.test" {
		t.Fatalf("pairing metadata: %+v", resp)
	}
	secret, ok := a.PairingSecret(resp.PairingID)
	if !ok || secret != resp.Secret {
		t.Fatal("PairingSecret mismatch")
	}
	p, err := a.GetPairing(resp.PairingID)
	if err != nil || p.Host != "webpics" || p.Scope != core.PairingScopeUser {
		t.Fatalf("pairing = %+v err=%v", p, err)
	}
}

func TestExchangeCodeSingleUse(t *testing.T) {
	a, _ := newTestAM(t)
	code, _ := a.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if _, err := a.ExchangeCode(code, "webpics"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.ExchangeCode(code, "webpics"); err == nil {
		t.Fatal("code exchanged twice")
	}
}

func TestExchangeCodeHostMismatch(t *testing.T) {
	a, _ := newTestAM(t)
	code, _ := a.ApprovePairing(core.PairingRequest{Host: "webpics", User: "bob"})
	if _, err := a.ExchangeCode(code, "evilhost"); err == nil {
		t.Fatal("code exchanged by wrong host")
	}
	// Consumed: the rightful host cannot use it any more either.
	if _, err := a.ExchangeCode(code, "webpics"); err == nil {
		t.Fatal("code survived mismatch attempt")
	}
}

func TestApprovePairingValidation(t *testing.T) {
	a, _ := newTestAM(t)
	if _, err := a.ApprovePairing(core.PairingRequest{User: "bob"}); err == nil {
		t.Fatal("pairing without host accepted")
	}
	if _, err := a.ApprovePairing(core.PairingRequest{Host: "h"}); err == nil {
		t.Fatal("pairing without user accepted")
	}
}

func TestRevokePairing(t *testing.T) {
	a, _ := newTestAM(t)
	resp := pairHost(t, a, "webpics", "bob")
	if err := a.RevokePairing(resp.PairingID); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.PairingSecret(resp.PairingID); ok {
		t.Fatal("revoked pairing still verifies")
	}
	if err := a.RevokePairing("pair-ghost"); err == nil {
		t.Fatal("revoked nonexistent pairing")
	}
}

func TestPairingsList(t *testing.T) {
	a, _ := newTestAM(t)
	pairHost(t, a, "webpics", "bob")
	pairHost(t, a, "webdocs", "bob")
	pairHost(t, a, "webpics", "alice")
	if got := len(a.Pairings("bob")); got != 2 {
		t.Fatalf("bob pairings = %d", got)
	}
	if got := len(a.Pairings("alice")); got != 1 {
		t.Fatalf("alice pairings = %d", got)
	}
}

func TestRegisterRealmAndLookup(t *testing.T) {
	a, _ := newTestAM(t)
	resp := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, resp.PairingID, "travel", "photo-1", "photo-2")
	r, err := a.LookupRealm("webpics", "travel")
	if err != nil {
		t.Fatal(err)
	}
	if r.Owner != "bob" || len(r.Resources) != 2 {
		t.Fatalf("realm = %+v", r)
	}
	if _, err := a.LookupRealm("webpics", "nope"); !errors.Is(err, core.ErrUnknownRealm) {
		t.Fatalf("err = %v", err)
	}
}

func TestRegisterRealmRequiresRealm(t *testing.T) {
	a, _ := newTestAM(t)
	resp := pairHost(t, a, "webpics", "bob")
	if _, err := a.RegisterRealm(resp.PairingID, core.ProtectRequest{}); err == nil {
		t.Fatal("empty realm accepted")
	}
	if _, err := a.RegisterRealm("pair-bogus", core.ProtectRequest{Realm: "x"}); err == nil {
		t.Fatal("unknown pairing accepted")
	}
}

func TestPolicyCRUD(t *testing.T) {
	a, _ := newTestAM(t)
	p, err := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Name: "x", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.ID == "" {
		t.Fatal("no ID assigned")
	}
	got, err := a.GetPolicy(p.ID)
	if err != nil || got.Name != "x" {
		t.Fatalf("get: %+v %v", got, err)
	}

	got.Name = "renamed"
	if err := a.UpdatePolicy("bob", got); err != nil {
		t.Fatal(err)
	}
	got, _ = a.GetPolicy(p.ID)
	if got.Name != "renamed" {
		t.Fatal("update lost")
	}

	if n := len(a.ListPolicies("bob")); n != 1 {
		t.Fatalf("list = %d", n)
	}
	if err := a.DeletePolicy("bob", p.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := a.GetPolicy(p.ID); err == nil {
		t.Fatal("policy survived delete")
	}
}

func TestPolicyManagementAuthorization(t *testing.T) {
	a, _ := newTestAM(t)
	p, err := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Mallory cannot create, update or delete bob's policies.
	if _, err := a.CreatePolicy("mallory", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	}); err == nil {
		t.Fatal("mallory created bob's policy")
	}
	if err := a.UpdatePolicy("mallory", p); err == nil {
		t.Fatal("mallory updated bob's policy")
	}
	if err := a.DeletePolicy("mallory", p.ID); err == nil {
		t.Fatal("mallory deleted bob's policy")
	}
}

func TestCustodianCanManage(t *testing.T) {
	a, _ := newTestAM(t)
	if a.CanManage("bob", "carol") {
		t.Fatal("non-custodian can manage")
	}
	if err := a.AddCustodian("bob", "carol"); err != nil {
		t.Fatal(err)
	}
	if !a.CanManage("bob", "carol") {
		t.Fatal("custodian cannot manage")
	}
	// Custodian composes a policy for bob.
	p, err := a.CreatePolicy("carol", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Owner != "bob" {
		t.Fatalf("owner = %s", p.Owner)
	}
	if err := a.RemoveCustodian("bob", "carol"); err != nil {
		t.Fatal(err)
	}
	if a.CanManage("bob", "carol") {
		t.Fatal("removed custodian can still manage")
	}
	// Idempotent add.
	a.AddCustodian("bob", "dave")
	a.AddCustodian("bob", "dave")
	if got := a.Custodians("bob"); len(got) != 1 {
		t.Fatalf("custodians = %v", got)
	}
}

func TestLinkValidation(t *testing.T) {
	a, _ := newTestAM(t)
	gen, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	spec, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindSpecific,
		Rules: []policy.Rule{{Effect: policy.EffectDeny, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	// Kind mismatches rejected.
	if err := a.LinkGeneral("bob", "travel", spec.ID); err == nil {
		t.Fatal("linked specific policy as general")
	}
	if err := a.LinkSpecific("bob", "webpics", "p1", gen.ID); err == nil {
		t.Fatal("linked general policy as specific")
	}
	// Ownership enforced.
	if err := a.LinkGeneral("alice", "travel", gen.ID); err == nil {
		t.Fatal("linked someone else's policy")
	}
	// Unknown policy rejected.
	if err := a.LinkGeneral("bob", "travel", "pol-ghost"); err == nil {
		t.Fatal("linked unknown policy")
	}
	// Valid links succeed and unlink works.
	if err := a.LinkGeneral("bob", "travel", gen.ID); err != nil {
		t.Fatal(err)
	}
	if err := a.LinkSpecific("bob", "webpics", "p1", spec.ID); err != nil {
		t.Fatal(err)
	}
	if err := a.UnlinkGeneral("bob", "travel"); err != nil {
		t.Fatal(err)
	}
	if err := a.UnlinkSpecific("bob", "webpics", "p1"); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsPersistAcrossRestart(t *testing.T) {
	st := store.New()
	a := New(Config{Name: "am1", Store: st})
	if err := a.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	if err := a.AddGroupMember("bob", "bob", "friends", "chris"); err != nil {
		t.Fatal(err)
	}
	// Rebuild an AM over the same store — the directory must be rebuilt.
	a2 := New(Config{Name: "am2", Store: st})
	if got := a2.GroupMembers("bob", "friends"); len(got) != 2 {
		t.Fatalf("members after restart = %v", got)
	}
	if !a2.groups.Member("bob", "friends", "alice") {
		t.Fatal("membership lost")
	}
	// Removal persists too.
	if err := a2.RemoveGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	a3 := New(Config{Name: "am3", Store: st})
	if a3.groups.Member("bob", "friends", "alice") {
		t.Fatal("removed member survived restart")
	}
}

func TestGroupManagementAuthorization(t *testing.T) {
	a, _ := newTestAM(t)
	if err := a.AddGroupMember("mallory", "bob", "friends", "mallory"); err == nil {
		t.Fatal("mallory edited bob's groups")
	}
	if err := a.AddGroupMember("bob", "bob", "", "alice"); err == nil {
		t.Fatal("empty group name accepted")
	}
}

// setupProtected wires the standard fixture: bob pairs webpics, protects
// realm "travel" containing photo-1, and links a friends-read policy.
// Returns the pairing.
func setupProtected(t *testing.T, a *AM) core.PairingResponse {
	t.Helper()
	resp := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, resp.PairingID, "travel", "photo-1")
	friendsReadPolicy(t, a, "bob", "travel")
	if err := a.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestIssueTokenPermit(t *testing.T) {
	a, _ := newTestAM(t)
	setupProtected(t, a)
	resp, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Token == "" || resp.Pending() {
		t.Fatalf("resp = %+v", resp)
	}
	if resp.Realm != "travel" {
		t.Fatalf("realm = %s", resp.Realm)
	}
}

func TestIssueTokenDeny(t *testing.T) {
	a, _ := newTestAM(t)
	setupProtected(t, a)
	_, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "mallory", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("err = %v", err)
	}
	// The refusal is audited.
	events := a.Audit().Query(audit.Filter{Owner: "bob", Type: audit.EventTokenRefused})
	if len(events) != 1 {
		t.Fatalf("refusal events = %d", len(events))
	}
}

func TestIssueTokenUnknownRealm(t *testing.T) {
	a, _ := newTestAM(t)
	setupProtected(t, a)
	_, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "ghosts", Resource: "photo-1", Action: core.ActionRead,
	})
	if !errors.Is(err, core.ErrUnknownRealm) {
		t.Fatalf("err = %v", err)
	}
}

func TestIssueTokenNoPolicyLinkedDenies(t *testing.T) {
	a, _ := newTestAM(t)
	resp := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, resp.PairingID, "bare")
	_, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "bare", Resource: "r1", Action: core.ActionRead,
	})
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("deny-biased default violated: %v", err)
	}
}

func TestDecideFullPath(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	tok, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := a.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo-1",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Permit() {
		t.Fatalf("decision = %+v", dec)
	}
	if dec.CacheTTLSeconds != int(DefaultDecisionCacheTTL/time.Second) {
		t.Fatalf("ttl = %d", dec.CacheTTLSeconds)
	}
	// A decision audit event exists.
	if n := len(a.Audit().Query(audit.Filter{Owner: "bob", Type: audit.EventDecision})); n != 1 {
		t.Fatalf("decision events = %d", n)
	}
}

func TestDecideDenyForWrongAction(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	tok, _ := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	dec, err := a.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo-1",
		Action: core.ActionDelete, Token: tok.Token, // policy only grants read/list
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Permit() {
		t.Fatal("delete permitted by read-only policy")
	}
}

func TestDecideRejectsGarbageToken(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	dec, err := a.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo-1",
		Action: core.ActionRead, Token: "garbage",
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Permit() {
		t.Fatal("garbage token permitted")
	}
	if dec.CacheTTLSeconds != 0 {
		t.Fatal("token-problem denials must not be cacheable")
	}
}

func TestDecideRejectsCrossRealmToken(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	// Protect a second realm with an open policy and mint a token for it.
	protectRealm(t, a, pairing.PairingID, "public", "pub-1")
	open, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	a.LinkGeneral("bob", "public", open.ID)
	tok, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "mallory", Host: "webpics",
		Realm: "public", Resource: "pub-1", Action: core.ActionRead,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Use the public-realm token against the protected travel realm.
	dec, err := a.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo-1",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.Permit() {
		t.Fatal("cross-realm token accepted — violates Section V.B.3 binding")
	}
}

func TestDecidePairingHostMismatch(t *testing.T) {
	a, _ := newTestAM(t)
	setupProtected(t, a)
	other := pairHost(t, a, "webdocs", "bob")
	tok, _ := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	// webdocs' pairing cannot query for webpics.
	if _, err := a.Decide(other.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo-1",
		Action: core.ActionRead, Token: tok.Token,
	}); err == nil {
		t.Fatal("cross-host decision query accepted")
	}
}

func TestDecideCacheTTLFromPolicy(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, pairing.PairingID, "travel", "photo-1")
	p, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral, CacheTTLSeconds: -1, // never cache
		Rules: []policy.Rule{{Effect: policy.EffectPermit, Subjects: []policy.Subject{{Type: policy.SubjectEveryone}}}},
	})
	a.LinkGeneral("bob", "travel", p.ID)
	tok, _ := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	dec, err := a.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "travel", Resource: "photo-1",
		Action: core.ActionRead, Token: tok.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if dec.CacheTTLSeconds != 0 {
		t.Fatalf("no-cache policy got ttl %d", dec.CacheTTLSeconds)
	}
}

func TestConsentFlow(t *testing.T) {
	a, outbox := newTestAM(t)
	pairing := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, pairing.PairingID, "private", "diary")
	p, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
		}},
	})
	a.LinkGeneral("bob", "private", p.ID)

	req := core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "private", Resource: "diary", Action: core.ActionRead,
	}
	resp, err := a.IssueToken(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Pending() || resp.PendingConsent == "" {
		t.Fatalf("expected pending consent: %+v", resp)
	}
	// The owner was notified out-of-band.
	if msgs := outbox.Messages("bob"); len(msgs) != 1 || !strings.Contains(msgs[0].Body, resp.PendingConsent) {
		t.Fatalf("outbox = %+v", msgs)
	}
	// The ticket is listed as pending.
	if pending := a.PendingConsents("bob"); len(pending) != 1 || pending[0].Ticket != resp.PendingConsent {
		t.Fatalf("pending = %+v", pending)
	}
	// Polling before resolution: unresolved.
	st, err := a.ConsentStatus(resp.PendingConsent)
	if err != nil || st.Resolved {
		t.Fatalf("status = %+v err=%v", st, err)
	}
	// Mallory cannot resolve bob's ticket.
	if err := a.ResolveConsent("mallory", resp.PendingConsent, true); err == nil {
		t.Fatal("mallory resolved bob's consent")
	}
	// Bob approves; requester polls and receives the token.
	if err := a.ResolveConsent("bob", resp.PendingConsent, true); err != nil {
		t.Fatal(err)
	}
	st, err = a.ConsentStatus(resp.PendingConsent)
	if err != nil || !st.Resolved || !st.Approved || st.Token == "" {
		t.Fatalf("status = %+v err=%v", st, err)
	}
	// Ticket consumed after token collection.
	if _, err := a.ConsentStatus(resp.PendingConsent); err == nil {
		t.Fatal("ticket survived collection")
	}
	// The consented token passes decision queries.
	dec, err := a.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "private", Resource: "diary",
		Action: core.ActionRead, Token: st.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Permit() {
		t.Fatalf("consented token denied: %+v", dec)
	}
}

func TestConsentDenied(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, pairing.PairingID, "private", "diary")
	p, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireConsent}},
		}},
	})
	a.LinkGeneral("bob", "private", p.ID)
	resp, _ := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "private", Resource: "diary", Action: core.ActionRead,
	})
	if err := a.ResolveConsent("bob", resp.PendingConsent, false); err != nil {
		t.Fatal(err)
	}
	st, err := a.ConsentStatus(resp.PendingConsent)
	if err != nil || !st.Resolved || st.Approved || st.Token != "" {
		t.Fatalf("status = %+v err=%v", st, err)
	}
	// Double resolution rejected.
	if err := a.ResolveConsent("bob", resp.PendingConsent, true); err == nil {
		t.Fatal("resolved twice")
	}
}

func TestTermsFlow(t *testing.T) {
	a, _ := newTestAM(t)
	pairing := pairHost(t, a, "webpics", "bob")
	protectRealm(t, a, pairing.PairingID, "shop", "print-1")
	p, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:     policy.EffectPermit,
			Subjects:   []policy.Subject{{Type: policy.SubjectEveryone}},
			Conditions: []policy.Condition{{Type: policy.CondRequireClaim, Claim: "payment"}},
		}},
	})
	a.LinkGeneral("bob", "shop", p.ID)

	req := core.TokenRequest{
		Requester: "printshop", Subject: "alice", Host: "webpics",
		Realm: "shop", Resource: "print-1", Action: core.ActionRead,
	}
	resp, err := a.IssueToken(req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Pending() || len(resp.RequiredTerms) != 1 || resp.RequiredTerms[0] != "payment" {
		t.Fatalf("resp = %+v", resp)
	}
	// Retry with the claim → token.
	req.Claims = map[string]string{"payment": "rcpt-42"}
	resp, err = a.IssueToken(req)
	if err != nil || resp.Token == "" {
		t.Fatalf("resp=%+v err=%v", resp, err)
	}
	// The decision path re-evaluates with the stored grant claims.
	dec, err := a.Decide(pairing.PairingID, core.DecisionQuery{
		Host: "webpics", Realm: "shop", Resource: "print-1",
		Action: core.ActionRead, Token: resp.Token,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Permit() {
		t.Fatalf("paid token denied: %+v", dec)
	}
}

func TestImportExportThroughAM(t *testing.T) {
	a, _ := newTestAM(t)
	friendsReadPolicyNoLink(t, a, "bob")
	var buf bytes.Buffer
	if err := a.ExportPolicies(&buf, "bob", policy.FormatJSON); err != nil {
		t.Fatal(err)
	}
	n, err := a.ImportPolicies("alice", "alice", bytes.NewReader(buf.Bytes()), policy.FormatJSON)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("imported = %d", n)
	}
	// Imported policies are re-owned by the importer.
	got := a.ListPolicies("alice")
	if len(got) != 1 || got[0].Owner != "alice" {
		t.Fatalf("alice policies = %+v", got)
	}
	// Import authorization enforced.
	if _, err := a.ImportPolicies("mallory", "bob", bytes.NewReader(buf.Bytes()), policy.FormatJSON); err == nil {
		t.Fatal("mallory imported into bob's account")
	}
}

func friendsReadPolicyNoLink(t *testing.T, a *AM, owner core.UserID) core.PolicyID {
	t.Helper()
	p, err := a.CreatePolicy(owner, policy.Policy{
		Owner: owner, Name: "friends-read", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p.ID
}

func TestSpecificPolicyRefinementViaAM(t *testing.T) {
	// End-to-end check of the two-stage semantics through AM plumbing: the
	// general policy permits friends, a specific policy on photo-1 denies
	// alice explicitly.
	a, _ := newTestAM(t)
	pairing := setupProtected(t, a)
	spec, _ := a.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindSpecific,
		Rules: []policy.Rule{{
			Effect:   policy.EffectDeny,
			Subjects: []policy.Subject{{Type: policy.SubjectUser, Name: "alice"}},
		}},
	})
	if err := a.LinkSpecific("bob", "webpics", "photo-1", spec.ID); err != nil {
		t.Fatal(err)
	}
	_, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "alice", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	if !errors.Is(err, core.ErrAccessDenied) {
		t.Fatalf("specific deny ignored: %v", err)
	}
	// Another friend without the specific deny still gets a token.
	a.AddGroupMember("bob", "bob", "friends", "chris")
	tok, err := a.IssueToken(core.TokenRequest{
		Requester: "browser", Subject: "chris", Host: "webpics",
		Realm: "travel", Resource: "photo-1", Action: core.ActionRead,
	})
	if err != nil || tok.Token == "" {
		t.Fatalf("chris denied: %v", err)
	}
	_ = pairing
}
