// Paidaccess demonstrates the terms/claims extension (Sections V.D, VII):
// "a User would be able to use a popular online gallery service to sell
// photos even if such service did not provide such functionality
// initially." The gallery Host knows nothing about payments — the AM
// demands a payment-confirmation claim before issuing a token.
//
// Run with: go run ./examples/paidaccess
package main

import (
	"errors"
	"fmt"
	"log"

	"umac"
	"umac/internal/audit"
	"umac/internal/requester"
	"umac/internal/sim"
)

func main() {
	world := sim.NewWorld()
	defer world.Close()
	gallery := world.AddHost("webgallery")
	gallery.AddResource("bob", "shop", "print-001.png", []byte("high-resolution print #001"))

	bob := sim.NewUserAgent("bob")
	if err := bob.PairHost(gallery, world.AMServer.URL); err != nil {
		log.Fatal(err)
	}
	if err := gallery.Enforcer.Protect("bob", "shop", []umac.ResourceID{"print-001.png"}, ""); err != nil {
		log.Fatal(err)
	}

	// The selling policy: anyone may download after presenting a payment
	// confirmation claim. The gallery application needs no payment code.
	policies, err := umac.ParsePolicies("bob", `
policy "sell-prints" general {
  permit everyone read if claim payment
}`)
	if err != nil {
		log.Fatal(err)
	}
	p, err := world.AM.CreatePolicy("bob", policies[0])
	if err != nil {
		log.Fatal(err)
	}
	if err := world.AM.LinkGeneral("bob", "shop", p.ID); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Bob put print-001.png on sale via his AM (gallery has no payment feature)")

	// A customer without payment: the AM answers with the required terms.
	customer := umac.NewRequester(umac.RequesterConfig{ID: "print-kiosk", Subject: "carol"})
	_, err = customer.Fetch(gallery.ResourceURL("print-001.png"), umac.ActionRead)
	var terms *requester.TermsError
	if errors.As(err, &terms) {
		fmt.Println("AM demands terms before issuing a token:", terms.Terms)
	} else {
		log.Fatalf("expected terms error, got %v", err)
	}

	// The customer pays (out of band) and retries with the receipt claim.
	fmt.Println("carol pays; the payment processor issues receipt rcpt-7781")
	customer.SetClaim("payment", "rcpt-7781")
	body, err := customer.Fetch(gallery.ResourceURL("print-001.png"), umac.ActionRead)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("carol downloaded %d bytes after satisfying the payment term\n", len(body))

	// The sale is visible in Bob's consolidated audit.
	events := world.AM.Audit().Query(audit.Filter{Owner: "bob", Type: audit.EventTokenIssued})
	for _, e := range events {
		fmt.Printf("audit: token issued to %s for %s/%s\n", e.Requester, e.Realm, e.Resource)
	}
}
