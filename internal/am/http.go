package am

import (
	"errors"
	"fmt"
	"html"
	"net/http"
	"net/url"
	"strings"

	"umac/internal/audit"
	"umac/internal/core"
	"umac/internal/httpsig"
	"umac/internal/policy"
	"umac/internal/webutil"
)

// Handler returns the AM's HTTP API:
//
//	Browser-facing (authenticated via Config.Auth):
//	  GET    /pair/confirm            Fig. 3 user-consent leg
//	  GET    /compose                 Fig. 4 policy-composition page
//	  CRUD   /policies, /policies/{id}, /policies/export, /policies/import
//	  POST   /links/general, /links/specific (+ DELETE)
//	  CRUD   /groups/{group}/members, /custodians
//	  GET    /audit, /audit/summary
//	  GET    /consents, POST /consents/{ticket}
//	  GET    /pairings, POST /pairings/{id}/revoke
//
//	Requester-facing (unauthenticated; Fig. 5):
//	  POST   /token
//	  GET    /token/status
//
//	Host-facing (HMAC-signed with the pairing secret; Figs. 3/4/6):
//	  POST   /api/pair/exchange       (one-time code, pre-secret: unsigned)
//	  POST   /api/protect
//	  POST   /api/decision
//	  POST   /api/decision/batch
//
//	See docs/PROTOCOL.md for the full request/response reference.
func (a *AM) Handler() http.Handler {
	verifier := httpsig.NewVerifier(a)
	mux := http.NewServeMux()

	// --- Host-facing API ---
	mux.HandleFunc("POST /api/pair/exchange", a.handlePairExchange)
	mux.Handle("POST /api/protect", a.signed(verifier, a.handleProtect))
	mux.Handle("POST /api/decision", a.signed(verifier, a.handleDecision))
	mux.Handle("POST /api/decision/batch", a.signed(verifier, a.handleDecisionBatch))
	mux.Handle("POST /api/decision/pull", a.signed(verifier, a.handlePullDecision))
	mux.Handle("POST /api/decision/state", a.signed(verifier, a.handleStateDecision))

	// --- Requester-facing ---
	mux.HandleFunc("POST /token", a.handleToken)
	mux.HandleFunc("GET /token/status", a.handleTokenStatus)
	mux.HandleFunc("POST /state", a.handleEstablishState)

	// --- Browser-facing ---
	mux.Handle("GET /pair/confirm", a.authed(a.handlePairConfirm))
	mux.Handle("GET /compose", a.authed(a.handleComposePage))

	mux.Handle("GET /policies", a.authed(a.handlePolicyList))
	mux.Handle("POST /policies", a.authed(a.handlePolicyCreate))
	mux.Handle("GET /policies/export", a.authed(a.handlePolicyExport))
	mux.Handle("POST /policies/import", a.authed(a.handlePolicyImport))
	mux.Handle("GET /policies/{id}", a.authed(a.handlePolicyGet))
	mux.Handle("PUT /policies/{id}", a.authed(a.handlePolicyUpdate))
	mux.Handle("DELETE /policies/{id}", a.authed(a.handlePolicyDelete))

	mux.Handle("POST /links/general", a.authed(a.handleLinkGeneral))
	mux.Handle("POST /links/specific", a.authed(a.handleLinkSpecific))
	mux.Handle("DELETE /links/general", a.authed(a.handleUnlinkGeneral))
	mux.Handle("DELETE /links/specific", a.authed(a.handleUnlinkSpecific))

	mux.Handle("GET /groups", a.authed(a.handleGroupList))
	mux.Handle("GET /groups/{group}/members", a.authed(a.handleGroupMembers))
	mux.Handle("POST /groups/{group}/members", a.authed(a.handleGroupAdd))
	mux.Handle("DELETE /groups/{group}/members/{user}", a.authed(a.handleGroupRemove))

	mux.Handle("GET /custodians", a.authed(a.handleCustodianList))
	mux.Handle("POST /custodians", a.authed(a.handleCustodianAdd))
	mux.Handle("DELETE /custodians/{user}", a.authed(a.handleCustodianRemove))

	mux.Handle("GET /audit", a.authed(a.handleAudit))
	mux.Handle("GET /audit/summary", a.authed(a.handleAuditSummary))

	mux.Handle("GET /consents", a.authed(a.handleConsentList))
	mux.Handle("POST /consents/{ticket}", a.authed(a.handleConsentResolve))

	mux.Handle("GET /pairings", a.authed(a.handlePairingList))
	mux.Handle("POST /pairings/{id}/revoke", a.authed(a.handlePairingRevoke))

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		webutil.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok", "am": a.name})
	})
	return mux
}

// authedHandler receives the authenticated actor.
type authedHandler func(w http.ResponseWriter, r *http.Request, actor core.UserID)

// authed wraps browser endpoints with authentication.
func (a *AM) authed(h authedHandler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		actor, ok := a.auth.Authenticate(r)
		if !ok {
			webutil.WriteErrorf(w, http.StatusUnauthorized, "authentication required")
			return
		}
		h(w, r, actor)
	})
}

// signed wraps Host-facing endpoints with HMAC channel verification; the
// handler receives the authenticated pairing ID.
func (a *AM) signed(v *httpsig.Verifier, h func(w http.ResponseWriter, r *http.Request, pairingID string)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		pairingID, err := v.Verify(r)
		if err != nil {
			status := http.StatusUnauthorized
			if errors.Is(err, httpsig.ErrReplay) {
				status = http.StatusConflict
			}
			webutil.WriteError(w, status, err)
			return
		}
		h(w, r, pairingID)
	})
}

// ownerParam resolves the owner an actor is operating on: the explicit
// ?owner= query value, defaulting to the actor. Management rights are
// verified.
func (a *AM) ownerParam(r *http.Request, actor core.UserID) (core.UserID, error) {
	owner := core.UserID(r.FormValue("owner"))
	if owner == "" {
		owner = actor
	}
	if !a.CanManage(owner, actor) {
		return "", fmt.Errorf("am: %s may not manage %s", actor, owner)
	}
	return owner, nil
}

// --- Pairing handlers ---

func (a *AM) handlePairConfirm(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	q := r.URL.Query()
	req := core.PairingRequest{
		Host:     core.HostID(q.Get(core.ParamHost)),
		HostName: q.Get("host_name"),
		HostURL:  q.Get("host_url"),
		User:     actor,
	}
	switch q.Get("scope") {
	case "application":
		req.Scope = core.PairingScopeApplication
	case "resources":
		req.Scope = core.PairingScopeResources
		for _, res := range q[core.ParamResource] {
			req.Resources = append(req.Resources, core.ResourceID(res))
		}
	default:
		req.Scope = core.PairingScopeUser
	}
	returnTo := q.Get(core.ParamReturnTo)
	code, err := a.ApprovePairing(req)
	if err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if returnTo == "" {
		webutil.WriteJSON(w, http.StatusOK, map[string]string{"code": code})
		return
	}
	u, err := url.Parse(returnTo)
	if err != nil {
		webutil.WriteErrorf(w, http.StatusBadRequest, "bad return_to")
		return
	}
	uq := u.Query()
	uq.Set("code", code)
	u.RawQuery = uq.Encode()
	http.Redirect(w, r, u.String(), http.StatusFound)
}

type pairExchangeRequest struct {
	Code string      `json:"code"`
	Host core.HostID `json:"host"`
}

func (a *AM) handlePairExchange(w http.ResponseWriter, r *http.Request) {
	var req pairExchangeRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.ExchangeCode(req.Code, req.Host)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

func (a *AM) handlePairingList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	pairings := a.Pairings(owner)
	// Never leak channel secrets through the listing API.
	for i := range pairings {
		pairings[i].Secret = ""
	}
	webutil.WriteJSON(w, http.StatusOK, pairings)
}

func (a *AM) handlePairingRevoke(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	id := r.PathValue("id")
	p, err := a.GetPairing(id)
	if err != nil {
		webutil.WriteError(w, http.StatusNotFound, err)
		return
	}
	if !a.CanManage(p.User, actor) {
		webutil.WriteErrorf(w, http.StatusForbidden, "am: %s may not revoke pairing of %s", actor, p.User)
		return
	}
	if err := a.RevokePairing(id); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{"revoked": id})
}

// --- Host API handlers ---

func (a *AM) handleProtect(w http.ResponseWriter, r *http.Request, pairingID string) {
	var req core.ProtectRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.RegisterRealm(pairingID, req)
	if err != nil {
		webutil.WriteError(w, webutil.StatusFor(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

func (a *AM) handleDecision(w http.ResponseWriter, r *http.Request, pairingID string) {
	var q core.DecisionQuery
	if err := webutil.ReadJSON(r, &q); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.Decide(pairingID, q)
	if err != nil {
		webutil.WriteError(w, webutil.StatusFor(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

func (a *AM) handleDecisionBatch(w http.ResponseWriter, r *http.Request, pairingID string) {
	var q core.BatchDecisionQuery
	if err := webutil.ReadJSON(r, &q); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.DecideBatch(pairingID, q)
	if err != nil {
		webutil.WriteError(w, webutil.StatusFor(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

// pullDecisionRequest is a tokenless decision query (pull-model baseline):
// the Host asserts the identities it observed.
type pullDecisionRequest struct {
	Query     core.DecisionQuery `json:"query"`
	Subject   core.UserID        `json:"subject,omitempty"`
	Requester core.RequesterID   `json:"requester,omitempty"`
}

func (a *AM) handlePullDecision(w http.ResponseWriter, r *http.Request, pairingID string) {
	var req pullDecisionRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.PullDecide(pairingID, req.Query, req.Subject, req.Requester)
	if err != nil {
		webutil.WriteError(w, webutil.StatusFor(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

// stateDecisionRequest is a decision query in the UMA-state baseline.
type stateDecisionRequest struct {
	Query  core.DecisionQuery `json:"query"`
	Handle string             `json:"handle"`
}

func (a *AM) handleStateDecision(w http.ResponseWriter, r *http.Request, pairingID string) {
	var req stateDecisionRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.StateDecide(pairingID, req.Query, req.Handle)
	if err != nil {
		webutil.WriteError(w, webutil.StatusFor(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, resp)
}

func (a *AM) handleEstablishState(w http.ResponseWriter, r *http.Request) {
	var req core.TokenRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	handle, err := a.EstablishState(req)
	if err != nil {
		webutil.WriteError(w, webutil.StatusFor(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{"handle": handle})
}

// --- Requester handlers ---

func (a *AM) handleToken(w http.ResponseWriter, r *http.Request) {
	var req core.TokenRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := a.IssueToken(req)
	switch {
	case errors.Is(err, core.ErrAccessDenied):
		webutil.WriteError(w, http.StatusForbidden, err)
	case err != nil:
		webutil.WriteError(w, webutil.StatusFor(err), err)
	case resp.Pending():
		// 202: the request is accepted but the token is not ready —
		// consent pending or terms outstanding (asynchronous flow).
		webutil.WriteJSON(w, http.StatusAccepted, resp)
	default:
		webutil.WriteJSON(w, http.StatusOK, resp)
	}
}

func (a *AM) handleTokenStatus(w http.ResponseWriter, r *http.Request) {
	st, err := a.ConsentStatus(r.FormValue(core.ParamTicket))
	if err != nil {
		webutil.WriteError(w, http.StatusNotFound, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, st)
}

// --- Policy handlers ---

func (a *AM) handlePolicyList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.ListPolicies(owner))
}

func (a *AM) handlePolicyCreate(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var p policy.Policy
	if err := webutil.ReadJSONLoose(r, &p); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if p.Owner == "" {
		p.Owner = actor
	}
	created, err := a.CreatePolicy(actor, p)
	if err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusCreated, created)
}

func (a *AM) handlePolicyGet(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	p, err := a.GetPolicy(core.PolicyID(r.PathValue("id")))
	if err != nil {
		webutil.WriteError(w, http.StatusNotFound, err)
		return
	}
	if !a.CanManage(p.Owner, actor) {
		webutil.WriteErrorf(w, http.StatusForbidden, "am: %s may not view policies of %s", actor, p.Owner)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, p)
}

func (a *AM) handlePolicyUpdate(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var p policy.Policy
	if err := webutil.ReadJSONLoose(r, &p); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	p.ID = core.PolicyID(r.PathValue("id"))
	if err := a.UpdatePolicy(actor, p); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, p)
}

func (a *AM) handlePolicyDelete(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	if err := a.DeletePolicy(actor, core.PolicyID(r.PathValue("id"))); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *AM) handlePolicyExport(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	format, err := policy.ParseFormat(formatParam(r))
	if err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Content-Type", format.ContentType())
	if err := a.ExportPolicies(w, owner, format); err != nil {
		// Headers are gone; nothing more we can do than log via audit.
		return
	}
}

func (a *AM) handlePolicyImport(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	format, err := policy.ParseFormat(formatParam(r))
	if err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	n, err := a.ImportPolicies(actor, owner, r.Body, format)
	if err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]int{"imported": n})
}

// formatParam reads the serialization format from ?format= or Content-Type.
func formatParam(r *http.Request) string {
	if f := r.URL.Query().Get("format"); f != "" {
		return f
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		return ct
	}
	return "json"
}

// --- Link handlers ---

type linkGeneralRequest struct {
	Owner  core.UserID   `json:"owner,omitempty"`
	Realm  core.RealmID  `json:"realm"`
	Policy core.PolicyID `json:"policy"`
}

func (a *AM) handleLinkGeneral(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req linkGeneralRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	owner := req.Owner
	if owner == "" {
		owner = actor
	}
	if !a.CanManage(owner, actor) {
		webutil.WriteErrorf(w, http.StatusForbidden, "am: %s may not manage %s", actor, owner)
		return
	}
	if err := a.LinkGeneral(owner, req.Realm, req.Policy); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{"linked": string(req.Realm)})
}

type linkSpecificRequest struct {
	Owner    core.UserID     `json:"owner,omitempty"`
	Host     core.HostID     `json:"host"`
	Resource core.ResourceID `json:"resource"`
	Policy   core.PolicyID   `json:"policy"`
}

func (a *AM) handleLinkSpecific(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req linkSpecificRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	owner := req.Owner
	if owner == "" {
		owner = actor
	}
	if !a.CanManage(owner, actor) {
		webutil.WriteErrorf(w, http.StatusForbidden, "am: %s may not manage %s", actor, owner)
		return
	}
	if err := a.LinkSpecific(owner, req.Host, req.Resource, req.Policy); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]string{"linked": string(req.Resource)})
}

func (a *AM) handleUnlinkGeneral(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	if err := a.UnlinkGeneral(owner, core.RealmID(r.FormValue(core.ParamRealm))); err != nil {
		webutil.WriteError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (a *AM) handleUnlinkSpecific(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	err = a.UnlinkSpecific(owner,
		core.HostID(r.FormValue(core.ParamHost)),
		core.ResourceID(r.FormValue(core.ParamResource)))
	if err != nil {
		webutil.WriteError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Group handlers ---

func (a *AM) handleGroupList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Groups(owner))
}

func (a *AM) handleGroupMembers(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.GroupMembers(owner, r.PathValue("group")))
}

type groupMemberRequest struct {
	Owner core.UserID `json:"owner,omitempty"`
	User  core.UserID `json:"user"`
}

func (a *AM) handleGroupAdd(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req groupMemberRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	owner := req.Owner
	if owner == "" {
		owner = actor
	}
	if err := a.AddGroupMember(actor, owner, r.PathValue("group"), req.User); err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.GroupMembers(owner, r.PathValue("group")))
}

func (a *AM) handleGroupRemove(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	if err := a.RemoveGroupMember(actor, owner, r.PathValue("group"), core.UserID(r.PathValue("user"))); err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Custodian handlers ---

func (a *AM) handleCustodianList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Custodians(owner))
}

type custodianRequest struct {
	Custodian core.UserID `json:"custodian"`
}

func (a *AM) handleCustodianAdd(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req custodianRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	// Only the owner themselves may appoint custodians.
	if err := a.AddCustodian(actor, req.Custodian); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Custodians(actor))
}

func (a *AM) handleCustodianRemove(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	if err := a.RemoveCustodian(actor, core.UserID(r.PathValue("user"))); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// --- Audit handlers ---

func (a *AM) handleAudit(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	f := audit.Filter{
		Owner:     owner,
		Host:      core.HostID(r.FormValue(core.ParamHost)),
		Realm:     core.RealmID(r.FormValue(core.ParamRealm)),
		Requester: core.RequesterID(r.FormValue(core.ParamRequester)),
		Type:      audit.EventType(r.FormValue("type")),
	}
	webutil.WriteJSON(w, http.StatusOK, a.Audit().Query(f))
}

func (a *AM) handleAuditSummary(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.Audit().Summarize(owner))
}

// --- Consent handlers ---

func (a *AM) handleConsentList(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	owner, err := a.ownerParam(r, actor)
	if err != nil {
		webutil.WriteError(w, http.StatusForbidden, err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, a.PendingConsents(owner))
}

type consentResolveRequest struct {
	Approve bool `json:"approve"`
}

func (a *AM) handleConsentResolve(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	var req consentResolveRequest
	if err := webutil.ReadJSON(r, &req); err != nil {
		webutil.WriteError(w, http.StatusBadRequest, err)
		return
	}
	if err := a.ResolveConsent(actor, r.PathValue("ticket"), req.Approve); err != nil {
		webutil.WriteError(w, webutil.StatusFor(err), err)
		return
	}
	webutil.WriteJSON(w, http.StatusOK, map[string]bool{"approved": req.Approve})
}

// --- Compose page (Fig. 4) ---

// handleComposePage renders the policy-composition landing page a user
// reaches when redirected from a Host's "share" control. It lists the
// user's policies so one can be linked to the realm the Host supplied.
// Programmatic clients use POST /links/general instead.
func (a *AM) handleComposePage(w http.ResponseWriter, r *http.Request, actor core.UserID) {
	q := r.URL.Query()
	host := q.Get(core.ParamHost)
	realm := q.Get(core.ParamRealm)
	var b strings.Builder
	fmt.Fprintf(&b, "<!doctype html><title>%s — compose policy</title>", html.EscapeString(a.name))
	fmt.Fprintf(&b, "<h1>Protect %s at %s</h1>", html.EscapeString(realm), html.EscapeString(host))
	fmt.Fprintf(&b, "<p>Signed in as %s.</p><h2>Your policies</h2><ul>", html.EscapeString(string(actor)))
	for _, p := range a.ListPolicies(actor) {
		fmt.Fprintf(&b, "<li>%s (%s, %d rules)</li>",
			html.EscapeString(string(p.ID)), html.EscapeString(p.Kind.String()), len(p.Rules))
	}
	b.WriteString("</ul><p>Link a policy via POST /links/general.</p>")
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, b.String())
	a.trace(core.PhaseComposingPolicies, "user:"+string(actor), "am:"+a.name,
		"compose-page", realm)
}
