package loadgen

import (
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"time"
)

// FaultProxy is the netem shim of the harness: a reverse proxy that sits
// between the clients and one amserver process and injects the two
// network faults the scenarios need — added latency and a full partition.
// The rig registers every node in the cluster ring by its proxy URL, so
// shard routing, wrong_shard hints and in-shard failover all flow through
// the shim exactly as client traffic would flow through a degraded
// network path in production. Replication and admin traffic bypass the
// proxy (node-to-node links are not what these scenarios degrade).
type FaultProxy struct {
	proxy *httputil.ReverseProxy
	srv   *http.Server
	url   string

	// latencyNs is added before forwarding each request; partitioned
	// aborts the connection without a response — from the client's side
	// indistinguishable from a dropped network path.
	latencyNs   atomic.Int64
	partitioned atomic.Bool
}

// NewFaultProxy starts a shim on a fresh loopback port forwarding to
// target (an amserver base URL). The backend does not need to be up yet —
// the rig creates shims first so the ring spec can name their URLs.
func NewFaultProxy(target string) (*FaultProxy, error) {
	u, err := url.Parse(target)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	fp := &FaultProxy{
		proxy: httputil.NewSingleHostReverseProxy(u),
		url:   "http://" + ln.Addr().String(),
	}
	// A dead or unreachable backend must surface as a transport error,
	// not a 502 page, so the client's failover logic sees what a real
	// network fault would produce.
	fp.proxy.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		panic(http.ErrAbortHandler)
	}
	fp.srv = &http.Server{Handler: http.HandlerFunc(fp.serve)}
	go fp.srv.Serve(ln)
	return fp, nil
}

func (fp *FaultProxy) serve(w http.ResponseWriter, r *http.Request) {
	if fp.partitioned.Load() {
		panic(http.ErrAbortHandler)
	}
	if d := fp.latencyNs.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	fp.proxy.ServeHTTP(w, r)
}

// URL is the shim's client-facing base URL — what the ring spec names.
func (fp *FaultProxy) URL() string { return fp.url }

// SetLatency injects d of one-way delay on every subsequent request
// (0 restores the clean path).
func (fp *FaultProxy) SetLatency(d time.Duration) { fp.latencyNs.Store(int64(d)) }

// SetPartitioned cuts (true) or heals (false) the path: while cut, every
// request dies with an aborted connection.
func (fp *FaultProxy) SetPartitioned(cut bool) { fp.partitioned.Store(cut) }

// Close stops the shim's listener.
func (fp *FaultProxy) Close() error { return fp.srv.Close() }
