package core

import "time"

// This file defines the typed event envelopes of the streaming event
// control plane (GET /v1/events): the one server-push surface carrying
// decision-cache invalidation, consent resolution and replication signals
// to subscribed PEPs, Requesters and operators. The broker lives in
// internal/events; these are the wire types every subscriber decodes.

// EventType classifies a control-plane event.
type EventType string

// Event types carried on the /v1/events stream.
const (
	// EventInvalidation: a PAP mutation invalidated cached decisions; the
	// payload scopes the eviction exactly like the legacy POST push.
	EventInvalidation EventType = "invalidation"
	// EventConsent: an owner resolved a pending consent ticket; the
	// payload carries the outcome (and the minted token on approval).
	EventConsent EventType = "consent"
	// EventReplication: the node's replication state changed (connected,
	// disconnected, lag, promoted); the payload is the node's health.
	EventReplication EventType = "replication"
	// EventResync is the in-band gap marker: events were lost between the
	// subscriber's cursor and the stream's present (slow consumer, or a
	// resume cursor older than the replay window). The subscriber must
	// re-establish state out of band (drop caches, re-poll tickets) —
	// everything after the resync event is gapless again.
	EventResync EventType = "resync"
)

// Replication signal names carried in Event.Signal on EventReplication.
const (
	// SignalConnected: a follower (re-)established sync with its primary.
	SignalConnected = "connected"
	// SignalDisconnected: a follower lost its primary.
	SignalDisconnected = "disconnected"
	// SignalLag: a follower applied a page but is still behind the
	// primary (Replication.LagRecords says by how much).
	SignalLag = "lag"
	// SignalPromoted: this node was promoted from follower to primary.
	SignalPromoted = "promoted"
)

// Rebalance signal names carried in Event.Signal on EventReplication.
// Rebalancing is bulk topology-driven replication, so its lifecycle rides
// the replication event type: existing ?types=replication subscriptions
// see a rebalance live without a new stream.
const (
	// SignalRebalanceStarted: a coordinator began (or resumed) executing a
	// plan; Event.Rebalance carries the plan's progress.
	SignalRebalanceStarted = "rebalance-started"
	// SignalRebalanceMove: one owner finished moving; Event.Owner names it
	// and Event.Rebalance carries the updated progress.
	SignalRebalanceMove = "rebalance-move"
	// SignalRebalanceDone: every planned move completed.
	SignalRebalanceDone = "rebalance-done"
	// SignalRebalanceAborted: the coordinator stopped cleanly mid-plan.
	SignalRebalanceAborted = "rebalance-aborted"
	// SignalRebalanceFailed: a move exhausted its retries; the plan is
	// resumable.
	SignalRebalanceFailed = "rebalance-failed"
)

// Event is the envelope every /v1/events subscriber receives: one
// sequence-numbered, typed, owner-scoped control-plane signal. Exactly
// one payload pointer is set, matching Type (none for EventResync).
type Event struct {
	// Seq is the broker-assigned sequence number, strictly increasing per
	// node. Subscribers resume with it via the Last-Event-ID header.
	Seq int64 `json:"seq"`
	// Type classifies the payload.
	Type EventType `json:"type"`
	// Time is when the event was published (informational; ordering is
	// defined by Seq alone).
	Time time.Time `json:"time"`
	// Owner scopes the event to one resource owner's state. Empty on
	// node-wide events (replication signals, resync markers).
	Owner UserID `json:"owner,omitempty"`
	// Ticket names the consent ticket a consent event resolves.
	Ticket string `json:"ticket,omitempty"`
	// Signal is the replication sub-kind (SignalConnected et al.).
	Signal string `json:"signal,omitempty"`
	// Invalidation is the eviction scope of an invalidation event.
	Invalidation *InvalidationPush `json:"invalidation,omitempty"`
	// Consent is the resolved ticket state of a consent event.
	Consent *ConsentStatus `json:"consent,omitempty"`
	// Replication is the node's health at a replication event.
	Replication *ReplicationHealth `json:"replication,omitempty"`
	// Rebalance is the coordinator's progress at a rebalance signal
	// (SignalRebalanceStarted et al.; Type is EventReplication).
	Rebalance *RebalanceStatus `json:"rebalance,omitempty"`
}

// EventsHealth is the event-plane gauge set on GET /v1/metrics: live
// subscriber counts per stream type, publish/drop counters and the worst
// subscriber lag, so an operator can spot a stalled consumer before its
// ring buffer rolls.
type EventsHealth struct {
	// Subscribers counts active subscribers per event type they receive
	// (a subscriber to several types is counted under each).
	Subscribers map[EventType]int `json:"subscribers"`
	// Published counts events accepted by the broker since start.
	Published int64 `json:"published"`
	// Dropped counts events discarded from slow subscribers' ring
	// buffers (each drop leaves a gap marker, never a blocked publisher).
	Dropped int64 `json:"dropped"`
	// MaxLag is the largest (newest seq − last delivered seq) across
	// subscribers: how far the slowest live consumer trails the stream.
	MaxLag int64 `json:"max_lag"`
	// LastSeq is the newest sequence number assigned.
	LastSeq int64 `json:"last_seq"`
}

// ParamLastEventID is the query-parameter fallback for the Last-Event-ID
// resume header on GET /v1/events (EventSource implementations that
// cannot set headers).
const ParamLastEventID = "last_event_id"

// ParamTypes selects event types on GET /v1/events (comma-separated).
const ParamTypes = "types"
