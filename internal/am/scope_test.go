package am

import (
	"testing"

	"umac/internal/core"
)

// pairScoped establishes a pairing with an explicit scope.
func pairScoped(t *testing.T, a *AM, host core.HostID, user core.UserID, scope core.PairingScope, resources ...core.ResourceID) core.PairingResponse {
	t.Helper()
	code, err := a.ApprovePairing(core.PairingRequest{
		Host: host, User: user, Scope: scope, Resources: resources,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := a.ExchangeCode(code, host)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestUserScopedPairingRejectsOtherOwners(t *testing.T) {
	a, _ := newTestAM(t)
	p := pairScoped(t, a, "webpics", "bob", core.PairingScopeUser)
	// Bob's own realm registers fine.
	if _, err := a.RegisterRealm(p.PairingID, core.ProtectRequest{Realm: "travel"}); err != nil {
		t.Fatal(err)
	}
	// The Host cannot use bob's pairing to protect alice's resources.
	if _, err := a.RegisterRealm(p.PairingID, core.ProtectRequest{Realm: "x", User: "alice"}); err == nil {
		t.Fatal("user-scoped pairing protected another user's resources")
	}
}

func TestApplicationScopedPairingCoversAllUsers(t *testing.T) {
	a, _ := newTestAM(t)
	p := pairScoped(t, a, "webpics", "admin", core.PairingScopeApplication)
	for _, owner := range []core.UserID{"admin", "alice", "bob"} {
		if _, err := a.RegisterRealm(p.PairingID, core.ProtectRequest{
			Realm: core.RealmID("realm-" + owner), User: owner,
		}); err != nil {
			t.Fatalf("owner %s: %v", owner, err)
		}
	}
}

func TestResourceScopedPairingEnforcesList(t *testing.T) {
	a, _ := newTestAM(t)
	p := pairScoped(t, a, "webpics", "bob", core.PairingScopeResources, "photo-1", "photo-2")

	// In-scope resources register.
	if _, err := a.RegisterRealm(p.PairingID, core.ProtectRequest{
		Realm: "travel", Resources: []core.ResourceID{"photo-1", "photo-2"},
	}); err != nil {
		t.Fatal(err)
	}
	// Out-of-scope resource rejected.
	if _, err := a.RegisterRealm(p.PairingID, core.ProtectRequest{
		Realm: "travel", Resources: []core.ResourceID{"photo-1", "photo-99"},
	}); err == nil {
		t.Fatal("out-of-scope resource accepted")
	}
	// Unenumerated protect rejected under resource scope.
	if _, err := a.RegisterRealm(p.PairingID, core.ProtectRequest{Realm: "travel"}); err == nil {
		t.Fatal("blanket protect accepted under resource scope")
	}
	// Other owners rejected.
	if _, err := a.RegisterRealm(p.PairingID, core.ProtectRequest{
		Realm: "x", User: "alice", Resources: []core.ResourceID{"photo-1"},
	}); err == nil {
		t.Fatal("resource-scoped pairing protected another user's resources")
	}
}
