package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// snapshot is the on-disk representation: a flat, key-sorted entity list so
// snapshots diff cleanly under version control. LastSeq records the
// replication sequence number the snapshot is consistent at, so a restarted
// follower resumes tailing from its applied offset (absent in pre-sequence
// snapshots, which decode as 0).
type snapshot struct {
	FormatVersion int      `json:"format_version"`
	LastSeq       int64    `json:"last_seq,omitempty"`
	Entities      []Entity `json:"entities"`
}

const snapshotFormatVersion = 1

// Snapshot writes the full store contents to path atomically (write to a
// temp file in the same directory, then rename).
//
// For a durable store snapshotting to the path it was Opened from, Snapshot
// is also the WAL compaction point: once the snapshot is safely renamed
// into place, the log it subsumes is truncated. Writers are paused for the
// duration (reads proceed), which is what makes "snapshot ∪ log" a
// consistent recovery image.
func (s *Store) Snapshot(path string) error {
	compact := s.wal != nil && path == s.snapshotPath

	s.lockAll(false)
	if compact {
		defer s.unlockAll(false)
	}
	snap := snapshot{FormatVersion: snapshotFormatVersion}
	s.walMu.Lock()
	snap.LastSeq = s.lastSeq
	s.walMu.Unlock()
	for i := range s.shards {
		for _, m := range s.shards[i].kinds {
			for _, e := range m {
				snap.Entities = append(snap.Entities, e)
			}
		}
	}
	if !compact {
		s.unlockAll(false)
	}
	sort.Slice(snap.Entities, func(i, j int) bool {
		a, b := snap.Entities[i], snap.Entities[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Key < b.Key
	})

	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("store: snapshot encode: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("store: snapshot temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	// Make the rename itself durable before the log it subsumes is
	// truncated: without the directory fsync, a machine crash mid-compaction
	// could surface the old snapshot next to an already-emptied WAL.
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	if compact {
		s.walMu.Lock()
		defer s.walMu.Unlock()
		if err := s.wal.reset(); err != nil {
			return err
		}
	}
	return nil
}

// Load replaces the store contents with the snapshot at path. It does not
// touch the write-ahead log; it is the first phase of Open's recovery and a
// direct way to seed memory-only stores.
func (s *Store) Load(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("store: load: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("store: load decode: %w", err)
	}
	if snap.FormatVersion != snapshotFormatVersion {
		return fmt.Errorf("store: load: unsupported format version %d", snap.FormatVersion)
	}
	staged := make([][]Entity, shardCount)
	for _, e := range snap.Entities {
		if e.Kind == "" || e.Key == "" {
			return fmt.Errorf("store: load: entity with empty kind or key")
		}
		i := s.shardIndex(e.Kind, e.Key)
		staged[i] = append(staged[i], e)
	}
	s.lockAll(true)
	defer s.unlockAll(true)
	for i := range s.shards {
		s.shards[i].kinds = make(map[string]map[string]Entity)
		for _, e := range staged[i] {
			s.shards[i].kindLocked(e.Kind)[e.Key] = e
		}
	}
	s.walMu.Lock()
	s.lastSeq, s.nextSeq = snap.LastSeq, snap.LastSeq
	s.walMu.Unlock()
	return nil
}
