// Package audit implements the consolidated audit facility that motivates
// requirement R4: "access requests to resources at different Hosts are
// evaluated centrally by AM and a User may easily audit these requests and
// correlate them without the need to pull logging information from all
// Hosts" (Section V.C).
//
// The AM records every policy-administration action and every access
// evaluation here; users query one place regardless of how many Hosts they
// use. The package also provides the per-Host log used by the baseline
// comparison (experiment E10), where auditing requires pulling from every
// Host.
package audit

import (
	"sort"
	"sync"
	"time"

	"umac/internal/core"
)

// EventType classifies audit entries.
type EventType string

// Event types recorded by the AM.
const (
	EventPairingCreated  EventType = "pairing-created"
	EventPairingRevoked  EventType = "pairing-revoked"
	EventPolicyCreated   EventType = "policy-created"
	EventPolicyUpdated   EventType = "policy-updated"
	EventPolicyDeleted   EventType = "policy-deleted"
	EventResourceLinked  EventType = "resource-linked"
	EventTokenIssued     EventType = "token-issued"
	EventTokenRefused    EventType = "token-refused"
	EventDecision        EventType = "decision"
	EventConsentRequest  EventType = "consent-requested"
	EventConsentResolved EventType = "consent-resolved"
	EventOwnerMigrated   EventType = "owner-migrated"
)

// Event is one audit record. Owner is the resource owner whose security
// state the event concerns — the key by which users query their
// consolidated view.
type Event struct {
	Seq       int64            `json:"seq"`
	Time      time.Time        `json:"time"`
	Type      EventType        `json:"type"`
	Owner     core.UserID      `json:"owner"`
	Host      core.HostID      `json:"host,omitempty"`
	Realm     core.RealmID     `json:"realm,omitempty"`
	Resource  core.ResourceID  `json:"resource,omitempty"`
	Requester core.RequesterID `json:"requester,omitempty"`
	Subject   core.UserID      `json:"subject,omitempty"`
	Action    core.Action      `json:"action,omitempty"`
	Decision  string           `json:"decision,omitempty"`
	Detail    string           `json:"detail,omitempty"`
}

// Log is an append-only audit log. The zero value is ready to use.
type Log struct {
	mu     sync.RWMutex
	seq    int64
	events []Event
}

// Append records an event, stamping sequence and (if unset) time.
func (l *Log) Append(e Event) Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	e.Seq = l.seq
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.events = append(l.events, e)
	return e
}

// AppendBatch records a batch of events under a single lock acquisition,
// stamping sequence numbers and (if unset) times. The audit Pipeline uses
// it to amortize lock traffic when draining its queue.
func (l *Log) AppendBatch(events []Event) {
	if len(events) == 0 {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := time.Now()
	for i := range events {
		l.seq++
		events[i].Seq = l.seq
		if events[i].Time.IsZero() {
			events[i].Time = now
		}
	}
	l.events = append(l.events, events...)
}

// Filter selects events. Zero-valued fields match everything.
type Filter struct {
	Owner     core.UserID
	Host      core.HostID
	Realm     core.RealmID
	Requester core.RequesterID
	Type      EventType
	Since     time.Time
	Until     time.Time
}

func (f Filter) matches(e Event) bool {
	if f.Owner != "" && e.Owner != f.Owner {
		return false
	}
	if f.Host != "" && e.Host != f.Host {
		return false
	}
	if f.Realm != "" && e.Realm != f.Realm {
		return false
	}
	if f.Requester != "" && e.Requester != f.Requester {
		return false
	}
	if f.Type != "" && e.Type != f.Type {
		return false
	}
	if !f.Since.IsZero() && e.Time.Before(f.Since) {
		return false
	}
	if !f.Until.IsZero() && e.Time.After(f.Until) {
		return false
	}
	return true
}

// Query returns matching events in sequence order.
func (l *Log) Query(f Filter) []Event {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var out []Event
	for _, e := range l.events {
		if f.matches(e) {
			out = append(out, e)
		}
	}
	return out
}

// QueryPage returns the [offset, offset+limit) window of the matching
// events in sequence order, plus the total match count. It materializes
// only the requested window, so paging a million-event log costs one pass
// and a page-sized allocation.
func (l *Log) QueryPage(f Filter, offset, limit int) ([]Event, int) {
	if offset < 0 {
		offset = 0
	}
	if limit < 0 {
		limit = 0
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]Event, 0, min(limit, 64))
	total := 0
	for _, e := range l.events {
		if !f.matches(e) {
			continue
		}
		if total >= offset && len(out) < limit {
			out = append(out, e)
		}
		total++
	}
	return out, total
}

// Len returns the total number of events.
func (l *Log) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.events)
}

// Summary aggregates an owner's security activity — the "consolidated view
// of the applied security controls" of requirement R4.
type Summary struct {
	Owner core.UserID `json:"owner"`
	// Hosts the owner's events span, sorted.
	Hosts []core.HostID `json:"hosts"`
	// DecisionsByHost counts access decisions per host.
	DecisionsByHost map[core.HostID]int `json:"decisions_by_host"`
	// PermitCount and DenyCount across all hosts.
	PermitCount int `json:"permit_count"`
	DenyCount   int `json:"deny_count"`
	// RequesterCount counts distinct requesters that touched the owner's
	// resources.
	RequesterCount int `json:"requester_count"`
	// Events is the total event count for the owner.
	Events int `json:"events"`
}

// Summarize computes the consolidated view for one owner in a single pass
// over the central log — the operation that, without an AM, requires
// visiting every Host (Section III, problem 4).
func (l *Log) Summarize(owner core.UserID) Summary {
	l.mu.RLock()
	defer l.mu.RUnlock()
	s := Summary{Owner: owner, DecisionsByHost: make(map[core.HostID]int)}
	hosts := map[core.HostID]bool{}
	requesters := map[core.RequesterID]bool{}
	for _, e := range l.events {
		if e.Owner != owner {
			continue
		}
		s.Events++
		if e.Host != "" {
			hosts[e.Host] = true
		}
		if e.Requester != "" {
			requesters[e.Requester] = true
		}
		if e.Type == EventDecision {
			s.DecisionsByHost[e.Host]++
			switch e.Decision {
			case core.DecisionPermit.String():
				s.PermitCount++
			case core.DecisionDeny.String():
				s.DenyCount++
			}
		}
	}
	s.RequesterCount = len(requesters)
	s.Hosts = make([]core.HostID, 0, len(hosts))
	for h := range hosts {
		s.Hosts = append(s.Hosts, h)
	}
	sort.Slice(s.Hosts, func(i, j int) bool { return s.Hosts[i] < s.Hosts[j] })
	return s
}
