package pep

import (
	"sync"

	"umac/internal/core"
)

// flightGroup collapses concurrent decision queries for the same cache key
// into one Host→AM round-trip: the first caller (the leader) performs the
// query, every concurrent caller for the same key waits and shares the
// result. Without it, a burst of requests hitting one uncached resource —
// a cold start, a TTL expiry on a hot photo, an invalidation push — would
// each pay a signed round-trip for the identical answer.
//
// This is a purpose-built miniature of the well-known singleflight pattern
// (the stdlib keeps its copy internal), specialised to decision responses.
type flightGroup struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	dec  core.DecisionResponse
	err  error
}

// do runs fn once per key among concurrent callers. shared is true for
// callers that received another caller's result.
func (g *flightGroup) do(key string, fn func() (core.DecisionResponse, error)) (dec core.DecisionResponse, err error, shared bool) {
	g.mu.Lock()
	if g.inflight == nil {
		g.inflight = make(map[string]*flightCall)
	}
	if call, ok := g.inflight[key]; ok {
		g.mu.Unlock()
		<-call.done
		return call.dec, call.err, true
	}
	call := &flightCall{done: make(chan struct{})}
	g.inflight[key] = call
	g.mu.Unlock()

	call.dec, call.err = fn()

	g.mu.Lock()
	delete(g.inflight, key)
	g.mu.Unlock()
	close(call.done)
	return call.dec, call.err, false
}
