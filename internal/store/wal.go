package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// The write-ahead log is a sequence of segment files — "<base>.000001",
// "<base>.000002", … — each a flat run of length-prefixed, checksummed
// records:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// The payload is the JSON encoding of walRecord. Appends go to the
// highest-numbered (active) segment; once it crosses the size limit it is
// sealed (synced, closed, never written again) and a fresh segment is
// opened. Because sealed segments are immutable, compaction after a
// snapshot deletes them outright instead of rewriting one growing file.
//
// Replay walks segments in index order and records in offset order. Batch
// appends are a single write(2) call, so the only failure mode a hard kill
// can produce is a torn record at the tail of the LAST segment — which the
// checksum (or a short read) detects and replay discards. A bad record
// anywhere in a sealed segment is real corruption (records after it were
// acknowledged) and fails the open instead of silently dropping them.

// Operations recorded in the log.
const (
	opPut    = "put"
	opDelete = "del"
)

// walRecord is one logged mutation. Seq is the global replication sequence
// number (see replication.go); logs written before sequence numbering carry
// Seq 0 and are renumbered on replay.
type walRecord struct {
	Seq     int64           `json:"seq,omitempty"`
	Op      string          `json:"op"`
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Version int64           `json:"version,omitempty"`
	Data    json.RawMessage `json:"data,omitempty"`
}

const walHeaderSize = 8

// DefaultWALSegmentSize is the roll threshold for WAL segments. Small
// enough that compaction reclaims space promptly, large enough that a
// segment holds tens of thousands of typical records.
const DefaultWALSegmentSize int64 = 4 << 20

// walSegment describes one sealed, immutable segment file.
type walSegment struct {
	index int
	path  string
	size  int64
}

// wal is an open segmented write-ahead log. The committer goroutine calls
// appendBatch without holding the store's walMu (so writers can keep
// enqueuing during an fsync); the internal mutex keeps that I/O coherent
// with reset/close/size readers, which run under walMu at moments when no
// batch is in flight.
type wal struct {
	mu       sync.Mutex
	base     string
	fsync    bool
	segLimit int64

	sealed      []walSegment // immutable older segments, ascending index
	active      *os.File
	activeIndex int
	activeSize  int64
	closed      bool
}

// encodeRecord frames one record for appending: header plus JSON payload.
func encodeRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, fmt.Errorf("store: wal encode: %w", err)
	}
	buf := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	return buf, nil
}

// segmentPath names segment index under base: "<base>.000042".
func segmentPath(base string, index int) string {
	return fmt.Sprintf("%s.%06d", base, index)
}

// listSegments finds the on-disk segments of the log rooted at base,
// ascending by index. Files whose suffix is not exactly six digits are not
// segments and are ignored.
func listSegments(base string) ([]walSegment, error) {
	matches, err := filepath.Glob(base + ".*")
	if err != nil {
		return nil, fmt.Errorf("store: wal scan: %w", err)
	}
	var segs []walSegment
	for _, m := range matches {
		suffix := m[len(base)+1:]
		idx, ok := parseSegmentIndex(suffix)
		if !ok {
			continue
		}
		info, err := os.Stat(m)
		if err != nil || info.IsDir() {
			continue
		}
		segs = append(segs, walSegment{index: idx, path: m, size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

// parseSegmentIndex accepts exactly six ASCII digits.
func parseSegmentIndex(s string) (int, bool) {
	if len(s) != 6 {
		return 0, false
	}
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// openWAL opens the segmented log rooted at base (creating segment 1 if the
// log is new), replays every intact record across all segments in order,
// and truncates a torn or corrupt tail — legal only in the last segment —
// so the active segment ends on a record boundary ready for appends. A
// pre-segmentation flat log at base itself is adopted as the oldest
// segment.
func openWAL(base string, fsync bool, segLimit int64) (*wal, []walRecord, error) {
	if segLimit <= 0 {
		segLimit = DefaultWALSegmentSize
	}
	segs, err := listSegments(base)
	if err != nil {
		return nil, nil, err
	}
	if info, err := os.Stat(base); err == nil && !info.IsDir() {
		idx := 1
		if len(segs) > 0 {
			idx = segs[0].index - 1
			if idx < 0 {
				return nil, nil, fmt.Errorf("store: wal: flat log %s conflicts with segment %s", base, segs[0].path)
			}
		}
		legacy := walSegment{index: idx, path: segmentPath(base, idx), size: info.Size()}
		if err := os.Rename(base, legacy.path); err != nil {
			return nil, nil, fmt.Errorf("store: wal adopt flat log: %w", err)
		}
		segs = append([]walSegment{legacy}, segs...)
	}

	w := &wal{base: base, fsync: fsync, segLimit: segLimit}
	if len(segs) == 0 {
		f, err := os.OpenFile(segmentPath(base, 1), os.O_RDWR|os.O_CREATE, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("store: open wal: %w", err)
		}
		w.active, w.activeIndex = f, 1
		return w, nil, nil
	}
	var records []walRecord
	for i, seg := range segs {
		f, err := os.OpenFile(seg.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("store: open wal segment: %w", err)
		}
		recs, good, err := replay(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		records = append(records, recs...)
		if i < len(segs)-1 {
			// Sealed segments were synced whole before the next one took
			// appends: anything short of fully intact is real corruption.
			f.Close()
			if good != seg.size {
				return nil, nil, fmt.Errorf("store: wal segment %s corrupt at offset %d of %d", seg.path, good, seg.size)
			}
			w.sealed = append(w.sealed, seg)
			continue
		}
		// Last segment: discard the torn tail (a write in flight when the
		// process died) and keep the file active for appends.
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: wal truncate tail: %w", err)
		}
		if _, err := f.Seek(good, io.SeekStart); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: wal seek: %w", err)
		}
		w.active, w.activeIndex, w.activeSize = f, seg.index, good
	}
	return w, records, nil
}

// replay scans one segment from the start, returning every intact record
// and the offset just past the last one. Corruption (bad checksum, short
// read, undecodable payload) ends the scan rather than failing it; the
// caller decides whether a short scan is a legal torn tail or corruption.
func replay(f *os.File) ([]walRecord, int64, error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, fmt.Errorf("store: wal seek: %w", err)
	}
	var (
		records []walRecord
		good    int64
		header  [walHeaderSize]byte
	)
	for {
		if _, err := io.ReadFull(f, header[:]); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, good, nil
			}
			return nil, 0, fmt.Errorf("store: wal read: %w", err)
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, good, nil
			}
			return nil, 0, fmt.Errorf("store: wal read: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return records, good, nil
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return records, good, nil
		}
		records = append(records, rec)
		good += walHeaderSize + int64(length)
	}
}

// appendBatch writes one batch of framed records with a single write(2)
// and, when fsync is on, a single Sync — the group-commit write path. On
// success the active segment is sealed and rolled if it crossed the size
// limit (a batch never spans segments; segments may overshoot the limit by
// up to one batch).
func (w *wal) appendBatch(buf []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if _, err := w.active.Write(buf); err != nil {
		// A partial write (ENOSPC) would leave torn bytes that make every
		// LATER acknowledged record unreachable at replay. Rewind to the
		// last record boundary; if even that fails, poison the log so
		// writes fail loudly instead of silently losing durability.
		if w.active.Truncate(w.activeSize) != nil {
			w.closed = true
		} else if _, serr := w.active.Seek(w.activeSize, io.SeekStart); serr != nil {
			w.closed = true
		}
		return fmt.Errorf("store: wal append: %w", err)
	}
	if w.fsync {
		if err := w.active.Sync(); err != nil {
			return fmt.Errorf("store: wal sync: %w", err)
		}
	}
	w.activeSize += int64(len(buf))
	if w.activeSize >= w.segLimit {
		if err := w.rollLocked(); err != nil {
			// The batch is durable but the log cannot take further
			// appends coherently; poison it rather than risk appending to
			// a half-sealed segment.
			w.closed = true
			return err
		}
	}
	return nil
}

// rollLocked seals the active segment and opens the next one. Seal always
// syncs — even without the fsync option — so replay can trust every
// non-final segment to be intact.
func (w *wal) rollLocked() error {
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: wal seal sync: %w", err)
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("store: wal seal close: %w", err)
	}
	w.sealed = append(w.sealed, walSegment{
		index: w.activeIndex,
		path:  segmentPath(w.base, w.activeIndex),
		size:  w.activeSize,
	})
	f, err := os.OpenFile(segmentPath(w.base, w.activeIndex+1), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: wal roll: %w", err)
	}
	w.active = f
	w.activeIndex++
	w.activeSize = 0
	return nil
}

// poison marks the log unusable so subsequent writes fail loudly.
func (w *wal) poison() {
	w.mu.Lock()
	w.closed = true
	w.mu.Unlock()
}

// isClosed reports whether the log has been closed or poisoned.
func (w *wal) isClosed() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.closed
}

// totalSize is the log's byte size across all segments.
func (w *wal) totalSize() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.activeSize
	for _, seg := range w.sealed {
		n += seg.size
	}
	return n
}

// segmentCount is the number of on-disk segment files (sealed + active).
func (w *wal) segmentCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed) + 1
}

// reset empties the log after a snapshot has captured its contents: sealed
// segments are deleted outright (immutable and fully subsumed) and the
// active segment is truncated in place. Only called at moments when no
// batch is in flight (see Store.Snapshot / LoadReplicationSnapshot).
func (w *wal) reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	for _, seg := range w.sealed {
		if err := os.Remove(seg.path); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("store: wal reset: %w", err)
		}
	}
	w.sealed = nil
	if err := w.active.Truncate(0); err != nil {
		return fmt.Errorf("store: wal reset: %w", err)
	}
	if _, err := w.active.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("store: wal reset seek: %w", err)
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("store: wal reset sync: %w", err)
	}
	w.activeSize = 0
	return nil
}

// close syncs and closes the active segment. Idempotent.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if err := w.active.Sync(); err != nil {
		w.active.Close()
		return fmt.Errorf("store: wal close sync: %w", err)
	}
	return w.active.Close()
}

// WALInfo summarizes a segmented log on disk, as VerifyWAL reads it.
type WALInfo struct {
	// Segments is the number of on-disk segment files.
	Segments int
	// Records is the count of intact records across all segments.
	Records int
	// FirstSeq and LastSeq bound the sequence numbers seen (0 when empty).
	FirstSeq int64
	LastSeq  int64
	// Contiguous reports whether every record's sequence number is exactly
	// its predecessor's plus one.
	Contiguous bool
	// TornBytes is the length of the discardable tail after the last intact
	// record in the final segment (0 for a clean shutdown).
	TornBytes int64
}

// VerifyWAL audits the segmented log rooted at base without applying or
// modifying anything: sealed segments must be fully intact, a torn tail is
// tolerated only in the final segment, and the info reports whether
// sequence numbers are contiguous. The crash-consistency suite and ops
// tooling use it to inspect a log left behind by a killed process.
func VerifyWAL(base string) (WALInfo, error) {
	segs, err := listSegments(base)
	if err != nil {
		return WALInfo{}, err
	}
	if info, err := os.Stat(base); err == nil && !info.IsDir() {
		// A not-yet-adopted flat log orders before every segment.
		segs = append([]walSegment{{index: -1, path: base, size: info.Size()}}, segs...)
	}
	out := WALInfo{Segments: len(segs), Contiguous: true}
	for i, seg := range segs {
		f, err := os.Open(seg.path)
		if err != nil {
			return WALInfo{}, fmt.Errorf("store: verify wal: %w", err)
		}
		recs, good, err := replay(f)
		f.Close()
		if err != nil {
			return WALInfo{}, err
		}
		if i < len(segs)-1 && good != seg.size {
			return WALInfo{}, fmt.Errorf("store: wal segment %s corrupt at offset %d of %d", seg.path, good, seg.size)
		}
		if i == len(segs)-1 {
			out.TornBytes = seg.size - good
		}
		for _, rec := range recs {
			if out.Records == 0 {
				out.FirstSeq = rec.Seq
			} else if rec.Seq != out.LastSeq+1 {
				out.Contiguous = false
			}
			out.LastSeq = rec.Seq
			out.Records++
		}
	}
	return out, nil
}
