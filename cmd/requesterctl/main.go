// Command requesterctl is a command-line Requester: it fetches a protected
// resource, transparently running the token choreography of Figs. 5-6
// (referral → AM token endpoint → retry with token), including terms claims
// and consent polling.
//
// Usage:
//
//	requesterctl -id my-app -subject alice [-claim payment=rcpt-1] [-action read] <url>
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"umac"
)

// claimFlags collects repeated -claim k=v flags.
type claimFlags map[string]string

func (c claimFlags) String() string { return fmt.Sprint(map[string]string(c)) }

func (c claimFlags) Set(v string) error {
	k, val, ok := strings.Cut(v, "=")
	if !ok || k == "" {
		return fmt.Errorf("claim must be name=value, got %q", v)
	}
	c[k] = val
	return nil
}

func main() {
	claims := claimFlags{}
	var (
		id      = flag.String("id", "requesterctl", "requester application identity")
		subject = flag.String("subject", "", "human subject the requester acts for")
		action  = flag.String("action", "read", "action: read|write|delete|list|share")
		timeout = flag.Duration("consent-timeout", 30*time.Second, "how long to wait for owner consent")
	)
	flag.Var(claims, "claim", "claim presented for terms (repeatable, name=value)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: requesterctl [flags] <url>")
		flag.PrintDefaults()
		os.Exit(2)
	}

	client := umac.NewRequester(umac.RequesterConfig{
		ID:             umac.RequesterID(*id),
		Subject:        umac.UserID(*subject),
		Claims:         claims,
		ConsentTimeout: *timeout,
	})
	body, err := client.Fetch(flag.Arg(0), umac.Action(*action))
	if err != nil {
		log.Fatalf("requesterctl: %v", err)
	}
	os.Stdout.Write(body)
}
