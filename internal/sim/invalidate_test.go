package sim

import (
	"errors"
	"testing"
	"time"

	"umac/internal/am"
	"umac/internal/core"
	"umac/internal/policy"
	"umac/internal/requester"
)

// TestInvalidationPushRevokesImmediately verifies the cache-control
// extension: with invalidation push enabled, a policy change at the AM
// takes effect at the Host at once, even though the cached decision's TTL
// has not expired.
func TestInvalidationPushRevokesImmediately(t *testing.T) {
	// Long cache TTL: without the push, the stale permit would survive.
	w, h := setupWorldCfg(t, am.Config{DefaultCacheTTL: time.Hour})
	w.AM.EnableInvalidationPush(nil)

	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	if h.Enforcer.Cache().Len() == 0 {
		t.Fatal("decision not cached")
	}

	// Bob flips the policy to deny-everyone; the AM pushes invalidation.
	policies := w.AM.ListPolicies("bob")
	pol := policies[0]
	pol.Rules = []policy.Rule{{
		Effect:   policy.EffectDeny,
		Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
	}}
	if err := w.AM.UpdatePolicy("bob", pol); err != nil {
		t.Fatal(err)
	}
	w.AM.FlushInvalidations()
	if h.Enforcer.Cache().Len() != 0 {
		t.Fatal("host cache not invalidated by push")
	}

	// The very next access is denied — no TTL wait.
	resp, err := alice.Get(h.ResourceURL("photo-1"), core.ActionRead)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode != 403 {
			t.Fatalf("status = %d, want 403 immediately after policy change", resp.StatusCode)
		}
	} else if !errors.Is(err, requester.ErrDenied) {
		t.Fatalf("err = %v", err)
	}
}

// TestInvalidationPushOnGroupChange covers the group-membership path.
func TestInvalidationPushOnGroupChange(t *testing.T) {
	w := NewWorldConfig(am.Config{DefaultCacheTTL: time.Hour})
	t.Cleanup(w.Close)
	w.AM.EnableInvalidationPush(nil)
	h := w.AddHost("webpics")
	h.AddResource("bob", "travel", "photo-1", []byte("pic"))
	bob := NewUserAgent("bob")
	if err := bob.PairHost(h, w.AMServer.URL); err != nil {
		t.Fatal(err)
	}
	if err := h.Enforcer.Protect("bob", "travel", []core.ResourceID{"photo-1"}, ""); err != nil {
		t.Fatal(err)
	}
	p, _ := w.AM.CreatePolicy("bob", policy.Policy{
		Owner: "bob", Kind: policy.KindGeneral,
		Rules: []policy.Rule{{
			Effect:   policy.EffectPermit,
			Subjects: []policy.Subject{{Type: policy.SubjectGroup, Name: "friends"}},
			Actions:  []core.Action{core.ActionRead},
		}},
	})
	if err := w.AM.LinkGeneral("bob", "travel", p.ID); err != nil {
		t.Fatal(err)
	}
	if err := w.AM.AddGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	// Bob removes alice from friends; the push clears the cached permit.
	if err := w.AM.RemoveGroupMember("bob", "bob", "friends", "alice"); err != nil {
		t.Fatal(err)
	}
	w.AM.FlushInvalidations()

	resp, err := alice.Get(h.ResourceURL("photo-1"), core.ActionRead)
	if err == nil {
		defer resp.Body.Close()
		if resp.StatusCode == 200 {
			t.Fatal("alice still permitted after removal + push")
		}
	}
}

// TestNoPushWithoutOptIn: the base protocol never has the AM spontaneously
// contact Hosts.
func TestNoPushWithoutOptIn(t *testing.T) {
	w, h := setupWorldCfg(t, am.Config{DefaultCacheTTL: time.Hour})
	alice := requester.New(requester.Config{ID: "alice-browser", Subject: "alice"})
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatal(err)
	}
	policies := w.AM.ListPolicies("bob")
	pol := policies[0]
	pol.Rules = []policy.Rule{{
		Effect:   policy.EffectDeny,
		Subjects: []policy.Subject{{Type: policy.SubjectEveryone}},
	}}
	if err := w.AM.UpdatePolicy("bob", pol); err != nil {
		t.Fatal(err)
	}
	// Cache untouched: the stale permit persists until TTL (documented
	// trade-off of pure TTL caching).
	if h.Enforcer.Cache().Len() == 0 {
		t.Fatal("cache cleared without push enabled")
	}
	if _, err := alice.Fetch(h.ResourceURL("photo-1"), core.ActionRead); err != nil {
		t.Fatalf("cached access should still permit within TTL: %v", err)
	}
}
