package store

import (
	"fmt"
	"strings"
	"testing"

	"umac/internal/core"
)

// These tests cover the owner-scoped replication filters live migration
// uses: a snapshot restricted to one owner's records and a WAL tail that
// skips foreign records while still advancing the caller's offset.

func keepPrefix(prefix string) func(core.ReplRecord) bool {
	return func(rec core.ReplRecord) bool { return strings.HasPrefix(rec.Key, prefix) }
}

func TestReplicationSnapshotFilter(t *testing.T) {
	s := New()
	s.EnableReplication(0)
	for i := 0; i < 10; i++ {
		owner := "bob"
		if i%2 == 1 {
			owner = "carol"
		}
		if _, err := s.Put("link", fmt.Sprintf("%s/realm-%d", owner, i), i); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.ReplicationSnapshotFilter(keepPrefix("bob/"))
	if len(snap.Records) != 5 {
		t.Fatalf("filtered snapshot carries %d records, want 5", len(snap.Records))
	}
	for _, rec := range snap.Records {
		if !strings.HasPrefix(rec.Key, "bob/") {
			t.Fatalf("foreign record leaked into filtered snapshot: %+v", rec)
		}
	}
	if snap.Seq != s.LastSeq() {
		t.Fatalf("filtered snapshot seq %d, store at %d", snap.Seq, s.LastSeq())
	}
	// The nil filter must equal the unfiltered snapshot.
	if all := s.ReplicationSnapshotFilter(nil); len(all.Records) != 10 {
		t.Fatalf("nil-filter snapshot carries %d records, want 10", len(all.Records))
	}
}

func TestTailSinceFilterAdvancesPastForeignRecords(t *testing.T) {
	s := New()
	s.EnableReplication(0)
	// 6 carol writes, then 2 bob writes, then 2 carol writes.
	for i := 0; i < 6; i++ {
		if _, err := s.Put("link", fmt.Sprintf("carol/r-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := s.Put("link", fmt.Sprintf("bob/r-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	for i := 6; i < 8; i++ {
		if _, err := s.Put("link", fmt.Sprintf("carol/r-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}

	// A max-bounded scan over purely foreign records returns nothing but
	// still advances the offset, so a caller polling in a loop terminates.
	recs, scanned, err := s.TailSinceFilter(0, 4, keepPrefix("bob/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("scan of foreign records returned %d records", len(recs))
	}
	if scanned != 4 {
		t.Fatalf("scanned through %d, want 4", scanned)
	}

	// The next window reaches the bob records.
	recs, scanned, err = s.TailSinceFilter(scanned, 4, keepPrefix("bob/"))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Key != "bob/r-0" || recs[1].Key != "bob/r-1" {
		t.Fatalf("bob window wrong: %+v", recs)
	}
	if scanned != 8 {
		t.Fatalf("scanned through %d, want 8", scanned)
	}

	// Tail past everything: caught up, scanned pins to the newest seq.
	recs, scanned, err = s.TailSinceFilter(10, 4, keepPrefix("bob/"))
	if err != nil || len(recs) != 0 || scanned != 10 {
		t.Fatalf("caught-up scan: recs=%v scanned=%d err=%v", recs, scanned, err)
	}
}

func TestTailSinceFilterErrors(t *testing.T) {
	s := New()
	if _, _, err := s.TailSinceFilter(0, 4, nil); err != ErrReplicationDisabled {
		t.Fatalf("disabled store: err=%v", err)
	}
	s2 := New()
	s2.EnableReplication(2) // tiny window
	for i := 0; i < 5; i++ {
		if _, err := s2.Put("k", fmt.Sprintf("x-%d", i), i); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := s2.TailSinceFilter(0, 4, nil); err != ErrReplicationTruncated {
		t.Fatalf("truncated window: err=%v", err)
	}
}
