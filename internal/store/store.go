// Package store is the datastore substrate of the reproduction. The paper's
// prototype persists policies "within the GAE datastore" (Section VI); this
// package provides the equivalent surface on a laptop: a transactional,
// kind-partitioned key-value store with JSON entity encoding, secondary
// filtering queries, and snapshot persistence to disk.
//
// It is deliberately small but real: writes are serialized per store,
// reads are served from an immutable view, and Snapshot/Load round-trip the
// full contents so cmd/amserver can survive restarts.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
)

// Common errors.
var (
	// ErrNotFound is returned when a key has no entity.
	ErrNotFound = errors.New("store: entity not found")
	// ErrConflict is returned by conditional writes whose precondition
	// failed (entity changed since it was read).
	ErrConflict = errors.New("store: version conflict")
	// ErrBadKey is returned for empty kinds or keys.
	ErrBadKey = errors.New("store: kind and key must be non-empty")
)

// Entity is a stored record: an opaque JSON document plus a version counter
// used for optimistic concurrency.
type Entity struct {
	Kind    string          `json:"kind"`
	Key     string          `json:"key"`
	Version int64           `json:"version"`
	Data    json.RawMessage `json:"data"`
}

// Decode unmarshals the entity's data into v.
func (e Entity) Decode(v any) error {
	if err := json.Unmarshal(e.Data, v); err != nil {
		return fmt.Errorf("store: decode %s/%s: %w", e.Kind, e.Key, err)
	}
	return nil
}

// Store is a transactional in-memory datastore. The zero value is ready to
// use.
type Store struct {
	mu    sync.RWMutex
	kinds map[string]map[string]Entity
}

// New returns an empty store. Equivalent to new(Store); provided for
// symmetry with Open.
func New() *Store { return &Store{} }

// Open loads a snapshot file if it exists, or returns an empty store if it
// does not.
func Open(path string) (*Store, error) {
	s := New()
	if err := s.Load(path); err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return s, nil
		}
		return nil, err
	}
	return s, nil
}

func (s *Store) kindLocked(kind string) map[string]Entity {
	if s.kinds == nil {
		s.kinds = make(map[string]map[string]Entity)
	}
	k, ok := s.kinds[kind]
	if !ok {
		k = make(map[string]Entity)
		s.kinds[kind] = k
	}
	return k
}

// Put stores v under (kind, key), overwriting any existing entity and
// bumping its version. It returns the stored entity.
func (s *Store) Put(kind, key string, v any) (Entity, error) {
	if kind == "" || key == "" {
		return Entity{}, ErrBadKey
	}
	data, err := json.Marshal(v)
	if err != nil {
		return Entity{}, fmt.Errorf("store: encode %s/%s: %w", kind, key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.kindLocked(kind)
	e := Entity{Kind: kind, Key: key, Version: k[key].Version + 1, Data: data}
	k[key] = e
	return e, nil
}

// PutIfVersion stores v only if the current version of (kind, key) equals
// version; version 0 means "must not exist". Returns ErrConflict otherwise.
func (s *Store) PutIfVersion(kind, key string, version int64, v any) (Entity, error) {
	if kind == "" || key == "" {
		return Entity{}, ErrBadKey
	}
	data, err := json.Marshal(v)
	if err != nil {
		return Entity{}, fmt.Errorf("store: encode %s/%s: %w", kind, key, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := s.kindLocked(kind)
	cur, exists := k[key]
	switch {
	case version == 0 && exists:
		return Entity{}, ErrConflict
	case version != 0 && (!exists || cur.Version != version):
		return Entity{}, ErrConflict
	}
	e := Entity{Kind: kind, Key: key, Version: cur.Version + 1, Data: data}
	k[key] = e
	return e, nil
}

// Get retrieves (kind, key) and decodes it into v if v is non-nil.
func (s *Store) Get(kind, key string, v any) (Entity, error) {
	s.mu.RLock()
	e, ok := s.kinds[kind][key]
	s.mu.RUnlock()
	if !ok {
		return Entity{}, fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	if v != nil {
		if err := e.Decode(v); err != nil {
			return Entity{}, err
		}
	}
	return e, nil
}

// Exists reports whether (kind, key) is present.
func (s *Store) Exists(kind, key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.kinds[kind][key]
	return ok
}

// Delete removes (kind, key). Deleting a missing entity returns ErrNotFound.
func (s *Store) Delete(kind, key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k, ok := s.kinds[kind]
	if !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	if _, ok := k[key]; !ok {
		return fmt.Errorf("%w: %s/%s", ErrNotFound, kind, key)
	}
	delete(k, key)
	return nil
}

// List returns all entities of a kind, sorted by key for determinism.
func (s *Store) List(kind string) []Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k := s.kinds[kind]
	out := make([]Entity, 0, len(k))
	for _, e := range k {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// ListPrefix returns all entities of a kind whose key starts with prefix,
// sorted by key. This is the index primitive the AM uses for realm-scoped
// lookups (keys are structured like "user/realm/resource").
func (s *Store) ListPrefix(kind, prefix string) []Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k := s.kinds[kind]
	var out []Entity
	for key, e := range k {
		if strings.HasPrefix(key, prefix) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Query returns entities of a kind for which filter returns true, sorted by
// key. Filter runs under the read lock and must not call back into the
// store.
func (s *Store) Query(kind string, filter func(Entity) bool) []Entity {
	s.mu.RLock()
	defer s.mu.RUnlock()
	k := s.kinds[kind]
	var out []Entity
	for _, e := range k {
		if filter(e) {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Count returns the number of entities of a kind.
func (s *Store) Count(kind string) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.kinds[kind])
}

// Kinds returns the sorted list of kinds with at least one entity.
func (s *Store) Kinds() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.kinds))
	for kind, m := range s.kinds {
		if len(m) > 0 {
			out = append(out, kind)
		}
	}
	sort.Strings(out)
	return out
}

// Update atomically reads (kind, key), applies fn to the decoded old value,
// and writes the result back, retrying on concurrent modification. decode
// receives a pointer to decode into (may be ignored when the entity does
// not exist yet; fn then sees exists=false).
func (s *Store) Update(kind, key string, decode any, fn func(exists bool) (any, error)) (Entity, error) {
	for {
		var version int64
		e, err := s.Get(kind, key, nil)
		exists := err == nil
		if exists {
			version = e.Version
			if decode != nil {
				if err := e.Decode(decode); err != nil {
					return Entity{}, err
				}
			}
		} else if !errors.Is(err, ErrNotFound) {
			return Entity{}, err
		}
		next, err := fn(exists)
		if err != nil {
			return Entity{}, err
		}
		out, err := s.PutIfVersion(kind, key, version, next)
		if errors.Is(err, ErrConflict) {
			continue
		}
		return out, err
	}
}
