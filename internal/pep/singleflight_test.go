package pep

import (
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"umac/internal/core"
)

// TestSingleflightCollapsesConcurrentMisses: concurrent Checks for the same
// uncached key must collapse into (nearly) one AM decision query — the
// leader asks, followers share the answer.
func TestSingleflightCollapsesConcurrentMisses(t *testing.T) {
	var decisions atomic.Int64
	am := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/api/decision" {
			http.NotFound(w, r)
			return
		}
		decisions.Add(1)
		// Hold the decision open long enough for every goroutine to join
		// the in-flight call.
		time.Sleep(100 * time.Millisecond)
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"decision":"permit","cache_ttl_seconds":600}`))
	}))
	defer am.Close()

	e := New(Config{Host: "webpics"})
	e.mu.Lock()
	e.pairings["bob"] = Pairing{AMURL: am.URL, PairingID: "p", Secret: "s", User: "bob"}
	e.mu.Unlock()

	const goroutines = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	errs := make(chan error, goroutines)
	var shared atomic.Int64
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, _ := http.NewRequest(http.MethodGet, "http://pics/res/x", nil)
			req.Header.Set("Authorization", "UMAC tok")
			<-start
			res, err := e.Check(req, "bob", "travel", "x", core.ActionRead)
			if err != nil {
				errs <- err
				return
			}
			if res.Verdict != VerdictAllow {
				errs <- err
			}
			if res.CacheHit {
				shared.Add(1)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Strictly one query barring extreme scheduling (a goroutine arriving
	// after the leader already finished starts a fresh flight, legally).
	if n := decisions.Load(); n > 2 {
		t.Fatalf("%d goroutines issued %d AM queries, want collapse to ~1", goroutines, n)
	}
	if shared.Load() == 0 {
		t.Fatal("no caller reported a shared/cached result")
	}
	// The flight's leader filled the cache for everyone after it.
	req, _ := http.NewRequest(http.MethodGet, "http://pics/res/x", nil)
	req.Header.Set("Authorization", "UMAC tok")
	res, err := e.Check(req, "bob", "travel", "x", core.ActionRead)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Fatal("cache cold after collapsed flight")
	}
}

// TestSingleflightDistinctKeysDoNotCollapse: different (resource, action)
// pairs fly independently.
func TestSingleflightDistinctKeysDoNotCollapse(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	var wg sync.WaitGroup
	for _, key := range []string{"a", "b", "c"} {
		wg.Add(1)
		go func(key string) {
			defer wg.Done()
			g.do(key, func() (core.DecisionResponse, error) {
				calls.Add(1)
				time.Sleep(20 * time.Millisecond)
				return core.DecisionResponse{Decision: "permit"}, nil
			})
		}(key)
	}
	wg.Wait()
	if n := calls.Load(); n != 3 {
		t.Fatalf("calls = %d, want 3 (one per key)", n)
	}
}

// TestSingleflightErrorShared: a failing flight propagates its error to
// every waiter and the next call retries fresh.
func TestSingleflightErrorShared(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer broken.Close()
	e := New(Config{Host: "webpics"})
	e.mu.Lock()
	e.pairings["bob"] = Pairing{AMURL: broken.URL, PairingID: "p", Secret: "s", User: "bob"}
	e.mu.Unlock()
	req, _ := http.NewRequest(http.MethodGet, "http://pics/res/x", nil)
	req.Header.Set("Authorization", "UMAC tok")
	if _, err := e.Check(req, "bob", "travel", "x", core.ActionRead); err == nil {
		t.Fatal("broken AM produced no error")
	}
	// Nothing was cached from the failure.
	if e.Cache().Len() != 0 {
		t.Fatal("error result cached")
	}
}
