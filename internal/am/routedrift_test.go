package am

import (
	"os"
	"strings"
	"testing"
)

// TestRouteDrift fails when a mux-registered route is missing from
// docs/PROTOCOL.md, keeping the documented surface in lockstep with the
// real one. Every canonical route must appear as an inline-code literal
// ("METHOD /v1/path"), and every route with pre-v1 aliases must appear in
// the legacy-alias table.
func TestRouteDrift(t *testing.T) {
	doc, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatalf("read protocol doc: %v", err)
	}
	text := string(doc)

	a := New(Config{Name: "am"})
	defer a.Close()
	a.Handler()
	routes := a.Routes()
	if len(routes) == 0 {
		t.Fatal("no routes registered")
	}
	for _, rt := range routes {
		needle := rt.Method + " " + rt.Path
		if !strings.Contains(text, needle) {
			t.Errorf("docs/PROTOCOL.md is missing route %q — document it (and its error codes) before adding the endpoint", needle)
		}
		for _, alias := range rt.Legacy {
			// Anchor the alias as a standalone inline-code literal so the
			// check cannot be satisfied by the alias being a substring of
			// its own /v1 form ("/policies" inside "/v1/policies").
			if !strings.Contains(text, "`"+alias+"`") {
				t.Errorf("docs/PROTOCOL.md legacy-alias table is missing `%s` (alias of %s %s)", alias, rt.Method, rt.Path)
			}
		}
	}
}
